// Command ipda-bench regenerates the tables and figures of the paper's
// evaluation (Section IV). Each experiment prints a text table whose rows
// mirror the corresponding paper artifact; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for a recorded reference run.
//
// Usage:
//
//	ipda-bench -exp fig6              # one experiment
//	ipda-bench -exp all               # everything (minutes)
//	ipda-bench -exp fig7 -trials 20   # more trials per point
//	ipda-bench -exp scale -shards 4   # sharded scale run (output is shard-independent)
//	ipda-bench -exp all -progress     # live trials-completed counter + latency quantiles
//	ipda-bench -exp fig7 -qtrace-out q.jsonl  # causal per-query traces (see ipda-trace)
//	ipda-bench -list                  # show experiment IDs
//
// Profiling (see EXPERIMENTS.md):
//
//	ipda-bench -exp fig7 -cpuprofile cpu.out   # CPU profile of the run
//	ipda-bench -exp fig7 -memprofile mem.out   # heap profile at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ipda-sim/ipda/internal/experiments"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/qtrace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment ID or 'all'")
		trials    = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		seed      = flag.Uint64("seed", 2024, "root random seed")
		sizes     = flag.String("sizes", "", "comma-separated network sizes (default: paper's 200..600)")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "intra-trial shard workers for sharded experiments (0 = 1; output is shard-independent)")
		cipher    = flag.String("cipher", "aes", "link-encryption keystream suite: aes | sha256 (tables are suite-independent)")
		macFlag   = flag.String("mac", "csma", "channel-access scheme: csma | tdma (tdma retimes transmissions; tables differ from csma)")
		coalesce  = flag.Bool("coalesce", false, "grow the overhead experiments with slice-coalesced framing columns (existing columns keep their exact bytes)")
		format    = flag.String("format", "text", "output format: text | csv")
		progress  = flag.Bool("progress", false, "report trials completed per sweep on stderr")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metrics   = flag.String("metrics", "", "write a Prometheus text-format snapshot of harness metrics to this file at exit")
		qtraceOut = flag.String("qtrace-out", "", "write causal per-query traces of every sweep as JSON lines to this file (inspect with ipda-trace)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipda-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ipda-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers, Shards: *shards, Coalesce: *coalesce}
	suite, err := linksec.ParseSuite(*cipher)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipda-bench: %v\n", err)
		os.Exit(2)
	}
	opts.Suite = suite
	scheme, err := mac.ParseScheme(*macFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipda-bench: %v\n", err)
		os.Exit(2)
	}
	opts.MAC = scheme
	// Progress reporting and -metrics both read the instrumentation
	// registry; experiment tables stay byte-identical either way.
	var sink *obs.Sink
	if *progress || *metrics != "" {
		sink = obs.NewSink()
		opts.Obs = sink
	}
	// Trace collection is read-only: tables are byte-identical with and
	// without a store attached.
	var store *qtrace.Store
	if *qtraceOut != "" {
		store = qtrace.NewStore(0)
		opts.QTrace = store
	}
	if *sizes != "" {
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "ipda-bench: bad size %q\n", part)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	reported := map[string]bool{}
	for _, name := range names {
		start := time.Now()
		o := opts
		if *progress {
			name := name
			o.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", name, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		table, err := experiments.Run(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *progress && sink != nil {
			reportSweeps(sink, reported)
		}
		switch *format {
		case "csv":
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ipda-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
		case "text":
			table.Fprint(os.Stdout)
			fmt.Printf("  (%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "ipda-bench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}

	if store != nil {
		f, err := os.Create(*qtraceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: qtrace-out: %v\n", err)
			os.Exit(1)
		}
		if err := store.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: qtrace-out: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: qtrace-out: %v\n", err)
			os.Exit(1)
		}
	}

	if *metrics != "" && sink != nil {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := sink.Reg.WriteProm(f); err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ipda-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// reportSweeps prints the wall-clock and throughput gauges the harness
// recorded for each sweep not yet reported, plus the simulated per-query
// completion-latency quantiles where the experiment records them. An
// experiment may run several sweeps (one per curve); each gets its own
// line.
func reportSweeps(sink *obs.Sink, reported map[string]bool) {
	elapsed := map[string]float64{}
	rate := map[string]float64{}
	latency := map[string]obs.Sample{}
	var order []string
	for _, s := range sink.Reg.Snapshot() {
		if len(s.Labels) != 1 || s.Labels[0].Name != "sweep" {
			continue
		}
		sweep := s.Labels[0].Value
		switch s.Name {
		case "ipda_harness_sweep_elapsed_seconds":
			if !reported[sweep] {
				order = append(order, sweep)
			}
			elapsed[sweep] = s.Value
		case "ipda_harness_sweep_trials_per_second":
			rate[sweep] = s.Value
		case "ipda_harness_query_latency_seconds":
			latency[sweep] = s
		}
	}
	for _, sweep := range order {
		reported[sweep] = true
		line := fmt.Sprintf("%s: %.2fs wall, %.1f trials/s", sweep, elapsed[sweep], rate[sweep])
		if h, ok := latency[sweep]; ok && h.Count > 0 {
			line += fmt.Sprintf(", query latency p50=%.3gs p95=%.3gs p99=%.3gs (%d queries)",
				obs.Quantile(h.Bounds, h.BucketCounts, 0.50),
				obs.Quantile(h.Bounds, h.BucketCounts, 0.95),
				obs.Quantile(h.Bounds, h.BucketCounts, 0.99),
				h.Count)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
