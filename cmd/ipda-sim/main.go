// Command ipda-sim runs one configurable iPDA simulation and prints a
// round report: deployment statistics, tree construction outcome, the two
// tree totals, the integrity verdict, and optional attack results.
//
// Usage:
//
//	ipda-sim -nodes 400                       # clean COUNT round
//	ipda-sim -nodes 400 -query sum -lo 10 -hi 40
//	ipda-sim -nodes 400 -pollute 17 -delta 500
//	ipda-sim -nodes 400 -eavesdrop 0.1        # measure disclosure
//	ipda-sim -nodes 400 -compare              # also run the TAG baseline
//	ipda-sim -nodes 400 -rounds 8 -churn 0.05 -repair   # churn + tree repair
//	ipda-sim -nodes 400 -epochs 96 -repair    # streaming: a 24-hour metering day
//	ipda-sim -nodes 400 -epochs 96 -interval 900 -churn 0.01 -repair
//	ipda-sim -nodes 400 -kill 17,42 -repair   # scripted crashes before round 0
//	ipda-sim -nodes 400 -metrics out.prom     # Prometheus metric snapshot
//	ipda-sim -nodes 400 -spans round.trace.json  # Perfetto phase spans
//	ipda-sim -nodes 400 -qtrace q.jsonl       # causal per-query trace (see ipda-trace)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/ipda-sim/ipda"
	"github.com/ipda-sim/ipda/internal/rng"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 400, "number of sensor nodes")
		field       = flag.Float64("field", 400, "field side in meters")
		radio       = flag.Float64("range", 50, "radio range in meters")
		slices      = flag.Int("l", 2, "slices per tree (l)")
		threshold   = flag.Int64("th", 5, "integrity threshold Th")
		seed        = flag.Uint64("seed", 1, "random seed")
		query       = flag.String("query", "count", "count | sum | average | variance | min | max")
		lo          = flag.Int64("lo", 1, "reading range low (sum-family queries)")
		hi          = flag.Int64("hi", 100, "reading range high")
		pollute     = flag.Int("pollute", 0, "node ID to turn into a polluter (0 = none)")
		delta       = flag.Int64("delta", 1000, "pollution delta")
		eavesdrop   = flag.Float64("eavesdrop", -1, "per-link compromise probability (-1 = off)")
		rounds      = flag.Int("rounds", 1, "number of query rounds to run")
		epochs      = flag.Int("epochs", 0, "streaming mode: run this many metering epochs with the standing day-query mix (0 = single-query mode)")
		interval    = flag.Float64("interval", 900, "streaming mode: simulated seconds per epoch (900 = 15-minute metering intervals)")
		churn       = flag.Float64("churn", 0, "per-round probability that each live node crashes")
		churnRec    = flag.Float64("churn-recover", 0.25, "per-round probability that each dead node recovers")
		kill        = flag.String("kill", "", "comma-separated node IDs crashed before round 0")
		repair      = flag.Bool("repair", false, "re-attach orphaned aggregators around dead parents between rounds")
		cipher      = flag.String("cipher", "aes", "link-encryption keystream suite: aes | sha256 (results are suite-independent)")
		macScheme   = flag.String("mac", "csma", "channel-access scheme: csma | tdma")
		coalesce    = flag.Bool("coalesce", false, "pack each node's same-round slices into one multi-slice frame (changes byte/frame counts)")
		precompute  = flag.Bool("precompute", true, "streaming mode: warm next-round AES keystream blocks between firings (behavior-neutral)")
		compare     = flag.Bool("compare", false, "also run the TAG baseline")
		traceFile   = flag.String("trace", "", "write a JSON-lines protocol timeline to this file")
		traceRing   = flag.Bool("trace-ring", false, "capture the trace as a ring buffer (keep the last events instead of the first)")
		metricsFile = flag.String("metrics", "", "write a Prometheus text-format metric snapshot to this file")
		metricsAddr = flag.String("metrics-addr", "", "after the run, serve the metric snapshot on this address (e.g. :9090) until interrupted")
		spansFile   = flag.String("spans", "", "write protocol phase spans as Chrome trace-event JSON (load in ui.perfetto.dev)")
		qtraceFile  = flag.String("qtrace", "", "write the causal per-query trace as JSON lines to this file (inspect with ipda-trace)")
	)
	flag.Parse()

	cfg := ipda.DefaultConfig(*nodes)
	cfg.FieldSide = *field
	cfg.Range = *radio
	cfg.Slices = *slices
	cfg.Threshold = *threshold
	cfg.Seed = *seed
	cfg.Observe = *metricsFile != "" || *metricsAddr != "" || *spansFile != ""
	cfg.TraceQueries = *qtraceFile != ""
	cfg.Repair = *repair
	cfg.Cipher = *cipher
	cfg.MAC = *macScheme
	cfg.Coalesce = *coalesce
	if *churn > 0 || *kill != "" {
		faults := &ipda.Faults{CrashRate: *churn, RecoverRate: *churnRec, Seed: *seed}
		for _, tok := range strings.Split(*kill, ",") {
			if tok = strings.TrimSpace(tok); tok == "" {
				continue
			}
			id, err := strconv.Atoi(tok)
			if err != nil {
				fail(fmt.Errorf("bad -kill node %q: %w", tok, err))
			}
			faults.Events = append(faults.Events, ipda.FaultEvent{Round: 0, Node: id})
		}
		cfg.Faults = faults
	}

	net, err := ipda.Deploy(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("deployment: %d nodes, avg degree %.1f\n", net.Size(), net.AvgDegree())
	fmt.Printf("trees:      coverage %.1f%%, participation %.1f%% (%d sensors)\n",
		100*net.Coverage(), 100*net.Participation(), net.Participants())

	var tr *ipda.Trace
	if *traceFile != "" {
		if *traceRing {
			tr = net.EnableRingTrace(1 << 20)
		} else {
			tr = net.EnableTrace(1 << 20)
		}
	}
	var eav *ipda.Eavesdropper
	if *eavesdrop >= 0 {
		eav = net.AttachEavesdropper(*eavesdrop)
	}
	if *pollute > 0 {
		net.InjectPollution(*pollute, *delta)
		fmt.Printf("attack:     node %d pollutes by %+d\n", *pollute, *delta)
	}

	if cfg.Faults != nil {
		fmt.Printf("faults:     churn %.1f%%/round (recover %.1f%%), %d scripted kill(s), repair %v\n",
			100*cfg.Faults.CrashRate, 100*cfg.Faults.RecoverRate, len(cfg.Faults.Events), cfg.Repair)
	}

	if *epochs > 0 {
		runStream(net, *epochs, *interval, *precompute)
	} else {
		kind, ok := map[string]ipda.Kind{
			"count": ipda.Count, "sum": ipda.Sum, "average": ipda.Average,
			"variance": ipda.Variance, "min": ipda.Min, "max": ipda.Max,
		}[*query]
		if !ok {
			fail(fmt.Errorf("unknown query %q", *query))
		}
		readings := make([]int64, net.Size())
		r := rng.New(*seed).SplitString("ipda-sim/readings")
		for i := 1; i < len(readings); i++ {
			readings[i] = *lo + r.Int64n(*hi-*lo+1)
		}
		var res *ipda.QueryResult
		accepted := 0
		for round := 0; round < *rounds; round++ {
			var err error
			res, err = net.Query(kind, readings)
			if err != nil {
				fail(err)
			}
			if res.Accepted {
				accepted++
			}
			if *rounds > 1 || cfg.Faults != nil {
				verdict := "ACCEPTED"
				if !res.Accepted {
					verdict = "REJECTED"
				}
				fmt.Printf("round %-3d   %s |diff| %-4d dead %-3d skipped %-3d repaired %-3d contributors %d/%d\n",
					round, verdict, abs(res.BlueSum-res.RedSum),
					res.Dead, res.Skipped, res.Repaired, res.RedContributors, res.BlueContributors)
			}
		}
		fmt.Printf("query %s:   red %d, blue %d, |diff| %d\n",
			*query, res.RedSum, res.BlueSum, abs(res.BlueSum-res.RedSum))
		if *rounds > 1 {
			fmt.Printf("verdict:    %d/%d rounds accepted; last value = %.4g\n", accepted, *rounds, res.Value)
		} else if res.Accepted {
			fmt.Printf("verdict:    ACCEPTED, value = %.4g\n", res.Value)
		} else {
			fmt.Println("verdict:    REJECTED (integrity violation or heavy loss)")
		}
		fmt.Printf("traffic:    %d bytes on the air\n", res.Bytes)
		if *coalesce {
			frames, slices := net.Coalescing()
			avg := 0.0
			if frames > 0 {
				avg = float64(slices) / float64(frames)
			}
			fmt.Printf("coalesce:   %d multi-slice frames carried %d slices (%.2f slices/frame)\n",
				frames, slices, avg)
		}

		if eav != nil {
			fmt.Printf("eavesdrop:  p_x=%.3f disclosed %.2f%% of participant readings (theory %.3g)\n",
				*eavesdrop, 100*eav.DisclosureRate(), ipda.TheoreticalDisclosure(*eavesdrop, *slices))
		}

		if *compare {
			tg, err := ipda.DeployTAG(cfg)
			if err != nil {
				fail(err)
			}
			tres, err := tg.Query(kind, readings)
			if err != nil {
				fail(err)
			}
			fmt.Printf("TAG:        value %.4g, %d bytes (iPDA/TAG byte ratio %.2f, analytic msg ratio %.2f)\n",
				tres.Value, tres.Bytes, float64(res.Bytes)/float64(tres.Bytes), ipda.OverheadRatio(*slices))
		}
	}

	if tr != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace:      %d events written to %s (%d dropped)\n", tr.Len(), *traceFile, tr.Dropped())
	}

	if q := net.QueryTrace(); q != nil {
		f, err := os.Create(*qtraceFile)
		if err != nil {
			fail(err)
		}
		if err := q.WriteJSONL(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("qtrace:     %d spans written to %s (%d dropped); inspect with ipda-trace\n",
			q.Len(), *qtraceFile, q.Dropped())
	}

	if o := net.Obs(); o != nil {
		if *metricsFile != "" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fail(err)
			}
			if err := o.WritePrometheus(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("metrics:    snapshot written to %s\n", *metricsFile)
		}
		if *spansFile != "" {
			f, err := os.Create(*spansFile)
			if err != nil {
				fail(err)
			}
			if err := o.WriteChromeTrace(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("spans:      %d spans written to %s (%d dropped); load in ui.perfetto.dev\n",
				o.Spans(), *spansFile, o.DroppedSpans())
		}
		if *metricsAddr != "" {
			// The registry is not safe for concurrent use, so render the
			// snapshot once, after the run, and serve the frozen bytes.
			var buf bytes.Buffer
			if err := o.WritePrometheus(&buf); err != nil {
				fail(err)
			}
			snapshot := buf.Bytes()
			http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				w.Write(snapshot)
			})
			fmt.Printf("metrics:    serving final snapshot on http://%s/metrics (ctrl-c to stop)\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fail(err)
			}
		}
	}
}

// runStream drives the continuous smart-metering pipeline: the standing
// day-query mix (per-interval SUM, hourly AVG/VAR, 3-hour peak MAX) over
// diurnal household profiles, one epoch per metering interval.
func runStream(net *ipda.Network, epochs int, interval float64, precompute bool) {
	eph := int(3600/interval + 0.5)
	if eph < 1 {
		eph = 1
	}
	res, err := net.RunStream(ipda.StreamConfig{
		Epochs:   epochs,
		Interval: interval,
		Queries:  ipda.DayQueries(eph),
		Readings: func(id, epoch int) int64 {
			return ipda.DiurnalLoad(id, float64(epoch)*interval/3600)
		},
		Metered:    true,
		Precompute: precompute,
	})
	if err != nil {
		fail(err)
	}
	noData := 0
	var repaired int
	for _, q := range res.Firings {
		if q.NoData {
			noData++
		}
		repaired += q.Repaired
	}
	fmt.Printf("stream:     %d epochs x %.0f s = %.1f h simulated, %d readings collected\n",
		res.Epochs, interval, res.SimSeconds/3600, res.Readings)
	fmt.Printf("firings:    %d total: %d accepted, %d rejected (%d with no data), %d repairs applied\n",
		len(res.Firings), res.Accepted, res.Rejected, noData, repaired)
	fmt.Printf("throughput: %.4g readings/s (simulated time)\n", res.ReadingsPerSecond)
	fmt.Printf("energy:     %.4g J network total, %.4g uJ/reading (radio + idle)\n",
		res.Joules, 1e6*res.JoulesPerReading)
	fmt.Printf("rounds:     %d cumulative aggregation rounds, link-key era %d\n", res.Rounds, res.KeyEra)
	if res.WarmedBlocks > 0 {
		fmt.Printf("precompute: %d AES keystream blocks warmed between firings\n", res.WarmedBlocks)
	}
	if frames, slices := net.Coalescing(); frames > 0 {
		fmt.Printf("coalesce:   %d multi-slice frames carried %d slices (%.2f slices/frame)\n",
			frames, slices, float64(slices)/float64(frames))
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ipda-sim:", err)
	os.Exit(1)
}
