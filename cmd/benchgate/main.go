// Command benchgate is the performance-regression gate CI runs on the
// repo's gated benchmarks: it executes the named benchmark with
// -benchmem, parses the measured allocs/op and ns/op, and compares both
// against the newest entry in the history file. A measurement exceeding
// the recorded value by more than its tolerance exits non-zero with a
// diagnostic.
//
// The two figures get very different tolerances. Allocation counts are
// deterministic for a fixed toolchain, so a tight relative gate (default
// 10%) holds on shared CI machines. Wall-clock time is not — the ns/op
// gate exists to catch order-of-magnitude blowups (an accidental O(n²),
// a lost fast path), so its default tolerance is a generous 40% and the
// history files record the machine the reference was measured on.
//
// CI gates two (benchmark, history) pairs: BenchmarkFig7Overhead against
// BENCH_fig7.json (the single-world protocol path) and
// BenchmarkShardScale against BENCH_scale.json (the sharded scale path).
//
// Besides the append-only "history" list, a file may carry a "gates" map
// of named absolute references — fixed ceilings for micro-benchmarks
// (the AES keystream path, the batch seal API, the TDMA round) that are
// not part of any history trajectory. -key selects a gates entry instead
// of the newest history entry; a gates reference with allocs_per_op 0 is
// an exact zero-allocation pin, not a relative gate.
//
// Usage:
//
//	go run ./cmd/benchgate [-bench BenchmarkFig7Overhead] [-history BENCH_fig7.json] [-tolerance 0.10] [-ns-tolerance 0.40]
//	go run ./cmd/benchgate -bench BenchmarkPRFKeystream -key BenchmarkPRFKeystream -pkg ./internal/linksec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

type reference struct {
	Date        string  `json:"date"`
	Label       string  `json:"label"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type history struct {
	History []reference          `json:"history"`
	Gates   map[string]reference `json:"gates"`
}

func main() {
	bench := flag.String("bench", "BenchmarkFig7Overhead", "benchmark to gate (anchored exact match)")
	file := flag.String("history", "BENCH_fig7.json", "benchmark history file; the newest entry is the reference")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative allocs/op increase over the reference")
	nsTolerance := flag.Float64("ns-tolerance", 0.40, "allowed relative ns/op increase over the reference (0 disables the timing gate)")
	benchtime := flag.String("benchtime", "3x", "-benchtime passed to go test")
	pkg := flag.String("pkg", ".", "package holding the benchmark")
	key := flag.String("key", "", "gate against this entry of the history file's \"gates\" map instead of the newest history entry")
	flag.Parse()

	if err := run(*bench, *file, *key, *tolerance, *nsTolerance, *benchtime, *pkg); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(bench, file, key string, tolerance, nsTolerance float64, benchtime, pkg string) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var h history
	if err := json.Unmarshal(raw, &h); err != nil {
		return fmt.Errorf("parse %s: %w", file, err)
	}
	var ref reference
	zeroAllocPin := false
	if key != "" {
		var ok bool
		ref, ok = h.Gates[key]
		if !ok {
			return fmt.Errorf("%s has no gates entry %q", file, key)
		}
		if ref.Label == "" {
			ref.Label = key
		}
		// A gates entry may legitimately pin 0 allocs/op; relative
		// tolerance is meaningless there, so the gate becomes exact.
		zeroAllocPin = ref.AllocsPerOp == 0
	} else {
		if len(h.History) == 0 {
			return fmt.Errorf("%s has no history entries to gate against", file)
		}
		ref = h.History[len(h.History)-1]
		if ref.AllocsPerOp <= 0 {
			return fmt.Errorf("%s newest entry has no allocs_per_op", file)
		}
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+bench+"$", "-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v:\n%s", err, out)
	}
	ns, allocs, err := parseResult(bench, string(out))
	if err != nil {
		return fmt.Errorf("%w in output:\n%s", err, out)
	}

	limit := ref.AllocsPerOp * (1 + tolerance)
	if zeroAllocPin {
		limit = 0
	}
	fmt.Printf("benchgate: %s measured %d allocs/op; reference %q (%s) recorded %.0f (limit %.0f)\n",
		bench, allocs, ref.Label, ref.Date, ref.AllocsPerOp, limit)
	if float64(allocs) > limit {
		if zeroAllocPin {
			return fmt.Errorf("allocation regression: %d allocs/op on a path pinned to zero allocations", allocs)
		}
		return fmt.Errorf("allocation regression: %d allocs/op exceeds %.0f (%+.1f%% over the recorded %.0f)",
			allocs, limit, 100*(float64(allocs)/ref.AllocsPerOp-1), ref.AllocsPerOp)
	}
	if nsTolerance > 0 && ref.NsPerOp > 0 {
		nsLimit := ref.NsPerOp * (1 + nsTolerance)
		fmt.Printf("benchgate: %s measured %.0f ns/op; reference recorded %.0f (limit %.0f)\n",
			bench, ns, ref.NsPerOp, nsLimit)
		if ns > nsLimit {
			return fmt.Errorf("timing regression: %.0f ns/op exceeds %.0f (%+.1f%% over the recorded %.0f)",
				ns, nsLimit, 100*(ns/ref.NsPerOp-1), ref.NsPerOp)
		}
	}
	return nil
}

// parseResult extracts the ns/op and allocs/op figures from a -benchmem
// result line (`BenchmarkX  N  ns/op  B/op  allocs/op`), tolerating the
// -cpu suffix go test appends to the benchmark name.
func parseResult(bench, out string) (float64, int64, error) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(bench) + `(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+[\d.]+ B/op\s+(\d+) allocs/op`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		return 0, 0, fmt.Errorf("no -benchmem result line for %s", bench)
	}
	ns, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, 0, err
	}
	allocs, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return ns, allocs, nil
}
