// Command benchgate is the allocation-regression gate CI runs on the
// repo's headline benchmark: it executes BenchmarkFig7Overhead with
// -benchmem, parses the measured allocs/op, and compares it against the
// newest entry in BENCH_fig7.json's history. If the measurement exceeds
// the recorded value by more than the tolerance (default 10%), it exits
// non-zero with a diagnostic.
//
// Allocation counts — unlike wall-clock times — are deterministic for a
// fixed toolchain, so a tight relative gate holds on shared CI machines
// where timing gates would flap.
//
// Usage:
//
//	go run ./cmd/benchgate [-bench BenchmarkFig7Overhead] [-history BENCH_fig7.json] [-tolerance 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

type history struct {
	History []struct {
		Date        string  `json:"date"`
		Label       string  `json:"label"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"history"`
}

func main() {
	bench := flag.String("bench", "BenchmarkFig7Overhead", "benchmark to gate (anchored exact match)")
	file := flag.String("history", "BENCH_fig7.json", "benchmark history file; the newest entry is the reference")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative allocs/op increase over the reference")
	benchtime := flag.String("benchtime", "3x", "-benchtime passed to go test")
	pkg := flag.String("pkg", ".", "package holding the benchmark")
	flag.Parse()

	if err := run(*bench, *file, *tolerance, *benchtime, *pkg); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(bench, file string, tolerance float64, benchtime, pkg string) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var h history
	if err := json.Unmarshal(raw, &h); err != nil {
		return fmt.Errorf("parse %s: %w", file, err)
	}
	if len(h.History) == 0 {
		return fmt.Errorf("%s has no history entries to gate against", file)
	}
	ref := h.History[len(h.History)-1]
	if ref.AllocsPerOp <= 0 {
		return fmt.Errorf("%s newest entry has no allocs_per_op", file)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+bench+"$", "-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v:\n%s", err, out)
	}
	allocs, err := parseAllocs(bench, string(out))
	if err != nil {
		return fmt.Errorf("%w in output:\n%s", err, out)
	}

	limit := ref.AllocsPerOp * (1 + tolerance)
	fmt.Printf("benchgate: %s measured %d allocs/op; reference %q (%s) recorded %.0f (limit %.0f)\n",
		bench, allocs, ref.Label, ref.Date, ref.AllocsPerOp, limit)
	if float64(allocs) > limit {
		return fmt.Errorf("allocation regression: %d allocs/op exceeds %.0f (%+.1f%% over the recorded %.0f)",
			allocs, limit, 100*(float64(allocs)/ref.AllocsPerOp-1), ref.AllocsPerOp)
	}
	return nil
}

// parseAllocs extracts the allocs/op figure from a -benchmem result line
// (`BenchmarkX  N  ns/op  B/op  allocs/op`), tolerating the -cpu suffix
// go test appends to the benchmark name.
func parseAllocs(bench, out string) (int64, error) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(bench) + `(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+[\d.]+ B/op\s+(\d+) allocs/op`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		return 0, fmt.Errorf("no -benchmem result line for %s", bench)
	}
	return strconv.ParseInt(m[1], 10, 64)
}
