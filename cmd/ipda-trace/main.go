// Command ipda-trace summarizes a JSON-lines protocol timeline produced
// by ipda-sim -trace (or ipda.Trace.WriteJSON): event counts by message
// type, collision totals, the busiest observer, and the time span.
//
// Usage:
//
//	ipda-sim -nodes 400 -trace round.jsonl
//	ipda-trace round.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/ipda-sim/ipda/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ipda-trace <timeline.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipda-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := trace.ReadJSON(f, 1<<22)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipda-trace:", err)
		os.Exit(1)
	}
	s := trace.Summarize(log)
	fmt.Printf("capture:     %s mode\n", log.Mode())
	fmt.Printf("events:      %d (%d dropped at capture)\n", s.Events, s.Dropped)
	fmt.Printf("span:        %.3fs .. %.3fs (%.3fs)\n", s.First, s.Last, s.Last-s.First)
	fmt.Printf("collisions:  %d\n", s.Collisions)
	fmt.Printf("busiest:     node %d\n", s.BusiestNode)
	kinds := make([]string, 0, len(s.ByDetailKind))
	for k := range s.ByDetailKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return s.ByDetailKind[kinds[a]] > s.ByDetailKind[kinds[b]] })
	fmt.Println("by type:")
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, s.ByDetailKind[k])
	}
}
