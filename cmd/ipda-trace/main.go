// Command ipda-trace inspects the two JSON-lines trace formats the
// simulator produces.
//
// For causal per-query traces (ipda-sim -qtrace, ipda-bench -qtrace-out)
// it prints a summary by default and supports three query modes:
//
//	ipda-trace q.jsonl                  # per-trial summary
//	ipda-trace -query 1 q.jsonl         # causal span tree of query 1
//	ipda-trace -critical-path q.jsonl   # tail-latency chain per round
//	ipda-trace -health q.jsonl          # full round-health report
//
// For legacy protocol timelines (ipda-sim -trace) it prints the original
// radio-level summary: event counts by message type, collision totals,
// the busiest observer, and the time span. The format is autodetected
// from the file's first record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/trace"
)

func main() {
	var (
		query    = flag.Int("query", -1, "print the causal span tree of this query (aggregation round)")
		critPath = flag.Bool("critical-path", false, "print each round's critical path: the causal chain behind its completion time")
		health   = flag.Bool("health", false, "print the full round-health report (verdicts, subtree rollups, critical paths)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipda-trace [-query N | -critical-path | -health] <trace.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if isQueryTrace(path) {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		lines, dropped, err := qtrace.ReadJSONL(f)
		if err != nil {
			fail(err)
		}
		groups, order := qtrace.GroupByTrial(lines)
		switch {
		case *query >= 0:
			for _, k := range order {
				spans := filterQuery(groups[k], uint32(*query))
				if len(spans) == 0 {
					continue
				}
				fmt.Printf("== %s ==\n", k)
				if err := qtrace.WriteText(os.Stdout, spans); err != nil {
					fail(err)
				}
			}
		case *critPath:
			for _, k := range order {
				fmt.Printf("== %s ==\n", k)
				for _, h := range qtrace.Analyze(groups[k]) {
					fmt.Printf("query %d (%s, %.4fs):\n", h.Query, verdictOf(h), h.End-h.Begin)
					for _, hop := range h.CriticalPath {
						fmt.Printf("  %s node=%d [%.4f %.4f]\n", hop.Name, hop.Node, hop.Begin, hop.End)
					}
				}
			}
		case *health:
			for _, k := range order {
				fmt.Printf("== %s ==\n", k)
				if err := qtrace.WriteHealth(os.Stdout, groups[k]); err != nil {
					fail(err)
				}
			}
		default:
			fmt.Printf("trials:  %d (%d spans, %d dropped at capture)\n", len(order), len(lines), dropped)
			for _, k := range order {
				spans := groups[k]
				rounds := qtrace.Analyze(spans)
				accepted := 0
				for _, h := range rounds {
					if h.Verdict == "accepted" {
						accepted++
					}
				}
				fmt.Printf("  %-24s %6d spans, %d rounds (%d accepted)\n", k, len(spans), len(rounds), accepted)
			}
			fmt.Println("modes:   -query N | -critical-path | -health")
		}
		return
	}

	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	log, err := trace.ReadJSON(f, 1<<22)
	if err != nil {
		fail(err)
	}
	s := trace.Summarize(log)
	fmt.Printf("capture:     %s mode\n", log.Mode())
	fmt.Printf("events:      %d (%d dropped at capture)\n", s.Events, s.Dropped)
	fmt.Printf("span:        %.3fs .. %.3fs (%.3fs)\n", s.First, s.Last, s.Last-s.First)
	fmt.Printf("collisions:  %d\n", s.Collisions)
	fmt.Printf("busiest:     node %d\n", s.BusiestNode)
	kinds := make([]string, 0, len(s.ByDetailKind))
	for k := range s.ByDetailKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return s.ByDetailKind[kinds[a]] > s.ByDetailKind[kinds[b]] })
	fmt.Println("by type:")
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, s.ByDetailKind[k])
	}
}

// isQueryTrace peeks at the file's first JSON record: qtrace lines carry
// "name" and "id" fields, legacy timeline events carry "kind"/"detail".
func isQueryTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	var raw map[string]json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return false
	}
	if _, ok := raw["kind"]; ok {
		return false
	}
	_, hasName := raw["name"]
	_, hasDropped := raw["dropped"]
	return hasName || hasDropped
}

// filterQuery keeps the spans of one query.
func filterQuery(spans []qtrace.Span, q uint32) []qtrace.Span {
	var out []qtrace.Span
	for _, s := range spans {
		if s.Query == q {
			out = append(out, s)
		}
	}
	return out
}

func verdictOf(h qtrace.Health) string {
	if h.Verdict == "" {
		return "unknown"
	}
	return h.Verdict
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ipda-trace:", err)
	os.Exit(1)
}
