package ipda

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDeployAndCount(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 401 {
		t.Fatalf("Size = %d", net.Size())
	}
	if net.AvgDegree() < 10 {
		t.Fatalf("AvgDegree = %v", net.AvgDegree())
	}
	res, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("clean count rejected: red %d blue %d", res.RedSum, res.BlueSum)
	}
	if res.Value < 300 || res.Value > 401 {
		t.Fatalf("count = %v", res.Value)
	}
	if res.Bytes == 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestSumQuery(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.Size())
	for i := range readings {
		readings[i] = 10
	}
	res, err := net.Sum(readings)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Participants * 10)
	if math.Abs(res.Value-want) > 0.05*want {
		t.Fatalf("sum %v, participants*10 = %v", res.Value, want)
	}
}

func TestAverageAndVariance(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.Size())
	for i := range readings {
		readings[i] = 25
	}
	avg, err := net.Query(Average, readings)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Accepted && math.Abs(avg.Value-25) > 1 {
		t.Fatalf("average = %v", avg.Value)
	}
}

func TestPollutionRejected(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	// Find an aggregator by probing: inject into increasing IDs until a
	// query is rejected, or use participants. Simpler: pollute a batch of
	// nodes on one tree... InjectPollution on a leaf is a no-op, so
	// pollute several nodes with the same delta; at least one will be an
	// aggregator in a dense network.
	for id := 1; id <= 20; id++ {
		net.InjectPollution(id, 500)
	}
	res, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Skip("none of the polluted nodes aggregated (unlikely); skipping")
	}
	// Clean up and verify recovery.
	for id := 1; id <= 20; id++ {
		net.InjectPollution(id, 0)
	}
	res, err = net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("still rejected after removing polluters")
	}
}

func TestEavesdropper(t *testing.T) {
	cfg := DefaultConfig(400)
	net, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := net.AttachEavesdropper(0)
	if _, err := net.Count(); err != nil {
		t.Fatal(err)
	}
	if rate := e.DisclosureRate(); rate != 0 {
		t.Fatalf("disclosure %v at px=0", rate)
	}

	net2, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2 := net2.AttachEavesdropper(1)
	if _, err := net2.Count(); err != nil {
		t.Fatal(err)
	}
	if rate := e2.DisclosureRate(); rate < 0.99 {
		t.Fatalf("disclosure %v at px=1", rate)
	}
}

func TestTAGBaseline(t *testing.T) {
	cfg := DefaultConfig(400)
	tg, err := DeployTAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tg.Count()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 350 || res.Value > 401 {
		t.Fatalf("TAG count %v", res.Value)
	}
	// iPDA costs more than TAG for the same query on the same config.
	ip, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ipRes, err := ip.Count()
	if err != nil {
		t.Fatal(err)
	}
	if ipRes.Bytes <= res.Bytes {
		t.Fatalf("iPDA bytes %d not above TAG %d", ipRes.Bytes, res.Bytes)
	}
}

func TestCoverageAndParticipation(t *testing.T) {
	net, err := Deploy(DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	cov, part := net.Coverage(), net.Participation()
	if cov < 0.9 || cov > 1 {
		t.Fatalf("coverage %v", cov)
	}
	if part > cov || part < 0.7 {
		t.Fatalf("participation %v (coverage %v)", part, cov)
	}
	if got := float64(net.Participants()) / float64(net.Size()-1); math.Abs(got-part) > 1e-9 {
		t.Fatalf("Participants()=%v disagrees with Participation()=%v", got, part)
	}
}

func TestDeterministicDeploy(t *testing.T) {
	cfg := DefaultConfig(300)
	a, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Count()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Count()
	if err != nil {
		t.Fatal(err)
	}
	if ra.RedSum != rb.RedSum || ra.BlueSum != rb.BlueSum {
		t.Fatal("same config, different results")
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := Deploy(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = DefaultConfig(100)
	cfg.Slices = 0
	if _, err := Deploy(cfg); err == nil {
		t.Fatal("zero slices accepted")
	}
}

func TestLocalizePolluterPublicAPI(t *testing.T) {
	// Density matters: probe rounds only expose attackers that hold an
	// aggregator role, so use the paper's dense regime.
	cfg := DefaultConfig(400)
	suspect, rounds, err := LocalizePolluter(cfg, 10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if suspect != 10 {
		t.Fatalf("localized %d, want 10", suspect)
	}
	if rounds > 10 {
		t.Fatalf("rounds %d exceeds log2(400)+1", rounds)
	}
}

func TestIndistinguishabilityGamePublicAPI(t *testing.T) {
	res, err := RunIndistinguishabilityGame(2, 0, 0.3, 1, 1000, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := TheoreticalLeafAdvantage(0.3, 2)
	if math.Abs(res.Advantage-want) > 0.03 {
		t.Fatalf("advantage %v, theory %v", res.Advantage, want)
	}
	if _, err := RunIndistinguishabilityGame(0, 0, 0.3, 1, 2, 10, 7); err == nil {
		t.Fatal("invalid game accepted")
	}
}

func TestMultiTreePublicAPI(t *testing.T) {
	cfg := DefaultConfig(600)
	net, err := DeployMultiTree(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 601 {
		t.Fatalf("Size = %d", net.Size())
	}
	if cov := net.Coverage(); cov < 0.6 {
		t.Fatalf("m=3 coverage %v at N=600", cov)
	}
	res, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || len(res.Outliers) != 0 {
		t.Fatalf("clean m=3 round: %+v", res)
	}
	if len(res.Totals) != 3 {
		t.Fatalf("totals %v", res.Totals)
	}
	// A single polluter is outvoted and identified.
	var attacker int
	for id := 1; id < net.Size(); id++ {
		if net.TreeOf(id) == 1 {
			attacker = id
			break
		}
	}
	net.InjectPollution(attacker, 900)
	res, err = net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("majority did not carry: %v", res.Totals)
	}
	if len(res.Outliers) != 1 || res.Outliers[0] != 1 {
		t.Fatalf("outliers %v, want [1]", res.Outliers)
	}
	// Sum path too.
	net.InjectPollution(attacker, 0)
	readings := make([]int64, net.Size())
	for i := range readings {
		readings[i] = 3
	}
	sum, err := net.Sum(readings)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Accepted {
		t.Fatalf("m=3 sum rejected: %v", sum.Totals)
	}
	if _, err := DeployMultiTree(cfg, 1); err == nil {
		t.Fatal("m=1 accepted")
	}
}

func TestExtraBaseStationsPublicAPI(t *testing.T) {
	cfg := DefaultConfig(400)
	cfg.ExtraBaseStations = []int{33, 77}
	net, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("multi-sink count rejected: red %d blue %d", res.RedSum, res.BlueSum)
	}
	if res.Value < float64(res.Participants)*0.9 {
		t.Fatalf("fused count %v vs %d participants", res.Value, res.Participants)
	}
}

func TestQueryExtremum(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.Size())
	for i := 1; i < len(readings); i++ {
		readings[i] = int64(100 + i%150)
	}
	res, err := net.QueryExtremum(Max, readings, 32, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Skip("extremum round rejected by loss")
	}
	trueMax := 249.0
	if res.Value < trueMax*0.98 || res.Value > trueMax*1.25 {
		t.Fatalf("max estimate %v, true %v", res.Value, trueMax)
	}
	if _, err := net.QueryExtremum(Sum, readings, 8, 300); err == nil {
		t.Fatal("non-extremum kind accepted")
	}
}

func TestEnableTrace(t *testing.T) {
	net, err := Deploy(DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	tr := net.EnableTrace(500)
	if _, err := net.Count(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 || tr.Dropped() == 0 {
		t.Fatalf("trace len %d dropped %d; expected a full buffer", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SLICE") && !strings.Contains(buf.String(), "AGG") {
		t.Fatal("trace has no protocol events")
	}
}

func TestRedBlueAggregatorsPartition(t *testing.T) {
	net, err := Deploy(DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	reds, blues := net.RedAggregators(), net.BlueAggregators()
	if len(reds) == 0 || len(blues) == 0 {
		t.Fatal("degenerate trees")
	}
	seen := map[int]bool{}
	for _, id := range append(append([]int{}, reds...), blues...) {
		if seen[id] {
			t.Fatalf("node %d on both trees", id)
		}
		seen[id] = true
	}
	if len(net.Aggregators()) != len(reds)+len(blues) {
		t.Fatal("Aggregators() not the union")
	}
}

func TestAnalyticHelpers(t *testing.T) {
	if OverheadRatio(2) != 2.5 {
		t.Fatal("OverheadRatio wrong")
	}
	if d := TheoreticalDisclosure(0.1, 3); math.Abs(d-0.001) > 3e-4 {
		t.Fatalf("TheoreticalDisclosure = %v", d)
	}
}

func TestObserveExportsMetricsAndSpans(t *testing.T) {
	cfg := DefaultConfig(250)
	cfg.Observe = true
	net, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Count(); err != nil {
		t.Fatal(err)
	}
	o := net.Obs()
	if o == nil {
		t.Fatal("Obs() nil with Observe set")
	}
	var prom bytes.Buffer
	if err := o.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE ipda_radio_tx_bytes_total counter",
		`ipda_core_rounds_total{verdict="accepted"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus export missing %q", want)
		}
	}
	var spans bytes.Buffer
	if err := o.WriteChromeTrace(&spans); err != nil {
		t.Fatal(err)
	}
	if o.Spans() == 0 || !strings.Contains(spans.String(), "phase1:tree-construction") {
		t.Fatalf("span export missing phases (%d spans)", o.Spans())
	}

	// Same config without Observe: no observer, identical results.
	plainNet, err := Deploy(DefaultConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	if plainNet.Obs() != nil {
		t.Fatal("Obs() non-nil without Observe")
	}
	plain, err := plainNet.Count()
	if err != nil {
		t.Fatal(err)
	}
	observed, err := func() (*QueryResult, error) {
		c := DefaultConfig(250)
		c.Observe = true
		n, err := Deploy(c)
		if err != nil {
			return nil, err
		}
		return n.Count()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *observed {
		t.Fatalf("observation perturbed the round: %+v vs %+v", plain, observed)
	}
}

func TestRingTraceKeepsTail(t *testing.T) {
	net, err := Deploy(DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	tr := net.EnableRingTrace(20)
	if tr.Mode() != "ring" {
		t.Fatalf("mode %q", tr.Mode())
	}
	if _, err := net.Count(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20 || tr.Dropped() == 0 {
		t.Fatalf("ring len %d dropped %d; expected a wrapped buffer", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"mode":"ring"`) {
		t.Fatal("ring trailer missing from JSON export")
	}
	// A ring keeps the end of the timeline: the last recorded event must
	// sit at the end of the run, after aggregation started.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[len(lines)-2], "AGG") && !strings.Contains(lines[len(lines)-2], "ACK") {
		t.Fatalf("tail event unexpected: %s", lines[len(lines)-2])
	}
}

func TestFaultsAndRepairPublicAPI(t *testing.T) {
	cfg := DefaultConfig(400)
	cfg.Repair = true
	cfg.Faults = &Faults{
		CrashRate:   0.05,
		RecoverRate: 0.25,
		Seed:        9,
		Events:      []FaultEvent{{Round: 0, Node: 17}, {Round: 1, Node: 17, Recover: true}},
	}
	net, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDead, sawRepair := false, false
	for round := 0; round < 4; round++ {
		res, err := net.Count()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("round %d rejected under repair: |diff| %d", round, res.BlueSum-res.RedSum)
		}
		if res.Dead > 0 {
			sawDead = true
		}
		if res.Repaired > 0 {
			sawRepair = true
		}
		if res.RedContributors > res.Participants || res.BlueContributors > res.Participants {
			t.Fatalf("round %d: contributors %d/%d exceed participants %d",
				round, res.RedContributors, res.BlueContributors, res.Participants)
		}
	}
	if !sawDead {
		t.Fatal("fault schedule never killed a node")
	}
	if !sawRepair {
		t.Fatal("repair never re-attached an orphan")
	}
}

func TestKillRevivePublicAPI(t *testing.T) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	before, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	net.Kill(5)
	during, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if during.Dead != 1 {
		t.Fatalf("Dead = %d after Kill", during.Dead)
	}
	net.Revive(5)
	after, err := net.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after.Dead != 0 {
		t.Fatalf("Dead = %d after Revive", after.Dead)
	}
	if !before.Accepted || !after.Accepted {
		t.Fatal("clean rounds around the kill should be accepted")
	}

	tg, err := DeployTAG(DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	full, err := tg.Count()
	if err != nil {
		t.Fatal(err)
	}
	tg.Kill(5)
	less, err := tg.Count()
	if err != nil {
		t.Fatal(err)
	}
	if less.Participants >= full.Participants {
		t.Fatalf("TAG participants %d not reduced from %d by Kill", less.Participants, full.Participants)
	}
	tg.Revive(5)
}
