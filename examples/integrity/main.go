// Integrity: a compromised aggregator pollutes intermediate results
// (Section II-C's data-pollution attack); the base station detects the
// attack by cross-checking the disjoint trees and then localizes the
// attacker with O(log N) group-testing probe rounds (Section III-D),
// rather than letting it force rejections forever.
package main

import (
	"fmt"
	"log"

	"github.com/ipda-sim/ipda"
)

func main() {
	cfg := ipda.DefaultConfig(400)
	cfg.Seed = 11
	net, err := ipda.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	clean, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean round:    red=%d blue=%d -> accepted=%v\n",
		clean.RedSum, clean.BlueSum, clean.Accepted)

	// Compromise an aggregator: a node that relays partial sums can shift
	// its whole subtree's total.
	aggs := net.Aggregators()
	if len(aggs) == 0 {
		log.Fatal("no aggregators — network too sparse")
	}
	attacker := aggs[len(aggs)/2]
	const delta = 750
	net.InjectPollution(attacker, delta)
	dirty, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polluted round: red=%d blue=%d -> accepted=%v\n",
		dirty.RedSum, dirty.BlueSum, dirty.Accepted)
	if dirty.Accepted {
		log.Fatalf("pollution by aggregator %d went undetected", attacker)
	}

	// A persistent polluter turns detection into denial of service: every
	// round gets rejected. The countermeasure bisects the node set with
	// probe rounds until the attacker is isolated.
	fmt.Println("\nlocalizing the attacker by group testing...")
	suspect, rounds, err := ipda.LocalizePolluter(cfg, attacker, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspect: node %d (true attacker %d) after %d probe rounds\n", suspect, attacker, rounds)

	// Exclude the suspect and confirm service is restored.
	net.InjectPollution(attacker, 0) // modelling exclusion from the trees
	restored, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after exclusion: accepted=%v value=%.0f\n", restored.Accepted, restored.Value)
}
