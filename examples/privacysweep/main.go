// Privacy sweep: quantifies the slicing mechanism's privacy along the two
// axes the paper analyzes — the per-link compromise probability p_x and
// the slice count l (Figure 5) — and through the indistinguishability
// game that formalizes what "private" means for an individual reading.
package main

import (
	"fmt"
	"log"

	"github.com/ipda-sim/ipda"
)

func main() {
	// Disclosure probability: run the actual protocol under a global
	// passive eavesdropper at several compromise levels, next to the
	// paper's Equation (11) (aggregator form, d-regular).
	fmt.Println("empirical disclosure vs Equation (11) (l = 2)")
	fmt.Println("p_x    measured   Eq.(11)")
	for _, px := range []float64{0.02, 0.05, 0.10, 0.20} {
		cfg := ipda.DefaultConfig(400)
		cfg.Seed = uint64(100 * px)
		net, err := ipda.Deploy(cfg)
		if err != nil {
			log.Fatal(err)
		}
		eav := net.AttachEavesdropper(px)
		if _, err := net.Count(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %8.4f   %7.5f\n", px, eav.DisclosureRate(), ipda.TheoreticalDisclosure(px, 2))
	}

	// More slices buy more privacy at (2l+1)/2 the traffic.
	fmt.Println("\nslices vs privacy and cost (p_x = 0.10)")
	fmt.Println("l   disclosed   msg ratio vs TAG")
	for _, l := range []int{1, 2, 3} {
		cfg := ipda.DefaultConfig(400)
		cfg.Slices = l
		cfg.Seed = uint64(31 * l)
		net, err := ipda.Deploy(cfg)
		if err != nil {
			log.Fatal(err)
		}
		eav := net.AttachEavesdropper(0.10)
		if _, err := net.Count(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d   %9.4f   %.1fx\n", l, eav.DisclosureRate(), ipda.OverheadRatio(l))
	}

	// The indistinguishability game: can an adversary tell a household
	// that consumed 1 W from one that consumed 100 kW? With full-ring
	// shares, only full reconstruction helps; with bounded shares the
	// share magnitudes leak the scale.
	fmt.Println("\nindistinguishability game: advantage telling v0=1 from v1=100000 (l = 2)")
	fmt.Println("p_x    full-ring   theory   bounded(spread=4)")
	for _, px := range []float64{0.05, 0.1, 0.3} {
		ring, err := ipda.RunIndistinguishabilityGame(2, 0, px, 1, 100000, 30000, 5)
		if err != nil {
			log.Fatal(err)
		}
		bounded, err := ipda.RunIndistinguishabilityGame(2, 4, px, 1, 100000, 30000, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %9.4f   %6.4f   %9.4f\n",
			px, max0(ring.Advantage), ipda.TheoreticalLeafAdvantage(px, 2), max0(bounded.Advantage))
	}
	fmt.Println("\ntakeaway: slicing keeps same-scale readings indistinguishable below full")
	fmt.Println("link compromise; bounded shares trade a scale leak for loss tolerance.")
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
