// Quickstart: deploy an iPDA network, answer a few aggregate queries, and
// look at what the dual-tree integrity check and the slicing privacy layer
// cost relative to the unprotected TAG baseline.
package main

import (
	"fmt"
	"log"

	"github.com/ipda-sim/ipda"
)

func main() {
	// The paper's evaluation setup: 400 sensors on a 400 m x 400 m field,
	// 50 m radio range, l = 2 slices, threshold Th = 5.
	cfg := ipda.DefaultConfig(400)
	net, err := ipda.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes (avg degree %.1f)\n", net.Size(), net.AvgDegree())
	fmt.Printf("coverage %.1f%%, participation %.1f%%\n\n", 100*net.Coverage(), 100*net.Participation())

	// COUNT: every participating sensor contributes 1; the red and blue
	// trees compute the total independently and the base station
	// cross-checks them.
	count, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT: red=%d blue=%d accepted=%v value=%.0f\n",
		count.RedSum, count.BlueSum, count.Accepted, count.Value)

	// SUM over synthetic readings.
	readings := make([]int64, net.Size())
	for i := range readings {
		readings[i] = int64(20 + i%10)
	}
	sum, err := net.Sum(readings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUM:   value=%.0f from %d participants\n", sum.Value, sum.Participants)

	// AVERAGE runs two private rounds (sum + count) under the hood.
	avg, err := net.Query(ipda.Average, readings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AVG:   value=%.2f accepted=%v\n\n", avg.Value, avg.Accepted)

	// Compare traffic with TAG, which offers no privacy and no integrity.
	tg, err := ipda.DeployTAG(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tcount, err := tg.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost: iPDA %d bytes vs TAG %d bytes per COUNT round (analytic msg ratio %.1fx)\n",
		count.Bytes, tcount.Bytes, ipda.OverheadRatio(cfg.Slices))
}
