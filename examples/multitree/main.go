// Multi-tree: the m > 2 generalization the paper sketches in Section
// III-B, used to defeat the collusion attack it leaves as future work in
// Section VI. Two compromised aggregators that apply the same shift on
// both trees of standard iPDA produce totals that still agree — the base
// station accepts a wrong answer. With three (or five) disjoint trees and
// majority voting, honest trees outvote the colluders and the polluted
// trees are identified by name.
package main

import (
	"fmt"
	"log"

	"github.com/ipda-sim/ipda"
)

func main() {
	cfg := ipda.DefaultConfig(600) // m > 2 needs density (Sec. III-B)
	cfg.Seed = 3

	// Baseline: standard 2-tree iPDA versus two same-delta colluders.
	two, err := ipda.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reds, blues := two.RedAggregators(), two.BlueAggregators()
	if len(reds) == 0 || len(blues) == 0 {
		log.Fatal("degenerate trees")
	}
	two.InjectPollution(reds[0], 700)
	two.InjectPollution(blues[0], 700)
	res, err := two.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=2 under collusion: red=%d blue=%d accepted=%v  <-- wrong total slips through\n",
		res.RedSum, res.BlueSum, res.Accepted)

	// m = 3: the honest third tree dissents.
	three, err := ipda.DeployMultiTree(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nm=3 deployment: %.1f%% of sensors reach all three trees\n", 100*three.Coverage())
	c0, c1 := firstOnTree(three, 0), firstOnTree(three, 1)
	three.InjectPollution(c0, 700)
	three.InjectPollution(c1, 700)
	v3, err := three.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=3 under collusion: totals=%v accepted=%v outliers=%v\n", v3.Totals, v3.Accepted, v3.Outliers)
	fmt.Println("  (two colluders can still out-vote one honest tree, but the dissent is visible)")

	// m = 5 tolerates f = 2 colluders outright: majority is honest.
	cfg5 := cfg
	cfg5.Nodes = 800
	cfg5.FieldSide = 350 // denser still
	five, err := ipda.DeployMultiTree(cfg5, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nm=5 deployment: %.1f%% of sensors reach all five trees\n", 100*five.Coverage())
	five.InjectPollution(firstOnTree(five, 0), 700)
	five.InjectPollution(firstOnTree(five, 1), 700)
	v5, err := five.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=5 under collusion: totals=%v\n", v5.Totals)
	fmt.Printf("verdict: accepted=%v value=%d, polluted trees identified: %v\n",
		v5.Accepted, v5.Value, v5.Outliers)
}

func firstOnTree(net *ipda.MultiTreeNetwork, tree int) int {
	for id := 1; id < net.Size(); id++ {
		if net.TreeOf(id) == tree {
			return id
		}
	}
	log.Fatalf("no aggregator on tree %d", tree)
	return 0
}
