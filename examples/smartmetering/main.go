// Smart metering: the advanced-metering scenario that motivates the paper
// (Section I). A neighborhood of smart meters reports household load to
// the utility's collector every interval. Two things must hold:
//
//   - privacy: per-household consumption reveals occupancy and behaviour
//     (Hart, 1989), so no meter's reading may be exposed to neighbors or
//     eavesdroppers — yet the utility still needs exact totals;
//   - integrity: a tampering party who shifts usage between billing
//     intervals must be caught.
//
// The example simulates a day of 3-hour aggregate reads over diurnal
// household profiles, then replays the evening-peak interval with relay
// meters that deflate the neighborhood total, and shows the collector
// rejecting it. (For the full continuous pipeline — 15-minute epochs,
// standing sliding-window queries, energy accounting — see
// Network.RunStream and `ipda-bench -exp stream`.)
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"github.com/ipda-sim/ipda"
)

// eveningPeak is the interval the tampering replay targets: the 18:00
// read sits on the evening demand peak, where shaving load pays the most.
const eveningPeak = 18

// householdLoad returns a synthetic household demand in watts at a given
// hour: a base load plus morning and evening peaks, individualized per
// meter.
func householdLoad(meter int, hour float64) int64 {
	base := 180.0 + 40.0*float64(meter%7)
	overnight := 35.0 * math.Sin(2*math.Pi*(hour+float64(meter%5))/24)
	morning := 350.0 * math.Exp(-(hour-7.5)*(hour-7.5)/2)
	evening := 600.0 * math.Exp(-(hour-19.0)*(hour-19.0)/4.5)
	weekendish := 1.0 + 0.1*float64(meter%3)
	return int64((base + overnight + morning + evening) * weekendish)
}

// fillReadings loads every meter's demand for the given hour into
// readings (index 0 is the collector and stays zero).
func fillReadings(readings []int64, hour int) {
	for i := 1; i < len(readings); i++ {
		readings[i] = householdLoad(i, float64(hour))
	}
}

func run(w io.Writer) error {
	cfg := ipda.DefaultConfig(350)
	cfg.Threshold = 2000 // watts of tolerated tree disagreement
	cfg.Seed = 7
	net, err := ipda.Deploy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "metering network: %d meters, %.1f%% participating\n\n",
		net.Size()-1, 100*net.Participation())

	fmt.Fprintln(w, "hour  total kW  accepted")
	readings := make([]int64, net.Size())
	for hour := 0; hour < 24; hour += 3 {
		fillReadings(readings, hour)
		res, err := net.Sum(readings)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d  %8.1f  %v\n", hour, res.Value/1000, res.Accepted)
	}

	// An insider at a relay meter deflates the reported total to cut the
	// neighborhood's bill. Both trees would have to be compromised in a
	// coordinated way to go unnoticed; a single compromised aggregator
	// cannot do it. The replay targets the evening-peak interval
	// explicitly — the reading set is rebuilt for that hour, not whatever
	// the day loop last held.
	fmt.Fprintf(w, "\ntampering: relay meters shaving 25 kW off the %d:00 evening-peak interval\n", eveningPeak)
	for id := 1; id <= 15; id++ {
		net.InjectPollution(id, -25000)
	}
	fillReadings(readings, eveningPeak)
	res, err := net.Sum(readings)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "collector verdict: accepted=%v (red %.1f kW vs blue %.1f kW)\n",
		res.Accepted, float64(res.RedSum)/1000, float64(res.BlueSum)/1000)
	if !res.Accepted {
		fmt.Fprintln(w, "the interval is re-queried after excluding the suspect relays")
	}

	// Privacy check: a passive adversary who compromised 10% of links
	// (e.g. via shared pool keys) recovers almost no individual profiles.
	clean, err := ipda.Deploy(cfg)
	if err != nil {
		return err
	}
	eav := clean.AttachEavesdropper(0.10)
	if _, err := clean.Sum(readings); err != nil {
		return err
	}
	fmt.Fprintf(w, "\neavesdropper with p_x=0.10 disclosed %.2f%% of household profiles\n",
		100*eav.DisclosureRate())
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
