package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunDeterministic pins the example's output: two runs must render
// byte-identical reports, the tampering replay must target the
// evening-peak interval explicitly (the regression this test guards: the
// replay once reused whatever readings slice the day loop leaked, i.e.
// the 21:00 interval), and the collector must reject the tampered read.
func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a); err != nil {
		t.Fatal(err)
	}
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("example output not deterministic:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"metering network: 350 meters",
		"hour  total kW  accepted",
		"shaving 25 kW off the 18:00 evening-peak interval",
		"collector verdict: accepted=false",
		"eavesdropper with p_x=0.10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// All 8 clean intervals of the day report and are accepted.
	if got := strings.Count(out, "  true"); got != 8 {
		t.Errorf("want 8 accepted clean intervals, saw %d:\n%s", got, out)
	}
}
