// Environmental monitoring: the classic WSN workload — temperature
// sensing over a field — using the non-additive statistics of Section
// II-B. MIN and MAX run through the k-th power-mean approximation
// (max(x₁..x_N) = lim_{k→∞} (Σxᵢᵏ)^{1/k}), VARIANCE through two additive
// rounds of r² and r plus a private count; all of it privately sliced and
// dual-tree verified like any other query.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/ipda-sim/ipda"
)

// fieldTemperature returns a synthetic temperature in tenths of °C at a
// sensor: a base gradient across the field plus a hot spot.
func fieldTemperature(sensor, n int) int64 {
	pos := float64(sensor) / float64(n)
	base := 180 + 40*pos // 18.0°C .. 22.0°C across the field
	hotspot := 55 * math.Exp(-math.Pow((pos-0.7)*12, 2))
	return int64(base + hotspot)
}

func main() {
	cfg := ipda.DefaultConfig(400)
	cfg.Seed = 21
	net, err := ipda.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	readings := make([]int64, net.Size())
	trueMin, trueMax := int64(1<<62), int64(0)
	var sum float64
	for i := 1; i < len(readings); i++ {
		readings[i] = fieldTemperature(i, len(readings))
		if readings[i] < trueMin {
			trueMin = readings[i]
		}
		if readings[i] > trueMax {
			trueMax = readings[i]
		}
		sum += float64(readings[i])
	}
	trueMean := sum / float64(len(readings)-1)

	fmt.Printf("field of %d thermometers (readings in 0.1°C)\n", net.Size()-1)
	fmt.Printf("ground truth: min %.1f°C  mean %.1f°C  max %.1f°C\n\n",
		float64(trueMin)/10, trueMean/10, float64(trueMax)/10)

	queries := []struct {
		name string
		kind ipda.Kind
	}{
		{"AVERAGE", ipda.Average},
		{"MIN", ipda.Min},
		{"MAX", ipda.Max},
		{"VARIANCE", ipda.Variance},
	}
	for _, q := range queries {
		var res *ipda.QueryResult
		switch q.kind {
		case ipda.Min, ipda.Max:
			// Tune the power mean: readings live in [180, 300] tenths,
			// so declare normal=300 and use a high power for tightness.
			res, err = net.QueryExtremum(q.kind, readings, 32, 300)
		default:
			res, err = net.Query(q.kind, readings)
		}
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ACCEPTED"
		if !res.Accepted {
			verdict = "REJECTED"
		}
		switch q.kind {
		case ipda.Variance:
			fmt.Printf("%-8s -> %.1f (0.1°C)²  [%s]\n", q.name, res.Value, verdict)
		default:
			fmt.Printf("%-8s -> %.1f°C  [%s]\n", q.name, res.Value/10, verdict)
		}
	}

	fmt.Println("\nnote: MIN/MAX are power-mean approximations — the estimate lands")
	fmt.Printf("within n^(1/k) of the true extremum (k=32, n=400: %.0f%%), biased\n",
		(math.Pow(float64(net.Size()), 1.0/32)-1)*100)
	fmt.Println("toward it as k grows; all queries remain sliced and dual-tree")
	fmt.Println("verified.")
}
