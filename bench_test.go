package ipda

// One benchmark per paper artifact (see the experiment index in
// DESIGN.md). Each bench iteration regenerates the corresponding table at
// a reduced trial count, so `go test -bench=.` both times the harness and
// re-derives every result. cmd/ipda-bench runs the same experiments at the
// paper's full trial counts.

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/experiments"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// benchOptions keeps each iteration meaningful but bounded.
func benchOptions(i int) experiments.Options {
	return experiments.Options{
		Sizes:  []int{200, 400, 600},
		Trials: 2,
		Seed:   uint64(i) + 1,
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o := benchOptions(i)
		if name == "indist" {
			o.Trials = 4000
		}
		if _, err := experiments.Run(name, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Density regenerates Table I (size vs density).
func BenchmarkTable1Density(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig5Privacy regenerates Figure 5 (P_disclose vs p_x).
func BenchmarkFig5Privacy(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6TreeAgreement regenerates Figure 6 (red vs blue COUNT).
func BenchmarkFig6TreeAgreement(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Overhead regenerates Figure 7 (bandwidth vs size).
func BenchmarkFig7Overhead(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Coverage regenerates Figure 8 (coverage/participation/
// accuracy).
func BenchmarkFig8Coverage(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkCoverageBound regenerates the Section IV-A.1 coverage analysis.
func BenchmarkCoverageBound(b *testing.B) { benchExperiment(b, "coverage") }

// BenchmarkOverheadAnalysis regenerates the Section IV-A.2 message counts.
func BenchmarkOverheadAnalysis(b *testing.B) { benchExperiment(b, "overhead") }

// BenchmarkPollutionDetection regenerates the Section IV-A.4 detection
// experiment.
func BenchmarkPollutionDetection(b *testing.B) { benchExperiment(b, "pollution") }

// BenchmarkThSweep regenerates the Section IV-B.1 threshold selection.
func BenchmarkThSweep(b *testing.B) { benchExperiment(b, "th") }

// BenchmarkDoSLocalization regenerates the Section III-D localization
// experiment.
func BenchmarkDoSLocalization(b *testing.B) { benchExperiment(b, "dos") }

// BenchmarkIndistinguishability regenerates the privacy-framework game.
func BenchmarkIndistinguishability(b *testing.B) { benchExperiment(b, "indist") }

// BenchmarkKAblation regenerates the aggregator-budget ablation.
func BenchmarkKAblation(b *testing.B) { benchExperiment(b, "kablation") }

// BenchmarkAdaptiveAblation regenerates the Eq.(1)-vs-Eq.(2) ablation.
func BenchmarkAdaptiveAblation(b *testing.B) { benchExperiment(b, "adaptive") }

// BenchmarkMTrees regenerates the m-tree generalization experiment.
func BenchmarkMTrees(b *testing.B) { benchExperiment(b, "mtrees") }

// BenchmarkLifetime regenerates the energy/lifetime comparison.
func BenchmarkLifetime(b *testing.B) { benchExperiment(b, "lifetime") }

// BenchmarkKeys regenerates the key-predistribution exposure table.
func BenchmarkKeys(b *testing.B) { benchExperiment(b, "keys") }

// BenchmarkLAblation regenerates the slice-count ablation.
func BenchmarkLAblation(b *testing.B) { benchExperiment(b, "lablation") }

// BenchmarkChurn regenerates the fault-injection/tree-repair experiment.
func BenchmarkChurn(b *testing.B) { benchExperiment(b, "churn") }

// BenchmarkShardScale regenerates the sharded scale experiment at a
// CI-sized field (one 2000-node trial, 8 cluster regions, 4 shard
// workers). Gated by cmd/benchgate against BENCH_scale.json.
func BenchmarkShardScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := experiments.Options{
			Sizes:   []int{2000},
			Trials:  1,
			Seed:    uint64(i) + 1,
			Workers: 1,
			Shards:  4,
		}
		if _, err := experiments.Run("scale", o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDay regenerates the continuous smart-metering
// experiment at a CI-sized field: one 400-node deployment serving a full
// 96-epoch day with the staggered SUM/AVG/VAR/MAX mix under churn with
// repair — ~220 aggregation rounds over one amortized Phase I. Gated by
// cmd/benchgate against BENCH_stream.json.
func BenchmarkStreamingDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := experiments.Options{
			Sizes:   []int{400},
			Trials:  1,
			Seed:    uint64(i) + 1,
			Workers: 1,
		}
		if _, err := experiments.Run("stream", o); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep-shape benchmarks: the same Figure-6-style workload (5 sizes × 2
// trials, each trial one deployment plus one COUNT round) scheduled two
// ways. Flattened is the harness's global (point × trial) queue; PerPoint
// replays the pre-harness shape — one pool per point, workers capped at
// the point's trial count — which idles all but 2 workers per point.

var sweepBenchSizes = []int{200, 300, 400, 500, 600}

func sweepBenchTrial(t *harness.T, nodes int) error {
	net, err := topology.Random(topology.PaperConfig(nodes), t.Rng.Split(1))
	if err != nil {
		return err
	}
	in, err := core.New(net, core.DefaultConfig(), t.Rng.Split(2).Uint64())
	if err != nil {
		return err
	}
	_, err = in.RunCount()
	return err
}

func BenchmarkSweepFlattened(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.Sweep{ID: "sweepbench", Seed: uint64(i) + 1, Points: len(sweepBenchSizes), Trials: 2}
		if err := s.Run(func(t *harness.T) error {
			return sweepBenchTrial(t, sweepBenchSizes[t.Point])
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepPerPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for p, nodes := range sweepBenchSizes {
			nodes := nodes
			s := harness.Sweep{ID: "sweepbench", Seed: uint64(i)*uint64(len(sweepBenchSizes)) + uint64(p) + 1, Points: 1, Trials: 2}
			if err := s.Run(func(t *harness.T) error {
				return sweepBenchTrial(t, nodes)
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTrialSetup isolates world construction — an N=400 deployment
// plus protocol instantiation through the Phase I tree build, no query
// rounds — to show what trial-lifetime reuse saves. The fresh variant
// builds every world from scratch, as every trial did before the arenas;
// the arena variant resets one long-lived world, as a sweep worker does
// now. Both consume identical randomness, so they construct equal worlds.
func BenchmarkTrialSetup(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := rng.New(uint64(i) + 1)
			net, err := topology.Random(topology.PaperConfig(400), r.Split(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.New(net, core.DefaultConfig(), r.Split(2).Uint64()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		a := world.New()
		for i := 0; i < b.N; i++ {
			r := rng.New(uint64(i) + 1)
			net, err := a.Deploy(topology.PaperConfig(400), r.Split(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Core("setup", net, core.DefaultConfig(), r.Split(2).Uint64()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Protocol micro-benchmarks: the cost of deployment and of one query
// round at the paper's N=400 operating point.

func BenchmarkDeploy400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(400)
		cfg.Seed = uint64(i) + 1
		if _, err := Deploy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountRound400(b *testing.B) {
	net, err := Deploy(DefaultConfig(400))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTDMADense times one COUNT round at the paper's N=400 operating
// point under the contention-free slotted MAC — the dense-field regime
// TDMA targets, where CSMA's exponential backoff dominates round latency.
// Gated by cmd/benchgate against BENCH_fig7.json.
func BenchmarkTDMADense(b *testing.B) {
	cfg := DefaultConfig(400)
	cfg.MAC = "tdma"
	net, err := Deploy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warmup rounds grow the slot tables, scratch buffers, and event
	// pools to steady state so short -benchtime runs gate the per-round
	// cost rather than early-round pool growth.
	for i := 0; i < 8; i++ {
		if _, err := net.Count(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTAGRound400(b *testing.B) {
	net, err := DeployTAG(DefaultConfig(400))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Count(); err != nil {
			b.Fatal(err)
		}
	}
}
