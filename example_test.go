package ipda_test

import (
	"fmt"
	"log"

	"github.com/ipda-sim/ipda"
)

// ExampleDeploy shows the minimal deploy-and-query flow.
func ExampleDeploy() {
	cfg := ipda.DefaultConfig(400) // the paper's evaluation setup
	net, err := ipda.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trees agree:", res.RedSum == res.BlueSum)
	fmt.Println("accepted:", res.Accepted)
	// Output:
	// trees agree: true
	// accepted: true
}

// ExampleNetwork_InjectPollution shows the integrity check rejecting a
// polluted round.
func ExampleNetwork_InjectPollution() {
	net, err := ipda.Deploy(ipda.DefaultConfig(400))
	if err != nil {
		log.Fatal(err)
	}
	net.InjectPollution(net.RedAggregators()[0], 1000)
	res, err := net.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", res.Accepted)
	// Output:
	// accepted: false
}

// ExampleOverheadRatio shows the analytic iPDA/TAG cost ratio.
func ExampleOverheadRatio() {
	for l := 1; l <= 3; l++ {
		fmt.Printf("l=%d ratio=%.1f\n", l, ipda.OverheadRatio(l))
	}
	// Output:
	// l=1 ratio=1.5
	// l=2 ratio=2.5
	// l=3 ratio=3.5
}
