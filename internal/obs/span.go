// Span recording against the simulated clock, exported as Chrome
// trace-event JSON so a round can be opened in Perfetto or
// chrome://tracing.
//
// Spans are recorded with explicit begin/end timestamps rather than a
// Begin()/End() pair: protocol phases in the simulator have statically
// known extents (a slicing window is [at, at+SliceWindow] the moment it
// is scheduled), and recording both ends up front means instrumentation
// never has to schedule an event of its own — which would renumber the
// event sequence and break the byte-identical-tables contract.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefaultSpanLimit bounds a NewSink span recorder. At ~8 spans per node
// per round this comfortably covers the paper-scale topologies (≤600
// nodes) for many rounds while keeping worst-case memory modest.
const DefaultSpanLimit = 1 << 18

// SpanEvent is one recorded span or instant. Times are simulated
// seconds; End == Begin marks an instant.
type SpanEvent struct {
	Track int32  // per-node track (node ID), or TrackGlobal
	Name  string // phase name, e.g. "phase2:slicing"
	Begin float64
	End   float64
	Round uint32 // 1-based aggregation round, 0 when not round-scoped
}

// TrackGlobal is the track for network-wide phases (tree construction,
// whole-round extents, BS verification).
const TrackGlobal int32 = -1

// SpanRecorder accumulates span events up to a fixed limit; events past
// the limit are counted in Dropped rather than stored, so a long run
// degrades to "first N spans plus a drop count" instead of unbounded
// growth. Not safe for concurrent use (same ownership rules as
// Registry).
type SpanRecorder struct {
	events  []SpanEvent
	limit   int
	dropped uint64
}

// NewSpanRecorder returns a recorder keeping at most limit events
// (limit <= 0 means DefaultSpanLimit).
func NewSpanRecorder(limit int) *SpanRecorder {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &SpanRecorder{limit: limit}
}

// Span records a completed phase span on a track.
func (r *SpanRecorder) Span(track int32, name string, begin, end float64, round uint32) {
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, SpanEvent{Track: track, Name: name, Begin: begin, End: end, Round: round})
}

// Instant records a zero-duration point event on a track.
func (r *SpanRecorder) Instant(track int32, name string, at float64, round uint32) {
	r.Span(track, name, at, at, round)
}

// Len returns the number of stored events.
func (r *SpanRecorder) Len() int { return len(r.events) }

// Dropped returns how many events were discarded after the limit.
func (r *SpanRecorder) Dropped() uint64 { return r.dropped }

// Events returns the stored events in recording order. The returned
// slice is the recorder's own storage; callers must not mutate it.
func (r *SpanRecorder) Events() []SpanEvent { return r.events }

// escapeJSON writes s as a JSON string literal (our span names and
// track labels are ASCII, but be correct regardless).
func escapeJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range []byte(s) {
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// WriteChromeTrace renders the recorded events as Chrome trace-event
// JSON (the "JSON Array Format" object variant that Perfetto and
// chrome://tracing both load). Simulated seconds map to microseconds of
// trace time, every track becomes a named thread under process 0, and
// spans on the same track nest by time containment. Output is
// deterministic: metadata sorted by track, then events in recording
// order (the recorder is filled by a deterministic simulation).
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}

	// Thread-name metadata: one per track, sorted, so Perfetto shows
	// "node 7" instead of a bare tid.
	tracks := map[int32]bool{}
	for i := range r.events {
		tracks[r.events[i].Track] = true
	}
	ids := make([]int32, 0, len(tracks))
	for t := range tracks {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, t := range ids {
		label := fmt.Sprintf("node %d", t)
		if t == TrackGlobal {
			label = "network"
		}
		// tid must be non-negative for the viewers; shift the global
		// track to 0 and nodes to ID+1.
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":%s}}`,
			tid(t), escapeJSON(label)))
	}
	// sort_index metadata pins the network track above the node tracks.
	for _, t := range ids {
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_sort_index","pid":0,"tid":%d,"args":{"sort_index":%d}}`,
			tid(t), tid(t)))
	}

	for i := range r.events {
		ev := &r.events[i]
		ts := ev.Begin * 1e6 // simulated seconds -> trace µs
		args := ""
		if ev.Round != 0 {
			args = fmt.Sprintf(`,"args":{"round":%d}`, ev.Round)
		}
		if ev.End > ev.Begin {
			emit(fmt.Sprintf(`{"ph":"X","name":%s,"pid":0,"tid":%d,"ts":%g,"dur":%g%s}`,
				escapeJSON(ev.Name), tid(ev.Track), ts, (ev.End-ev.Begin)*1e6, args))
		} else {
			emit(fmt.Sprintf(`{"ph":"i","name":%s,"pid":0,"tid":%d,"ts":%g,"s":"t"%s}`,
				escapeJSON(ev.Name), tid(ev.Track), ts, args))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// tid maps a track to a viewer thread ID: global track 0, node n at n+1.
func tid(track int32) int32 {
	if track == TrackGlobal {
		return 0
	}
	return track + 1
}
