// Prometheus text-exposition export and a minimal parser for it.
//
// The exporter emits format version 0.0.4 ("text/plain; version=0.0.4"):
// one # HELP and # TYPE line per family, then one sample line per series,
// families sorted by name and series by label values, so equal registries
// render byte-identically. The parser accepts the subset the exporter
// emits (plus comments and blank lines) and exists so tests and smoke
// checks can assert "parses as Prometheus text" without a dependency.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for a series, or "" without labels.
// extra appends one more pair (the histogram "le" label).
func labelString(names, values []string, extra ...Label) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(names)+len(extra))
	for i, n := range names {
		parts = append(parts, n+`="`+escapeLabel(values[i])+`"`)
	}
	for _, l := range extra {
		parts = append(parts, l.Name+`="`+escapeLabel(l.Value)+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm renders the registry in the Prometheus text exposition
// format. Output is deterministic: families sort by name, series by
// label values.
func (r *Registry) WriteProm(w io.Writer) error {
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		fam := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(fam.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, fam.typ)
		ordered := make([]*series, len(fam.order))
		copy(ordered, fam.order)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].key < ordered[b].key })
		for _, s := range ordered {
			switch fam.typ {
			case TypeCounter, TypeGauge:
				fmt.Fprintf(bw, "%s%s %s\n", name, labelString(fam.labelNames, s.labelValues), formatValue(s.val))
			case TypeHistogram:
				cum := uint64(0)
				for i, b := range s.buckets {
					cum += b
					le := "+Inf"
					if i < len(fam.bounds) {
						le = formatValue(fam.bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
						labelString(fam.labelNames, s.labelValues, Label{Name: "le", Value: le}), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, labelString(fam.labelNames, s.labelValues), formatValue(s.sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, labelString(fam.labelNames, s.labelValues), s.count)
			}
		}
	}
	return bw.Flush()
}

// ParseProm parses text in the exposition format into a map from sample
// key (metric name plus rendered label set, exactly as written) to value.
// It understands the subset WriteProm emits — comments, blank lines, and
// `name{labels} value` samples — and rejects anything else, which is what
// makes it useful as a smoke check that an exported file is well-formed.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space outside braces;
		// label values never contain unescaped spaces in our output, but
		// scan from the end to be safe against escaped quotes.
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("obs: line %d: no value in %q", lineNo, line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if err := validateSampleKey(key); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// validateSampleKey checks `name` or `name{a="b",...}` shape.
func validateSampleKey(key string) error {
	name := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			return fmt.Errorf("unterminated label set in %q", key)
		}
		name = key[:i]
		body := key[i+1 : len(key)-1]
		if body != "" {
			for _, pair := range splitLabelPairs(body) {
				eq := strings.IndexByte(pair, '=')
				if eq <= 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
					return fmt.Errorf("malformed label pair %q in %q", pair, key)
				}
				if !validMetricName(pair[:eq]) {
					return fmt.Errorf("bad label name %q in %q", pair[:eq], key)
				}
			}
		}
	}
	if !validMetricName(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	return nil
}

// splitLabelPairs splits a label body on commas outside quoted values.
func splitLabelPairs(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
