package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPromRoundTripEscapedLabels pins that label values containing the
// three characters the text format escapes — double quote, backslash,
// and newline — survive WriteProm → ParseProm: the export stays
// one-line-per-sample and the parser recovers every sample keyed by the
// escaped (as-written) label set.
func TestPromRoundTripEscapedLabels(t *testing.T) {
	cases := []struct {
		name  string
		value string // raw label value
	}{
		{"quote", `say "hi"`},
		{"backslash", `C:\temp\x`},
		{"newline", "line one\nline two"},
		{"trailing_backslash", `ends with \`},
		{"all_three", "a\"b\\c\nd"},
		{"comma_and_brace", `a,b}c{d`},
		{"spaces", `x y z`},
	}
	reg := NewRegistry()
	for i, c := range cases {
		reg.Counter("prom_escape_test_total", "escape round-trip", Label{Name: "v", Value: c.value}).Add(float64(i + 1))
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	// Every sample must stay on its own line: 2 comment lines + N samples.
	if got := strings.Count(buf.String(), "\n"); got != 2+len(cases) {
		t.Fatalf("expected %d lines, got %d:\n%s", 2+len(cases), got, buf.String())
	}
	parsed, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}
	if len(parsed) != len(cases) {
		t.Fatalf("parsed %d samples, want %d: %v", len(parsed), len(cases), parsed)
	}
	for i, c := range cases {
		key := `prom_escape_test_total{v="` + escapeLabel(c.value) + `"}`
		got, ok := parsed[key]
		if !ok {
			t.Fatalf("case %s: key %q missing from %v", c.name, key, parsed)
		}
		if got != float64(i+1) {
			t.Fatalf("case %s: value %v, want %d", c.name, got, i+1)
		}
	}
}

// TestPromRoundTripNonFiniteValues pins that +Inf, -Inf, and NaN sample
// values render in the exposition format and parse back.
func TestPromRoundTripNonFiniteValues(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("prom_nonfinite", "non-finite values", Label{Name: "k", Value: "pinf"}).Set(math.Inf(1))
	reg.Gauge("prom_nonfinite", "non-finite values", Label{Name: "k", Value: "ninf"}).Set(math.Inf(-1))
	reg.Gauge("prom_nonfinite", "non-finite values", Label{Name: "k", Value: "nan"}).Set(math.NaN())
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{" +Inf\n", " -Inf\n", " NaN\n"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("export missing %q:\n%s", want, buf.String())
		}
	}
	parsed, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}
	if v := parsed[`prom_nonfinite{k="pinf"}`]; !math.IsInf(v, 1) {
		t.Fatalf("+Inf lost: %v", v)
	}
	if v := parsed[`prom_nonfinite{k="ninf"}`]; !math.IsInf(v, -1) {
		t.Fatalf("-Inf lost: %v", v)
	}
	if v := parsed[`prom_nonfinite{k="nan"}`]; !math.IsNaN(v) {
		t.Fatalf("NaN lost: %v", v)
	}
}

// TestPromHistogramInfBucketParses pins that the implicit le="+Inf"
// bucket of a histogram export parses (its label value is a non-finite
// rendered float, an easy corner to break in a hand-rolled parser).
func TestPromHistogramInfBucketParses(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("prom_rt_latency", "latency", ExpBuckets(0.001, 4, 4))
	h.Observe(0.002)
	h.Observe(10) // overflow bucket
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}
	if v := parsed[`prom_rt_latency_bucket{le="+Inf"}`]; v != 2 {
		t.Fatalf("+Inf bucket = %v, want 2\n%s", v, buf.String())
	}
	if v := parsed["prom_rt_latency_count"]; v != 2 {
		t.Fatalf("count = %v, want 2", v)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on factor <= 1")
		}
	}()
	ExpBuckets(1, 1, 3)
}

func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 observations uniformly in the (2, 4] bucket.
	counts := []uint64{0, 0, 10, 0, 0}
	if q := Quantile(bounds, counts, 0.5); q != 3 {
		t.Fatalf("median = %v, want 3 (midpoint of (2,4])", q)
	}
	if q := Quantile(bounds, counts, 1); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	// Overflow bucket clamps to the highest finite bound.
	if q := Quantile(bounds, []uint64{0, 0, 0, 0, 5}, 0.99); q != 8 {
		t.Fatalf("overflow quantile = %v, want 8", q)
	}
	if q := Quantile(bounds, []uint64{0, 0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// TestSnapshotExposesHistogramBuckets pins that Snapshot carries a
// histogram's bounds and per-bucket counts for programmatic consumers
// (the harness quantile summaries).
func TestSnapshotExposesHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("snap_hist", "x", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	var smp *Sample
	for i, s := range reg.Snapshot() {
		if s.Name == "snap_hist" {
			smp = &reg.Snapshot()[i]
		}
	}
	if smp == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if len(smp.Bounds) != 2 || len(smp.BucketCounts) != 3 {
		t.Fatalf("bounds/buckets: %v %v", smp.Bounds, smp.BucketCounts)
	}
	if smp.BucketCounts[0] != 1 || smp.BucketCounts[1] != 1 || smp.BucketCounts[2] != 1 {
		t.Fatalf("bucket counts: %v", smp.BucketCounts)
	}
	if smp.Count != 3 {
		t.Fatalf("count = %d", smp.Count)
	}
}
