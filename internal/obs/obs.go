// Package obs is the protocol-wide instrumentation layer: a registry of
// labeled counters, gauges and histograms, plus a span recorder keyed to
// the simulated clock. Every layer of the stack (radio, mac, tree, core,
// tag, mtree, energy, harness) exposes a SetObs-style hook that resolves
// its instruments once at attach time and then updates them from the hot
// path with plain field stores.
//
// Two design rules keep the layer compatible with the simulator's
// performance and determinism contracts:
//
//   - Allocation-conscious: label sets are fixed and resolved to dense
//     series handles at registration time, so a hot-path update is one
//     pointer-chased add — no map lookups, no label formatting, no
//     allocation. Uninstrumented runs pay a single nil check per
//     instrumentation point (the layers guard on their Sink pointer).
//   - Deterministic and side-effect free: instruments only *read*
//     protocol state; they never schedule events, draw randomness, or
//     otherwise perturb a run. Exports iterate families and series in
//     sorted order, so equal runs produce byte-identical snapshots.
//
// The registry is not safe for concurrent use; it belongs to one
// simulation (or one harness sweep, whose workers serialize updates under
// the sweep's own lock).
package obs

import (
	"fmt"
	"sort"
)

// Type discriminates the metric families of a Registry.
type Type uint8

const (
	// TypeCounter is a monotonically non-decreasing cumulative value.
	TypeCounter Type = iota
	// TypeGauge is a value that can go up and down (set or add).
	TypeGauge
	// TypeHistogram counts observations into fixed cumulative buckets.
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Label is one name=value pair of a metric series. A family's label
// *names* are fixed by its first registration; registering a series with
// different names (or a different type) for the same family panics — it
// is always a programmer error, never a runtime condition.
type Label struct {
	Name, Value string
}

// Registry holds metric families and their series. The zero value is not
// usable; use NewRegistry.
type Registry struct {
	families map[string]*family
}

// family is one named metric with a fixed type and label-name set.
type family struct {
	name       string
	help       string
	typ        Type
	labelNames []string
	bounds     []float64 // histogram upper bounds, ascending
	series     map[string]*series
	order      []*series
}

// series is one (family, label values) cell — the dense storage a handle
// points at.
type series struct {
	labelValues []string
	key         string

	// Counter/gauge state.
	val float64

	// Histogram state: buckets[i] counts observations <= bounds[i];
	// buckets[len(bounds)] is the overflow (+Inf) bucket.
	buckets []uint64
	sum     float64
	count   uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// seriesKey joins label values unambiguously (values may contain commas).
func seriesKey(labels []Label) string {
	key := ""
	for _, l := range labels {
		key += fmt.Sprintf("%d:%s,", len(l.Value), l.Value)
	}
	return key
}

// register resolves (or creates) the series for one instrument handle.
func (r *Registry) register(typ Type, name, help string, bounds []float64, labels []Label) *series {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	fam := r.families[name]
	if fam == nil {
		names := make([]string, len(labels))
		for i, l := range labels {
			if l.Name == "" {
				panic(fmt.Sprintf("obs: metric %q has an empty label name", name))
			}
			names[i] = l.Name
		}
		fam = &family{
			name:       name,
			help:       help,
			typ:        typ,
			labelNames: names,
			bounds:     bounds,
			series:     make(map[string]*series),
		}
		r.families[name] = fam
	} else {
		if fam.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, typ, fam.typ))
		}
		if len(fam.labelNames) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with %d labels, was %d", name, len(labels), len(fam.labelNames)))
		}
		for i, l := range labels {
			if fam.labelNames[i] != l.Name {
				panic(fmt.Sprintf("obs: metric %q label %d is %q, was %q", name, i, l.Name, fam.labelNames[i]))
			}
		}
	}
	key := seriesKey(labels)
	s := fam.series[key]
	if s == nil {
		values := make([]string, len(labels))
		for i, l := range labels {
			values[i] = l.Value
		}
		s = &series{labelValues: values, key: key}
		if typ == TypeHistogram {
			s.buckets = make([]uint64, len(bounds)+1)
		}
		fam.series[key] = s
		fam.order = append(fam.order, s)
	}
	return s
}

// Counter registers (or resolves) a counter series and returns its
// handle. Registering the same (name, labels) again returns a handle to
// the same cell, so instruments accumulate across protocol instances
// sharing a registry.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{s: r.register(TypeCounter, name, help, nil, labels)}
}

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{s: r.register(TypeGauge, name, help, nil, labels)}
}

// Histogram registers (or resolves) a histogram series with the given
// ascending upper bounds (+Inf is implicit). Bounds must match any
// earlier registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	fam := r.families[name]
	if fam != nil && len(fam.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return Histogram{s: r.register(TypeHistogram, name, help, bounds, labels), bounds: bounds}
}

// Counter is a handle to one counter series. The zero value is a no-op,
// so layers may keep unconditional handles; increments on a resolved
// handle are a nil check and an add.
type Counter struct{ s *series }

// Inc adds 1.
func (c Counter) Inc() {
	if c.s != nil {
		c.s.val++
	}
}

// Add adds v, which must be non-negative for the series to stay a
// well-formed counter (not checked on the hot path).
func (c Counter) Add(v float64) {
	if c.s != nil {
		c.s.val += v
	}
}

// Value returns the current value (0 for the zero handle).
func (c Counter) Value() float64 {
	if c.s == nil {
		return 0
	}
	return c.s.val
}

// Gauge is a handle to one gauge series. The zero value is a no-op.
type Gauge struct{ s *series }

// Set replaces the value.
func (g Gauge) Set(v float64) {
	if g.s != nil {
		g.s.val = v
	}
}

// Add adds v (negative to subtract).
func (g Gauge) Add(v float64) {
	if g.s != nil {
		g.s.val += v
	}
}

// Value returns the current value (0 for the zero handle).
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return g.s.val
}

// Histogram is a handle to one histogram series. The zero value is a
// no-op.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	if h.s == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.s.buckets[i]++
	h.s.sum += v
	h.s.count++
}

// ExpBuckets returns n exponentially growing histogram upper bounds:
// base, base·factor, base·factor², … — the standard shape for latency
// distributions, whose tails span orders of magnitude. base must be
// positive and factor > 1.
func ExpBuckets(base, factor float64, n int) []float64 {
	if base <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d) invalid", base, factor, n))
	}
	out := make([]float64, n)
	b := base
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram from its
// upper bounds and per-bucket counts (counts[len(bounds)] is the overflow
// bucket), interpolating linearly within the selected bucket the way
// Prometheus' histogram_quantile does. It returns 0 for an empty
// histogram and the highest finite bound when the quantile lands in the
// overflow bucket.
func Quantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// Sample is one series in a Snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	// Count is the observation count for histogram series (0 otherwise);
	// Value carries the sum.
	Count uint64
	// Bounds and BucketCounts expose a histogram series' distribution
	// (nil otherwise): BucketCounts[i] observations fell at or below
	// Bounds[i], BucketCounts[len(Bounds)] is the overflow bucket. Both
	// alias registry storage — snapshot consumers must not mutate them.
	Bounds       []float64
	BucketCounts []uint64
}

// Snapshot returns every series' current value, families sorted by name
// and series in registration order — a stable, export-independent view
// for programmatic consumers (the bench CLI's progress reporting).
func (r *Registry) Snapshot() []Sample {
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		fam := r.families[name]
		for _, s := range fam.order {
			labels := make([]Label, len(fam.labelNames))
			for i := range fam.labelNames {
				labels[i] = Label{Name: fam.labelNames[i], Value: s.labelValues[i]}
			}
			smp := Sample{Name: name, Labels: labels, Value: s.val}
			if fam.typ == TypeHistogram {
				smp.Value = s.sum
				smp.Count = s.count
				smp.Bounds = fam.bounds
				smp.BucketCounts = s.buckets
			}
			out = append(out, smp)
		}
	}
	return out
}

// Sink bundles the two recorders a protocol stack is instrumented
// against. A nil *Sink (or a nil field) disables the corresponding
// instrumentation: layers guard their hot paths with one pointer check,
// and the span helpers below are safe to call through a nil receiver.
type Sink struct {
	Reg   *Registry
	Spans *SpanRecorder
}

// NewSink returns a sink with a fresh registry and a span recorder with
// the default capacity.
func NewSink() *Sink {
	return &Sink{Reg: NewRegistry(), Spans: NewSpanRecorder(DefaultSpanLimit)}
}

// Span records a completed phase span; a no-op on a nil sink or recorder.
func (s *Sink) Span(track int32, name string, begin, end float64, round uint32) {
	if s == nil || s.Spans == nil {
		return
	}
	s.Spans.Span(track, name, begin, end, round)
}

// Instant records a point event; a no-op on a nil sink or recorder.
func (s *Sink) Instant(track int32, name string, at float64, round uint32) {
	if s == nil || s.Spans == nil {
		return
	}
	s.Spans.Instant(track, name, at, round)
}
