package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ipda_radio_tx_total", "frames sent", Label{"kind", "hello"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	// Re-registering the same (name, labels) resolves the same cell.
	c2 := r.Counter("ipda_radio_tx_total", "frames sent", Label{"kind", "hello"})
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("after aliased Inc, counter = %v, want 6", got)
	}
	g := r.Gauge("ipda_mac_queue_depth", "queue depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestZeroHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("zero handles must read 0")
	}
	var s *Sink
	s.Span(0, "x", 0, 1, 1) // must not panic
	s.Instant(0, "x", 0, 1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ipda_mac_queue_len", "queue length at enqueue", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.s
	want := []uint64{2, 1, 1, 1} // <=1: {0,1}; <=2: {1.5}; <=4: {3}; +Inf: {100}
	for i, w := range want {
		if s.buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, s.buckets[i], w)
		}
	}
	if s.count != 5 || s.sum != 105.5 {
		t.Fatalf("count/sum = %d/%v, want 5/105.5", s.count, s.sum)
	}
}

func TestRegisterPanicsOnMismatch(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("m", "help", Label{"a", "x"})
	mustPanic("type change", func() { r.Gauge("m", "help", Label{"a", "x"}) })
	mustPanic("label count", func() { r.Counter("m", "help") })
	mustPanic("label name", func() { r.Counter("m", "help", Label{"b", "x"}) })
	r.Histogram("h", "help", []float64{1, 2})
	mustPanic("bounds change", func() { r.Histogram("h", "help", []float64{1, 2, 3}) })
	mustPanic("descending bounds", func() { r.Histogram("h2", "help", []float64{2, 1}) })
	mustPanic("empty name", func() { r.Counter("", "help") })
}

// Hot-path updates on resolved handles must not allocate: the simulator's
// 0 allocs/op benchmarks hold even with instrumentation enabled.
func TestUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h", Label{"k", "v"})
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", []float64{1, 10, 100})
	sr := NewSpanRecorder(16)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("metric updates allocate %v/op, want 0", n)
	}
	// Span recording allocates only on slice growth; within capacity it
	// must be free. Pre-fill to capacity minus headroom.
	_ = sr
}

func TestWritePromDeterministicAndParses(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in scrambled order; export must sort.
		r.Counter("zz_total", "last family").Add(3)
		c := r.Counter("ipda_radio_tx_bytes_total", "bytes sent", Label{"kind", "slice"})
		c.Add(1234)
		r.Counter("ipda_radio_tx_bytes_total", "bytes sent", Label{"kind", "hello"}).Add(42)
		r.Gauge("ipda_energy_joules", "per-component energy", Label{"component", "tx"}).Set(0.125)
		h := r.Histogram("ipda_mac_queue_len", "queue length", []float64{1, 4})
		h.Observe(0)
		h.Observe(2)
		h.Observe(9)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("equal registries exported differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE ipda_radio_tx_bytes_total counter",
		`ipda_radio_tx_bytes_total{kind="hello"} 42`,
		`ipda_radio_tx_bytes_total{kind="slice"} 1234`,
		"# TYPE ipda_mac_queue_len histogram",
		`ipda_mac_queue_len_bucket{le="1"} 1`,
		`ipda_mac_queue_len_bucket{le="4"} 2`,
		`ipda_mac_queue_len_bucket{le="+Inf"} 3`,
		"ipda_mac_queue_len_sum 11",
		"ipda_mac_queue_len_count 3",
		`ipda_energy_joules{component="tx"} 0.125`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
	// Series within a family sort by label values, independent of
	// registration order.
	if strings.Index(out, `kind="hello"`) > strings.Index(out, `kind="slice"`) {
		t.Fatalf("series not sorted by label values:\n%s", out)
	}

	parsed, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseProm rejected our own export: %v", err)
	}
	if parsed[`ipda_radio_tx_bytes_total{kind="slice"}`] != 1234 {
		t.Fatalf("parsed slice bytes = %v, want 1234", parsed[`ipda_radio_tx_bytes_total{kind="slice"}`])
	}
	if parsed[`ipda_mac_queue_len_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("parsed +Inf bucket = %v", parsed[`ipda_mac_queue_len_bucket{le="+Inf"}`])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"name{unterminated 1",
		`name{a=b} 1`,
		"1name 2",
		"name notanumber",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseProm accepted %q", bad)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "h", Label{"k", `va"l\ue` + "\n"}).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `m_total{k="va\"l\\ue\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
	if _, err := ParseProm(&buf); err != nil {
		t.Fatalf("escaped export does not re-parse: %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "h", Label{"x", "1"}).Add(2)
	r.Counter("a_total", "h").Add(1)
	h := r.Histogram("c_hist", "h", []float64{10})
	h.Observe(3)
	h.Observe(4)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 1 {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "b_total" || snap[1].Labels[0] != (Label{"x", "1"}) {
		t.Fatalf("snap[1] = %+v", snap[1])
	}
	if snap[2].Name != "c_hist" || snap[2].Value != 7 || snap[2].Count != 2 {
		t.Fatalf("snap[2] = %+v", snap[2])
	}
}

func TestSpanRecorderLimit(t *testing.T) {
	sr := NewSpanRecorder(3)
	for i := 0; i < 5; i++ {
		sr.Span(int32(i), "p", float64(i), float64(i)+1, 1)
	}
	if sr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sr.Len())
	}
	if sr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", sr.Dropped())
	}
	if sr.Events()[0].Track != 0 || sr.Events()[2].Track != 2 {
		t.Fatalf("recorder must keep the first N events, got %+v", sr.Events())
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	sr := NewSpanRecorder(0)
	sr.Span(TrackGlobal, "phase1:tree-construction", 0, 2.5, 0)
	sr.Span(TrackGlobal, "phase1:red-flood", 0, 1.5, 0)
	sr.Span(7, "phase2:slicing", 3.0, 3.2, 1)
	sr.Instant(7, "slice:sent", 3.05, 1)
	var buf bytes.Buffer
	if err := sr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			S    string          `json:"s"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 tracks × (thread_name + thread_sort_index) + 4 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8:\n%s", len(doc.TraceEvents), buf.String())
	}
	var sawMeta, sawSpan, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			sawMeta = true
		case "X":
			sawSpan = true
			if ev.Name == "phase2:slicing" {
				if ev.Tid != 8 { // node 7 -> tid 8
					t.Fatalf("slicing span tid = %d, want 8", ev.Tid)
				}
				if math.Abs(ev.Ts-3.0e6) > 1e-6 || math.Abs(ev.Dur-0.2e6) > 1e-3 {
					t.Fatalf("slicing span ts/dur = %v/%v", ev.Ts, ev.Dur)
				}
				if !strings.Contains(string(ev.Args), `"round":1`) {
					t.Fatalf("slicing span args = %s", ev.Args)
				}
			}
		case "i":
			sawInstant = true
			if ev.S != "t" {
				t.Fatalf("instant scope = %q, want t", ev.S)
			}
		}
	}
	if !sawMeta || !sawSpan || !sawInstant {
		t.Fatalf("missing event kinds: meta=%v span=%v instant=%v", sawMeta, sawSpan, sawInstant)
	}
}

func TestSinkHelpers(t *testing.T) {
	s := NewSink()
	if s.Reg == nil || s.Spans == nil {
		t.Fatal("NewSink must populate both recorders")
	}
	s.Span(1, "p", 0, 1, 2)
	s.Instant(1, "q", 0.5, 2)
	if s.Spans.Len() != 2 {
		t.Fatalf("sink recorded %d spans, want 2", s.Spans.Len())
	}
}
