package mtree

import (
	"fmt"
	"testing"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// deploy builds an m-tree instance on a dense deployment (m > 2 needs
// density, as the paper warns).
func deploy(t *testing.T, nodes, m int, seed uint64) *Instance {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m)
	if m > cfg.K {
		cfg.K = m
	}
	in, err := New(net, cfg, seed+77)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTwoTreesMatchCoreBehaviour(t *testing.T) {
	in := deploy(t, 400, 2, 1)
	v, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatalf("clean m=2 round rejected: %+v", v)
	}
	participants := int64(len(in.Participants()))
	if v.Value < participants*9/10 || v.Value > participants {
		t.Fatalf("count %d vs %d participants", v.Value, participants)
	}
}

func TestThreeTreesCleanRound(t *testing.T) {
	in := deploy(t, 600, 3, 2)
	v, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatalf("clean m=3 round rejected: totals %v", v.Totals)
	}
	if len(v.Outliers) != 0 {
		t.Fatalf("clean round flagged outliers %v (totals %v)", v.Outliers, v.Totals)
	}
}

func TestTreesAreDisjoint(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		in := deploy(t, 600, m, uint64(m)*13)
		// checkDisjoint ran inside New; re-verify the role structure: a
		// node appears on at most one tree by construction of TreeOf.
		counts := make([]int, m)
		for i := 1; i < in.Net.N(); i++ {
			if tr := in.TreeOf[i]; tr != NoTree {
				counts[tr]++
			}
		}
		for tr, c := range counts {
			if c == 0 {
				t.Fatalf("m=%d: tree %d empty", m, tr)
			}
		}
	}
}

func TestCoverageDropsWithMoreTrees(t *testing.T) {
	// The paper's density warning: at fixed density, covering all m trees
	// gets harder as m grows.
	cov := func(m int) float64 { return deploy(t, 400, m, 99).CoverageFraction() }
	c2, c4 := cov(2), cov(4)
	if c4 > c2 {
		t.Fatalf("coverage m=4 (%v) above m=2 (%v)", c4, c2)
	}
	if c2 < 0.85 {
		t.Fatalf("m=2 coverage %v too low at N=400", c2)
	}
}

func TestSinglePolluterOutvoted(t *testing.T) {
	in := deploy(t, 600, 3, 4)
	// Make one aggregator of tree 0 malicious.
	var attacker topology.NodeID = topology.None
	for i := 1; i < in.Net.N(); i++ {
		if in.TreeOf[i] == 0 {
			attacker = topology.NodeID(i)
			break
		}
	}
	if attacker == topology.None {
		t.Skip("no aggregator on tree 0")
	}
	in.Pollute(attacker, 900)
	v, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	// Majority (trees 1 and 2) still agrees: the round is ACCEPTED with
	// the honest value, and tree 0 is identified as the outlier.
	if !v.Accepted {
		t.Fatalf("majority did not carry: totals %v", v.Totals)
	}
	if len(v.Outliers) != 1 || v.Outliers[0] != 0 {
		t.Fatalf("outliers %v, want [0] (totals %v)", v.Outliers, v.Totals)
	}
	honest := int64(len(in.Participants()))
	if v.Value < honest*9/10 || v.Value > honest {
		t.Fatalf("majority value %d vs %d participants", v.Value, honest)
	}
}

func TestCollusionDefeatsTwoTreesButNotThree(t *testing.T) {
	// Two colluders applying the same delta on the two trees of an m=2
	// deployment go undetected (the paper's conceded limitation)...
	in2 := deploy(t, 600, 2, 5)
	var a0, a1 topology.NodeID = topology.None, topology.None
	for i := 1; i < in2.Net.N(); i++ {
		switch in2.TreeOf[i] {
		case 0:
			if a0 == topology.None {
				a0 = topology.NodeID(i)
			}
		case 1:
			if a1 == topology.None {
				a1 = topology.NodeID(i)
			}
		}
	}
	if a0 == topology.None || a1 == topology.None {
		t.Skip("missing aggregators")
	}
	in2.Pollute(a0, 700)
	in2.Pollute(a1, 700)
	v2, err := in2.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	honest2 := int64(len(in2.Participants()))
	if !v2.Accepted {
		t.Logf("m=2 colluders detected by luck (totals %v)", v2.Totals)
	} else if v2.Value < honest2+600 {
		t.Fatalf("m=2 collusion accepted but value %d not shifted (participants %d)", v2.Value, honest2)
	}

	// ...but with m=3 the honest third tree outvotes the same collusion.
	in3 := deploy(t, 600, 3, 6)
	var b0, b1 topology.NodeID = topology.None, topology.None
	for i := 1; i < in3.Net.N(); i++ {
		switch in3.TreeOf[i] {
		case 0:
			if b0 == topology.None {
				b0 = topology.NodeID(i)
			}
		case 1:
			if b1 == topology.None {
				b1 = topology.NodeID(i)
			}
		}
	}
	if b0 == topology.None || b1 == topology.None {
		t.Skip("missing aggregators")
	}
	in3.Pollute(b0, 700)
	in3.Pollute(b1, 700)
	v3, err := in3.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	honest3 := int64(len(in3.Participants()))
	// With only 1 honest tree out of 3 no strict majority should form
	// around the polluted value... the two polluted trees DO agree with
	// each other (same delta), forming a 2-of-3 majority around the WRONG
	// value. Majority voting with m=3 tolerates f colluders only when
	// m >= 2f+1 — here f=2 needs m=5. What m=3 does guarantee is that
	// the verdict flags a dissenting tree, alerting the base station.
	if v3.Accepted && len(v3.Outliers) == 0 {
		t.Fatalf("m=3 collusion produced a unanimous verdict: totals %v", v3.Totals)
	}
	if v3.Accepted && v3.Value >= honest3+600 {
		// The colluding majority won the vote, but the honest tree is
		// flagged as "outlier" — the alert a cautious base station acts
		// on. Verify the honest total is recoverable from the outlier.
		found := false
		for _, o := range v3.Outliers {
			if v3.Totals[o] <= honest3 && v3.Totals[o] >= honest3*9/10 {
				found = true
			}
		}
		if !found {
			t.Fatalf("honest total lost: totals %v outliers %v participants %d", v3.Totals, v3.Outliers, honest3)
		}
	}
}

func TestFivePoint_TwoColludersOutvotedByThreeHonestTrees(t *testing.T) {
	// m = 5 tolerates f = 2 same-delta colluders: the three honest trees
	// form the majority. Needs a very dense network, per the paper.
	net, err := topology.Random(topology.Config{Nodes: 800, FieldSide: 350, Range: 50}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.K = 8
	in, err := New(net, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 topology.NodeID = topology.None, topology.None
	for i := 1; i < in.Net.N(); i++ {
		switch in.TreeOf[i] {
		case 0:
			if c0 == topology.None {
				c0 = topology.NodeID(i)
			}
		case 1:
			if c1 == topology.None {
				c1 = topology.NodeID(i)
			}
		}
	}
	if c0 == topology.None || c1 == topology.None {
		t.Skip("missing aggregators")
	}
	in.Pollute(c0, 700)
	in.Pollute(c1, 700)
	v, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatalf("honest 3-of-5 majority did not carry: totals %v", v.Totals)
	}
	honest := int64(len(in.Participants()))
	if v.Value > honest || v.Value < honest*85/100 {
		t.Fatalf("majority value %d vs participants %d (totals %v)", v.Value, honest, v.Totals)
	}
	if len(v.Outliers) != 2 {
		t.Fatalf("outliers %v, want the two polluted trees (totals %v)", v.Outliers, v.Totals)
	}
}

func TestMajorityVerdictUnit(t *testing.T) {
	cases := []struct {
		totals   []int64
		th       int64
		accepted bool
		value    int64
		outliers []int
	}{
		{[]int64{100, 100, 100}, 5, true, 100, nil},
		{[]int64{100, 103, 600}, 5, true, 101, []int{2}},
		{[]int64{100, 600, 600}, 5, true, 600, []int{0}}, // colluding majority
		{[]int64{100, 300, 600}, 5, false, 0, nil},       // no majority
		{[]int64{100, 104}, 5, true, 102, nil},
		{[]int64{100, 110}, 5, false, 0, nil},
	}
	for i, c := range cases {
		v := majorityVerdict(c.totals, c.th)
		if v.Accepted != c.accepted {
			t.Errorf("case %d: accepted %v, want %v", i, v.Accepted, c.accepted)
			continue
		}
		if v.Accepted && v.Value != c.value {
			t.Errorf("case %d: value %d, want %d", i, v.Value, c.value)
		}
		if len(c.outliers) != len(v.Outliers) && !(c.outliers == nil && len(v.Outliers) <= len(c.totals)-1 && !c.accepted) {
			if c.accepted {
				t.Errorf("case %d: outliers %v, want %v", i, v.Outliers, c.outliers)
			}
		}
		if c.accepted && len(c.outliers) > 0 {
			if len(v.Outliers) != len(c.outliers) || v.Outliers[0] != c.outliers[0] {
				t.Errorf("case %d: outliers %v, want %v", i, v.Outliers, c.outliers)
			}
		}
	}
}

func TestMajorityVerdictProperties(t *testing.T) {
	r := rng.New(71)
	if err := quickCheck(2000, func() bool {
		m := r.Intn(7) + 2
		th := int64(r.Intn(10))
		totals := make([]int64, m)
		for i := range totals {
			totals[i] = int64(r.Intn(2000)) - 1000
		}
		v := majorityVerdict(totals, th)
		// Outliers and cluster partition the trees.
		inCluster := m - len(v.Outliers)
		if inCluster < 1 {
			return false
		}
		// Accepted iff the cluster is a strict majority.
		if v.Accepted != (2*inCluster > m) {
			return false
		}
		// Every outlier index is valid and unique.
		seen := map[int]bool{}
		for _, o := range v.Outliers {
			if o < 0 || o >= m || seen[o] {
				return false
			}
			seen[o] = true
		}
		// Cluster members pairwise agree within th: verify by checking
		// max-min over non-outliers.
		var lo, hi int64
		first := true
		for t := 0; t < m; t++ {
			if seen[t] {
				continue
			}
			if first {
				lo, hi = totals[t], totals[t]
				first = false
				continue
			}
			if totals[t] < lo {
				lo = totals[t]
			}
			if totals[t] > hi {
				hi = totals[t]
			}
		}
		return hi-lo <= th
	}); err != nil {
		t.Fatal(err)
	}
}

// quickCheck runs prop n times and reports the first failure.
func quickCheck(n int, prop func() bool) error {
	for i := 0; i < n; i++ {
		if !prop() {
			return fmt.Errorf("property failed at trial %d", i)
		}
	}
	return nil
}

func TestConfigValidation(t *testing.T) {
	net, _ := topology.Grid(3, 20, 50)
	bad := []Config{
		DefaultConfig(1),
		DefaultConfig(9),
		{Trees: 2, Slices: 0, Threshold: 5, K: 4, DecisionDelay: 1, Deadline: 1, SliceWindow: 1, AggSlot: 1},
		{Trees: 4, Slices: 2, Threshold: 5, K: 3, DecisionDelay: 1, Deadline: 1, SliceWindow: 1, AggSlot: 1},
	}
	for i, cfg := range bad {
		if _, err := New(net, cfg, 1); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []int64 {
		net, _ := topology.Random(topology.PaperConfig(300), rng.New(42))
		in, err := New(net, DefaultConfig(3), 43)
		if err != nil {
			t.Fatal(err)
		}
		v, err := in.RunCount()
		if err != nil {
			t.Fatal(err)
		}
		return v.Totals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}
