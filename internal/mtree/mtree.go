// Package mtree generalizes iPDA from two disjoint aggregation trees to m
// of them — the extension Section III-B sketches ("the disjoint
// aggregation tree construction phase can be easily generalized to build
// multiple aggregation trees (m > 2); however ... the network must be very
// dense") — and upgrades the base station's integrity check from
// two-way agreement to majority voting.
//
// Majority voting addresses the paper's stated future work (Section VI,
// collusive attacks): with m = 2, two colluding aggregators on different
// trees that apply the same delta fool the |S_b − S_r| ≤ Th check; with
// m = 3 the honest third tree outvotes them, the base station still
// recovers the true total, and it identifies which trees were polluted.
//
// Phase I generalizes the paper's Equation (1): upon hearing HELLOs from
// all m trees, a node becomes an aggregator with probability
// p = min(1, k/ΣN_i) and joins tree t with probability proportional to
// (ΣN − N_t) — the under-represented trees are favored, exactly as red
// and blue balance each other in the m = 2 protocol. Phases II and III run
// unchanged per tree: l slices to each of the m trees (m·l − 1
// transmissions per aggregator), then per-tree additive aggregation.
package mtree

import (
	"fmt"
	"sort"

	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/slicing"
	"github.com/ipda-sim/ipda/internal/topology"
)

// NoTree marks leaves and undecided nodes.
const NoTree = -1

// Config parameterizes an m-tree instance.
type Config struct {
	// Trees is m, the number of node-disjoint aggregation trees (>= 2).
	Trees int
	// Slices is l, the slices sent to each tree.
	Slices int
	// Threshold is the per-pair agreement threshold for majority voting.
	Threshold int64
	// K is the aggregator budget of the generalized Equation (1).
	K int
	// DecisionDelay and Deadline bound Phase I; SliceWindow and AggSlot
	// schedule Phases II and III as in the core protocol.
	DecisionDelay eventsim.Time
	Deadline      eventsim.Time
	SliceWindow   eventsim.Time
	AggSlot       eventsim.Time
	// ShareSpread bounds slice magnitudes (0 = full ring).
	ShareSpread int64
	// Suite selects the keystream/tag primitive slices are sealed with
	// (zero value = batched AES-CTR; see linksec.Suite).
	Suite linksec.Suite
	// MAC configures the link layer; the zero value selects
	// mac.DefaultConfig(), so existing callers are unchanged.
	MAC mac.Config
	// Obs is the optional instrumentation sink (see core.Config.Obs).
	Obs *obs.Sink
	// QTrace is the optional causal per-query tracer (see
	// core.Config.QTrace); nil disables tracing and never changes a run.
	QTrace *qtrace.Tracer
}

// DefaultConfig returns m-tree defaults matching the core protocol's.
func DefaultConfig(m int) Config {
	return Config{
		Trees:         m,
		Slices:        2,
		Threshold:     5,
		K:             4,
		DecisionDelay: 0.05,
		Deadline:      10,
		SliceWindow:   2.0,
		AggSlot:       0.25,
		ShareSpread:   4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Trees < 2 || c.Trees > 8 {
		return fmt.Errorf("mtree: Trees must be in [2, 8], got %d", c.Trees)
	}
	if c.Slices < 1 {
		return fmt.Errorf("mtree: Slices must be >= 1, got %d", c.Slices)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("mtree: Threshold must be >= 0, got %d", c.Threshold)
	}
	if c.K < c.Trees {
		return fmt.Errorf("mtree: K must be >= Trees, got %d < %d", c.K, c.Trees)
	}
	if c.DecisionDelay <= 0 || c.Deadline <= 0 || c.SliceWindow <= 0 || c.AggSlot <= 0 {
		return fmt.Errorf("mtree: time parameters must be positive")
	}
	if c.ShareSpread < 0 {
		return fmt.Errorf("mtree: ShareSpread must be >= 0")
	}
	return nil
}

// Instance is one deployed m-tree network.
type Instance struct {
	Net *topology.Network
	Cfg Config

	// TreeOf[i] is the tree node i aggregates on, or NoTree.
	TreeOf []int
	// Parent and Hop describe each aggregator's position on its tree.
	Parent []topology.NodeID
	Hop    []uint16
	// Heard[i][t] lists the tree-t aggregators node i heard during
	// Phase I (slice-target candidates).
	Heard [][][]topology.NodeID

	sim     *eventsim.Sim
	medium  *radio.Medium
	mac     *mac.MAC
	keys    linksec.Scheme
	ciphers *linksec.CipherCache // per-link sealing state over keys
	rand    *rng.Stream
	// round is the cumulative lifetime round counter; only its low 16
	// bits go on the air, and each 16-bit wraparound rotates the key era
	// (see core.Instance and linksec.EraKeys) so slice nonces never
	// repeat under one key.
	round uint64
	era   uint64

	polluters map[topology.NodeID]int64

	// Per-round state, grown on demand and cleared in place per round.
	assembled  [][]*slicing.Assembler // [node][tree]
	childSum   []int64
	childCount []uint32
	bsSum      []int64
	bsCount    []uint32
	dispatchFn mac.Handler
	// sealReqs stages one (node, tree)'s remote shares for a SealBatch
	// call. Batching is per tree, not per node: the rng draws for tree
	// t+1's target choice happen after tree t's send offsets, so a wider
	// batch would reorder rand consumption and change results. The same
	// ordering constraint is why slice-coalesced framing (core's
	// Config.Coalesce) is not wired here: a node-wide multi-slice frame
	// would need every tree's target chosen before any send offset is
	// drawn, reordering the m-tree rand stream against its goldens.
	sealReqs []linksec.SealReq

	// Query-tracing state (see core.Instance).
	qt         *qtrace.Tracer
	roundSpan  qtrace.Ref
	pendingAgg [][]qtrace.Ref
}

// aggSpanNames maps tree index to its aggregate span name without a
// per-send string concatenation (Trees is capped at 8 by Validate).
var aggSpanNames = [8]string{
	"aggregate:t0", "aggregate:t1", "aggregate:t2", "aggregate:t3",
	"aggregate:t4", "aggregate:t5", "aggregate:t6", "aggregate:t7",
}

// treeColor maps tree index 0..m-1 onto the packet Color byte (1..m).
func treeColor(t int) packet.Color { return packet.Color(t + 1) }

func colorTree(c packet.Color) int { return int(c) - 1 }

// New deploys the instance and runs the generalized Phase I.
func New(net *topology.Network, cfg Config, seed uint64) (*Instance, error) {
	in := &Instance{}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset re-deploys the instance over net exactly as New(net, cfg, seed)
// would, reusing the simulator, medium, MAC tables, cipher pool, and round
// buffers the previous deployment grew. Prior results are invalidated.
func (in *Instance) Reset(net *topology.Network, cfg Config, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	root := rng.New(seed)
	if in.sim == nil {
		in.sim = eventsim.New()
		in.medium = radio.New(in.sim, net, radio.PaperRate)
	} else {
		in.sim.Reset()
		in.medium.Reset(net)
	}
	macCfg := cfg.MAC
	if macCfg == (mac.Config{}) {
		macCfg = mac.DefaultConfig()
	}
	if in.mac == nil {
		in.mac = mac.New(in.sim, in.medium, net.N(), macCfg, root.Split(1))
	} else {
		in.mac.Reset(net.N(), macCfg, root.Split(1))
	}
	in.Net = net
	in.Cfg = cfg
	in.keys = linksec.NewPairwise(seed ^ 0x6d74726565)
	in.rand = root.Split(2)
	in.round = 0
	in.era = 0
	if in.polluters == nil {
		in.polluters = make(map[topology.NodeID]int64)
	} else {
		clear(in.polluters)
	}
	if in.ciphers == nil {
		in.ciphers = linksec.NewCipherCache(in.keys, cfg.Suite)
	} else {
		in.ciphers.Reset(in.keys, cfg.Suite)
	}
	if cfg.Obs != nil {
		in.medium.SetObs(cfg.Obs)
		in.mac.SetObs(cfg.Obs)
	}
	in.qt = cfg.QTrace
	in.medium.SetQTrace(cfg.QTrace, energy.DefaultModel())
	in.mac.SetQTrace(cfg.QTrace)
	in.roundSpan = qtrace.None
	buildStart := float64(in.sim.Now())
	in.buildTrees(root.Split(3))
	if cfg.Obs != nil {
		cfg.Obs.Span(obs.TrackGlobal, "phase1:mtree-construction", buildStart, float64(in.sim.Now()), 0)
	}
	return in.checkDisjoint()
}

// buildTrees runs the generalized Phase I flood.
func (in *Instance) buildTrees(roleRand *rng.Stream) {
	n := in.Net.N()
	m := in.Cfg.Trees
	in.TreeOf = make([]int, n)
	in.Parent = make([]topology.NodeID, n)
	in.Hop = make([]uint16, n)
	in.Heard = make([][][]topology.NodeID, n)
	type state struct {
		minHop  []uint16
		parent  []topology.NodeID
		armed   bool
		decided bool
	}
	states := make([]*state, n)
	for i := range states {
		in.TreeOf[i] = NoTree
		in.Parent[i] = topology.None
		in.Heard[i] = make([][]topology.NodeID, m)
		st := &state{
			minHop: make([]uint16, m),
			parent: make([]topology.NodeID, m),
		}
		for t := range st.parent {
			st.parent[t] = topology.None
		}
		states[i] = st
	}
	states[0].decided = true

	sendHello := func(src topology.NodeID, t int, hop uint16) {
		in.mac.Send(src, &packet.Packet{
			Header: packet.Header{Kind: packet.KindHello, Src: int32(src), Dst: packet.Broadcast},
			Color:  treeColor(t),
			Hop:    hop,
		})
	}

	decide := func(id topology.NodeID) {
		st := states[id]
		if st.decided {
			return
		}
		st.decided = true
		total := 0
		for t := 0; t < m; t++ {
			total += len(in.Heard[id][t])
		}
		p := 1.0
		if total > in.Cfg.K {
			p = float64(in.Cfg.K) / float64(total)
		}
		if !roleRand.Bool(p) {
			return // leaf
		}
		// Join an under-represented tree: weight (total - N_t).
		weights := make([]float64, m)
		sum := 0.0
		for t := 0; t < m; t++ {
			w := float64(total - len(in.Heard[id][t]))
			if m == 1 || w <= 0 {
				w = 1
			}
			weights[t] = w
			sum += w
		}
		u := roleRand.Float64() * sum
		choice := 0
		for t := 0; t < m; t++ {
			u -= weights[t]
			if u < 0 {
				choice = t
				break
			}
		}
		in.TreeOf[id] = choice
		in.Parent[id] = states[id].parent[choice]
		in.Hop[id] = states[id].minHop[choice] + 1
		sendHello(id, choice, in.Hop[id])
	}

	onHello := func(self topology.NodeID, p *packet.Packet) {
		t := colorTree(p.Color)
		if t < 0 || t >= m {
			return
		}
		st := states[self]
		src := topology.NodeID(p.Src)
		already := false
		for _, h := range in.Heard[self][t] {
			if h == src {
				already = true
				break
			}
		}
		if !already {
			in.Heard[self][t] = append(in.Heard[self][t], src)
			if st.parent[t] == topology.None || p.Hop < st.minHop[t] {
				st.parent[t], st.minHop[t] = src, p.Hop
			}
		}
		if self == 0 || st.decided || st.armed {
			return
		}
		for tt := 0; tt < m; tt++ {
			if len(in.Heard[self][tt]) == 0 {
				return
			}
		}
		st.armed = true
		in.sim.After(in.Cfg.DecisionDelay, func() { decide(self) })
	}

	for i := 0; i < n; i++ {
		in.mac.SetHandler(topology.NodeID(i), func(self topology.NodeID, p *packet.Packet) {
			if p.Kind == packet.KindHello {
				onHello(self, p)
			}
		})
	}
	// The base station roots every tree.
	in.sim.After(0, func() {
		for t := 0; t < m; t++ {
			sendHello(0, t, 0)
		}
	})
	in.sim.Run(in.sim.Now() + in.Cfg.Deadline)
}

// checkDisjoint verifies that parent links stay within one tree.
func (in *Instance) checkDisjoint() error {
	for i, t := range in.TreeOf {
		if t == NoTree {
			continue
		}
		p := in.Parent[i]
		if p == topology.None {
			return fmt.Errorf("mtree: aggregator %d has no parent", i)
		}
		if p != 0 && in.TreeOf[p] != t {
			return fmt.Errorf("mtree: node %d on tree %d has parent %d on tree %d", i, t, p, in.TreeOf[p])
		}
	}
	return nil
}

// CoveredAll reports whether node id heard aggregators of every tree.
func (in *Instance) CoveredAll(id topology.NodeID) bool {
	for t := 0; t < in.Cfg.Trees; t++ {
		count := len(in.Heard[id][t])
		if in.TreeOf[id] == t {
			count++
		}
		if count == 0 && id != 0 {
			return false
		}
	}
	return true
}

// CanSlice reports whether node id has l targets on every tree.
func (in *Instance) CanSlice(id topology.NodeID) bool {
	for t := 0; t < in.Cfg.Trees; t++ {
		need := in.Cfg.Slices
		count := len(in.Heard[id][t])
		if in.TreeOf[id] == t {
			count++
		}
		if count < need {
			return false
		}
	}
	return true
}

// CoverageFraction returns the fraction of sensors covered by all m trees.
func (in *Instance) CoverageFraction() float64 {
	n := in.Net.N()
	if n <= 1 {
		return 1
	}
	c := 0
	for i := 1; i < n; i++ {
		if in.CoveredAll(topology.NodeID(i)) {
			c++
		}
	}
	return float64(c) / float64(n-1)
}

// Participants returns the sensors able to slice to all trees.
func (in *Instance) Participants() []topology.NodeID {
	var out []topology.NodeID
	for i := 1; i < in.Net.N(); i++ {
		if in.CanSlice(topology.NodeID(i)) {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// Pollute turns node id into a pollution attacker adding delta when it
// forwards a partial sum; 0 removes it.
func (in *Instance) Pollute(id topology.NodeID, delta int64) {
	if delta == 0 {
		delete(in.polluters, id)
		return
	}
	in.polluters[id] = delta
}

// Verdict is the base station's majority decision over the m tree totals.
type Verdict struct {
	Totals []int64 // per-tree totals
	// Accepted is true when a strict majority of trees agree pairwise
	// within Threshold.
	Accepted bool
	// Value is the majority value (mean of the agreeing cluster).
	Value int64
	// Outliers lists the tree indices outside the majority cluster —
	// the polluted (or heavily lossy) trees.
	Outliers []int
}

// majorityVerdict clusters totals by Threshold-agreement and accepts when
// a strict majority agrees.
func majorityVerdict(totals []int64, th int64) Verdict {
	m := len(totals)
	v := Verdict{Totals: totals}
	// Find the largest set of trees that pairwise agree within th. With
	// m <= 8 a greedy pass over sorted totals suffices: any maximal
	// agreeing cluster is an interval of the sorted order with
	// max-min <= th... pairwise agreement over an interval needs exactly
	// that.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return totals[idx[a]] < totals[idx[b]] })
	bestLo, bestHi := 0, 0 // [lo, hi] inclusive window over sorted order
	for lo := 0; lo < m; lo++ {
		hi := lo
		for hi+1 < m && totals[idx[hi+1]]-totals[idx[lo]] <= th {
			hi++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	clusterSize := bestHi - bestLo + 1
	inCluster := make([]bool, m)
	var sum int64
	for i := bestLo; i <= bestHi; i++ {
		inCluster[idx[i]] = true
		sum += totals[idx[i]]
	}
	v.Accepted = 2*clusterSize > m
	if clusterSize > 0 {
		v.Value = sum / int64(clusterSize)
	}
	for t := 0; t < m; t++ {
		if !inCluster[t] {
			v.Outliers = append(v.Outliers, t)
		}
	}
	return v
}

// RunCount aggregates a COUNT (one per participant) over all m trees and
// returns the majority verdict.
func (in *Instance) RunCount() (Verdict, error) {
	readings := make([]int64, in.Net.N())
	for i := range readings {
		readings[i] = 1
	}
	return in.RunSum(readings)
}

// RunSum aggregates readings over all m trees. readings[0] is ignored.
func (in *Instance) RunSum(readings []int64) (Verdict, error) {
	if len(readings) != in.Net.N() {
		return Verdict{}, fmt.Errorf("mtree: %d readings for %d nodes", len(readings), in.Net.N())
	}
	n := in.Net.N()
	m := in.Cfg.Trees
	in.round++
	if era := in.round >> 16; era != in.era {
		// Rotate the key era before the wire round wraps: nonces carry
		// only the low 16 bits of the counter (see core.advanceRound).
		in.era = era
		in.ciphers.Reset(linksec.EraKeys(in.keys, era), in.Cfg.Suite)
	}
	round := uint16(in.round)

	if cap(in.assembled) < n {
		in.assembled = append(in.assembled[:cap(in.assembled)], make([][]*slicing.Assembler, n-cap(in.assembled))...)
	}
	in.assembled = in.assembled[:n]
	for i := range in.assembled {
		row := in.assembled[i]
		if cap(row) < m {
			row = append(row[:cap(row)], make([]*slicing.Assembler, m-cap(row))...)
		}
		row = row[:m]
		for t := range row {
			if row[t] == nil {
				row[t] = slicing.NewAssembler()
			} else {
				row[t].Reset()
			}
		}
		in.assembled[i] = row
	}
	in.childSum = resizeCleared(in.childSum, n)
	in.childCount = resizeCleared(in.childCount, n)
	in.bsSum = resizeCleared(in.bsSum, m)
	in.bsCount = resizeCleared(in.bsCount, m)

	in.installReceivers(round)

	// Phase II.
	t0 := in.sim.Now()
	in.roundSpan = qtrace.None
	if in.qt != nil {
		in.roundSpan = in.qt.Start(uint32(round), qtrace.None, -1, "round", float64(t0))
		if cap(in.pendingAgg) < n {
			in.pendingAgg = append(in.pendingAgg[:cap(in.pendingAgg)], make([][]qtrace.Ref, n-cap(in.pendingAgg))...)
		}
		in.pendingAgg = in.pendingAgg[:n]
		for i := range in.pendingAgg {
			in.pendingAgg[i] = in.pendingAgg[i][:0]
		}
	}
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if !in.CanSlice(id) {
			continue
		}
		if in.Cfg.Obs != nil {
			in.Cfg.Obs.Span(int32(id), "phase2:slicing", float64(t0), float64(t0+in.Cfg.SliceWindow), uint32(round))
		}
		slSpan := qtrace.None
		if in.qt != nil {
			slSpan = in.qt.Start(uint32(round), in.roundSpan, int32(id), "slicing", float64(t0))
			in.qt.End(slSpan, float64(t0+in.Cfg.SliceWindow))
		}
		for t := 0; t < m; t++ {
			targets := in.chooseTargets(id, t)
			shares := in.split(readings[i])
			in.sealReqs = in.sealReqs[:0]
			for idx, dst := range targets {
				if dst == id {
					in.assembled[id][t].Add(id, shares[idx])
					continue
				}
				if !in.ciphers.HasKey(id, dst) {
					continue
				}
				in.sealReqs = append(in.sealReqs, linksec.SealReq{
					Src: id, Dst: dst,
					Nonce: nonce(round, id, dst, t*in.Cfg.Slices+idx),
					Value: shares[idx],
				})
			}
			in.ciphers.SealBatch(in.sealReqs)
			for ri := range in.sealReqs {
				r := &in.sealReqs[ri]
				if !r.OK {
					continue
				}
				p := &packet.Packet{
					Header: packet.Header{Kind: packet.KindSlice, Src: int32(id), Dst: int32(r.Dst), Round: round},
					Cipher: r.Sealed.Cipher,
					Nonce:  r.Sealed.Nonce,
					Tag:    r.Sealed.Tag,
					Color:  treeColor(t),
				}
				offset := eventsim.Time(in.rand.Float64()) * in.Cfg.SliceWindow
				if in.qt != nil {
					ref := in.qt.Start(uint32(round), slSpan, int32(id), "slice", float64(t0+offset))
					in.qt.SetPeer(ref, int32(r.Dst))
					p.TraceQ = round
					p.TraceSpan = uint32(ref)
				}
				in.sim.At(t0+offset, func() { in.mac.Send(id, p) })
			}
		}
	}

	// Phase III.
	t1 := t0 + in.Cfg.SliceWindow + 0.5
	maxHop := uint16(0)
	for i := 1; i < n; i++ {
		if in.TreeOf[i] != NoTree && in.Hop[i] > maxHop {
			maxHop = in.Hop[i]
		}
	}
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if in.TreeOf[id] == NoTree {
			continue
		}
		slot := eventsim.Time(maxHop-in.Hop[id]) * in.Cfg.AggSlot
		jitter := eventsim.Time(in.rand.Float64()) * in.Cfg.AggSlot / 2
		in.sim.At(t1+slot+jitter, func() { in.sendAggregate(round, id) })
	}
	deadline := t1 + eventsim.Time(maxHop+2)*in.Cfg.AggSlot + 1.0
	if in.Cfg.Obs != nil {
		r := uint32(round)
		in.Cfg.Obs.Span(obs.TrackGlobal, "round", float64(t0), float64(deadline), r)
		in.Cfg.Obs.Span(obs.TrackGlobal, "phase3:tree-aggregation", float64(t1), float64(deadline), r)
	}
	if in.qt != nil {
		in.qt.End(in.roundSpan, float64(deadline))
	}
	in.sim.Run(deadline)

	totals := make([]int64, m)
	for t := 0; t < m; t++ {
		totals[t] = in.bsSum[t] + in.assembled[0][t].Total()
	}
	v := majorityVerdict(totals, in.Cfg.Threshold)
	if in.Cfg.Obs != nil && in.Cfg.Obs.Reg != nil {
		verdict := "rejected"
		if v.Accepted {
			verdict = "accepted"
		}
		in.Cfg.Obs.Reg.Counter("ipda_mtree_rounds_total", "majority-vote verdicts",
			obs.Label{Name: "verdict", Value: verdict}).Inc()
		in.Cfg.Obs.Reg.Counter("ipda_mtree_outlier_trees_total",
			"trees voted outside the majority cluster").Add(float64(len(v.Outliers)))
		in.Cfg.Obs.Instant(obs.TrackGlobal, "bs:verify:"+verdict, float64(in.sim.Now()), uint32(round))
	}
	if in.qt != nil {
		verdict := "verify:rejected"
		if v.Accepted {
			verdict = "verify:accepted"
		}
		vRef := in.qt.Instant(uint32(round), in.roundSpan, 0, verdict, float64(in.sim.Now()))
		if len(in.pendingAgg) > 0 {
			for _, child := range in.pendingAgg[0] {
				in.qt.SetParent(child, vRef)
			}
			in.pendingAgg[0] = in.pendingAgg[0][:0]
		}
	}
	return v, nil
}

// noteAggArrival mirrors core.Instance.noteAggArrival for the m-tree
// engine: an ":rx" instant under the sender's span plus re-parenting
// bookkeeping.
func (in *Instance) noteAggArrival(self topology.NodeID, p *packet.Packet) {
	if in.qt == nil {
		return
	}
	in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "aggregate:rx", float64(in.sim.Now()))
	if int(self) < len(in.pendingAgg) {
		in.pendingAgg[self] = append(in.pendingAgg[self], qtrace.Ref(p.TraceSpan))
	}
}

// chooseTargets picks the node's l slice targets on tree t (itself first
// when it aggregates on t).
func (in *Instance) chooseTargets(id topology.NodeID, t int) []topology.NodeID {
	cands := in.Heard[id][t]
	l := in.Cfg.Slices
	if in.TreeOf[id] == t {
		out := []topology.NodeID{id}
		idx := in.rand.Sample(len(cands), min(l-1, len(cands)))
		for _, j := range idx {
			out = append(out, cands[j])
		}
		return out
	}
	idx := in.rand.Sample(len(cands), min(l, len(cands)))
	out := make([]topology.NodeID, 0, l)
	for _, j := range idx {
		out = append(out, cands[j])
	}
	return out
}

// Rounds returns the cumulative aggregation rounds run since Reset.
func (in *Instance) Rounds() uint64 { return in.round }

func (in *Instance) split(value int64) []int64 {
	if in.Cfg.ShareSpread > 0 {
		return slicing.SplitBounded(value, in.Cfg.Slices, in.Cfg.ShareSpread, in.rand)
	}
	return slicing.Split(value, in.Cfg.Slices, in.rand)
}

func nonce(round uint16, src, dst topology.NodeID, idx int) uint32 {
	dir := uint32(0)
	if src > dst {
		dir = 0x80
	}
	return uint32(round)<<8 | dir | uint32(idx&0x7f)
}

// installReceivers wires one dispatch closure, shared by every node and
// round: in.round is constant while a round's events drain, so filtering
// on it matches the former per-round captured-round closures exactly.
func (in *Instance) installReceivers(round uint16) {
	_ = round
	if in.dispatchFn == nil {
		in.dispatchFn = func(self topology.NodeID, p *packet.Packet) {
			if p.Round != uint16(in.round) {
				return
			}
			switch p.Kind {
			case packet.KindSlice:
				t := colorTree(p.Color)
				if t < 0 || t >= in.Cfg.Trees {
					return
				}
				cipher, ok := in.ciphers.Link(topology.NodeID(p.Src), self)
				if !ok {
					return
				}
				share, err := cipher.Open(linksec.Sealed{Cipher: p.Cipher, Nonce: p.Nonce, Tag: p.Tag})
				if err != nil {
					if in.qt != nil {
						in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:rejected", float64(in.sim.Now()))
					}
					return
				}
				in.assembled[self][t].Add(topology.NodeID(p.Src), share)
				if in.qt != nil {
					in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:assembled", float64(in.sim.Now()))
				}
			case packet.KindAggregate:
				t := colorTree(p.Color)
				if t < 0 || t >= in.Cfg.Trees {
					return
				}
				if self == 0 {
					in.bsSum[t] += p.Value
					in.bsCount[t] += p.Count
					in.noteAggArrival(self, p)
					return
				}
				if in.TreeOf[self] != t {
					return
				}
				in.childSum[self] += p.Value
				in.childCount[self] += p.Count
				in.noteAggArrival(self, p)
			}
		}
	}
	for i := 0; i < in.Net.N(); i++ {
		in.mac.SetHandler(topology.NodeID(i), in.dispatchFn)
	}
}

// resizeCleared returns s resized to n elements, all zero, reusing its
// backing array when it suffices.
func resizeCleared[E int64 | uint32](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func (in *Instance) sendAggregate(round uint16, id topology.NodeID) {
	t := in.TreeOf[id]
	if t == NoTree {
		return
	}
	value := in.assembled[id][t].Total() + in.childSum[id]
	if delta, ok := in.polluters[id]; ok {
		value += delta
	}
	parent := in.Parent[id]
	if parent == topology.None {
		return
	}
	pkt := packet.Packet{
		Header: packet.Header{Kind: packet.KindAggregate, Src: int32(id), Dst: int32(parent), Round: round},
		Value:  value,
		Count:  in.childCount[id] + 1,
		Color:  treeColor(t),
	}
	if in.qt != nil {
		agg := in.qt.Start(uint32(round), in.roundSpan, int32(id), aggSpanNames[t], float64(in.sim.Now()))
		in.qt.SetPeer(agg, int32(parent))
		if int(id) < len(in.pendingAgg) {
			for _, child := range in.pendingAgg[id] {
				in.qt.SetParent(child, agg)
			}
			in.pendingAgg[id] = in.pendingAgg[id][:0]
		}
		pkt.TraceQ = round
		pkt.TraceSpan = uint32(agg)
	}
	in.mac.Send(id, &pkt)
}
