package radio

import (
	"bytes"
	"testing"

	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// lineNet builds a 3-node line: 0 -- 1 -- 2, where 0 and 2 are out of range
// of each other (the classic hidden-terminal layout).
func lineNet(t *testing.T) *topology.Network {
	t.Helper()
	// Place nodes at x = 0, 45, 90 with range 50: 0-1 and 1-2 linked,
	// 0-2 not. Grid won't do; use Random config trick: build via Grid of
	// 1x3? Simplest: craft positions through topology.Random is not
	// possible, so use a tiny custom helper network via Grid spacing.
	net, err := topology.Grid(2, 45, 50) // BS at center + 4 lattice nodes
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// pair returns a fresh sim+medium over a 2-node-in-range network.
func pair(t *testing.T) (*eventsim.Sim, *Medium, *topology.Network) {
	t.Helper()
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	return sim, New(sim, net, PaperRate), net
}

func TestBroadcastDelivery(t *testing.T) {
	sim, m, net := pair(t)
	got := map[topology.NodeID][]byte{}
	for i := 0; i < net.N(); i++ {
		id := topology.NodeID(i)
		m.SetReceiver(id, func(self topology.NodeID, frame []byte) {
			got[self] = frame
		})
	}
	frame := []byte{1, 2, 3}
	sim.At(0, func() { m.Transmit(0, packet.Broadcast, frame, 30) })
	sim.RunAll()
	want := len(net.Neighbors(0))
	if len(got) != want {
		t.Fatalf("delivered to %d nodes, want %d (all neighbors)", len(got), want)
	}
	for id, f := range got {
		if string(f) != string(frame) {
			t.Fatalf("node %d got %v", id, f)
		}
	}
}

func TestUnicastOnlyAddressee(t *testing.T) {
	sim, m, net := pair(t)
	delivered := map[topology.NodeID]bool{}
	for i := 0; i < net.N(); i++ {
		id := topology.NodeID(i)
		m.SetReceiver(id, func(self topology.NodeID, _ []byte) { delivered[self] = true })
	}
	dst := net.Neighbors(0)[0]
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{9}, 20) })
	sim.RunAll()
	if len(delivered) != 1 || !delivered[dst] {
		t.Fatalf("unicast delivered to %v, want only %d", delivered, dst)
	}
}

func TestTapSeesUnaddressedFrames(t *testing.T) {
	sim, m, net := pair(t)
	type obs struct {
		observer, src topology.NodeID
		collided      bool
	}
	var taps []obs
	m.AddTap(func(observer topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool) {
		taps = append(taps, obs{observer, src, collided})
	})
	dst := net.Neighbors(0)[0]
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{9}, 20) })
	sim.RunAll()
	// Every neighbor of 0 observes the frame, not just dst.
	if len(taps) != len(net.Neighbors(0)) {
		t.Fatalf("taps = %d, want %d", len(taps), len(net.Neighbors(0)))
	}
	for _, o := range taps {
		if o.src != 0 || o.collided {
			t.Fatalf("unexpected tap %+v", o)
		}
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	net := lineNet(t)
	// Find two lattice nodes both adjacent to some center node but not to
	// each other (hidden pair).
	var a, b, mid topology.NodeID = -1, -1, -1
outer:
	for i := 0; i < net.N(); i++ {
		for _, m1 := range net.Neighbors(topology.NodeID(i)) {
			for _, m2 := range net.Neighbors(topology.NodeID(i)) {
				if m1 != m2 && !net.InRange(m1, m2) {
					a, b, mid = m1, m2, topology.NodeID(i)
					break outer
				}
			}
		}
	}
	if a < 0 {
		t.Skip("no hidden pair in test topology")
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	received := 0
	m.SetReceiver(mid, func(topology.NodeID, []byte) { received++ })
	// Overlapping transmissions from the hidden pair.
	sim.At(0, func() { m.Transmit(a, packet.Broadcast, []byte{1}, 100) })
	sim.At(0.0001, func() { m.Transmit(b, packet.Broadcast, []byte{2}, 100) })
	sim.RunAll()
	if received != 0 {
		t.Fatalf("hidden-terminal frames decoded at %d: %d", mid, received)
	}
	if m.Stats().FramesCollided == 0 {
		t.Fatal("no collisions recorded")
	}
}

func TestNonOverlappingFramesBothDecode(t *testing.T) {
	sim, m, net := pair(t)
	dst := net.Neighbors(0)[0]
	count := 0
	m.SetReceiver(dst, func(topology.NodeID, []byte) { count++ })
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{1}, 50) })
	// 50 bytes at 1 Mbps = 400 us; second frame well clear.
	sim.At(0.001, func() { m.Transmit(0, int32(dst), []byte{2}, 50) })
	sim.RunAll()
	if count != 2 {
		t.Fatalf("decoded %d frames, want 2", count)
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	sim, m, net := pair(t)
	dst := net.Neighbors(0)[0]
	count := 0
	m.SetReceiver(dst, func(topology.NodeID, []byte) { count++ })
	// dst starts a long transmission; 0 sends to dst during it.
	sim.At(0, func() { m.Transmit(dst, packet.Broadcast, []byte{7}, 1000) })
	sim.At(0.001, func() { m.Transmit(0, int32(dst), []byte{1}, 20) })
	sim.RunAll()
	if count != 0 {
		t.Fatal("receiver decoded a frame while transmitting")
	}
}

func TestBusy(t *testing.T) {
	sim, m, net := pair(t)
	dst := net.Neighbors(0)[0]
	var during, afterT bool
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{1}, 125) }) // 1 ms
	sim.At(0.0005, func() { during = m.Busy(dst) })
	sim.At(0.002, func() { afterT = m.Busy(dst) })
	sim.RunAll()
	if !during {
		t.Fatal("channel not busy during transmission")
	}
	if afterT {
		t.Fatal("channel busy after transmission ended")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	sim, m, _ := pair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.At(0, func() {
		m.Transmit(0, packet.Broadcast, []byte{1}, 1000)
		m.Transmit(0, packet.Broadcast, []byte{2}, 1000)
	})
	sim.RunAll()
}

func TestStatsAccounting(t *testing.T) {
	sim, m, net := pair(t)
	dst := net.Neighbors(0)[0]
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{1}, 40) })
	sim.At(0.01, func() { m.Transmit(dst, int32(0), []byte{2}, 60) })
	sim.RunAll()
	s := m.Stats()
	if s.FramesSent != 2 || s.BytesSent != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FramesDelivered != 2 {
		t.Fatalf("delivered = %d", s.FramesDelivered)
	}
	if m.NodeBytesSent(0) != 40 || m.NodeFramesSent(0) != 1 {
		t.Fatalf("node 0 accounting: %d bytes %d frames", m.NodeBytesSent(0), m.NodeFramesSent(0))
	}
	if m.TotalBytes() != 100 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestEnergyMetering(t *testing.T) {
	sim, m, net := pair(t)
	meter, err := energy.NewMeter(net.N(), energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	m.SetMeter(meter)
	dst := net.Neighbors(0)[0]
	sim.At(0, func() { m.Transmit(0, int32(dst), []byte{1}, 50) })
	sim.RunAll()
	model := energy.DefaultModel()
	if got, want := meter.Spent(0), 50*model.TxPerByte; got != want {
		t.Fatalf("tx charge %v, want %v", got, want)
	}
	// Every neighbor of 0 paid the receive cost, not just the addressee.
	for _, nb := range net.Neighbors(0) {
		if got, want := meter.Spent(nb), 50*model.RxPerByte; got != want {
			t.Fatalf("rx charge at %d = %v, want %v", nb, got, want)
		}
	}
}

func TestFadingLoss(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	m.SetLoss(0.5, rng.New(9))
	dst := net.Neighbors(0)[0]
	got := 0
	m.SetReceiver(dst, func(topology.NodeID, []byte) { got++ })
	const frames = 400
	for i := 0; i < frames; i++ {
		i := i
		sim.At(eventsim.Time(i)*0.01, func() { m.Transmit(0, int32(dst), []byte{byte(i)}, 25) })
	}
	sim.RunAll()
	if got < frames*35/100 || got > frames*65/100 {
		t.Fatalf("delivered %d of %d at 50%% loss", got, frames)
	}
}

func TestSetLossValidation(t *testing.T) {
	net, _ := topology.Grid(2, 30, 50)
	m := New(eventsim.New(), net, PaperRate)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetLoss(1.0, rng.New(1))
}

func TestSingleEventPerTransmit(t *testing.T) {
	// All receptions of a frame end at the same instant, so a transmission
	// must cost exactly one simulation event regardless of degree.
	sim, m, net := pair(t)
	deg := len(net.Neighbors(0))
	if deg < 2 {
		t.Fatalf("test topology too sparse (degree %d)", deg)
	}
	delivered := 0
	for i := 0; i < net.N(); i++ {
		m.SetReceiver(topology.NodeID(i), func(topology.NodeID, []byte) { delivered++ })
	}
	sim.At(0, func() { m.Transmit(0, packet.Broadcast, []byte{1}, 30) })
	sim.Run(0) // fire only the t=0 kickoff, leaving the completion pending
	if got := sim.Pending(); got != 1 {
		t.Fatalf("Pending = %d after Transmit to %d neighbors, want 1", got, deg)
	}
	before := sim.Fired()
	sim.RunAll()
	if got := sim.Fired() - before; got != 1 {
		t.Fatalf("completion fired %d events, want 1", got)
	}
	if delivered != deg {
		t.Fatalf("delivered to %d nodes, want %d", delivered, deg)
	}
}

func TestTransmitAllocFree(t *testing.T) {
	// A warm transmit+drain cycle on a fixed topology must not allocate:
	// transmissions, receptions, and events all recycle through pools.
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	frame := []byte{1, 2, 3}
	for i := 0; i < 8; i++ { // warm the pools and slice capacities
		m.Transmit(0, packet.Broadcast, frame, 30)
		sim.RunAll()
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Transmit(0, packet.Broadcast, frame, 30)
		sim.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("warm Transmit+drain allocated %v per cycle, want 0", allocs)
	}
}

func TestObsCountsPerKind(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	sink := obs.NewSink()
	m.SetObs(sink)
	hello := (&packet.Packet{Header: packet.Header{Kind: packet.KindHello, Src: 0, Dst: packet.Broadcast}})
	frame := hello.Marshal()
	size := hello.Size()
	m.Transmit(0, packet.Broadcast, frame, size)
	sim.RunAll()
	find := func(key string) float64 {
		var buf bytes.Buffer
		if err := sink.Reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		vals, err := obs.ParseProm(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return vals[key]
	}
	if got := find(`ipda_radio_tx_frames_total{kind="hello"}`); got != 1 {
		t.Fatalf("tx hello frames = %v, want 1", got)
	}
	if got := find(`ipda_radio_tx_bytes_total{kind="hello"}`); got != float64(size) {
		t.Fatalf("tx hello bytes = %v, want %d", got, size)
	}
	// 3 other grid nodes hear the broadcast (grid 2 = 2x2? degree varies);
	// just assert rx frames equals the sender's degree.
	if got := find(`ipda_radio_rx_frames_total{kind="hello"}`); got != float64(net.Degree(0)) {
		t.Fatalf("rx hello frames = %v, want %d", got, net.Degree(0))
	}
}

func TestTransmitAllocFreeWithObs(t *testing.T) {
	// The 0 allocs/op contract must survive with instrumentation ENABLED:
	// handles are dense, so the per-frame cost is a few float adds.
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	m.SetObs(obs.NewSink())
	frame := []byte{byte(packet.KindSlice), 2, 3}
	for i := 0; i < 8; i++ {
		m.Transmit(0, packet.Broadcast, frame, 30)
		sim.RunAll()
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Transmit(0, packet.Broadcast, frame, 30)
		sim.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("warm Transmit+drain with obs allocated %v per cycle, want 0", allocs)
	}
}

func TestDuration(t *testing.T) {
	sim := eventsim.New()
	net, _ := topology.Grid(2, 30, 50)
	m := New(sim, net, 1e6)
	if d := m.Duration(125); d != eventsim.Time(0.001) {
		t.Fatalf("Duration(125) = %v, want 1 ms", d)
	}
}

// BenchmarkTransmitDense measures the full per-frame hot path — one
// broadcast plus drain on the paper's N=400 topology (average degree ≈12).
// Pre-PR baseline (per-neighbor reception/closure/event allocations):
// 6175 ns/op, 2297 B/op, 53 allocs/op.
func BenchmarkTransmitDense(b *testing.B) {
	net, err := topology.Random(topology.PaperConfig(400), rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	frame := make([]byte, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % net.N())
		m.Transmit(src, packet.Broadcast, frame, 32)
		sim.RunAll()
	}
}

// BenchmarkTransmitDenseObs is BenchmarkTransmitDense with the
// instrumentation sink attached: the per-frame overhead of the dense
// metric handles (a nil check plus array increments), still 0 allocs/op.
func BenchmarkTransmitDenseObs(b *testing.B) {
	net, err := topology.Random(topology.PaperConfig(400), rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	m.SetObs(obs.NewSink())
	frame := make([]byte, 21)
	frame[0] = byte(packet.KindHello)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % net.N())
		m.Transmit(src, packet.Broadcast, frame, 32)
		sim.RunAll()
	}
}

// BenchmarkTransmitDenseQTraceDisabled is BenchmarkTransmitDense with
// the query-tracing hook explicitly cleared: the disabled-trace transmit
// hot path is one pointer check per frame and must stay at 0 allocs/op
// (benchgate pins this against BENCH_fig7.json's gates map).
func BenchmarkTransmitDenseQTraceDisabled(b *testing.B) {
	net, err := topology.Random(topology.PaperConfig(400), rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	m.SetQTrace(nil, energy.DefaultModel())
	frame := make([]byte, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % net.N())
		m.Transmit(src, packet.Broadcast, frame, 32)
		sim.RunAll()
	}
}

func TestOutOfRangeNoDelivery(t *testing.T) {
	// Two isolated nodes: craft with a sparse grid (spacing > range).
	net, err := topology.Grid(2, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Find two nodes with no neighbors in common... actually spacing 200
	// with range 50 isolates all lattice nodes.
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	count := 0
	for i := 0; i < net.N(); i++ {
		m.SetReceiver(topology.NodeID(i), func(topology.NodeID, []byte) { count++ })
	}
	var isolated topology.NodeID = -1
	for i := 0; i < net.N(); i++ {
		if net.Degree(topology.NodeID(i)) == 0 {
			isolated = topology.NodeID(i)
			break
		}
	}
	if isolated < 0 {
		t.Skip("no isolated node")
	}
	sim.At(0, func() { m.Transmit(isolated, packet.Broadcast, []byte{1}, 30) })
	sim.RunAll()
	if count != 0 {
		t.Fatal("isolated node's frame was delivered")
	}
}

func TestTxHookFiresOnNativeOnly(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	type export struct {
		src  topology.NodeID
		dst  int32
		size int
	}
	var hooked []export
	m.SetTxHook(func(src topology.NodeID, dst int32, frame []byte, size int) {
		hooked = append(hooked, export{src, dst, size})
	})
	sim.At(0, func() { m.Transmit(0, packet.Broadcast, []byte{1}, 30) })
	sim.At(0.01, func() { m.InjectForeign(1, packet.Broadcast, []byte{2}, 40) })
	sim.RunAll()
	if len(hooked) != 1 || hooked[0] != (export{0, packet.Broadcast, 30}) {
		t.Fatalf("hook saw %v, want exactly the native transmit", hooked)
	}
}

func TestInjectForeignPhysicsMatchTransmit(t *testing.T) {
	// Run the same scenario twice — once all-native, once with one sender
	// replayed via InjectForeign — and require identical delivery and
	// collision outcomes at every observer. Stats differ only on the tx
	// side (the foreign frame's home medium owns those).
	run := func(foreign bool) (delivered map[topology.NodeID]int, st Stats) {
		net, err := topology.Grid(2, 30, 50)
		if err != nil {
			t.Fatal(err)
		}
		sim := eventsim.New()
		m := New(sim, net, PaperRate)
		delivered = map[topology.NodeID]int{}
		for i := 0; i < net.N(); i++ {
			id := topology.NodeID(i)
			m.SetReceiver(id, func(self topology.NodeID, _ []byte) { delivered[self]++ })
		}
		// Two overlapping broadcasts (collision at common hearers), then a
		// clean one.
		put := func(src topology.NodeID, frame []byte, size int) {
			if foreign && src == 1 {
				m.InjectForeign(src, packet.Broadcast, frame, size)
			} else {
				m.Transmit(src, packet.Broadcast, frame, size)
			}
		}
		sim.At(0, func() { put(0, []byte{1}, 30) })
		sim.At(0.00001, func() { put(1, []byte{2}, 30) })
		sim.At(0.01, func() { put(1, []byte{3}, 30) })
		sim.RunAll()
		return delivered, m.Stats()
	}
	dNative, stNative := run(false)
	dForeign, stForeign := run(true)
	if len(dNative) != len(dForeign) {
		t.Fatalf("delivery maps differ: %v vs %v", dNative, dForeign)
	}
	for id, n := range dNative {
		if dForeign[id] != n {
			t.Fatalf("node %d: native %d deliveries, foreign %d", id, n, dForeign[id])
		}
	}
	if stForeign.FramesSent != stNative.FramesSent-2 {
		t.Fatalf("foreign FramesSent = %d, want %d (tx-side accounting skipped)",
			stForeign.FramesSent, stNative.FramesSent-2)
	}
	if stForeign.FramesDelivered != stNative.FramesDelivered ||
		stForeign.FramesCollided != stNative.FramesCollided {
		t.Fatalf("rx-side stats diverged: %+v vs %+v", stForeign, stNative)
	}
}

func TestInjectForeignSkipsSenderCounters(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	m := New(sim, net, PaperRate)
	sim.At(0, func() { m.InjectForeign(0, packet.Broadcast, []byte{1}, 30) })
	sim.RunAll()
	if m.NodeBytesSent(0) != 0 || m.NodeFramesSent(0) != 0 || m.TotalBytes() != 0 {
		t.Fatalf("foreign injection charged the sender mirror: bytes=%d frames=%d total=%d",
			m.NodeBytesSent(0), m.NodeFramesSent(0), m.TotalBytes())
	}
}
