// Package radio models the shared wireless medium of a sensor network —
// the physical layer of our ns-2 substitute.
//
// The model captures the properties the paper's evaluation depends on:
//
//   - Broadcast: every frame is heard by every node in range of the sender,
//     which is what makes eavesdropping (and the paper's two-colored-HELLO
//     detection argument) possible. Promiscuous taps observe all traffic.
//   - Collisions: two overlapping transmissions audible at a receiver
//     corrupt each other there (including hidden-terminal collisions the
//     MAC cannot prevent); a node cannot receive while transmitting.
//   - Timing: a frame of s bytes occupies the channel for s*8/DataRate
//     seconds; the evaluation uses the paper's 1 Mbps.
//   - Accounting: per-node and global byte/frame counters feed the
//     communication-overhead experiments (Figure 7).
//
// Propagation delay is negligible at sensor-network scales (50 m ≈ 0.17 µs)
// and is modelled as zero.
//
// Every reception of one frame ends at the same instant (zero propagation
// delay), so a transmission schedules exactly ONE end-of-air event that
// resolves all neighbor receptions in deterministic neighbor order — not
// one event per neighbor. Transmission records (and the receptions inlined
// in them) recycle through a per-medium free list, making the steady-state
// per-frame path allocation-free.
package radio

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Receiver handles frames successfully decoded by a node. The frame slice
// is only valid for the duration of the call: senders reuse their buffers
// across transmissions, so a receiver that needs the bytes later must copy.
type Receiver func(self topology.NodeID, frame []byte)

// BatchReceiver handles one frame for every node that decoded it, in
// deterministic neighbor order — the vectorized alternative to per-node
// Receivers. The medium resolves all of a transmission's receptions first
// (carrier bookkeeping, energy, taps, obs, stats) and then hands the frame
// to the batch receiver exactly once, so a MAC can decode it once and fan
// the shared view out to every receiver. Neither the frame nor the `to`
// slice may be retained past the call.
type BatchReceiver func(frame []byte, to []topology.NodeID)

// Tap observes every frame audible at a node, decoded or not — the
// eavesdropper's and the monitor's view of the medium. collided reports
// whether the frame was corrupted at this observer. As with Receiver, the
// frame slice must not be retained past the call.
type Tap func(observer topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool)

// TxHook observes every native transmission at its start — the export
// point for cross-shard frame mirroring. Injected foreign frames never
// fire it. The frame slice must not be retained past the call.
type TxHook func(src topology.NodeID, dst int32, frame []byte, size int)

// Stats are cumulative medium counters.
type Stats struct {
	FramesSent      uint64
	BytesSent       uint64
	FramesDelivered uint64 // successful decodes at addressed receivers
	FramesCollided  uint64 // receptions lost to collisions or half-duplex

	// FramesCoalesced counts native KindSliceBatch transmissions and
	// SlicesCoalesced the slices they carried — the frame economy the
	// -coalesce mode buys (both stay 0 with coalescing off).
	FramesCoalesced uint64
	SlicesCoalesced uint64
}

// Medium is the shared radio channel over a fixed topology. It is driven
// entirely by the owning simulation and is not safe for concurrent use.
type Medium struct {
	sim       *eventsim.Sim
	net       *topology.Network
	rateBps   float64
	receiver  []Receiver
	batchRecv BatchReceiver
	batch     []topology.NodeID // reusable ok-receiver staging for finish
	taps      []Tap

	txUntil   []eventsim.Time // per node: end of current transmission
	incoming  [][]*reception  // per node: receptions in progress
	nodeSent  []uint64        // per node: bytes transmitted
	nodeCount []uint64        // per node: frames transmitted
	txPool    []*transmission // recycled transmission records
	stats     Stats
	meter     *energy.Meter
	lossRate  float64
	lossRand  *rng.Stream
	obs       *mediumObs
	txHook    TxHook
	qt        *qtrace.Tracer
	qtModel   energy.Model // per-byte joule attribution for traced frames
}

// mediumObs holds the medium's pre-resolved instrument handles, indexed
// by packet.Kind (0 = unknown). A nil *mediumObs disables instrumentation
// for the cost of one pointer check per frame.
type mediumObs struct {
	txFrames   [int(packet.KindSliceBatch) + 1]obs.Counter
	txBytes    [int(packet.KindSliceBatch) + 1]obs.Counter
	rxFrames   [int(packet.KindSliceBatch) + 1]obs.Counter
	rxBytes    [int(packet.KindSliceBatch) + 1]obs.Counter
	collFrames [int(packet.KindSliceBatch) + 1]obs.Counter
	dropBytes  [int(packet.KindSliceBatch) + 1]obs.Counter

	coalesced      obs.Counter
	slicesPerFrame obs.Histogram
}

// kindLabels maps packet.Kind to its metric label value.
var kindLabels = [int(packet.KindSliceBatch) + 1]string{
	"unknown", "hello", "query", "slice", "aggregate", "ack", "slice_batch",
}

// SetObs attaches an instrumentation sink. Label sets resolve to dense
// counter handles here, once; the per-frame path then pays one nil check
// plus array-indexed adds and stays allocation-free.
func (m *Medium) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Reg == nil {
		m.obs = nil
		return
	}
	mo := &mediumObs{}
	for k, label := range kindLabels {
		kl := obs.Label{Name: "kind", Value: label}
		mo.txFrames[k] = sink.Reg.Counter("ipda_radio_tx_frames_total", "frames put on the air", kl)
		mo.txBytes[k] = sink.Reg.Counter("ipda_radio_tx_bytes_total", "bytes put on the air (incl. physical overhead)", kl)
		mo.rxFrames[k] = sink.Reg.Counter("ipda_radio_rx_frames_total", "frames decoded at addressed receivers", kl)
		mo.rxBytes[k] = sink.Reg.Counter("ipda_radio_rx_bytes_total", "bytes decoded at addressed receivers", kl)
		mo.collFrames[k] = sink.Reg.Counter("ipda_radio_collision_frames_total", "addressed receptions lost to collisions, fading, or half-duplex", kl)
		mo.dropBytes[k] = sink.Reg.Counter("ipda_radio_drop_bytes_total", "bytes of addressed receptions lost in the air", kl)
	}
	mo.coalesced = sink.Reg.Counter("ipda_radio_frames_coalesced_total", "multi-slice frames put on the air by the coalescing mode")
	mo.slicesPerFrame = sink.Reg.Histogram("ipda_radio_coalesced_slices", "slices carried per coalesced frame",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})
	m.obs = mo
}

// SetQTrace attaches a query tracer: every native transmission carrying
// a trace context gets its airtime, bytes, and energy (tx plus the rx
// cost of every audible reception, under model's per-byte rates)
// attributed to the causing span. Tracing only reads medium state; the
// disabled path is one nil check per frame.
func (m *Medium) SetQTrace(t *qtrace.Tracer, model energy.Model) {
	m.qt = t
	m.qtModel = model
}

// reception is one neighbor's view of a frame in flight. Receptions live
// inline in their transmission's recs slice; incoming lists hold pointers
// into it, which stay valid because recs is sized up front and never grown
// while pointers are outstanding.
type reception struct {
	nb topology.NodeID // the observer
	ok bool
}

// transmission is one frame in flight: the shared fields of all its
// receptions plus the single end-of-air event closure. The closure is built
// once per pooled record and captures the record itself, so a recycled
// transmission schedules its completion without allocating.
type transmission struct {
	src   topology.NodeID
	dst   topology.NodeID
	frame []byte
	size  int
	recs  []reception
	fire  func()
}

// New creates a medium over net driven by sim at the given data rate.
func New(sim *eventsim.Sim, net *topology.Network, rateBps float64) *Medium {
	if rateBps <= 0 {
		panic("radio: data rate must be positive")
	}
	n := net.N()
	return &Medium{
		sim:       sim,
		net:       net,
		rateBps:   rateBps,
		receiver:  make([]Receiver, n),
		txUntil:   make([]eventsim.Time, n),
		incoming:  make([][]*reception, n),
		nodeSent:  make([]uint64, n),
		nodeCount: make([]uint64, n),
	}
}

// PaperRate is the 1 Mbps data rate of the paper's simulation setup.
const PaperRate = 1e6

// Reset returns the medium to its post-New state over a (possibly new)
// topology while keeping its allocated storage: per-node tables are resized
// and cleared in place, and the transmission pool survives so the next
// run's frames reuse this run's records. Receivers, taps, the meter, the
// loss model, and the obs sink are all detached — exactly the fields New
// leaves unset — so the owning stack must rewire what it needs, same as
// after a fresh New.
// Net returns the network the medium currently simulates — the one passed
// to New or the latest Reset. MAC layers that derive geometry-dependent
// schedules (slotted TDMA) read it at their own Reset time.
func (m *Medium) Net() *topology.Network { return m.net }

func (m *Medium) Reset(net *topology.Network) {
	n := net.N()
	m.net = net
	m.receiver = resizeReceivers(m.receiver, n)
	m.batchRecv = nil
	m.taps = m.taps[:0]
	m.txUntil = resizeTimes(m.txUntil, n)
	if cap(m.incoming) < n {
		m.incoming = make([][]*reception, n)
	}
	m.incoming = m.incoming[:n]
	for i := range m.incoming {
		// Receptions still "in the air" at the end of a run point into
		// transmission records whose end-of-air event died with the old
		// schedule; drop them (their records are garbage, a bounded loss).
		m.incoming[i] = m.incoming[i][:0]
	}
	m.nodeSent = resizeCounters(m.nodeSent, n)
	m.nodeCount = resizeCounters(m.nodeCount, n)
	m.stats = Stats{}
	m.meter = nil
	m.lossRate = 0
	m.lossRand = nil
	m.obs = nil
	m.txHook = nil
	m.qt = nil
}

func resizeReceivers(s []Receiver, n int) []Receiver {
	if cap(s) < n {
		return make([]Receiver, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func resizeTimes(s []eventsim.Time, n int) []eventsim.Time {
	if cap(s) < n {
		return make([]eventsim.Time, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeCounters(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// SetReceiver installs the decode callback for a node.
func (m *Medium) SetReceiver(id topology.NodeID, r Receiver) { m.receiver[id] = r }

// SetBatchReceiver installs a medium-wide batch decode callback. When one
// is installed it replaces the per-node Receiver path entirely: finish
// resolves every reception's bookkeeping first and then delivers the frame
// once, with the ordered list of nodes that decoded it. Reset detaches it.
func (m *Medium) SetBatchReceiver(r BatchReceiver) { m.batchRecv = r }

// AddTap installs a promiscuous observer over the whole medium.
func (m *Medium) AddTap(t Tap) { m.taps = append(m.taps, t) }

// SetMeter attaches an energy meter: every transmission charges its
// sender and every audible frame charges its hearers (decoded or not —
// the radio must power its receive chain either way).
func (m *Medium) SetMeter(meter *energy.Meter) { m.meter = meter }

// SetLoss adds independent per-reception fading loss: each reception is
// corrupted with probability rate on top of the collision model, drawing
// from rand. This approximates shadowing/fading that a disk propagation
// model otherwise hides. rate must be in [0, 1).
func (m *Medium) SetLoss(rate float64, rand *rng.Stream) {
	if rate < 0 || rate >= 1 {
		panic("radio: loss rate must be in [0, 1)")
	}
	m.lossRate = rate
	m.lossRand = rand
}

// Stats returns cumulative medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// NodeBytesSent returns the bytes transmitted by one node.
func (m *Medium) NodeBytesSent(id topology.NodeID) uint64 { return m.nodeSent[id] }

// NodeFramesSent returns the frames transmitted by one node.
func (m *Medium) NodeFramesSent(id topology.NodeID) uint64 { return m.nodeCount[id] }

// TotalBytes returns the total bytes put on the air.
func (m *Medium) TotalBytes() uint64 { return m.stats.BytesSent }

// Duration returns the channel occupancy of a frame of size bytes.
func (m *Medium) Duration(size int) eventsim.Time {
	return eventsim.Time(float64(size) * 8 / m.rateBps)
}

// Busy reports whether node id senses the channel busy right now: it is
// transmitting, or at least one transmitter is audible.
func (m *Medium) Busy(id topology.NodeID) bool {
	if m.txUntil[id] > m.sim.Now() {
		return true
	}
	return len(m.incoming[id]) > 0
}

// getTx pops a transmission record from the pool, building the completion
// closure only on first allocation.
func (m *Medium) getTx() *transmission {
	if n := len(m.txPool); n > 0 {
		tx := m.txPool[n-1]
		m.txPool[n-1] = nil
		m.txPool = m.txPool[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.fire = func() { m.finish(tx) }
	return tx
}

// Transmit puts a frame on the air from src. size is the on-air length in
// bytes (including physical overhead); dst is a node ID or
// packet.Broadcast. Delivery outcomes are resolved when the transmission
// ends. Transmitting while already transmitting is a MAC bug and panics.
//
// Exactly one simulation event is scheduled per call, regardless of the
// sender's degree: all receptions end at the same instant and are resolved
// by the same event in neighbor order.
func (m *Medium) Transmit(src topology.NodeID, dst int32, frame []byte, size int) {
	m.transmit(src, dst, frame, size, true)
}

// InjectForeign replays a transmission that originated in another shard's
// medium: the physics — channel occupancy at the source mirror, carrier
// sense, collisions, half-duplex, receptions — are identical to Transmit,
// but tx-side accounting (frame/byte counters, energy charge, obs tx
// metrics) is skipped, because the frame's home medium already charged
// them, and the tx hook does not re-fire, so a mirrored frame can never
// echo back across the border. The caller must invoke it at the frame's
// original timestamp (schedule it via the owning sim).
func (m *Medium) InjectForeign(src topology.NodeID, dst int32, frame []byte, size int) {
	m.transmit(src, dst, frame, size, false)
}

// SetTxHook installs a callback fired at the start of every native
// transmission (never for injected foreign ones). The sharded engine uses
// it to export border traffic to neighbor shards. The frame slice is only
// valid for the duration of the call. Reset detaches the hook.
func (m *Medium) SetTxHook(h TxHook) { m.txHook = h }

func (m *Medium) transmit(src topology.NodeID, dst int32, frame []byte, size int, native bool) {
	now := m.sim.Now()
	if m.txUntil[src] > now {
		panic(fmt.Sprintf("radio: node %d transmit while transmitting", src))
	}
	dur := m.Duration(size)
	m.txUntil[src] = now + dur
	if native {
		m.nodeSent[src] += uint64(size)
		m.nodeCount[src]++
		m.stats.FramesSent++
		m.stats.BytesSent += uint64(size)
		if m.meter != nil {
			m.meter.ChargeTx(src, size)
		}
		if c := packet.FrameBatchCount(frame); c > 0 {
			m.stats.FramesCoalesced++
			m.stats.SlicesCoalesced += uint64(c)
			if m.obs != nil {
				m.obs.coalesced.Inc()
				m.obs.slicesPerFrame.Observe(float64(c))
			}
		}
		if m.obs != nil {
			k := packet.FrameKind(frame)
			m.obs.txFrames[k].Inc()
			m.obs.txBytes[k].Add(float64(size))
		}
		if m.qt != nil {
			if span := qtrace.Ref(packet.FrameTraceSpan(frame)); span != qtrace.None {
				m.qt.AddAir(span, float64(dur), size)
				m.qt.AddJoules(span, float64(size)*m.qtModel.TxPerByte)
			}
		}
		if m.txHook != nil {
			m.txHook(src, dst, frame, size)
		}
	}

	// A node that starts transmitting corrupts any reception in progress
	// at itself (half-duplex).
	for _, rec := range m.incoming[src] {
		rec.ok = false
	}

	nbs := m.net.Neighbors(src)
	tx := m.getTx()
	tx.src, tx.dst, tx.frame, tx.size = src, topology.NodeID(dst), frame, size
	// Size recs before taking pointers into it: incoming lists alias the
	// slice's elements, so it must not grow until the frame resolves.
	if cap(tx.recs) < len(nbs) {
		tx.recs = make([]reception, len(nbs))
	} else {
		tx.recs = tx.recs[:len(nbs)]
	}
	for i, nb := range nbs {
		rec := &tx.recs[i]
		rec.nb = nb
		rec.ok = true
		if m.lossRate > 0 && m.lossRand.Bool(m.lossRate) {
			rec.ok = false
		}
		// Receiver busy transmitting: cannot decode.
		if m.txUntil[nb] > now {
			rec.ok = false
		}
		// Overlap with other receptions corrupts all of them at nb.
		if len(m.incoming[nb]) > 0 {
			rec.ok = false
			for _, other := range m.incoming[nb] {
				other.ok = false
			}
		}
		m.incoming[nb] = append(m.incoming[nb], rec)
	}
	m.sim.At(now+dur, tx.fire)
}

// finish resolves every reception of one transmission, in neighbor order —
// the same order per-neighbor events fired in when each reception had its
// own event, so event-level determinism is unchanged.
//
// With a batch receiver installed, resolution is two passes: the first
// settles every reception's outcome and bookkeeping (incoming removal,
// half-duplex, energy, qtrace, taps, stats, obs) while staging the nodes
// that decoded the frame; the second hands the frame to the batch receiver
// once. Handlers never read transient radio state synchronously (they only
// schedule strictly-future events) and the bookkeeping draws no
// randomness, so the split is behavior-identical to the interleaved
// per-receiver dispatch — receivers still observe the frame in the same
// relative order.
//
// Coalesced multi-slice frames (packet.KindSliceBatch) are delivered
// promiscuously: the frame is anchored to one ACKing destination but
// carries slices for several neighbors, so every node that decoded it
// receives it. Delivery stats still count only the addressed anchor,
// keeping FramesDelivered's meaning; coalescing has its own tx-side
// counters.
func (m *Medium) finish(tx *transmission) {
	deliver := m.batch[:0]
	batched := m.batchRecv != nil
	promisc := batched && packet.FrameKind(tx.frame) == packet.KindSliceBatch
	for i := range tx.recs {
		rec := &tx.recs[i]
		nb := rec.nb
		// Remove rec from the active set.
		active := m.incoming[nb]
		for j, r := range active {
			if r == rec {
				active[j] = active[len(active)-1]
				m.incoming[nb] = active[:len(active)-1]
				break
			}
		}
		// If the receiver is mid-transmission at the end of the frame it
		// also cannot have decoded it.
		if m.txUntil[nb] > m.sim.Now() {
			rec.ok = false
		}
		if m.meter != nil {
			m.meter.ChargeRx(nb, tx.size)
		}
		if m.qt != nil {
			if span := qtrace.Ref(packet.FrameTraceSpan(tx.frame)); span != qtrace.None {
				m.qt.AddJoules(span, float64(tx.size)*m.qtModel.RxPerByte)
			}
		}
		addressed := tx.dst == topology.NodeID(packet.Broadcast) || tx.dst == nb
		for _, tap := range m.taps {
			tap(nb, tx.src, tx.dst, tx.frame, !rec.ok)
		}
		if !rec.ok {
			if addressed {
				m.stats.FramesCollided++
				if m.obs != nil {
					k := packet.FrameKind(tx.frame)
					m.obs.collFrames[k].Inc()
					m.obs.dropBytes[k].Add(float64(tx.size))
				}
			}
			continue
		}
		if addressed {
			m.stats.FramesDelivered++
			if m.obs != nil {
				k := packet.FrameKind(tx.frame)
				m.obs.rxFrames[k].Inc()
				m.obs.rxBytes[k].Add(float64(tx.size))
			}
		}
		if addressed || promisc {
			if batched {
				deliver = append(deliver, nb)
			} else if h := m.receiver[nb]; h != nil {
				h(nb, tx.frame)
			}
		}
	}
	frame := tx.frame
	tx.frame = nil // do not pin the sender's buffer while pooled
	m.txPool = append(m.txPool, tx)
	m.batch = deliver[:0]
	if batched && len(deliver) > 0 {
		m.batchRecv(frame, deliver)
	}
}
