// Package metrics computes the evaluation metrics of Section IV-B from
// protocol state: tree coverage (Figure 8a), participation (Figure 8b),
// aggregation accuracy (Figure 8c), and per-node traffic summaries
// (Figure 7).
package metrics

import (
	"math"

	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// CoverageFraction returns the fraction of sensor nodes (excluding the
// base station) reached by both aggregation trees — Figure 8(a).
func CoverageFraction(trees *tree.Result, n int) float64 {
	if n <= 1 {
		return 1
	}
	covered := 0
	for i := 1; i < n; i++ {
		if trees.CoveredBoth(topology.NodeID(i)) {
			covered++
		}
	}
	return float64(covered) / float64(n-1)
}

// ParticipationFraction returns the fraction of sensor nodes with enough
// aggregator neighbors to send l slices per tree — Figure 8(b).
func ParticipationFraction(trees *tree.Result, l, n int) float64 {
	if n <= 1 {
		return 1
	}
	can := 0
	for i := 1; i < n; i++ {
		if trees.CanSlice(topology.NodeID(i), l) {
			can++
		}
	}
	return float64(can) / float64(n-1)
}

// Accuracy returns the paper's accuracy metric: the ratio of the collected
// aggregate to the true aggregate over all sensors. 1.0 is lossless; the
// metric exceeds 1 only through noise and is clamped at 0 from below.
func Accuracy(collected, truth float64) float64 {
	if truth == 0 {
		if collected == 0 {
			return 1
		}
		return 0
	}
	acc := collected / truth
	if math.IsNaN(acc) || acc < 0 {
		return 0
	}
	return acc
}

// TrueSum sums readings over all sensor nodes (index 0, the base station,
// excluded) — the denominator of the accuracy metric.
func TrueSum(readings []int64) int64 {
	var s int64
	for i := 1; i < len(readings); i++ {
		s += readings[i]
	}
	return s
}

// BytesPerNode normalizes a traffic total over the deployment size.
func BytesPerNode(totalBytes uint64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(totalBytes) / float64(n)
}
