package metrics

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

func TestAccuracy(t *testing.T) {
	cases := []struct {
		collected, truth, want float64
	}{
		{100, 100, 1},
		{90, 100, 0.9},
		{0, 100, 0},
		{0, 0, 1},
		{5, 0, 0},
		{-3, 100, 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.collected, c.truth); got != c.want {
			t.Errorf("Accuracy(%v, %v) = %v, want %v", c.collected, c.truth, got, c.want)
		}
	}
}

func TestAccuracyNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name             string
		collected, truth float64
		want             float64
	}{
		{"nan collected", nan, 100, 0},
		{"nan truth treated as nonzero", 100, nan, 0}, // 100/NaN is NaN → clamp
		{"inf over inf", inf, inf, 0},
		{"negative truth flips sign", 50, -100, 0},
		{"both negative", -50, -100, 0.5},
		{"inf collected", inf, 100, inf}, // noise can only inflate, not clamp
	}
	for _, c := range cases {
		got := Accuracy(c.collected, c.truth)
		if math.IsNaN(c.want) != math.IsNaN(got) || (!math.IsNaN(c.want) && got != c.want) {
			t.Errorf("%s: Accuracy(%v, %v) = %v, want %v", c.name, c.collected, c.truth, got, c.want)
		}
	}
}

// baseOnly builds the degenerate tree state of a deployment with n nodes
// where only the base station exists on either tree: every sensor is
// Undecided with no audible aggregators.
func baseOnly(n int) *tree.Result {
	r := &tree.Result{
		Role:          make([]tree.Role, n),
		Parent:        make([]topology.NodeID, n),
		Hop:           make([]uint16, n),
		RedNeighbors:  make([][]topology.NodeID, n),
		BlueNeighbors: make([][]topology.NodeID, n),
	}
	if n > 0 {
		r.Role[0] = tree.RoleBase
	}
	return r
}

func TestCoverageParticipationDegenerate(t *testing.T) {
	// n ≤ 1 must report full coverage/participation without touching the
	// tree state at all — there are no sensors to miss.
	for _, n := range []int{-1, 0, 1} {
		if got := CoverageFraction(nil, n); got != 1 {
			t.Fatalf("CoverageFraction(nil, %d) = %v, want 1", n, got)
		}
		if got := ParticipationFraction(nil, 2, n); got != 1 {
			t.Fatalf("ParticipationFraction(nil, 2, %d) = %v, want 1", n, got)
		}
	}

	// A base-station-only tree over real sensors covers nothing: every
	// sensor is isolated from both trees.
	r := baseOnly(5)
	if got := CoverageFraction(r, 5); got != 0 {
		t.Fatalf("base-only coverage = %v, want 0", got)
	}
	if got := ParticipationFraction(r, 2, 5); got != 0 {
		t.Fatalf("base-only participation = %v, want 0", got)
	}

	// With the base station audible to one sensor on both colors, that
	// sensor is covered, and participates exactly when l ≤ 1.
	r.RedNeighbors[1] = []topology.NodeID{0}
	r.BlueNeighbors[1] = []topology.NodeID{0}
	if got := CoverageFraction(r, 5); got != 0.25 {
		t.Fatalf("one-covered coverage = %v, want 0.25", got)
	}
	if got := ParticipationFraction(r, 1, 5); got != 0.25 {
		t.Fatalf("participation l=1 = %v, want 0.25", got)
	}
	if got := ParticipationFraction(r, 2, 5); got != 0 {
		t.Fatalf("participation l=2 = %v, want 0", got)
	}
}

func TestTrueSumSkipsBaseStation(t *testing.T) {
	if got := TrueSum([]int64{999, 1, 2, 3}); got != 6 {
		t.Fatalf("TrueSum = %d", got)
	}
	if got := TrueSum(nil); got != 0 {
		t.Fatalf("TrueSum(nil) = %d", got)
	}
}

func TestBytesPerNode(t *testing.T) {
	if got := BytesPerNode(1000, 4); got != 250 {
		t.Fatalf("BytesPerNode = %v", got)
	}
	if got := BytesPerNode(1000, 0); got != 0 {
		t.Fatalf("BytesPerNode n=0 = %v", got)
	}
}

func TestCoverageAndParticipationOnRealTrees(t *testing.T) {
	net, err := topology.Random(topology.PaperConfig(500), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.New(net, core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cov := CoverageFraction(in.Trees, net.N())
	part := ParticipationFraction(in.Trees, 2, net.N())
	if cov < 0.9 || cov > 1 {
		t.Fatalf("coverage %v at N=500", cov)
	}
	if part > cov {
		t.Fatalf("participation %v exceeds coverage %v", part, cov)
	}
	if part < 0.7 {
		t.Fatalf("participation %v too low at N=500", part)
	}
	// Participation must match the engine's own participant list.
	want := float64(len(in.Participants())) / float64(net.N()-1)
	if part != want {
		t.Fatalf("ParticipationFraction %v != engine %v", part, want)
	}
	// Degenerate sizes.
	if CoverageFraction(in.Trees, 1) != 1 || ParticipationFraction(in.Trees, 2, 1) != 1 {
		t.Fatal("degenerate n not handled")
	}
}
