package metrics

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func TestAccuracy(t *testing.T) {
	cases := []struct {
		collected, truth, want float64
	}{
		{100, 100, 1},
		{90, 100, 0.9},
		{0, 100, 0},
		{0, 0, 1},
		{5, 0, 0},
		{-3, 100, 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.collected, c.truth); got != c.want {
			t.Errorf("Accuracy(%v, %v) = %v, want %v", c.collected, c.truth, got, c.want)
		}
	}
}

func TestTrueSumSkipsBaseStation(t *testing.T) {
	if got := TrueSum([]int64{999, 1, 2, 3}); got != 6 {
		t.Fatalf("TrueSum = %d", got)
	}
	if got := TrueSum(nil); got != 0 {
		t.Fatalf("TrueSum(nil) = %d", got)
	}
}

func TestBytesPerNode(t *testing.T) {
	if got := BytesPerNode(1000, 4); got != 250 {
		t.Fatalf("BytesPerNode = %v", got)
	}
	if got := BytesPerNode(1000, 0); got != 0 {
		t.Fatalf("BytesPerNode n=0 = %v", got)
	}
}

func TestCoverageAndParticipationOnRealTrees(t *testing.T) {
	net, err := topology.Random(topology.PaperConfig(500), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.New(net, core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cov := CoverageFraction(in.Trees, net.N())
	part := ParticipationFraction(in.Trees, 2, net.N())
	if cov < 0.9 || cov > 1 {
		t.Fatalf("coverage %v at N=500", cov)
	}
	if part > cov {
		t.Fatalf("participation %v exceeds coverage %v", part, cov)
	}
	if part < 0.7 {
		t.Fatalf("participation %v too low at N=500", part)
	}
	// Participation must match the engine's own participant list.
	want := float64(len(in.Participants())) / float64(net.N()-1)
	if part != want {
		t.Fatalf("ParticipationFraction %v != engine %v", part, want)
	}
	// Degenerate sizes.
	if CoverageFraction(in.Trees, 1) != 1 || ParticipationFraction(in.Trees, 2, 1) != 1 {
		t.Fatal("degenerate n not handled")
	}
}
