package mac

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func setup(t *testing.T, gridSide int, spacing float64) (*eventsim.Sim, *radio.Medium, *MAC, *topology.Network) {
	t.Helper()
	net, err := topology.Grid(gridSide, spacing, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	m := New(sim, medium, net.N(), DefaultConfig(), rng.New(1))
	return sim, medium, m, net
}

func dataPacket(src, dst topology.NodeID, round uint16) *packet.Packet {
	return &packet.Packet{
		Header: packet.Header{Kind: packet.KindAggregate, Src: int32(src), Dst: int32(dst), Round: round},
		Value:  int64(round),
	}
}

func TestUnicastDeliveredAndAcked(t *testing.T) {
	sim, _, m, net := setup(t, 2, 30)
	dst := net.Neighbors(0)[0]
	var got packet.Packet
	delivered := false
	// Delivered packets are only valid during the handler call: copy out.
	m.SetHandler(dst, func(_ topology.NodeID, p *packet.Packet) { got = *p; delivered = true })
	sim.At(0, func() { m.Send(0, dataPacket(0, dst, 7)) })
	sim.RunAll()
	if !delivered || got.Round != 7 {
		t.Fatalf("frame not delivered: %+v", got)
	}
	s := m.Stats()
	if s.AcksSent != 1 {
		t.Fatalf("AcksSent = %d, want 1", s.AcksSent)
	}
	if s.Retries != 0 || s.Dropped != 0 {
		t.Fatalf("unexpected retries/drops: %+v", s)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	sim, _, m, net := setup(t, 2, 30)
	count := 0
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(topology.NodeID, *packet.Packet) { count++ })
	}
	sim.At(0, func() {
		m.Send(0, &packet.Packet{Header: packet.Header{Kind: packet.KindHello, Src: 0, Dst: packet.Broadcast}})
	})
	sim.RunAll()
	if count != net.Degree(0) {
		t.Fatalf("broadcast delivered %d, want %d", count, net.Degree(0))
	}
	if m.Stats().AcksSent != 0 {
		t.Fatal("broadcast was ACKed")
	}
}

func TestQueueServesFIFO(t *testing.T) {
	sim, _, m, net := setup(t, 2, 30)
	dst := net.Neighbors(0)[0]
	var order []uint16
	m.SetHandler(dst, func(_ topology.NodeID, p *packet.Packet) { order = append(order, p.Round) })
	sim.At(0, func() {
		for i := uint16(1); i <= 5; i++ {
			m.Send(0, dataPacket(0, dst, i))
		}
	})
	sim.RunAll()
	if len(order) != 5 {
		t.Fatalf("delivered %d frames: %v", len(order), order)
	}
	for i, v := range order {
		if v != uint16(i+1) {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestRetransmissionRecoversHiddenTerminalLoss(t *testing.T) {
	// All nodes mutually in range here, so losses come only from timing
	// races; saturate the channel and verify ARQ still delivers everything
	// addressed to node 0's neighbor set.
	sim, _, m, net := setup(t, 3, 10)
	received := map[uint16]bool{}
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(_ topology.NodeID, p *packet.Packet) { received[p.Round] = true })
	}
	sim.At(0, func() {
		for i := 1; i < net.N(); i++ {
			m.Send(topology.NodeID(i), dataPacket(topology.NodeID(i), 0, uint16(i)))
		}
	})
	sim.RunAll()
	for i := 1; i < net.N(); i++ {
		if !received[uint16(i)] {
			t.Fatalf("frame %d lost despite ARQ (stats %+v)", i, m.Stats())
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Saturating one receiver forces some ACK losses and hence
	// retransmissions; the handler must still see each frame exactly once.
	sim, _, m, net := setup(t, 3, 10)
	seen := map[uint16]int{}
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(_ topology.NodeID, p *packet.Packet) { seen[p.Round]++ })
	}
	sim.At(0, func() {
		round := uint16(0)
		for i := 1; i < net.N(); i++ {
			for j := 0; j < 5; j++ {
				round++
				m.Send(topology.NodeID(i), dataPacket(topology.NodeID(i), 0, round))
			}
		}
	})
	sim.RunAll()
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("frame %d delivered %d times", r, c)
		}
	}
}

func TestDropAfterRetryLimit(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	cfg := DefaultConfig()
	cfg.RetryLimit = 2
	cfg.MaxAttempts = 4
	m := New(sim, medium, net.N(), cfg, rng.New(2))
	dst := net.Neighbors(0)[0]
	// Make the destination deaf by keeping it transmitting forever-ish.
	sim.At(0, func() {
		medium.Transmit(dst, packet.Broadcast, []byte{0}, 125000) // 1 s
		m.Send(0, dataPacket(0, dst, 1))
	})
	sim.RunAll()
	if m.Stats().Dropped == 0 {
		t.Fatalf("no drop after retry limit: %+v", m.Stats())
	}
	if m.QueueLen(0) != 0 {
		t.Fatal("queue not drained after drop")
	}
}

func TestQueueContinuesAfterDrop(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	cfg := DefaultConfig()
	cfg.RetryLimit = 1
	m := New(sim, medium, net.N(), cfg, rng.New(3))
	dst := net.Neighbors(0)[0]
	delivered := 0
	m.SetHandler(dst, func(topology.NodeID, *packet.Packet) { delivered++ })
	sim.At(0, func() {
		medium.Transmit(dst, packet.Broadcast, []byte{0}, 6250) // 50 ms jam
		m.Send(0, dataPacket(0, dst, 1))                        // mostly doomed
		m.Send(0, dataPacket(0, dst, 2))                        // must still flow
	})
	sim.RunAll()
	if delivered == 0 {
		t.Fatal("queue stalled")
	}
}

func TestCarrierSenseDefers(t *testing.T) {
	sim, medium, m, net := setup(t, 2, 30)
	dst := net.Neighbors(0)[0]
	count := 0
	m.SetHandler(dst, func(topology.NodeID, *packet.Packet) { count++ })
	var blocker topology.NodeID = -1
	for _, o := range net.Neighbors(0) {
		if o != dst {
			blocker = o
			break
		}
	}
	if blocker < 0 {
		t.Skip("no blocker")
	}
	sim.At(0, func() {
		medium.Transmit(blocker, packet.Broadcast, []byte{9}, 2500) // 20 ms
		m.Send(0, dataPacket(0, dst, 1))
	})
	sim.RunAll()
	if count != 1 {
		t.Fatalf("delivered %d", count)
	}
	if m.Stats().Deferred == 0 {
		t.Fatal("no carrier-sense deferral recorded")
	}
}

func TestFadingForcesRetriesNotDuplicates(t *testing.T) {
	// 30% fading loss hits both data and ACK frames: retransmissions must
	// recover data while duplicate suppression keeps delivery exactly
	// once.
	net, err := topology.Grid(3, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	medium.SetLoss(0.3, rng.New(5))
	m := New(sim, medium, net.N(), DefaultConfig(), rng.New(6))
	seen := map[uint16]int{}
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(_ topology.NodeID, p *packet.Packet) { seen[p.Round]++ })
	}
	const frames = 40
	sim.At(0, func() {
		for r := uint16(1); r <= frames; r++ {
			src := topology.NodeID(int(r)%(net.N()-1) + 1)
			m.Send(src, dataPacket(src, 0, r))
		}
	})
	sim.RunAll()
	delivered, dups := 0, 0
	for _, c := range seen {
		delivered++
		if c > 1 {
			dups++
		}
	}
	if dups > 0 {
		t.Fatalf("%d duplicated deliveries", dups)
	}
	if delivered < frames*85/100 {
		t.Fatalf("delivered %d of %d under 30%% fading", delivered, frames)
	}
	if m.Stats().Retries == 0 {
		t.Fatal("no retries under fading")
	}
}

func TestRetransmissionKeepsFullSenseBudget(t *testing.T) {
	// A frame that has burned 5 of its ARQ retries must still get the full
	// MaxAttempts carrier-sense budget on its next transmission attempt.
	// The old code seeded the sense counter with the retry count, so with
	// MaxAttempts = 6 a 5th retransmission was dropped on its first busy
	// sense. Recreate exactly the queue state checkAck reschedules from,
	// jam the channel for MaxAttempts-1 busy senses, and require delivery.
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	cfg := DefaultConfig()
	cfg.MaxAttempts = 6
	m := New(sim, medium, net.N(), cfg, rng.New(11))
	dst := net.Neighbors(0)[0]
	delivered := 0
	m.SetHandler(dst, func(topology.NodeID, *packet.Packet) { delivered++ })
	budget := uint64(cfg.MaxAttempts - 1)
	jamBuf := make([]byte, 125) // 1 ms of airtime at PaperRate
	var jam func()
	jam = func() {
		// Keep the channel busy until the frame has deferred
		// MaxAttempts-1 times, then fall silent so the next sense wins.
		if m.stats.Deferred >= budget {
			return
		}
		medium.Transmit(dst, packet.Broadcast, jamBuf, len(jamBuf))
		sim.After(0.001, jam)
	}
	sim.At(0, func() {
		pkt := dataPacket(0, dst, 1)
		m.seq[0]++
		pkt.Seq = m.seq[0]
		m.queues[0] = append(m.queues[0], &frameState{pkt: *pkt, retries: 5})
		m.busy[0] = true
		m.scheduleAttempt(0, 0, 5) // what checkAck schedules after retry 5
		jam()
	})
	sim.RunAll()
	if m.stats.Deferred != budget {
		t.Fatalf("Deferred = %d, want %d", m.stats.Deferred, budget)
	}
	if m.stats.Dropped != 0 {
		t.Fatalf("frame dropped after %d busy senses: %+v", budget, m.Stats())
	}
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1 (stats %+v)", delivered, m.Stats())
	}
}

func TestQueueDepthObservedAfterEnqueue(t *testing.T) {
	// The queue-depth histogram must include the frame being enqueued:
	// three back-to-back sends from one node observe depths 1, 2, 3.
	sim, _, m, net := setup(t, 2, 30)
	sink := obs.NewSink()
	m.SetObs(sink)
	dst := net.Neighbors(0)[0]
	sim.At(0, func() {
		for i := uint16(1); i <= 3; i++ {
			m.Send(0, dataPacket(0, dst, i))
		}
	})
	sim.RunAll()
	for _, s := range sink.Reg.Snapshot() {
		if s.Name != "ipda_mac_queue_depth" {
			continue
		}
		if s.Count != 3 || s.Value != 1+2+3 {
			t.Fatalf("queue depth histogram count=%d sum=%g, want count=3 sum=6", s.Count, s.Value)
		}
		return
	}
	t.Fatal("queue depth histogram not found in snapshot")
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		net, _ := topology.Grid(3, 20, 50)
		sim := eventsim.New()
		medium := radio.New(sim, net, radio.PaperRate)
		m := New(sim, medium, net.N(), DefaultConfig(), rng.New(7))
		sim.At(0, func() {
			for i := 1; i < net.N(); i++ {
				m.Send(topology.NodeID(i), dataPacket(topology.NodeID(i), 0, uint16(i)))
			}
		})
		sim.RunAll()
		return m.Stats()
	}
	if run() != run() {
		t.Fatal("non-deterministic MAC")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(eventsim.New(), nil, 1, Config{}, rng.New(1))
}

func TestPassiveMirrorNeverReacts(t *testing.T) {
	// A passive node hears everything (physics) but never ACKs or delivers
	// upward — its home shard does that. Unicast to a passive node must
	// therefore exhaust retries with zero deliveries and zero ACKs from it.
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	med := radio.New(sim, net, radio.PaperRate)
	m := New(sim, med, net.N(), DefaultConfig(), rng.New(11))
	var dst topology.NodeID = 1
	m.SetPassive(dst, true)
	delivered := 0
	m.SetHandler(dst, func(topology.NodeID, *packet.Packet) { delivered++ })
	sim.At(0, func() {
		m.Send(0, &packet.Packet{Header: packet.Header{Kind: packet.KindSlice, Src: 0, Dst: int32(dst)}})
	})
	sim.RunAll()
	if delivered != 0 {
		t.Fatalf("passive node delivered %d frames upward", delivered)
	}
	if st := m.Stats(); st.AcksSent != 0 || st.Dropped != 1 || st.Retries != uint64(DefaultConfig().RetryLimit) {
		t.Fatalf("stats = %+v; want no ACKs, full retry exhaustion, one drop", st)
	}
}

func TestPassiveSendPanics(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	med := radio.New(sim, net, radio.PaperRate)
	m := New(sim, med, net.N(), DefaultConfig(), rng.New(11))
	m.SetPassive(0, true)
	defer func() {
		if recover() == nil {
			t.Fatal("Send from a passive node did not panic")
		}
	}()
	m.Send(0, &packet.Packet{Header: packet.Header{Kind: packet.KindHello, Src: 0, Dst: packet.Broadcast}})
}

func TestResetClearsPassive(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	med := radio.New(sim, net, radio.PaperRate)
	m := New(sim, med, net.N(), DefaultConfig(), rng.New(11))
	m.SetPassive(1, true)
	m.Reset(net.N(), DefaultConfig(), rng.New(11))
	delivered := 0
	m.SetHandler(1, func(topology.NodeID, *packet.Packet) { delivered++ })
	sim.At(0, func() {
		m.Send(0, &packet.Packet{Header: packet.Header{Kind: packet.KindSlice, Src: 0, Dst: 1}})
	})
	sim.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered %d after Reset cleared passive, want 1", delivered)
	}
}

// TestBatchedDeliveryAliasAndRetention pins the sharing contract of the
// batched reception datapath: a non-retaining handler receives the MAC's
// shared decode scratch (no per-receiver copy), while a handler marked
// retaining gets a private deep copy — own Packet, own Entries backing —
// that survives the scratch being overwritten by later frames.
func TestBatchedDeliveryAliasAndRetention(t *testing.T) {
	sim, _, m, net := setup(t, 2, 30)
	nbs := net.Neighbors(0)
	if len(nbs) < 2 {
		t.Fatalf("grid gives node 0 only %d neighbors", len(nbs))
	}
	aliasNode, retainNode := nbs[0], nbs[1]
	var aliased, retained *packet.Packet
	m.SetHandler(aliasNode, func(_ topology.NodeID, p *packet.Packet) { aliased = p })
	m.SetHandler(retainNode, func(_ topology.NodeID, p *packet.Packet) { retained = p })
	m.SetRetaining(retainNode, true)
	first := &packet.Packet{
		Header: packet.Header{Kind: packet.KindSliceBatch, Src: 0, Dst: packet.Broadcast, Round: 7},
		Entries: []packet.SliceEntry{
			{Dst: int32(aliasNode), Nonce: 41},
			{Dst: int32(retainNode), Nonce: 42},
		},
	}
	sim.At(0, func() { m.Send(0, first) })
	sim.RunAll()
	if aliased == nil || retained == nil {
		t.Fatal("handlers not called")
	}
	if aliased != &m.rxScratch {
		t.Error("non-retaining handler got a copy, want the shared scratch")
	}
	if retained == &m.rxScratch {
		t.Error("retaining handler got the shared scratch, want a private copy")
	}
	if len(retained.Entries) != 2 || &retained.Entries[0] == &m.rxScratch.Entries[0] {
		t.Error("retained Entries alias the shared scratch storage")
	}
	// Overwrite the scratch with a later frame to another node: the
	// retained copy must keep the first frame's contents.
	sim.At(sim.Now()+1, func() {
		m.Send(0, dataPacket(0, aliasNode, 9))
	})
	sim.RunAll()
	if retained.Round != 7 || retained.Entries[1].Nonce != 42 {
		t.Errorf("retained copy mutated by a later frame: %+v", retained)
	}
	// The scratch was reused by the later exchange (data frame, then its
	// ACK decodes last) — the premise the retention contract protects.
	if m.rxScratch.Kind == packet.KindSliceBatch {
		t.Fatalf("test premise broken: scratch still holds the first frame")
	}
}

// TestBatchedResolveAllocs pins the batched reception path at zero
// steady-state allocations: after warm-up, a full unicast exchange —
// send, carrier sense, decode-once batch delivery, ACK, ARQ resolution —
// reuses pooled storage only.
func TestBatchedResolveAllocs(t *testing.T) {
	sim, _, m, net := setup(t, 2, 30)
	dst := net.Neighbors(0)[0]
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(topology.NodeID, *packet.Packet) {})
	}
	pkt := dataPacket(0, dst, 1)
	send := func() { m.Send(0, pkt) }
	for i := 0; i < 3; i++ { // warm pools: frames, events, tx records
		sim.At(sim.Now()+1, send)
		sim.RunAll()
	}
	allocs := testing.AllocsPerRun(100, func() {
		sim.At(sim.Now()+1, send)
		sim.RunAll()
	})
	if allocs > 0 {
		t.Errorf("batched resolve allocates %.1f times per exchange, want 0", allocs)
	}
}
