// Slotted TDMA: a contention-free alternative to CSMA for the dense-field
// regime where exponential backoff dominates round latency.
//
// Slots are assigned by greedy two-hop graph coloring: no node shares a
// slot with any node at radio distance one OR two. Two nodes in the same
// slot are therefore more than two hops apart, so no receiver is in range
// of both — every transmission that starts at its owner's slot boundary
// and fits within the slot is collision-free, broadcast storms included.
// The ACK a unicast receiver returns one SIFS after the data frame falls
// inside the sender's slot, which is sized to cover a maximum data frame,
// the SIFS, the ACK, and the sender's ARQ timeout guard.
//
// The assignment is a pure function of the network topology — no rng, no
// tree state — so it is byte-identical across trial workers and shard
// counts, and every coupled-mode shard domain (which sees the full global
// net) computes the same table independently.
package mac

import (
	"fmt"
	"math"
	"slices"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Scheme selects the channel-access discipline of a MAC instance.
type Scheme uint8

const (
	// SchemeCSMA is nonpersistent CSMA with binary exponential backoff —
	// the paper's contention model and the zero-value default.
	SchemeCSMA Scheme = iota
	// SchemeTDMA is contention-free slotted access from a deterministic
	// two-hop coloring of the network.
	SchemeTDMA
)

// String returns the flag spelling of the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeCSMA:
		return "csma"
	case SchemeTDMA:
		return "tdma"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme parses a -mac flag value.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "csma":
		return SchemeCSMA, nil
	case "tdma", "slotted":
		return SchemeTDMA, nil
	default:
		return 0, fmt.Errorf("mac: unknown scheme %q (want csma or tdma)", name)
	}
}

// slotScratch is the per-MAC working storage of assignSlots, reused across
// Resets so a fresh coloring costs no allocation once the tables reach the
// run's network size.
type slotScratch struct {
	hops  []int             // BFS distances from node 0
	queue []topology.NodeID // BFS queue backing array
	keys  []uint64          // packed (hop rank, id) coloring order
	used  []bool            // colors occupied within two hops
}

// AssignSlots two-hop-colors net: the returned table maps each node to a
// slot such that no two nodes within two hops of each other share one.
// Nodes are colored greedily in (hop distance from node 0, id) order —
// BFS order keeps neighborhoods compact, so the greedy choice stays near
// the two-hop-degree lower bound — with unreachable nodes last by id.
// dst is reused when it has capacity.
func AssignSlots(net *topology.Network, dst []int32) []int32 {
	var scratch slotScratch
	return assignSlots(net, dst, &scratch)
}

// assignSlots is AssignSlots over caller-held scratch (see resetTDMA).
func assignSlots(net *topology.Network, dst []int32, s *slotScratch) []int32 {
	n := net.N()
	dst = resizeI32(dst, n)
	for i := range dst {
		dst[i] = -1
	}
	s.hops, s.queue = net.HopDistancesInto(0, s.hops, s.queue)
	// The coloring order (hop distance, id) — unreachable nodes last by
	// id — packs into one uint64 key per node: rank in the high half, id
	// in the low, so an ascending sort of plain integers reproduces the
	// comparator exactly with no per-call closure or reflection.
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
	}
	keys := s.keys[:n]
	const unreachableRank = uint64(1) << 31 // above any real hop count
	for i, h := range s.hops {
		rank := unreachableRank
		if h >= 0 {
			rank = uint64(h)
		}
		keys[i] = rank<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)
	if cap(s.used) < n+1 {
		s.used = make([]bool, n+1)
	}
	used := s.used[:n+1]
	for i := range used {
		used[i] = false
	}
	for _, key := range keys {
		id := topology.NodeID(uint32(key))
		maxSeen := int32(-1)
		mark := func(nb topology.NodeID) {
			if c := dst[nb]; c >= 0 {
				used[c] = true
				if c > maxSeen {
					maxSeen = c
				}
			}
		}
		for _, nb := range net.Neighbors(id) {
			mark(nb)
			for _, nb2 := range net.Neighbors(nb) {
				if nb2 != id {
					mark(nb2)
				}
			}
		}
		slot := int32(0)
		for used[slot] {
			slot++
		}
		dst[id] = slot
		for c := int32(0); c <= maxSeen; c++ {
			used[c] = false
		}
		if used[slot] { // slot > maxSeen: clear the probe too
			used[slot] = false
		}
	}
	return dst
}

// tdmaSlotLen returns the slot duration: the largest data frame's airtime,
// the SIFS, the ACK airtime, the sender's 4-slot ARQ guard, and one extra
// SlotTime of margin — so a transmission started at its slot boundary,
// its ACK, and its timeout all resolve inside the slot.
func tdmaSlotLen(m *MAC) eventsim.Time {
	maxSize := 0
	for _, kind := range []packet.Kind{
		packet.KindHello, packet.KindSlice, packet.KindAggregate, packet.KindQuery,
	} {
		if s := (&packet.Packet{Header: packet.Header{Kind: kind}}).Size(); s > maxSize {
			maxSize = s
		}
	}
	if m.cfg.MaxFrameSize > maxSize {
		maxSize = m.cfg.MaxFrameSize
	}
	ackSize := (&packet.Packet{Header: packet.Header{Kind: packet.KindAck}}).Size()
	return m.medium.Duration(maxSize) + m.cfg.SIFS + m.medium.Duration(ackSize) +
		4*m.cfg.SlotTime + m.cfg.SlotTime
}

// resetTDMA derives the slot table for the medium's current network. The
// medium must already be Reset to the run's net (protocol stacks reset
// radio before MAC, and New sees the net it was built over).
func (m *MAC) resetTDMA() {
	m.slot = assignSlots(m.medium.Net(), m.slot, &m.slotScratch)
	m.numSlots = 0
	for _, s := range m.slot {
		if int(s)+1 > m.numSlots {
			m.numSlots = int(s) + 1
		}
	}
	m.slotLen = tdmaSlotLen(m)
}

// Slot returns the TDMA slot of node id (meaningful only under
// SchemeTDMA).
func (m *MAC) Slot(id topology.NodeID) int32 { return m.slot[id] }

// NumSlots returns the TDMA frame length in slots.
func (m *MAC) NumSlots() int { return m.numSlots }

// SlotLen returns the TDMA slot duration.
func (m *MAC) SlotLen() eventsim.Time { return m.slotLen }

// tdmaDelay returns the time from now until src's next owned slot
// boundary, always strictly positive so same-instant rescheduling cannot
// spin. No randomness: TDMA scheduling is a pure function of the clock.
func (m *MAC) tdmaDelay(src topology.NodeID) eventsim.Time {
	period := eventsim.Time(m.numSlots) * m.slotLen
	base := eventsim.Time(m.slot[src]) * m.slotLen
	now := m.sim.Now()
	if now > base {
		k := math.Ceil(float64((now - base) / period))
		base += eventsim.Time(k) * period
	}
	for base <= now {
		base += period
	}
	return base - now
}
