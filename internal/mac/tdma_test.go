package mac

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func tdmaConfig() Config {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeTDMA
	return cfg
}

func tdmaSetup(t *testing.T, net *topology.Network) (*eventsim.Sim, *radio.Medium, *MAC) {
	t.Helper()
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	m := New(sim, medium, net.N(), tdmaConfig(), rng.New(1))
	return sim, medium, m
}

// collisionFree asserts the two-hop coloring invariant: no node shares a
// slot with any node at distance one or two, so no receiver is ever in
// range of two same-slot transmitters.
func collisionFree(t *testing.T, net *topology.Network, slot []int32) {
	t.Helper()
	for i := 0; i < net.N(); i++ {
		id := topology.NodeID(i)
		if slot[id] < 0 {
			t.Fatalf("node %d unassigned", id)
		}
		for _, nb := range net.Neighbors(id) {
			if slot[nb] == slot[id] {
				t.Fatalf("one-hop neighbors %d and %d share slot %d", id, nb, slot[id])
			}
			for _, nb2 := range net.Neighbors(nb) {
				if nb2 != id && slot[nb2] == slot[id] {
					t.Fatalf("two-hop neighbors %d and %d share slot %d", id, nb2, slot[id])
				}
			}
		}
	}
}

func TestAssignSlotsCollisionFree(t *testing.T) {
	grid, err := topology.Grid(6, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	collisionFree(t, grid, AssignSlots(grid, nil))

	// Dense random fields, including disconnected ones: every node gets a
	// slot and the invariant holds regardless of reachability.
	for seed := uint64(1); seed <= 5; seed++ {
		net, err := topology.Random(topology.Config{Nodes: 300, FieldSide: 200, Range: 40}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		collisionFree(t, net, AssignSlots(net, nil))
	}
}

func TestAssignSlotsDeterministicAndReusesDst(t *testing.T) {
	net, err := topology.Random(topology.PaperConfig(200), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	a := AssignSlots(net, nil)
	b := AssignSlots(net, make([]int32, 0, net.N()))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment differs at node %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Reusing a previously-populated dst must give the same table.
	c := AssignSlots(net, b)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("reused-dst assignment differs at node %d", i)
		}
	}
}

func TestTDMAUnicastDelivers(t *testing.T) {
	net, err := topology.Grid(3, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim, _, m := tdmaSetup(t, net)
	dst := net.Neighbors(0)[0]
	delivered := 0
	m.SetHandler(dst, func(_ topology.NodeID, p *packet.Packet) { delivered++ })
	sim.At(0, func() {
		for i := uint16(1); i <= 4; i++ {
			m.Send(0, &packet.Packet{
				Header: packet.Header{Kind: packet.KindAggregate, Src: 0, Dst: int32(dst), Round: i},
			})
		}
	})
	sim.RunAll()
	if delivered != 4 {
		t.Fatalf("delivered %d frames, want 4", delivered)
	}
	s := m.Stats()
	if s.Retries != 0 || s.Dropped != 0 || s.Deferred != 0 {
		t.Fatalf("contention in a contention-free schedule: %+v", s)
	}
	if s.AcksSent != 4 {
		t.Fatalf("AcksSent = %d, want 4", s.AcksSent)
	}
}

// TestTDMABroadcastStormCollisionFree has every node broadcast at once —
// the worst case for CSMA — and verifies zero radio collisions and full
// neighbor coverage under the slot schedule.
func TestTDMABroadcastStormCollisionFree(t *testing.T) {
	net, err := topology.Grid(5, 30, 65)
	if err != nil {
		t.Fatal(err)
	}
	sim, medium, m := tdmaSetup(t, net)
	got := make([]int, net.N())
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(self topology.NodeID, p *packet.Packet) { got[self]++ })
	}
	sim.At(0, func() {
		for i := 0; i < net.N(); i++ {
			m.Send(topology.NodeID(i), &packet.Packet{
				Header: packet.Header{Kind: packet.KindHello, Src: int32(i), Dst: packet.Broadcast},
			})
		}
	})
	sim.RunAll()
	if c := medium.Stats().FramesCollided; c != 0 {
		t.Fatalf("TDMA broadcast storm produced %d collisions", c)
	}
	for i := 0; i < net.N(); i++ {
		if got[i] != net.Degree(topology.NodeID(i)) {
			t.Fatalf("node %d heard %d broadcasts, want %d", i, got[i], net.Degree(topology.NodeID(i)))
		}
	}
}

// TestTDMATransmissionsStayInOwnedSlots taps the medium and checks every
// data transmission starts exactly at one of the sender's slot boundaries.
func TestTDMATransmissionsStayInOwnedSlots(t *testing.T) {
	net, err := topology.Grid(4, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim, medium, m := tdmaSetup(t, net)
	period := eventsim.Time(m.NumSlots()) * m.SlotLen()
	type tx struct {
		src topology.NodeID
		at  eventsim.Time
	}
	var txs []tx
	medium.SetTxHook(func(src topology.NodeID, _ int32, _ []byte, _ int) {
		txs = append(txs, tx{src, sim.Now()})
	})
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(topology.NodeID, *packet.Packet) {})
	}
	sim.At(0, func() {
		for i := 1; i < net.N(); i++ {
			m.Send(topology.NodeID(i), &packet.Packet{
				Header: packet.Header{Kind: packet.KindHello, Src: int32(i), Dst: packet.Broadcast},
			})
		}
	})
	sim.RunAll()
	if len(txs) == 0 {
		t.Fatal("no transmissions observed")
	}
	for _, x := range txs {
		base := eventsim.Time(m.Slot(x.src)) * m.SlotLen()
		// Phase within the period must be the sender's slot start.
		k := int((x.at - base) / period)
		for _, kk := range []int{k - 1, k, k + 1} {
			if kk < 0 {
				continue
			}
			want := base + eventsim.Time(kk)*period
			if diff := x.at - want; diff > -1e-12 && diff < 1e-12 {
				goto ok
			}
		}
		t.Fatalf("node %d transmitted at %v, not on a slot-%d boundary", x.src, x.at, m.Slot(x.src))
	ok:
	}
}

// TestTDMADrawsNoRandomness pins the determinism argument: a TDMA run must
// not consume the MAC's rng stream, so slot schedules cannot diverge
// across workers or shards through backoff draws.
func TestTDMADrawsNoRandomness(t *testing.T) {
	net, err := topology.Grid(3, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	r := rng.New(42)
	m := New(sim, medium, net.N(), tdmaConfig(), r)
	probe := rng.New(42)
	for i := 0; i < net.N(); i++ {
		m.SetHandler(topology.NodeID(i), func(topology.NodeID, *packet.Packet) {})
	}
	sim.At(0, func() {
		for i := 0; i < net.N(); i++ {
			m.Send(topology.NodeID(i), &packet.Packet{
				Header: packet.Header{Kind: packet.KindHello, Src: int32(i), Dst: packet.Broadcast},
			})
		}
	})
	sim.RunAll()
	if got, want := r.Uint64(), probe.Uint64(); got != want {
		t.Fatal("TDMA consumed the MAC rng stream")
	}
}

func TestParseScheme(t *testing.T) {
	for name, want := range map[string]Scheme{"csma": SchemeCSMA, "tdma": SchemeTDMA, "slotted": SchemeTDMA} {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScheme("aloha"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if SchemeTDMA.String() != "tdma" || SchemeCSMA.String() != "csma" {
		t.Fatal("Scheme.String mismatch")
	}
}
