// Package mac implements the medium-access layer of our ns-2 substitute: a
// nonpersistent CSMA scheme with binary exponential backoff, plus
// 802.11-style stop-and-wait ARQ for unicast frames.
//
// Broadcast frames (the HELLO floods) are fire-and-forget, exactly as in
// 802.11. Unicast frames (slices, partial aggregates) are acknowledged:
// the receiver returns an ACK one SIFS after a successful decode, and the
// sender retransmits on ACK timeout up to RetryLimit times before dropping
// the frame. Retransmissions are deduplicated at the receiver by MAC
// sequence number. Carrier sensing prevents most collisions; hidden
// terminals and ACK losses produce the residual loss the paper's Section
// IV-B attributes to "collision in wireless channels".
package mac

import (
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Handler receives frames the MAC delivers upward (ACKs and duplicate
// retransmissions are filtered out).
type Handler func(self topology.NodeID, p *packet.Packet)

// Config are the CSMA/ARQ parameters. The defaults fit the paper's 1 Mbps
// channel with frames of a few tens of bytes.
type Config struct {
	SlotTime    eventsim.Time // backoff quantum, seconds
	MinWindow   int           // initial contention window, slots
	MaxWindow   int           // contention window cap, slots
	MaxAttempts int           // busy senses per transmission before giving up
	RetryLimit  int           // unicast retransmissions before dropping
	SIFS        eventsim.Time // short interframe space before an ACK
}

// DefaultConfig returns parameters tuned to the paper's radio: 100 µs
// slots, windows 8..256, 16 sense attempts, 7 retransmissions.
func DefaultConfig() Config {
	return Config{
		SlotTime:    100e-6,
		MinWindow:   8,
		MaxWindow:   256,
		MaxAttempts: 16,
		RetryLimit:  7,
		SIFS:        10e-6,
	}
}

// Stats are cumulative MAC counters.
type Stats struct {
	Enqueued   uint64
	Sent       uint64 // data transmissions put on the air (incl. retransmissions)
	Dropped    uint64 // frames abandoned after MaxAttempts or RetryLimit
	Deferred   uint64 // busy senses that led to backoff
	Retries    uint64 // unicast retransmissions
	AcksSent   uint64
	Duplicates uint64 // retransmissions suppressed at receivers
}

type frameState struct {
	pkt     *packet.Packet
	retries int
}

type pairKey struct {
	src, dst topology.NodeID
}

// MAC schedules transmissions for every node of one network. It is driven
// by the owning simulation and is not safe for concurrent use.
type MAC struct {
	sim      *eventsim.Sim
	medium   *radio.Medium
	cfg      Config
	rand     *rng.Stream
	handlers []Handler
	queues   [][]*frameState
	busy     []bool
	seq      []uint16
	// awaiting[i] is the seq the pending unicast of node i waits an ACK
	// for; acked[i] flips when it arrives.
	awaiting []uint16
	waiting  []bool
	acked    []bool
	lastSeq  map[pairKey]uint16
	stats    Stats
	obs      *macObs

	// Reusable frame buffers: one data buffer and one ACK buffer per node.
	// A node's previous frame is fully resolved by the medium before it can
	// encode the next one (the radio resolves receptions at end-of-air, and
	// both the next attempt and the ACK path are strictly later), so each
	// buffer is recycled across sends instead of allocated per frame.
	txbuf  [][]byte
	ackbuf [][]byte
	// rxScratch is the decode target for every received frame; frames
	// delivered upward are copied out since handlers may retain them.
	rxScratch packet.Packet
}

// New creates a MAC over medium for a network of n nodes and installs
// itself as the medium receiver for every node. Protocol layers must
// register their upcalls with SetHandler, not with the medium directly.
func New(sim *eventsim.Sim, medium *radio.Medium, n int, cfg Config, rand *rng.Stream) *MAC {
	if cfg.SlotTime <= 0 || cfg.MinWindow <= 0 || cfg.MaxWindow < cfg.MinWindow ||
		cfg.MaxAttempts <= 0 || cfg.RetryLimit < 0 || cfg.SIFS <= 0 {
		panic("mac: invalid config")
	}
	m := &MAC{
		sim:      sim,
		medium:   medium,
		cfg:      cfg,
		rand:     rand,
		handlers: make([]Handler, n),
		queues:   make([][]*frameState, n),
		busy:     make([]bool, n),
		seq:      make([]uint16, n),
		awaiting: make([]uint16, n),
		waiting:  make([]bool, n),
		acked:    make([]bool, n),
		lastSeq:  make(map[pairKey]uint16),
		txbuf:    make([][]byte, n),
		ackbuf:   make([][]byte, n),
	}
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		medium.SetReceiver(id, func(self topology.NodeID, frame []byte) {
			m.onReceive(self, frame)
		})
	}
	return m
}

// SetHandler installs the upward delivery callback for a node.
func (m *MAC) SetHandler(id topology.NodeID, h Handler) { m.handlers[id] = h }

// macObs holds the MAC's pre-resolved instrument handles; nil disables
// instrumentation for one pointer check per event.
type macObs struct {
	enqueued   obs.Counter
	sent       obs.Counter
	dropped    obs.Counter
	backoffs   obs.Counter
	retries    obs.Counter
	acksSent   obs.Counter
	duplicates obs.Counter
	queueLen   obs.Histogram
}

// SetObs attaches an instrumentation sink; instruments resolve once here.
func (m *MAC) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Reg == nil {
		m.obs = nil
		return
	}
	m.obs = &macObs{
		enqueued:   sink.Reg.Counter("ipda_mac_enqueued_total", "frames handed to the MAC"),
		sent:       sink.Reg.Counter("ipda_mac_sent_total", "data transmissions put on the air (incl. retransmissions)"),
		dropped:    sink.Reg.Counter("ipda_mac_dropped_total", "frames abandoned after MaxAttempts or RetryLimit"),
		backoffs:   sink.Reg.Counter("ipda_mac_backoffs_total", "busy senses that led to backoff"),
		retries:    sink.Reg.Counter("ipda_mac_retries_total", "unicast retransmissions"),
		acksSent:   sink.Reg.Counter("ipda_mac_acks_sent_total", "link-layer acknowledgements transmitted"),
		duplicates: sink.Reg.Counter("ipda_mac_duplicates_total", "retransmissions suppressed at receivers"),
		queueLen: sink.Reg.Histogram("ipda_mac_queue_depth", "per-node queue depth observed at enqueue, including the frame just queued",
			[]float64{0, 1, 2, 4, 8, 16, 32}),
	}
}

// Stats returns cumulative counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen returns the number of frames queued at node id (including any
// frame currently in service).
func (m *MAC) QueueLen(id topology.NodeID) int { return len(m.queues[id]) }

// Send enqueues a frame for transmission from src; pkt.Dst selects unicast
// (reliable, ARQ) or packet.Broadcast (fire-and-forget). The MAC owns the
// packet from here on and assigns its Seq.
func (m *MAC) Send(src topology.NodeID, pkt *packet.Packet) {
	m.stats.Enqueued++
	m.seq[src]++
	pkt.Seq = m.seq[src]
	m.queues[src] = append(m.queues[src], &frameState{pkt: pkt})
	if m.obs != nil {
		m.obs.enqueued.Inc()
		m.obs.queueLen.Observe(float64(len(m.queues[src])))
	}
	if !m.busy[src] {
		m.busy[src] = true
		m.scheduleAttempt(src, 0, 0)
	}
}

// scheduleAttempt arms the next carrier-sense attempt for src's queue head
// after a random backoff drawn from the contention window 2^window·MinWindow.
// sense counts busy senses of the current transmission attempt (the drop
// budget is MaxAttempts senses per transmission); window is the binary
// exponential backoff exponent, which ARQ retransmissions start elevated
// without consuming sense budget.
func (m *MAC) scheduleAttempt(src topology.NodeID, sense, window int) {
	w := m.cfg.MinWindow << uint(window)
	if w > m.cfg.MaxWindow || w <= 0 {
		w = m.cfg.MaxWindow
	}
	delay := eventsim.Time(m.rand.Intn(w)+1) * m.cfg.SlotTime
	m.sim.After(delay, func() { m.attempt(src, sense, window) })
}

func (m *MAC) attempt(src topology.NodeID, sense, window int) {
	q := m.queues[src]
	if len(q) == 0 {
		m.busy[src] = false
		return
	}
	if m.medium.Busy(src) {
		m.stats.Deferred++
		if m.obs != nil {
			m.obs.backoffs.Inc()
		}
		if sense+1 >= m.cfg.MaxAttempts {
			m.stats.Dropped++
			if m.obs != nil {
				m.obs.dropped.Inc()
			}
			m.dequeue(src)
			return
		}
		m.scheduleAttempt(src, sense+1, window+1)
		return
	}
	f := q[0]
	m.txbuf[src] = f.pkt.AppendEncode(m.txbuf[src][:0])
	size := f.pkt.Size()
	m.medium.Transmit(src, f.pkt.Dst, m.txbuf[src], size)
	m.stats.Sent++
	if m.obs != nil {
		m.obs.sent.Inc()
	}
	air := m.medium.Duration(size)
	if f.pkt.Dst == packet.Broadcast {
		m.sim.After(air, func() { m.dequeue(src) })
		return
	}
	// Reliable unicast: wait data airtime + SIFS + ACK airtime + guard.
	m.waiting[src] = true
	m.awaiting[src] = f.pkt.Seq
	m.acked[src] = false
	ackAir := m.medium.Duration((&packet.Packet{Header: packet.Header{Kind: packet.KindAck}}).Size())
	timeout := air + m.cfg.SIFS + ackAir + 4*m.cfg.SlotTime
	m.sim.After(timeout, func() { m.checkAck(src, f) })
}

func (m *MAC) checkAck(src topology.NodeID, f *frameState) {
	m.waiting[src] = false
	if m.acked[src] {
		m.dequeue(src)
		return
	}
	f.retries++
	if f.retries > m.cfg.RetryLimit {
		m.stats.Dropped++
		if m.obs != nil {
			m.obs.dropped.Inc()
		}
		m.dequeue(src)
		return
	}
	m.stats.Retries++
	if m.obs != nil {
		m.obs.retries.Inc()
	}
	// A retransmission backs off from an elevated contention window but is
	// a fresh transmission attempt: its carrier-sense budget restarts at
	// MaxAttempts rather than inheriting the retry count as spent senses.
	window := f.retries
	if window > 5 {
		window = 5
	}
	m.scheduleAttempt(src, 0, window)
}

func (m *MAC) dequeue(src topology.NodeID) {
	q := m.queues[src]
	if len(q) > 0 {
		copy(q, q[1:])
		q[len(q)-1] = nil
		m.queues[src] = q[:len(q)-1]
	}
	if len(m.queues[src]) > 0 {
		m.scheduleAttempt(src, 0, 0)
	} else {
		m.busy[src] = false
	}
}

// onReceive handles every frame decoded at a node: ACK matching, ACK
// generation, duplicate suppression, and upward delivery. Frames decode
// into a shared scratch packet; only frames delivered upward are copied to
// the heap (handlers may retain them), so ACKs and duplicates cost no
// allocation.
func (m *MAC) onReceive(self topology.NodeID, frame []byte) {
	p := &m.rxScratch
	if err := packet.DecodeFrame(p, frame); err != nil {
		return
	}
	if p.Kind == packet.KindAck {
		if m.waiting[self] && p.Seq == m.awaiting[self] {
			m.acked[self] = true
		}
		return
	}
	if p.Dst != packet.Broadcast {
		// Acknowledge one SIFS later if the radio is free; a suppressed
		// ACK just means the sender retransmits.
		ackDst, ackSeq := p.Src, p.Seq
		m.sim.After(m.cfg.SIFS, func() {
			if m.medium.Busy(self) {
				return
			}
			ack := packet.Packet{Header: packet.Header{
				Kind: packet.KindAck,
				Src:  int32(self),
				Dst:  ackDst,
				Seq:  ackSeq,
			}}
			m.ackbuf[self] = ack.AppendEncode(m.ackbuf[self][:0])
			m.medium.Transmit(self, ack.Dst, m.ackbuf[self], ack.Size())
			m.stats.AcksSent++
			if m.obs != nil {
				m.obs.acksSent.Inc()
			}
		})
		key := pairKey{topology.NodeID(p.Src), self}
		if last, seen := m.lastSeq[key]; seen && last == p.Seq {
			m.stats.Duplicates++
			if m.obs != nil {
				m.obs.duplicates.Inc()
			}
			return
		}
		m.lastSeq[key] = p.Seq
	}
	if h := m.handlers[self]; h != nil {
		up := new(packet.Packet)
		*up = *p
		h(self, up)
	}
}
