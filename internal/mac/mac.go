// Package mac implements the medium-access layer of our ns-2 substitute: a
// nonpersistent CSMA scheme with binary exponential backoff, plus
// 802.11-style stop-and-wait ARQ for unicast frames.
//
// Broadcast frames (the HELLO floods) are fire-and-forget, exactly as in
// 802.11. Unicast frames (slices, partial aggregates) are acknowledged:
// the receiver returns an ACK one SIFS after a successful decode, and the
// sender retransmits on ACK timeout up to RetryLimit times before dropping
// the frame. Retransmissions are deduplicated at the receiver by MAC
// sequence number. Carrier sensing prevents most collisions; hidden
// terminals and ACK losses produce the residual loss the paper's Section
// IV-B attributes to "collision in wireless channels".
package mac

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Handler receives frames the MAC delivers upward (ACKs and duplicate
// retransmissions are filtered out). The packet points into MAC-owned
// scratch and is valid only for the duration of the call: a handler that
// needs the packet afterwards must copy it by value. Delivering the scratch
// directly keeps the receive path allocation-free.
type Handler func(self topology.NodeID, p *packet.Packet)

// Config are the channel-access parameters. The defaults fit the paper's
// 1 Mbps channel with frames of a few tens of bytes.
type Config struct {
	Scheme      Scheme        // access discipline; zero value = CSMA
	SlotTime    eventsim.Time // backoff quantum, seconds
	MinWindow   int           // initial contention window, slots
	MaxWindow   int           // contention window cap, slots
	MaxAttempts int           // busy senses per transmission before giving up
	RetryLimit  int           // unicast retransmissions before dropping
	SIFS        eventsim.Time // short interframe space before an ACK

	// MaxFrameSize optionally raises the data-frame size TDMA slot sizing
	// budgets for, in on-air bytes. Zero (the default) budgets for the
	// largest fixed-size packet kind; a protocol that sends bigger frames
	// (coalesced multi-slice batches) must declare its maximum here so a
	// whole frame, its ACK, and the ARQ guard still fit one slot. CSMA
	// ignores it.
	MaxFrameSize int
}

// DefaultConfig returns parameters tuned to the paper's radio: 100 µs
// slots, windows 8..256, 16 sense attempts, 7 retransmissions.
func DefaultConfig() Config {
	return Config{
		SlotTime:    100e-6,
		MinWindow:   8,
		MaxWindow:   256,
		MaxAttempts: 16,
		RetryLimit:  7,
		SIFS:        10e-6,
	}
}

// Stats are cumulative MAC counters.
type Stats struct {
	Enqueued   uint64
	Sent       uint64 // data transmissions put on the air (incl. retransmissions)
	Dropped    uint64 // frames abandoned after MaxAttempts or RetryLimit
	Deferred   uint64 // busy senses that led to backoff
	Retries    uint64 // unicast retransmissions
	AcksSent   uint64
	Duplicates uint64 // retransmissions suppressed at receivers
}

// frameState is one queued frame. The packet lives in the struct by value
// — the MAC copies at enqueue, deep-copying any coalesced slice entries
// into the record's own reusable buffer — and the struct itself recycles
// through a per-MAC free list, so a steady stream of sends allocates
// nothing.
type frameState struct {
	pkt     packet.Packet
	entries []packet.SliceEntry // backing storage for pkt.Entries
	retries int
}

type pairKey struct {
	src, dst topology.NodeID
}

// MAC schedules transmissions for every node of one network. It is driven
// by the owning simulation and is not safe for concurrent use.
type MAC struct {
	sim      *eventsim.Sim
	medium   *radio.Medium
	cfg      Config
	rand     *rng.Stream
	handlers []Handler
	passive  []bool
	queues   [][]*frameState
	fsFree   []*frameState // recycled frame records
	busy     []bool
	seq      []uint16
	// awaiting[i] is the seq the pending unicast of node i waits an ACK
	// for; acked[i] flips when it arrives.
	awaiting []uint16
	waiting  []bool
	acked    []bool
	lastSeq  map[pairKey]uint16
	stats    Stats
	obs      *macObs
	qt       *qtrace.Tracer

	// Reusable frame buffers: one data buffer and one ACK buffer per node.
	// A node's previous frame is fully resolved by the medium before it can
	// encode the next one (the radio resolves receptions at end-of-air, and
	// both the next attempt and the ACK path are strictly later), so each
	// buffer is recycled across sends instead of allocated per frame.
	txbuf  [][]byte
	ackbuf [][]byte
	// rxScratch is the decode target for every received frame. Upward
	// deliveries hand the scratch to the handler directly (see Handler).
	// The medium delivers each frame once per transmission (batch path),
	// so a broadcast decodes one time no matter how many nodes heard it —
	// every non-retaining receiver aliases this shared view.
	rxScratch packet.Packet
	// retain marks nodes whose handler keeps the packet past the call:
	// their deliveries are copied out of the shared scratch into a
	// per-node buffer that stays valid until the node's next delivery.
	retain    []bool
	retainBuf []packet.Packet
	// batchFn is the single batch receiver closure shared by the whole
	// medium; the medium hands over each frame once with the ordered list
	// of nodes that decoded it.
	batchFn radio.BatchReceiver

	// Prebuilt per-node event closures with argument slots. The MAC's state
	// machine keeps at most ONE of each kind pending per node (Send only
	// arms an attempt when the node is idle; retries, ACK checks, and
	// post-broadcast dequeues are each scheduled from the event that retires
	// their predecessor), so a single argument slot per node suffices. The
	// armed flags guard that invariant: if it ever broke, scheduling falls
	// back to a one-off closure with identical behavior instead of
	// clobbering the pending event's arguments.
	attemptFn     []func()
	deqFn         []func()
	checkAckFn    []func()
	ackFn         []func()
	attemptSense  []int
	attemptWindow []int
	attemptArmed  []bool
	ackDst        []int32
	ackSeq        []uint16
	ackArmed      []bool

	// TDMA state (SchemeTDMA only): the two-hop coloring, the frame
	// length in slots, the slot duration, and the coloring's reusable
	// working storage. See tdma.go.
	slot        []int32
	numSlots    int
	slotLen     eventsim.Time
	slotScratch slotScratch
}

// New creates a MAC over medium for a network of n nodes and installs
// itself as the medium receiver for every node. Protocol layers must
// register their upcalls with SetHandler, not with the medium directly.
func New(sim *eventsim.Sim, medium *radio.Medium, n int, cfg Config, rand *rng.Stream) *MAC {
	m := &MAC{
		sim:     sim,
		medium:  medium,
		lastSeq: make(map[pairKey]uint16),
	}
	m.batchFn = func(frame []byte, to []topology.NodeID) { m.onBatch(frame, to) }
	m.Reset(n, cfg, rand)
	return m
}

// Reset returns the MAC to its post-New state for a new run over the same
// sim/medium pair, reusing all per-node tables, frame records, and event
// closures. Queued frames from the previous run are recycled, counters and
// the duplicate-suppression map are cleared (keeping their storage), and
// the shared receiver closure is reinstalled on the medium (which a
// medium Reset detaches). Handlers and the obs sink are dropped — the
// owning protocol stack rewires them, exactly as after New.
func (m *MAC) Reset(n int, cfg Config, rand *rng.Stream) {
	if cfg.SlotTime <= 0 || cfg.MinWindow <= 0 || cfg.MaxWindow < cfg.MinWindow ||
		cfg.MaxAttempts <= 0 || cfg.RetryLimit < 0 || cfg.SIFS <= 0 || cfg.MaxFrameSize < 0 {
		panic("mac: invalid config")
	}
	m.cfg = cfg
	m.rand = rand
	for i := range m.queues {
		for _, f := range m.queues[i] {
			m.putFrame(f)
		}
		m.queues[i] = m.queues[i][:0]
	}
	m.queues = resizeQueues(m.queues, n)
	m.handlers = resizeHandlers(m.handlers, n)
	m.passive = resizeBools(m.passive, n)
	m.retain = resizeBools(m.retain, n)
	m.retainBuf = resizePackets(m.retainBuf, n)
	m.busy = resizeBools(m.busy, n)
	m.seq = resizeU16(m.seq, n)
	m.awaiting = resizeU16(m.awaiting, n)
	m.waiting = resizeBools(m.waiting, n)
	m.acked = resizeBools(m.acked, n)
	m.txbuf = resizeBufs(m.txbuf, n)
	m.ackbuf = resizeBufs(m.ackbuf, n)
	clear(m.lastSeq)
	m.stats = Stats{}
	m.obs = nil
	m.qt = nil

	m.attemptFn = resizeFns(m.attemptFn, n)
	m.deqFn = resizeFns(m.deqFn, n)
	m.checkAckFn = resizeFns(m.checkAckFn, n)
	m.ackFn = resizeFns(m.ackFn, n)
	m.attemptSense = resizeInts(m.attemptSense, n)
	m.attemptWindow = resizeInts(m.attemptWindow, n)
	m.attemptArmed = resizeBools(m.attemptArmed, n)
	m.ackDst = resizeI32(m.ackDst, n)
	m.ackSeq = resizeU16(m.ackSeq, n)
	m.ackArmed = resizeBools(m.ackArmed, n)
	for i := range m.attemptFn {
		if m.attemptFn[i] == nil {
			id := topology.NodeID(i)
			m.attemptFn[i] = func() { m.fireAttempt(id) }
			m.deqFn[i] = func() { m.dequeue(id) }
			m.checkAckFn[i] = func() { m.checkAck(id) }
			m.ackFn[i] = func() { m.fireAck(id) }
		}
	}
	m.medium.SetBatchReceiver(m.batchFn)
	if cfg.Scheme == SchemeTDMA {
		m.resetTDMA()
	}
}

// getFrame pops a recycled frame record or allocates one.
func (m *MAC) getFrame() *frameState {
	if n := len(m.fsFree); n > 0 {
		f := m.fsFree[n-1]
		m.fsFree[n-1] = nil
		m.fsFree = m.fsFree[:n-1]
		return f
	}
	return &frameState{}
}

func (m *MAC) putFrame(f *frameState) {
	m.fsFree = append(m.fsFree, f)
}

// The resize helpers reslice in place when capacity allows (clearing the
// live window) and allocate only on growth, so per-node tables reach a
// steady state after the first few runs at a given size. Closure and
// buffer tables deliberately keep their old entries on regrowth: closures
// stay valid across runs and buffers are overwritten before use.

func resizeQueues(s [][]*frameState, n int) [][]*frameState {
	if cap(s) < n {
		s = append(s[:cap(s)], make([][]*frameState, n-cap(s))...)
	}
	return s[:n]
}

func resizeHandlers(s []Handler, n int) []Handler {
	if cap(s) < n {
		return make([]Handler, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeU16(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeBufs(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		s = append(s[:cap(s)], make([][]byte, n-cap(s))...)
	}
	return s[:n]
}

func resizeFns(s []func(), n int) []func() {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]func(), n-cap(s))...)
	}
	return s[:n]
}

func resizePackets(s []packet.Packet, n int) []packet.Packet {
	if cap(s) < n {
		// Keep old entries: retained copies are overwritten before use and
		// their Entries buffers recycle across runs.
		s = append(s[:cap(s)], make([]packet.Packet, n-cap(s))...)
	}
	return s[:n]
}

// SetHandler installs the upward delivery callback for a node.
func (m *MAC) SetHandler(id topology.NodeID, h Handler) { m.handlers[id] = h }

// SetRetaining marks node id's handler as retaining: instead of aliasing
// the shared decode scratch — which the next delivery overwrites — the
// node receives a private copy that stays valid until its own next
// delivery. Handlers that consume the packet synchronously (every in-tree
// protocol layer) should leave this off; it exists for upward deliveries
// that hold the packet across events. Reset clears all retaining marks.
func (m *MAC) SetRetaining(id topology.NodeID, retaining bool) { m.retain[id] = retaining }

// SetPassive marks a node as a border mirror owned by another shard: its
// radio presence (carrier sense, collisions, injected foreign frames) is
// fully modelled, but this MAC never acts for it — no ACKs, no upward
// delivery, no duplicate bookkeeping. The node's home shard does all of
// that; reacting here too would double every response. Reset clears all
// passive marks.
func (m *MAC) SetPassive(id topology.NodeID, passive bool) { m.passive[id] = passive }

// macObs holds the MAC's pre-resolved instrument handles; nil disables
// instrumentation for one pointer check per event.
type macObs struct {
	enqueued   obs.Counter
	sent       obs.Counter
	dropped    obs.Counter
	backoffs   obs.Counter
	retries    obs.Counter
	acksSent   obs.Counter
	duplicates obs.Counter
	queueLen   obs.Histogram
}

// SetObs attaches an instrumentation sink; instruments resolve once here.
func (m *MAC) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Reg == nil {
		m.obs = nil
		return
	}
	m.obs = &macObs{
		enqueued:   sink.Reg.Counter("ipda_mac_enqueued_total", "frames handed to the MAC"),
		sent:       sink.Reg.Counter("ipda_mac_sent_total", "data transmissions put on the air (incl. retransmissions)"),
		dropped:    sink.Reg.Counter("ipda_mac_dropped_total", "frames abandoned after MaxAttempts or RetryLimit"),
		backoffs:   sink.Reg.Counter("ipda_mac_backoffs_total", "busy senses that led to backoff"),
		retries:    sink.Reg.Counter("ipda_mac_retries_total", "unicast retransmissions"),
		acksSent:   sink.Reg.Counter("ipda_mac_acks_sent_total", "link-layer acknowledgements transmitted"),
		duplicates: sink.Reg.Counter("ipda_mac_duplicates_total", "retransmissions suppressed at receivers"),
		queueLen: sink.Reg.Histogram("ipda_mac_queue_depth", "per-node queue depth observed at enqueue, including the frame just queued",
			[]float64{0, 1, 2, 4, 8, 16, 32}),
	}
}

// SetQTrace attaches a query tracer: backoffs, retransmissions, and
// drops are attributed to the span each queued frame carries in its
// trace context, and a traced frame's span is extended to the moment
// the MAC retires it (ACKed, end of broadcast air, or dropped) — the
// per-hop latency a causal trace reports. Reset detaches the tracer.
func (m *MAC) SetQTrace(t *qtrace.Tracer) { m.qt = t }

// Stats returns cumulative counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen returns the number of frames queued at node id (including any
// frame currently in service).
func (m *MAC) QueueLen(id topology.NodeID) int { return len(m.queues[id]) }

// Send enqueues a frame for transmission from src; pkt.Dst selects unicast
// (reliable, ARQ) or packet.Broadcast (fire-and-forget). The frame is
// copied at enqueue — the caller keeps pkt and may reuse it immediately —
// and the MAC assigns the copy's Seq.
func (m *MAC) Send(src topology.NodeID, pkt *packet.Packet) {
	if m.passive[src] {
		panic(fmt.Sprintf("mac: Send from passive mirror node %d", src))
	}
	m.stats.Enqueued++
	m.seq[src]++
	f := m.getFrame()
	f.pkt = *pkt
	f.entries = append(f.entries[:0], pkt.Entries...)
	f.pkt.Entries = f.entries
	f.pkt.Seq = m.seq[src]
	f.retries = 0
	m.queues[src] = append(m.queues[src], f)
	if m.obs != nil {
		m.obs.enqueued.Inc()
		m.obs.queueLen.Observe(float64(len(m.queues[src])))
	}
	if !m.busy[src] {
		m.busy[src] = true
		m.scheduleAttempt(src, 0, 0)
	}
}

// scheduleAttempt arms the next carrier-sense attempt for src's queue head.
// Under CSMA the delay is a random backoff drawn from the contention window
// 2^window·MinWindow; under TDMA it is the node's next owned slot boundary
// and consumes no randomness. sense counts busy senses of the current
// transmission attempt (the drop budget is MaxAttempts senses per
// transmission); window is the binary exponential backoff exponent, which
// ARQ retransmissions start elevated without consuming sense budget (and
// which TDMA ignores — a retransmission simply waits for the next slot).
func (m *MAC) scheduleAttempt(src topology.NodeID, sense, window int) {
	var delay eventsim.Time
	if m.cfg.Scheme == SchemeTDMA {
		delay = m.tdmaDelay(src)
	} else {
		w := m.cfg.MinWindow << uint(window)
		if w > m.cfg.MaxWindow || w <= 0 {
			w = m.cfg.MaxWindow
		}
		delay = eventsim.Time(m.rand.Intn(w)+1) * m.cfg.SlotTime
	}
	if m.attemptArmed[src] {
		// Invariant breach fallback: never clobber a pending attempt's slot.
		m.sim.After(delay, func() { m.attempt(src, sense, window) })
		return
	}
	m.attemptArmed[src] = true
	m.attemptSense[src] = sense
	m.attemptWindow[src] = window
	m.sim.After(delay, m.attemptFn[src])
}

// fireAttempt is the prebuilt attempt closure's body: it releases the
// node's argument slot and runs the attempt with the armed arguments.
func (m *MAC) fireAttempt(src topology.NodeID) {
	m.attemptArmed[src] = false
	m.attempt(src, m.attemptSense[src], m.attemptWindow[src])
}

func (m *MAC) attempt(src topology.NodeID, sense, window int) {
	q := m.queues[src]
	if len(q) == 0 {
		m.busy[src] = false
		return
	}
	if m.medium.Busy(src) {
		m.stats.Deferred++
		if m.obs != nil {
			m.obs.backoffs.Inc()
		}
		if m.qt != nil {
			m.qt.AddBackoff(qtrace.Ref(q[0].pkt.TraceSpan))
		}
		if sense+1 >= m.cfg.MaxAttempts {
			m.stats.Dropped++
			if m.obs != nil {
				m.obs.dropped.Inc()
			}
			if m.qt != nil {
				m.qt.AddDrop(qtrace.Ref(q[0].pkt.TraceSpan))
			}
			m.dequeue(src)
			return
		}
		m.scheduleAttempt(src, sense+1, window+1)
		return
	}
	f := q[0]
	m.txbuf[src] = f.pkt.AppendEncode(m.txbuf[src][:0])
	size := f.pkt.Size()
	m.medium.Transmit(src, f.pkt.Dst, m.txbuf[src], size)
	m.stats.Sent++
	if m.obs != nil {
		m.obs.sent.Inc()
	}
	air := m.medium.Duration(size)
	if f.pkt.Dst == packet.Broadcast {
		m.sim.After(air, m.deqFn[src])
		return
	}
	// Reliable unicast: wait data airtime + SIFS + ACK airtime + guard.
	m.waiting[src] = true
	m.awaiting[src] = f.pkt.Seq
	m.acked[src] = false
	ackAir := m.medium.Duration((&packet.Packet{Header: packet.Header{Kind: packet.KindAck}}).Size())
	timeout := air + m.cfg.SIFS + ackAir + 4*m.cfg.SlotTime
	m.sim.After(timeout, m.checkAckFn[src])
}

// checkAck resolves the ARQ wait for src's in-service frame. The frame is
// the queue head: nothing dequeues while the node waits for an ACK and
// Send only appends, so the head cannot move between the transmission and
// this timeout.
func (m *MAC) checkAck(src topology.NodeID) {
	m.waiting[src] = false
	if m.acked[src] {
		m.dequeue(src)
		return
	}
	q := m.queues[src]
	if len(q) == 0 {
		m.busy[src] = false
		return
	}
	f := q[0]
	f.retries++
	if f.retries > m.cfg.RetryLimit {
		m.stats.Dropped++
		if m.obs != nil {
			m.obs.dropped.Inc()
		}
		if m.qt != nil {
			m.qt.AddDrop(qtrace.Ref(f.pkt.TraceSpan))
		}
		m.dequeue(src)
		return
	}
	m.stats.Retries++
	if m.obs != nil {
		m.obs.retries.Inc()
	}
	if m.qt != nil {
		m.qt.AddRetry(qtrace.Ref(f.pkt.TraceSpan))
	}
	// A retransmission backs off from an elevated contention window but is
	// a fresh transmission attempt: its carrier-sense budget restarts at
	// MaxAttempts rather than inheriting the retry count as spent senses.
	window := f.retries
	if window > 5 {
		window = 5
	}
	m.scheduleAttempt(src, 0, window)
}

// dequeue retires src's in-service frame. Every resolution path of a
// frame funnels through here — broadcast end-of-air, ACKed unicast,
// and both drop paths — so this is the single point that closes the
// frame's causal span at the retirement time.
func (m *MAC) dequeue(src topology.NodeID) {
	q := m.queues[src]
	if len(q) > 0 {
		if m.qt != nil {
			m.qt.End(qtrace.Ref(q[0].pkt.TraceSpan), float64(m.sim.Now()))
		}
		m.putFrame(q[0])
		copy(q, q[1:])
		q[len(q)-1] = nil
		m.queues[src] = q[:len(q)-1]
	}
	if len(m.queues[src]) > 0 {
		m.scheduleAttempt(src, 0, 0)
	} else {
		m.busy[src] = false
	}
}

// onBatch handles one frame for every node that decoded it, in the
// medium's deterministic neighbor order. The frame decodes ONCE into the
// shared scratch packet; each receiver then runs the same per-node state
// machine the per-receiver path ran — ACK matching, ACK generation,
// duplicate suppression, upward delivery — against the shared view. For a
// broadcast heard by d nodes this removes d−1 decodes from the hot path
// without reordering any observable effect: handlers fire in the same
// relative order and only ever schedule strictly-future events.
func (m *MAC) onBatch(frame []byte, to []topology.NodeID) {
	p := &m.rxScratch
	if err := packet.DecodeFrame(p, frame); err != nil {
		return
	}
	if p.Kind == packet.KindAck {
		for _, self := range to {
			if m.passive[self] {
				continue
			}
			if m.waiting[self] && p.Seq == m.awaiting[self] {
				m.acked[self] = true
			}
		}
		return
	}
	// Unicast non-coalesced frames stage exactly one receiver — the
	// addressed destination — so the dominant point-to-point traffic runs
	// the delivery body directly instead of paying a loop plus an outlined
	// call per frame.
	if len(to) == 1 && p.Dst == int32(to[0]) {
		m.deliverUnicast(to[0], p)
		return
	}
	for _, self := range to {
		m.deliver(self, p)
	}
}

// deliverUnicast is deliver specialized for the addressed destination of a
// point-to-point frame: the Dst checks inside deliver are foregone
// conclusions here. Behavior is identical.
func (m *MAC) deliverUnicast(self topology.NodeID, p *packet.Packet) {
	if m.passive[self] {
		return
	}
	ackDst, ackSeq := p.Src, p.Seq
	if m.ackArmed[self] {
		m.sim.After(m.cfg.SIFS, func() { m.sendAck(self, ackDst, ackSeq) })
	} else {
		m.ackArmed[self] = true
		m.ackDst[self] = ackDst
		m.ackSeq[self] = ackSeq
		m.sim.After(m.cfg.SIFS, m.ackFn[self])
	}
	key := pairKey{topology.NodeID(p.Src), self}
	if last, seen := m.lastSeq[key]; seen && last == p.Seq {
		m.stats.Duplicates++
		if m.obs != nil {
			m.obs.duplicates.Inc()
		}
		return
	}
	m.lastSeq[key] = p.Seq
	if h := m.handlers[self]; h != nil {
		if m.retain[self] {
			buf := m.retainBuf[self].Entries
			m.retainBuf[self] = *p
			m.retainBuf[self].Entries = append(buf[:0], p.Entries...)
			h(self, &m.retainBuf[self])
			return
		}
		h(self, p)
	}
}

// deliver runs one receiver's share of a decoded frame: ACK scheduling
// when this node is the addressed destination, duplicate suppression for
// any non-broadcast reception (coalesced frames reach non-anchor nodes
// promiscuously and retransmissions must not double-deliver there either),
// and the upward handler call. The whole path costs no allocation.
func (m *MAC) deliver(self topology.NodeID, p *packet.Packet) {
	if m.passive[self] {
		return
	}
	if p.Dst == int32(self) {
		// Acknowledge one SIFS later if the radio is free; a suppressed
		// ACK just means the sender retransmits. At most one ACK can be
		// pending per node — two decodes cannot complete within one SIFS of
		// each other (overlapping frames collide) — so the prebuilt closure
		// slot applies, with the same one-off fallback as scheduleAttempt.
		ackDst, ackSeq := p.Src, p.Seq
		if m.ackArmed[self] {
			m.sim.After(m.cfg.SIFS, func() { m.sendAck(self, ackDst, ackSeq) })
		} else {
			m.ackArmed[self] = true
			m.ackDst[self] = ackDst
			m.ackSeq[self] = ackSeq
			m.sim.After(m.cfg.SIFS, m.ackFn[self])
		}
	}
	if p.Dst != packet.Broadcast {
		key := pairKey{topology.NodeID(p.Src), self}
		if last, seen := m.lastSeq[key]; seen && last == p.Seq {
			m.stats.Duplicates++
			if m.obs != nil {
				m.obs.duplicates.Inc()
			}
			return
		}
		m.lastSeq[key] = p.Seq
	}
	if h := m.handlers[self]; h != nil {
		if m.retain[self] {
			// Copy the shared view into the node's private buffer, reusing
			// its previous copy's Entries storage.
			buf := m.retainBuf[self].Entries
			m.retainBuf[self] = *p
			m.retainBuf[self].Entries = append(buf[:0], p.Entries...)
			h(self, &m.retainBuf[self])
			return
		}
		h(self, p)
	}
}

// fireAck is the prebuilt ACK closure's body.
func (m *MAC) fireAck(self topology.NodeID) {
	m.ackArmed[self] = false
	m.sendAck(self, m.ackDst[self], m.ackSeq[self])
}

func (m *MAC) sendAck(self topology.NodeID, ackDst int32, ackSeq uint16) {
	if m.medium.Busy(self) {
		return
	}
	ack := packet.Packet{Header: packet.Header{
		Kind: packet.KindAck,
		Src:  int32(self),
		Dst:  ackDst,
		Seq:  ackSeq,
	}}
	m.ackbuf[self] = ack.AppendEncode(m.ackbuf[self][:0])
	m.medium.Transmit(self, ack.Dst, m.ackbuf[self], ack.Size())
	m.stats.AcksSent++
	if m.obs != nil {
		m.obs.acksSent.Inc()
	}
}
