package privacy

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/rng"
)

func game(t *testing.T, cfg Config, seed uint64) Result {
	t.Helper()
	if cfg.Trials == 0 {
		cfg.Trials = 20000
	}
	res, err := RunGame(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullRingZeroPxNoAdvantage(t *testing.T) {
	res := game(t, Config{L: 2, Spread: 0, Px: 0, V0: 10, V1: 5000}, 1)
	if math.Abs(res.Advantage) > 0.02 {
		t.Fatalf("advantage %v with nothing observed", res.Advantage)
	}
	if res.FullReconstructions != 0 {
		t.Fatal("reconstruction without observations")
	}
}

func TestFullRingAdvantageMatchesTheory(t *testing.T) {
	for _, px := range []float64{0.2, 0.4} {
		cfg := Config{L: 2, Spread: 0, Px: px, V0: 10, V1: 5000, Trials: 40000}
		res := game(t, cfg, 2)
		want := TheoreticalLeafAdvantage(px, 2)
		if math.Abs(res.Advantage-want) > 0.02 {
			t.Fatalf("px=%v: advantage %v, theory %v", px, res.Advantage, want)
		}
	}
}

func TestFullRingFullCompromiseAlwaysWins(t *testing.T) {
	res := game(t, Config{L: 2, Spread: 0, Px: 1, V0: 7, V1: 8}, 3)
	if res.Advantage < 0.999 {
		t.Fatalf("advantage %v at px=1", res.Advantage)
	}
	if res.FullReconstructions != res.Trials {
		t.Fatal("not every trial reconstructed at px=1")
	}
}

func TestBoundedSharesLeakScale(t *testing.T) {
	// Readings of very different magnitude: bounded shares leak scale, so
	// the advantage at modest px must exceed the full-ring advantage.
	px := 0.3
	bounded := game(t, Config{L: 2, Spread: 4, Px: px, V0: 1, V1: 100000}, 4)
	ring := TheoreticalLeafAdvantage(px, 2)
	if bounded.Advantage <= ring+0.05 {
		t.Fatalf("bounded advantage %v does not exceed full-ring %v", bounded.Advantage, ring)
	}
}

func TestBoundedSharesSimilarMagnitudesStayPrivate(t *testing.T) {
	// Readings of the same magnitude are hard to separate below full
	// reconstruction even with bounded shares.
	px := 0.2
	res := game(t, Config{L: 2, Spread: 4, Px: px, V0: 100, V1: -100, Trials: 40000}, 5)
	// Reconstruction advantage alone would be 1-(1-0.04)^2 ~= 0.078; the
	// magnitude leak adds little here. Allow some slack for the LRT's
	// small edge on boundary shares.
	if res.Advantage > 0.30 {
		t.Fatalf("advantage %v too high for same-magnitude readings", res.Advantage)
	}
}

func TestAdvantageIncreasesWithPx(t *testing.T) {
	lo := game(t, Config{L: 2, Spread: 0, Px: 0.1, V0: 1, V1: 2, Trials: 40000}, 6)
	hi := game(t, Config{L: 2, Spread: 0, Px: 0.6, V0: 1, V1: 2, Trials: 40000}, 7)
	if lo.Advantage >= hi.Advantage {
		t.Fatalf("advantage not increasing: %v vs %v", lo.Advantage, hi.Advantage)
	}
}

func TestMoreSlicesReduceAdvantage(t *testing.T) {
	px := 0.4
	l2 := game(t, Config{L: 2, Spread: 0, Px: px, V0: 1, V1: 2, Trials: 40000}, 8)
	l3 := game(t, Config{L: 3, Spread: 0, Px: px, V0: 1, V1: 2, Trials: 40000}, 9)
	if l3.Advantage >= l2.Advantage {
		t.Fatalf("l=3 advantage %v not below l=2 %v", l3.Advantage, l2.Advantage)
	}
}

func TestTheoreticalLeafAdvantage(t *testing.T) {
	if TheoreticalLeafAdvantage(0, 2) != 0 {
		t.Fatal("px=0 advantage nonzero")
	}
	if TheoreticalLeafAdvantage(1, 2) != 1 {
		t.Fatal("px=1 advantage not 1")
	}
	// 1-(1-0.01)^2 = 0.0199 for px=0.1, l=2.
	if got := TheoreticalLeafAdvantage(0.1, 2); math.Abs(got-0.0199) > 1e-12 {
		t.Fatalf("advantage %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{L: 0, Px: 0.1, V0: 1, V1: 2, Trials: 1},
		{L: 2, Px: -0.1, V0: 1, V1: 2, Trials: 1},
		{L: 2, Px: 1.1, V0: 1, V1: 2, Trials: 1},
		{L: 2, Px: 0.1, V0: 1, V1: 1, Trials: 1},
		{L: 2, Px: 0.1, V0: 1, V1: 2, Trials: 0},
		{L: 2, Px: 0.1, V0: 1, V1: 2, Trials: 1, Spread: -1},
	}
	for i, c := range bad {
		if _, err := RunGame(c, rng.New(1)); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestDeterministicGame(t *testing.T) {
	cfg := Config{L: 2, Spread: 4, Px: 0.3, V0: 5, V1: 50, Trials: 5000}
	a, err := RunGame(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGame(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("game not deterministic under fixed seed")
	}
}
