// Package privacy formalizes the privacy goal of slicing-based aggregation
// as an indistinguishability game — the "indistinguishable privacy"
// framework the reproduction request's nominal title refers to.
//
// The game is the standard two-world experiment. The adversary names two
// candidate readings v0 and v1 for a target node. A secret coin picks one;
// the node slices it into l additive shares per tree exactly as in Phase
// II; every link is compromised independently with probability p_x; the
// adversary observes the shares on compromised links and guesses the coin.
// The scheme is ε-indistinguishable at p_x if no adversary guesses with
// advantage (2·Pr[correct] − 1) above ε.
//
// Two facts the game makes precise, and that RunGame measures empirically:
//
//   - With full-ring uniform shares (slicing.Split), any strict subset of
//     a share set is exactly uniform, so the advantage comes only from
//     full reconstructions: ε ≈ 1 − (1 − p_x^l)², Equation (11)'s leaf
//     form. Below full reconstruction the adversary is blind.
//   - With bounded shares (slicing.SplitBounded), share magnitudes leak
//     the reading's scale: if |v0| and |v1| differ strongly, a single
//     observed share separates the worlds with noticeable advantage. This
//     is the price of loss-tolerance, and the game quantifies it.
//
// The built-in adversary plays optimally-enough: exact reconstruction when
// it has a complete set, otherwise a per-share likelihood-ratio test over
// the bounded share distribution, otherwise a fair coin.
package privacy

import (
	"fmt"
	"math"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/slicing"
)

// Config parameterizes one indistinguishability experiment.
type Config struct {
	L      int     // slices per tree
	Spread int64   // bounded-share spread; 0 selects full-ring shares
	Px     float64 // per-link compromise probability
	V0, V1 int64   // the two candidate readings
	Trials int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.L < 1 {
		return fmt.Errorf("privacy: L must be >= 1, got %d", c.L)
	}
	if c.Px < 0 || c.Px > 1 {
		return fmt.Errorf("privacy: Px must be in [0,1], got %v", c.Px)
	}
	if c.Trials < 1 {
		return fmt.Errorf("privacy: Trials must be >= 1, got %d", c.Trials)
	}
	if c.V0 == c.V1 {
		return fmt.Errorf("privacy: candidate readings must differ")
	}
	if c.Spread < 0 {
		return fmt.Errorf("privacy: Spread must be >= 0, got %d", c.Spread)
	}
	return nil
}

// Result summarizes one experiment.
type Result struct {
	Trials              int
	Correct             int
	FullReconstructions int // trials where a complete share set leaked
	// Advantage is the empirical distinguishing advantage
	// 2·(Correct/Trials) − 1; its standard error is roughly
	// 1/sqrt(Trials).
	Advantage float64
}

// RunGame plays the two-world game cfg.Trials times and returns the
// adversary's empirical advantage.
func RunGame(cfg Config, r *rng.Stream) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	res.Trials = cfg.Trials
	for t := 0; t < cfg.Trials; t++ {
		secret := r.Intn(2)
		value := cfg.V0
		if secret == 1 {
			value = cfg.V1
		}
		// The target reports as a leaf: l shares to each tree, all
		// transmitted (the strongest exposure; aggregators keep one share
		// off the air).
		var red, blue []int64
		if cfg.Spread > 0 {
			red = slicing.SplitBounded(value, cfg.L, cfg.Spread, r)
			blue = slicing.SplitBounded(value, cfg.L, cfg.Spread, r)
		} else {
			red = slicing.Split(value, cfg.L, r)
			blue = slicing.Split(value, cfg.L, r)
		}
		redSeen := observe(red, cfg.Px, r)
		blueSeen := observe(blue, cfg.Px, r)
		guess, full := distinguish(cfg, red, blue, redSeen, blueSeen, r)
		if full {
			res.FullReconstructions++
		}
		if guess == secret {
			res.Correct++
		}
	}
	res.Advantage = 2*float64(res.Correct)/float64(res.Trials) - 1
	return res, nil
}

// observe returns which share indices the adversary sees.
func observe(shares []int64, px float64, r *rng.Stream) []bool {
	seen := make([]bool, len(shares))
	for i := range shares {
		seen[i] = r.Bool(px)
	}
	return seen
}

// distinguish implements the built-in adversary.
func distinguish(cfg Config, red, blue []int64, redSeen, blueSeen []bool, r *rng.Stream) (guess int, full bool) {
	// Exact reconstruction from a complete set.
	for _, set := range []struct {
		shares []int64
		seen   []bool
	}{{red, redSeen}, {blue, blueSeen}} {
		if allSeen(set.seen) {
			sum := slicing.Combine(set.shares)
			switch sum {
			case cfg.V0:
				return 0, true
			case cfg.V1:
				return 1, true
			}
		}
	}
	// Likelihood-ratio test over observed shares (bounded slicing only:
	// full-ring shares are uniform, carrying no signal below a full set).
	if cfg.Spread > 0 {
		ll0, ll1 := 0.0, 0.0
		informative := false
		for _, set := range []struct {
			shares []int64
			seen   []bool
		}{{red, redSeen}, {blue, blueSeen}} {
			// Only the first l−1 shares follow the bounded-uniform law;
			// the last is a dependent remainder the simple adversary
			// skips.
			for i := 0; i < len(set.shares)-1; i++ {
				if !set.seen[i] {
					continue
				}
				informative = true
				ll0 += shareLogLikelihood(set.shares[i], cfg.V0, cfg.Spread)
				ll1 += shareLogLikelihood(set.shares[i], cfg.V1, cfg.Spread)
			}
		}
		if informative && ll0 != ll1 {
			if ll1 > ll0 {
				return 1, false
			}
			return 0, false
		}
	}
	return r.Intn(2), false
}

func allSeen(seen []bool) bool {
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return len(seen) > 0
}

// shareLogLikelihood is log P[share | reading v] for a non-final bounded
// share: uniform over [−B, B], B = spread·max(1, |v|).
func shareLogLikelihood(share, v, spread int64) float64 {
	mag := v
	if mag < 0 {
		mag = -mag
	}
	if mag < 1 {
		mag = 1
	}
	bound := spread * mag
	if share < -bound || share > bound {
		return math.Inf(-1)
	}
	return -math.Log(float64(2*bound + 1))
}

// TheoreticalLeafAdvantage returns the analytic full-reconstruction
// advantage for a leaf under full-ring shares: the probability that at
// least one of the two share sets is completely observed,
// 1 − (1 − px^l)². Below that event the view is uniform, so this is also
// the optimal advantage.
func TheoreticalLeafAdvantage(px float64, l int) float64 {
	a := math.Pow(px, float64(l))
	return 1 - (1-a)*(1-a)
}
