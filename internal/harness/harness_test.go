package harness

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func testSweep(points, trials, workers int) Sweep {
	return Sweep{ID: "test", Seed: 7, Points: points, Trials: trials, Workers: workers}
}

func TestRunCoversGridOnce(t *testing.T) {
	s := testSweep(5, 4, 3)
	var mu sync.Mutex
	seen := map[[2]int]int{}
	err := s.Run(func(tr *T) error {
		mu.Lock()
		seen[[2]int{tr.Point, tr.Trial}]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("saw %d cells, want 20", len(seen))
	}
	for cell, n := range seen {
		if n != 1 {
			t.Fatalf("cell %v ran %d times", cell, n)
		}
	}
}

func TestRunEmptyGrid(t *testing.T) {
	if err := testSweep(0, 10, 2).Run(func(*T) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicAcrossWorkers is the core contract: the folded
// accumulator state is bit-identical no matter how trials are scheduled.
func TestDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		s := testSweep(6, 5, workers)
		acc := NewAcc(s)
		if err := s.Run(func(tr *T) error {
			acc.Add(tr, tr.Rng.Float64())
			acc.Add(tr, tr.Rng.NormFloat64())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for p := 0; p < s.Points; p++ {
			sm := acc.Point(p)
			out = append(out, sm.Mean(), sm.Variance(), sm.Min(), sm.Max(), sm.Sum(), float64(sm.N()))
		}
		return out
	}
	seq := run(1)
	for _, w := range []int{2, 4, 8, 32} {
		par := run(w)
		for i := range seq {
			if seq[i] != par[i] { // bit-exact, not approximate
				t.Fatalf("workers=%d: summary[%d] = %v, want %v", w, i, par[i], seq[i])
			}
		}
	}
}

func TestSeedPathsIndependent(t *testing.T) {
	// Every (point, trial) cell draws a distinct stream, and the
	// experiment ID participates in the derivation.
	draw := func(id string, seed uint64) map[uint64][2]int {
		s := Sweep{ID: id, Seed: seed, Points: 3, Trials: 3, Workers: 1}
		var mu sync.Mutex
		out := map[uint64][2]int{}
		if err := s.Run(func(tr *T) error {
			v := tr.Rng.Uint64()
			mu.Lock()
			if prev, dup := out[v]; dup {
				t.Errorf("stream collision between %v and %v", prev, [2]int{tr.Point, tr.Trial})
			}
			out[v] = [2]int{tr.Point, tr.Trial}
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := draw("expA", 1)
	b := draw("expB", 1)
	for v := range a {
		if _, dup := b[v]; dup {
			t.Fatal("distinct sweep IDs shared a stream")
		}
	}
}

func TestErrorCancelsSweep(t *testing.T) {
	s := testSweep(10, 10, 4)
	boom := errors.New("boom")
	var ran, cancelled atomic.Int64
	err := s.Run(func(tr *T) error {
		ran.Add(1)
		if tr.Point == 2 && tr.Trial == 3 {
			return boom
		}
		if tr.Ctx.Err() != nil {
			cancelled.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "harness: test point 2 trial 3"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %q, want it to locate the grid cell %q", err, want)
	}
	if ran.Load() == 100 {
		t.Fatal("sweep was not cancelled: every trial ran")
	}
}

func TestLowestIndexedErrorWins(t *testing.T) {
	// Sequential execution: the first failing cell is reported even
	// though a later cell also fails.
	s := testSweep(4, 1, 1)
	err := s.Run(func(tr *T) error {
		if tr.Point >= 1 {
			return fmt.Errorf("fail-%d", tr.Point)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "fail-1") {
		t.Fatalf("err = %v, want fail-1", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	s := testSweep(2, 2, 2)
	err := s.Run(func(tr *T) error {
		if tr.Point == 1 && tr.Trial == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestProgressReachesTotal(t *testing.T) {
	s := testSweep(3, 4, 2)
	var mu sync.Mutex
	last, calls := 0, 0
	s.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 12 {
			t.Errorf("total = %d, want 12", total)
		}
		if done != last+1 {
			t.Errorf("done = %d after %d: not monotone", done, last)
		}
		last = done
		calls++
	}
	if err := s.Run(func(*T) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 12 || last != 12 {
		t.Fatalf("progress calls = %d last = %d, want 12/12", calls, last)
	}
}

func TestAccSummaries(t *testing.T) {
	s := testSweep(2, 4, 1)
	acc := NewAcc(s)
	hit := NewAcc(s)
	if err := s.Run(func(tr *T) error {
		if tr.Point == 1 && tr.Trial == 3 {
			return nil // skipped trial: leaves its cell empty
		}
		acc.Add(tr, float64(tr.Trial+1))
		hit.AddBool(tr, tr.Trial%2 == 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p0 := acc.Point(0) // 1, 2, 3, 4
	if p0.N() != 4 || p0.Mean() != 2.5 || p0.Min() != 1 || p0.Max() != 4 || p0.Sum() != 10 {
		t.Fatalf("point 0 summary: n=%d mean=%v min=%v max=%v sum=%v", p0.N(), p0.Mean(), p0.Min(), p0.Max(), p0.Sum())
	}
	if v := p0.Variance(); math.Abs(v-5.0/3.0) > 1e-12 {
		t.Fatalf("point 0 variance = %v, want 5/3", v)
	}
	p1 := acc.Point(1) // 1, 2, 3 (trial 3 skipped)
	if p1.N() != 3 || p1.Sum() != 6 {
		t.Fatalf("point 1 summary: n=%d sum=%v", p1.N(), p1.Sum())
	}
	if h := hit.Point(0); h.Mean() != 0.5 || h.Sum() != 2 {
		t.Fatalf("bool point 0: mean=%v sum=%v", h.Mean(), h.Sum())
	}
	if all := acc.Sweep(); all.N() != 7 || all.Sum() != 16 {
		t.Fatalf("sweep summary: n=%d sum=%v", all.N(), all.Sum())
	}
}
