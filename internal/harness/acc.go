package harness

import "github.com/ipda-sim/ipda/internal/stats"

// Acc accumulates one scalar metric over a sweep's (point × trial) grid.
//
// Each grid cell owns a private streaming accumulator (count / mean /
// variance via Welford, min / max, sum — stats.Sample), so trials record
// observations without allocating trial-indexed result slices or taking a
// lock. Point folds a point's cells in trial order, which makes every
// summary independent of trial completion order — the keystone of the
// harness's Workers=1 ≡ Workers=N guarantee.
//
// Add may only be called from the trial that owns t (distinct trials
// touch distinct cells, so the grid needs no synchronization); Point and
// Sweep must only be called after Run returns.
type Acc struct {
	trials int
	cells  []stats.Sample
}

// NewAcc returns an accumulator sized for s's grid.
func NewAcc(s Sweep) *Acc {
	return &Acc{trials: s.Trials, cells: make([]stats.Sample, s.Points*s.Trials)}
}

// Add records one observation for t's grid cell. A trial may Add any
// number of observations, including none (a skipped trial simply leaves
// its cell empty and does not count toward the point's N).
func (a *Acc) Add(t *T, v float64) {
	a.cells[t.Point*a.trials+t.Trial].Add(v)
}

// AddBool records a 0/1 observation, so a point's Mean is the rate of
// true among recorded trials and Sum is their count.
func (a *Acc) AddBool(t *T, b bool) {
	v := 0.0
	if b {
		v = 1
	}
	a.Add(t, v)
}

// Point returns the summary over one point's trials, folded in trial
// order.
func (a *Acc) Point(point int) *stats.Sample {
	var s stats.Sample
	for trial := 0; trial < a.trials; trial++ {
		s.Merge(&a.cells[point*a.trials+trial])
	}
	return &s
}

// Sweep returns the summary over the entire grid, folded in (point,
// trial) order.
func (a *Acc) Sweep() *stats.Sample {
	var s stats.Sample
	for i := range a.cells {
		s.Merge(&a.cells[i])
	}
	return &s
}
