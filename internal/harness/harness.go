// Package harness is the generic sweep engine behind every experiment:
// a deterministic, parallel runner for (point × trial) grids.
//
// An experiment declares its sweep — an axis of points, a number of
// independent trials per point — and a per-trial function. The engine
// flattens the full grid into one global work queue over a single worker
// pool, so wall-clock scales with the total number of trials rather than
// with the slowest point's trials (a sweep of many points × few trials
// keeps every worker busy instead of draining one point at a time).
//
// Determinism is the contract: every trial draws from a private stream
// derived along the hierarchical seed path
//
//	root seed → experiment ID → point index → trial index
//
// via rng.SplitPath, so the output of a sweep is a pure function of
// (Sweep, trial func) — identical at Workers=1 and Workers=N, and immune
// to the label collisions ad-hoc seed arithmetic invites. Results are
// collected through Acc accumulators (acc.go), which fold per-trial
// observations in trial order regardless of completion order.
//
// Errors are first-class: the first failing trial cancels the sweep via
// context.Context (queued trials are dropped, running ones may observe
// T.Ctx done) and Run returns the error annotated with its grid cell.
// Panics inside a trial are recovered into errors, so a worker never
// takes the whole process down with a cross-goroutine panic.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
)

// LatencyBuckets is the exponential bucket layout of the harness'
// per-query completion-latency histogram: simulated round latencies live
// in the single-digit-seconds band, with a heavy tail under contention.
var LatencyBuckets = obs.ExpBuckets(0.25, 1.4, 24)

// Sweep declares one experiment's (point × trial) grid.
type Sweep struct {
	// ID names the experiment in the seed path; distinct IDs give
	// disjoint stream families for the same root seed.
	ID string
	// Seed is the root of the stream hierarchy; equal seeds give equal
	// results.
	Seed uint64
	// Points is the number of sweep points (axis values).
	Points int
	// Trials is the number of independent trials per point.
	Trials int
	// Workers bounds parallelism over the flattened grid; 0 selects
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after every completed trial
	// with the number of trials finished so far and the grid total.
	// Calls are serialized but arrive in completion order.
	Progress func(done, total int)
	// Obs, when non-nil, receives per-point completed-trial counters
	// while the sweep runs (updates serialized under the sweep's own
	// lock) and, once the sweep finishes, wall-clock elapsed and
	// trials/sec gauges. Wall-clock never reaches experiment tables, so
	// the determinism contract is unaffected.
	Obs *obs.Sink
	// WorkerState, when non-nil, is called once per worker goroutine
	// before it takes its first trial; the returned value is handed to
	// every trial that worker runs via T.State. It is the hook for
	// per-worker arenas (reusable simulation worlds): state lives as long
	// as the worker, is never shared between workers, and must not affect
	// trial results — a trial must be a pure function of (Point, Trial,
	// Rng) whether State is fresh or has served a thousand prior trials,
	// which is what keeps Workers=1 and Workers=N byte-identical.
	WorkerState func() any
	// QTrace, when non-nil, collects causal query traces: every trial
	// gets its own span bundle, keyed by (ID, point, trial), exposed to
	// the trial function as T.QTrace. Because bundles are keyed — never
	// shared — and the store's export sorts by key, the exported trace is
	// byte-identical for every Workers value.
	QTrace *qtrace.Store
}

// T is the execution context handed to one trial.
type T struct {
	// Point and Trial locate this trial on the sweep grid.
	Point int
	Trial int
	// Rng is the trial's private random stream, derived from the sweep
	// seed path; no other trial shares it.
	Rng *rng.Stream
	// Ctx is done once the sweep is cancelled by another trial's
	// failure; long trials may poll it to stop early.
	Ctx context.Context
	// State is this worker's long-lived state from Sweep.WorkerState
	// (nil when the sweep has none). Trials on the same worker see the
	// same value; trials on different workers never share one.
	State any
	// QTrace is this trial's span bundle from Sweep.QTrace (nil when the
	// sweep collects no traces; its Tracer method is nil-safe, so trial
	// functions wire config tracers unconditionally).
	QTrace *qtrace.TrialTraces

	latencies []float64
}

// RecordLatency buffers one completed query's end-to-end latency in
// simulated seconds. Buffered values are folded into the sweep's
// latency histogram under the completion lock — histogram adds commute,
// so the final distribution is independent of worker count.
func (t *T) RecordLatency(seconds float64) {
	t.latencies = append(t.latencies, seconds)
}

func (s Sweep) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes trial for every cell of the grid and waits for completion.
// Trials run concurrently across the whole grid; the first error (lowest
// grid index among those observed) cancels the remainder and is returned.
func (s Sweep) Run(trial func(t *T) error) error {
	total := s.Points * s.Trials
	if total <= 0 {
		return nil
	}
	workers := s.workers()
	if workers > total {
		workers = total
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	root := rng.New(s.Seed).SplitString(s.ID)

	// Resolve per-point instrument handles before the workers start; the
	// registry is not thread-safe, so workers only touch the dense
	// handles (and only under mu).
	var trialCounters []obs.Counter
	var latencyHist obs.Histogram
	var startWall time.Time
	observing := s.Obs != nil && s.Obs.Reg != nil
	if observing {
		trialCounters = make([]obs.Counter, s.Points)
		sweepLabel := obs.Label{Name: "sweep", Value: s.ID}
		for p := 0; p < s.Points; p++ {
			trialCounters[p] = s.Obs.Reg.Counter("ipda_harness_trials_total",
				"completed trials per sweep point",
				sweepLabel, obs.Label{Name: "point", Value: strconv.Itoa(p)})
		}
		latencyHist = s.Obs.Reg.Histogram("ipda_harness_query_latency_seconds",
			"per-query completion latency (simulated seconds)",
			LatencyBuckets, sweepLabel)
		startWall = time.Now()
	}

	var (
		mu      sync.Mutex
		done    int
		failIdx int
		failErr error
		wg      sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state any
			if s.WorkerState != nil {
				state = s.WorkerState()
			}
			for idx := range next {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue
				}
				point, tr := idx/s.Trials, idx%s.Trials
				tt := &T{
					Point:  point,
					Trial:  tr,
					Rng:    root.SplitPath(uint64(point)+1, uint64(tr)+1),
					Ctx:    ctx,
					State:  state,
					QTrace: s.QTrace.Trial(s.ID, point, tr),
				}
				err := runTrial(trial, tt)
				mu.Lock()
				if err != nil {
					if failErr == nil || idx < failIdx {
						failIdx = idx
						failErr = fmt.Errorf("harness: %s point %d trial %d: %w", s.ID, point, tr, err)
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if trialCounters != nil {
					trialCounters[point].Inc()
				}
				if observing {
					// Histogram folds commute, so the distribution is the
					// same at every worker count even though trials complete
					// in nondeterministic order.
					for _, v := range tt.latencies {
						latencyHist.Observe(v)
					}
				}
				if s.Progress != nil {
					s.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for idx := 0; idx < total; idx++ {
		next <- idx
	}
	close(next)
	wg.Wait()
	if observing {
		sweepLabel := obs.Label{Name: "sweep", Value: s.ID}
		elapsed := time.Since(startWall).Seconds()
		s.Obs.Reg.Gauge("ipda_harness_sweep_elapsed_seconds",
			"wall-clock duration of the sweep", sweepLabel).Set(elapsed)
		if elapsed > 0 {
			s.Obs.Reg.Gauge("ipda_harness_sweep_trials_per_second",
				"completed-trial throughput of the sweep", sweepLabel).Set(float64(done) / elapsed)
		}
	}
	return failErr
}

// runTrial invokes trial, converting a panic into an error so one bad
// trial cancels the sweep instead of killing the process from a worker
// goroutine.
func runTrial(trial func(t *T) error, t *T) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("trial panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return trial(t)
}
