package experiments

import (
	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Keys quantifies the first privacy-violation path of Section IV-A.3 —
// shared pool keys under random key predistribution — and what the
// q-composite hardening buys: for each ring size it measures the link
// connectivity, the induced per-link exposure p_x (fraction of third
// parties able to decrypt a link), and the resulting P_disclose via
// Equation (11). Each scheme is one sweep point, so the schemes are
// measured concurrently.
func Keys(o Options) (*Table, error) {
	t := &Table{
		ID:    "keys",
		Title: "Key predistribution: induced p_x and P_disclose (Sec. IV-A.3)",
		Columns: []string{
			"scheme", "ring/pool", "pair connectivity", "induced p_x", "P_disclose(l=2)",
		},
		Notes: []string{
			"pool = 1000 keys; connectivity and p_x measured over 200 nodes",
			"P_disclose from Eq.(11) with E[nl]=2l-1 at the measured p_x",
		},
	}
	const pool, nodes = 1000, 200
	type scheme struct {
		name string
		ring int
		q    int
	}
	schemes := []scheme{
		{"EG q=1", 50, 1},
		{"EG q=1", 100, 1},
		{"EG q=1", 200, 1},
		{"q-composite q=2", 100, 2},
		{"q-composite q=2", 200, 2},
		{"q-composite q=3", 200, 3},
		{"pairwise", 0, 0},
	}
	s := o.fixedSweep("keys", len(schemes), 1)
	connectivity := harness.NewAcc(s)
	inducedPx := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		sc := schemes[tr.Point]
		if sc.name == "pairwise" {
			return nil // constant row, no measurement
		}
		// Plain EG links use one shared pool key (the smallest common);
		// q-composite links hash every shared key, so a third party must
		// hold all of them.
		type keyScheme interface {
			linksec.Scheme
			Holds(c, a, b topology.NodeID) bool
		}
		var ks keyScheme
		var err error
		if sc.q == 1 {
			ks, err = linksec.NewRandomPredist(nodes, pool, sc.ring, 7, tr.Rng)
		} else {
			ks, err = linksec.NewQComposite(nodes, pool, sc.ring, sc.q, 7, tr.Rng)
		}
		if err != nil {
			return err
		}
		connected, pairs := 0, 0
		holds, obs := 0, 0
		for a := topology.NodeID(0); a < 60; a++ {
			for b := a + 1; b < 60; b++ {
				pairs++
				if _, ok := ks.SharedKey(a, b); !ok {
					continue
				}
				connected++
				for c := topology.NodeID(60); c < nodes; c++ {
					obs++
					if ks.Holds(c, a, b) {
						holds++
					}
				}
			}
		}
		connectivity.Add(tr, float64(connected)/float64(pairs))
		px := 0.0
		if obs > 0 {
			px = float64(holds) / float64(obs)
		}
		inducedPx.Add(tr, px)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, sc := range schemes {
		if sc.name == "pairwise" {
			t.AddRow("pairwise", "-", "1", "0", "0")
			continue
		}
		px := inducedPx.Point(pi).Mean()
		t.AddRow(
			sc.name,
			d(int64(sc.ring))+"/"+d(pool),
			f(connectivity.Point(pi).Mean()),
			f(px),
			f(analysis.PDiscloseRegular(px, 2)),
		)
	}
	return t, nil
}
