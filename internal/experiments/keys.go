package experiments

import (
	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Keys quantifies the first privacy-violation path of Section IV-A.3 —
// shared pool keys under random key predistribution — and what the
// q-composite hardening buys: for each ring size it measures the link
// connectivity, the induced per-link exposure p_x (fraction of third
// parties able to decrypt a link), and the resulting P_disclose via
// Equation (11).
func Keys(o Options) (*Table, error) {
	t := &Table{
		ID:    "keys",
		Title: "Key predistribution: induced p_x and P_disclose (Sec. IV-A.3)",
		Columns: []string{
			"scheme", "ring/pool", "pair connectivity", "induced p_x", "P_disclose(l=2)",
		},
		Notes: []string{
			"pool = 1000 keys; connectivity and p_x measured over 200 nodes",
			"P_disclose from Eq.(11) with E[nl]=2l-1 at the measured p_x",
		},
	}
	const pool, nodes = 1000, 200
	root := rng.New(o.Seed)
	type scheme struct {
		name string
		ring int
		q    int
	}
	schemes := []scheme{
		{"EG q=1", 50, 1},
		{"EG q=1", 100, 1},
		{"EG q=1", 200, 1},
		{"q-composite q=2", 100, 2},
		{"q-composite q=2", 200, 2},
		{"q-composite q=3", 200, 3},
		{"pairwise", 0, 0},
	}
	for si, sc := range schemes {
		if sc.name == "pairwise" {
			t.AddRow("pairwise", "-", "1", "0", "0")
			continue
		}
		// Plain EG links use one shared pool key (the smallest common);
		// q-composite links hash every shared key, so a third party must
		// hold all of them.
		type keyScheme interface {
			linksec.Scheme
			Holds(c, a, b topology.NodeID) bool
		}
		var s keyScheme
		var err error
		if sc.q == 1 {
			s, err = linksec.NewRandomPredist(nodes, pool, sc.ring, 7, root.Split(uint64(si)+1))
		} else {
			s, err = linksec.NewQComposite(nodes, pool, sc.ring, sc.q, 7, root.Split(uint64(si)+1))
		}
		if err != nil {
			return nil, err
		}
		connected, pairs := 0, 0
		holds, obs := 0, 0
		for a := topology.NodeID(0); a < 60; a++ {
			for b := a + 1; b < 60; b++ {
				pairs++
				if _, ok := s.SharedKey(a, b); !ok {
					continue
				}
				connected++
				for c := topology.NodeID(60); c < nodes; c++ {
					obs++
					if s.Holds(c, a, b) {
						holds++
					}
				}
			}
		}
		conn := float64(connected) / float64(pairs)
		px := 0.0
		if obs > 0 {
			px = float64(holds) / float64(obs)
		}
		t.AddRow(
			sc.name,
			d(int64(sc.ring))+"/"+d(pool),
			f(conn),
			f(px),
			f(analysis.PDiscloseRegular(px, 2)),
		)
	}
	return t, nil
}
