package experiments

import (
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/topology"
)

// DoS reproduces the Section III-D claim that a persistent polluter can be
// localized and excluded in O(log N) rounds: for each network size it runs
// the group-testing localization and reports the rounds used and the
// success rate, against the ceil(log2 N) reference.
func DoS(o Options) (*Table, error) {
	t := &Table{
		ID:      "dos",
		Title:   "DoS polluter localization in O(log N) rounds (Sec. III-D)",
		Columns: []string{"nodes", "rounds used", "log2(N)", "localized correctly"},
		Notes: []string{
			"probe rounds rebuild non-adaptive trees so every covered node aggregates",
		},
	}
	trials := o.trials(5)
	for si, n := range o.sizes() {
		rounds := make([]float64, trials)
		correct := make([]bool, trials)
		valid := make([]bool, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*701, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			factory := func(disabled []bool, seed uint64) (*core.Instance, error) {
				cfg := core.DefaultConfig()
				cfg.Tree.Adaptive = false
				cfg.Disabled = disabled
				return core.New(net, cfg, seed)
			}
			// A well-connected attacker, as a compromised aggregator near
			// traffic would be.
			var attacker topology.NodeID
			for i := 1; i < net.N(); i++ {
				if net.Degree(topology.NodeID(i)) >= 8 {
					attacker = topology.NodeID(i)
					break
				}
			}
			if attacker == 0 {
				return
			}
			res, err := attack.LocalizePolluter(net.N(), factory, attacker, 5000, r.Uint64())
			if err != nil {
				return
			}
			valid[trial] = true
			rounds[trial] = float64(res.Rounds)
			correct[trial] = res.Suspect == attacker
		})
		var rs stats.Sample
		hits, total := 0, 0
		for i := range valid {
			if !valid[i] {
				continue
			}
			total++
			rs.Add(rounds[i])
			if correct[i] {
				hits++
			}
		}
		log2 := 0
		for v := n; v > 1; v >>= 1 {
			log2++
		}
		t.AddRow(
			d(int64(n)), f(rs.Mean()), d(int64(log2)),
			f(float64(hits)/float64(max(total, 1))),
		)
	}
	return t, nil
}
