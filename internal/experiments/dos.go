package experiments

import (
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// DoS reproduces the Section III-D claim that a persistent polluter can be
// localized and excluded in O(log N) rounds: for each network size it runs
// the group-testing localization and reports the rounds used and the
// success rate, against the ceil(log2 N) reference.
func DoS(o Options) (*Table, error) {
	t := &Table{
		ID:      "dos",
		Title:   "DoS polluter localization in O(log N) rounds (Sec. III-D)",
		Columns: []string{"nodes", "rounds used", "log2(N)", "localized correctly"},
		Notes: []string{
			"probe rounds rebuild non-adaptive trees so every covered node aggregates",
		},
	}
	sizes := o.sizes()
	s := o.sweep("dos", len(sizes), 5)
	rounds := harness.NewAcc(s)
	correct := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		// Probe rounds use their instance one at a time, so all of a
		// trial's probes share one arena slot.
		factory := func(disabled []bool, seed uint64) (*core.Instance, error) {
			cfg := o.coreConfig()
			cfg.Tree.Adaptive = false
			cfg.Disabled = disabled
			return arena.Core("dos", net, cfg, seed)
		}
		// A well-connected attacker, as a compromised aggregator near
		// traffic would be.
		var attacker topology.NodeID
		for i := 1; i < net.N(); i++ {
			if net.Degree(topology.NodeID(i)) >= 8 {
				attacker = topology.NodeID(i)
				break
			}
		}
		if attacker == 0 {
			return nil // no node dense enough to attack: skip the trial
		}
		res, err := attack.LocalizePolluter(net.N(), factory, attacker, 5000, tr.Rng.Uint64())
		if err != nil {
			return err
		}
		rounds.Add(tr, float64(res.Rounds))
		correct.AddBool(tr, res.Suspect == attacker)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		log2 := 0
		for v := n; v > 1; v >>= 1 {
			log2++
		}
		t.AddRow(
			d(int64(n)), f(rounds.Point(pi).Mean()), d(int64(log2)),
			f(correct.Point(pi).Mean()),
		)
	}
	return t, nil
}
