package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/tree"
	"github.com/ipda-sim/ipda/internal/world"
)

// KAblation sweeps the aggregator-budget parameter k of Section III-B
// (the paper fixes k = 4): larger k means more aggregators, hence better
// coverage but more traffic. The table shows the trade-off the paper's
// "value k balances the coverage of the aggregators and communication
// overhead" sentence describes.
func KAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "kablation",
		Title: "Aggregator budget k: coverage vs traffic (Sec. III-B ablation)",
		Columns: []string{
			"k", "aggregator frac", "covered both", "participate l=2", "round bytes",
		},
		Notes: []string{"N=400 deployments; paper recommends k=4"},
	}
	ks := []int{2, 4, 6, 8, 12}
	s := o.sweep("kablation", len(ks), 10)
	aggFrac := harness.NewAcc(s)
	covered := harness.NewAcc(s)
	part := harness.NewAcc(s)
	bytes := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		net, err := deployment(tr, 400, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		cfg := o.coreConfig()
		cfg.Tree.K = ks[tr.Point]
		in, err := world.FromTrial(tr).Core("kablation", net, cfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		res, err := in.RunCount()
		if err != nil {
			return err
		}
		aggs := len(in.Trees.Aggregators(tree.RoleRed)) + len(in.Trees.Aggregators(tree.RoleBlue))
		aggFrac.Add(tr, float64(aggs)/float64(net.N()-1))
		covered.Add(tr, metrics.CoverageFraction(in.Trees, net.N()))
		part.Add(tr, metrics.ParticipationFraction(in.Trees, 2, net.N()))
		bytes.Add(tr, float64(res.Outcomes[0].Bytes))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, k := range ks {
		t.AddRow(
			d(int64(k)), f(aggFrac.Point(pi).Mean()), f(covered.Point(pi).Mean()),
			f(part.Point(pi).Mean()), f(bytes.Point(pi).Mean()),
		)
	}
	return t, nil
}

// AdaptiveAblation compares the paper's adaptive role rule (Equation 1)
// against the fixed rule (Equation 2): the adaptive rule should cut
// aggregator count and traffic at equal coverage in dense networks. The
// sweep axis is the flattened (size × policy) grid.
func AdaptiveAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "adaptive",
		Title: "Adaptive (Eq.1) vs fixed (Eq.2) role selection",
		Columns: []string{
			"nodes", "policy", "aggregator frac", "covered both", "round bytes",
		},
	}
	sizes := o.sizes()
	policies := []bool{true, false}
	s := o.sweep("adaptive", len(sizes)*len(policies), 10)
	aggFrac := harness.NewAcc(s)
	covered := harness.NewAcc(s)
	bytes := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		net, err := deployment(tr, sizes[tr.Point/len(policies)], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		cfg := o.coreConfig()
		cfg.Tree.Adaptive = policies[tr.Point%len(policies)]
		in, err := world.FromTrial(tr).Core("adaptive", net, cfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		res, err := in.RunCount()
		if err != nil {
			return err
		}
		aggs := len(in.Trees.Aggregators(tree.RoleRed)) + len(in.Trees.Aggregators(tree.RoleBlue))
		aggFrac.Add(tr, float64(aggs)/float64(net.N()-1))
		covered.Add(tr, metrics.CoverageFraction(in.Trees, net.N()))
		bytes.Add(tr, float64(res.Outcomes[0].Bytes))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi := 0; pi < len(sizes)*len(policies); pi++ {
		policy := "adaptive"
		if !policies[pi%len(policies)] {
			policy = "fixed"
		}
		t.AddRow(
			d(int64(sizes[pi/len(policies)])), policy,
			f(aggFrac.Point(pi).Mean()), f(covered.Point(pi).Mean()), f(bytes.Point(pi).Mean()),
		)
	}
	return t, nil
}
