package experiments

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/tree"
)

// KAblation sweeps the aggregator-budget parameter k of Section III-B
// (the paper fixes k = 4): larger k means more aggregators, hence better
// coverage but more traffic. The table shows the trade-off the paper's
// "value k balances the coverage of the aggregators and communication
// overhead" sentence describes.
func KAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "kablation",
		Title: "Aggregator budget k: coverage vs traffic (Sec. III-B ablation)",
		Columns: []string{
			"k", "aggregator frac", "covered both", "participate l=2", "round bytes",
		},
		Notes: []string{"N=400 deployments; paper recommends k=4"},
	}
	trials := o.trials(10)
	for ki, k := range []int{2, 4, 6, 8, 12} {
		type out struct {
			aggFrac, covered, part, bytes float64
			ok                            bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(ki)*809, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(400, r.Split(1))
			if err != nil {
				return
			}
			cfg := core.DefaultConfig()
			cfg.Tree.K = k
			in, err := core.New(net, cfg, r.Split(2).Uint64())
			if err != nil {
				return
			}
			res, err := in.RunCount()
			if err != nil {
				return
			}
			aggs := len(in.Trees.Aggregators(tree.RoleRed)) + len(in.Trees.Aggregators(tree.RoleBlue))
			outs[trial] = out{
				aggFrac: float64(aggs) / float64(net.N()-1),
				covered: metrics.CoverageFraction(in.Trees, net.N()),
				part:    metrics.ParticipationFraction(in.Trees, 2, net.N()),
				bytes:   float64(res.Outcomes[0].Bytes),
				ok:      true,
			}
		})
		var aggFrac, covered, part, bytes stats.Sample
		for _, out := range outs {
			if !out.ok {
				continue
			}
			aggFrac.Add(out.aggFrac)
			covered.Add(out.covered)
			part.Add(out.part)
			bytes.Add(out.bytes)
		}
		t.AddRow(
			d(int64(k)), f(aggFrac.Mean()), f(covered.Mean()), f(part.Mean()), f(bytes.Mean()),
		)
	}
	return t, nil
}

// AdaptiveAblation compares the paper's adaptive role rule (Equation 1)
// against the fixed rule (Equation 2): the adaptive rule should cut
// aggregator count and traffic at equal coverage in dense networks.
func AdaptiveAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "adaptive",
		Title: "Adaptive (Eq.1) vs fixed (Eq.2) role selection",
		Columns: []string{
			"nodes", "policy", "aggregator frac", "covered both", "round bytes",
		},
	}
	trials := o.trials(10)
	for si, n := range o.sizes() {
		for pi, adaptive := range []bool{true, false} {
			type out struct {
				aggFrac, covered, bytes float64
				ok                      bool
			}
			outs := make([]out, trials)
			forEachTrial(Options{Seed: o.Seed + uint64(si)*907 + uint64(pi), Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
				net, err := deployment(n, r.Split(1))
				if err != nil {
					return
				}
				cfg := core.DefaultConfig()
				cfg.Tree.Adaptive = adaptive
				in, err := core.New(net, cfg, r.Split(2).Uint64())
				if err != nil {
					return
				}
				res, err := in.RunCount()
				if err != nil {
					return
				}
				aggs := len(in.Trees.Aggregators(tree.RoleRed)) + len(in.Trees.Aggregators(tree.RoleBlue))
				outs[trial] = out{
					aggFrac: float64(aggs) / float64(net.N()-1),
					covered: metrics.CoverageFraction(in.Trees, net.N()),
					bytes:   float64(res.Outcomes[0].Bytes),
					ok:      true,
				}
			})
			var aggFrac, covered, bytes stats.Sample
			for _, out := range outs {
				if !out.ok {
					continue
				}
				aggFrac.Add(out.aggFrac)
				covered.Add(out.covered)
				bytes.Add(out.bytes)
			}
			policy := "adaptive"
			if !adaptive {
				policy = "fixed"
			}
			t.AddRow(
				d(int64(n)), policy, f(aggFrac.Mean()), f(covered.Mean()), f(bytes.Mean()),
			)
		}
	}
	return t, nil
}
