package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/privacy"
)

// Indistinguishability runs the two-world privacy game (the framework the
// reproduction's nominal title names) across p_x, comparing full-ring and
// bounded slicing for l ∈ {2, 3}, against the analytic full-ring optimum.
// Each (p_x, variant) cell is one sweep point whose single trial plays
// the game cfg.Trials times, so the three variants of a p_x value run
// concurrently.
func Indistinguishability(o Options) (*Table, error) {
	t := &Table{
		ID:    "indist",
		Title: "Indistinguishability advantage vs p_x (privacy framework)",
		Columns: []string{
			"p_x",
			"ring l=2", "theory l=2",
			"ring l=3", "theory l=3",
			"bounded l=2 (scale leak)",
		},
		Notes: []string{
			"ring = full-ring shares; advantage only from complete reconstructions",
			"bounded = SplitBounded spread 4 with candidates 1 vs 100000: magnitude leaks",
		},
	}
	pxs := []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	variants := []struct {
		l      int
		spread int64
	}{
		{l: 2},
		{l: 3},
		{l: 2, spread: 4},
	}
	trials := o.trials(20000)
	s := o.fixedSweep("indist", len(pxs)*len(variants), 1)
	advantage := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		v := variants[tr.Point%len(variants)]
		cfg := privacy.Config{
			Px:     pxs[tr.Point/len(variants)],
			V0:     1,
			V1:     100000,
			Trials: trials,
			L:      v.l,
			Spread: v.spread,
		}
		res, err := privacy.RunGame(cfg, tr.Rng)
		if err != nil {
			return err
		}
		advantage.Add(tr, res.Advantage)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, px := range pxs {
		at := func(variant int) float64 {
			return clampAdv(advantage.Point(pi*len(variants) + variant).Mean())
		}
		t.AddRow(
			f(px),
			f(at(0)), f(privacy.TheoreticalLeafAdvantage(px, 2)),
			f(at(1)), f(privacy.TheoreticalLeafAdvantage(px, 3)),
			f(at(2)),
		)
	}
	return t, nil
}

// clampAdv clips small negative sampling noise to zero for readability.
func clampAdv(a float64) float64 {
	if a < 0 {
		return 0
	}
	return a
}
