package experiments

import (
	"github.com/ipda-sim/ipda/internal/privacy"
	"github.com/ipda-sim/ipda/internal/rng"
)

// Indistinguishability runs the two-world privacy game (the framework the
// reproduction's nominal title names) across p_x, comparing full-ring and
// bounded slicing for l ∈ {2, 3}, against the analytic full-ring optimum.
func Indistinguishability(o Options) (*Table, error) {
	t := &Table{
		ID:    "indist",
		Title: "Indistinguishability advantage vs p_x (privacy framework)",
		Columns: []string{
			"p_x",
			"ring l=2", "theory l=2",
			"ring l=3", "theory l=3",
			"bounded l=2 (scale leak)",
		},
		Notes: []string{
			"ring = full-ring shares; advantage only from complete reconstructions",
			"bounded = SplitBounded spread 4 with candidates 1 vs 100000: magnitude leaks",
		},
	}
	trials := o.trials(20000)
	root := rng.New(o.Seed)
	for i, px := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		base := privacy.Config{Px: px, V0: 1, V1: 100000, Trials: trials}

		ring2 := base
		ring2.L = 2
		r2, err := privacy.RunGame(ring2, root.Split(uint64(i)*4+1))
		if err != nil {
			return nil, err
		}
		ring3 := base
		ring3.L = 3
		r3, err := privacy.RunGame(ring3, root.Split(uint64(i)*4+2))
		if err != nil {
			return nil, err
		}
		bounded2 := base
		bounded2.L = 2
		bounded2.Spread = 4
		b2, err := privacy.RunGame(bounded2, root.Split(uint64(i)*4+3))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			f(px),
			f(clampAdv(r2.Advantage)), f(privacy.TheoreticalLeafAdvantage(px, 2)),
			f(clampAdv(r3.Advantage)), f(privacy.TheoreticalLeafAdvantage(px, 3)),
			f(clampAdv(b2.Advantage)),
		)
	}
	return t, nil
}

// clampAdv clips small negative sampling noise to zero for readability.
func clampAdv(a float64) float64 {
	if a < 0 {
		return 0
	}
	return a
}
