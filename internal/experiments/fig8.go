package experiments

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/tag"
)

// Fig8 reproduces Figure 8: (a) fraction of nodes covered by both trees,
// (b) fraction participating in the aggregation (enough neighbors to send
// l slices), and (c) COUNT accuracy of iPDA (l=1, l=2) vs TAG, all as a
// function of network size.
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig8",
		Title: "Coverage, participation and accuracy (Figure 8 a/b/c)",
		Columns: []string{
			"nodes",
			"covered both",
			"participate l=1", "participate l=2",
			"accuracy l=1", "accuracy l=2", "accuracy TAG",
		},
		Notes: []string{
			"accuracy = collected COUNT / true node count (Sec. IV-B.3)",
		},
	}
	trials := o.trials(10)
	for si, n := range o.sizes() {
		type out struct {
			covered, part1, part2 float64
			acc1, acc2, accTag    float64
			ok                    bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*307, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			truth := float64(n)
			var res out
			for _, l := range []int{1, 2} {
				cfg := core.DefaultConfig()
				cfg.Slices = l
				in, err := core.New(net, cfg, r.Split(uint64(l)).Uint64())
				if err != nil {
					return
				}
				q, err := in.RunCount()
				if err != nil {
					return
				}
				acc := metrics.Accuracy(float64(q.Outcomes[0].Red), truth)
				if l == 1 {
					res.covered = metrics.CoverageFraction(in.Trees, net.N())
					res.part1 = metrics.ParticipationFraction(in.Trees, 1, net.N())
					res.acc1 = acc
				} else {
					res.part2 = metrics.ParticipationFraction(in.Trees, 2, net.N())
					res.acc2 = acc
				}
			}
			tg, err := tag.New(net, tag.DefaultConfig(), r.Split(7).Uint64())
			if err != nil {
				return
			}
			q, err := tg.RunCount()
			if err != nil {
				return
			}
			res.accTag = metrics.Accuracy(float64(q.Outcomes[0].Sum), truth)
			res.ok = true
			outs[trial] = res
		})
		var covered, part1, part2, acc1, acc2, accTag stats.Sample
		for _, out := range outs {
			if !out.ok {
				continue
			}
			covered.Add(out.covered)
			part1.Add(out.part1)
			part2.Add(out.part2)
			acc1.Add(out.acc1)
			acc2.Add(out.acc2)
			accTag.Add(out.accTag)
		}
		t.AddRow(
			d(int64(n)),
			f(covered.Mean()),
			f(part1.Mean()), f(part2.Mean()),
			f(acc1.Mean()), f(acc2.Mean()), f(accTag.Mean()),
		)
	}
	return t, nil
}
