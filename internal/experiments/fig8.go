package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/world"
)

// Fig8 reproduces Figure 8: (a) fraction of nodes covered by both trees,
// (b) fraction participating in the aggregation (enough neighbors to send
// l slices), and (c) COUNT accuracy of iPDA (l=1, l=2) vs TAG, all as a
// function of network size.
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig8",
		Title: "Coverage, participation and accuracy (Figure 8 a/b/c)",
		Columns: []string{
			"nodes",
			"covered both",
			"participate l=1", "participate l=2",
			"accuracy l=1", "accuracy l=2", "accuracy TAG",
		},
		Notes: []string{
			"accuracy = collected COUNT / true node count (Sec. IV-B.3)",
		},
	}
	sizes := o.sizes()
	s := o.sweep("fig8", len(sizes), 10)
	covered := harness.NewAcc(s)
	part1 := harness.NewAcc(s)
	part2 := harness.NewAcc(s)
	acc1 := harness.NewAcc(s)
	acc2 := harness.NewAcc(s)
	accTag := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		n := sizes[tr.Point]
		net, err := deployment(tr, n, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		truth := float64(n)
		for _, l := range []int{1, 2} {
			cfg := o.coreConfig()
			cfg.Slices = l
			// One slot serves both l values: each instance's metrics are
			// read before the next l resets the slot.
			in, err := arena.Core("fig8", net, cfg, tr.Rng.Split(uint64(l)).Uint64())
			if err != nil {
				return err
			}
			q, err := in.RunCount()
			if err != nil {
				return err
			}
			acc := metrics.Accuracy(float64(q.Outcomes[0].Red), truth)
			if l == 1 {
				part1.Add(tr, metrics.ParticipationFraction(in.Trees, 1, net.N()))
				acc1.Add(tr, acc)
			} else {
				// Coverage and l=2 participation come from the same
				// instance, so participation <= coverage holds exactly
				// (CanSlice implies CoveredBoth).
				covered.Add(tr, metrics.CoverageFraction(in.Trees, net.N()))
				part2.Add(tr, metrics.ParticipationFraction(in.Trees, 2, net.N()))
				acc2.Add(tr, acc)
			}
		}
		tg, err := arena.Tag("fig8", net, o.tagConfig(), tr.Rng.Split(7).Uint64())
		if err != nil {
			return err
		}
		q, err := tg.RunCount()
		if err != nil {
			return err
		}
		accTag.Add(tr, metrics.Accuracy(float64(q.Outcomes[0].Sum), truth))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		t.AddRow(
			d(int64(n)),
			f(covered.Point(pi).Mean()),
			f(part1.Point(pi).Mean()), f(part2.Point(pi).Mean()),
			f(acc1.Point(pi).Mean()), f(acc2.Point(pi).Mean()), f(accTag.Point(pi).Mean()),
		)
	}
	return t, nil
}
