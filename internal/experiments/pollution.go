package experiments

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/tree"
)

// Pollution reproduces the integrity claim of Sections III-D and IV-A.4:
// a single compromised aggregator shifting the intermediate result is
// detected (round rejected), while attack-free rounds are accepted, for
// deltas from subtle to blatant.
func Pollution(o Options) (*Table, error) {
	t := &Table{
		ID:    "pollution",
		Title: "Pollution-attack detection (Sec. III-D / IV-A.4)",
		Columns: []string{
			"attack delta", "detected", "false reject (no attack)", "trials",
		},
		Notes: []string{
			"COUNT aggregation, N=400, Th=5; attacker is a random aggregator",
		},
	}
	trials := o.trials(20)
	deltas := []int64{0, 6, 10, 50, 1000}
	for di, delta := range deltas {
		detected := make([]bool, trials)
		valid := make([]bool, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(di)*503, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(400, r.Split(1))
			if err != nil {
				return
			}
			in, err := core.New(net, core.DefaultConfig(), r.Split(2).Uint64())
			if err != nil {
				return
			}
			if delta != 0 {
				aggs := append(in.Trees.Aggregators(tree.RoleRed), in.Trees.Aggregators(tree.RoleBlue)...)
				if len(aggs) == 0 {
					return
				}
				in.Pollute(aggs[r.Intn(len(aggs))], delta)
			}
			res, err := in.RunCount()
			if err != nil {
				return
			}
			valid[trial] = true
			detected[trial] = !res.Accepted
		})
		det, n := 0, 0
		for i := range detected {
			if !valid[i] {
				continue
			}
			n++
			if detected[i] {
				det++
			}
		}
		if delta == 0 {
			t.AddRow("none", "-", f(float64(det)/float64(max(n, 1))), d(int64(n)))
		} else {
			t.AddRow(d(delta), f(float64(det)/float64(max(n, 1))), "-", d(int64(n)))
		}
	}
	return t, nil
}

// ThSweep measures the acceptance-threshold trade-off the paper's Section
// IV-B.1 uses to justify Th = 5: the false-reject rate without attack and
// the miss rate under a small (delta = 10) pollution, across thresholds.
func ThSweep(o Options) (*Table, error) {
	t := &Table{
		ID:      "th",
		Title:   "Acceptance threshold Th selection (Sec. IV-B.1)",
		Columns: []string{"Th", "false reject (no attack)", "missed detection (delta=10)"},
		Notes: []string{
			"COUNT aggregation, N=400, congested 0.1 s slicing window (losses occur, as in the paper's ns-2 runs)",
			"small Th rejects lossy-but-honest rounds; large Th misses subtle pollution — Th=5 balances both",
		},
	}
	trials := o.trials(20)
	ths := []int64{0, 2, 5, 10, 20, 50}
	type rates struct{ falseRej, miss float64 }
	results := make([]rates, len(ths))
	for ti, th := range ths {
		fr := make([]int, trials)
		ms := make([]int, trials)
		ok := make([]bool, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(ti)*607, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(400, r.Split(1))
			if err != nil {
				return
			}
			cfg := core.DefaultConfig()
			cfg.Threshold = th
			cfg.SliceWindow = 0.1 // congested: honest losses happen
			// Clean round.
			in, err := core.New(net, cfg, r.Split(2).Uint64())
			if err != nil {
				return
			}
			clean, err := in.RunCount()
			if err != nil {
				return
			}
			// Attacked round on a fresh instance (same topology).
			in2, err := core.New(net, cfg, r.Split(3).Uint64())
			if err != nil {
				return
			}
			aggs := append(in2.Trees.Aggregators(tree.RoleRed), in2.Trees.Aggregators(tree.RoleBlue)...)
			if len(aggs) == 0 {
				return
			}
			in2.Pollute(aggs[r.Intn(len(aggs))], 10)
			dirty, err := in2.RunCount()
			if err != nil {
				return
			}
			ok[trial] = true
			if !clean.Accepted {
				fr[trial] = 1
			}
			if dirty.Accepted {
				ms[trial] = 1
			}
		})
		n, sumFR, sumMS := 0, 0, 0
		for i := range ok {
			if !ok[i] {
				continue
			}
			n++
			sumFR += fr[i]
			sumMS += ms[i]
		}
		results[ti] = rates{
			falseRej: float64(sumFR) / float64(max(n, 1)),
			miss:     float64(sumMS) / float64(max(n, 1)),
		}
	}
	for ti, th := range ths {
		t.AddRow(d(th), f(results[ti].falseRej), f(results[ti].miss))
	}
	return t, nil
}
