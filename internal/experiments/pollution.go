package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/tree"
	"github.com/ipda-sim/ipda/internal/world"
)

// Pollution reproduces the integrity claim of Sections III-D and IV-A.4:
// a single compromised aggregator shifting the intermediate result is
// detected (round rejected), while attack-free rounds are accepted, for
// deltas from subtle to blatant.
func Pollution(o Options) (*Table, error) {
	t := &Table{
		ID:    "pollution",
		Title: "Pollution-attack detection (Sec. III-D / IV-A.4)",
		Columns: []string{
			"attack delta", "detected", "false reject (no attack)", "trials",
		},
		Notes: []string{
			"COUNT aggregation, N=400, Th=5; attacker is a random aggregator",
		},
	}
	deltas := []int64{0, 6, 10, 50, 1000}
	s := o.sweep("pollution", len(deltas), 20)
	detected := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		delta := deltas[tr.Point]
		net, err := deployment(tr, 400, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		in, err := world.FromTrial(tr).Core("pollution", net, o.coreConfig(), tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		if delta != 0 {
			aggs := append(in.Trees.Aggregators(tree.RoleRed), in.Trees.Aggregators(tree.RoleBlue)...)
			if len(aggs) == 0 {
				return nil // no aggregator to compromise: skip the trial
			}
			in.Pollute(aggs[tr.Rng.Intn(len(aggs))], delta)
		}
		res, err := in.RunCount()
		if err != nil {
			return err
		}
		detected.AddBool(tr, !res.Accepted)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, delta := range deltas {
		sm := detected.Point(pi)
		if delta == 0 {
			t.AddRow("none", "-", f(sm.Mean()), d(int64(sm.N())))
		} else {
			t.AddRow(d(delta), f(sm.Mean()), "-", d(int64(sm.N())))
		}
	}
	return t, nil
}

// ThSweep measures the acceptance-threshold trade-off the paper's Section
// IV-B.1 uses to justify Th = 5: the false-reject rate without attack and
// the miss rate under a small (delta = 10) pollution, across thresholds.
func ThSweep(o Options) (*Table, error) {
	t := &Table{
		ID:      "th",
		Title:   "Acceptance threshold Th selection (Sec. IV-B.1)",
		Columns: []string{"Th", "false reject (no attack)", "missed detection (delta=10)"},
		Notes: []string{
			"COUNT aggregation, N=400, congested 0.1 s slicing window (losses occur, as in the paper's ns-2 runs)",
			"small Th rejects lossy-but-honest rounds; large Th misses subtle pollution — Th=5 balances both",
		},
	}
	ths := []int64{0, 2, 5, 10, 20, 50}
	s := o.sweep("th", len(ths), 20)
	falseRej := harness.NewAcc(s)
	miss := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, 400, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		cfg := o.coreConfig()
		cfg.Threshold = ths[tr.Point]
		cfg.SliceWindow = 0.1 // congested: honest losses happen
		// Clean round.
		in, err := arena.Core("th/clean", net, cfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		clean, err := in.RunCount()
		if err != nil {
			return err
		}
		// Attacked round on a fresh instance (same topology).
		in2, err := arena.Core("th/attacked", net, cfg, tr.Rng.Split(3).Uint64())
		if err != nil {
			return err
		}
		aggs := append(in2.Trees.Aggregators(tree.RoleRed), in2.Trees.Aggregators(tree.RoleBlue)...)
		if len(aggs) == 0 {
			return nil // no aggregator to compromise: skip the trial
		}
		in2.Pollute(aggs[tr.Rng.Intn(len(aggs))], 10)
		dirty, err := in2.RunCount()
		if err != nil {
			return err
		}
		falseRej.AddBool(tr, !clean.Accepted)
		miss.AddBool(tr, dirty.Accepted)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, th := range ths {
		t.AddRow(d(th), f(falseRej.Point(pi).Mean()), f(miss.Point(pi).Mean()))
	}
	return t, nil
}
