package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/ipda-sim/ipda/internal/qtrace"
)

// qtraceExperiments are the experiments with trace wiring: together they
// cover the core stack (fig7), fault injection and the TAG baseline
// (churn), the m-tree generalization (mtrees), and hierarchical sharding
// (scale).
var qtraceExperiments = []string{"fig7", "churn", "mtrees", "scale"}

// runWithStore runs one experiment with an attached trace store and
// returns the table plus the store's JSONL export.
func runWithStore(t *testing.T, name string, o Options) (*Table, string) {
	t.Helper()
	store := qtrace.NewStore(0)
	o.QTrace = store
	tb, err := Run(name, o)
	if err != nil {
		t.Fatalf("%s %+v: %v", name, o, err)
	}
	var buf bytes.Buffer
	if err := store.WriteJSONL(&buf); err != nil {
		t.Fatalf("%s: WriteJSONL: %v", name, err)
	}
	return tb, buf.String()
}

// TestQtraceDoesNotPerturbRun is the tracing layer's read-only contract:
// attaching a trace store must leave every experiment table structurally
// identical (reflect.DeepEqual) to the untraced run. Tracing only records
// protocol state — it never schedules events or draws randomness.
func TestQtraceDoesNotPerturbRun(t *testing.T) {
	for _, name := range qtraceExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			o := smallOptions(name, 2, 2, false)
			plain, err := Run(name, o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			traced, jsonl := runWithStore(t, name, o)
			if !reflect.DeepEqual(plain, traced) {
				var pb, tb bytes.Buffer
				plain.Fprint(&pb)
				traced.Fprint(&tb)
				t.Errorf("table differs with tracing attached:\n--- untraced ---\n%s--- traced ---\n%s", pb.String(), tb.String())
			}
			if strings.Count(jsonl, "\n") < 2 {
				t.Errorf("trace export suspiciously empty:\n%s", jsonl)
			}
		})
	}
}

// TestQtraceByteIdenticalAcrossWorkers pins the export's determinism
// guarantee at the trace level: the JSONL trace itself — not just the
// tables — must be byte-identical whether trials run on one worker or
// race across eight, because trace bundles are keyed by (sweep, point,
// trial) and the export sorts by key.
func TestQtraceByteIdenticalAcrossWorkers(t *testing.T) {
	for _, name := range qtraceExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, seq := runWithStore(t, name, smallOptions(name, 1, 1, false))
			_, par := runWithStore(t, name, smallOptions(name, 8, 1, false))
			if seq != par {
				t.Errorf("trace differs between Workers=1 and Workers=8 (%d vs %d bytes)", len(seq), len(par))
			}
		})
	}
}

// TestQtraceByteIdenticalAcrossShards extends the guarantee to
// intra-trial sharding: per-region tracer slots are keyed by region
// index, never by shard worker, so Shards is execution-only for the
// trace too.
func TestQtraceByteIdenticalAcrossShards(t *testing.T) {
	base := ""
	for _, shards := range []int{1, 2, 4} {
		_, got := runWithStore(t, "scale", smallOptions("scale", 2, shards, false))
		if shards == 1 {
			base = got
			if strings.Count(base, "\n") < 2 {
				t.Fatalf("scale trace suspiciously empty:\n%s", base)
			}
			continue
		}
		if got != base {
			t.Errorf("trace differs between Shards=1 and Shards=%d (%d vs %d bytes)", shards, len(base), len(got))
		}
	}
}
