package experiments

import (
	"math"

	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// fig5Network mirrors the paper's Figure 5 scenario: 1000 nodes on a
// square area sized so the average degree lands on the target
// (degree = N·πr²/side² => side = r·sqrt(N·π/degree)).
func fig5Network(avgDegree float64, r *rng.Stream) (*topology.Network, error) {
	const nodes, radius = 1000, 50.0
	side := radius * math.Sqrt(float64(nodes)*math.Pi/avgDegree)
	return topology.Random(topology.Config{Nodes: nodes, FieldSide: side, Range: radius}, r)
}

// Fig5 reproduces Figure 5: average P_disclose over the network as a
// function of the per-link compromise probability p_x, for average degrees
// 7 and 17 and l ∈ {2, 3}. Analytic curves follow Equation (11); the
// empirical column replays the eavesdropper over the deployed protocol.
func Fig5(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "Capacity of privacy-preservation: P_disclose vs p_x (Figure 5)",
		Columns: []string{
			"p_x",
			"deg7 l=2", "deg17 l=2", "deg7 l=3", "deg17 l=3",
			"empirical deg17 l=2",
		},
		Notes: []string{
			"analytic columns: Equation (11) averaged over 1000-node deployments",
			"empirical column: eavesdropper replay over the full protocol (mean of trials)",
		},
	}
	pxs := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	root := rng.New(o.Seed).SplitString("fig5/deployments")
	sparse, err := fig5Network(7, root.Split(1))
	if err != nil {
		return nil, err
	}
	dense, err := fig5Network(17, root.Split(2))
	if err != nil {
		return nil, err
	}

	// Empirical disclosure rates: average several protocol replays per px
	// on moderately sized networks (the slicing structure, not the exact
	// size, determines the rate).
	s := o.sweep("fig5", len(pxs), 6)
	empirical := harness.NewAcc(s)
	err = s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := arena.Deploy(topology.Config{Nodes: 400, FieldSide: 340, Range: 50}, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		in, err := arena.Core("fig5", net, o.coreConfig(), tr.Rng.Uint64())
		if err != nil {
			return err
		}
		eav := attack.NewEavesdropper(pxs[tr.Point], tr.Rng.Split(2))
		eav.Attach(in)
		if _, err := in.RunCount(); err != nil {
			return err
		}
		empirical.Add(tr, eav.DiscloseRate(in.Participants()))
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, px := range pxs {
		t.AddRow(
			f(px),
			f(analysis.PDiscloseNetwork(sparse, px, 2)),
			f(analysis.PDiscloseNetwork(dense, px, 2)),
			f(analysis.PDiscloseNetwork(sparse, px, 3)),
			f(analysis.PDiscloseNetwork(dense, px, 3)),
			f(empirical.Point(pi).Mean()),
		)
	}
	return t, nil
}
