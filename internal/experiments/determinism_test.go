package experiments

import (
	"bytes"
	"testing"
)

// TestEveryExperimentDeterministicAcrossWorkers is the cross-cutting
// guarantee the harness migration buys: for every registered experiment,
// equal Options produce byte-identical tables whether trials run on one
// worker or race across eight. Sizes and trials are kept small; the point
// is scheduling-independence, not statistical power.
func TestEveryExperimentDeterministicAcrossWorkers(t *testing.T) {
	render := func(name string, workers int) string {
		o := Options{Sizes: []int{200, 300}, Trials: 2, Seed: 99, Workers: workers}
		if name == "indist" {
			o.Trials = 2000
		}
		tb, err := Run(name, o)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		return buf.String()
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seq := render(name, 1)
			par := render(name, 8)
			if seq != par {
				t.Errorf("table differs between Workers=1 and Workers=8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", seq, par)
			}
		})
	}
}
