package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
)

// renderOpts runs one experiment under explicit Options and renders its
// table (text + CSV) for byte-level comparison.
func renderOpts(t *testing.T, name string, o Options) string {
	t.Helper()
	tb, err := Run(name, o)
	if err != nil {
		t.Fatalf("%s %+v: %v", name, o, err)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("%s %+v: %v", name, o, err)
	}
	return buf.String()
}

// smallOptions are the shared shape of the determinism tests: sizes and
// trials kept small; the point is scheduling- and reuse-independence, not
// statistical power.
func smallOptions(name string, workers, shards int, fresh bool) Options {
	o := Options{Sizes: []int{200, 300}, Trials: 2, Seed: 99, Workers: workers, Shards: shards, FreshWorlds: fresh}
	if name == "indist" {
		o.Trials = 2000
	}
	if name == "scale" {
		// Sizes whose default partitions have 2 and 4 cluster regions, so
		// intra-trial sharding actually has work to distribute.
		o.Sizes = []int{600, 900}
	}
	return o
}

// renderTable runs one experiment with the small defaults.
func renderTable(t *testing.T, name string, workers, shards int, fresh bool) string {
	t.Helper()
	return renderOpts(t, name, smallOptions(name, workers, shards, fresh))
}

// TestEveryExperimentDeterministicAcrossWorkers is the cross-cutting
// guarantee the harness migration buys: for every registered experiment,
// equal Options produce byte-identical tables whether trials run on one
// worker or race across eight. Both runs use the default pooled arenas, so
// the check also exercises reuse under worker counts that hand one arena
// trials of different network sizes back to back.
func TestEveryExperimentDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seq := renderTable(t, name, 1, 0, false)
			par := renderTable(t, name, 8, 0, false)
			if seq != par {
				t.Errorf("table differs between Workers=1 and Workers=8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", seq, par)
			}
		})
	}
}

// TestEveryExperimentDeterministicAcrossShards extends the guarantee to
// intra-trial sharding: Options.Shards is execution-only parallelism, so
// every registered experiment — whether it shards or ignores the knob —
// must produce byte-identical tables at Shards=1 and Shards=K, on pooled
// arenas (the default path, where each shard worker gets a sub-arena) and,
// at one K, on fresh worlds.
func TestEveryExperimentDeterministicAcrossShards(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := renderTable(t, name, 2, 1, false)
			for _, shards := range []int{2, 4, 8} {
				got := renderTable(t, name, 2, shards, false)
				if got != base {
					t.Errorf("table differs between Shards=1 and Shards=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
						shards, base, shards, got)
				}
			}
			if got := renderTable(t, name, 2, 4, true); got != base {
				t.Errorf("table differs between pooled Shards=1 and fresh Shards=4:\n--- pooled ---\n%s--- fresh ---\n%s", base, got)
			}
		})
	}
}

// TestEveryExperimentSuiteIndependent pins the tentpole's compatibility
// claim: the cipher suite only changes ciphertext and tag bytes, which no
// experiment result consumes, so SHA-256 compat mode must produce tables
// byte-identical to the AES-CTR default — which is in turn what keeps
// every pre-AES golden valid without re-blessing.
func TestEveryExperimentSuiteIndependent(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			aes := renderTable(t, name, 2, 0, false)
			o := smallOptions(name, 2, 0, false)
			o.Suite = linksec.SuiteSHA256
			sha := renderOpts(t, name, o)
			if aes != sha {
				t.Errorf("table differs between cipher suites:\n--- aes ---\n%s--- sha256 ---\n%s", aes, sha)
			}
		})
	}
}

// TestTDMADeterministic extends the worker- and shard-independence
// guarantees to the slotted MAC. TDMA legitimately changes results versus
// CSMA (it reschedules every transmission), so there is no cross-scheme
// comparison — but equal Options must still give byte-identical tables at
// any worker count and any shard count, and the slot assignment must not
// perturb the pooled-arena contract.
func TestTDMADeterministic(t *testing.T) {
	for _, name := range []string{"fig6", "fig7", "mtrees", "scale"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opt := func(workers, shards int, fresh bool) Options {
				o := smallOptions(name, workers, shards, fresh)
				o.MAC = mac.SchemeTDMA
				return o
			}
			base := renderOpts(t, name, opt(1, 1, false))
			if got := renderOpts(t, name, opt(8, 1, false)); got != base {
				t.Errorf("TDMA table differs between Workers=1 and Workers=8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", base, got)
			}
			for _, shards := range []int{2, 4} {
				if got := renderOpts(t, name, opt(1, shards, false)); got != base {
					t.Errorf("TDMA table differs between Shards=1 and Shards=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
						shards, base, shards, got)
				}
			}
			if got := renderOpts(t, name, opt(1, 1, true)); got != base {
				t.Errorf("TDMA table differs between pooled and fresh worlds:\n--- pooled ---\n%s--- fresh ---\n%s", base, got)
			}
		})
	}
}

// TestEveryExperimentReuseMatchesFresh is the arena contract: resetting a
// worker's pooled world must be indistinguishable from building a fresh one,
// for every registered experiment. The FreshWorlds run constructs every
// deployment and protocol instance from scratch; the pooled run reuses one
// arena per worker across all of its trials. The tables must match
// structurally (reflect.DeepEqual over rows, columns, and notes).
func TestEveryExperimentReuseMatchesFresh(t *testing.T) {
	run := func(name string, fresh bool) *Table {
		o := Options{Sizes: []int{200, 300}, Trials: 2, Seed: 7, Workers: 2, FreshWorlds: fresh}
		if name == "indist" {
			o.Trials = 2000
		}
		tb, err := Run(name, o)
		if err != nil {
			t.Fatalf("%s fresh=%v: %v", name, fresh, err)
		}
		return tb
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pooled := run(name, false)
			fresh := run(name, true)
			if !reflect.DeepEqual(pooled, fresh) {
				var pb, fb bytes.Buffer
				pooled.Fprint(&pb)
				fresh.Fprint(&fb)
				t.Errorf("table differs between pooled arenas and fresh worlds:\n--- pooled ---\n%s--- fresh ---\n%s", pb.String(), fb.String())
			}
		})
	}
}

// TestCoalesceColumnsDeterministicAcrossWorkers pins the coalesced-framing
// option to the same scheduling-independence contract as everything else:
// equal Options with Coalesce set render byte-identical tables on one
// worker and on eight.
func TestCoalesceColumnsDeterministicAcrossWorkers(t *testing.T) {
	one := smallOptions("fig7", 1, 1, false)
	one.Coalesce = true
	eight := smallOptions("fig7", 8, 1, false)
	eight.Coalesce = true
	if a, b := renderOpts(t, "fig7", one), renderOpts(t, "fig7", eight); a != b {
		t.Errorf("fig7 with Coalesce differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", a, b)
	}
}

// TestCoalesceDoesNotPerturbBaseColumns pins the option's isolation
// guarantee: the coalesced runs draw from their own rng splits, so every
// pre-existing cell of fig7 keeps its exact bytes when the extra columns
// ride along.
func TestCoalesceDoesNotPerturbBaseColumns(t *testing.T) {
	plain := smallOptions("fig7", 4, 1, false)
	with := plain
	with.Coalesce = true
	tp, err := Run("fig7", plain)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Run("fig7", with)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Columns) <= len(tp.Columns) {
		t.Fatalf("Coalesce added no columns: %d vs %d", len(tc.Columns), len(tp.Columns))
	}
	if !reflect.DeepEqual(tc.Columns[:len(tp.Columns)], tp.Columns) {
		t.Fatalf("base column headers changed: %v vs %v", tc.Columns[:len(tp.Columns)], tp.Columns)
	}
	if len(tc.Rows) != len(tp.Rows) {
		t.Fatalf("row count changed: %d vs %d", len(tc.Rows), len(tp.Rows))
	}
	for i, row := range tp.Rows {
		if !reflect.DeepEqual(tc.Rows[i][:len(row)], row) {
			t.Errorf("row %d base cells changed: %v vs %v", i, tc.Rows[i][:len(row)], row)
		}
	}
}
