package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// renderTable runs one experiment and renders its table (text + CSV) for
// byte-level comparison. Sizes and trials are kept small; the point of the
// tests below is scheduling- and reuse-independence, not statistical power.
func renderTable(t *testing.T, name string, workers int, fresh bool) string {
	t.Helper()
	o := Options{Sizes: []int{200, 300}, Trials: 2, Seed: 99, Workers: workers, FreshWorlds: fresh}
	if name == "indist" {
		o.Trials = 2000
	}
	tb, err := Run(name, o)
	if err != nil {
		t.Fatalf("%s workers=%d fresh=%v: %v", name, workers, fresh, err)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("%s workers=%d fresh=%v: %v", name, workers, fresh, err)
	}
	return buf.String()
}

// TestEveryExperimentDeterministicAcrossWorkers is the cross-cutting
// guarantee the harness migration buys: for every registered experiment,
// equal Options produce byte-identical tables whether trials run on one
// worker or race across eight. Both runs use the default pooled arenas, so
// the check also exercises reuse under worker counts that hand one arena
// trials of different network sizes back to back.
func TestEveryExperimentDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seq := renderTable(t, name, 1, false)
			par := renderTable(t, name, 8, false)
			if seq != par {
				t.Errorf("table differs between Workers=1 and Workers=8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", seq, par)
			}
		})
	}
}

// TestEveryExperimentReuseMatchesFresh is the arena contract: resetting a
// worker's pooled world must be indistinguishable from building a fresh one,
// for every registered experiment. The FreshWorlds run constructs every
// deployment and protocol instance from scratch; the pooled run reuses one
// arena per worker across all of its trials. The tables must match
// structurally (reflect.DeepEqual over rows, columns, and notes).
func TestEveryExperimentReuseMatchesFresh(t *testing.T) {
	run := func(name string, fresh bool) *Table {
		o := Options{Sizes: []int{200, 300}, Trials: 2, Seed: 7, Workers: 2, FreshWorlds: fresh}
		if name == "indist" {
			o.Trials = 2000
		}
		tb, err := Run(name, o)
		if err != nil {
			t.Fatalf("%s fresh=%v: %v", name, fresh, err)
		}
		return tb
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pooled := run(name, false)
			fresh := run(name, true)
			if !reflect.DeepEqual(pooled, fresh) {
				var pb, fb bytes.Buffer
				pooled.Fprint(&pb)
				fresh.Fprint(&fb)
				t.Errorf("table differs between pooled arenas and fresh worlds:\n--- pooled ---\n%s--- fresh ---\n%s", pb.String(), fb.String())
			}
		})
	}
}
