package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Table1 reproduces Table I: network size vs average node degree on the
// 400 m x 400 m field with 50 m range. The paper's numbers follow the
// boundary-free analytic density N·πr²/A − 1; simulated deployments lose
// edge coverage and come out a few percent lower.
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Network size vs. network density (Table I)",
		Columns: []string{"nodes", "avg degree (sim)", "±95%", "analytic", "paper"},
		Notes: []string{
			"paper values are analytic (no boundary correction): N·πr²/A − 1",
		},
	}
	paper := map[int]float64{200: 8.8, 300: 13.7, 400: 18.6, 500: 23.5, 600: 28.4}
	sizes := o.sizes()
	s := o.sweep("table1", len(sizes), 20)
	degree := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		net, err := deployment(tr, sizes[tr.Point], tr.Rng)
		if err != nil {
			return err
		}
		degree.Add(tr, net.AvgDegree())
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		sm := degree.Point(pi)
		paperCell := "-"
		if v, ok := paper[n]; ok {
			paperCell = f(v)
		}
		t.AddRow(
			d(int64(n)),
			f(sm.Mean()),
			f(sm.CI95()),
			f(topology.ExpectedAvgDegree(topology.PaperConfig(n))-1),
			paperCell,
		)
	}
	return t, nil
}
