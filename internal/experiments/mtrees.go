package experiments

import (
	"github.com/ipda-sim/ipda/internal/mtree"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/topology"
)

// MTrees evaluates the m > 2 generalization Section III-B sketches:
// coverage of all m trees versus network size (the paper's "the network
// must be very dense" warning, quantified) and the majority-voting
// integrity upgrade — a single polluter is outvoted and identified instead
// of merely forcing a rejection.
func MTrees(o Options) (*Table, error) {
	t := &Table{
		ID:    "mtrees",
		Title: "m-tree generalization: coverage vs m, majority voting (Sec. III-B ext.)",
		Columns: []string{
			"nodes",
			"covered m=2", "covered m=3", "covered m=4",
			"outvoted (m=3)", "identified tree",
		},
		Notes: []string{
			"covered = fraction of sensors reached by all m trees",
			"outvoted = polluted m=3 rounds where the honest majority still ACCEPTED the true value",
			"identified = those rounds where the polluted tree was named as the outlier",
		},
	}
	trials := o.trials(5)
	for si, n := range o.sizes() {
		type out struct {
			cov        [3]float64 // m = 2, 3, 4
			outvoted   bool
			identified bool
			voteValid  bool
			ok         bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*1009, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := topology.Random(topology.PaperConfig(n), r.Split(1))
			if err != nil {
				return
			}
			var res out
			for mi, m := range []int{2, 3, 4} {
				cfg := mtree.DefaultConfig(m)
				if m > cfg.K {
					cfg.K = m
				}
				in, err := mtree.New(net, cfg, r.Split(uint64(m)).Uint64())
				if err != nil {
					return
				}
				res.cov[mi] = in.CoverageFraction()
				if m == 3 {
					// Pollute one tree-0 aggregator and check the vote.
					var attacker topology.NodeID = topology.None
					for i := 1; i < net.N(); i++ {
						if in.TreeOf[i] == 0 {
							attacker = topology.NodeID(i)
							break
						}
					}
					if attacker == topology.None {
						continue
					}
					in.Pollute(attacker, 900)
					v, err := in.RunCount()
					if err != nil {
						continue
					}
					res.voteValid = true
					honest := int64(len(in.Participants()))
					res.outvoted = v.Accepted && v.Value <= honest && v.Value >= honest*8/10
					res.identified = len(v.Outliers) == 1 && v.Outliers[0] == 0
				}
			}
			res.ok = true
			outs[trial] = res
		})
		var cov2, cov3, cov4 stats.Sample
		outvoted, identified, votes := 0, 0, 0
		for _, out := range outs {
			if !out.ok {
				continue
			}
			cov2.Add(out.cov[0])
			cov3.Add(out.cov[1])
			cov4.Add(out.cov[2])
			if out.voteValid {
				votes++
				if out.outvoted {
					outvoted++
				}
				if out.identified {
					identified++
				}
			}
		}
		ov, id := "-", "-"
		if votes > 0 {
			ov = f(float64(outvoted) / float64(votes))
			id = f(float64(identified) / float64(votes))
		}
		t.AddRow(
			d(int64(n)),
			f(cov2.Mean()), f(cov3.Mean()), f(cov4.Mean()),
			ov, id,
		)
	}
	return t, nil
}
