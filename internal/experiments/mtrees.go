package experiments

import (
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// MTrees evaluates the m > 2 generalization Section III-B sketches:
// coverage of all m trees versus network size (the paper's "the network
// must be very dense" warning, quantified) and the majority-voting
// integrity upgrade — a single polluter is outvoted and identified instead
// of merely forcing a rejection.
func MTrees(o Options) (*Table, error) {
	t := &Table{
		ID:    "mtrees",
		Title: "m-tree generalization: coverage vs m, majority voting (Sec. III-B ext.)",
		Columns: []string{
			"nodes",
			"covered m=2", "covered m=3", "covered m=4",
			"outvoted (m=3)", "identified tree",
		},
		Notes: []string{
			"covered = fraction of sensors reached by all m trees",
			"outvoted = polluted m=3 rounds where the honest majority still ACCEPTED the true value",
			"identified = those rounds where the polluted tree was named as the outlier",
		},
	}
	sizes := o.sizes()
	s := o.sweep("mtrees", len(sizes), 5)
	cov := [3]*harness.Acc{harness.NewAcc(s), harness.NewAcc(s), harness.NewAcc(s)}
	outvoted := harness.NewAcc(s)
	identified := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		// The three m values run strictly one after another, so they can
		// share a single arena slot.
		for mi, m := range []int{2, 3, 4} {
			cfg := o.mtreeConfig(m)
			if m > cfg.K {
				cfg.K = m
			}
			cfg.QTrace = tr.QTrace.Tracer([...]string{"m2", "m3", "m4"}[mi])
			in, err := arena.MTree("mtrees", net, cfg, tr.Rng.Split(uint64(m)).Uint64())
			if err != nil {
				return err
			}
			cov[mi].Add(tr, in.CoverageFraction())
			if m == 3 {
				// Pollute one tree-0 aggregator and check the vote.
				var attacker topology.NodeID = topology.None
				for i := 1; i < net.N(); i++ {
					if in.TreeOf[i] == 0 {
						attacker = topology.NodeID(i)
						break
					}
				}
				if attacker == topology.None {
					continue // tree 0 reached nobody: skip the vote
				}
				in.Pollute(attacker, 900)
				v, err := in.RunCount()
				if err != nil {
					return err
				}
				honest := int64(len(in.Participants()))
				outvoted.AddBool(tr, v.Accepted && v.Value <= honest && v.Value >= honest*8/10)
				identified.AddBool(tr, len(v.Outliers) == 1 && v.Outliers[0] == 0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		ov, id := "-", "-"
		if votes := outvoted.Point(pi); votes.N() > 0 {
			ov = f(votes.Mean())
			id = f(identified.Point(pi).Mean())
		}
		t.AddRow(
			d(int64(n)),
			f(cov[0].Point(pi).Mean()), f(cov[1].Point(pi).Mean()), f(cov[2].Point(pi).Mean()),
			ov, id,
		)
	}
	return t, nil
}
