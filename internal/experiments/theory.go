package experiments

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// CoverageBound reproduces the Section IV-A.1 analysis: the Equation (10)
// Markov bound and the expected covered fraction against the measured
// coverage of deployed trees (non-adaptive roles, pr = pb = 0.5, matching
// the analysis' assumption of random coloring).
func CoverageBound(o Options) (*Table, error) {
	t := &Table{
		ID:    "coverage",
		Title: "Coverage of aggregation trees: theory vs simulation (Sec. IV-A.1)",
		Columns: []string{
			"nodes", "avg degree",
			"Eq.(10) bound", "expected covered", "measured covered",
		},
		Notes: []string{
			"Eq.(10) can be vacuous (negative) at low density; expected covered = 1 - mean p_i",
			fmt.Sprintf("paper's d-regular example (N=1000, d=10): %s (matches 1 - N·2^{-2d}; Eq.(10) itself is vacuous there)",
				f(analysis.PaperRegularExample(1000, 10))),
		},
	}
	sizes := o.sizes()
	s := o.sweep("coverage", len(sizes), 10)
	degree := harness.NewAcc(s)
	bound := harness.NewAcc(s)
	expected := harness.NewAcc(s)
	measured := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		degrees := make([]int, 0, net.N()-1)
		for i := 1; i < net.N(); i++ {
			degrees = append(degrees, net.Degree(topology.NodeID(i)))
		}
		cfg := o.coreConfig()
		cfg.Tree.Adaptive = false // pr = pb = 0.5, the analysis' model
		in, err := world.FromTrial(tr).Core("coverage", net, cfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		degree.Add(tr, net.AvgDegree())
		bound.Add(tr, analysis.CoverageLowerBound(degrees, 0.5, 0.5))
		expected.Add(tr, analysis.ExpectedFullyCoveredFraction(degrees, 0.5, 0.5))
		measured.Add(tr, metrics.CoverageFraction(in.Trees, net.N()))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		t.AddRow(
			d(int64(n)), f(degree.Point(pi).Mean()),
			f(bound.Point(pi).Mean()), f(expected.Point(pi).Mean()), f(measured.Point(pi).Mean()),
		)
	}
	return t, nil
}

// Overhead reproduces the Section IV-A.2 message analysis (Figure 4): the
// per-node message counts of TAG (2) and iPDA (2l+1) and the resulting
// (2l+1)/2 ratio for l ∈ {1, 2, 3}. The quantities are closed-form; the
// harness still hosts the sweep so the experiment shares the progress and
// cancellation plumbing.
func Overhead(o Options) (*Table, error) {
	t := &Table{
		ID:      "overhead",
		Title:   "Per-node message counts and overhead ratio (Sec. IV-A.2, Figure 4)",
		Columns: []string{"l", "TAG msgs/node", "iPDA msgs/node", "ratio (2l+1)/2"},
	}
	ls := []int{1, 2, 3}
	s := o.fixedSweep("overhead", len(ls), 1)
	tagMsgs := harness.NewAcc(s)
	ipdaMsgs := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		tg, ip := analysis.MessagesPerNode(ls[tr.Point])
		tagMsgs.Add(tr, float64(tg))
		ipdaMsgs.Add(tr, float64(ip))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, l := range ls {
		t.AddRow(
			d(int64(l)),
			d(int64(tagMsgs.Point(pi).Mean())),
			d(int64(ipdaMsgs.Point(pi).Mean())),
			f(analysis.OverheadRatio(l)),
		)
	}
	return t, nil
}
