package experiments

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/topology"
)

// CoverageBound reproduces the Section IV-A.1 analysis: the Equation (10)
// Markov bound and the expected covered fraction against the measured
// coverage of deployed trees (non-adaptive roles, pr = pb = 0.5, matching
// the analysis' assumption of random coloring).
func CoverageBound(o Options) (*Table, error) {
	t := &Table{
		ID:    "coverage",
		Title: "Coverage of aggregation trees: theory vs simulation (Sec. IV-A.1)",
		Columns: []string{
			"nodes", "avg degree",
			"Eq.(10) bound", "expected covered", "measured covered",
		},
		Notes: []string{
			"Eq.(10) can be vacuous (negative) at low density; expected covered = 1 - mean p_i",
			fmt.Sprintf("paper's d-regular example (N=1000, d=10): %s (matches 1 - N·2^{-2d}; Eq.(10) itself is vacuous there)",
				f(analysis.PaperRegularExample(1000, 10))),
		},
	}
	trials := o.trials(10)
	for si, n := range o.sizes() {
		type out struct {
			degree, bound, expected, measured float64
			ok                                bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*401, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			degrees := make([]int, 0, net.N()-1)
			for i := 1; i < net.N(); i++ {
				degrees = append(degrees, net.Degree(topology.NodeID(i)))
			}
			cfg := core.DefaultConfig()
			cfg.Tree.Adaptive = false // pr = pb = 0.5, the analysis' model
			in, err := core.New(net, cfg, r.Split(2).Uint64())
			if err != nil {
				return
			}
			outs[trial] = out{
				degree:   net.AvgDegree(),
				bound:    analysis.CoverageLowerBound(degrees, 0.5, 0.5),
				expected: analysis.ExpectedFullyCoveredFraction(degrees, 0.5, 0.5),
				measured: metrics.CoverageFraction(in.Trees, net.N()),
				ok:       true,
			}
		})
		var degree, bound, expected, measured stats.Sample
		for _, o := range outs {
			if !o.ok {
				continue
			}
			degree.Add(o.degree)
			bound.Add(o.bound)
			expected.Add(o.expected)
			measured.Add(o.measured)
		}
		t.AddRow(
			d(int64(n)), f(degree.Mean()),
			f(bound.Mean()), f(expected.Mean()), f(measured.Mean()),
		)
	}
	return t, nil
}

// Overhead reproduces the Section IV-A.2 message analysis (Figure 4): the
// per-node message counts of TAG (2) and iPDA (2l+1) and the resulting
// (2l+1)/2 ratio for l ∈ {1, 2, 3}.
func Overhead(o Options) (*Table, error) {
	t := &Table{
		ID:      "overhead",
		Title:   "Per-node message counts and overhead ratio (Sec. IV-A.2, Figure 4)",
		Columns: []string{"l", "TAG msgs/node", "iPDA msgs/node", "ratio (2l+1)/2"},
	}
	for _, l := range []int{1, 2, 3} {
		tagMsgs, ipdaMsgs := analysis.MessagesPerNode(l)
		t.AddRow(d(int64(l)), d(int64(tagMsgs)), d(int64(ipdaMsgs)), f(analysis.OverheadRatio(l)))
	}
	return t, nil
}
