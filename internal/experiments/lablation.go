package experiments

import (
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
)

// LAblation sweeps the slice count l — the paper's central tuning knob
// ("we recommend l = 2 in iPDA") — and reports the three quantities it
// trades off in one table: empirical disclosure under a p_x = 0.1
// eavesdropper, per-round traffic, and participation (larger l needs more
// aggregator neighbors, Sec. IV-B.3 factor (b)).
func LAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "lablation",
		Title: "Slice count l: privacy vs overhead vs participation (Sec. IV-A.3)",
		Columns: []string{
			"l", "disclosed (px=0.1)", "round bytes", "participate", "msgs/node (2l+1)",
		},
		Notes: []string{
			"N=400 deployments; the paper recommends l=2",
		},
	}
	trials := o.trials(8)
	for li, l := range []int{1, 2, 3, 4} {
		type out struct {
			disclosed, bytes, part float64
			ok                     bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(li)*1201, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(400, r.Split(1))
			if err != nil {
				return
			}
			cfg := core.DefaultConfig()
			cfg.Slices = l
			in, err := core.New(net, cfg, r.Split(2).Uint64())
			if err != nil {
				return
			}
			eav := attack.NewEavesdropper(0.1, r.Split(3))
			eav.Attach(in)
			res, err := in.RunCount()
			if err != nil {
				return
			}
			outs[trial] = out{
				disclosed: eav.DiscloseRate(in.Participants()),
				bytes:     float64(res.Outcomes[0].Bytes),
				part:      metrics.ParticipationFraction(in.Trees, l, net.N()),
				ok:        true,
			}
		})
		var disclosed, bytes, part stats.Sample
		for _, out := range outs {
			if !out.ok {
				continue
			}
			disclosed.Add(out.disclosed)
			bytes.Add(out.bytes)
			part.Add(out.part)
		}
		t.AddRow(
			d(int64(l)),
			f(disclosed.Mean()),
			f(bytes.Mean()),
			f(part.Mean()),
			d(int64(2*l+1)),
		)
	}
	return t, nil
}
