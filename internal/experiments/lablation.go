package experiments

import (
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/world"
)

// LAblation sweeps the slice count l — the paper's central tuning knob
// ("we recommend l = 2 in iPDA") — and reports the three quantities it
// trades off in one table: empirical disclosure under a p_x = 0.1
// eavesdropper, per-round traffic, and participation (larger l needs more
// aggregator neighbors, Sec. IV-B.3 factor (b)).
func LAblation(o Options) (*Table, error) {
	t := &Table{
		ID:    "lablation",
		Title: "Slice count l: privacy vs overhead vs participation (Sec. IV-A.3)",
		Columns: []string{
			"l", "disclosed (px=0.1)", "round bytes", "participate", "msgs/node (2l+1)",
		},
		Notes: []string{
			"N=400 deployments; the paper recommends l=2",
		},
	}
	ls := []int{1, 2, 3, 4}
	s := o.sweep("lablation", len(ls), 8)
	disclosed := harness.NewAcc(s)
	bytes := harness.NewAcc(s)
	part := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		l := ls[tr.Point]
		net, err := deployment(tr, 400, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		cfg := o.coreConfig()
		cfg.Slices = l
		in, err := world.FromTrial(tr).Core("lablation", net, cfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		eav := attack.NewEavesdropper(0.1, tr.Rng.Split(3))
		eav.Attach(in)
		res, err := in.RunCount()
		if err != nil {
			return err
		}
		disclosed.Add(tr, eav.DiscloseRate(in.Participants()))
		bytes.Add(tr, float64(res.Outcomes[0].Bytes))
		part.Add(tr, metrics.ParticipationFraction(in.Trees, l, net.N()))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, l := range ls {
		t.AddRow(
			d(int64(l)),
			f(disclosed.Point(pi).Mean()),
			f(bytes.Point(pi).Mean()),
			f(part.Point(pi).Mean()),
			d(int64(2*l+1)),
		)
	}
	return t, nil
}
