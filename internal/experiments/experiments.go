// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV), plus the ablations DESIGN.md calls out.
//
// Each experiment function declares its sweep — the paper's parameter
// axis and a per-trial function — on the internal/harness engine, which
// flattens (point × trial) onto one worker pool and derives every trial's
// random stream along the seed path root → experiment ID → point → trial.
// The result is a Table whose rows mirror what the paper plots: the x
// axis in the first column and one column per curve. cmd/ipda-bench
// prints them; EXPERIMENTS.md records a reference run against the paper's
// reported shapes. Equal Options give byte-identical tables regardless of
// Workers.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/mtree"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/tag"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// Options control an experiment sweep.
type Options struct {
	// Sizes is the network-size axis; nil selects the paper's
	// {200, 300, 400, 500, 600}.
	Sizes []int
	// Trials is the number of independent deployments per point; 0
	// selects each experiment's default (the paper uses 50 for Figure 6).
	Trials int
	// Seed drives all randomness; equal options give equal tables.
	Seed uint64
	// Workers bounds trial parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Shards bounds intra-trial parallelism for experiments that run one
	// sharded simulation per trial (the scale experiments); 0 selects 1.
	// Execution-only: tables are byte-identical for every Shards value.
	Shards int
	// Progress, when non-nil, receives (trialsDone, trialsTotal) after
	// each completed trial of each sweep the experiment runs.
	Progress func(done, total int)
	// Obs, when non-nil, collects harness throughput metrics for every
	// sweep the experiment runs (see harness.Sweep.Obs). Metric values
	// never enter the Table output, so tables stay byte-identical with
	// and without a sink.
	Obs *obs.Sink
	// QTrace, when non-nil, collects causal per-query traces for every
	// sweep the experiment runs (see harness.Sweep.QTrace). Tracing is
	// read-only: tables are byte-identical with and without a store, and
	// the exported trace is byte-identical for every Workers and Shards
	// value.
	QTrace *qtrace.Store
	// FreshWorlds disables the per-worker simulation arenas: every trial
	// constructs its deployment and protocol instances from scratch
	// instead of resetting the worker's pooled ones. Output is identical
	// either way (the arenas' contract); this exists for A/B verification
	// and leak hunting.
	FreshWorlds bool
	// Suite selects the linksec keystream suite for every protocol
	// instance the experiments build: the zero value is the batched
	// AES-CTR engine, linksec.SuiteSHA256 the original compat mode.
	// Tables are suite-independent — no result consumes ciphertext bytes
	// — so either setting yields byte-identical output.
	Suite linksec.Suite
	// MAC selects the channel-access scheme: the zero value is the
	// paper's CSMA, mac.SchemeTDMA the contention-free slotted schedule.
	// Unlike Suite this is a modelling change — TDMA alters timing, so
	// tables legitimately differ from the CSMA goldens (while remaining
	// deterministic across workers and shards).
	MAC mac.Scheme
	// Coalesce grows the overhead experiments (fig7) with extra columns
	// measured under slice-coalesced framing (core.Config.Coalesce): the
	// coalesced runs draw from their own rng splits, so the existing
	// columns stay byte-identical to a run without the option. Off by
	// default so every recorded table keeps its exact shape.
	Coalesce bool
}

// coreConfig is core.DefaultConfig with the options' suite and MAC scheme
// applied; experiments build their per-trial configs from it.
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Suite = o.Suite
	cfg.MAC.Scheme = o.MAC
	return cfg
}

// tagConfig is tag.DefaultConfig with the options' MAC scheme applied
// (the TAG baseline sends plaintext — no suite to select).
func (o Options) tagConfig() tag.Config {
	cfg := tag.DefaultConfig()
	cfg.MAC.Scheme = o.MAC
	return cfg
}

// mtreeConfig is mtree.DefaultConfig(m) with the options' suite and MAC
// scheme applied.
func (o Options) mtreeConfig(m int) mtree.Config {
	cfg := mtree.DefaultConfig(m)
	cfg.Suite = o.Suite
	cfg.MAC = mac.DefaultConfig()
	cfg.MAC.Scheme = o.MAC
	return cfg
}

func (o Options) sizes() []int {
	if len(o.Sizes) == 0 {
		return []int{200, 300, 400, 500, 600}
	}
	return o.Sizes
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

func (o Options) trials(def int) int {
	if o.Trials <= 0 {
		return def
	}
	return o.Trials
}

// sweep builds the harness sweep for an experiment: id roots the seed
// path, points is the axis length, and def is the experiment's default
// trial count (overridden by Options.Trials).
func (o Options) sweep(id string, points, def int) harness.Sweep {
	s := harness.Sweep{
		ID:       id,
		Seed:     o.Seed,
		Points:   points,
		Trials:   o.trials(def),
		Workers:  o.Workers,
		Progress: o.Progress,
		Obs:      o.Obs,
		QTrace:   o.QTrace,
	}
	if !o.FreshWorlds {
		s.WorkerState = func() any { return world.New() }
	}
	return s
}

// fixedSweep is sweep with a trial count the user cannot override, for
// experiments whose per-point work is not a Monte-Carlo repetition.
func (o Options) fixedSweep(id string, points, trials int) harness.Sweep {
	s := o.sweep(id, points, trials)
	s.Trials = trials
	return s
}

// Table is one experiment's output: the rows the paper's table or figure
// reports.
type Table struct {
	ID      string // experiment id from DESIGN.md, e.g. "fig6"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row. Missing cells print empty; passing more
// cells than Columns is a programmer error (the extra cells would be
// silently invisible in every output format) and panics.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("experiments: AddRow got %d cells for %d columns in table %q",
			len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(t.Columns))
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as RFC 4180 CSV (header row first). Notes are
// not emitted — CSV is for plotting pipelines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// deployment builds the paper's uniform random deployment for one trial,
// through the trial worker's arena when the sweep carries one.
func deployment(tr *harness.T, nodes int, r *rng.Stream) (*topology.Network, error) {
	return world.FromTrial(tr).Deploy(topology.PaperConfig(nodes), r)
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// d formats an integer cell.
func d(v int64) string { return fmt.Sprintf("%d", v) }
