package experiments

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/tag"
)

// Lifetime quantifies the energy cost of iPDA's protections — the paper's
// introduction motivates aggregation by network lifetime, and iPDA's
// (2l+1)/2 message overhead translates directly into shorter life. Each
// protocol runs a few COUNT rounds under the first-order radio energy
// model; the table reports per-round drain at the bottleneck node and the
// extrapolated rounds until the first sensor dies.
func Lifetime(o Options) (*Table, error) {
	t := &Table{
		ID:    "lifetime",
		Title: "Network lifetime under the first-order radio model",
		Columns: []string{
			"nodes",
			"mJ/round TAG", "mJ/round iPDA l=2",
			"lifetime TAG", "lifetime iPDA l=2", "lifetime ratio",
		},
		Notes: []string{
			"mJ/round = per-round drain at the bottleneck (max-spend) node, including idle listening",
			"lifetime = extrapolated COUNT rounds until the first sensor depletes a 2 J battery",
		},
	}
	const measureRounds = 3
	trials := o.trials(5)
	for si, n := range o.sizes() {
		type out struct {
			tagDrain, ipdaDrain float64 // joules per round at bottleneck
			ok                  bool
		}
		outs := make([]out, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*1103, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			model := energy.DefaultModel()

			tg, err := tag.New(net, tag.DefaultConfig(), r.Split(2).Uint64())
			if err != nil {
				return
			}
			tagMeter, err := energy.NewMeter(net.N(), model)
			if err != nil {
				return
			}
			tg.Medium.SetMeter(tagMeter)
			tagStart := tg.Sim.Now()
			for round := 0; round < measureRounds; round++ {
				if _, err := tg.RunCount(); err != nil {
					return
				}
			}
			tagMeter.ChargeIdle(float64(tg.Sim.Now() - tagStart))

			in, err := core.New(net, core.DefaultConfig(), r.Split(3).Uint64())
			if err != nil {
				return
			}
			ipdaMeter, err := energy.NewMeter(net.N(), model)
			if err != nil {
				return
			}
			in.Medium.SetMeter(ipdaMeter)
			ipdaStart := in.Sim.Now()
			for round := 0; round < measureRounds; round++ {
				if _, err := in.RunCount(); err != nil {
					return
				}
			}
			ipdaMeter.ChargeIdle(float64(in.Sim.Now() - ipdaStart))

			outs[trial] = out{
				tagDrain:  tagMeter.MaxSpent() / measureRounds,
				ipdaDrain: ipdaMeter.MaxSpent() / measureRounds,
				ok:        true,
			}
		})
		var tagDrain, ipdaDrain stats.Sample
		for _, out := range outs {
			if !out.ok {
				continue
			}
			tagDrain.Add(out.tagDrain)
			ipdaDrain.Add(out.ipdaDrain)
		}
		battery := energy.DefaultModel().Battery
		tagLife := battery / tagDrain.Mean()
		ipdaLife := battery / ipdaDrain.Mean()
		t.AddRow(
			d(int64(n)),
			f(tagDrain.Mean()*1e3), f(ipdaDrain.Mean()*1e3),
			f(tagLife), f(ipdaLife), f(tagLife/ipdaLife),
		)
	}
	return t, nil
}
