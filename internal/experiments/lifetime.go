package experiments

import (
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/world"
)

// Lifetime quantifies the energy cost of iPDA's protections — the paper's
// introduction motivates aggregation by network lifetime, and iPDA's
// (2l+1)/2 message overhead translates directly into shorter life. Each
// protocol runs a few COUNT rounds under the first-order radio energy
// model; the table reports per-round drain at the bottleneck node and the
// extrapolated rounds until the first sensor dies.
func Lifetime(o Options) (*Table, error) {
	t := &Table{
		ID:    "lifetime",
		Title: "Network lifetime under the first-order radio model",
		Columns: []string{
			"nodes",
			"mJ/round TAG", "mJ/round iPDA l=2",
			"lifetime TAG", "lifetime iPDA l=2", "lifetime ratio",
		},
		Notes: []string{
			"mJ/round = per-round drain at the bottleneck (max-spend) node, including idle listening",
			"lifetime = extrapolated COUNT rounds until the first sensor depletes a 2 J battery",
		},
	}
	const measureRounds = 3
	sizes := o.sizes()
	s := o.sweep("lifetime", len(sizes), 5)
	tagDrain := harness.NewAcc(s)
	ipdaDrain := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		model := energy.DefaultModel()

		// Meters attach after construction: Reset rewires the medium, so a
		// reused instance starts each trial meterless either way.
		tg, err := arena.Tag("lifetime", net, o.tagConfig(), tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		tagMeter, err := energy.NewMeter(net.N(), model)
		if err != nil {
			return err
		}
		tg.Medium.SetMeter(tagMeter)
		tagStart := tg.Sim.Now()
		for round := 0; round < measureRounds; round++ {
			if _, err := tg.RunCount(); err != nil {
				return err
			}
		}
		tagMeter.ChargeIdle(float64(tg.Sim.Now() - tagStart))

		in, err := arena.Core("lifetime", net, o.coreConfig(), tr.Rng.Split(3).Uint64())
		if err != nil {
			return err
		}
		ipdaMeter, err := energy.NewMeter(net.N(), model)
		if err != nil {
			return err
		}
		in.Medium.SetMeter(ipdaMeter)
		ipdaStart := in.Sim.Now()
		for round := 0; round < measureRounds; round++ {
			if _, err := in.RunCount(); err != nil {
				return err
			}
		}
		ipdaMeter.ChargeIdle(float64(in.Sim.Now() - ipdaStart))

		tagDrain.Add(tr, tagMeter.MaxSpent()/measureRounds)
		ipdaDrain.Add(tr, ipdaMeter.MaxSpent()/measureRounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	battery := energy.DefaultModel().Battery
	for pi, n := range sizes {
		tagMean := tagDrain.Point(pi).Mean()
		ipdaMean := ipdaDrain.Point(pi).Mean()
		tagLife := battery / tagMean
		ipdaLife := battery / ipdaMean
		t.AddRow(
			d(int64(n)),
			f(tagMean*1e3), f(ipdaMean*1e3),
			f(tagLife), f(ipdaLife), f(tagLife/ipdaLife),
		)
	}
	return t, nil
}
