package experiments

import (
	"math"

	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/shard"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// scaleConfig extends the paper's deployment to large fields at constant
// density: the 400 m side that houses 400 sensors grows with sqrt(n) so
// node degree stays at the paper's operating point instead of the channel
// melting down as n grows.
func scaleConfig(nodes int) topology.Config {
	side := 400 * math.Sqrt(float64(nodes+1)/401)
	return topology.Config{Nodes: nodes, FieldSide: side, Range: 50}
}

// Scale runs the hierarchical sharded COUNT query on fields beyond the
// paper's 600-node ceiling: the deployment is partitioned into cluster
// regions (~250 nodes each, the validated band), every region runs a full
// iPDA instance on its own channel, and the cluster heads feed the
// red/blue backbone. Options.Shards sets the worker goroutines per trial;
// every column is shard- and worker-independent.
func Scale(o Options) (*Table, error) {
	t := &Table{
		ID:    "scale",
		Title: "Hierarchical sharded iPDA at large n",
		Columns: []string{
			"nodes", "regions", "participants", "count",
			"accepted regions", "backbone ok", "bytes/node", "frames/node",
		},
		Notes: []string{
			"constant-density fields (paper density at n=400); one channel per cluster region",
			"count is the backbone red total; backbone ok means every region passed and |S_b-S_r| <= R*Th",
		},
	}
	sizes := o.Sizes
	if len(sizes) == 0 {
		sizes = []int{2000, 10000}
	}
	shards := o.shards()
	s := o.sweep("scale", len(sizes), 2)
	regions := harness.NewAcc(s)
	participants := harness.NewAcc(s)
	count := harness.NewAcc(s)
	accepted := harness.NewAcc(s)
	backboneOK := harness.NewAcc(s)
	bytesPer := harness.NewAcc(s)
	framesPer := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		n := sizes[tr.Point]
		arena := world.FromTrial(tr)
		net, err := arena.Deploy(scaleConfig(n), tr.Rng.Split(1))
		if err != nil {
			return err
		}
		plan := shard.NewPlan(net, shard.DefaultRegions(n))
		out, err := shard.RunHier(plan, o.coreConfig(), tr.Rng.Split(2), shards, arena, tr.QTrace)
		if err != nil {
			return err
		}
		regions.Add(tr, float64(out.Regions))
		participants.Add(tr, float64(out.Participants))
		count.Add(tr, float64(out.Red))
		accepted.Add(tr, float64(out.Accepted))
		ok := 0.0
		if out.AllAccepted {
			ok = 1
		}
		backboneOK.Add(tr, ok)
		bytesPer.Add(tr, float64(out.Bytes)/float64(net.N()))
		framesPer.Add(tr, float64(out.Frames)/float64(net.N()))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		t.AddRow(
			d(int64(n)),
			f(regions.Point(pi).Mean()),
			f(participants.Point(pi).Mean()),
			f(count.Point(pi).Mean()),
			f(accepted.Point(pi).Mean()),
			f(backboneOK.Point(pi).Mean()),
			f(bytesPer.Point(pi).Mean()),
			f(framesPer.Point(pi).Mean()),
		)
	}
	return t, nil
}
