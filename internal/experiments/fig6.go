package experiments

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
)

// Fig6 reproduces Figure 6: the COUNT aggregate reported by the red and
// blue trees as a function of network size, for l = 1 and l = 2, against
// the "perfect" (loss-free) line. The paper's reading: the two trees agree
// within a small threshold, justifying Th ≈ 5.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "Red vs blue tree COUNT without integrity violation (Figure 6)",
		Columns: []string{
			"nodes",
			"red l=1", "blue l=1", "red l=2", "blue l=2",
			"perfect", "mean|Sb-Sr| cong", "max|Sb-Sr| cong",
		},
		Notes: []string{
			"perfect = network size (every sensor counted once, no loss)",
			"value columns use the default (relaxed) epoch, where ARQ recovers every frame and the trees agree exactly",
			"diff columns use a congested 0.1 s slicing window (the paper's ns-2 loss regime) at l=2; Th=5 accepts when |Sb-Sr| <= 5",
		},
	}
	trials := o.trials(50)
	for si, n := range o.sizes() {
		type trialOut struct {
			red1, blue1, red2, blue2 float64
			diff2                    float64
			ok                       bool
		}
		outs := make([]trialOut, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*101, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			run := func(l int, window float64) (red, blue float64, err error) {
				cfg := core.DefaultConfig()
				cfg.Slices = l
				if window > 0 {
					cfg.SliceWindow = eventsim.Time(window)
				}
				in, err := core.New(net, cfg, r.Split(uint64(l)*7+uint64(window*100)).Uint64())
				if err != nil {
					return 0, 0, err
				}
				res, err := in.RunCount()
				if err != nil {
					return 0, 0, err
				}
				return float64(res.Outcomes[0].Red), float64(res.Outcomes[0].Blue), nil
			}
			r1, b1, err := run(1, 0)
			if err != nil {
				return
			}
			r2, b2, err := run(2, 0)
			if err != nil {
				return
			}
			// Congested replay for the loss-induced tree disagreement.
			rc, bc, err := run(2, 0.1)
			if err != nil {
				return
			}
			diff := rc - bc
			if diff < 0 {
				diff = -diff
			}
			outs[trial] = trialOut{r1, b1, r2, b2, diff, true}
		})
		var red1, blue1, red2, blue2, diff2 stats.Sample
		maxDiff := 0.0
		for _, out := range outs {
			if !out.ok {
				continue
			}
			red1.Add(out.red1)
			blue1.Add(out.blue1)
			red2.Add(out.red2)
			blue2.Add(out.blue2)
			diff2.Add(out.diff2)
			if out.diff2 > maxDiff {
				maxDiff = out.diff2
			}
		}
		t.AddRow(
			d(int64(n)),
			f(red1.Mean()), f(blue1.Mean()),
			f(red2.Mean()), f(blue2.Mean()),
			d(int64(n)),
			f(diff2.Mean()), f(maxDiff),
		)
	}
	return t, nil
}
