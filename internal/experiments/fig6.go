package experiments

import (
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/world"
)

// Fig6 reproduces Figure 6: the COUNT aggregate reported by the red and
// blue trees as a function of network size, for l = 1 and l = 2, against
// the "perfect" (loss-free) line. The paper's reading: the two trees agree
// within a small threshold, justifying Th ≈ 5.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "Red vs blue tree COUNT without integrity violation (Figure 6)",
		Columns: []string{
			"nodes",
			"red l=1", "blue l=1", "red l=2", "blue l=2",
			"perfect", "mean|Sb-Sr| cong", "max|Sb-Sr| cong",
		},
		Notes: []string{
			"perfect = network size (every sensor counted once, no loss)",
			"value columns use the default (relaxed) epoch, where ARQ recovers every frame and the trees agree exactly",
			"diff columns use a congested 0.1 s slicing window (the paper's ns-2 loss regime) at l=2; Th=5 accepts when |Sb-Sr| <= 5",
		},
	}
	sizes := o.sizes()
	s := o.sweep("fig6", len(sizes), 50)
	red1 := harness.NewAcc(s)
	blue1 := harness.NewAcc(s)
	red2 := harness.NewAcc(s)
	blue2 := harness.NewAcc(s)
	diff2 := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		// The three replays run strictly one after another, so a single
		// arena slot serves them all.
		run := func(l int, window float64) (red, blue float64, err error) {
			cfg := o.coreConfig()
			cfg.Slices = l
			if window > 0 {
				cfg.SliceWindow = eventsim.Time(window)
			}
			in, err := arena.Core("fig6", net, cfg, tr.Rng.Split(uint64(l)*7+uint64(window*100)).Uint64())
			if err != nil {
				return 0, 0, err
			}
			res, err := in.RunCount()
			if err != nil {
				return 0, 0, err
			}
			return float64(res.Outcomes[0].Red), float64(res.Outcomes[0].Blue), nil
		}
		r1, b1, err := run(1, 0)
		if err != nil {
			return err
		}
		r2, b2, err := run(2, 0)
		if err != nil {
			return err
		}
		// Congested replay for the loss-induced tree disagreement.
		rc, bc, err := run(2, 0.1)
		if err != nil {
			return err
		}
		diff := rc - bc
		if diff < 0 {
			diff = -diff
		}
		red1.Add(tr, r1)
		blue1.Add(tr, b1)
		red2.Add(tr, r2)
		blue2.Add(tr, b2)
		diff2.Add(tr, diff)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		diffs := diff2.Point(pi)
		t.AddRow(
			d(int64(n)),
			f(red1.Point(pi).Mean()), f(blue1.Point(pi).Mean()),
			f(red2.Point(pi).Mean()), f(blue2.Point(pi).Mean()),
			d(int64(n)),
			f(diffs.Mean()), f(diffs.Max()),
		)
	}
	return t, nil
}
