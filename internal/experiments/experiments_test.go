package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// small returns options that keep each experiment fast enough for the
// unit-test suite while exercising the full code path.
func small() Options {
	return Options{Sizes: []int{200, 400}, Trials: 2, Seed: 42}
}

// cell parses a table cell as float.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestRegistryRunsEverything(t *testing.T) {
	opts := small()
	opts.Trials = 1
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			o := opts
			if name == "indist" {
				o.Trials = 2000
			}
			tb, err := Run(name, o)
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != name {
				t.Fatalf("table ID %q for experiment %q", tb.ID, name)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			var buf bytes.Buffer
			tb.Fprint(&buf)
			if !strings.Contains(buf.String(), tb.Title) {
				t.Fatal("Fprint lost the title")
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", small()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	// Simulated degree grows with N and sits below the analytic column.
	if cell(t, tb, 0, 1) >= cell(t, tb, 1, 1) {
		t.Fatal("degree not increasing with N")
	}
	for r := range tb.Rows {
		if cell(t, tb, r, 1) >= cell(t, tb, r, 3)+1 {
			t.Fatalf("row %d: simulated degree above analytic", r)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	o := small()
	o.Trials = 2
	tb, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	// Monotone in p_x, and l=3 below l=2 at the top of the range.
	if cell(t, tb, 0, 1) >= cell(t, tb, last, 1) {
		t.Fatal("P_disclose not increasing in p_x")
	}
	if cell(t, tb, last, 3) >= cell(t, tb, last, 1) {
		t.Fatal("l=3 not below l=2")
	}
}

func TestFig6Shape(t *testing.T) {
	o := small()
	o.Trials = 3
	tb, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		perfect := cell(t, tb, r, 5)
		red2 := cell(t, tb, r, 3)
		blue2 := cell(t, tb, r, 4)
		if red2 > perfect*1.02 || blue2 > perfect*1.02 {
			t.Fatalf("row %d: tree totals exceed perfect: %v/%v vs %v", r, red2, blue2, perfect)
		}
		meanDiff := cell(t, tb, r, 6)
		if meanDiff > perfect*0.15 {
			t.Fatalf("row %d: congested mean |Sb-Sr| = %v too large", r, meanDiff)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	o := small()
	o.Trials = 2
	tb, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		nodes := cell(t, tb, r, 0)
		if nodes < 350 {
			// Below ~300 nodes iPDA participation collapses (Sec. IV-B),
			// so the byte ordering versus TAG does not hold — exactly the
			// sub-linear region the paper describes.
			continue
		}
		tagBytes := cell(t, tb, r, 1)
		l1 := cell(t, tb, r, 2)
		l2 := cell(t, tb, r, 3)
		if !(tagBytes < l1 && l1 < l2) {
			t.Fatalf("row %d: byte ordering TAG < l1 < l2 violated: %v %v %v", r, tagBytes, l1, l2)
		}
		ratio2 := cell(t, tb, r, 8)
		if ratio2 < 1.8 || ratio2 > 3.6 {
			t.Fatalf("row %d: l=2 frame ratio %v far from (2l+1)/2 = 2.5", r, ratio2)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	o := small()
	o.Trials = 2
	tb, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// Dense row (400 nodes) must beat the sparse row (200 nodes) on
	// coverage and accuracy.
	if cell(t, tb, 0, 1) > cell(t, tb, 1, 1) {
		t.Fatal("coverage not improving with density")
	}
	for r := range tb.Rows {
		cov := cell(t, tb, r, 1)
		p2 := cell(t, tb, r, 3)
		if p2 > cov+1e-9 {
			t.Fatalf("row %d: participation above coverage", r)
		}
		for c := 4; c <= 6; c++ {
			acc := cell(t, tb, r, c)
			if acc < 0 || acc > 1.05 {
				t.Fatalf("row %d col %d: accuracy %v out of range", r, c, acc)
			}
		}
	}
	// At N=400 everything should be healthy.
	if cell(t, tb, 1, 6) < 0.9 || cell(t, tb, 1, 5) < 0.8 {
		t.Fatal("dense-network accuracy too low")
	}
}

func TestPollutionDetects(t *testing.T) {
	o := small()
	o.Trials = 3
	tb, err := Pollution(o)
	if err != nil {
		t.Fatal(err)
	}
	// delta=0 row reports false rejects; large deltas detected at rate 1.
	lastRow := len(tb.Rows) - 1
	if got := cell(t, tb, lastRow, 1); got < 0.99 {
		t.Fatalf("blatant pollution detected at rate %v", got)
	}
	if fr := cell(t, tb, 0, 2); fr > 0.35 {
		t.Fatalf("false-reject rate %v", fr)
	}
}

func TestOverheadTable(t *testing.T) {
	tb, err := Overhead(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tb, 1, 3) != 2.5 {
		t.Fatal("l=2 ratio != 2.5")
	}
}

func TestLAblationShape(t *testing.T) {
	tb, err := LAblation(Options{Trials: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Disclosure falls sharply from l=1 to l=2; bytes rise with l.
	d1, d2 := cell(t, tb, 0, 1), cell(t, tb, 1, 1)
	if d2 >= d1/3 {
		t.Fatalf("l=2 disclosure %v not well below l=1 %v", d2, d1)
	}
	for r := 1; r < len(tb.Rows); r++ {
		if cell(t, tb, r, 2) <= cell(t, tb, r-1, 2) {
			t.Fatalf("bytes not increasing with l at row %d", r)
		}
	}
}

func TestKeysShape(t *testing.T) {
	tb, err := Keys(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// EG rows: induced p_x grows with ring size and tracks ring/pool.
	px50 := cell(t, tb, 0, 3)
	px100 := cell(t, tb, 1, 3)
	px200 := cell(t, tb, 2, 3)
	if !(px50 < px100 && px100 < px200) {
		t.Fatalf("EG p_x not increasing with ring: %v %v %v", px50, px100, px200)
	}
	if px100 < 0.07 || px100 > 0.13 {
		t.Fatalf("EG ring-100 p_x = %v, want ~0.1", px100)
	}
	// q-composite with the same ring crushes exposure by orders of
	// magnitude.
	qc100 := cell(t, tb, 3, 3)
	if qc100 > px100/100 {
		t.Fatalf("q-composite p_x %v not well below EG %v", qc100, px100)
	}
}

func TestLifetimeShape(t *testing.T) {
	o := small()
	o.Trials = 1
	tb, err := Lifetime(o)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		if cell(t, tb, r, 0) < 350 {
			// Below ~300 nodes iPDA participation collapses (Sec. IV-B),
			// so few sensors transmit and the bottleneck drain comparison
			// is noise — same sparse region TestFig7Shape skips.
			continue
		}
		tagLife := cell(t, tb, r, 3)
		ipdaLife := cell(t, tb, r, 4)
		ratio := cell(t, tb, r, 5)
		if tagLife <= ipdaLife {
			t.Fatalf("row %d: TAG lifetime %v not above iPDA %v", r, tagLife, ipdaLife)
		}
		// The privacy+integrity price: roughly the (2l+1)/2-to-byte-ratio
		// band, 1.5x-5x.
		if ratio < 1.5 || ratio > 5 {
			t.Fatalf("row %d: lifetime ratio %v outside plausible band", r, ratio)
		}
	}
}

func TestAddRowRejectsExtraCells(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2") // exact width ok
	tb.AddRow("1")      // short row ok (pads on output)
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow accepted more cells than columns")
		}
	}()
	tb.AddRow("1", "2", "dropped-before-this-fix")
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddRow("3") // short row pads
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "long-column"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Title line + header + 2 rows.
	if len(lines) != 4 {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	if !strings.Contains(lines[1], "long-column") {
		t.Fatalf("header missing: %q", lines[1])
	}
}
