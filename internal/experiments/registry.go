package experiments

import (
	"fmt"
	"sort"
)

// Func is one experiment runner. A Func is a pure function of its
// Options: equal Options yield byte-identical tables regardless of
// Options.Workers (the harness's determinism contract). Any trial failure
// cancels the underlying sweep and surfaces here as a non-nil error with
// the failing (experiment, point, trial) cell in its message; a Func
// never panics across goroutines.
type Func func(Options) (*Table, error)

// Registry maps experiment IDs (as used by cmd/ipda-bench -exp) to their
// runners. The IDs match the experiment index in DESIGN.md.
var Registry = map[string]Func{
	"table1":    Table1,
	"fig5":      Fig5,
	"fig6":      Fig6,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"coverage":  CoverageBound,
	"overhead":  Overhead,
	"pollution": Pollution,
	"th":        ThSweep,
	"dos":       DoS,
	"indist":    Indistinguishability,
	"kablation": KAblation,
	"lablation": LAblation,
	"keys":      Keys,
	"adaptive":  AdaptiveAblation,
	"churn":     Churn,
	"lifetime":  Lifetime,
	"mtrees":    MTrees,
	"scale":     Scale,
	"stream":    Stream,
}

// Names returns the registered experiment IDs in stable order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for name := range Registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by ID.
func Run(name string, o Options) (*Table, error) {
	fn, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return fn(o)
}
