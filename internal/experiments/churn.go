package experiments

import (
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/world"
)

// churnRounds is how many consecutive aggregation rounds each trial runs
// under the fault schedule; enough for churn to accumulate dead subtrees
// while keeping a 5-point sweep affordable.
const churnRounds = 6

// Churn measures graceful degradation under node failures (the fault model
// of Section III-A): round-acceptance rate and collection accuracy versus
// per-round crash probability, for iPDA with and without localized tree
// repair and for the TAG baseline. All three protocol variants replay the
// exact same fault schedule (same fault.Config seed), and repair/no-repair
// additionally share the deployment and protocol seed, so each column
// isolates one mechanism.
func Churn(o Options) (*Table, error) {
	t := &Table{
		ID:    "churn",
		Title: "Accuracy and acceptance under churn (fault injection + tree repair)",
		Columns: []string{
			"crash %/round", "accept repair", "accept no-repair",
			"accuracy repair", "accuracy no-repair", "accuracy TAG", "trials",
		},
		Notes: []string{
			"COUNT aggregation, N=400, 6 rounds/trial, RecoverRate=0.25; identical fault schedules across variants",
			"accuracy = readings collected / live sensors that round; acceptance = rounds with |Sb-Sr| <= Th",
		},
	}
	rates := []float64{0, 0.02, 0.05, 0.1, 0.2}
	s := o.sweep("churn", len(rates), 10)
	acceptRepair := harness.NewAcc(s)
	acceptPlain := harness.NewAcc(s)
	accRepair := harness.NewAcc(s)
	accPlain := harness.NewAcc(s)
	accTAG := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		rate := rates[tr.Point]
		net, err := deployment(tr, 400, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		fcfg := fault.Config{CrashRate: rate, RecoverRate: 0.25, Seed: tr.Rng.Split(2).Uint64()}
		protoSeed := tr.Rng.Split(3).Uint64()

		// iPDA, repair on/off: same deployment, same protocol seed, same
		// fault schedule — the repair column is the only delta.
		for _, repair := range []bool{true, false} {
			cfg := o.coreConfig()
			cfg.Faults = &fcfg
			cfg.Repair = repair
			qslot := "repair"
			if !repair {
				qslot = "norepair"
			}
			cfg.QTrace = tr.QTrace.Tracer(qslot)
			in, err := arena.Core("churn", net, cfg, protoSeed)
			if err != nil {
				return err
			}
			for r := 0; r < churnRounds; r++ {
				res, err := in.RunCount()
				if err != nil {
					return err
				}
				out := res.Outcomes[0]
				tr.RecordLatency(out.Latency)
				live := net.N() - 1 - out.Dead
				accuracy := 0.0
				if live > 0 {
					accuracy = float64(out.Red) / float64(live)
				}
				if repair {
					acceptRepair.AddBool(tr, res.Accepted)
					accRepair.Add(tr, accuracy)
				} else {
					acceptPlain.AddBool(tr, res.Accepted)
					accPlain.Add(tr, accuracy)
				}
			}
		}

		// TAG baseline: no integrity check to accept or reject, so only
		// accuracy is reported. Driven by its own injector replaying the
		// same schedule (TAG has no extra base stations either).
		tcfg := o.tagConfig()
		tcfg.QTrace = tr.QTrace.Tracer("tag")
		tg, err := arena.Tag("churn", net, tcfg, tr.Rng.Split(4).Uint64())
		if err != nil {
			return err
		}
		inj, err := fault.NewInjector(net.N(), fcfg, nil)
		if err != nil {
			return err
		}
		inj.SetQTrace(tcfg.QTrace)
		for r := 0; r < churnRounds; r++ {
			inj.Advance(r, float64(tg.Sim.Now()), tg)
			res, err := tg.RunCount()
			if err != nil {
				return err
			}
			tr.RecordLatency(res.Outcomes[0].Latency)
			live := net.N() - 1 - inj.DeadCount()
			accuracy := 0.0
			if live > 0 {
				accuracy = float64(res.Outcomes[0].Sum) / float64(live)
			}
			accTAG.Add(tr, accuracy)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, rate := range rates {
		t.AddRow(
			f(rate*100),
			f(acceptRepair.Point(pi).Mean()),
			f(acceptPlain.Point(pi).Mean()),
			f(accRepair.Point(pi).Mean()),
			f(accPlain.Point(pi).Mean()),
			f(accTAG.Point(pi).Mean()),
			d(int64(acceptRepair.Point(pi).N()/churnRounds)),
		)
	}
	return t, nil
}
