package experiments

import (
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/stream"
	"github.com/ipda-sim/ipda/internal/world"
)

// Streaming-day shape: a 24-hour day of 15-minute metering intervals.
const (
	streamEpochs   = 96
	streamInterval = 900.0 // seconds per epoch
	epochsPerHour  = 4
)

// Stream is the continuous smart-metering pipeline (the paper's
// motivating utility scenario run at utility cadence): one deployment per
// trial serves a full simulated day — 96 fifteen-minute epochs — under
// mild churn with tree repair on, while four standing sliding-window
// queries (interval SUM, hourly AVG and VAR, 3-hour peak MAX) fire on
// staggered schedules. Phase I runs once; every epoch rides the same
// trees, so the amortized cost per reading is the steady-state number a
// metering deployment would bill. Headlines are collection throughput
// (readings per simulated second) and energy per reading including idle
// listening.
func Stream(o Options) (*Table, error) {
	t := &Table{
		ID:    "stream",
		Title: "Continuous smart-metering day (96 epochs, staggered SUM/AVG/VAR/MAX)",
		Columns: []string{
			"nodes", "epochs", "firings", "accept", "readings/s",
			"uJ/reading", "bytes/reading", "repairs", "trials",
		},
		Notes: []string{
			"one deployment per trial serves the whole day: Phase I amortized, mid-day churn repaired in place (CrashRate=0.01/round, RecoverRate=0.3)",
			"queries: SUM per 15 min, AVG + VAR per hour, MAX over 3 h windows, phase-staggered; readings/s is simulated-time throughput",
			"uJ/reading covers radio tx/rx plus idle listening across the 86,400 s day; per-round latencies feed the -obs quantile histogram",
			"single coupled world per trial: tables are byte-identical across -workers and -shards by construction",
		},
	}
	sizes := o.sizes()
	s := o.sweep("stream", len(sizes), 3)
	accept := harness.NewAcc(s)
	firings := harness.NewAcc(s)
	rps := harness.NewAcc(s)
	ujPerReading := harness.NewAcc(s)
	bytesPerReading := harness.NewAcc(s)
	repairs := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		nodes := sizes[tr.Point]
		net, err := deployment(tr, nodes, tr.Rng.Split(1))
		if err != nil {
			return err
		}
		cfg := o.coreConfig()
		cfg.Repair = true
		cfg.Faults = &fault.Config{CrashRate: 0.01, RecoverRate: 0.3, Seed: tr.Rng.Split(2).Uint64()}
		cfg.QTrace = tr.QTrace.Tracer("stream")
		in, err := arena.Core("stream", net, cfg, tr.Rng.Split(3).Uint64())
		if err != nil {
			return err
		}
		meter, err := energy.NewMeter(net.N(), energy.DefaultModel())
		if err != nil {
			return err
		}
		p, err := stream.New(in, stream.Config{
			Epochs:   streamEpochs,
			Interval: streamInterval,
			Queries:  stream.DayQueries(epochsPerHour),
			Readings: func(id, epoch int) int64 {
				return stream.DiurnalLoad(id, float64(epoch)/epochsPerHour)
			},
			Meter: meter,
			// Keystream warming (stream.Config.Precompute) stays off here:
			// it is behavior-neutral — results and tables are byte-identical
			// on or off — but it is a per-firing latency knob, not a
			// throughput win (sealer and opener share each link's cipher, so
			// warming only moves AES work between firings, and the sound
			// candidate superset costs more blocks than a round consumes).
			// BenchmarkStreamingDay measures this path; paying speculative
			// warming there would tax the gate for work the table never
			// sees. ipda-sim -precompute demonstrates the warming.
		})
		if err != nil {
			return err
		}
		var res *stream.Result
		for p.Epoch() < streamEpochs {
			if err := p.Step(); err != nil {
				return err
			}
		}
		res = p.Finish()
		var repaired int64
		for _, q := range res.Queries {
			accept.AddBool(tr, q.Accepted)
			repaired += int64(q.Repaired)
			for _, l := range q.Latencies {
				tr.RecordLatency(l)
			}
		}
		firings.Add(tr, float64(len(res.Queries)))
		rps.Add(tr, res.ReadingsPerSecond())
		ujPerReading.Add(tr, res.JoulesPerReading()*1e6)
		bytesPerReading.Add(tr, float64(res.Bytes)/float64(res.Readings))
		repairs.Add(tr, float64(repaired))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, nodes := range sizes {
		t.AddRow(
			d(int64(nodes)),
			d(streamEpochs),
			f(firings.Point(pi).Mean()),
			f(accept.Point(pi).Mean()),
			f(rps.Point(pi).Mean()),
			f(ujPerReading.Point(pi).Mean()),
			f(bytesPerReading.Point(pi).Mean()),
			f(repairs.Point(pi).Mean()),
			d(int64(firings.Point(pi).N())),
		)
	}
	return t, nil
}
