package experiments

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stats"
	"github.com/ipda-sim/ipda/internal/tag"
)

// trafficOut is one trial's byte/frame accounting for one protocol.
type trafficOut struct {
	bytes         float64 // total on-air bytes, tree construction + round
	protocolBytes float64 // excluding MAC ACK frames
	dataFrames    float64 // protocol frames put on the air (excl. ACKs)
}

// Fig7 reproduces Figure 7: total bandwidth consumption of one COUNT
// query (tree construction + aggregation round) as a function of network
// size, for TAG, iPDA l=1 and iPDA l=2. The paper's analysis predicts a
// message-count ratio of (2l+1)/2 over TAG.
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "Bandwidth consumption of iPDA vs TAG (Figure 7)",
		Columns: []string{
			"nodes",
			"TAG bytes", "iPDA l=1 bytes", "iPDA l=2 bytes",
			"frames/node TAG", "frames/node l=1", "frames/node l=2",
			"ratio l=1", "ratio l=2",
		},
		Notes: []string{
			"bytes include MAC ACK traffic; frames/node counts protocol frames only",
			fmt.Sprintf("analysis (Sec. IV-A.2) predicts frame ratios %.2f (l=1) and %.2f (l=2)",
				analysis.OverheadRatio(1), analysis.OverheadRatio(2)),
		},
	}
	ackSize := uint64((&packet.Packet{Header: packet.Header{Kind: packet.KindAck}}).Size())
	trials := o.trials(10)
	for si, n := range o.sizes() {
		tagOut := make([]trafficOut, trials)
		l1Out := make([]trafficOut, trials)
		l2Out := make([]trafficOut, trials)
		forEachTrial(Options{Seed: o.Seed + uint64(si)*211, Workers: o.Workers}, trials, func(trial int, r *rng.Stream) {
			net, err := deployment(n, r.Split(1))
			if err != nil {
				return
			}
			// TAG.
			tg, err := tag.New(net, tag.DefaultConfig(), r.Split(2).Uint64())
			if err != nil {
				return
			}
			if _, err := tg.RunCount(); err != nil {
				return
			}
			tagOut[trial] = accounting(tg.Medium.TotalBytes(), tg.MAC.Stats().AcksSent, tg.MAC.Stats().Sent, ackSize)
			// iPDA l=1 and l=2.
			for _, l := range []int{1, 2} {
				cfg := core.DefaultConfig()
				cfg.Slices = l
				in, err := core.New(net, cfg, r.Split(uint64(10+l)).Uint64())
				if err != nil {
					return
				}
				if _, err := in.RunCount(); err != nil {
					return
				}
				out := accounting(in.Medium.TotalBytes(), in.MAC.Stats().AcksSent, in.MAC.Stats().Sent, ackSize)
				if l == 1 {
					l1Out[trial] = out
				} else {
					l2Out[trial] = out
				}
			}
		})
		mean := func(outs []trafficOut, get func(trafficOut) float64) float64 {
			var s stats.Sample
			for _, out := range outs {
				if out.bytes > 0 {
					s.Add(get(out))
				}
			}
			return s.Mean()
		}
		nodes := float64(n + 1)
		tb := mean(tagOut, func(o trafficOut) float64 { return o.bytes })
		b1 := mean(l1Out, func(o trafficOut) float64 { return o.bytes })
		b2 := mean(l2Out, func(o trafficOut) float64 { return o.bytes })
		ft := mean(tagOut, func(o trafficOut) float64 { return o.dataFrames }) / nodes
		f1 := mean(l1Out, func(o trafficOut) float64 { return o.dataFrames }) / nodes
		f2 := mean(l2Out, func(o trafficOut) float64 { return o.dataFrames }) / nodes
		t.AddRow(
			d(int64(n)),
			f(tb), f(b1), f(b2),
			f(ft), f(f1), f(f2),
			f(f1/ft), f(f2/ft),
		)
	}
	return t, nil
}

func accounting(totalBytes, acks, sent uint64, ackSize uint64) trafficOut {
	return trafficOut{
		bytes:         float64(totalBytes),
		protocolBytes: float64(totalBytes - acks*ackSize),
		dataFrames:    float64(sent),
	}
}
