package experiments

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/world"
)

// trafficOut is one trial's byte/frame accounting for one protocol.
type trafficOut struct {
	bytes         float64 // total on-air bytes, tree construction + round
	protocolBytes float64 // excluding MAC ACK frames
	dataFrames    float64 // protocol frames put on the air (excl. ACKs)
}

// Fig7 reproduces Figure 7: total bandwidth consumption of one COUNT
// query (tree construction + aggregation round) as a function of network
// size, for TAG, iPDA l=1 and iPDA l=2. The paper's analysis predicts a
// message-count ratio of (2l+1)/2 over TAG.
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "Bandwidth consumption of iPDA vs TAG (Figure 7)",
		Columns: []string{
			"nodes",
			"TAG bytes", "iPDA l=1 bytes", "iPDA l=2 bytes",
			"frames/node TAG", "frames/node l=1", "frames/node l=2",
			"ratio l=1", "ratio l=2",
		},
		Notes: []string{
			"bytes include MAC ACK traffic; frames/node counts protocol frames only",
			fmt.Sprintf("analysis (Sec. IV-A.2) predicts frame ratios %.2f (l=1) and %.2f (l=2)",
				analysis.OverheadRatio(1), analysis.OverheadRatio(2)),
		},
	}
	if o.Coalesce {
		// Coalesced framing rides in extra columns from dedicated runs on
		// fresh rng splits: the base columns above keep their exact bytes.
		t.Columns = append(t.Columns,
			"l=2C bytes", "frames/node l=2C", "ratio l=2C")
		t.Notes = append(t.Notes,
			"l=2C columns re-run iPDA l=2 with -coalesce: one multi-slice frame per sender per round (anchored ACK, promiscuous pickup)")
	}
	ackSize := uint64((&packet.Packet{Header: packet.Header{Kind: packet.KindAck}}).Size())
	sizes := o.sizes()
	s := o.sweep("fig7", len(sizes), 10)
	tagBytes := harness.NewAcc(s)
	tagFrames := harness.NewAcc(s)
	l1Bytes := harness.NewAcc(s)
	l1Frames := harness.NewAcc(s)
	l2Bytes := harness.NewAcc(s)
	l2Frames := harness.NewAcc(s)
	l2cBytes := harness.NewAcc(s)
	l2cFrames := harness.NewAcc(s)
	err := s.Run(func(tr *harness.T) error {
		arena := world.FromTrial(tr)
		net, err := deployment(tr, sizes[tr.Point], tr.Rng.Split(1))
		if err != nil {
			return err
		}
		// TAG.
		tcfg := o.tagConfig()
		tcfg.QTrace = tr.QTrace.Tracer("tag")
		tg, err := arena.Tag("fig7", net, tcfg, tr.Rng.Split(2).Uint64())
		if err != nil {
			return err
		}
		tres, err := tg.RunCount()
		if err != nil {
			return err
		}
		tr.RecordLatency(tres.Outcomes[0].Latency)
		out := accounting(tg.Medium.TotalBytes(), tg.MAC.Stats().AcksSent, tg.MAC.Stats().Sent, ackSize)
		tagBytes.Add(tr, out.bytes)
		tagFrames.Add(tr, out.dataFrames)
		// iPDA l=1 and l=2.
		for _, l := range []int{1, 2} {
			cfg := o.coreConfig()
			cfg.Slices = l
			slot := "fig7/l1"
			qslot := "l1"
			if l == 2 {
				slot = "fig7/l2"
				qslot = "l2"
			}
			cfg.QTrace = tr.QTrace.Tracer(qslot)
			in, err := arena.Core(slot, net, cfg, tr.Rng.Split(uint64(10+l)).Uint64())
			if err != nil {
				return err
			}
			res, err := in.RunCount()
			if err != nil {
				return err
			}
			tr.RecordLatency(res.Outcomes[0].Latency)
			out := accounting(in.Medium.TotalBytes(), in.MAC.Stats().AcksSent, in.MAC.Stats().Sent, ackSize)
			if l == 1 {
				l1Bytes.Add(tr, out.bytes)
				l1Frames.Add(tr, out.dataFrames)
			} else {
				l2Bytes.Add(tr, out.bytes)
				l2Frames.Add(tr, out.dataFrames)
			}
		}
		if o.Coalesce {
			cfg := o.coreConfig()
			cfg.Slices = 2
			cfg.Coalesce = true
			cfg.QTrace = tr.QTrace.Tracer("l2c")
			in, err := arena.Core("fig7/l2c", net, cfg, tr.Rng.Split(22).Uint64())
			if err != nil {
				return err
			}
			res, err := in.RunCount()
			if err != nil {
				return err
			}
			tr.RecordLatency(res.Outcomes[0].Latency)
			out := accounting(in.Medium.TotalBytes(), in.MAC.Stats().AcksSent, in.MAC.Stats().Sent, ackSize)
			l2cBytes.Add(tr, out.bytes)
			l2cFrames.Add(tr, out.dataFrames)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range sizes {
		nodes := float64(n + 1)
		ft := tagFrames.Point(pi).Mean() / nodes
		f1 := l1Frames.Point(pi).Mean() / nodes
		f2 := l2Frames.Point(pi).Mean() / nodes
		cells := []string{
			d(int64(n)),
			f(tagBytes.Point(pi).Mean()), f(l1Bytes.Point(pi).Mean()), f(l2Bytes.Point(pi).Mean()),
			f(ft), f(f1), f(f2),
			f(f1 / ft), f(f2 / ft),
		}
		if o.Coalesce {
			f2c := l2cFrames.Point(pi).Mean() / nodes
			cells = append(cells,
				f(l2cBytes.Point(pi).Mean()), f(f2c), f(f2c/ft))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

func accounting(totalBytes, acks, sent uint64, ackSize uint64) trafficOut {
	return trafficOut{
		bytes:         float64(totalBytes),
		protocolBytes: float64(totalBytes - acks*ackSize),
		dataFrames:    float64(sent),
	}
}
