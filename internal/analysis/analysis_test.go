package analysis

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func TestIsolationProbability(t *testing.T) {
	// Degree 1, pr=pb=0.5: Equation (9) multiplies the "no red" and "no
	// blue" events as if independent, giving 1-(1-0.5)(1-0.5) = 0.75.
	// (The true probability is 1 — a single neighbor always misses one
	// color — so Eq. (9) is an approximation that tightens with degree.)
	if p := IsolationProbability(1, 0.5, 0.5); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("d=1: %v", p)
	}
	// Degree 2: isolated unless the two neighbors differ: p = 1 - 2*(1/4)
	// ... 1-(1-0.25)(1-0.25) = 1-0.5625 = 0.4375.
	if p := IsolationProbability(2, 0.5, 0.5); math.Abs(p-0.4375) > 1e-12 {
		t.Fatalf("d=2: %v", p)
	}
	// Large degree: vanishing isolation.
	if p := IsolationProbability(30, 0.5, 0.5); p > 1e-8 {
		t.Fatalf("d=30: %v", p)
	}
	// Degree 0: always isolated.
	if p := IsolationProbability(0, 0.5, 0.5); p != 1 {
		t.Fatalf("d=0: %v", p)
	}
}

func TestIsolationDecreasesWithDegree(t *testing.T) {
	prev := 2.0
	for d := 0; d <= 20; d++ {
		p := IsolationProbability(d, 0.5, 0.5)
		if p > prev {
			t.Fatalf("p_i not monotone at d=%d: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestCoverageLowerBound(t *testing.T) {
	// Identical degrees: bound = 1 - N*p_i.
	degrees := make([]int, 100)
	for i := range degrees {
		degrees[i] = 10
	}
	pi := IsolationProbability(10, 0.5, 0.5)
	want := 1 - 100*pi
	if got := CoverageLowerBound(degrees, 0.5, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound %v, want %v", got, want)
	}
}

// TestPaperExampleDiscrepancy documents the Section IV-A.1 example: the
// paper claims Φ(G) ≥ 0.999 for N=1000, d=10, which matches 1 − N·2^{−2d}
// but NOT Equation (10) as written.
func TestPaperExampleDiscrepancy(t *testing.T) {
	paper := PaperRegularExample(1000, 10)
	if math.Abs(paper-0.99904632568359375) > 1e-12 {
		t.Fatalf("paper example = %v", paper)
	}
	if paper < 0.999 {
		t.Fatalf("paper example below the claimed 0.999: %v", paper)
	}
	// Equation (10) as printed gives a vacuous (negative) bound here.
	degrees := make([]int, 1000)
	for i := range degrees {
		degrees[i] = 10
	}
	eq10 := CoverageLowerBound(degrees, 0.5, 0.5)
	if eq10 > 0 {
		t.Fatalf("expected Eq.(10) to be vacuous for N=1000,d=10; got %v", eq10)
	}
}

func TestExpectedFullyCoveredFraction(t *testing.T) {
	degrees := []int{10, 10, 10, 10}
	want := 1 - IsolationProbability(10, 0.5, 0.5)
	if got := ExpectedFullyCoveredFraction(degrees, 0.5, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fraction %v, want %v", got, want)
	}
	if got := ExpectedFullyCoveredFraction(nil, 0.5, 0.5); got != 1 {
		t.Fatalf("empty fraction %v", got)
	}
}

func TestPDisclosePaperExample(t *testing.T) {
	// Section IV-A.3: l=3, d-regular with E[nl]=2l-1=5, px=0.1 gives
	// P = 1-(1-1e-3)(1-1e-7) ~= 0.001.
	p := PDiscloseRegular(0.1, 3)
	if math.Abs(p-0.001) > 2e-4 {
		t.Fatalf("P_disclose(0.1) = %v, paper says ~0.001", p)
	}
}

func TestPDiscloseMonotoneInPx(t *testing.T) {
	prev := -1.0
	for px := 0.01; px <= 0.5; px += 0.01 {
		p := PDisclose(px, 2, 3)
		if p < prev {
			t.Fatalf("P_disclose not monotone at px=%v", px)
		}
		prev = p
	}
}

func TestPDiscloseDecreasesWithL(t *testing.T) {
	// Figure 5: l=3 curves sit below l=2 curves.
	for _, px := range []float64{0.02, 0.05, 0.1} {
		p2 := PDiscloseRegular(px, 2)
		p3 := PDiscloseRegular(px, 3)
		if p3 >= p2 {
			t.Fatalf("px=%v: l=3 (%v) not below l=2 (%v)", px, p3, p2)
		}
	}
}

func TestPDiscloseNetworkDensityInsensitive(t *testing.T) {
	// Figure 5's observation: P_disclose barely moves between average
	// degree 7 and 17. Build deployments matching those densities
	// (1000 nodes; field side chosen to hit the degree) and compare.
	r := rng.New(1)
	build := func(side float64) *topology.Network {
		net, err := topology.Random(topology.Config{Nodes: 1000, FieldSide: side, Range: 50}, r.Split(uint64(side)))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	// Analytic degree = N*pi*r^2/side^2: degree 7 -> side ~ 1058,
	// degree 17 -> side ~ 680.
	sparse := build(1058)
	dense := build(680)
	for _, l := range []int{2, 3} {
		ps := PDiscloseNetwork(sparse, 0.1, l)
		pd := PDiscloseNetwork(dense, 0.1, l)
		if ps <= 0 || pd <= 0 {
			t.Fatalf("degenerate P_disclose: %v %v", ps, pd)
		}
		if ratio := ps / pd; ratio < 0.3 || ratio > 3.5 {
			t.Fatalf("l=%d: density sensitivity too strong: sparse %v vs dense %v", l, ps, pd)
		}
	}
}

func TestExpectedIncomingLinksRegular(t *testing.T) {
	// In a d-regular graph, E[nl] = d*(2l-1)/d = 2l-1.
	net, err := topology.Regular(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 2, 3} {
		got := ExpectedIncomingLinks(net, 5, l)
		want := float64(2*l - 1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("l=%d: E[nl] = %v, want %v", l, got, want)
		}
	}
}

func TestOverheadRatio(t *testing.T) {
	if OverheadRatio(1) != 1.5 || OverheadRatio(2) != 2.5 || OverheadRatio(3) != 3.5 {
		t.Fatal("overhead ratios wrong")
	}
	tag, ipda := MessagesPerNode(2)
	if tag != 2 || ipda != 5 {
		t.Fatalf("messages per node = %d/%d", tag, ipda)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative degree": func() { IsolationProbability(-1, 0.5, 0.5) },
		"l zero":          func() { PDisclose(0.1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
