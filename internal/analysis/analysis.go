// Package analysis implements the closed-form results of Section IV-A of
// the paper: the aggregation-tree coverage bound (Equations 7–10), the
// privacy-preservation capacity P_disclose (Equation 11 and Figure 5), and
// the communication-overhead ratio of Section IV-A.2.
//
// One discrepancy is worth flagging: the paper's d-regular coverage
// example claims "Φ(G) ≥ 1 − N(1 − 1/2^{2d})", and that Φ(G) ≥ 0.999 for
// N = 1000, d = 10. As printed, the bound is vacuous (deeply negative).
// Equation (9) with p_r = p_b = 1/2 gives p_i = 2·2^{−d} − 2^{−2d}, so the
// Markov bound of Equation (10) is 1 − N(2·2^{−d} − 2^{−2d}) ≈ −0.95 for
// those parameters — also not 0.999. The figure 0.999 matches
// 1 − N·2^{−2d}, i.e. treating a node as lost only when it is isolated
// from BOTH trees. We implement Equation (9)/(10) faithfully
// (CoverageLowerBound) and the example the paper evidently intended
// (PaperRegularExample), and flag the difference here and in
// EXPERIMENTS.md.
package analysis

import (
	"math"

	"github.com/ipda-sim/ipda/internal/topology"
)

// IsolationProbability returns p_i of Equation (9): the probability that a
// node of degree d ends up without a red neighbor or without a blue
// neighbor when each neighbor independently turns red with probability pr
// and blue with probability pb.
func IsolationProbability(d int, pr, pb float64) float64 {
	if d < 0 {
		panic("analysis: negative degree")
	}
	noRed := math.Pow(pb, float64(d))  // all neighbors blue => no red
	noBlue := math.Pow(pr, float64(d)) // all neighbors red => no blue
	return 1 - (1-noRed)*(1-noBlue)
}

// CoverageLowerBound returns the Markov bound of Equation (10) on Φ(G),
// the probability that every node reaches both trees: 1 − Σ_i p_i. It can
// be negative for sparse networks, in which case the bound is vacuous.
func CoverageLowerBound(degrees []int, pr, pb float64) float64 {
	sum := 0.0
	for _, d := range degrees {
		sum += IsolationProbability(d, pr, pb)
	}
	return 1 - sum
}

// CoverageLowerBoundNetwork applies CoverageLowerBound to the degree
// sequence of a deployed network (excluding the base station, which is on
// both trees by definition).
func CoverageLowerBoundNetwork(net *topology.Network, pr, pb float64) float64 {
	degrees := make([]int, 0, net.N()-1)
	for i := 1; i < net.N(); i++ {
		degrees = append(degrees, net.Degree(topology.NodeID(i)))
	}
	return CoverageLowerBound(degrees, pr, pb)
}

// ExpectedFullyCoveredFraction returns E[fraction of nodes with both
// colors in reach] = 1 − mean_i p_i — the quantity Figure 8(a) actually
// plots (unlike Φ(G), this is never vacuous).
func ExpectedFullyCoveredFraction(degrees []int, pr, pb float64) float64 {
	if len(degrees) == 0 {
		return 1
	}
	sum := 0.0
	for _, d := range degrees {
		sum += IsolationProbability(d, pr, pb)
	}
	return 1 - sum/float64(len(degrees))
}

// PaperRegularExample returns the d-regular coverage figure the paper's
// Section IV-A.1 example evidently computes: 1 − N·2^{−2d}, the
// probability bound when a node counts as lost only if isolated from both
// trees simultaneously. For N = 1000, d = 10 this is 0.99905 — the
// "Φ(G) ≥ 0.999" of the paper.
func PaperRegularExample(n, d int) float64 {
	return 1 - float64(n)*math.Pow(2, -2*float64(d))
}

// ExpectedIncomingLinks returns E[nl(i)] of Section IV-A.3: the expected
// number of slice transmissions node i receives, Σ_{j∈Nbr(i)} (2l−1)/d_j,
// assuming every neighbor slices 2l−1 transmissions uniformly over its own
// neighborhood.
func ExpectedIncomingLinks(net *topology.Network, i topology.NodeID, l int) float64 {
	sum := 0.0
	for _, j := range net.Neighbors(i) {
		dj := net.Degree(j)
		if dj == 0 {
			continue
		}
		sum += float64(2*l-1) / float64(dj)
	}
	return sum
}

// PDisclose returns Equation (11): the probability that a node's reading
// is disclosed to an adversary who breaks each link independently with
// probability px, when the node slices into l pieces and expects
// expectedIncoming incoming slice links.
//
//	P = 1 − (1 − px^l)(1 − px^{l−1+E[nl]})
func PDisclose(px float64, l int, expectedIncoming float64) float64 {
	if l < 1 {
		panic("analysis: l must be >= 1")
	}
	a := math.Pow(px, float64(l))
	b := math.Pow(px, float64(l-1)+expectedIncoming)
	return 1 - (1-a)*(1-b)
}

// PDiscloseRegular returns Equation (11) specialized to a d-regular
// network (d >> l), where E[nl(i)] = 2l−1. The paper's running example:
// l = 3, d = 10, px = 0.1 gives ~0.001.
func PDiscloseRegular(px float64, l int) float64 {
	return PDisclose(px, l, float64(2*l-1))
}

// PDiscloseNetwork returns the network average of Equation (11) over all
// non-base-station nodes — the quantity Figure 5 plots.
func PDiscloseNetwork(net *topology.Network, px float64, l int) float64 {
	if net.N() <= 1 {
		return 0
	}
	sum := 0.0
	for i := 1; i < net.N(); i++ {
		sum += PDisclose(px, l, ExpectedIncomingLinks(net, topology.NodeID(i), l))
	}
	return sum / float64(net.N()-1)
}

// OverheadRatio returns the iPDA/TAG message-count ratio of Section
// IV-A.2: (2l+1)/2. TAG sends 2 messages per node per query, iPDA sends
// 2l+1 (HELLO + 2l−1 slices + aggregate).
func OverheadRatio(l int) float64 {
	return float64(2*l+1) / 2
}

// MessagesPerNode returns the per-query message counts of Figure 4:
// TAG = 2, iPDA = 2l+1.
func MessagesPerNode(l int) (tag, ipda int) {
	return 2, 2*l + 1
}
