// Package linksec implements the link-level encryption iPDA's slicing phase
// requires (Section III-C) and the key-management schemes it can be built
// on.
//
// The paper deliberately leaves key management pluggable: "One of the
// merits of iPDA scheme is that it can be built on top of any key
// management scheme." We provide the two families the paper discusses:
//
//   - Pairwise keys: every pair of neighbors derives a unique key from a
//     master secret. Only compromising an endpoint exposes a link.
//   - Random key predistribution (Eschenauer–Gligor, ref. [13] of the
//     paper): each node holds a random ring of key IDs from a global pool;
//     neighbors communicate under a common ring key. A third node holding
//     the same pool key can decrypt the link — the first privacy-violation
//     path of Section IV-A.3.
//
// Payload encryption is an authenticated 8-byte stream cipher built from
// SHA-256 as a PRF — small, stdlib-only, and honest about what it models:
// confidentiality and integrity of a 64-bit additive share per frame.
package linksec

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// KeySize is the size of derived link keys in bytes.
const KeySize = 16

// Key is a symmetric link key.
type Key [KeySize]byte

// Scheme is a key-management scheme: it answers whether two nodes share a
// key and what it is.
type Scheme interface {
	// SharedKey returns the key nodes a and b use on their link, or
	// ok=false if the scheme gives them no common key (in which case the
	// pair cannot exchange encrypted slices).
	SharedKey(a, b topology.NodeID) (key Key, ok bool)
}

// prf derives 32 pseudo-random bytes from the labeled inputs.
func prf(label string, parts ...uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte(label))
	var buf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(buf[:], p)
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Pairwise is a pairwise master-secret scheme: every unordered node pair
// derives a unique key. It is stateless and safe for concurrent use.
type Pairwise struct {
	master uint64
}

// NewPairwise creates a pairwise scheme from a master secret.
func NewPairwise(master uint64) *Pairwise { return &Pairwise{master: master} }

// SharedKey implements Scheme. Every pair shares a key.
func (p *Pairwise) SharedKey(a, b topology.NodeID) (Key, bool) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	d := prf("pairwise", p.master, uint64(uint32(lo)), uint64(uint32(hi)))
	var k Key
	copy(k[:], d[:KeySize])
	return k, true
}

// RandomPredist is the Eschenauer–Gligor random key predistribution
// scheme: a pool of PoolSize keys, RingSize random distinct key IDs per
// node. Two nodes use the smallest common key ID.
type RandomPredist struct {
	master   uint64
	poolSize int
	rings    [][]int32 // sorted ring of key IDs per node
}

// NewRandomPredist draws a key ring for each of n nodes. RingSize must not
// exceed poolSize.
func NewRandomPredist(n, poolSize, ringSize int, master uint64, r *rng.Stream) (*RandomPredist, error) {
	if poolSize <= 0 || ringSize <= 0 || ringSize > poolSize {
		return nil, fmt.Errorf("linksec: invalid pool/ring sizes %d/%d", poolSize, ringSize)
	}
	s := &RandomPredist{master: master, poolSize: poolSize, rings: make([][]int32, n)}
	for i := range s.rings {
		ids := r.Sample(poolSize, ringSize)
		ring := make([]int32, len(ids))
		for k, id := range ids {
			ring[k] = int32(id)
		}
		sortInt32(ring)
		s.rings[i] = ring
	}
	return s, nil
}

func sortInt32(xs []int32) {
	// Insertion sort: rings are small (tens of entries).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// commonKeyID returns the smallest key ID in both sorted rings, or -1.
func commonKeyID(a, b []int32) int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// SharedKey implements Scheme: ok is false when the rings do not intersect.
func (s *RandomPredist) SharedKey(a, b topology.NodeID) (Key, bool) {
	id := commonKeyID(s.rings[a], s.rings[b])
	if id < 0 {
		return Key{}, false
	}
	return s.poolKey(id), true
}

func (s *RandomPredist) poolKey(id int32) Key {
	d := prf("pool", s.master, uint64(uint32(id)))
	var k Key
	copy(k[:], d[:KeySize])
	return k
}

// Holds reports whether node c's ring contains the key a and b use — i.e.
// whether c can passively decrypt the a–b link, the first privacy
// violation path of Section IV-A.3.
func (s *RandomPredist) Holds(c, a, b topology.NodeID) bool {
	id := commonKeyID(s.rings[a], s.rings[b])
	if id < 0 {
		return false
	}
	ring := s.rings[c]
	for _, x := range ring {
		if x == id {
			return true
		}
		if x > id {
			return false
		}
	}
	return false
}

// ConnectProbability returns the analytic probability that two nodes share
// at least one key: 1 - C(P-m, m)/C(P, m), computed in log space.
func ConnectProbability(poolSize, ringSize int) float64 {
	if ringSize*2 > poolSize {
		return 1
	}
	// C(P-m,m)/C(P,m) = prod_{i=0}^{m-1} (P-m-i)/(P-i)
	p := 1.0
	for i := 0; i < ringSize; i++ {
		p *= float64(poolSize-ringSize-i) / float64(poolSize-i)
	}
	return 1 - p
}

// ThirdPartyDecryptProbability returns the analytic probability that a
// random third node holds one specific pool key: m/P. This is the per-link
// eavesdrop probability p_x induced by random key predistribution.
func ThirdPartyDecryptProbability(poolSize, ringSize int) float64 {
	return float64(ringSize) / float64(poolSize)
}

// QComposite is the q-composite variant of random key predistribution
// (Chan, Perrig, Song — the hardening of ref. [14] of the paper): two
// nodes derive a link key only when their rings share at least q pool
// keys, and the link key is a hash over ALL shared keys. An eavesdropper
// must hold every shared key to decrypt the link, which sharply reduces
// the per-link exposure p_x at a modest connectivity cost.
type QComposite struct {
	inner *RandomPredist
	q     int
}

// NewQComposite wraps a random-predistribution ring assignment with the
// q-composite rule. q must be at least 1.
func NewQComposite(n, poolSize, ringSize, q int, master uint64, r *rng.Stream) (*QComposite, error) {
	if q < 1 {
		return nil, fmt.Errorf("linksec: q must be >= 1, got %d", q)
	}
	inner, err := NewRandomPredist(n, poolSize, ringSize, master, r)
	if err != nil {
		return nil, err
	}
	return &QComposite{inner: inner, q: q}, nil
}

// sharedIDs returns all pool-key IDs common to both sorted rings.
func sharedIDs(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// SharedKey implements Scheme: ok is false when fewer than q pool keys are
// shared; otherwise the link key hashes every shared key together.
func (s *QComposite) SharedKey(a, b topology.NodeID) (Key, bool) {
	ids := sharedIDs(s.inner.rings[a], s.inner.rings[b])
	if len(ids) < s.q {
		return Key{}, false
	}
	h := sha256.New()
	h.Write([]byte("qcomposite"))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s.inner.master)
	h.Write(buf[:])
	for _, id := range ids {
		k := s.inner.poolKey(id)
		h.Write(k[:])
	}
	var k Key
	copy(k[:], h.Sum(nil)[:KeySize])
	return k, true
}

// Holds reports whether node c's ring contains EVERY pool key the a–b
// link key is built from — the q-composite passive-decryption condition.
func (s *QComposite) Holds(c, a, b topology.NodeID) bool {
	ids := sharedIDs(s.inner.rings[a], s.inner.rings[b])
	if len(ids) < s.q {
		return false
	}
	ring := s.inner.rings[c]
	for _, id := range ids {
		found := false
		for _, x := range ring {
			if x == id {
				found = true
				break
			}
			if x > id {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Sealed is an encrypted, authenticated 8-byte payload.
type Sealed struct {
	Cipher [8]byte
	Nonce  uint32
	Tag    uint32
}

// ErrAuth is returned when a sealed payload fails authentication.
var ErrAuth = errors.New("linksec: authentication failed")

// Seal encrypts an int64 additive share under key with the given nonce.
// Nonces must be unique per key; the protocol uses (round, sender, index).
func Seal(key Key, nonce uint32, value int64) Sealed {
	ks := prf("stream", binary.BigEndian.Uint64(key[:8]), binary.BigEndian.Uint64(key[8:]), uint64(nonce))
	var out Sealed
	out.Nonce = nonce
	binary.BigEndian.PutUint64(out.Cipher[:], uint64(value)^binary.BigEndian.Uint64(ks[:8]))
	out.Tag = tag(key, nonce, out.Cipher)
	return out
}

// Open decrypts and authenticates a sealed payload.
func Open(key Key, s Sealed) (int64, error) {
	if tag(key, s.Nonce, s.Cipher) != s.Tag {
		return 0, ErrAuth
	}
	ks := prf("stream", binary.BigEndian.Uint64(key[:8]), binary.BigEndian.Uint64(key[8:]), uint64(s.Nonce))
	return int64(binary.BigEndian.Uint64(s.Cipher[:]) ^ binary.BigEndian.Uint64(ks[:8])), nil
}

func tag(key Key, nonce uint32, cipher [8]byte) uint32 {
	d := prf("tag",
		binary.BigEndian.Uint64(key[:8]),
		binary.BigEndian.Uint64(key[8:]),
		uint64(nonce),
		binary.BigEndian.Uint64(cipher[:]))
	return binary.BigEndian.Uint32(d[:4])
}

// PRF labels, precomputed so the hot path writes constant byte slices.
var (
	streamLabel = []byte("stream")
	tagLabel    = []byte("tag")
)

// SealedSize is the wire length of one sealed share as produced by
// Cipher.EncryptTo: 8-byte ciphertext, 4-byte nonce, 4-byte tag.
const SealedSize = 16

// ErrShort is returned when a wire buffer is too small to hold a sealed
// share.
var ErrShort = errors.New("linksec: sealed payload truncated")

// Cipher is a reusable sealing state bound to one link key. It produces
// output byte-identical to the package-level Seal/Open but keeps one
// SHA-256 hasher and scratch buffer alive across calls, so steady-state
// sealing performs no allocation. A Cipher is not safe for concurrent use;
// protocol instances hold one per link (see CipherCache).
type Cipher struct {
	key Key
	h   hash.Hash
	// Staging buffers for words written to h: arrays passed to an
	// interface method would escape to the heap each call, so the hot path
	// stages them in the (already heap-resident) Cipher instead.
	word    [8]byte
	ct      [8]byte
	scratch [sha256.Size]byte
}

// NewCipher creates a reusable cipher state for key.
func NewCipher(key Key) *Cipher {
	return &Cipher{key: key, h: sha256.New()}
}

// Key returns the link key this cipher seals under.
func (c *Cipher) Key() Key { return c.key }

// writeU64 feeds one big-endian word to the hasher without allocating.
func (c *Cipher) writeU64(v uint64) {
	binary.BigEndian.PutUint64(c.word[:], v)
	c.h.Write(c.word[:])
}

// keystream returns the 8 keystream bytes for nonce as a uint64.
func (c *Cipher) keystream(nonce uint32) uint64 {
	c.h.Reset()
	c.h.Write(streamLabel)
	c.h.Write(c.key[:])
	c.writeU64(uint64(nonce))
	return binary.BigEndian.Uint64(c.h.Sum(c.scratch[:0])[:8])
}

// tagOf computes the truncated authentication tag over a ciphertext.
func (c *Cipher) tagOf(nonce uint32, cipher [8]byte) uint32 {
	c.h.Reset()
	c.h.Write(tagLabel)
	c.h.Write(c.key[:])
	c.writeU64(uint64(nonce))
	c.ct = cipher
	c.h.Write(c.ct[:])
	return binary.BigEndian.Uint32(c.h.Sum(c.scratch[:0])[:4])
}

// Seal encrypts an int64 additive share, exactly as the package-level Seal
// but without per-call hasher construction.
func (c *Cipher) Seal(nonce uint32, value int64) Sealed {
	var out Sealed
	out.Nonce = nonce
	binary.BigEndian.PutUint64(out.Cipher[:], uint64(value)^c.keystream(nonce))
	out.Tag = c.tagOf(nonce, out.Cipher)
	return out
}

// Open decrypts and authenticates a sealed payload.
func (c *Cipher) Open(s Sealed) (int64, error) {
	if c.tagOf(s.Nonce, s.Cipher) != s.Tag {
		return 0, ErrAuth
	}
	return int64(binary.BigEndian.Uint64(s.Cipher[:]) ^ c.keystream(s.Nonce)), nil
}

// EncryptTo seals value under nonce and appends the SealedSize-byte wire
// encoding to dst, returning the extended slice. Steady-state calls with
// sufficient capacity in dst perform no allocation.
func (c *Cipher) EncryptTo(dst []byte, nonce uint32, value int64) []byte {
	ct := uint64(value) ^ c.keystream(nonce)
	var cipher [8]byte
	binary.BigEndian.PutUint64(cipher[:], ct)
	dst = append(dst, cipher[:]...)
	dst = binary.BigEndian.AppendUint32(dst, nonce)
	return binary.BigEndian.AppendUint32(dst, c.tagOf(nonce, cipher))
}

// DecryptTo authenticates and decrypts the sealed share at the front of
// src (the wire form EncryptTo appends) without allocating.
func (c *Cipher) DecryptTo(src []byte) (int64, error) {
	if len(src) < SealedSize {
		return 0, ErrShort
	}
	var s Sealed
	copy(s.Cipher[:], src[:8])
	s.Nonce = binary.BigEndian.Uint32(src[8:12])
	s.Tag = binary.BigEndian.Uint32(src[12:16])
	return c.Open(s)
}

// CipherCache memoizes one reusable Cipher per link over a key-management
// Scheme, so per-round sealing reuses hasher state instead of re-deriving
// keys and rebuilding hashers per share. Negative lookups (pairs the
// scheme gives no key) are memoized too. Not safe for concurrent use.
type CipherCache struct {
	scheme Scheme
	links  map[uint64]*Cipher // nil value = no shared key
	free   []*Cipher          // retired ciphers, rebound on demand
}

// NewCipherCache creates an empty cache over scheme.
func NewCipherCache(scheme Scheme) *CipherCache {
	return &CipherCache{scheme: scheme, links: make(map[uint64]*Cipher)}
}

// Reset rebinds the cache to a new scheme and empties it, retiring every
// cached Cipher into a free pool instead of dropping it: the next run's
// Link calls pop a pooled cipher and rebind its key rather than building a
// fresh SHA-256 hasher per link. A Cipher's observable behavior is a pure
// function of its current key (every operation starts with a hasher reset),
// so which pooled cipher serves which link never shows in the output. The
// map's buckets survive the clear, so steady-state lookups stop allocating.
func (cc *CipherCache) Reset(scheme Scheme) {
	cc.scheme = scheme
	for _, c := range cc.links {
		if c != nil {
			cc.free = append(cc.free, c)
		}
	}
	clear(cc.links)
}

// Link returns the cipher for the a–b link, or ok=false when the scheme
// gives the pair no key. Both orientations share one cipher.
func (cc *CipherCache) Link(a, b topology.NodeID) (*Cipher, bool) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	id := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	if c, seen := cc.links[id]; seen {
		return c, c != nil
	}
	key, ok := cc.scheme.SharedKey(a, b)
	if !ok {
		cc.links[id] = nil
		return nil, false
	}
	var c *Cipher
	if n := len(cc.free); n > 0 {
		c = cc.free[n-1]
		cc.free[n-1] = nil
		cc.free = cc.free[:n-1]
		c.key = key
	} else {
		c = NewCipher(key)
	}
	cc.links[id] = c
	return c, true
}
