// Package linksec implements the link-level encryption iPDA's slicing phase
// requires (Section III-C) and the key-management schemes it can be built
// on.
//
// The paper deliberately leaves key management pluggable: "One of the
// merits of iPDA scheme is that it can be built on top of any key
// management scheme." We provide the two families the paper discusses:
//
//   - Pairwise keys: every pair of neighbors derives a unique key from a
//     master secret. Only compromising an endpoint exposes a link.
//   - Random key predistribution (Eschenauer–Gligor, ref. [13] of the
//     paper): each node holds a random ring of key IDs from a global pool;
//     neighbors communicate under a common ring key. A third node holding
//     the same pool key can decrypt the link — the first privacy-violation
//     path of Section IV-A.3.
//
// Payload encryption is an authenticated 8-byte stream cipher with two
// interchangeable keystream suites (see Suite): the default batched
// AES-CTR engine — a single-key Even–Mansour cipher over one shared AES
// permutation, so crypto/aes uses hardware AES instructions where present
// while rekeying a link costs only a 16-byte key copy — and the original
// SHA-256-PRF construction kept as a byte-exact compat mode. Either way
// the model is the same and honest: confidentiality and integrity of a
// 64-bit additive share per frame.
package linksec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// KeySize is the size of derived link keys in bytes.
const KeySize = 16

// Key is a symmetric link key.
type Key [KeySize]byte

// Suite selects the keystream/tag primitive a Cipher seals with. The wire
// format (Sealed, SealedSize) is suite-independent; only the ciphertext
// and tag bytes differ. Protocol results never depend on those bytes —
// frame sizes are fixed and authentication failures occur only under
// active tampering — so switching suites re-blesses no experiment table.
type Suite uint8

const (
	// SuiteAESCTR is the default hot path: AES-CTR keystream (one block
	// encrypts the nonce pair 2k, 2k+1) with a single-block AES-PRF tag,
	// both served from a per-link keystream-block cache. The per-link
	// cipher is single-key Even–Mansour over one process-wide AES
	// permutation, EM_K(x) = K ⊕ AES_π(x ⊕ K) with π fixed and public —
	// so every link shares the one expanded round-key schedule and
	// rekeying is a plain key copy, which is what keeps arena-pooled
	// trials with fresh key material allocation-free.
	SuiteAESCTR Suite = iota
	// SuiteSHA256 is the original SHA-256-PRF construction, kept as a
	// compat mode byte-identical to the package-level Seal/Open.
	SuiteSHA256
)

// String returns the flag spelling of the suite.
func (s Suite) String() string {
	switch s {
	case SuiteAESCTR:
		return "aes"
	case SuiteSHA256:
		return "sha256"
	default:
		return fmt.Sprintf("Suite(%d)", uint8(s))
	}
}

// ParseSuite parses a -cipher flag value.
func ParseSuite(name string) (Suite, error) {
	switch name {
	case "aes", "aes-ctr", "aesctr":
		return SuiteAESCTR, nil
	case "sha256", "sha-256":
		return SuiteSHA256, nil
	default:
		return 0, fmt.Errorf("linksec: unknown cipher suite %q (want aes or sha256)", name)
	}
}

// Scheme is a key-management scheme: it answers whether two nodes share a
// key and what it is.
type Scheme interface {
	// SharedKey returns the key nodes a and b use on their link, or
	// ok=false if the scheme gives them no common key (in which case the
	// pair cannot exchange encrypted slices).
	SharedKey(a, b topology.NodeID) (key Key, ok bool)
}

// KeyChecker is an optional Scheme refinement: HasKey answers whether a
// pair shares a key without deriving it. Target selection probes every
// neighbor pair per trial but seals on only a few links per node, so a
// scheme that can answer the existence question from its combinatorial
// structure alone (all three shipped schemes can) keeps key derivation
// off the probe path entirely.
type KeyChecker interface {
	HasKey(a, b topology.NodeID) bool
}

// prf derives 32 pseudo-random bytes from the labeled inputs.
func prf(label string, parts ...uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte(label))
	var buf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(buf[:], p)
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Pairwise is a pairwise master-secret scheme: every unordered node pair
// derives a unique key. It is stateless and safe for concurrent use.
type Pairwise struct {
	master uint64
}

// NewPairwise creates a pairwise scheme from a master secret.
func NewPairwise(master uint64) *Pairwise { return &Pairwise{master: master} }

// HasKey implements KeyChecker: every pair shares a key, no derivation
// needed.
func (p *Pairwise) HasKey(a, b topology.NodeID) bool { return true }

// SharedKey implements Scheme. Every pair shares a key.
func (p *Pairwise) SharedKey(a, b topology.NodeID) (Key, bool) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	d := prf("pairwise", p.master, uint64(uint32(lo)), uint64(uint32(hi)))
	var k Key
	copy(k[:], d[:KeySize])
	return k, true
}

// EraScheme derives era-qualified link keys over an inner scheme. The
// protocol engines carry only the low 16 bits of their cumulative round
// counter in the wire nonce, so a long-running network would repeat
// (key, nonce) pairs every 65,536 rounds — keystream reuse under the AES
// suite. Instead of widening the wire format, the engines rotate the key
// era whenever the counter crosses a 16-bit boundary: every link key is
// re-derived from (inner key, era), which re-partitions the nonce space
// by construction. Which pairs share a key is decided entirely by the
// inner scheme, so target selection and rng draw order never depend on
// the era.
type EraScheme struct {
	Inner Scheme
	Era   uint64
}

// EraKeys returns the scheme engines seal with during key era `era`:
// era 0 is the inner scheme unchanged (the first 65,536 rounds seal
// exactly as a short-lived deployment always has), later eras wrap it.
func EraKeys(inner Scheme, era uint64) Scheme {
	if era == 0 {
		return inner
	}
	return EraScheme{Inner: inner, Era: era}
}

// HasKey implements KeyChecker by delegation: era rotation never changes
// which pairs share a key.
func (s EraScheme) HasKey(a, b topology.NodeID) bool {
	if kc, ok := s.Inner.(KeyChecker); ok {
		return kc.HasKey(a, b)
	}
	_, ok := s.Inner.SharedKey(a, b)
	return ok
}

// SharedKey implements Scheme: the inner key, re-derived under the era.
func (s EraScheme) SharedKey(a, b topology.NodeID) (Key, bool) {
	k, ok := s.Inner.SharedKey(a, b)
	if !ok {
		return Key{}, false
	}
	d := prf("era", s.Era, binary.BigEndian.Uint64(k[:8]), binary.BigEndian.Uint64(k[8:]))
	var out Key
	copy(out[:], d[:KeySize])
	return out, true
}

// RandomPredist is the Eschenauer–Gligor random key predistribution
// scheme: a pool of PoolSize keys, RingSize random distinct key IDs per
// node. Two nodes use the smallest common key ID.
type RandomPredist struct {
	master   uint64
	poolSize int
	rings    [][]int32 // sorted ring of key IDs per node
}

// NewRandomPredist draws a key ring for each of n nodes. RingSize must not
// exceed poolSize.
func NewRandomPredist(n, poolSize, ringSize int, master uint64, r *rng.Stream) (*RandomPredist, error) {
	if poolSize <= 0 || ringSize <= 0 || ringSize > poolSize {
		return nil, fmt.Errorf("linksec: invalid pool/ring sizes %d/%d", poolSize, ringSize)
	}
	s := &RandomPredist{master: master, poolSize: poolSize, rings: make([][]int32, n)}
	for i := range s.rings {
		ids := r.Sample(poolSize, ringSize)
		ring := make([]int32, len(ids))
		for k, id := range ids {
			ring[k] = int32(id)
		}
		sortInt32(ring)
		s.rings[i] = ring
	}
	return s, nil
}

func sortInt32(xs []int32) {
	// Insertion sort: rings are small (tens of entries).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// commonKeyID returns the smallest key ID in both sorted rings, or -1.
func commonKeyID(a, b []int32) int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// HasKey implements KeyChecker: a ring intersection decides key
// existence without touching the key pool.
func (s *RandomPredist) HasKey(a, b topology.NodeID) bool {
	return commonKeyID(s.rings[a], s.rings[b]) >= 0
}

// SharedKey implements Scheme: ok is false when the rings do not intersect.
func (s *RandomPredist) SharedKey(a, b topology.NodeID) (Key, bool) {
	id := commonKeyID(s.rings[a], s.rings[b])
	if id < 0 {
		return Key{}, false
	}
	return s.poolKey(id), true
}

func (s *RandomPredist) poolKey(id int32) Key {
	d := prf("pool", s.master, uint64(uint32(id)))
	var k Key
	copy(k[:], d[:KeySize])
	return k
}

// Holds reports whether node c's ring contains the key a and b use — i.e.
// whether c can passively decrypt the a–b link, the first privacy
// violation path of Section IV-A.3.
func (s *RandomPredist) Holds(c, a, b topology.NodeID) bool {
	id := commonKeyID(s.rings[a], s.rings[b])
	if id < 0 {
		return false
	}
	ring := s.rings[c]
	for _, x := range ring {
		if x == id {
			return true
		}
		if x > id {
			return false
		}
	}
	return false
}

// ConnectProbability returns the analytic probability that two nodes share
// at least one key: 1 - C(P-m, m)/C(P, m), computed in log space.
func ConnectProbability(poolSize, ringSize int) float64 {
	if ringSize*2 > poolSize {
		return 1
	}
	// C(P-m,m)/C(P,m) = prod_{i=0}^{m-1} (P-m-i)/(P-i)
	p := 1.0
	for i := 0; i < ringSize; i++ {
		p *= float64(poolSize-ringSize-i) / float64(poolSize-i)
	}
	return 1 - p
}

// ThirdPartyDecryptProbability returns the analytic probability that a
// random third node holds one specific pool key: m/P. This is the per-link
// eavesdrop probability p_x induced by random key predistribution.
func ThirdPartyDecryptProbability(poolSize, ringSize int) float64 {
	return float64(ringSize) / float64(poolSize)
}

// QComposite is the q-composite variant of random key predistribution
// (Chan, Perrig, Song — the hardening of ref. [14] of the paper): two
// nodes derive a link key only when their rings share at least q pool
// keys, and the link key is a hash over ALL shared keys. An eavesdropper
// must hold every shared key to decrypt the link, which sharply reduces
// the per-link exposure p_x at a modest connectivity cost.
type QComposite struct {
	inner *RandomPredist
	q     int
}

// NewQComposite wraps a random-predistribution ring assignment with the
// q-composite rule. q must be at least 1.
func NewQComposite(n, poolSize, ringSize, q int, master uint64, r *rng.Stream) (*QComposite, error) {
	if q < 1 {
		return nil, fmt.Errorf("linksec: q must be >= 1, got %d", q)
	}
	inner, err := NewRandomPredist(n, poolSize, ringSize, master, r)
	if err != nil {
		return nil, err
	}
	return &QComposite{inner: inner, q: q}, nil
}

// countShared returns the number of pool-key IDs common to both sorted
// rings without materializing them.
func countShared(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// sharedIDs returns all pool-key IDs common to both sorted rings.
func sharedIDs(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// HasKey implements KeyChecker: the q-composite threshold is decided by
// counting ring overlap, with no key material derived.
func (s *QComposite) HasKey(a, b topology.NodeID) bool {
	return countShared(s.inner.rings[a], s.inner.rings[b]) >= s.q
}

// SharedKey implements Scheme: ok is false when fewer than q pool keys are
// shared; otherwise the link key hashes every shared key together.
func (s *QComposite) SharedKey(a, b topology.NodeID) (Key, bool) {
	ids := sharedIDs(s.inner.rings[a], s.inner.rings[b])
	if len(ids) < s.q {
		return Key{}, false
	}
	h := sha256.New()
	h.Write([]byte("qcomposite"))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s.inner.master)
	h.Write(buf[:])
	for _, id := range ids {
		k := s.inner.poolKey(id)
		h.Write(k[:])
	}
	var k Key
	copy(k[:], h.Sum(nil)[:KeySize])
	return k, true
}

// Holds reports whether node c's ring contains EVERY pool key the a–b
// link key is built from — the q-composite passive-decryption condition.
func (s *QComposite) Holds(c, a, b topology.NodeID) bool {
	ids := sharedIDs(s.inner.rings[a], s.inner.rings[b])
	if len(ids) < s.q {
		return false
	}
	ring := s.inner.rings[c]
	for _, id := range ids {
		found := false
		for _, x := range ring {
			if x == id {
				found = true
				break
			}
			if x > id {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Sealed is an encrypted, authenticated 8-byte payload.
type Sealed struct {
	Cipher [8]byte
	Nonce  uint32
	Tag    uint32
}

// ErrAuth is returned when a sealed payload fails authentication.
var ErrAuth = errors.New("linksec: authentication failed")

// Seal encrypts an int64 additive share under key with the given nonce.
// Nonces must be unique per key; the protocol uses (round, sender, index).
func Seal(key Key, nonce uint32, value int64) Sealed {
	ks := prf("stream", binary.BigEndian.Uint64(key[:8]), binary.BigEndian.Uint64(key[8:]), uint64(nonce))
	var out Sealed
	out.Nonce = nonce
	binary.BigEndian.PutUint64(out.Cipher[:], uint64(value)^binary.BigEndian.Uint64(ks[:8]))
	out.Tag = tag(key, nonce, out.Cipher)
	return out
}

// Open decrypts and authenticates a sealed payload.
func Open(key Key, s Sealed) (int64, error) {
	if tag(key, s.Nonce, s.Cipher) != s.Tag {
		return 0, ErrAuth
	}
	ks := prf("stream", binary.BigEndian.Uint64(key[:8]), binary.BigEndian.Uint64(key[8:]), uint64(s.Nonce))
	return int64(binary.BigEndian.Uint64(s.Cipher[:]) ^ binary.BigEndian.Uint64(ks[:8])), nil
}

func tag(key Key, nonce uint32, cipher [8]byte) uint32 {
	d := prf("tag",
		binary.BigEndian.Uint64(key[:8]),
		binary.BigEndian.Uint64(key[8:]),
		uint64(nonce),
		binary.BigEndian.Uint64(cipher[:]))
	return binary.BigEndian.Uint32(d[:4])
}

// PRF labels, precomputed so the hot path writes constant byte slices.
var (
	streamLabel = []byte("stream")
	tagLabel    = []byte("tag")
)

// SealedSize is the wire length of one sealed share as produced by
// Cipher.EncryptTo: 8-byte ciphertext, 4-byte nonce, 4-byte tag.
const SealedSize = 16

// ErrShort is returned when a wire buffer is too small to hold a sealed
// share.
var ErrShort = errors.New("linksec: sealed payload truncated")

// ksSlots is the size of the per-Cipher direct-mapped keystream-block
// cache. Slice nonces are round<<8 | dir<<7 | idx, so a block counter
// ctr = nonce>>1 carries the direction bit at bit 6 and idx>>1 in its low
// bits; the slot map gives each direction its own half of the cache and
// covers idx 0..7 without conflict — the paper's operating points use
// idx 0..3. Rounds alias (the round bits are above the slot map), which
// is why Cipher.Warm only ever runs one round ahead: blocks warmed for
// the next round land in exactly the slots that round will read, with no
// intervening traffic to evict them. Collisions only cost a recompute.
// Kept small deliberately: arena-pooled sweeps hold one Cipher per link
// of every deployment, so cache bytes multiply by hundreds of thousands
// of instances.
const ksSlots = 8

func ksSlot(ctr uint32) int { return int((ctr>>6)&1)<<2 | int(ctr&3) }

// AES block-input domain labels, as big-endian words. The CTR input
// starts "iPDA-CTR" and the tag input starts "iTAG", so keystream and tag
// blocks can never collide.
const (
	aesCTRLabel uint64 = 0x695044412d435452 // "iPDA-CTR"
	aesTagLabel uint64 = 0x69544147         // "iTAG", shifted above the nonce
)

// emPerm is the fixed, public AES-128 permutation π of the Even–Mansour
// construction every SuiteAESCTR cipher seals with. One expanded round-key
// schedule serves the whole process; per-link secrecy comes entirely from
// the pre/post-whitening link key. The key bytes below are a published
// constant, not a secret.
var emPerm cipher.Block

func init() {
	b, err := aes.NewCipher([]byte("iPDA-EM-fixed-pi"))
	if err != nil {
		// Unreachable: the constant is a valid AES-128 key length.
		panic(fmt.Sprintf("linksec: aes.NewCipher: %v", err))
	}
	emPerm = b
}

// Cipher is a reusable sealing state bound to one link key and suite. It
// keeps its primitive state (Even–Mansour whitening words or SHA-256
// hasher), scratch buffers, and a keystream-block cache alive across calls, so
// steady-state sealing performs no allocation and a Seal immediately
// followed by the matching Open — the common case, since one shared
// CipherCache serves both endpoints of a simulated link — reuses the
// keystream block instead of recomputing it. In SHA-256 compat mode the
// output is byte-identical to the package-level Seal/Open. A Cipher is not
// safe for concurrent use; protocol instances hold one per link (see
// CipherCache).
type Cipher struct {
	key   Key
	suite Suite

	// AES-CTR state: the shared Even–Mansour permutation, the link key as
	// two whitening words, and the direct-mapped keystream-block cache
	// (two 8-byte words per block, keyed by ctr = nonce>>1; ksTag stores
	// ctr+1 so the zero value means empty). Fixed arrays keep the cache
	// off the heap.
	block        cipher.Block
	keyLo, keyHi uint64
	ksTag        [ksSlots]uint32
	ksLo         [ksSlots]uint64
	ksHi         [ksSlots]uint64
	bin          [aes.BlockSize]byte
	bout         [aes.BlockSize]byte

	// SHA-256 compat state, allocated on first SHA use so the default
	// suite — whose instances number one per link per pooled arena —
	// doesn't carry hasher state it never touches.
	sha *shaState
}

// shaState is the SuiteSHA256 half of a Cipher: the hasher, a one-entry
// keystream memo serving the Seal→Open pattern the AES cache handles
// structurally, and staging buffers — arrays passed to an interface
// method would escape to the heap each call, so the hot path stages
// words in the (already heap-resident) state instead.
type shaState struct {
	h         hash.Hash
	memoNonce uint32
	memoOK    bool
	memoKS    uint64
	word      [8]byte
	ct        [8]byte
	scratch   [sha256.Size]byte
}

// NewCipher creates a reusable cipher state for key under the suite.
func NewCipher(suite Suite, key Key) *Cipher {
	c := &Cipher{suite: suite, key: key}
	c.initSuite()
	return c
}

// initSuite builds the primitive state the current suite needs. Nothing
// here allocates in steady state: the AES suite binds the shared
// permutation and splits the key into whitening words, and the SHA suite
// reuses any hasher the cipher already owns.
func (c *Cipher) initSuite() {
	c.keyLo = binary.BigEndian.Uint64(c.key[:8])
	c.keyHi = binary.BigEndian.Uint64(c.key[8:])
	switch c.suite {
	case SuiteAESCTR:
		c.block = emPerm
	default:
		if c.sha == nil {
			c.sha = &shaState{h: sha256.New()}
		}
	}
}

// rekey rebinds the cipher to (suite, key): a pure state update — key
// copy, whitening-word split, keystream-cache invalidation — with no
// primitive construction, since the AES suite's round-key schedule is the
// shared permutation's. When suite and key are unchanged the cached
// keystream blocks survive too. This is what makes CipherCache reuse
// across arena-pooled trials free even when every trial derives fresh key
// material.
func (c *Cipher) rekey(suite Suite, key Key) {
	if c.suite == suite && c.key == key {
		if suite == SuiteAESCTR && c.block != nil {
			return
		}
		if suite != SuiteAESCTR && c.sha != nil {
			return
		}
	}
	c.suite = suite
	c.key = key
	if c.sha != nil {
		c.sha.memoOK = false
	}
	clear(c.ksTag[:])
	c.initSuite()
}

// Key returns the link key this cipher seals under.
func (c *Cipher) Key() Key { return c.key }

// Suite returns the suite this cipher seals with.
func (c *Cipher) Suite() Suite { return c.suite }

// writeU64 feeds one big-endian word to the hasher without allocating.
func (s *shaState) writeU64(v uint64) {
	binary.BigEndian.PutUint64(s.word[:], v)
	s.h.Write(s.word[:])
}

// aesBlock returns the two keystream words of block counter ctr, serving
// repeats — the second seal of a nonce pair, the Open matching a Seal, an
// ARQ-retransmitted slice — from the direct-mapped cache.
func (c *Cipher) aesBlock(ctr uint32) (lo, hi uint64) {
	s := ksSlot(ctr)
	if c.ksTag[s] == ctr+1 {
		return c.ksLo[s], c.ksHi[s]
	}
	binary.BigEndian.PutUint64(c.bin[:8], aesCTRLabel^c.keyLo)
	binary.BigEndian.PutUint64(c.bin[8:16], uint64(ctr)^c.keyHi)
	c.block.Encrypt(c.bout[:], c.bin[:])
	lo = binary.BigEndian.Uint64(c.bout[:8]) ^ c.keyLo
	hi = binary.BigEndian.Uint64(c.bout[8:]) ^ c.keyHi
	c.ksTag[s] = ctr + 1
	c.ksLo[s], c.ksHi[s] = lo, hi
	return lo, hi
}

// Warm precomputes and caches the AES keystream block covering nonce, so
// a later Seal or Open of that nonce (or its pair partner 2k/2k+1) finds
// the block resident instead of running AES on the sealing path. Warming
// is pure cache population — it never changes what any Seal or Open
// returns — and is the primitive under the epoch-amortized precompute of
// the streaming pipeline: between epochs, every standing query's links
// warm the next round's blocks. It reports whether a block was actually
// computed; already-resident blocks and the SHA-256 suite (whose
// keystream is not block-cached) report false.
func (c *Cipher) Warm(nonce uint32) bool {
	if c.suite != SuiteAESCTR {
		return false
	}
	ctr := nonce >> 1
	if c.ksTag[ksSlot(ctr)] == ctr+1 {
		return false
	}
	c.aesBlock(ctr)
	return true
}

// keystream returns the 8 keystream bytes for nonce as a uint64.
func (c *Cipher) keystream(nonce uint32) uint64 {
	if c.suite == SuiteAESCTR {
		lo, hi := c.aesBlock(nonce >> 1)
		if nonce&1 == 1 {
			return hi
		}
		return lo
	}
	sh := c.sha
	if sh.memoOK && sh.memoNonce == nonce {
		return sh.memoKS
	}
	sh.h.Reset()
	sh.h.Write(streamLabel)
	sh.h.Write(c.key[:])
	sh.writeU64(uint64(nonce))
	ks := binary.BigEndian.Uint64(sh.h.Sum(sh.scratch[:0])[:8])
	sh.memoNonce, sh.memoOK, sh.memoKS = nonce, true, ks
	return ks
}

// tagOf computes the truncated authentication tag over a ciphertext.
func (c *Cipher) tagOf(nonce uint32, cipher [8]byte) uint32 {
	if c.suite == SuiteAESCTR {
		binary.BigEndian.PutUint64(c.bin[:8], (aesTagLabel<<32|uint64(nonce))^c.keyLo)
		binary.BigEndian.PutUint64(c.bin[8:16], binary.BigEndian.Uint64(cipher[:])^c.keyHi)
		c.block.Encrypt(c.bout[:], c.bin[:])
		return uint32((binary.BigEndian.Uint64(c.bout[:8]) ^ c.keyLo) >> 32)
	}
	sh := c.sha
	sh.h.Reset()
	sh.h.Write(tagLabel)
	sh.h.Write(c.key[:])
	sh.writeU64(uint64(nonce))
	sh.ct = cipher
	sh.h.Write(sh.ct[:])
	return binary.BigEndian.Uint32(sh.h.Sum(sh.scratch[:0])[:4])
}

// Seal encrypts an int64 additive share, exactly as the package-level Seal
// but without per-call hasher construction.
func (c *Cipher) Seal(nonce uint32, value int64) Sealed {
	var out Sealed
	out.Nonce = nonce
	binary.BigEndian.PutUint64(out.Cipher[:], uint64(value)^c.keystream(nonce))
	out.Tag = c.tagOf(nonce, out.Cipher)
	return out
}

// Open decrypts and authenticates a sealed payload.
func (c *Cipher) Open(s Sealed) (int64, error) {
	if c.tagOf(s.Nonce, s.Cipher) != s.Tag {
		return 0, ErrAuth
	}
	return int64(binary.BigEndian.Uint64(s.Cipher[:]) ^ c.keystream(s.Nonce)), nil
}

// EncryptTo seals value under nonce and appends the SealedSize-byte wire
// encoding to dst, returning the extended slice. Steady-state calls with
// sufficient capacity in dst perform no allocation.
func (c *Cipher) EncryptTo(dst []byte, nonce uint32, value int64) []byte {
	ct := uint64(value) ^ c.keystream(nonce)
	var cipher [8]byte
	binary.BigEndian.PutUint64(cipher[:], ct)
	dst = append(dst, cipher[:]...)
	dst = binary.BigEndian.AppendUint32(dst, nonce)
	return binary.BigEndian.AppendUint32(dst, c.tagOf(nonce, cipher))
}

// DecryptTo authenticates and decrypts the sealed share at the front of
// src (the wire form EncryptTo appends) without allocating.
func (c *Cipher) DecryptTo(src []byte) (int64, error) {
	if len(src) < SealedSize {
		return 0, ErrShort
	}
	var s Sealed
	copy(s.Cipher[:], src[:8])
	s.Nonce = binary.BigEndian.Uint32(src[8:12])
	s.Tag = binary.BigEndian.Uint32(src[12:16])
	return c.Open(s)
}

// linkEntry is one CipherCache slot, carrying two generation stamps
// because the cache answers two questions of different cost. okGen
// validates the existence answer ok (HasKey's question, answerable
// without key material); keyGen validates that the cipher c is bound to
// the link's current key (Link's question, requiring derivation).
// keyGen implies okGen: binding a cipher validates both.
type linkEntry struct {
	c      *Cipher
	ok     bool
	okGen  uint64
	keyGen uint64
}

// CipherCache memoizes one reusable Cipher per link over a key-management
// Scheme, so per-round sealing reuses primitive state (hashers, keystream
// blocks, scratch buffers) instead of re-deriving keys and rebuilding
// primitives per share. Negative lookups (pairs the scheme gives no key)
// are memoized too, and HasKey memoizes the existence answer alone —
// cipher construction and key derivation happen only on links that
// actually seal. Entries are generation-stamped: Reset bumps the
// generation instead of clearing the map, and a stale hit re-validates in
// place via Cipher.rekey — when the new scheme derives the same key for
// the link, the cached keystream blocks survive untouched, and even a
// fresh key costs only a copy (the AES suite's round-key schedule is
// process-wide). Entries untouched for a full generation — links of a
// previous deployment's topology, in an arena cache — retire their
// ciphers to a free pool the next deployment draws from, so a long-lived
// cache's footprint tracks one deployment's working set, not the union
// of all of them. Not safe for concurrent use.
type CipherCache struct {
	scheme Scheme
	suite  Suite
	gen    uint64
	links  map[uint64]linkEntry
	free   []*Cipher // ciphers retired from swept or negative entries
	// New ciphers are carved from slabs rather than allocated one by one:
	// a deployment binds thousands of links at once, and slab allocation
	// turns those into a handful of heap objects the collector can sweep
	// cheaply. Ciphers never die individually — they retire to free and
	// come back — so slab storage is never stranded.
	slab     []Cipher
	slabUsed int
}

// cipherSlabSize is the number of Cipher structs carved per slab — about
// the link count of a mid-sized deployment's node neighborhood working
// set, small enough that a tiny cache wastes little.
const cipherSlabSize = 256

// NewCipherCache creates an empty cache over scheme sealing with suite.
func NewCipherCache(scheme Scheme, suite Suite) *CipherCache {
	return &CipherCache{scheme: scheme, suite: suite, gen: 1, links: make(map[uint64]linkEntry)}
}

// Suite returns the suite ciphers in this cache seal with.
func (cc *CipherCache) Suite() Suite { return cc.suite }

// Reset rebinds the cache to a new scheme and suite and invalidates every
// entry by bumping the generation — entries the previous deployment used
// stay in the map, and the next Link hit on such a stale entry re-derives
// the link key and rekeys the resident cipher in place (retaining every
// cached keystream block when suite and key are unchanged). Entries NOT
// touched since the previous Reset belong to a topology two deployments
// gone — random deployments barely overlap in link sets — so their
// ciphers retire to the free pool and their map slots are deleted: the
// next deployment repopulates from recycled instances instead of
// allocating. A Cipher's observable behavior is a pure function of its
// current (suite, key) — cached keystream blocks are invalidated on any
// change — so which pooled cipher serves which link never shows in the
// output.
func (cc *CipherCache) Reset(scheme Scheme, suite Suite) {
	cc.scheme = scheme
	cc.suite = suite
	for id, e := range cc.links {
		if e.okGen < cc.gen && e.keyGen < cc.gen {
			if e.c != nil {
				cc.free = append(cc.free, e.c)
			}
			delete(cc.links, id)
		}
	}
	cc.gen++
}

// linkID normalizes an unordered node pair to a map key.
func linkID(a, b topology.NodeID) uint64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(uint32(lo))<<32 | uint64(uint32(hi))
}

// HasKey reports whether the scheme gives the a–b pair a key, deriving
// no key material when the scheme is a KeyChecker. This is the query
// target selection wants: it probes every neighbor pair but commits to
// few, so existence must not cost a cipher binding. KeyChecker answers
// are deliberately NOT memoized — each pair is probed about once per
// deployment, and combinatorial existence checks are cheaper than the
// map growth memoizing every probed pair would cost, which also keeps
// the link map sized by links that actually seal. Only the expensive
// SharedKey fallback earns a map entry.
func (cc *CipherCache) HasKey(a, b topology.NodeID) bool {
	id := linkID(a, b)
	e, seen := cc.links[id]
	if seen && (e.okGen == cc.gen || e.keyGen == cc.gen) {
		return e.ok
	}
	if kc, isChecker := cc.scheme.(KeyChecker); isChecker {
		return kc.HasKey(a, b)
	}
	_, ok := cc.scheme.SharedKey(a, b)
	e.ok = ok
	e.okGen = cc.gen
	cc.links[id] = e
	return ok
}

// Link returns the cipher for the a–b link, or ok=false when the scheme
// gives the pair no key. Both orientations share one cipher — which is
// what lets a receiver's Open reuse the keystream block cached by the
// sender's Seal.
func (cc *CipherCache) Link(a, b topology.NodeID) (*Cipher, bool) {
	id := linkID(a, b)
	e, seen := cc.links[id]
	if seen {
		if e.keyGen == cc.gen {
			return e.c, e.c != nil
		}
		if e.okGen == cc.gen && !e.ok {
			return nil, false
		}
	}
	key, ok := cc.scheme.SharedKey(a, b)
	if !ok {
		if e.c != nil {
			cc.free = append(cc.free, e.c)
		}
		cc.links[id] = linkEntry{okGen: cc.gen, keyGen: cc.gen}
		return nil, false
	}
	c := e.c
	switch {
	case c != nil:
		c.rekey(cc.suite, key)
	case len(cc.free) > 0:
		n := len(cc.free)
		c = cc.free[n-1]
		cc.free[n-1] = nil
		cc.free = cc.free[:n-1]
		c.rekey(cc.suite, key)
	default:
		if cc.slabUsed == len(cc.slab) {
			cc.slab = make([]Cipher, cipherSlabSize)
			cc.slabUsed = 0
		}
		c = &cc.slab[cc.slabUsed]
		cc.slabUsed++
		c.suite = cc.suite
		c.key = key
		c.initSuite()
	}
	cc.links[id] = linkEntry{c: c, ok: true, okGen: cc.gen, keyGen: cc.gen}
	return c, true
}

// SealReq is one entry of a SealBatch call: inputs Src/Dst/Nonce/Value,
// outputs Sealed/OK. OK is false when the scheme gives the pair no key.
type SealReq struct {
	Src, Dst topology.NodeID
	Nonce    uint32
	Value    int64
	Sealed   Sealed
	OK       bool
}

// OpenReq is one entry of an OpenBatch call: inputs Src/Dst/Sealed,
// outputs Value/Err (ErrAuth on tag mismatch, ErrNoKey without a key).
type OpenReq struct {
	Src, Dst topology.NodeID
	Sealed   Sealed
	Value    int64
	Err      error
}

// ErrNoKey is reported by OpenBatch when the scheme gives the pair no key.
var ErrNoKey = errors.New("linksec: no shared key for link")

// SealBatch seals every request in place. Consecutive requests on the same
// link share one Link lookup, and paired nonces (2k, 2k+1) on a link share
// one AES block via the cipher's keystream cache — a node sealing all its
// slices for a round in one call is the intended shape. The requests'
// sealed outputs are identical to issuing Link+Seal per entry.
func (cc *CipherCache) SealBatch(reqs []SealReq) {
	var (
		c    *Cipher
		cOK  bool
		have bool
		la   topology.NodeID
		lb   topology.NodeID
	)
	for i := range reqs {
		r := &reqs[i]
		if !have || r.Src != la || r.Dst != lb {
			c, cOK = cc.Link(r.Src, r.Dst)
			la, lb, have = r.Src, r.Dst, true
		}
		if !cOK {
			r.OK = false
			continue
		}
		r.Sealed = c.Seal(r.Nonce, r.Value)
		r.OK = true
	}
}

// OpenBatch authenticates and decrypts every request in place, with the
// same per-link lookup sharing as SealBatch.
func (cc *CipherCache) OpenBatch(reqs []OpenReq) {
	var (
		c    *Cipher
		cOK  bool
		have bool
		la   topology.NodeID
		lb   topology.NodeID
	)
	for i := range reqs {
		r := &reqs[i]
		if !have || r.Src != la || r.Dst != lb {
			c, cOK = cc.Link(r.Src, r.Dst)
			la, lb, have = r.Src, r.Dst, true
		}
		if !cOK {
			r.Value, r.Err = 0, ErrNoKey
			continue
		}
		r.Value, r.Err = c.Open(r.Sealed)
	}
}
