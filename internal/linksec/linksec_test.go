package linksec

import (
	"bytes"
	"crypto/cipher"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func TestPairwiseSymmetricAndDistinct(t *testing.T) {
	s := NewPairwise(123)
	kab, ok := s.SharedKey(1, 2)
	if !ok {
		t.Fatal("pairwise scheme must always share a key")
	}
	kba, _ := s.SharedKey(2, 1)
	if kab != kba {
		t.Fatal("SharedKey not symmetric")
	}
	kac, _ := s.SharedKey(1, 3)
	if kab == kac {
		t.Fatal("distinct pairs share a key")
	}
	other := NewPairwise(456)
	k2, _ := other.SharedKey(1, 2)
	if kab == k2 {
		t.Fatal("different masters produced same key")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := NewPairwise(7)
	key, _ := s.SharedKey(4, 5)
	if err := quick.Check(func(nonce uint32, value int64) bool {
		sealed := Seal(key, nonce, value)
		got, err := Open(key, sealed)
		return err == nil && got == value
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSealIsNotIdentity(t *testing.T) {
	key, _ := NewPairwise(7).SharedKey(1, 2)
	sealed := Seal(key, 1, 42)
	var raw [8]byte
	raw[7] = 42
	if sealed.Cipher == raw {
		t.Fatal("ciphertext equals plaintext encoding")
	}
}

func TestSealNonceChangesCiphertext(t *testing.T) {
	key, _ := NewPairwise(7).SharedKey(1, 2)
	a := Seal(key, 1, 42)
	b := Seal(key, 2, 42)
	if a.Cipher == b.Cipher {
		t.Fatal("same plaintext under different nonces produced same ciphertext")
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	key, _ := NewPairwise(7).SharedKey(1, 2)
	sealed := Seal(key, 9, 1000)
	sealed.Cipher[0] ^= 1
	if _, err := Open(key, sealed); err != ErrAuth {
		t.Fatalf("tampered ciphertext: err = %v, want ErrAuth", err)
	}
	sealed = Seal(key, 9, 1000)
	sealed.Tag ^= 1
	if _, err := Open(key, sealed); err != ErrAuth {
		t.Fatalf("tampered tag: err = %v, want ErrAuth", err)
	}
	sealed = Seal(key, 9, 1000)
	sealed.Nonce++
	if _, err := Open(key, sealed); err != ErrAuth {
		t.Fatalf("tampered nonce: err = %v, want ErrAuth", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	s := NewPairwise(7)
	k1, _ := s.SharedKey(1, 2)
	k2, _ := s.SharedKey(1, 3)
	sealed := Seal(k1, 5, 77)
	if _, err := Open(k2, sealed); err != ErrAuth {
		t.Fatalf("wrong key accepted: %v", err)
	}
}

func TestRandomPredistSymmetric(t *testing.T) {
	s, err := NewRandomPredist(50, 1000, 100, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for a := topology.NodeID(0); a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			kab, okAB := s.SharedKey(a, b)
			kba, okBA := s.SharedKey(b, a)
			if okAB != okBA || kab != kba {
				t.Fatalf("asymmetric shared key for %d,%d", a, b)
			}
		}
	}
}

func TestRandomPredistConnectRate(t *testing.T) {
	// With pool 1000, ring 100, analytic connect probability is
	// 1-C(900,100)/C(1000,100) ~= 0.99997; empirically almost all pairs
	// should share a key.
	s, _ := NewRandomPredist(80, 1000, 100, 3, rng.New(2))
	misses := 0
	pairs := 0
	for a := topology.NodeID(0); a < 80; a++ {
		for b := a + 1; b < 80; b++ {
			pairs++
			if _, ok := s.SharedKey(a, b); !ok {
				misses++
			}
		}
	}
	if float64(misses)/float64(pairs) > 0.01 {
		t.Fatalf("%d/%d pairs share no key", misses, pairs)
	}
}

func TestRandomPredistSparseRings(t *testing.T) {
	// Tiny rings: some pairs must fail to share keys.
	s, _ := NewRandomPredist(200, 10000, 5, 3, rng.New(4))
	misses := 0
	for a := topology.NodeID(0); a < 200; a++ {
		for b := a + 1; b < 200; b++ {
			if _, ok := s.SharedKey(a, b); !ok {
				misses++
			}
		}
	}
	if misses == 0 {
		t.Fatal("expected some keyless pairs with tiny rings")
	}
}

func TestHoldsConsistentWithSharedKey(t *testing.T) {
	s, _ := NewRandomPredist(40, 200, 30, 9, rng.New(5))
	// If c holds the a-b key, then decrypting with c's knowledge is
	// possible; verify Holds matches a manual check via pool keys.
	for a := topology.NodeID(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			kab, ok := s.SharedKey(a, b)
			if !ok {
				continue
			}
			for c := topology.NodeID(0); c < 40; c++ {
				if c == a || c == b {
					continue
				}
				holds := s.Holds(c, a, b)
				// Cross-check: c holds the key iff one of c's pool keys
				// equals kab.
				manual := false
				for _, id := range s.rings[c] {
					if s.poolKey(id) == kab {
						manual = true
						break
					}
				}
				if holds != manual {
					t.Fatalf("Holds(%d,%d,%d) = %v, manual %v", c, a, b, holds, manual)
				}
			}
		}
	}
}

func TestHoldsRate(t *testing.T) {
	// The fraction of third parties holding a given link key should be
	// near ring/pool = 0.1.
	s, _ := NewRandomPredist(120, 500, 50, 11, rng.New(6))
	holds, total := 0, 0
	for a := topology.NodeID(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			if _, ok := s.SharedKey(a, b); !ok {
				continue
			}
			for c := topology.NodeID(40); c < 120; c++ {
				total++
				if s.Holds(c, a, b) {
					holds++
				}
			}
		}
	}
	got := float64(holds) / float64(total)
	want := ThirdPartyDecryptProbability(500, 50)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("third-party hold rate %v, analytic %v", got, want)
	}
}

func TestConnectProbability(t *testing.T) {
	// Eschenauer-Gligor's classic example: P=10000, m=75 gives ~0.5
	// connect probability (their paper reports p=0.5 for m~=75).
	p := ConnectProbability(10000, 75)
	if p < 0.4 || p > 0.6 {
		t.Fatalf("ConnectProbability(10000,75) = %v", p)
	}
	if ConnectProbability(100, 60) != 1 {
		t.Fatal("overlapping rings must connect with probability 1")
	}
	if p := ConnectProbability(1000, 1); p > 0.002 {
		t.Fatalf("singleton rings connect too often: %v", p)
	}
}

func TestQCompositeSymmetricAndGated(t *testing.T) {
	s, err := NewQComposite(60, 500, 60, 2, 7, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	connected, blocked := 0, 0
	for a := topology.NodeID(0); a < 60; a++ {
		for b := a + 1; b < 60; b++ {
			kab, okAB := s.SharedKey(a, b)
			kba, okBA := s.SharedKey(b, a)
			if okAB != okBA || kab != kba {
				t.Fatalf("asymmetric q-composite key for %d,%d", a, b)
			}
			if okAB {
				connected++
				// q-composite requires at least q shared pool keys.
				if len(sharedIDs(s.inner.rings[a], s.inner.rings[b])) < 2 {
					t.Fatalf("key issued below q shared keys for %d,%d", a, b)
				}
			} else {
				blocked++
			}
		}
	}
	if connected == 0 {
		t.Fatal("no pair connected")
	}
}

func TestQCompositeStricterThanPlain(t *testing.T) {
	// Same rings, q=1 vs q=3: q=3 must connect a subset of pairs.
	r1 := rng.New(31)
	plain, err := NewQComposite(80, 1000, 60, 1, 9, r1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(31)
	strict, err := NewQComposite(80, 1000, 60, 3, 9, r2)
	if err != nil {
		t.Fatal(err)
	}
	plainOK, strictOK := 0, 0
	for a := topology.NodeID(0); a < 80; a++ {
		for b := a + 1; b < 80; b++ {
			if _, ok := plain.SharedKey(a, b); ok {
				plainOK++
			}
			if _, ok := strict.SharedKey(a, b); ok {
				strictOK++
				if _, ok := plain.SharedKey(a, b); !ok {
					t.Fatalf("q=3 connected %d,%d but q=1 did not", a, b)
				}
			}
		}
	}
	if strictOK >= plainOK {
		t.Fatalf("q=3 connected %d pairs, q=1 %d — not stricter", strictOK, plainOK)
	}
}

func TestQCompositeHoldsHarder(t *testing.T) {
	// The fraction of third parties able to decrypt a q=2 link should be
	// well below the plain (q=1) scheme's m/P.
	s, err := NewQComposite(150, 500, 50, 2, 11, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	holds, total := 0, 0
	for a := topology.NodeID(0); a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			if _, ok := s.SharedKey(a, b); !ok {
				continue
			}
			for c := topology.NodeID(50); c < 150; c++ {
				total++
				if s.Holds(c, a, b) {
					holds++
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no connected pairs")
	}
	frac := float64(holds) / float64(total)
	plain := ThirdPartyDecryptProbability(500, 50) // 0.1
	if frac >= plain/2 {
		t.Fatalf("q-composite hold rate %v not well below plain %v", frac, plain)
	}
}

func TestQCompositeRoundTripWithSeal(t *testing.T) {
	s, err := NewQComposite(20, 100, 40, 2, 3, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	for a := topology.NodeID(0); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			key, ok := s.SharedKey(a, b)
			if !ok {
				continue
			}
			sealed := Seal(key, 5, 1234)
			got, err := Open(key, sealed)
			if err != nil || got != 1234 {
				t.Fatalf("seal/open under q-composite key failed: %v %d", err, got)
			}
			return
		}
	}
	t.Skip("no connected pair")
}

func TestQCompositeValidation(t *testing.T) {
	if _, err := NewQComposite(10, 100, 10, 0, 1, rng.New(1)); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := NewQComposite(10, 0, 10, 1, 1, rng.New(1)); err == nil {
		t.Fatal("bad pool accepted")
	}
}

func TestNewRandomPredistValidation(t *testing.T) {
	if _, err := NewRandomPredist(10, 0, 1, 1, rng.New(1)); err == nil {
		t.Fatal("zero pool accepted")
	}
	if _, err := NewRandomPredist(10, 5, 6, 1, rng.New(1)); err == nil {
		t.Fatal("ring larger than pool accepted")
	}
}

func BenchmarkSealOpen(b *testing.B) {
	key, _ := NewPairwise(7).SharedKey(1, 2)
	for i := 0; i < b.N; i++ {
		s := Seal(key, uint32(i), int64(i))
		if _, err := Open(key, s); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCipherMatchesPackageSeal(t *testing.T) {
	// The reusable Cipher must be byte-identical to the package-level
	// Seal/Open so migrating a protocol onto it cannot change any table.
	key, _ := NewPairwise(7).SharedKey(4, 5)
	c := NewCipher(SuiteSHA256, key)
	if err := quick.Check(func(nonce uint32, value int64) bool {
		want := Seal(key, nonce, value)
		got := c.Seal(nonce, value)
		if got != want {
			return false
		}
		v1, err1 := Open(key, got)
		v2, err2 := c.Open(got)
		return err1 == nil && err2 == nil && v1 == value && v2 == value
	}, nil); err != nil {
		t.Fatal(err)
	}
	if c.Key() != key {
		t.Fatal("Key() mismatch")
	}
}

func TestEncryptToDecryptTo(t *testing.T) {
	for _, suite := range []Suite{SuiteAESCTR, SuiteSHA256} {
		t.Run(suite.String(), func(t *testing.T) {
			key, _ := NewPairwise(9).SharedKey(1, 2)
			c := NewCipher(suite, key)
			buf := c.EncryptTo(nil, 77, -123456)
			if len(buf) != SealedSize {
				t.Fatalf("EncryptTo appended %d bytes, want %d", len(buf), SealedSize)
			}
			got, err := c.DecryptTo(buf)
			if err != nil || got != -123456 {
				t.Fatalf("DecryptTo = %d, %v", got, err)
			}
			// The wire form matches the Sealed struct layout.
			s := c.Seal(77, -123456)
			var want []byte
			want = append(want, s.Cipher[:]...)
			want = binary.BigEndian.AppendUint32(want, s.Nonce)
			want = binary.BigEndian.AppendUint32(want, s.Tag)
			if !bytes.Equal(buf, want) {
				t.Fatalf("wire form %x, want %x", buf, want)
			}
			// Tampering any byte must fail authentication.
			for i := 0; i < SealedSize; i++ {
				tampered := append([]byte(nil), buf...)
				tampered[i] ^= 0x40
				if _, err := c.DecryptTo(tampered); err == nil {
					t.Fatalf("tampered byte %d accepted", i)
				}
			}
			if _, err := c.DecryptTo(buf[:SealedSize-1]); err != ErrShort {
				t.Fatalf("short buffer error = %v, want ErrShort", err)
			}
		})
	}
}

func TestEncryptToAllocFree(t *testing.T) {
	for _, suite := range []Suite{SuiteAESCTR, SuiteSHA256} {
		t.Run(suite.String(), func(t *testing.T) {
			key, _ := NewPairwise(11).SharedKey(1, 2)
			c := NewCipher(suite, key)
			buf := make([]byte, 0, SealedSize)
			buf = c.EncryptTo(buf, 1, 1) // warm
			nonce := uint32(0)
			allocs := testing.AllocsPerRun(200, func() {
				nonce++
				buf = c.EncryptTo(buf[:0], nonce, int64(nonce)*3)
			})
			if allocs != 0 {
				t.Fatalf("EncryptTo allocated %v per op, want 0", allocs)
			}
			allocs = testing.AllocsPerRun(200, func() {
				if _, err := c.DecryptTo(buf); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("DecryptTo allocated %v per op, want 0", allocs)
			}
		})
	}
}

// noKeyScheme shares a key only between even-numbered nodes.
type noKeyScheme struct{ inner Scheme }

func (s noKeyScheme) SharedKey(a, b topology.NodeID) (Key, bool) {
	if a%2 != 0 || b%2 != 0 {
		return Key{}, false
	}
	return s.inner.SharedKey(a, b)
}

func TestCipherCache(t *testing.T) {
	cc := NewCipherCache(noKeyScheme{NewPairwise(5)}, SuiteAESCTR)
	c1, ok := cc.Link(2, 4)
	if !ok || c1 == nil {
		t.Fatal("keyed pair got no cipher")
	}
	c2, ok := cc.Link(4, 2)
	if !ok || c2 != c1 {
		t.Fatal("orientations must share one cipher instance")
	}
	if c3, _ := cc.Link(2, 4); c3 != c1 {
		t.Fatal("repeat lookup rebuilt the cipher")
	}
	if _, ok := cc.Link(1, 2); ok {
		t.Fatal("keyless pair reported a cipher")
	}
	if _, ok := cc.Link(1, 2); ok {
		t.Fatal("memoized keyless pair reported a cipher")
	}
	want, _ := NewPairwise(5).SharedKey(2, 4)
	if c1.Key() != want {
		t.Fatal("cached cipher holds wrong key")
	}
}

// countingBlock wraps a cipher.Block and counts Encrypt calls, so tests
// can observe exactly when a keystream block was recomputed vs served from
// the cache.
type countingBlock struct {
	cipher.Block
	n *int
}

func (b countingBlock) Encrypt(dst, src []byte) {
	*b.n++
	b.Block.Encrypt(dst, src)
}

func TestSuitesRoundTripAndRejectTampering(t *testing.T) {
	// Cross-suite vectors: both suites must round-trip every value and
	// reject any single-field tamper; their outputs must differ (i.e. the
	// suites are really distinct constructions over the same wire format).
	key, _ := NewPairwise(21).SharedKey(3, 8)
	aes := NewCipher(SuiteAESCTR, key)
	sha := NewCipher(SuiteSHA256, key)
	if err := quick.Check(func(nonce uint32, value int64) bool {
		sa := aes.Seal(nonce, value)
		ss := sha.Seal(nonce, value)
		va, ea := aes.Open(sa)
		vs, es := sha.Open(ss)
		if ea != nil || es != nil || va != value || vs != value {
			return false
		}
		// Cross-opening the other suite's sealed share must fail auth.
		if _, err := aes.Open(ss); err != ErrAuth {
			return false
		}
		if _, err := sha.Open(sa); err != ErrAuth {
			return false
		}
		// Tampered ciphertext, nonce, or tag must fail on both.
		for _, c := range []*Cipher{aes, sha} {
			s := c.Seal(nonce, value)
			bad := s
			bad.Cipher[3] ^= 1
			if _, err := c.Open(bad); err != ErrAuth {
				return false
			}
			bad = s
			bad.Nonce ^= 4
			if _, err := c.Open(bad); err != ErrAuth {
				return false
			}
			bad = s
			bad.Tag ^= 0x8000
			if _, err := c.Open(bad); err != ErrAuth {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReusesSealKeystreamBlock(t *testing.T) {
	// A Seal immediately followed by the matching Open (the shared-cache
	// common case, and the ARQ retransmit pattern) must not re-encrypt the
	// CTR block: only the tag block costs an AES call.
	key, _ := NewPairwise(13).SharedKey(1, 2)
	c := NewCipher(SuiteAESCTR, key)
	var n int
	c.block = countingBlock{c.block, &n}
	s := c.Seal(0x1234, -99)
	if n != 2 { // one CTR block + one tag block
		t.Fatalf("Seal cost %d AES calls, want 2", n)
	}
	n = 0
	if v, err := c.Open(s); err != nil || v != -99 {
		t.Fatalf("Open = %d, %v", v, err)
	}
	if n != 1 { // tag only; keystream served from the cache
		t.Fatalf("Open cost %d AES calls, want 1 (cached keystream)", n)
	}
	// The paired nonce (same CTR block, other half) is also free.
	n = 0
	c.Seal(0x1235, 7)
	if n != 1 {
		t.Fatalf("paired-nonce Seal cost %d AES calls, want 1", n)
	}
}

func TestSHA256OpenMemoizesSealKeystream(t *testing.T) {
	key, _ := NewPairwise(13).SharedKey(3, 4)
	c := NewCipher(SuiteSHA256, key)
	s := c.Seal(42, 1000)
	if !c.sha.memoOK || c.sha.memoNonce != 42 {
		t.Fatal("Seal did not memoize its keystream")
	}
	if v, err := c.Open(s); err != nil || v != 1000 {
		t.Fatalf("Open = %d, %v", v, err)
	}
	// The memo must be bound to the key: rekeying invalidates it.
	k2, _ := NewPairwise(14).SharedKey(3, 4)
	c.rekey(SuiteSHA256, k2)
	if c.sha.memoOK {
		t.Fatal("rekey kept a stale keystream memo")
	}
}

func TestSealBatchMatchesSeal(t *testing.T) {
	for _, suite := range []Suite{SuiteAESCTR, SuiteSHA256} {
		t.Run(suite.String(), func(t *testing.T) {
			scheme := noKeyScheme{NewPairwise(31)}
			cc := NewCipherCache(scheme, suite)
			ref := NewCipherCache(scheme, suite)
			var reqs []SealReq
			for i := 0; i < 40; i++ {
				reqs = append(reqs, SealReq{
					Src:   topology.NodeID(i % 5 * 2), // even = keyed
					Dst:   topology.NodeID(i%3*2 + 6),
					Nonce: uint32(i),
					Value: int64(i) * 1001,
				})
			}
			// A keyless pair must come back OK=false, not crash.
			reqs = append(reqs, SealReq{Src: 1, Dst: 2, Nonce: 7, Value: 7})
			cc.SealBatch(reqs)
			opens := make([]OpenReq, 0, len(reqs))
			for i := range reqs {
				r := &reqs[i]
				if r.Src == r.Dst {
					continue
				}
				c, ok := ref.Link(r.Src, r.Dst)
				if !ok {
					if r.OK {
						t.Fatalf("req %d: sealed without a key", i)
					}
					continue
				}
				if !r.OK {
					t.Fatalf("req %d: OK=false for keyed pair", i)
				}
				if want := c.Seal(r.Nonce, r.Value); r.Sealed != want {
					t.Fatalf("req %d: batch sealed %+v, want %+v", i, r.Sealed, want)
				}
				opens = append(opens, OpenReq{Src: r.Src, Dst: r.Dst, Sealed: r.Sealed})
			}
			opens = append(opens, OpenReq{Src: 1, Dst: 2})
			cc.OpenBatch(opens)
			for i := range opens {
				r := &opens[i]
				if r.Src == 1 && r.Dst == 2 {
					if r.Err != ErrNoKey {
						t.Fatalf("keyless open err = %v, want ErrNoKey", r.Err)
					}
					continue
				}
				if r.Err != nil {
					t.Fatalf("open %d: %v", i, r.Err)
				}
			}
		})
	}
}

func TestCipherCacheResetRetainsSchedules(t *testing.T) {
	// Arena reuse: Reset to the same scheme and suite must not rebuild AES
	// round-key schedules (or anything else) — steady-state re-deployment
	// performs zero allocations and keeps the same cipher instances.
	scheme := NewPairwise(77)
	cc := NewCipherCache(scheme, SuiteAESCTR)
	c1, _ := cc.Link(1, 2)
	b1 := c1.block
	s1 := c1.Seal(9, 42)
	allocs := testing.AllocsPerRun(100, func() {
		cc.Reset(scheme, SuiteAESCTR)
		if c, ok := cc.Link(1, 2); !ok || c != c1 {
			t.Fatal("Reset dropped the pooled cipher")
		}
		if _, ok := cc.Link(2, 3); !ok {
			t.Fatal("second link missing")
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+Link allocated %v per run, want 0", allocs)
	}
	if c1.block != b1 {
		t.Fatal("Reset rebuilt the AES round-key schedule for an unchanged key")
	}
	if got := c1.Seal(9, 42); got != s1 {
		t.Fatalf("post-Reset seal %+v, want %+v", got, s1)
	}
	// Suite or scheme changes must rebind: same instance, new behavior.
	cc.Reset(NewPairwise(78), SuiteAESCTR)
	c2, _ := cc.Link(1, 2)
	if c2 != c1 {
		t.Fatal("rekey should reuse the resident cipher instance")
	}
	want, _ := NewPairwise(78).SharedKey(1, 2)
	if c2.Key() != want {
		t.Fatal("stale key after scheme change")
	}
	if got := c2.Seal(9, 42); got == s1 {
		t.Fatal("seal unchanged after rekey")
	}
	cc.Reset(NewPairwise(78), SuiteSHA256)
	c3, _ := cc.Link(1, 2)
	if c3.Suite() != SuiteSHA256 {
		t.Fatal("suite change not applied")
	}
	if got := Seal(want, 9, 42); c3.Seal(9, 42) != got {
		t.Fatal("SHA-256 mode after suite switch is not byte-identical to package Seal")
	}
}

// BenchmarkPRFKeystream measures one seal+open cycle on a reusable Cipher
// under the default AES-CTR suite (incrementing nonces, so each pair of
// seals shares one CTR block and each open hits the cache). History:
// 933.4 ns/op (package-level Seal/Open), 408.0 ns/op (reusable SHA-256
// Cipher, kept below as BenchmarkPRFKeystreamSHA256).
func BenchmarkPRFKeystream(b *testing.B) {
	var key Key
	for i := range key {
		key[i] = byte(i)
	}
	c := NewCipher(SuiteAESCTR, key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed := c.Seal(uint32(i), int64(i)*3)
		if _, err := c.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRFKeystreamSHA256 is the same cycle on the SHA-256 compat
// suite — the pre-PR hot path, kept for the perf trajectory.
func BenchmarkPRFKeystreamSHA256(b *testing.B) {
	var key Key
	for i := range key {
		key[i] = byte(i)
	}
	c := NewCipher(SuiteSHA256, key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed := c.Seal(uint32(i), int64(i)*3)
		if _, err := c.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealBatch measures the per-seal cost of the batch API on a
// warmed cache: 8 slices across 4 links per op, the shape of one node's
// Phase II round. ns/op is the whole batch; divide by 8 for per-seal.
func BenchmarkSealBatch(b *testing.B) {
	cc := NewCipherCache(NewPairwise(17), SuiteAESCTR)
	reqs := make([]SealReq, 8)
	for i := range reqs {
		reqs[i] = SealReq{
			Src:   topology.NodeID(1 + i/4),
			Dst:   topology.NodeID(3 + i%2),
			Nonce: uint32(i),
			Value: int64(i) * 17,
		}
	}
	cc.SealBatch(reqs) // warm link entries and key schedules
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j].Nonce = uint32(i*8 + j)
		}
		cc.SealBatch(reqs)
	}
}
