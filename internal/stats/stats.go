// Package stats provides the small statistical toolkit the experiment
// harness uses to summarize repeated simulation trials: running moments,
// confidence intervals, histograms, and labeled series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and reports their moments. The zero value
// is an empty sample ready to use.
type Sample struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	sum  float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	s.sum += x
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Sum returns the running sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// String summarizes the sample as "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Merge folds other into s, as if every observation of other had been Added
// to s (Chan et al. parallel-variance combination).
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
	s.sum += other.sum
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. It sorts a copy; xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts observations into uniform-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
}

// NewHistogram creates a histogram with the given bin count over [min, max].
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation. Out-of-range observations are counted in
// underflow/overflow tallies rather than dropped silently.
func (h *Histogram) Add(x float64) {
	if x < h.Min {
		h.under++
		return
	}
	if x >= h.Max {
		if x == h.Max {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.over++
		return
	}
	bin := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if bin == len(h.Counts) {
		bin--
	}
	h.Counts[bin]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Series is an ordered list of (x, sample) points — one experiment curve.
type Series struct {
	Name string
	X    []float64
	Y    []*Sample
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// At returns the sample for x, creating the point if needed. Points are
// kept in insertion order; experiments sweep x monotonically.
func (s *Series) At(x float64) *Sample {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	sm := &Sample{}
	s.X = append(s.X, x)
	s.Y = append(s.Y, sm)
	return sm
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.X) }
