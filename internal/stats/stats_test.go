package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population variance of this classic set is 4; unbiased = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single-observation sample wrong")
	}
}

func TestMergeEquivalentToSequential(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e6))
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, merged Sample
		s1.AddAll(a)
		s2.AddAll(b)
		merged = s1
		merged.Merge(&s2)
		var ref Sample
		ref.AddAll(a)
		ref.AddAll(b)
		if merged.N() != ref.N() {
			return false
		}
		if ref.N() == 0 {
			return true
		}
		tol := 1e-9 * (1 + math.Abs(ref.Mean()))
		return math.Abs(merged.Mean()-ref.Mean()) < tol &&
			math.Abs(merged.Variance()-ref.Variance()) < 1e-6*(1+ref.Variance())
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSum(t *testing.T) {
	var a, b Sample
	a.AddAll([]float64{1, 2, 3})
	if a.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", a.Sum())
	}
	b.AddAll([]float64{4, 0.5})
	a.Merge(&b)
	if a.Sum() != 10.5 {
		t.Fatalf("merged Sum = %v, want 10.5", a.Sum())
	}
	var empty Sample
	if empty.Sum() != 0 {
		t.Fatalf("empty Sum = %v, want 0", empty.Sum())
	}
}

func TestMergeMinMax(t *testing.T) {
	var a, b Sample
	a.AddAll([]float64{5, 6, 7})
	b.AddAll([]float64{1, 10})
	a.Merge(&b)
	if a.Min() != 1 || a.Max() != 10 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile of empty slice should be NaN")
	}
	// Quantile must not modify its input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Fatalf("outliers = %d/%d", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99 and 10 (max lands in last bin)
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeries(t *testing.T) {
	s := NewSeries("acc")
	s.At(200).Add(0.5)
	s.At(200).Add(0.7)
	s.At(300).Add(0.9)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if n := s.At(200).N(); n != 2 {
		t.Fatalf("At(200).N = %d", n)
	}
	if math.Abs(s.At(200).Mean()-0.6) > 1e-12 {
		t.Fatalf("At(200).Mean = %v", s.At(200).Mean())
	}
	if s.X[0] != 200 || s.X[1] != 300 {
		t.Fatal("series insertion order not preserved")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}
