package aggregate

import (
	"math"
	"testing"
	"testing/quick"
)

// run simulates loss-free additive aggregation of readings under spec.
func run(t *testing.T, spec Spec, readings []int64) float64 {
	t.Helper()
	sums := make([]int64, spec.Rounds())
	for round := 0; round < spec.Rounds(); round++ {
		for _, r := range readings {
			c, err := spec.Contribution(r, round)
			if err != nil {
				t.Fatalf("Contribution(%d, %d): %v", r, round, err)
			}
			sums[round] += c
		}
	}
	out, err := spec.Finalize(sums, uint32(len(readings)))
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return out
}

func TestSum(t *testing.T) {
	got := run(t, SpecFor(Sum), []int64{1, 2, 3, -4})
	if got != 2 {
		t.Fatalf("sum = %v", got)
	}
}

func TestCount(t *testing.T) {
	got := run(t, SpecFor(Count), []int64{10, 20, 30})
	if got != 3 {
		t.Fatalf("count = %v", got)
	}
}

func TestAverage(t *testing.T) {
	got := run(t, SpecFor(Average), []int64{2, 4, 9})
	if got != 5 {
		t.Fatalf("average = %v", got)
	}
}

func TestVariance(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	got := run(t, SpecFor(Variance), []int64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("variance = %v", got)
	}
}

func TestVarianceMatchesDefinition(t *testing.T) {
	if err := quick.Check(func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		readings := make([]int64, len(raw))
		var mean float64
		for i, v := range raw {
			readings[i] = int64(v)
			mean += float64(v)
		}
		mean /= float64(len(raw))
		var want float64
		for _, v := range raw {
			want += (float64(v) - mean) * (float64(v) - mean)
		}
		want /= float64(len(raw))
		spec := SpecFor(Variance)
		sums := make([]int64, 2)
		for round := 0; round < 2; round++ {
			for _, r := range readings {
				c, err := spec.Contribution(r, round)
				if err != nil {
					return false
				}
				sums[round] += c
			}
		}
		got, err := spec.Finalize(sums, uint32(len(readings)))
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-6*(1+want)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxApproximation(t *testing.T) {
	readings := []int64{100, 250, 400, 900, 1200}
	got := run(t, SpecFor(Max), readings)
	// The k-th power mean of n values lies in [max, max·n^(1/k)]:
	// n=5, k=8 gives at most a 1.22x overestimate.
	if got < 1200*0.999 || got > 1200*1.25 {
		t.Fatalf("max estimate %v for true max 1200", got)
	}
}

func TestMinApproximation(t *testing.T) {
	readings := []int64{100, 250, 400, 900, 1200}
	got := run(t, SpecFor(Min), readings)
	// Symmetrically, the estimate lies in [min/n^(1/k), min].
	if got > 100*1.001 || got < 100/1.25 {
		t.Fatalf("min estimate %v for true min 100", got)
	}
}

func TestMinMaxAccuracyImprovesWithPower(t *testing.T) {
	readings := []int64{900, 950, 1000}
	lo := run(t, Spec{Kind: Max, Power: 4, Normal: 4096}, readings)
	hi := run(t, Spec{Kind: Max, Power: 16, Normal: 4096}, readings)
	if math.Abs(hi-1000) > math.Abs(lo-1000) {
		t.Fatalf("higher power worse: k=4 -> %v, k=16 -> %v", lo, hi)
	}
}

func TestMaxToleratesUnderflow(t *testing.T) {
	// Readings far below Normal contribute ~0, which cannot hurt a max.
	readings := []int64{0, 1, 2, 1200}
	got := run(t, SpecFor(Max), readings)
	if got < 1200*0.999 || got > 1200*1.25 {
		t.Fatalf("max with underflowing readings = %v", got)
	}
}

func TestMinMaxDomainErrors(t *testing.T) {
	spec := SpecFor(Max)
	if _, err := spec.Contribution(-5, 0); err == nil {
		t.Fatal("negative reading accepted for max")
	}
	if _, err := spec.Contribution(1<<20, 0); err == nil {
		t.Fatal("reading above Normal accepted for max")
	}
	bad := Spec{Kind: Max, Power: 0, Normal: 4096}
	if _, err := bad.Contribution(10, 0); err == nil {
		t.Fatal("zero power accepted")
	}
	mn := SpecFor(Min)
	if mn.MinFloor() <= 0 {
		t.Fatalf("MinFloor = %d", mn.MinFloor())
	}
	if _, err := mn.Contribution(mn.MinFloor()-1, 0); err == nil {
		t.Fatal("reading below MinFloor accepted for min")
	}
	if _, err := mn.Contribution(mn.MinFloor(), 0); err != nil {
		t.Fatalf("reading at MinFloor rejected: %v", err)
	}
}

func TestVarianceOverflowGuard(t *testing.T) {
	spec := SpecFor(Variance)
	if _, err := spec.Contribution(1<<40, 0); err == nil {
		t.Fatal("r² overflow not caught")
	}
}

func TestFinalizeErrors(t *testing.T) {
	if _, err := SpecFor(Average).Finalize([]int64{10}, 0); err == nil {
		t.Fatal("average over zero count accepted")
	}
	if _, err := SpecFor(Variance).Finalize([]int64{10}, 1); err == nil {
		t.Fatal("wrong round count accepted")
	}
	if _, err := SpecFor(Max).Finalize([]int64{0}, 1); err == nil {
		t.Fatal("non-positive power sum accepted")
	}
}

func TestRounds(t *testing.T) {
	if SpecFor(Variance).Rounds() != 2 {
		t.Fatal("variance rounds != 2")
	}
	for _, k := range []Kind{Sum, Count, Average, Min, Max} {
		if SpecFor(k).Rounds() != 1 {
			t.Fatalf("%v rounds != 1", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Sum: "sum", Count: "count", Average: "average", Variance: "variance", Min: "min", Max: "max", Kind(99): "Kind(99)"} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestPowerMeanConvergence(t *testing.T) {
	readings := []int64{3, 7, 11, 42}
	prevErr := math.Inf(1)
	for _, k := range []int{2, 8, 32} {
		est := PowerMean(readings, k)
		e := math.Abs(est - 42)
		if e > prevErr+1e-9 {
			t.Fatalf("power mean error grew at k=%d: %v > %v", k, e, prevErr)
		}
		prevErr = e
	}
	if est := PowerMean(readings, -32); math.Abs(est-3) > 0.2 {
		t.Fatalf("negative power mean %v, want ~3", est)
	}
}
