// Package aggregate defines the additive aggregation functions of Section
// II-B of the paper.
//
// iPDA aggregates a single additive channel per round: each participating
// node contributes an int64 value (plus an implicit count of 1), and the
// network computes the wrapping sum. Every statistic the paper discusses
// reduces to one or more such additive rounds:
//
//	SUM       one round of raw readings
//	COUNT     one round of 1s
//	AVERAGE   SUM / COUNT
//	VARIANCE  Σr² /N − (Σr/N)²  — two additive rounds (r² and r) plus count
//	MIN/MAX   k-th power means: max ≈ (Σ rᵢᵏ)^(1/k) for large k
//
// Spec maps readings to per-round contributions; Finalize maps the summed
// rounds back to the statistic. FixedPointScale handles the fractional
// precision additive integer channels cannot natively express.
package aggregate

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoData marks a Finalize failure caused by an empty collection: the
// integrity check passed trivially (both trees delivered nothing, so the
// totals agree) but the round carries no contributions to finalize.
// Long-running callers treat it as a degraded round rather than a fault.
var ErrNoData = errors.New("no data collected")

// Kind identifies an aggregation function.
type Kind uint8

const (
	// Sum computes Σ rᵢ.
	Sum Kind = iota + 1
	// Count computes the number of participating readings.
	Count
	// Average computes Σ rᵢ / N.
	Average
	// Variance computes Σrᵢ²/N − (Σrᵢ/N)².
	Variance
	// Min approximates min rᵢ via the power-mean trick with negative
	// exponent (Section II-B); readings must be positive.
	Min
	// Max approximates max rᵢ via the power-mean trick; readings must be
	// non-negative.
	Max
)

func (k Kind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Average:
		return "average"
	case Variance:
		return "variance"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec is a fully-parameterized aggregation query.
type Spec struct {
	Kind Kind
	// Power is the exponent k of the power-mean approximation for Min and
	// Max (higher = more accurate, narrower usable dynamic range). Ignored
	// for other kinds.
	Power int
	// Normal is the declared upper bound on readings for Min/Max rounds
	// (the base station knows the sensor's physical range). Contributions
	// are carried in fixed point relative to Normal:
	//
	//   Max: readings in [0, Normal]; readings far below Normal underflow
	//        to a zero contribution, which is harmless for a maximum.
	//   Min: readings in [MinFloor(), Normal]; smaller readings would
	//        overflow the additive channel and are rejected.
	Normal int64
}

// SpecFor returns a Spec with sensible defaults (Power 8, Normal 4096 for
// Min/Max).
func SpecFor(k Kind) Spec {
	s := Spec{Kind: k}
	if k == Min || k == Max {
		s.Power = 8
		s.Normal = 4096
	}
	return s
}

// MinFloor returns the smallest reading a Min query can carry without
// overflowing the additive channel: Normal / 2^(52/Power).
func (s Spec) MinFloor() int64 {
	if s.Power < 1 {
		return 0
	}
	return int64(math.Ceil(float64(s.Normal) / math.Pow(2, 52/float64(s.Power))))
}

// Rounds returns how many additive aggregation rounds the query needs.
func (s Spec) Rounds() int {
	if s.Kind == Variance {
		return 2 // Σr² and Σr; counts ride along with every round
	}
	return 1
}

// fixedPointScale carries power-mean contributions on the integer channel:
// Max contributions are round((r/Normal)^k · 2^52) ∈ [0, 2^52]; Min
// contributions are round((Normal/r)^k) ∈ [1, 2^52]. Either way thousands
// of nodes sum without overflowing int64.
const fixedPointScale = 1 << 52

// Contribution maps one sensor reading to its additive contribution for
// the given round (0-based). It returns an error for readings outside the
// function's domain.
func (s Spec) Contribution(reading int64, round int) (int64, error) {
	if round < 0 || round >= s.Rounds() {
		return 0, fmt.Errorf("aggregate: round %d out of range for %v", round, s.Kind)
	}
	switch s.Kind {
	case Sum, Average:
		return reading, nil
	case Count:
		return 1, nil
	case Variance:
		if round == 0 {
			if reading > math.MaxInt32 || reading < math.MinInt32 {
				return 0, fmt.Errorf("aggregate: reading %d too large for variance (r² overflow)", reading)
			}
			return reading * reading, nil
		}
		return reading, nil
	case Max:
		if s.Power < 1 || s.Normal < 1 {
			return 0, fmt.Errorf("aggregate: max requires positive Power and Normal, got %d/%d", s.Power, s.Normal)
		}
		if reading < 0 || reading > s.Normal {
			return 0, fmt.Errorf("aggregate: max requires readings in [0, %d], got %d", s.Normal, reading)
		}
		x := float64(reading) / float64(s.Normal) // in [0, 1]
		return int64(math.Round(math.Pow(x, float64(s.Power)) * fixedPointScale)), nil
	case Min:
		if s.Power < 1 || s.Normal < 1 {
			return 0, fmt.Errorf("aggregate: min requires positive Power and Normal, got %d/%d", s.Power, s.Normal)
		}
		if reading < s.MinFloor() || reading > s.Normal {
			return 0, fmt.Errorf("aggregate: min requires readings in [%d, %d], got %d", s.MinFloor(), s.Normal, reading)
		}
		x := float64(s.Normal) / float64(reading) // in [1, 2^(52/k)]
		return int64(math.Round(math.Pow(x, float64(s.Power)))), nil
	default:
		return 0, fmt.Errorf("aggregate: unknown kind %v", s.Kind)
	}
}

// Finalize maps the per-round network sums and the participant count back
// to the statistic. sums must hold Rounds() entries.
func (s Spec) Finalize(sums []int64, count uint32) (float64, error) {
	if len(sums) != s.Rounds() {
		return 0, fmt.Errorf("aggregate: %v expects %d round sums, got %d", s.Kind, s.Rounds(), len(sums))
	}
	n := float64(count)
	switch s.Kind {
	case Sum:
		return float64(sums[0]), nil
	case Count:
		return float64(sums[0]), nil
	case Average:
		if count == 0 {
			return 0, fmt.Errorf("aggregate: average of zero readings: %w", ErrNoData)
		}
		return float64(sums[0]) / n, nil
	case Variance:
		if count == 0 {
			return 0, fmt.Errorf("aggregate: variance of zero readings: %w", ErrNoData)
		}
		mean := float64(sums[1]) / n
		return float64(sums[0])/n - mean*mean, nil
	case Max:
		if sums[0] <= 0 {
			return 0, fmt.Errorf("aggregate: power-mean sum non-positive (%d): %w", sums[0], ErrNoData)
		}
		x := math.Pow(float64(sums[0])/fixedPointScale, 1/float64(s.Power))
		return x * float64(s.Normal), nil
	case Min:
		if sums[0] <= 0 {
			return 0, fmt.Errorf("aggregate: power-mean sum non-positive (%d): %w", sums[0], ErrNoData)
		}
		x := math.Pow(float64(sums[0]), 1/float64(s.Power))
		return float64(s.Normal) / x, nil
	default:
		return 0, fmt.Errorf("aggregate: unknown kind %v", s.Kind)
	}
}

// PowerMean computes the k-th power mean estimate of the extremum of
// readings directly (no network), for validating the approximation:
// (Σ rᵢᵏ)^(1/k) → max as k → ∞ and → min as k → −∞.
func PowerMean(readings []int64, k int) float64 {
	var sum float64
	for _, r := range readings {
		sum += math.Pow(float64(r), float64(k))
	}
	return math.Pow(sum, 1/float64(k))
}
