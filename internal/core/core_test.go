package core

import (
	"math"
	"reflect"
	"testing"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// deploy builds an instance over a fresh paper-style deployment.
func deploy(t *testing.T, nodes int, seed uint64, cfg Config) *Instance {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(net, cfg, seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCountRoundTreesAgree(t *testing.T) {
	inst := deploy(t, 400, 1, DefaultConfig())
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	participants := int64(out.Participants)
	if participants < int64(float64(inst.Net.N()-1)*0.85) {
		t.Fatalf("only %d of %d nodes participated", participants, inst.Net.N()-1)
	}
	// The two trees should deliver nearly identical totals (Figure 6).
	if d := out.Diff(); d > 10 {
		t.Fatalf("|Sb-Sr| = %d (red %d, blue %d)", d, out.Red, out.Blue)
	}
	// And both should be near the participant count (COUNT aggregate).
	if math.Abs(float64(out.Red)-float64(participants)) > 0.1*float64(participants) {
		t.Fatalf("red count %d vs participants %d", out.Red, participants)
	}
}

func TestSumMatchesParticipantSum(t *testing.T) {
	inst := deploy(t, 400, 2, DefaultConfig())
	readings := make([]int64, inst.Net.N())
	r := rng.New(42)
	for i := 1; i < len(readings); i++ {
		readings[i] = int64(r.Intn(100))
	}
	res, err := inst.RunSum(readings)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol can only aggregate participants' readings; compute the
	// reachable optimum.
	var expect int64
	for _, id := range inst.Participants() {
		expect += readings[id]
	}
	out := res.Outcomes[0]
	// Loss can only lose whole shares; with the generous windows of the
	// defaults, totals should be within a few percent of expect.
	tol := float64(expect) * 0.1
	if math.Abs(float64(out.Red)-float64(expect)) > tol {
		t.Fatalf("red sum %d vs expected %d", out.Red, expect)
	}
	if math.Abs(float64(out.Blue)-float64(expect)) > tol {
		t.Fatalf("blue sum %d vs expected %d", out.Blue, expect)
	}
}

// TestLossFreeExactness uses a small dense grid where contention is
// negligible: if no frame is lost the totals must be exactly equal on both
// trees and exactly the participant sum (Equations 5 and 6).
func TestLossFreeExactness(t *testing.T) {
	net, err := topology.Grid(5, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceWindow = 10 // stretch the window: collisions vanish
	inst, err := New(net, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.N())
	for i := range readings {
		readings[i] = int64(i * 3)
	}
	res, err := inst.RunSum(readings)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	var expect int64
	for _, id := range inst.Participants() {
		expect += readings[id]
	}
	if inst.Medium.Stats().FramesCollided == 0 {
		if out.Red != expect || out.Blue != expect {
			t.Fatalf("loss-free totals: red %d blue %d expect %d", out.Red, out.Blue, expect)
		}
	} else if out.Diff() > 2*out.Diff()+10 {
		t.Fatalf("unexpected divergence despite low load")
	}
	if !res.Accepted {
		t.Fatalf("round rejected without attack: diff %d", out.Diff())
	}
}

func TestAcceptWithoutAttack(t *testing.T) {
	inst := deploy(t, 400, 3, DefaultConfig())
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("no-attack round rejected; diff %d", res.Outcomes[0].Diff())
	}
	if res.Value != float64(res.Outcomes[0].Red) {
		t.Fatalf("finalized value %v vs red sum %d", res.Value, res.Outcomes[0].Red)
	}
}

func TestPollutionDetected(t *testing.T) {
	inst := deploy(t, 400, 4, DefaultConfig())
	// Compromise a red aggregator near the base station (the paper's most
	// serious scenario) and shift the result by +1000.
	var attacker topology.NodeID = topology.None
	for i := 1; i < inst.Net.N(); i++ {
		if inst.Trees.Role[i] == tree.RoleRed && inst.Trees.Parent[i] == 0 {
			attacker = topology.NodeID(i)
			break
		}
	}
	if attacker == topology.None {
		for _, a := range inst.Trees.Aggregators(tree.RoleRed) {
			attacker = a
			break
		}
	}
	inst.Pollute(attacker, 1000)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatalf("polluted round accepted: red %d blue %d", res.Outcomes[0].Red, res.Outcomes[0].Blue)
	}
}

func TestPollutionOnBothTreesByIndividualAttackersDetected(t *testing.T) {
	inst := deploy(t, 400, 5, DefaultConfig())
	reds := inst.Trees.Aggregators(tree.RoleRed)
	blues := inst.Trees.Aggregators(tree.RoleBlue)
	if len(reds) == 0 || len(blues) == 0 {
		t.Skip("degenerate trees")
	}
	// Two non-colluding attackers pollute different trees by different
	// amounts; the totals cannot agree (Section IV-A.4).
	inst.Pollute(reds[0], 700)
	inst.Pollute(blues[0], -300)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("doubly-polluted round accepted")
	}
}

func TestColludingAttackersEvadeDetection(t *testing.T) {
	// Documented limitation (Section VI): attackers that coordinate the
	// same delta on both trees defeat the redundancy check.
	inst := deploy(t, 400, 6, DefaultConfig())
	reds := inst.Trees.Aggregators(tree.RoleRed)
	blues := inst.Trees.Aggregators(tree.RoleBlue)
	if len(reds) == 0 || len(blues) == 0 {
		t.Skip("degenerate trees")
	}
	inst.Pollute(reds[0], 500)
	inst.Pollute(blues[0], 500)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		// Colluders can still be unlucky (loss noise), but normally the
		// deltas cancel in the comparison.
		t.Logf("colluders detected anyway (diff %d) — acceptable but unusual", res.Outcomes[0].Diff())
	}
}

func TestPolluteZeroRemoves(t *testing.T) {
	inst := deploy(t, 300, 7, DefaultConfig())
	var agg topology.NodeID = topology.None
	for _, a := range inst.Trees.Aggregators(tree.RoleRed) {
		agg = a
		break
	}
	if agg == topology.None {
		t.Skip("no red aggregator")
	}
	inst.Pollute(agg, 12345)
	inst.Pollute(agg, 0)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("removed polluter still pollutes")
	}
}

func TestAverageQuery(t *testing.T) {
	inst := deploy(t, 400, 8, DefaultConfig())
	readings := make([]int64, inst.Net.N())
	for i := range readings {
		readings[i] = 50 // constant readings: average must be exactly 50
	}
	res, err := inst.Run(aggregate.SpecFor(aggregate.Average), readings)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("average round rejected: %+v", res.Outcomes)
	}
	if math.Abs(res.Value-50) > 0.5 {
		t.Fatalf("average = %v, want 50", res.Value)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("average used %d rounds, want 2 (sum + count)", len(res.Outcomes))
	}
}

func TestVarianceQuery(t *testing.T) {
	net, err := topology.Grid(5, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceWindow = 10
	inst, err := New(net, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.N())
	for i := range readings {
		readings[i] = int64(10 + i%2*20) // values 10 or 30
	}
	res, err := inst.Run(aggregate.SpecFor(aggregate.Variance), readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("variance used %d rounds, want 3", len(res.Outcomes))
	}
	if !res.Accepted {
		t.Skip("loss made variance round diverge; acceptable on contended channels")
	}
	// True population variance of a 50/50 mix of 10 and 30 is 100; loss
	// perturbs it slightly.
	if res.Value < 60 || res.Value > 140 {
		t.Fatalf("variance = %v, want near 100", res.Value)
	}
}

func TestMaxQuery(t *testing.T) {
	net, err := topology.Grid(5, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceWindow = 10
	inst, err := New(net, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.N())
	for i := range readings {
		readings[i] = int64(100 + i*10)
	}
	res, err := inst.Run(aggregate.SpecFor(aggregate.Max), readings)
	if err != nil {
		t.Fatal(err)
	}
	trueMax := float64(0)
	for _, id := range inst.Participants() {
		if v := float64(readings[id]); v > trueMax {
			trueMax = v
		}
	}
	if !res.Accepted {
		t.Skip("max round rejected due to loss")
	}
	if res.Value < trueMax*0.95 || res.Value > trueMax*1.35 {
		t.Fatalf("max estimate %v, true %v", res.Value, trueMax)
	}
}

func TestDisabledNodesExcluded(t *testing.T) {
	nodes := 400
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Disabled = make([]bool, net.N())
	for i := 1; i <= 100; i++ {
		cfg.Disabled[i] = true
	}
	inst, err := New(net, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range inst.Participants() {
		if cfg.Disabled[p] {
			t.Fatalf("disabled node %d participates", p)
		}
	}
	for i := 1; i <= 100; i++ {
		if r := inst.Trees.Role[i]; r == tree.RoleRed || r == tree.RoleBlue {
			t.Fatalf("disabled node %d became %v aggregator", i, r)
		}
	}
}

func TestRunValidatesReadings(t *testing.T) {
	inst := deploy(t, 200, 13, DefaultConfig())
	if _, err := inst.RunSum(make([]int64, 5)); err == nil {
		t.Fatal("wrong-length readings accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	net, _ := topology.Grid(3, 20, 50)
	bad := DefaultConfig()
	bad.Slices = 0
	if _, err := New(net, bad, 1); err == nil {
		t.Fatal("Slices=0 accepted")
	}
	bad = DefaultConfig()
	bad.Threshold = -1
	if _, err := New(net, bad, 1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	bad = DefaultConfig()
	bad.SliceWindow = 0
	if _, err := New(net, bad, 1); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestMultipleRoundsIndependent(t *testing.T) {
	inst := deploy(t, 300, 14, DefaultConfig())
	a, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	// Same trees, so participant counts equal; totals close.
	if a.Outcomes[0].Participants != b.Outcomes[0].Participants {
		t.Fatalf("participants changed across rounds: %d vs %d",
			a.Outcomes[0].Participants, b.Outcomes[0].Participants)
	}
	if !a.Accepted || !b.Accepted {
		t.Fatal("clean rounds rejected")
	}
}

// TestRoundStateReuseAcrossRounds pins the zero-alloc round contract: the
// per-round buffers (contribution vector, child accumulators, assemblers)
// are allocated once per instance and then reused in place — including
// across the two additive rounds of an AVERAGE query and across queries.
func TestRoundStateReuseAcrossRounds(t *testing.T) {
	inst := deploy(t, 200, 16, DefaultConfig())
	readings := make([]int64, inst.Net.N())
	for i := range readings {
		readings[i] = 40
	}
	if _, err := inst.Run(aggregate.SpecFor(aggregate.Average), readings); err != nil {
		t.Fatal(err)
	}
	contribs := &inst.contribs[0]
	childSum := &inst.childSum[0]
	asm := inst.assembled[1].red
	if _, err := inst.Run(aggregate.SpecFor(aggregate.Average), readings); err != nil {
		t.Fatal(err)
	}
	if &inst.contribs[0] != contribs || &inst.childSum[0] != childSum || inst.assembled[1].red != asm {
		t.Fatal("per-round buffers were reallocated across rounds")
	}
	// Warm resets must stay off the allocator entirely.
	if n := testing.AllocsPerRun(50, inst.resetRoundState); n != 0 {
		t.Fatalf("resetRoundState allocates %v per round, want 0", n)
	}
}

func TestOverheadRatioVsSlices(t *testing.T) {
	// Section IV-A.2: per-round traffic grows roughly like 2l-1 slice
	// messages + 1 aggregate; l=2 rounds should cost notably more than
	// l=1 rounds.
	cfg1 := DefaultConfig()
	cfg1.Slices = 1
	cfg2 := DefaultConfig()
	cfg2.Slices = 2
	i1 := deploy(t, 400, 15, cfg1)
	i2 := deploy(t, 400, 15, cfg2)
	r1, err := i1.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := i2.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	b1 := float64(r1.Outcomes[0].Bytes)
	b2 := float64(r2.Outcomes[0].Bytes)
	ratio := b2 / b1
	// Per-round slice messages: l=1 sends ~1 (leaf: 2, aggregator: 1),
	// l=2 sends ~3-4. Expect a ratio comfortably above 1.5.
	if ratio < 1.3 || ratio > 3.5 {
		t.Fatalf("l=2/l=1 byte ratio %.2f out of expected band", ratio)
	}
}

func TestMultipleBaseStations(t *testing.T) {
	// Three collection points: node 0 (field center) plus two sensors
	// promoted to base stations. Totals must fuse to the same participant
	// count, trees stay disjoint, and the tree depth shrinks (nodes attach
	// to the nearest root).
	net, err := topology.Random(topology.PaperConfig(400), rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(net, DefaultConfig(), 62)
	if err != nil {
		t.Fatal(err)
	}
	multiCfg := DefaultConfig()
	multiCfg.ExtraRoots = []topology.NodeID{50, 200}
	multi, err := New(net, multiCfg, 62)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Trees.Role[50] != tree.RoleBase || multi.Trees.Role[200] != tree.RoleBase {
		t.Fatalf("extra roots not RoleBase: %v %v", multi.Trees.Role[50], multi.Trees.Role[200])
	}
	res, err := multi.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("multi-sink round rejected: %+v", res.Outcomes[0])
	}
	participants := int64(res.Outcomes[0].Participants)
	if res.Outcomes[0].Red < participants*9/10 || res.Outcomes[0].Red > participants {
		t.Fatalf("fused red total %d vs %d participants", res.Outcomes[0].Red, participants)
	}
	// Extra roots hold no readings.
	for _, p := range multi.Participants() {
		if p == 50 || p == 200 {
			t.Fatal("root listed as participant")
		}
	}
	// Depth benefit: max hop with three sinks at most that with one.
	maxHop := func(in *Instance) uint16 {
		var h uint16
		for i := range in.Trees.Hop {
			if in.Trees.Hop[i] > h {
				h = in.Trees.Hop[i]
			}
		}
		return h
	}
	if maxHop(multi) > maxHop(single) {
		t.Fatalf("multi-sink max hop %d above single-sink %d", maxHop(multi), maxHop(single))
	}
	// Pollution detection still works across fused totals.
	aggs := multi.Trees.Aggregators(tree.RoleRed)
	if len(aggs) > 0 {
		multi.Pollute(aggs[0], 800)
		res, err = multi.RunCount()
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("pollution accepted under multiple sinks")
		}
	}
}

func TestExtraRootValidation(t *testing.T) {
	net, _ := topology.Grid(3, 20, 50)
	cfg := DefaultConfig()
	cfg.ExtraRoots = []topology.NodeID{topology.NodeID(net.N())}
	if _, err := New(net, cfg, 1); err == nil {
		t.Fatal("out-of-range extra root accepted")
	}
	cfg.ExtraRoots = []topology.NodeID{0}
	if _, err := New(net, cfg, 1); err == nil {
		t.Fatal("node 0 as extra root accepted")
	}
}

func TestRandomPredistKeysEndToEnd(t *testing.T) {
	// iPDA over Eschenauer–Gligor key predistribution: dense rings keep
	// almost every neighbor pair keyed, so the protocol runs essentially
	// as with pairwise keys.
	net, err := topology.Random(topology.PaperConfig(400), rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := linksec.NewRandomPredist(net.N(), 1000, 150, 9, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keys = keys
	inst, err := New(net, cfg, 53)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("round rejected under key predistribution: %+v", res.Outcomes[0])
	}
	if res.Outcomes[0].Participants < (net.N()-1)*8/10 {
		t.Fatalf("only %d participants with dense rings", res.Outcomes[0].Participants)
	}
}

func TestSparseKeyRingsShrinkParticipation(t *testing.T) {
	// Tiny rings leave many neighbor pairs keyless; keyedTargets filters
	// them out and participation drops, but totals on both trees stay
	// consistent (equal inputs).
	net, err := topology.Random(topology.PaperConfig(400), rng.New(54))
	if err != nil {
		t.Fatal(err)
	}
	sparseKeys, err := linksec.NewRandomPredist(net.N(), 1000, 35, 9, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keys = sparseKeys
	sparse, err := New(net, cfg, 56)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := New(net, DefaultConfig(), 56)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sparse.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dense.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Outcomes[0].Participants >= rd.Outcomes[0].Participants {
		t.Fatalf("sparse rings did not shrink participation: %d vs %d",
			rs.Outcomes[0].Participants, rd.Outcomes[0].Participants)
	}
	if !rs.Accepted {
		t.Fatalf("sparse-ring round rejected: %+v", rs.Outcomes[0])
	}
}

func TestQCompositeKeysEndToEnd(t *testing.T) {
	net, err := topology.Random(topology.PaperConfig(400), rng.New(57))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := linksec.NewQComposite(net.N(), 500, 120, 2, 9, rng.New(58))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keys = keys
	inst, err := New(net, cfg, 59)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("round rejected under q-composite keys: %+v", res.Outcomes[0])
	}
}

func TestKillAggregatorLosesSubtreeAndTriggersRejection(t *testing.T) {
	inst := deploy(t, 400, 21, DefaultConfig())
	// Kill a red aggregator with children (one whose ID appears as some
	// other aggregator's parent).
	var victim topology.NodeID = topology.None
	for i := 1; i < inst.Net.N(); i++ {
		if inst.Trees.Role[i] != tree.RoleRed {
			continue
		}
		for j := 1; j < inst.Net.N(); j++ {
			if inst.Trees.Parent[j] == topology.NodeID(i) {
				victim = topology.NodeID(i)
				break
			}
		}
		if victim != topology.None {
			break
		}
	}
	if victim == topology.None {
		t.Skip("no red aggregator with children")
	}
	inst.Kill(victim)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	// The red tree lost the victim's whole subtree, so the trees disagree
	// by more than Th and the base station rejects — node failures and
	// attacks are indistinguishable to it (Sec. III-A).
	if res.Accepted {
		t.Fatalf("round accepted despite dead aggregator: red %d blue %d",
			res.Outcomes[0].Red, res.Outcomes[0].Blue)
	}
	// After revival the next round is clean again.
	inst.Revive(victim)
	res, err = inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("round rejected after revival")
	}
}

func TestKillLeafOnlyLosesOneReading(t *testing.T) {
	inst := deploy(t, 400, 22, DefaultConfig())
	base, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	var leaf topology.NodeID = topology.None
	for i := 1; i < inst.Net.N(); i++ {
		if inst.Trees.Role[i] == tree.RoleLeaf && inst.Trees.CanSlice(topology.NodeID(i), 2) {
			leaf = topology.NodeID(i)
			break
		}
	}
	if leaf == topology.None {
		t.Skip("no participating leaf")
	}
	inst.Kill(leaf)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("round rejected after one leaf died")
	}
	if res.Outcomes[0].Participants != base.Outcomes[0].Participants-1 {
		t.Fatalf("participants %d, want %d", res.Outcomes[0].Participants, base.Outcomes[0].Participants-1)
	}
}

// TestKillSymmetricLossAndExactRevive pins the mid-query Kill/Revive
// semantics on a loss-free grid: a killed participating leaf's reading
// disappears from BOTH tree totals symmetrically (the trees still agree
// exactly), and Revive restores the pre-kill totals bit for bit.
func TestKillSymmetricLossAndExactRevive(t *testing.T) {
	net, err := topology.Grid(5, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceWindow = 20 // stretch the window: collisions vanish
	readings := make([]int64, net.N())
	for i := range readings {
		readings[i] = int64(i*3 + 1)
	}
	// Probe seeds for a sequence where all three rounds stay loss-free;
	// only then are the exactness assertions meaningful.
seeds:
	for seed := uint64(1); seed <= 30; seed++ {
		inst, err := New(net, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (RoundOutcome, bool) {
			collided := inst.Medium.Stats().FramesCollided
			res, err := inst.RunSum(readings)
			if err != nil {
				t.Fatal(err)
			}
			return res.Outcomes[0], inst.Medium.Stats().FramesCollided == collided
		}
		var leaf topology.NodeID = topology.None
		for i := 1; i < net.N(); i++ {
			if inst.Trees.Role[i] == tree.RoleLeaf && inst.Trees.CanSlice(topology.NodeID(i), cfg.Slices) {
				leaf = topology.NodeID(i)
				break
			}
		}
		if leaf == topology.None {
			continue
		}
		before, ok := run()
		if !ok {
			continue seeds
		}
		if before.Red != before.Blue {
			t.Fatalf("seed %d: loss-free baseline trees disagree: red %d blue %d", seed, before.Red, before.Blue)
		}
		inst.Kill(leaf)
		killed, ok := run()
		inst.Revive(leaf)
		if !ok {
			continue seeds
		}
		want := before.Red - readings[leaf]
		if killed.Red != want || killed.Blue != want {
			t.Fatalf("seed %d: killed-leaf totals red %d blue %d, want both %d (lost reading %d symmetrically)",
				seed, killed.Red, killed.Blue, want, readings[leaf])
		}
		after, ok := run()
		if !ok {
			continue seeds
		}
		if after.Red != before.Red || after.Blue != before.Blue {
			t.Fatalf("seed %d: revive did not restore totals: before (%d,%d), after (%d,%d)",
				seed, before.Red, before.Blue, after.Red, after.Blue)
		}
		return
	}
	t.Skip("no seed in [1,30] gave three loss-free rounds")
}

// TestRepairReattachesAroundDeadAggregator compares repair on/off over
// identical deployments and trees: killing a red aggregator with children
// partitions the red tree and gets the round rejected without repair,
// while localized re-attachment keeps the round accepted — and keeps the
// trees disjoint.
func TestRepairReattachesAroundDeadAggregator(t *testing.T) {
	build := func(repair bool) *Instance {
		cfg := DefaultConfig()
		cfg.Repair = repair
		return deploy(t, 400, 21, cfg)
	}
	plain, repaired := build(false), build(true)
	// Same seed, same rng consumption: both instances hold identical trees.
	var victim topology.NodeID = topology.None
	for i := 1; i < plain.Net.N(); i++ {
		if plain.Trees.Role[i] != tree.RoleRed {
			continue
		}
		for j := 1; j < plain.Net.N(); j++ {
			if plain.Trees.Parent[j] == topology.NodeID(i) {
				victim = topology.NodeID(i)
				break
			}
		}
		if victim != topology.None {
			break
		}
	}
	if victim == topology.None {
		t.Skip("no red aggregator with children")
	}
	plain.Kill(victim)
	repaired.Kill(victim)
	resPlain, err := plain.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	resRepair, err := repaired.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Accepted {
		t.Fatalf("no-repair round accepted despite dead aggregator: %+v", resPlain.Outcomes[0])
	}
	out := resRepair.Outcomes[0]
	if !resRepair.Accepted {
		t.Fatalf("repaired round rejected: %+v", out)
	}
	if out.Repaired == 0 {
		t.Fatal("repair round reports no re-attachments")
	}
	if out.Dead != 1 {
		t.Fatalf("Dead = %d, want 1", out.Dead)
	}
	if err := repaired.Trees.Disjoint(); err != nil {
		t.Fatalf("repair violated disjointness: %v", err)
	}
	// Graceful degradation accounting: with repair, nearly every planned
	// participant still contributed on both trees.
	if out.RedContributed < out.Participants*9/10 || out.BlueContributed < out.Participants*9/10 {
		t.Fatalf("contributors collapsed despite repair: red %d blue %d of %d participants",
			out.RedContributed, out.BlueContributed, out.Participants)
	}
}

// TestChurnRepairPreservesDisjointness runs 50 seeded churn trials and
// asserts the repair invariant: every repaired round leaves the trees
// node-disjoint (RepairDead re-verifies internally and any violation
// surfaces as a Run error; the final state is also checked externally).
func TestChurnRepairPreservesDisjointness(t *testing.T) {
	totalRepairs := 0
	for seed := uint64(0); seed < 50; seed++ {
		net, err := topology.Random(topology.PaperConfig(150), rng.New(300+seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Repair = true
		cfg.Faults = &fault.Config{CrashRate: 0.12, RecoverRate: 0.3, Seed: seed}
		inst, err := New(net, cfg, 400+seed)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			res, err := inst.RunCount()
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			totalRepairs += res.Outcomes[0].Repaired
			if err := inst.Trees.Disjoint(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
		}
	}
	if totalRepairs == 0 {
		t.Fatal("50 churn trials triggered no repairs; schedule inert")
	}
}

// TestRepairBeatsNoRepairUnderChurn drives identical fault schedules with
// and without repair: repair must accept strictly more rounds once churn
// reaches 5%/round (the paper-level claim the churn experiment sweeps).
func TestRepairBeatsNoRepairUnderChurn(t *testing.T) {
	accepted := func(repair bool) int {
		net, err := topology.Random(topology.PaperConfig(400), rng.New(91))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Repair = repair
		cfg.Faults = &fault.Config{CrashRate: 0.05, RecoverRate: 0.25, Seed: 17}
		inst, err := New(net, cfg, 92)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for round := 0; round < 8; round++ {
			res, err := inst.RunCount()
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				n++
			}
		}
		return n
	}
	with, without := accepted(true), accepted(false)
	if with <= without {
		t.Fatalf("repair accepted %d of 8 rounds, no-repair %d — want strict improvement", with, without)
	}
}

func TestDisseminateQuery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisseminateQuery = true
	withFlood := deploy(t, 400, 23, cfg)
	resFlood, err := withFlood.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !resFlood.Accepted {
		t.Fatalf("disseminated round rejected: %+v", resFlood.Outcomes[0])
	}
	// The flood reaches essentially every participant in a dense network.
	want := len(withFlood.Participants())
	got := resFlood.Outcomes[0].Participants
	if got < want*95/100 {
		t.Fatalf("flood reached %d of %d participants", got, want)
	}
	// And costs extra traffic versus the scheduled epoch.
	scheduled := deploy(t, 400, 23, DefaultConfig())
	resSched, err := scheduled.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if resFlood.Outcomes[0].Frames <= resSched.Outcomes[0].Frames {
		t.Fatalf("flooded round frames %d not above scheduled %d",
			resFlood.Outcomes[0].Frames, resSched.Outcomes[0].Frames)
	}
}

func TestFadingLossARQRecovers(t *testing.T) {
	// 20% independent fading loss: the ARQ turns it into retries, and the
	// round still completes with agreeing trees.
	cfg := DefaultConfig()
	cfg.LossRate = 0.2
	inst := deploy(t, 400, 31, cfg)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if inst.MAC.Stats().Retries == 0 {
		t.Fatal("no retries at 20% fading; loss model inert")
	}
	if !res.Accepted {
		t.Fatalf("fading round rejected: %+v", res.Outcomes[0])
	}
	// Fading also hits HELLO broadcasts (no ARQ), so participation may
	// dip slightly, but the dense network stays well covered.
	if res.Outcomes[0].Participants < (inst.Net.N()-1)*7/10 {
		t.Fatalf("participation collapsed under fading: %d", res.Outcomes[0].Participants)
	}
}

func TestLossRateValidation(t *testing.T) {
	net, _ := topology.Grid(3, 20, 50)
	cfg := DefaultConfig()
	cfg.LossRate = 1.0
	if _, err := New(net, cfg, 1); err == nil {
		t.Fatal("LossRate=1 accepted")
	}
	cfg.LossRate = -0.1
	if _, err := New(net, cfg, 1); err == nil {
		t.Fatal("negative LossRate accepted")
	}
}

// TestCongestionLossBehavior verifies the loss model end to end: with the
// default relaxed slicing window the ARQ recovers everything and the trees
// agree exactly; compressing the window to 0.1 s congests the channel so
// some retries exhaust, and the trees diverge — but only by a handful of
// counts, the regime that justifies the paper's Th = 5.
func TestCongestionLossBehavior(t *testing.T) {
	run := func(window float64, seed uint64) (diff int64, dropped uint64) {
		net, err := topology.Random(topology.PaperConfig(500), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.SliceWindow = eventsim.Time(window)
		in, err := New(net, cfg, seed+9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.RunCount()
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcomes[0].Diff(), in.MAC.Stats().Dropped
	}
	var congestedDrops uint64
	var worstDiff int64
	for _, seed := range []uint64{77, 78, 79} {
		relaxedDiff, relaxedDrops := run(2.0, seed)
		if relaxedDrops != 0 || relaxedDiff != 0 {
			t.Fatalf("seed %d: relaxed window lost frames: diff=%d drops=%d", seed, relaxedDiff, relaxedDrops)
		}
		diff, drops := run(0.08, seed)
		congestedDrops += drops
		if diff > worstDiff {
			worstDiff = diff
		}
	}
	if congestedDrops == 0 {
		t.Fatal("congested windows produced no drops across seeds; loss model inert")
	}
	if worstDiff > 50 {
		t.Fatalf("congested diff %d implausibly large", worstDiff)
	}
}

func TestDeterministicRun(t *testing.T) {
	run := func() (int64, int64) {
		net, _ := topology.Random(topology.PaperConfig(250), rng.New(77))
		inst, err := New(net, DefaultConfig(), 88)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.RunCount()
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcomes[0].Red, res.Outcomes[0].Blue
	}
	r1, b1 := run()
	r2, b2 := run()
	if r1 != r2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", r1, b1, r2, b2)
	}
}

// TestObsDoesNotPerturbRun is the determinism contract of the
// instrumentation layer: attaching a sink must leave every protocol
// outcome bit-identical to the uninstrumented run.
func TestObsDoesNotPerturbRun(t *testing.T) {
	run := func(sink *obs.Sink) *Result {
		net, err := topology.Random(topology.PaperConfig(250), rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Obs = sink
		inst, err := New(net, cfg, 88)
		if err != nil {
			t.Fatal(err)
		}
		readings := make([]int64, net.N())
		r := rng.New(5)
		for i := 1; i < len(readings); i++ {
			readings[i] = int64(r.Intn(50))
		}
		res, err := inst.RunSum(readings)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	sink := obs.NewSink()
	observed := run(sink)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("instrumentation changed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	if sink.Spans.Len() == 0 {
		t.Fatal("observed run recorded no spans")
	}
	if len(sink.Reg.Snapshot()) == 0 {
		t.Fatal("observed run recorded no metrics")
	}
	// The recorded spans must include the nested tree-construction and
	// per-node slicing phases the trace viewer shows.
	names := map[string]bool{}
	for _, ev := range sink.Spans.Events() {
		names[ev.Name] = true
	}
	for _, want := range []string{
		"phase1:tree-construction", "phase1:red-flood", "phase1:blue-flood",
		"phase2:slicing", "phase3:tree-aggregation", "round",
	} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
}

// TestCoalescedRoundAccepted runs a full no-attack COUNT round with
// slice-coalesced framing under both channel-access schemes: the round
// must still be accepted with both trees near the participant count, and
// the medium must actually have carried multi-slice frames.
func TestCoalescedRoundAccepted(t *testing.T) {
	for _, scheme := range []mac.Scheme{mac.SchemeCSMA, mac.SchemeTDMA} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Slices = 2
			cfg.Coalesce = true
			cfg.MAC.Scheme = scheme
			inst := deploy(t, 200, 5, cfg)
			res, err := inst.RunCount()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("coalesced no-attack round rejected; diff %d", res.Outcomes[0].Diff())
			}
			out := res.Outcomes[0]
			participants := float64(out.Participants)
			if math.Abs(float64(out.Red)-participants) > 0.1*participants {
				t.Errorf("red count %d vs participants %d", out.Red, out.Participants)
			}
			st := inst.Medium.Stats()
			if st.FramesCoalesced == 0 {
				t.Error("no coalesced frames on the air despite Coalesce mode")
			}
			if st.SlicesCoalesced < 2*st.FramesCoalesced {
				t.Errorf("coalesced %d slices over %d frames: multi-slice frames should average >= 2",
					st.SlicesCoalesced, st.FramesCoalesced)
			}
		})
	}
}

// TestCoalesceOffUnchanged pins the flag default: with Coalesce unset no
// KindSliceBatch frame is ever transmitted, so every recorded table and
// golden keeps its meaning.
func TestCoalesceOffUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 2
	inst := deploy(t, 200, 5, cfg)
	if _, err := inst.RunCount(); err != nil {
		t.Fatal(err)
	}
	if st := inst.Medium.Stats(); st.FramesCoalesced != 0 || st.SlicesCoalesced != 0 {
		t.Fatalf("coalescing stats nonzero with Coalesce off: %+v", st)
	}
}
