// Package core implements the iPDA protocol — the paper's primary
// contribution — over the simulated wireless network.
//
// An Instance binds one deployed network to one pair of disjoint
// aggregation trees (Phase I, delegated to package tree) and then answers
// aggregation queries round by round:
//
//   - Phase II (privacy-preserving data report): every participating node
//     splits its per-round additive contribution into l encrypted slices
//     per tree and sends them to aggregator neighbors at random times
//     inside the slicing window; aggregators decrypt and assemble.
//   - Phase III (integrity-protecting aggregation): aggregators fold their
//     assembled totals with their children's partial sums, deepest hops
//     first, up each tree independently; the base station cross-checks the
//     two totals and accepts the round only if |S_b − S_r| ≤ Th.
//
// The engine also exposes the hooks the evaluation needs: pollution
// attackers (Section II-C), node disablement for DoS-attacker localization
// (Section III-D), per-phase byte accounting (Figure 7), and
// coverage/participation metrics (Figure 8).
package core

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/slicing"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// Config parameterizes one iPDA instance.
type Config struct {
	// Slices is l, the number of slices per tree (paper recommends 2;
	// l = 1 disables slicing and reports plain encrypted readings).
	Slices int
	// Threshold is Th, the acceptance threshold on |S_b − S_r|
	// (Section III-D; the paper suggests small values such as 5 for
	// COUNT).
	Threshold int64
	// Tree configures Phase I.
	Tree tree.Config
	// MAC configures the CSMA layer.
	MAC mac.Config
	// Keys is the link-key scheme; nil selects a pairwise scheme derived
	// from the instance seed.
	Keys linksec.Scheme
	// Suite selects the keystream/tag primitive slices are sealed with.
	// The zero value is the batched AES-CTR engine; linksec.SuiteSHA256
	// selects the original SHA-256-PRF compat mode. Experiment tables are
	// suite-independent (no result consumes ciphertext bytes).
	Suite linksec.Suite
	// SliceWindow is the Phase II reporting window; slices are sent at
	// uniform random offsets within it.
	SliceWindow eventsim.Time
	// AggSlot is the Phase III per-hop time slot: aggregators at hop h
	// transmit (maxHop − h) slots into the phase, children before parents.
	AggSlot eventsim.Time
	// ShareSpread controls slice magnitudes: shares are uniform over
	// [−s·|v|, s·|v|] (see slicing.SplitBounded). Zero selects full-ring
	// uniform shares — perfect hiding, but a single lost slice randomizes
	// the round total, so use it only on effectively loss-free channels.
	ShareSpread int64
	// DisseminateQuery makes each round start with a base-station QUERY
	// flood (aggregators rebroadcast once); nodes open their slicing
	// window on reception, and nodes the flood misses skip the round. The
	// default (false) models pre-scheduled epochs, the common TAG-style
	// deployment; enabling it adds the flood's traffic to the round.
	DisseminateQuery bool
	// Disabled marks nodes excluded from the protocol (see tree.Config).
	Disabled []bool
	// ExtraRoots lists additional base stations beyond node 0 (Section
	// II-A). Each roots both trees and collects partial results; the
	// final totals fuse all roots' collections. Roots hold no readings.
	ExtraRoots []topology.NodeID
	// LossRate adds independent per-reception fading loss in [0, 1) on
	// top of the collision model; the ARQ recovers unicast losses, so
	// moderate fading costs retries rather than data.
	LossRate float64
	// Faults optionally replays a deterministic crash/recover schedule
	// against this instance: the schedule advances once per additive
	// round, just before the round starts, driving Kill/Revive (see
	// internal/fault). Base stations are always protected. Nil disables
	// injection.
	Faults *fault.Config
	// Coalesce packs each participant's same-round remote slices (both
	// trees) into one multi-slice frame (packet.KindSliceBatch) with one
	// MAC exchange: the frame is addressed to — and ACKed by — the first
	// slice target, and the other targets decode it promiscuously (the
	// radio is a broadcast medium either way). Under TDMA the channel is
	// collision-free, so non-anchor pickups are as reliable as the anchor;
	// under CSMA they forgo individual ARQ — a deliberate modeled tradeoff
	// between frame economy and per-slice reliability. Coalescing changes
	// the modeled byte/frame counts, so it is off by default and every
	// default table is untouched.
	Coalesce bool
	// Repair enables localized tree repair: each round, live aggregators
	// whose parent is dead re-attach to an alternate live same-color
	// neighbor (tree.Result.RepairDead), and slice senders avoid dead or
	// skipping targets. Without it the trees are used as built and a dead
	// aggregator silently severs its whole subtree.
	Repair bool
	// Obs is the optional instrumentation sink, threaded through the
	// whole stack (radio, MAC, trees, energy, and the protocol phases).
	// Nil disables instrumentation; observing never alters a run's
	// protocol behavior or its results.
	Obs *obs.Sink
	// QTrace is the optional causal per-query tracer (see
	// internal/qtrace). Every traced frame carries its causing span in
	// the packet header's trace context, so radio airtime, MAC retries,
	// and joules attribute hop by hop to a causally linked span tree
	// rooted at the round. Tracing never schedules events and never
	// draws randomness; nil disables it, and runs are byte-identical
	// either way.
	QTrace *qtrace.Tracer
}

// DefaultConfig returns the paper's recommended parameters: l = 2, Th = 5,
// adaptive trees with k = 4.
func DefaultConfig() Config {
	return Config{
		Slices:      2,
		Threshold:   5,
		Tree:        tree.DefaultConfig(),
		MAC:         mac.DefaultConfig(),
		SliceWindow: 2.0,
		AggSlot:     0.25,
		ShareSpread: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Slices < 1 {
		return fmt.Errorf("core: Slices must be >= 1, got %d", c.Slices)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("core: Threshold must be >= 0, got %d", c.Threshold)
	}
	if c.SliceWindow <= 0 || c.AggSlot <= 0 {
		return fmt.Errorf("core: SliceWindow and AggSlot must be positive")
	}
	if c.ShareSpread < 0 {
		return fmt.Errorf("core: ShareSpread must be >= 0, got %d", c.ShareSpread)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("core: LossRate must be in [0, 1), got %v", c.LossRate)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return c.Tree.Validate()
}

// Instance is one deployed iPDA network with constructed trees, ready to
// answer aggregation queries. It is not safe for concurrent use; run
// independent instances on separate goroutines instead.
type Instance struct {
	Net    *topology.Network
	Cfg    Config
	Sim    *eventsim.Sim
	Medium *radio.Medium
	MAC    *mac.MAC
	Trees  *tree.Result
	Keys   linksec.Scheme

	// OnSlice, when set, observes every slice put on the air (ground
	// truth, independent of delivery): the attack experiments use it to
	// model eavesdroppers with per-link compromise probabilities without
	// re-deriving plaintexts from ciphertexts.
	OnSlice func(src, dst topology.NodeID, color packet.Color, share int64)
	// OnLocalShare observes shares an aggregator keeps for itself (these
	// never touch the air).
	OnLocalShare func(id topology.NodeID, color packet.Color, share int64)

	rand *rng.Stream
	// round counts additive rounds over the deployment's whole lifetime
	// (an epoch pipeline runs tens of thousands per instance). Only its
	// low 16 bits go on the air — packet.Header.Round — and feed the
	// slice nonces; era is the high bits, and every era boundary rotates
	// the link keys (see linksec.EraKeys), so the effective nonce
	// identity (era, wire nonce) never repeats.
	round     uint64
	era       uint64
	polluters map[topology.NodeID]int64
	dead      []bool
	ciphers   *linksec.CipherCache // per-link sealing state over Keys
	obs       *coreObs
	builder   tree.Builder // reusable Phase I machinery (see Reset)

	// Fault-injection and repair state. basisParent is the pristine
	// Phase I parent vector; repair mutates Trees.Parent per round and the
	// basis restores it at the next round's start. skip marks live
	// aggregators sitting the current round out (no disjoint
	// re-attachment existed for them).
	faults      *fault.Injector
	faultRound  int
	basisParent []topology.NodeID
	skip        []bool
	treesDirty  bool

	// Per-round mutable state: allocated once on first use and cleared in
	// place by resetRoundState, so steady-state rounds reuse the buffers.
	assembled  []assemblerPair
	childSum   []int64
	childCount []uint32
	contribs   []int64
	// planned/delivered count Phase II shares per origin node and tree
	// (index 0 red, 1 blue): the participation accounting behind the
	// RoundOutcome contributor fields.
	planned   [2][]uint16
	delivered [2][]uint16
	bsChild   [2]bsAccum // Phase III arrivals at the base station (0 red, 1 blue)
	onQuery   func(self topology.NodeID, p *packet.Packet)

	// Steady-state reuse machinery: the per-node slicing plans, the
	// candidate-filter scratch, the pooled Phase II/III send events, and
	// the single dispatch handler shared by every node. None of it affects
	// behavior — only where the bytes live.
	plans      []slicePlan
	redCands   []topology.NodeID
	blueCands  []topology.NodeID
	sliceFree  []*sliceEvent
	aggFree    []*aggEvent
	heard      []bool
	dispatchFn mac.Handler
	// Per-node Phase II seal staging: both colors' remote shares are
	// collected here and sealed in one SealBatch call, so paired nonces on
	// a link share one AES keystream block. sealColors runs parallel to
	// sealReqs (the batch entries carry no color).
	sealReqs   []linksec.SealReq
	sealColors []packet.Color

	// Query-tracing state (nil qt disables every site). roundSpan is the
	// current round's root span; queryParent carries the received QUERY
	// frame's span across the onQuery → start handoff; pendingAgg holds,
	// per node, the child aggregate spans awaiting re-parenting to the
	// node's own aggregate span (or, at a base station, to the verify
	// instant). lastBSArrival is tracked unconditionally — it feeds
	// RoundOutcome.Latency, which must not depend on tracing.
	qt            *qtrace.Tracer
	roundSpan     qtrace.Ref
	queryParent   qtrace.Ref
	pendingAgg    [][]qtrace.Ref
	lastBSArrival eventsim.Time
}

// slicePlan is one node's Phase II plan for the current round. The targets
// and share slices are reused across rounds; active marks plans built this
// round and flips off when the node's slicing window opens (start at most
// once).
type slicePlan struct {
	targets   slicing.Targets
	red, blue []int64
	active    bool
}

// sliceEvent is a pooled deferred MAC send for one Phase II slice — or,
// with coalescing, one multi-slice batch frame whose entries live in the
// event's own reusable buffer. fire is built once per event and recycles
// the event right after Send (the MAC deep-copies the packet, entries
// included), so steady-state rounds schedule slices with no per-slice
// closure or packet allocation.
type sliceEvent struct {
	in      *Instance
	src     topology.NodeID
	pkt     packet.Packet
	entries []packet.SliceEntry
	fire    func()
}

// aggEvent is the pooled Phase III counterpart: a deferred sendAggregate.
type aggEvent struct {
	in    *Instance
	id    topology.NodeID
	round uint16
	fire  func()
}

// coreObs holds the protocol engine's pre-resolved instrument handles;
// nil disables instrumentation for one pointer check per site.
type coreObs struct {
	slicesSent      obs.Counter
	slicesLocal     obs.Counter
	slicesAssembled obs.Counter
	slicesRejected  obs.Counter
	aggregatesSent  obs.Counter
	roundsAccepted  obs.Counter
	roundsRejected  obs.Counter
	repairs         obs.Counter
	roundSkips      obs.Counter
}

func newCoreObs(reg *obs.Registry) *coreObs {
	return &coreObs{
		slicesSent:      reg.Counter("ipda_core_slices_sent_total", "encrypted Phase II slices put on the air"),
		slicesLocal:     reg.Counter("ipda_core_slices_local_total", "Phase II shares an aggregator kept for itself"),
		slicesAssembled: reg.Counter("ipda_core_slices_assembled_total", "slices decrypted and folded by assemblers"),
		slicesRejected:  reg.Counter("ipda_core_slices_rejected_total", "slices dropped by authentication failure"),
		aggregatesSent:  reg.Counter("ipda_core_aggregates_sent_total", "Phase III partial sums sent to tree parents"),
		roundsAccepted: reg.Counter("ipda_core_rounds_total", "base-station verification outcomes",
			obs.Label{Name: "verdict", Value: "accepted"}),
		roundsRejected: reg.Counter("ipda_core_rounds_total", "base-station verification outcomes",
			obs.Label{Name: "verdict", Value: "rejected"}),
		repairs:    reg.Counter("ipda_core_repairs_total", "tree re-attachments applied by localized repair"),
		roundSkips: reg.Counter("ipda_core_round_skips_total", "aggregator round-skips for lack of a disjoint re-attachment"),
	}
}

// bsAccum accumulates Phase III arrivals at the base station per tree.
type bsAccum struct {
	sum   int64
	count uint32
}

type assemblerPair struct {
	red, blue *slicing.Assembler
}

// New deploys an Instance: it builds the radio stack over net, runs
// Phase I, and verifies tree disjointness. All randomness derives from
// seed, so equal inputs give byte-identical runs.
func New(net *topology.Network, cfg Config, seed uint64) (*Instance, error) {
	in := &Instance{}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset re-deploys the instance over net as if freshly constructed by
// New(net, cfg, seed) — same randomness derivation, byte-identical
// behavior — but reusing the simulator, the radio medium, the MAC's
// per-node tables, the cipher pool, the Phase I builder, and every
// per-round buffer the previous deployment grew. A trial loop that holds
// one Instance per worker and Resets it per trial runs the steady state
// almost entirely off the allocator. Callers must not use results (Trees,
// Run outputs' aliased state) from before the Reset afterwards.
func (in *Instance) Reset(net *topology.Network, cfg Config, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	n := net.N()
	root := rng.New(seed)
	if in.Sim == nil {
		in.Sim = eventsim.New()
		in.Medium = radio.New(in.Sim, net, radio.PaperRate)
	} else {
		in.Sim.Reset()
		in.Medium.Reset(net)
	}
	if cfg.LossRate > 0 {
		in.Medium.SetLoss(cfg.LossRate, root.Split(4))
	}
	macCfg := cfg.MAC
	if cfg.Coalesce && macCfg.MaxFrameSize == 0 {
		// A coalesced frame can carry every remote share of one node in
		// one round: up to Slices per tree, both trees. TDMA slots must
		// budget for it (CSMA ignores the hint).
		macCfg.MaxFrameSize = packet.SliceBatchSize(2 * cfg.Slices)
	}
	if in.MAC == nil {
		in.MAC = mac.New(in.Sim, in.Medium, n, macCfg, root.Split(1))
	} else {
		in.MAC.Reset(n, macCfg, root.Split(1))
	}
	if cfg.Obs != nil {
		// Attach instrumentation before Phase I so tree construction is
		// observed too. A default energy meter feeds the per-component
		// joule counters; meters only read traffic, never shape it.
		in.Medium.SetObs(cfg.Obs)
		in.MAC.SetObs(cfg.Obs)
		if meter, err := energy.NewMeter(n, energy.DefaultModel()); err == nil {
			meter.SetObs(cfg.Obs)
			in.Medium.SetMeter(meter)
		}
	}
	// Attach the tracer below the protocol too: the radio attributes
	// airtime and joules, the MAC attributes retries/backoffs/drops and
	// closes each frame's span when it leaves the queue.
	in.qt = cfg.QTrace
	in.Medium.SetQTrace(cfg.QTrace, energy.DefaultModel())
	in.MAC.SetQTrace(cfg.QTrace)
	in.roundSpan = qtrace.None
	in.queryParent = qtrace.None
	treeCfg := cfg.Tree
	treeCfg.Disabled = cfg.Disabled
	treeCfg.ExtraRoots = cfg.ExtraRoots
	treeCfg.Obs = cfg.Obs
	trees, err := in.builder.Build(in.Sim, in.Medium, in.MAC, net, treeCfg, root.Split(2))
	if err != nil {
		return err
	}
	if err := trees.Disjoint(); err != nil {
		return fmt.Errorf("core: phase I produced overlapping trees: %w", err)
	}
	keys := cfg.Keys
	if keys == nil {
		keys = linksec.NewPairwise(seed ^ 0x69706461) // "ipda"
	}
	in.Net = net
	in.Cfg = cfg
	in.Trees = trees
	in.Keys = keys
	in.rand = root.Split(3)
	in.round = 0
	in.era = 0
	if in.polluters == nil {
		in.polluters = make(map[topology.NodeID]int64)
	} else {
		clear(in.polluters)
	}
	if in.ciphers == nil {
		in.ciphers = linksec.NewCipherCache(keys, cfg.Suite)
	} else {
		in.ciphers.Reset(keys, cfg.Suite)
	}
	in.OnSlice = nil
	in.OnLocalShare = nil
	in.onQuery = nil
	if in.dead != nil {
		if len(in.dead) == n {
			clear(in.dead)
		} else {
			in.dead = nil
		}
	}
	if in.skip != nil {
		if len(in.skip) == n {
			clear(in.skip)
		} else {
			in.skip = nil
		}
	}
	in.basisParent = append(in.basisParent[:0], trees.Parent...)
	in.treesDirty = false
	in.faults = nil
	in.faultRound = 0
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(n, *cfg.Faults, cfg.ExtraRoots)
		if err != nil {
			return err
		}
		if cfg.Obs != nil {
			inj.SetObs(cfg.Obs)
		}
		inj.SetQTrace(cfg.QTrace)
		in.faults = inj
	}
	in.obs = nil
	if cfg.Obs != nil && cfg.Obs.Reg != nil {
		in.obs = newCoreObs(cfg.Obs.Reg)
	}
	return nil
}

// Pollute registers a data-pollution attacker: whenever node id forwards
// an intermediate aggregation result, it adds delta. Registering delta = 0
// removes the attacker.
func (in *Instance) Pollute(id topology.NodeID, delta int64) {
	if delta == 0 {
		delete(in.polluters, id)
		return
	}
	in.polluters[id] = delta
}

// Kill fails node id at runtime: from the next round on it neither
// transmits nor processes receptions, but — unlike Config.Disabled — the
// trees were built while it was alive. Without Config.Repair its subtree
// silently vanishes, modeling the node-failure case the base station
// cannot tell apart from an attack ("either data pollution attacks or
// node failures, or both", Section III-A); with Repair, orphaned
// aggregators re-attach around it at the next round.
func (in *Instance) Kill(id topology.NodeID) {
	if in.dead == nil {
		in.dead = make([]bool, in.Net.N())
	}
	in.dead[id] = true
}

// Revive undoes Kill (e.g. after a battery swap in a what-if experiment).
func (in *Instance) Revive(id topology.NodeID) {
	if in.dead != nil {
		in.dead[id] = false
	}
}

var _ fault.Target = (*Instance)(nil)

// disabled reports whether a node is excluded from the protocol.
func (in *Instance) disabled(id topology.NodeID) bool {
	if len(in.Cfg.Disabled) > int(id) && in.Cfg.Disabled[id] {
		return true
	}
	return in.dead != nil && in.dead[id]
}

// Participants returns the nodes that take part in Phase II with the
// configured l: covered by both trees with enough aggregator neighbors.
// The base station is not a participant (it holds no reading).
func (in *Instance) Participants() []topology.NodeID {
	var out []topology.NodeID
	for i := 1; i < in.Net.N(); i++ {
		id := topology.NodeID(i)
		if in.disabled(id) || in.Trees.Role[id] == tree.RoleBase {
			continue
		}
		if in.Trees.CanSlice(id, in.Cfg.Slices) {
			out = append(out, id)
		}
	}
	return out
}

// RoundOutcome reports one additive aggregation round.
type RoundOutcome struct {
	Red, Blue           int64  // the two tree totals S_r and S_b
	RedCount, BlueCount uint32 // aggregate-message diagnostic counts
	Participants        int    // nodes that sliced this round
	Bytes               uint64 // radio bytes spent on the round
	Frames              uint64 // frames transmitted during the round

	// RedContributed and BlueContributed count the participants whose
	// complete slice set for that tree was assembled by live aggregators
	// — simulator-side ground truth the experiments use to tell "rejected
	// because polluted" from "rejected because partitioned": a partition
	// shows up as contributor counts diverging between the trees (or
	// collapsing on both) while pollution leaves them intact.
	RedContributed, BlueContributed int
	// Dead counts nodes down when the round ran; Skipped counts live
	// aggregators that sat the round out for lack of a disjoint
	// re-attachment; Repaired counts parent re-assignments applied.
	Dead, Skipped, Repaired int
	// Latency is the round's completion latency in simulated seconds:
	// the last Phase III aggregate arrival at a base station, measured
	// from the round's start (0 if nothing arrived). It is tracked
	// unconditionally so outcomes never depend on whether tracing or
	// other instrumentation is attached.
	Latency float64
}

// Diff returns |S_b − S_r|.
func (o RoundOutcome) Diff() int64 {
	d := o.Blue - o.Red
	if d < 0 {
		d = -d
	}
	return d
}

// Result reports one full query.
type Result struct {
	Spec     aggregate.Spec
	Outcomes []RoundOutcome // one per additive round (value rounds, then count round if any)
	Accepted bool           // every round passed the |S_b − S_r| ≤ Th check
	Value    float64        // the finalized statistic (red-tree sums); valid when Accepted
	Count    uint32         // participant count used by Finalize
}

// needsCount reports whether the spec's Finalize consumes a count that must
// itself be aggregated (privately) as an extra COUNT round.
func needsCount(s aggregate.Spec) bool {
	return s.Kind == aggregate.Average || s.Kind == aggregate.Variance
}

// Run answers one aggregation query. readings[i] is node i's private
// reading; index 0 (the base station) is ignored. Nodes that cannot
// participate contribute nothing, exactly as in the protocol.
func (in *Instance) Run(spec aggregate.Spec, readings []int64) (*Result, error) {
	if len(readings) != in.Net.N() {
		return nil, fmt.Errorf("core: %d readings for %d nodes", len(readings), in.Net.N())
	}
	valueRounds := spec.Rounds()
	total := valueRounds
	if needsCount(spec) {
		total++
	}
	res := &Result{Spec: spec, Accepted: true}
	sums := make([]int64, valueRounds)
	var count uint32
	countSpec := aggregate.SpecFor(aggregate.Count)
	in.contribs = resizeCleared(in.contribs, in.Net.N())
	for round := 0; round < total; round++ {
		contribs := in.contribs
		clear(contribs)
		for i := 1; i < in.Net.N(); i++ {
			var c int64
			var err error
			if round < valueRounds {
				c, err = spec.Contribution(readings[i], round)
			} else {
				c, err = countSpec.Contribution(readings[i], 0)
			}
			if err != nil {
				return nil, fmt.Errorf("core: node %d: %w", i, err)
			}
			contribs[i] = c
		}
		out, err := in.runAdditiveRound(contribs)
		if err != nil {
			return nil, err
		}
		res.Outcomes = append(res.Outcomes, out)
		accepted := out.Diff() <= in.Cfg.Threshold
		if !accepted {
			res.Accepted = false
		}
		if in.obs != nil {
			if accepted {
				in.obs.roundsAccepted.Inc()
				in.Cfg.Obs.Instant(obs.TrackGlobal, "bs:verify:accepted", float64(in.Sim.Now()), uint32(uint16(in.round)))
			} else {
				in.obs.roundsRejected.Inc()
				in.Cfg.Obs.Instant(obs.TrackGlobal, "bs:verify:rejected", float64(in.Sim.Now()), uint32(uint16(in.round)))
			}
		}
		if in.qt != nil {
			// The verify instant is the apex of the round's causal tree:
			// the base stations' pending child aggregate spans re-parent
			// under it, so every aggregation subtree hangs off the verdict.
			verdict := "verify:accepted"
			if !accepted {
				verdict = "verify:rejected"
			}
			v := in.qt.Instant(uint32(uint16(in.round)), in.roundSpan, 0, verdict, float64(in.Sim.Now()))
			for i := 0; i < in.Net.N() && i < len(in.pendingAgg); i++ {
				if in.Trees.Role[i] != tree.RoleBase {
					continue
				}
				for _, child := range in.pendingAgg[i] {
					in.qt.SetParent(child, v)
				}
				in.pendingAgg[i] = in.pendingAgg[i][:0]
			}
		}
		if round < valueRounds {
			sums[round] = out.Red
		} else {
			count = uint32(out.Red)
		}
	}
	if !needsCount(spec) && len(res.Outcomes) > 0 {
		count = uint32(res.Outcomes[0].Participants)
	}
	res.Count = count
	if res.Accepted {
		v, err := spec.Finalize(sums, count)
		if err != nil {
			return nil, fmt.Errorf("core: finalize: %w", err)
		}
		res.Value = v
	}
	return res, nil
}

// RunSum is shorthand for a plain SUM query.
func (in *Instance) RunSum(readings []int64) (*Result, error) {
	return in.Run(aggregate.SpecFor(aggregate.Sum), readings)
}

// RunCount is shorthand for a COUNT query (every reading contributes 1).
func (in *Instance) RunCount() (*Result, error) {
	return in.Run(aggregate.SpecFor(aggregate.Count), make([]int64, in.Net.N()))
}

// sliceNonce builds a unique nonce per (key era, round, direction, slice):
// the high bit of the low byte encodes direction so both directions of a
// shared key never reuse a keystream. round is the wire round — the low 16
// bits of the cumulative counter — so the nonce alone repeats every 65,536
// rounds; uniqueness across that horizon comes from the per-era key
// rotation in advanceRound, making (era, nonce) injective by construction.
func sliceNonce(round uint16, src, dst topology.NodeID, idx int) uint32 {
	dir := uint32(0)
	if src > dst {
		dir = 0x80
	}
	return uint32(round)<<8 | dir | uint32(idx&0x7f)
}

// Rounds returns the cumulative additive rounds this deployment has run
// since its last Reset. Epoch pipelines report it; the wire carries only
// its low 16 bits.
func (in *Instance) Rounds() uint64 { return in.round }

// KeyEra returns the current link-key era: round >> 16. Era 0 seals with
// Config.Keys directly; each later era re-derives every link key so slice
// nonces — which carry only the 16-bit wire round — never repeat under
// the same key.
func (in *Instance) KeyEra() uint64 { return in.era }

// PrecomputeKeystreams warms the per-link AES keystream-block cache for
// the NEXT additive round: every potential sender warms the blocks its
// slice nonces would select toward every keyed tree-neighbor candidate.
// Target selection draws its rng only when the round actually runs, so
// the candidate set is the tightest superset knowable ahead of time;
// warming a link that ends up unchosen costs one cached block and
// changes nothing. The call is behavior-neutral by construction — no rng,
// no events, pure cache population (see linksec.Cipher.Warm) — so every
// table and trace is byte-identical with or without it. Exactly one
// round ahead is the useful horizon: the block cache's slot map aliases
// rounds, so blocks warmed further out would be evicted by the
// intervening round's own traffic, and a multi-round firing runs its
// later rounds back to back with no idle gap to exploit anyway. A next
// round that crosses the key-era boundary warms nothing: its links seal
// under rotated keys that do not exist yet. Returns the number of AES
// blocks computed.
func (in *Instance) PrecomputeKeystreams() int {
	if in.Cfg.Suite != linksec.SuiteAESCTR || in.Trees == nil {
		return 0
	}
	next := in.round + 1
	if next>>16 != in.era {
		return 0
	}
	round := uint16(next)
	warmed := 0
	warm := func(src topology.NodeID, cands []topology.NodeID) {
		for _, dst := range cands {
			c, ok := in.ciphers.Link(src, dst)
			if !ok {
				continue
			}
			for idx := 0; idx < in.Cfg.Slices; idx++ {
				if c.Warm(sliceNonce(round, src, dst, idx)) {
					warmed++
				}
			}
		}
	}
	n := in.Net.N()
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if in.disabled(id) || in.Trees.Role[id] == tree.RoleBase {
			continue
		}
		warm(id, in.Trees.RedNeighbors[id])
		warm(id, in.Trees.BlueNeighbors[id])
	}
	return warmed
}

// advanceRound bumps the cumulative round counter and returns the wire
// round. Crossing a 16-bit boundary rotates the key era: the cipher cache
// is rebound to era-qualified keys (a pure key copy per link under the
// AES suite), closing the nonce-wraparound keystream reuse a long-running
// network would otherwise hit at round 65,536.
func (in *Instance) advanceRound() uint16 {
	in.round++
	if era := in.round >> 16; era != in.era {
		in.era = era
		in.ciphers.Reset(linksec.EraKeys(in.Keys, era), in.Cfg.Suite)
	}
	return uint16(in.round)
}

// runAdditiveRound executes Phases II and III once for the given per-node
// additive contributions and returns the two tree totals.
func (in *Instance) runAdditiveRound(contribs []int64) (RoundOutcome, error) {
	n := in.Net.N()
	round := in.advanceRound()
	if in.faults != nil {
		// Faults fire between rounds: the schedule advances before the
		// slicing window opens, never mid-phase.
		in.faults.Advance(in.faultRound, float64(in.Sim.Now()), in)
		in.faultRound++
	}
	dead, repaired, skipped, err := in.prepareTrees()
	if err != nil {
		return RoundOutcome{}, err
	}
	startBytes := in.Medium.TotalBytes()
	startFrames := in.Medium.Stats().FramesSent

	in.resetRoundState()

	in.installReceivers(round)

	// Phase II: participants slice at random offsets inside the window.
	// The window opens either immediately (scheduled epochs, the default)
	// or, with DisseminateQuery, when the node hears the QUERY flood.
	participants := 0
	t0 := in.Sim.Now()
	in.roundSpan = qtrace.None
	if in.qt != nil {
		q := uint32(round)
		in.roundSpan = in.qt.Start(q, qtrace.None, -1, "round", float64(t0))
		if dead > 0 {
			d := in.qt.Instant(q, in.roundSpan, -1, "tree:dead", float64(t0))
			in.qt.SetValue(d, float64(dead))
		}
		if skipped > 0 {
			s := in.qt.Instant(q, in.roundSpan, -1, "tree:skipped", float64(t0))
			in.qt.SetValue(s, float64(skipped))
		}
		if repaired > 0 {
			r := in.qt.Instant(q, in.roundSpan, -1, "tree:repaired", float64(t0))
			in.qt.SetValue(r, float64(repaired))
		}
	}
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		p := &in.plans[i]
		p.active = false
		if in.disabled(id) || in.skipping(id) || in.Trees.Role[id] == tree.RoleBase {
			continue
		}
		role := in.Trees.Role[id]
		in.redCands = in.keyedTargets(in.redCands[:0], id, in.Trees.RedNeighbors[id])
		in.blueCands = in.keyedTargets(in.blueCands[:0], id, in.Trees.BlueNeighbors[id])
		if !p.targets.Choose(id, role == tree.RoleRed, role == tree.RoleBlue,
			in.redCands, in.blueCands, in.Cfg.Slices, in.rand) {
			continue
		}
		p.red = in.split(p.red[:0], contribs[i])
		p.blue = in.split(p.blue[:0], contribs[i])
		p.active = true
	}
	start := func(id topology.NodeID, at eventsim.Time) {
		p := &in.plans[id]
		if !p.active {
			return
		}
		p.active = false // start at most once
		participants++
		in.planned[0][id] = uint16(len(p.targets.Red))
		in.planned[1][id] = uint16(len(p.targets.Blue))
		if in.Cfg.Obs != nil {
			// The node's slicing window has a statically known extent, so
			// the span is recorded up front instead of via an end event
			// that would perturb the simulation's event sequence.
			in.Cfg.Obs.Span(int32(id), "phase2:slicing", float64(at), float64(at+in.Cfg.SliceWindow), uint32(round))
		}
		slSpan := qtrace.None
		if in.qt != nil {
			// Same statically-known extent as the obs span above. With a
			// query flood the span parents to the received QUERY frame's
			// span (causal); scheduled epochs parent to the round root.
			parent := in.queryParent
			if parent == qtrace.None {
				parent = in.roundSpan
			}
			slSpan = in.qt.Start(uint32(round), parent, int32(id), "slicing", float64(at))
			in.qt.End(slSpan, float64(at+in.Cfg.SliceWindow))
		}
		in.sealReqs = in.sealReqs[:0]
		in.sealColors = in.sealColors[:0]
		in.collectSlices(round, id, packet.Red, p.targets.Red, p.red)
		in.collectSlices(round, id, packet.Blue, p.targets.Blue, p.blue)
		in.ciphers.SealBatch(in.sealReqs)
		in.scheduleSealed(at, round, id, slSpan)
	}
	var floodBudget eventsim.Time
	if in.Cfg.DisseminateQuery {
		floodBudget = 1.0
		in.floodQuery(round, start)
	} else {
		for i := 1; i < n; i++ {
			start(topology.NodeID(i), t0)
		}
	}

	// Phase III: deepest aggregators first.
	t1 := t0 + floodBudget + in.Cfg.SliceWindow + 0.5 // drain margin for queued slices
	maxHop := uint16(0)
	for i := 1; i < n; i++ {
		if r := in.Trees.Role[i]; (r == tree.RoleRed || r == tree.RoleBlue) && in.Trees.Hop[i] > maxHop {
			maxHop = in.Trees.Hop[i]
		}
	}
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		role := in.Trees.Role[id]
		if role != tree.RoleRed && role != tree.RoleBlue {
			continue
		}
		slot := eventsim.Time(maxHop-in.Trees.Hop[id]) * in.Cfg.AggSlot
		jitter := eventsim.Time(in.rand.Float64()) * in.Cfg.AggSlot / 2
		ev := in.getAggEvent()
		ev.id, ev.round = id, round
		in.Sim.At(t1+slot+jitter, ev.fire)
	}

	deadline := t1 + eventsim.Time(maxHop+2)*in.Cfg.AggSlot + 1.0
	if in.Cfg.Obs != nil {
		r := uint32(round)
		in.Cfg.Obs.Span(obs.TrackGlobal, "round", float64(t0), float64(deadline), r)
		if in.Cfg.DisseminateQuery {
			in.Cfg.Obs.Span(obs.TrackGlobal, "phase2:query-dissemination", float64(t0), float64(t0+floodBudget), r)
		}
		in.Cfg.Obs.Span(obs.TrackGlobal, "phase2:report-and-assemble", float64(t0+floodBudget), float64(t1), r)
		in.Cfg.Obs.Span(obs.TrackGlobal, "phase3:tree-aggregation", float64(t1), float64(deadline), r)
	}
	if in.qt != nil {
		in.qt.End(in.roundSpan, float64(deadline))
	}
	in.Sim.Run(deadline)

	// Fuse collections across every base station: slices addressed to a
	// root directly plus the partial sums its tree children delivered.
	red := in.bsChild[0].sum
	blue := in.bsChild[1].sum
	for i := 0; i < n; i++ {
		if in.Trees.Role[i] == tree.RoleBase {
			red += in.assembled[i].red.Total()
			blue += in.assembled[i].blue.Total()
		}
	}
	redContrib, blueContrib := 0, 0
	for i := 1; i < n; i++ {
		if in.planned[0][i] > 0 && in.delivered[0][i] >= in.planned[0][i] {
			redContrib++
		}
		if in.planned[1][i] > 0 && in.delivered[1][i] >= in.planned[1][i] {
			blueContrib++
		}
	}
	return RoundOutcome{
		Red:             red,
		Blue:            blue,
		RedCount:        in.bsChild[0].count,
		BlueCount:       in.bsChild[1].count,
		Participants:    participants,
		Bytes:           in.Medium.TotalBytes() - startBytes,
		Frames:          in.Medium.Stats().FramesSent - startFrames,
		RedContributed:  redContrib,
		BlueContributed: blueContrib,
		Dead:            dead,
		Skipped:         skipped,
		Repaired:        repaired,
		Latency:         float64(in.lastBSArrival - t0),
	}, nil
}

// skipping reports whether a live aggregator sits the current round out.
func (in *Instance) skipping(id topology.NodeID) bool {
	return in.skip != nil && in.skip[id]
}

// availTarget reports whether a slice-target candidate should be offered
// to ChooseTargets. With Repair enabled, senders model the liveness
// knowledge repair presumes and steer their shares away from dead or
// skipping aggregators; without it they stay oblivious and shares sent to
// dead neighbors are simply lost.
func (in *Instance) availTarget(c topology.NodeID) bool {
	if !in.Cfg.Repair {
		return true
	}
	return !in.disabled(c) && !in.skipping(c)
}

// prepareTrees restores the pristine Phase I parents and, when repair is
// enabled and nodes are down, re-attaches orphaned aggregators for the
// coming round. It returns the dead-node count and the repair tallies.
func (in *Instance) prepareTrees() (dead, repaired, skipped int, err error) {
	if in.treesDirty {
		copy(in.Trees.Parent, in.basisParent)
		in.treesDirty = false
	}
	if in.skip != nil {
		clear(in.skip)
	}
	if in.dead != nil {
		for i := 1; i < in.Net.N(); i++ {
			if in.dead[i] {
				dead++
			}
		}
	}
	if dead == 0 || !in.Cfg.Repair {
		return dead, 0, 0, nil
	}
	out, rerr := in.Trees.RepairDead(in.disabled)
	if rerr != nil {
		return dead, 0, 0, fmt.Errorf("core: round repair: %w", rerr)
	}
	in.treesDirty = true
	if in.skip == nil {
		in.skip = make([]bool, in.Net.N())
	}
	for _, id := range out.Skipped {
		in.skip[id] = true
	}
	if in.obs != nil {
		in.obs.repairs.Add(float64(out.Reattached))
		in.obs.roundSkips.Add(float64(len(out.Skipped)))
	}
	return dead, out.Reattached, len(out.Skipped), nil
}

// resetRoundState prepares the reusable per-round buffers: they grow (and
// keep their contents' capacity) on demand and are cleared in place, so
// steady-state rounds — including rounds after a Reset to a differently
// sized network — stay off the allocator.
func (in *Instance) resetRoundState() {
	n := in.Net.N()
	if cap(in.assembled) < n {
		in.assembled = append(in.assembled[:cap(in.assembled)], make([]assemblerPair, n-cap(in.assembled))...)
	}
	in.assembled = in.assembled[:n]
	for i := range in.assembled {
		if in.assembled[i].red == nil {
			in.assembled[i] = assemblerPair{slicing.NewAssembler(), slicing.NewAssembler()}
		} else {
			in.assembled[i].red.Reset()
			in.assembled[i].blue.Reset()
		}
	}
	if cap(in.plans) < n {
		in.plans = append(in.plans[:cap(in.plans)], make([]slicePlan, n-cap(in.plans))...)
	}
	in.plans = in.plans[:n]
	in.childSum = resizeCleared(in.childSum, n)
	in.childCount = resizeCleared(in.childCount, n)
	in.planned[0] = resizeCleared(in.planned[0], n)
	in.planned[1] = resizeCleared(in.planned[1], n)
	in.delivered[0] = resizeCleared(in.delivered[0], n)
	in.delivered[1] = resizeCleared(in.delivered[1], n)
	in.bsChild = [2]bsAccum{}
	// No events have run since the round started, so Now() is the round's
	// t0: a round with no base-station arrival reports Latency 0.
	in.lastBSArrival = in.Sim.Now()
	if in.qt != nil {
		if cap(in.pendingAgg) < n {
			in.pendingAgg = append(in.pendingAgg[:cap(in.pendingAgg)], make([][]qtrace.Ref, n-cap(in.pendingAgg))...)
		}
		in.pendingAgg = in.pendingAgg[:n]
		for i := range in.pendingAgg {
			in.pendingAgg[i] = in.pendingAgg[i][:0]
		}
	}
}

// resizeCleared returns s resized to n elements, all zero, reusing its
// backing array when it suffices.
func resizeCleared[E int64 | uint32 | uint16 | bool](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// getAggEvent pops a pooled Phase III send event (or builds one, with its
// fire closure, on first use). fireAggregate returns it to the pool.
func (in *Instance) getAggEvent() *aggEvent {
	if k := len(in.aggFree); k > 0 {
		ev := in.aggFree[k-1]
		in.aggFree = in.aggFree[:k-1]
		return ev
	}
	ev := &aggEvent{in: in}
	ev.fire = func() { ev.in.fireAggregate(ev) }
	return ev
}

func (in *Instance) fireAggregate(ev *aggEvent) {
	id, round := ev.id, ev.round
	in.aggFree = append(in.aggFree, ev)
	in.sendAggregate(round, id)
}

// getSliceEvent pops a pooled Phase II send event. fireSlice returns it to
// the pool right after the MAC copies the packet out.
func (in *Instance) getSliceEvent() *sliceEvent {
	if k := len(in.sliceFree); k > 0 {
		ev := in.sliceFree[k-1]
		in.sliceFree = in.sliceFree[:k-1]
		return ev
	}
	ev := &sliceEvent{in: in}
	ev.fire = func() { ev.in.fireSlice(ev) }
	return ev
}

func (in *Instance) fireSlice(ev *sliceEvent) {
	in.MAC.Send(ev.src, &ev.pkt)
	slices := 1
	if ev.pkt.Kind == packet.KindSliceBatch {
		slices = len(ev.pkt.Entries)
	}
	in.sliceFree = append(in.sliceFree, ev)
	if in.obs != nil {
		in.obs.slicesSent.Add(float64(slices))
	}
}

// floodQuery broadcasts a QUERY from the base station and lets every
// aggregator rebroadcast it once; each node's onStart fires on first
// reception.
func (in *Instance) floodQuery(round uint16, onStart func(id topology.NodeID, at eventsim.Time)) {
	heard := resizeCleared(in.heard, in.Net.N())
	in.heard = heard
	q := uint32(round)
	in.onQuery = func(self topology.NodeID, p *packet.Packet) {
		if heard[self] || in.disabled(self) {
			return
		}
		heard[self] = true
		// The received frame's span is the causal parent of everything
		// this reception triggers: the rebroadcast and, via queryParent,
		// the node's slicing span.
		in.queryParent = qtrace.Ref(p.TraceSpan)
		role := in.Trees.Role[self]
		if role == tree.RoleRed || role == tree.RoleBlue {
			fwd := in.qt.Start(q, in.queryParent, int32(self), "query:forward", float64(in.Sim.Now()))
			in.MAC.Send(self, &packet.Packet{
				Header: packet.Header{Kind: packet.KindQuery, Src: int32(self), Dst: packet.Broadcast, Round: round,
					TraceQ: round, TraceSpan: uint32(fwd)},
			})
		}
		onStart(self, in.Sim.Now())
		in.queryParent = qtrace.None
	}
	diss := in.qt.Start(q, in.roundSpan, 0, "query:disseminate", float64(in.Sim.Now()))
	in.MAC.Send(0, &packet.Packet{
		Header: packet.Header{Kind: packet.KindQuery, Src: 0, Dst: packet.Broadcast, Round: round,
			TraceQ: round, TraceSpan: uint32(diss)},
	})
}

// split appends one tree's worth of additive shares for a contribution.
func (in *Instance) split(dst []int64, value int64) []int64 {
	if in.Cfg.ShareSpread > 0 {
		return slicing.SplitBoundedAppend(dst, value, in.Cfg.Slices, in.Cfg.ShareSpread, in.rand)
	}
	return slicing.SplitAppend(dst, value, in.Cfg.Slices, in.rand)
}

// keyedTargets appends the aggregator candidates the node shares a link
// key with (a random-predistribution scheme may leave gaps) to dst.
func (in *Instance) keyedTargets(dst []topology.NodeID, id topology.NodeID, cands []topology.NodeID) []topology.NodeID {
	for _, c := range cands {
		if !in.availTarget(c) {
			continue
		}
		if in.ciphers.HasKey(id, c) {
			dst = append(dst, c)
		}
	}
	return dst
}

// collectSlices stages one tree's shares from src for the round's
// SealBatch: local shares fold in immediately (they never touch the air,
// Section III-C.1), remote shares append seal requests. Observation
// callbacks fire here in target order — identical to the former per-share
// Seal loop — so eavesdropper state and rng draws are order-preserved.
func (in *Instance) collectSlices(round uint16, src topology.NodeID, color packet.Color, targets []topology.NodeID, shares []int64) {
	for idx, dst := range targets {
		if dst == src {
			in.addShare(src, color, src, shares[idx])
			if in.obs != nil {
				in.obs.slicesLocal.Inc()
			}
			if in.OnLocalShare != nil {
				in.OnLocalShare(src, color, shares[idx])
			}
			continue
		}
		if !in.ciphers.HasKey(src, dst) {
			continue // filtered earlier; defensive
		}
		if in.OnSlice != nil {
			in.OnSlice(src, dst, color, shares[idx])
		}
		in.sealReqs = append(in.sealReqs, linksec.SealReq{
			Src: src, Dst: dst,
			Nonce: sliceNonce(round, src, dst, idx),
			Value: shares[idx],
		})
		in.sealColors = append(in.sealColors, color)
	}
}

// scheduleSealed schedules one pooled send event per sealed request at a
// uniform random offset in the slicing window. Offsets are drawn in
// collection order (reds then blues, target order), matching the rng
// consumption of the former interleaved loop draw for draw. With tracing,
// each slice gets a span (child of the node's slicing span) beginning at
// its scheduled send time; the MAC closes it when the frame resolves.
func (in *Instance) scheduleSealed(t0 eventsim.Time, round uint16, src topology.NodeID, parent qtrace.Ref) {
	if in.Cfg.Coalesce {
		in.scheduleSealedCoalesced(t0, round, src, parent)
		return
	}
	for i := range in.sealReqs {
		r := &in.sealReqs[i]
		if !r.OK {
			continue
		}
		ev := in.getSliceEvent()
		ev.src = src
		ev.pkt = packet.Packet{
			Header: packet.Header{Kind: packet.KindSlice, Src: int32(src), Dst: int32(r.Dst), Round: round},
			Cipher: r.Sealed.Cipher,
			Nonce:  r.Sealed.Nonce,
			Tag:    r.Sealed.Tag,
			Color:  in.sealColors[i],
		}
		offset := eventsim.Time(in.rand.Float64()) * in.Cfg.SliceWindow
		if in.qt != nil {
			ref := in.qt.Start(uint32(round), parent, int32(src), "slice", float64(t0+offset))
			in.qt.SetPeer(ref, int32(r.Dst))
			ev.pkt.TraceQ = round
			ev.pkt.TraceSpan = uint32(ref)
		}
		in.Sim.At(t0+offset, ev.fire)
	}
}

// scheduleSealedCoalesced is the Coalesce-mode counterpart: all of the
// node's sealed remote shares — both trees — pack into one
// packet.KindSliceBatch frame anchored (addressed and ACKed) at the first
// target, with one random send offset for the whole frame. The slices
// themselves are sealed per-link exactly as in the per-slice path; only
// the framing changes. A node with a single remote share sends a plain
// KindSlice frame — a one-entry batch would just be 5 bytes of overhead.
func (in *Instance) scheduleSealedCoalesced(t0 eventsim.Time, round uint16, src topology.NodeID, parent qtrace.Ref) {
	sealed := 0
	for i := range in.sealReqs {
		if in.sealReqs[i].OK {
			sealed++
		}
	}
	if sealed == 0 {
		return
	}
	ev := in.getSliceEvent()
	ev.src = src
	if sealed == 1 {
		for i := range in.sealReqs {
			r := &in.sealReqs[i]
			if !r.OK {
				continue
			}
			ev.pkt = packet.Packet{
				Header: packet.Header{Kind: packet.KindSlice, Src: int32(src), Dst: int32(r.Dst), Round: round},
				Cipher: r.Sealed.Cipher,
				Nonce:  r.Sealed.Nonce,
				Tag:    r.Sealed.Tag,
				Color:  in.sealColors[i],
			}
			break
		}
	} else {
		ev.entries = ev.entries[:0]
		anchor := int32(-1)
		for i := range in.sealReqs {
			r := &in.sealReqs[i]
			if !r.OK {
				continue
			}
			if anchor < 0 {
				anchor = int32(r.Dst)
			}
			ev.entries = append(ev.entries, packet.SliceEntry{
				Dst:    int32(r.Dst),
				Cipher: r.Sealed.Cipher,
				Nonce:  r.Sealed.Nonce,
				Tag:    r.Sealed.Tag,
				Color:  in.sealColors[i],
			})
		}
		ev.pkt = packet.Packet{
			Header: packet.Header{Kind: packet.KindSliceBatch, Src: int32(src), Dst: anchor, Round: round},
		}
		ev.pkt.Entries = ev.entries
	}
	offset := eventsim.Time(in.rand.Float64()) * in.Cfg.SliceWindow
	if in.qt != nil {
		ref := in.qt.Start(uint32(round), parent, int32(src), "slice", float64(t0+offset))
		in.qt.SetPeer(ref, ev.pkt.Dst)
		if n := len(ev.pkt.Entries); n > 0 {
			in.qt.SetValue(ref, float64(n))
		}
		ev.pkt.TraceQ = round
		ev.pkt.TraceSpan = uint32(ref)
	}
	in.Sim.At(t0+offset, ev.fire)
}

// addShare folds a decrypted share into the node's per-color assembler and
// credits the origin's delivery tally.
func (in *Instance) addShare(id topology.NodeID, color packet.Color, from topology.NodeID, share int64) {
	switch color {
	case packet.Red:
		in.assembled[id].red.Add(from, share)
		in.delivered[0][from]++
	case packet.Blue:
		in.assembled[id].blue.Add(from, share)
		in.delivered[1][from]++
	}
}

// installReceivers wires the packet handler for one round: a single
// dispatch closure shared by every node, filtering on the current round
// (in.round is constant while a round's events drain, so this matches the
// former per-round captured-round closures exactly).
func (in *Instance) installReceivers(round uint16) {
	_ = round // the filter reads in.round, which equals round for the whole drain
	if in.dispatchFn == nil {
		in.dispatchFn = func(self topology.NodeID, p *packet.Packet) {
			if p.Round != uint16(in.round) {
				return
			}
			switch p.Kind {
			case packet.KindSlice:
				in.onSlice(self, p)
			case packet.KindSliceBatch:
				in.onSliceBatch(self, p)
			case packet.KindAggregate:
				in.onAggregate(self, p)
			case packet.KindQuery:
				if in.onQuery != nil {
					in.onQuery(self, p)
				}
			}
		}
	}
	for i := 0; i < in.Net.N(); i++ {
		in.MAC.SetHandler(topology.NodeID(i), in.dispatchFn)
	}
}

func (in *Instance) onSlice(self topology.NodeID, p *packet.Packet) {
	if in.disabled(self) {
		return
	}
	cipher, ok := in.ciphers.Link(topology.NodeID(p.Src), self)
	if !ok {
		return
	}
	share, err := cipher.Open(linksec.Sealed{Cipher: p.Cipher, Nonce: p.Nonce, Tag: p.Tag})
	if err != nil {
		if in.obs != nil {
			in.obs.slicesRejected.Inc()
		}
		if in.qt != nil {
			in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:rejected", float64(in.Sim.Now()))
		}
		return // forged or corrupted; drop
	}
	in.addShare(self, p.Color, topology.NodeID(p.Src), share)
	if in.obs != nil {
		in.obs.slicesAssembled.Inc()
	}
	if in.qt != nil {
		in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:assembled", float64(in.Sim.Now()))
	}
}

// onSliceBatch handles a coalesced multi-slice frame: the node scans the
// entries for the ones addressed to it (there is at most one per tree per
// sender) and opens each with the same per-link cipher a standalone slice
// would use. Entries for other nodes are skipped — their targets decode
// the same frame promiscuously and pick out their own.
func (in *Instance) onSliceBatch(self topology.NodeID, p *packet.Packet) {
	if in.disabled(self) {
		return
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.Dst != int32(self) {
			continue
		}
		cipher, ok := in.ciphers.Link(topology.NodeID(p.Src), self)
		if !ok {
			continue
		}
		share, err := cipher.Open(linksec.Sealed{Cipher: e.Cipher, Nonce: e.Nonce, Tag: e.Tag})
		if err != nil {
			if in.obs != nil {
				in.obs.slicesRejected.Inc()
			}
			if in.qt != nil {
				in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:rejected", float64(in.Sim.Now()))
			}
			continue // forged or corrupted; drop
		}
		in.addShare(self, e.Color, topology.NodeID(p.Src), share)
		if in.obs != nil {
			in.obs.slicesAssembled.Inc()
		}
		if in.qt != nil {
			in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "slice:assembled", float64(in.Sim.Now()))
		}
	}
}

func (in *Instance) onAggregate(self topology.NodeID, p *packet.Packet) {
	if in.disabled(self) {
		return
	}
	if in.Trees.Role[self] == tree.RoleBase {
		var acc *bsAccum
		switch p.Color {
		case packet.Red:
			acc = &in.bsChild[0]
		case packet.Blue:
			acc = &in.bsChild[1]
		default:
			return
		}
		acc.sum += p.Value
		acc.count += p.Count
		in.lastBSArrival = in.Sim.Now()
		in.noteAggArrival(self, p)
		return
	}
	role := in.Trees.Role[self]
	if role.Color() != p.Color {
		return // cross-tree frames are ignored, preserving disjointness
	}
	in.childSum[self] += p.Value
	in.childCount[self] += p.Count
	in.noteAggArrival(self, p)
}

// noteAggArrival records a traced aggregate arrival: an ":rx" instant
// under the child's span, and the child span itself queued for
// re-parenting when this node forwards its own partial sum (or, at a base
// station, when the round's verify instant is recorded).
func (in *Instance) noteAggArrival(self topology.NodeID, p *packet.Packet) {
	if in.qt == nil {
		return
	}
	in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "aggregate:rx", float64(in.Sim.Now()))
	if int(self) < len(in.pendingAgg) {
		in.pendingAgg[self] = append(in.pendingAgg[self], qtrace.Ref(p.TraceSpan))
	}
}

// sendAggregate emits node id's Phase III partial sum to its tree parent.
func (in *Instance) sendAggregate(round uint16, id topology.NodeID) {
	if in.disabled(id) || in.skipping(id) {
		return
	}
	role := in.Trees.Role[id]
	color := role.Color()
	if color == packet.NoColor {
		return
	}
	var own int64
	if color == packet.Red {
		own = in.assembled[id].red.Total()
	} else {
		own = in.assembled[id].blue.Total()
	}
	value := own + in.childSum[id]
	if delta, polluted := in.polluters[id]; polluted {
		value += delta
	}
	parent := in.Trees.Parent[id]
	if parent == topology.None {
		return
	}
	pkt := packet.Packet{
		Header: packet.Header{Kind: packet.KindAggregate, Src: int32(id), Dst: int32(parent), Round: round},
		Value:  value,
		Count:  in.childCount[id] + 1,
		Color:  color,
	}
	if in.qt != nil {
		// The node's aggregate span adopts the child aggregate spans that
		// fed it, so the exported trace mirrors the aggregation tree and
		// subtree rollups fall out of plain parent-chasing.
		name := "aggregate:red"
		if color == packet.Blue {
			name = "aggregate:blue"
		}
		agg := in.qt.Start(uint32(round), in.roundSpan, int32(id), name, float64(in.Sim.Now()))
		in.qt.SetPeer(agg, int32(parent))
		if int(id) < len(in.pendingAgg) {
			for _, child := range in.pendingAgg[id] {
				in.qt.SetParent(child, agg)
			}
			in.pendingAgg[id] = in.pendingAgg[id][:0]
		}
		pkt.TraceQ = round
		pkt.TraceSpan = uint32(agg)
	}
	in.MAC.Send(id, &pkt)
	if in.obs != nil {
		in.obs.aggregatesSent.Inc()
		in.Cfg.Obs.Instant(int32(id), "aggregate:sent", float64(in.Sim.Now()), uint32(round))
	}
}
