package core

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// TestSliceNonceIdentityNeverRepeats is the by-construction half of the
// wraparound regression: the effective nonce identity an observer must
// never see twice under one key is (key era, wire nonce). Walking more
// than 2^16 cumulative rounds — past the uint16 wire wraparound at round
// 65,536 — every identity must be distinct, for every direction and
// slice index the protocol emits.
func TestSliceNonceIdentityNeverRepeats(t *testing.T) {
	type ident struct {
		era   uint64
		nonce uint32
	}
	src, dst := topology.NodeID(5), topology.NodeID(9)
	const rounds = 1<<16 + 1<<14 // > 65,535 cumulative rounds
	seen := make(map[ident]uint64, rounds)
	for r := uint64(1); r <= rounds; r++ {
		era := r >> 16 // the rotation advanceRound applies
		n := sliceNonce(uint16(r), src, dst, 3)
		id := ident{era, n}
		if prev, dup := seen[id]; dup {
			t.Fatalf("rounds %d and %d share nonce identity (era %d, nonce %#x)", prev, r, era, n)
		}
		seen[id] = r
	}
	// Sanity: without the era component the wire nonce alone DOES repeat
	// at exactly one wraparound apart — the bug this PR fixes.
	wrapped := uint64(1 + 1<<16)
	if a, b := sliceNonce(uint16(1), src, dst, 0), sliceNonce(uint16(wrapped), src, dst, 0); a != b {
		t.Fatalf("wire nonces unexpectedly differ across the wraparound: %#x vs %#x", a, b)
	}
}

// TestEraRekeyDistinctCiphertexts is the end-to-end half: sealing the
// same share on the same link with the same wire nonce, one wraparound
// apart in cumulative rounds, must produce distinct ciphertexts and tags
// under both cipher suites — because the era rotation rebinds every link
// key in between. It also proves the network keeps operating across the
// boundary: a query run after 65,535 cumulative rounds still verifies.
func TestEraRekeyDistinctCiphertexts(t *testing.T) {
	for _, suite := range []linksec.Suite{linksec.SuiteAESCTR, linksec.SuiteSHA256} {
		t.Run(suite.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Suite = suite
			in := deploy(t, 200, 42, cfg)

			// A keyed aggregator link to seal on, independent of the round
			// machinery: any aggregator and one of its tree neighbors.
			var src, dst topology.NodeID
			for i := 1; i < in.Net.N() && dst == 0; i++ {
				id := topology.NodeID(i)
				if in.Trees.Role[id] != tree.RoleRed {
					continue
				}
				for _, nb := range in.Trees.RedNeighbors[id] {
					if nb != id && in.ciphers.HasKey(id, nb) {
						src, dst = id, nb
						break
					}
				}
			}
			if dst == 0 {
				t.Fatal("no keyed aggregator link found")
			}

			const share = int64(424242)
			nonce := sliceNonce(1, src, dst, 0) // wire round 1's nonce
			seal := func() linksec.Sealed {
				reqs := []linksec.SealReq{{Src: src, Dst: dst, Nonce: nonce, Value: share}}
				in.ciphers.SealBatch(reqs)
				if !reqs[0].OK {
					t.Fatal("seal failed: link lost its key")
				}
				return reqs[0].Sealed
			}

			if in.KeyEra() != 0 {
				t.Fatalf("fresh instance in era %d", in.KeyEra())
			}
			era0 := seal()

			// Fast-forward the lifetime counter to just before the wire
			// wraparound and run a real query across it: the counter passes
			// 65,536 and the era must rotate mid-query without breaking
			// verification on either side of the boundary.
			in.round = 1<<16 - 1
			res, err := in.RunCount()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatal("COUNT across the era boundary was rejected")
			}
			if in.Rounds() != 1<<16 || in.KeyEra() != 1 {
				t.Fatalf("after the boundary query: round %d era %d, want %d and 1", in.Rounds(), in.KeyEra(), 1<<16)
			}

			// Same link, same wire nonce, one wraparound later: era 1 keys
			// must yield a different ciphertext AND a different tag — the
			// (key, nonce) pair was never reused.
			era1 := seal()
			if era1.Cipher == era0.Cipher {
				t.Fatalf("ciphertext reused across the wraparound: %x", era0.Cipher)
			}
			if era1.Tag == era0.Tag {
				t.Fatalf("authentication tag reused across the wraparound: %#x", era0.Tag)
			}

			// And the rotation is deterministic: a second instance walked
			// to the same era seals identically (the rekey is a pure
			// function of seed and era, preserving reproducibility).
			in2 := deploy(t, 200, 42, cfg)
			in2.round = 1<<16 - 1
			if _, err := in2.RunCount(); err != nil {
				t.Fatal(err)
			}
			reqs := []linksec.SealReq{{Src: src, Dst: dst, Nonce: nonce, Value: share}}
			in2.ciphers.SealBatch(reqs)
			if reqs[0].Sealed != era1 {
				t.Fatal("era-1 sealing is not deterministic across instances")
			}
		})
	}
}

// TestEraSchemeKeyAgreementUnchanged pins the property that makes the era
// rotation invisible to everything but the ciphertext bytes: which pairs
// share a key — and therefore target selection and every rng draw — is
// decided by the inner scheme alone.
func TestEraSchemeKeyAgreementUnchanged(t *testing.T) {
	inner := linksec.NewPairwise(7)
	wrapped := linksec.EraKeys(inner, 3)
	for a := topology.NodeID(1); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			ik, iok := inner.SharedKey(a, b)
			wk, wok := wrapped.SharedKey(a, b)
			if iok != wok {
				t.Fatalf("era wrapping changed key existence for (%d,%d)", a, b)
			}
			if iok && ik == wk {
				t.Fatalf("era 3 derived the era-0 key for (%d,%d)", a, b)
			}
			if kc, ok := wrapped.(linksec.KeyChecker); ok && kc.HasKey(a, b) != iok {
				t.Fatalf("HasKey disagrees with SharedKey for (%d,%d)", a, b)
			}
		}
	}
	if linksec.EraKeys(inner, 0) != linksec.Scheme(inner) {
		t.Fatal("era 0 must be the inner scheme unchanged")
	}
}
