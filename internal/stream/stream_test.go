package stream

import (
	"reflect"
	"testing"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// readingAt is the deterministic reading source shared by the tests.
func readingAt(id, epoch int) int64 {
	return DiurnalLoad(id, float64(epoch%96)/4)
}

func randomDeploy(t *testing.T, nodes int, seed uint64, cfg core.Config) *core.Instance {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.New(net, cfg, seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// lossFreeDeploy builds a paper-style deployment on a slotted TDMA MAC
// with a stretched slice window: collisions vanish, every participant's
// shares land, and accepted sums become exact — so a plaintext oracle
// applies.
func lossFreeDeploy(t *testing.T, seed uint64, cfg core.Config) *core.Instance {
	t.Helper()
	cfg.MAC.Scheme = mac.SchemeTDMA
	cfg.SliceWindow = 10
	return randomDeploy(t, 300, seed, cfg)
}

func TestConfigValidation(t *testing.T) {
	in := randomDeploy(t, 100, 1, core.DefaultConfig())
	bad := []Config{
		{Interval: 1, Queries: DayQueries(1), Readings: readingAt},                             // Epochs
		{Epochs: 4, Queries: DayQueries(1), Readings: readingAt},                               // Interval
		{Epochs: 4, Interval: 1, Readings: readingAt},                                          // no queries
		{Epochs: 4, Interval: 1, Queries: DayQueries(1)},                                       // no readings
		{Epochs: 4, Interval: 1, Readings: readingAt, Queries: []Query{{Kind: aggregate.Sum}}}, // Window 0
	}
	for i, cfg := range bad {
		if _, err := New(in, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

// TestPipelineDeterminism runs the full day mix — staggered SUM/AVG/VAR/MAX,
// background churn with repair, an energy meter — twice on independently
// built but identically seeded worlds. Every reported number must match
// exactly: the pipeline's outputs derive from the simulation alone.
func TestPipelineDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := core.DefaultConfig()
		cfg.Repair = true
		cfg.Faults = &fault.Config{CrashRate: 0.02, RecoverRate: 0.3, Seed: 11}
		in := randomDeploy(t, 300, 5, cfg)
		meter, err := energy.NewMeter(in.Net.N(), energy.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(in, Config{
			Epochs:   10,
			Interval: 120,
			Queries:  DayQueries(2),
			Readings: readingAt,
			Meter:    meter,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical pipelines diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Accepted+a.Rejected != len(a.Queries) {
		t.Fatalf("accept accounting: %d+%d != %d firings", a.Accepted, a.Rejected, len(a.Queries))
	}
	if a.Accepted == 0 {
		t.Fatal("no firing accepted across the whole run")
	}
	if a.Joules <= 0 || a.ReadingsPerSecond() <= 0 || a.JoulesPerReading() <= 0 {
		t.Fatalf("headline metrics not positive: %v J, %v rps, %v J/reading",
			a.Joules, a.ReadingsPerSecond(), a.JoulesPerReading())
	}
	if want := int64((a.Epochs) * 300); a.Readings != want {
		t.Fatalf("Readings = %d, want %d", a.Readings, want)
	}
}

// TestFreshVsReusedInstance is the arena-reuse oracle at the core level: a
// pipeline over a Reset-recycled instance must reproduce the fresh
// instance's Result bit for bit (PR 5's pooling contract extended to
// multi-epoch streams).
func TestFreshVsReusedInstance(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Repair = true
	cfg.Faults = &fault.Config{CrashRate: 0.03, RecoverRate: 0.25, Seed: 4}
	scfg := Config{Epochs: 6, Interval: 60, Queries: DayQueries(2), Readings: readingAt}

	fresh := randomDeploy(t, 250, 5, cfg)
	pf, err := New(fresh, scfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pf.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Dirty an instance with a different workload, then Reset it into the
	// same deployment the fresh run used.
	reused := randomDeploy(t, 200, 77, core.DefaultConfig())
	if _, err := reused.RunCount(); err != nil {
		t.Fatal(err)
	}
	net, err := topology.Random(topology.PaperConfig(250), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(net, cfg, 5+1000); err != nil {
		t.Fatal(err)
	}
	pr, err := New(reused, scfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused instance diverged from fresh:\n%+v\nvs\n%+v", want, got)
	}
}

// TestWindowedSumOracleLossFree checks the window fold end to end: on a
// loss-free medium with no churn, every accepted SUM firing must equal
// the plaintext sum of each participant's sliding window.
func TestWindowedSumOracleLossFree(t *testing.T) {
	in := lossFreeDeploy(t, 5, core.DefaultConfig())
	const W = 3
	p, err := New(in, Config{
		Epochs:   8,
		Interval: 30,
		Queries:  []Query{{Name: "w3-sum", Kind: aggregate.Sum, Window: W, Period: 1, Phase: 0}},
		Readings: readingAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if in.Medium.Stats().FramesCollided != 0 {
		t.Skip("medium not loss-free; oracle does not apply")
	}
	participants := in.Participants()
	checked := 0
	for _, q := range res.Queries {
		if q.Epoch < W-1 {
			t.Fatalf("query fired at epoch %d before its window filled", q.Epoch)
		}
		if !q.Accepted || q.RedContributed != q.Participants || q.BlueContributed != q.Participants {
			continue
		}
		var want int64
		for _, id := range participants {
			for k := 0; k < W; k++ {
				want += readingAt(int(id), q.Epoch-k)
			}
		}
		if q.Value != float64(want) {
			t.Fatalf("epoch %d: accepted sum %v, plaintext window oracle %d", q.Epoch, q.Value, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no fully-contributed accepted firing to check")
	}
	// The first firing waits for the window: 8 epochs, W=3 → 6 firings.
	if len(res.Queries) != 8-W+1 {
		t.Fatalf("%d firings, want %d", len(res.Queries), 8-W+1)
	}
}

// TestChurnSpansEpochBoundaries is the mid-epoch churn regression: a
// scripted fault schedule kills an aggregator *between the two rounds of
// an AVG firing*, keeps it dead across the next epoch boundary, recovers
// it epochs later, and kills a second node near the end. The pipeline's
// Dead accounting must track the scripted dead-set exactly at every
// firing, repair must engage while the aggregator is down, and accepted
// SUM firings must match a fresh-build oracle given the same dead set.
func TestChurnSpansEpochBoundaries(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Repair = true

	// Choose victims from the basis trees: an aggregator with children
	// (so repair is load-bearing) and any other participant.
	probe := lossFreeDeploy(t, 77, cfg)
	var agg, leaf topology.NodeID
	for i := 1; i < probe.Net.N() && agg == 0; i++ {
		id := topology.NodeID(i)
		if probe.Trees.Role[id] != tree.RoleRed {
			continue
		}
		for j := 1; j < probe.Net.N(); j++ {
			if probe.Trees.Parent[j] == id {
				agg = id
				break
			}
		}
	}
	if agg == 0 {
		t.Skip("no red aggregator with children")
	}
	for i := 1; i < probe.Net.N(); i++ {
		if id := topology.NodeID(i); id != agg && probe.Trees.Role[id] != tree.RoleBase {
			leaf = id
			break
		}
	}

	// Query mix: SUM every epoch (1 round) + AVG every 2nd epoch from
	// epoch 1 (2 rounds). Additive rounds per epoch: 1,3,1,3,… so the
	// scripted rounds below land mid-firing and mid-epoch, and the
	// aggregator stays dead across two epoch boundaries.
	queries := []Query{
		{Name: "sum", Kind: aggregate.Sum, Window: 1, Period: 1, Phase: 0},
		{Name: "avg", Kind: aggregate.Average, Window: 2, Period: 2, Phase: 1},
	}
	events := []fault.Event{
		{Round: 2, Kind: fault.Crash, Node: agg},   // between AVG's two rounds in epoch 1
		{Round: 6, Kind: fault.Recover, Node: agg}, // mid-epoch 3
		{Round: 8, Kind: fault.Crash, Node: leaf},  // epoch 4 (or 5) onward
	}
	cfg.Faults = &fault.Config{Seed: 1, Events: events}
	in := lossFreeDeploy(t, 77, cfg)

	const epochs = 8
	p, err := New(in, Config{Epochs: epochs, Interval: 45, Queries: queries, Readings: readingAt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Replay the schedule round by round to know the dead-set each firing
	// ended on; assert the pipeline's epoch-to-epoch accounting agrees.
	deadSet := map[topology.NodeID]bool{}
	next, round := 0, 0
	repairs := 0
	for _, q := range res.Queries {
		for r := 0; r < len(q.Latencies); r++ {
			for next < len(events) && events[next].Round == round {
				deadSet[events[next].Node] = events[next].Kind == fault.Crash
				next++
			}
			round++
		}
		wantDead := 0
		for _, d := range deadSet {
			if d {
				wantDead++
			}
		}
		if q.Dead != wantDead {
			t.Fatalf("epoch %d %s: Dead = %d, scripted dead-set has %d",
				q.Epoch, queries[q.Query].Name, q.Dead, wantDead)
		}
		if q.Dead == 0 && (q.Repaired != 0 || q.Skipped != 0) {
			t.Fatalf("epoch %d: repair activity (%d reattached, %d skipped) with nobody dead",
				q.Epoch, q.Repaired, q.Skipped)
		}
		repairs += q.Repaired + q.Skipped
	}
	if round != 1+3+1+3+1+3+1+3 {
		t.Fatalf("replay consumed %d rounds, want 16", round)
	}
	if repairs == 0 {
		t.Fatal("schedule killed an aggregator with children yet repair never engaged (no re-attachments, no skips)")
	}
	if err := in.Trees.Disjoint(); err != nil {
		t.Fatalf("trees not disjoint after churn run: %v", err)
	}
	if res.Accepted < len(res.Queries)*2/3 {
		t.Fatalf("only %d of %d firings accepted under repair", res.Accepted, len(res.Queries))
	}

	// Fresh-build oracle: for each accepted, fully-contributed SUM firing,
	// a from-scratch instance over the same deployment with the same dead
	// set applied must report the same accepted sum.
	if in.Medium.Stats().FramesCollided != 0 {
		t.Skip("medium not loss-free; oracle does not apply")
	}
	checked := 0
	for _, q := range res.Queries {
		if queries[q.Query].Kind != aggregate.Sum || !q.Accepted {
			continue
		}
		if q.RedContributed != q.Participants || q.BlueContributed != q.Participants {
			continue
		}
		ocfg := core.DefaultConfig()
		ocfg.Repair = true
		oracle := lossFreeDeploy(t, 77, ocfg)
		if q.Dead > 0 {
			// Reconstruct the dead-set at this firing from the schedule.
			dead := map[topology.NodeID]bool{}
			rounds := 0
			for _, prev := range res.Queries {
				if prev.Epoch > q.Epoch || (prev.Epoch == q.Epoch && prev.Query > q.Query) {
					break
				}
				for r := 0; r < len(prev.Latencies); r++ {
					for _, e := range events {
						if e.Round == rounds {
							dead[e.Node] = e.Kind == fault.Crash
						}
					}
					rounds++
				}
			}
			for id, d := range dead {
				if d {
					oracle.Kill(id)
				}
			}
		}
		readings := make([]int64, oracle.Net.N())
		for i := 1; i < len(readings); i++ {
			readings[i] = readingAt(i, q.Epoch)
		}
		ores, err := oracle.RunSum(readings)
		if err != nil {
			t.Fatal(err)
		}
		oout := ores.Outcomes[0]
		if !ores.Accepted || oout.RedContributed != oout.Participants || oout.BlueContributed != oout.Participants {
			continue // oracle round degraded; nothing to compare
		}
		if oracle.Medium.Stats().FramesCollided != 0 {
			continue
		}
		if q.Value != ores.Value {
			t.Fatalf("epoch %d: streamed sum %v, fresh-build oracle %v (dead=%d)",
				q.Epoch, q.Value, ores.Value, q.Dead)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no firing qualified for the fresh-build oracle")
	}
}

// TestBackPressure pins the overload behavior: when an epoch's queries
// overrun the interval, the next epoch starts late instead of dropping
// work — every scheduled firing still runs.
func TestBackPressure(t *testing.T) {
	in := randomDeploy(t, 250, 5, core.DefaultConfig())
	p, err := New(in, Config{
		Epochs:   4,
		Interval: 0.001, // far shorter than one round's airtime
		Queries:  []Query{{Name: "sum", Kind: aggregate.Sum, Window: 1, Period: 1, Phase: 0}},
		Readings: readingAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 4 {
		t.Fatalf("%d firings, want 4 (back-pressure must not drop work)", len(res.Queries))
	}
	if res.Rounds != 4 {
		t.Fatalf("cumulative rounds %d, want 4", res.Rounds)
	}
}

// TestPrecomputeNeutral pins the epoch-amortized keystream precompute as
// behavior-invisible: the same pipeline with Precompute on and off must
// produce identical Results except for the WarmedBlocks accounting, which
// must be positive only when the precompute ran.
func TestPrecomputeNeutral(t *testing.T) {
	run := func(pre bool) *Result {
		in := randomDeploy(t, 200, 9, core.DefaultConfig())
		p, err := New(in, Config{
			Epochs:     6,
			Interval:   90,
			Queries:    DayQueries(2),
			Readings:   readingAt,
			Precompute: pre,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warm, cold := run(true), run(false)
	if warm.WarmedBlocks == 0 {
		t.Error("Precompute warmed no keystream blocks")
	}
	if cold.WarmedBlocks != 0 {
		t.Errorf("WarmedBlocks = %d without Precompute, want 0", cold.WarmedBlocks)
	}
	warm.WarmedBlocks = 0
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("precompute perturbed the pipeline:\n%+v\nvs\n%+v", warm, cold)
	}
}
