// Package stream runs a long-lived iPDA deployment through a continuous
// sequence of epochs: the utility-scale smart-metering workload that
// motivates the paper (Section I). One network instance — Phase I trees
// built once — serves the whole run; every epoch each meter produces a
// fresh reading, and a set of standing sliding-window queries (SUM, AVG,
// VAR, MIN/MAX) fires on staggered schedules against the meters' buffered
// windows. Amortizing Phase I across epochs is what makes the runtime
// repair path load-bearing: mid-run churn must be repaired around, not
// rebuilt over, or the whole pipeline stalls.
//
// Concurrency model: queries whose schedules land on the same epoch are
// injected back-to-back and serialize on the shared channel, exactly as a
// single-collector utility network would schedule them — the simulated
// clock, not wall clock, carries their latency. The cumulative round
// counter spans the entire run, so the core's key-era rotation (see
// core.Instance) is exercised for real once a pipeline passes 65,536
// rounds.
//
// Every number a Pipeline reports derives from the simulation alone:
// equal inputs give byte-identical Results regardless of host, worker
// count, or arena reuse.
package stream

import (
	"errors"
	"fmt"
	"math"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
)

// Query is one standing sliding-window query. Each firing folds every
// meter's last Window readings into a single per-meter value (sum for the
// additive kinds, min/max for the extrema) and runs one protocol query
// over the folds — "total consumption this interval", "average household
// draw over the last hour", "peak load over the last three hours".
type Query struct {
	Name string
	Kind aggregate.Kind
	// Window is the sliding-window length in epochs (>= 1). A query
	// does not fire until a full window of readings exists.
	Window int
	// Period is the firing period in epochs (>= 1); Phase staggers the
	// first firing so concurrent queries interleave instead of piling
	// onto the same epoch.
	Period int
	Phase  int
	// Power and Normal tune Min/Max queries (see aggregate.Spec); zero
	// selects the SpecFor defaults.
	Power  int
	Normal int64
}

// spec builds the aggregate spec for one firing.
func (q Query) spec() aggregate.Spec {
	s := aggregate.SpecFor(q.Kind)
	if q.Power != 0 {
		s.Power = q.Power
	}
	if q.Normal != 0 {
		s.Normal = q.Normal
	}
	return s
}

// Config drives one pipeline run.
type Config struct {
	// Epochs is the number of metering intervals to run; Interval is the
	// simulated seconds between epoch starts (a 24-hour day of 15-minute
	// reads is Epochs=96, Interval=900).
	Epochs   int
	Interval float64
	Queries  []Query
	// Readings yields meter id's reading for an epoch. It must be a
	// deterministic function of (id, epoch) for runs to reproduce.
	Readings func(id, epoch int) int64
	// Meter, when non-nil, is attached to the instance's radio medium
	// and charged for idle listening across the run's full simulated
	// span, so Result.Joules is the network's total energy bill.
	Meter *energy.Meter
	// Precompute enables epoch-amortized keystream warming: before each
	// standing-query firing, the pipeline precomputes the AES keystream
	// blocks the firing's rounds will seal with on every candidate link
	// (core.Instance.PrecomputeKeystreams) — the between-firing idle a
	// real metering network would spend the work in. Behavior-neutral by
	// construction: results are byte-identical on or off; only
	// Result.WarmedBlocks and the placement of the AES work change.
	Precompute bool
}

func (c Config) validate() error {
	if c.Epochs <= 0 {
		return fmt.Errorf("stream: Epochs must be positive, got %d", c.Epochs)
	}
	if !(c.Interval > 0) {
		return fmt.Errorf("stream: Interval must be positive, got %v", c.Interval)
	}
	if len(c.Queries) == 0 {
		return fmt.Errorf("stream: no queries registered")
	}
	if c.Readings == nil {
		return fmt.Errorf("stream: Readings function is required")
	}
	for i, q := range c.Queries {
		if q.Window < 1 || q.Period < 1 || q.Phase < 0 {
			return fmt.Errorf("stream: query %d (%s): want Window>=1, Period>=1, Phase>=0, got %d/%d/%d",
				i, q.Name, q.Window, q.Period, q.Phase)
		}
	}
	return nil
}

// QueryOutcome reports one firing of one standing query.
type QueryOutcome struct {
	Epoch    int
	Query    int // index into Config.Queries
	Accepted bool
	Value    float64
	// NoData marks a firing whose integrity check passed trivially on an
	// empty collection (aggregate.ErrNoData): nothing reached the base
	// stations, so there is no value. Counted as rejected.
	NoData bool
	// Per-round protocol accounting, summed (Bytes) or from the final
	// round (the counters), mirroring core.RoundOutcome.
	Participants                    int
	RedContributed, BlueContributed int
	Dead, Skipped, Repaired         int
	Bytes                           uint64
	// Latencies holds each additive round's completion latency in
	// simulated seconds (multi-round kinds such as AVG report several).
	Latencies []float64
}

// Result reports one full pipeline run.
type Result struct {
	Epochs int
	// Readings is the metering load generated: one sample per meter per
	// epoch, the denominator of the joules-per-reading headline.
	Readings int64
	Queries  []QueryOutcome
	Accepted int
	Rejected int
	// Bytes and Frames cover the whole run including Phase I.
	Bytes  uint64
	Frames uint64
	// SimSeconds is the run's simulated span (Epochs × Interval); Joules
	// is the network-wide energy bill when a Meter was attached (radio
	// tx/rx plus idle listening over the span).
	SimSeconds float64
	Joules     float64
	// Rounds is the cumulative additive-round counter after the run —
	// past 65,536 the key era has rotated at least once.
	Rounds uint64
	Era    uint64
	// WarmedBlocks is the number of AES keystream blocks precomputed
	// between firings (0 unless Config.Precompute).
	WarmedBlocks int
}

// ReadingsPerSecond is the collection throughput in simulated time.
func (r *Result) ReadingsPerSecond() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.Readings) / r.SimSeconds
}

// JoulesPerReading is the headline energy cost (0 without a meter).
func (r *Result) JoulesPerReading() float64 {
	if r.Readings == 0 {
		return 0
	}
	return r.Joules / float64(r.Readings)
}

// Pipeline is one epoch pipeline over a deployed instance. Use New, then
// either Run for the whole span or Step/Finish for epoch-level control.
type Pipeline struct {
	in  *core.Instance
	cfg Config

	epoch    int
	t0       eventsim.Time // sim time of epoch 0 (Phase I already behind us)
	maxWin   int
	hist     [][]int64 // readings ring: [epoch % maxWin][meter]
	windowed []int64   // per-firing fold scratch
	filled   int       // epochs recorded so far (ring validity)

	startBytes  uint64
	startFrames uint64

	res Result
}

// New prepares a pipeline over an already-deployed instance. The
// instance's trees, cipher state, and fault schedule carry across every
// epoch; the pipeline only feeds it readings and queries.
func New(in *core.Instance, cfg Config) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxWin := 1
	for _, q := range cfg.Queries {
		if q.Window > maxWin {
			maxWin = q.Window
		}
	}
	n := in.Net.N()
	p := &Pipeline{
		in:          in,
		cfg:         cfg,
		t0:          in.Sim.Now(),
		maxWin:      maxWin,
		windowed:    make([]int64, n),
		startBytes:  in.Medium.TotalBytes(),
		startFrames: in.Medium.Stats().FramesSent,
	}
	p.hist = make([][]int64, maxWin)
	for i := range p.hist {
		p.hist[i] = make([]int64, n)
	}
	if cfg.Meter != nil {
		in.Medium.SetMeter(cfg.Meter)
	}
	p.res.Epochs = cfg.Epochs
	return p, nil
}

// Step runs one epoch: advance the simulated clock to the epoch start,
// record every meter's reading, and fire each standing query whose
// schedule matches. Call Finish after the last epoch.
func (p *Pipeline) Step() error {
	if p.epoch >= p.cfg.Epochs {
		return fmt.Errorf("stream: Step past the configured %d epochs", p.cfg.Epochs)
	}
	e := p.epoch
	n := p.in.Net.N()
	// Idle-advance to the epoch boundary. A backlogged epoch (queries
	// overran the interval) starts immediately instead — the pipeline
	// applies back-pressure rather than dropping work.
	if at := p.t0 + eventsim.Time(float64(e)*p.cfg.Interval); p.in.Sim.Now() < at {
		p.in.Sim.Run(at)
	}
	slot := p.hist[e%p.maxWin]
	for i := 1; i < n; i++ {
		slot[i] = p.cfg.Readings(i, e)
	}
	p.filled++
	p.res.Readings += int64(n - 1)

	for qi := range p.cfg.Queries {
		q := &p.cfg.Queries[qi]
		if e < q.Phase || (e-q.Phase)%q.Period != 0 || p.filled < q.Window {
			continue
		}
		p.fold(q)
		if p.cfg.Precompute {
			p.res.WarmedBlocks += p.in.PrecomputeKeystreams()
		}
		res, err := p.in.Run(q.spec(), p.windowed)
		if err != nil {
			if errors.Is(err, aggregate.ErrNoData) {
				// A collapse epoch: both trees delivered nothing, so the
				// check passed on empty totals. The day goes on — record
				// the firing as a data-less rejection.
				p.res.Queries = append(p.res.Queries, QueryOutcome{Epoch: e, Query: qi, NoData: true})
				p.res.Rejected++
				continue
			}
			return fmt.Errorf("stream: epoch %d query %s: %w", e, q.Name, err)
		}
		out := QueryOutcome{Epoch: e, Query: qi, Accepted: res.Accepted, Value: res.Value}
		for _, ro := range res.Outcomes {
			out.Bytes += ro.Bytes
			out.Participants = ro.Participants
			out.RedContributed, out.BlueContributed = ro.RedContributed, ro.BlueContributed
			out.Dead, out.Skipped, out.Repaired = ro.Dead, ro.Skipped, ro.Repaired
			out.Latencies = append(out.Latencies, ro.Latency)
		}
		p.res.Queries = append(p.res.Queries, out)
		if res.Accepted {
			p.res.Accepted++
		} else {
			p.res.Rejected++
		}
	}
	p.epoch++
	return nil
}

// fold computes each meter's window fold for one firing into p.windowed.
func (p *Pipeline) fold(q *Query) {
	n := p.in.Net.N()
	w := q.Window
	extremum := q.Kind == aggregate.Min || q.Kind == aggregate.Max
	for i := 1; i < n; i++ {
		var acc int64
		for k := 0; k < w; k++ {
			v := p.hist[(p.epoch-k)%p.maxWin][i]
			switch {
			case k == 0:
				acc = v
			case q.Kind == aggregate.Min:
				acc = min(acc, v)
			case q.Kind == aggregate.Max:
				acc = max(acc, v)
			default:
				acc += v
			}
		}
		if extremum && q.Kind == aggregate.Min {
			// Clamp to the representable floor so a quiet meter cannot
			// poison the power-mean round with an out-of-range value.
			if fl := q.spec().MinFloor(); acc < fl {
				acc = fl
			}
		}
		p.windowed[i] = acc
	}
}

// Finish idle-advances to the end of the configured span, charges the
// meter for the idle time, and returns the finalized Result.
func (p *Pipeline) Finish() *Result {
	end := p.t0 + eventsim.Time(float64(p.cfg.Epochs)*p.cfg.Interval)
	if p.in.Sim.Now() < end {
		p.in.Sim.Run(end)
	}
	p.res.SimSeconds = float64(p.cfg.Epochs) * p.cfg.Interval
	p.res.Bytes = p.in.Medium.TotalBytes() - p.startBytes
	p.res.Frames = p.in.Medium.Stats().FramesSent - p.startFrames
	if p.cfg.Meter != nil {
		p.cfg.Meter.ChargeIdle(float64(end - p.t0))
		p.res.Joules = p.cfg.Meter.TotalSpent()
	}
	p.res.Rounds = p.in.Rounds()
	p.res.Era = p.in.KeyEra()
	return &p.res
}

// Run steps through every configured epoch and finishes.
func (p *Pipeline) Run() (*Result, error) {
	for p.epoch < p.cfg.Epochs {
		if err := p.Step(); err != nil {
			return nil, err
		}
	}
	return p.Finish(), nil
}

// Epoch returns the next epoch Step would run.
func (p *Pipeline) Epoch() int { return p.epoch }

// DiurnalLoad returns a synthetic household demand in watts at the given
// hour of day: a base load plus overnight sinusoid and morning/evening
// Gaussian peaks, individualized per meter. It is the canonical reading
// profile of the smart-metering experiment (and mirrors the
// examples/smartmetering profile).
func DiurnalLoad(meter int, hour float64) int64 {
	base := 180.0 + 40.0*float64(meter%7)
	overnight := 35.0 * math.Sin(2*math.Pi*(hour+float64(meter%5))/24)
	morning := 350.0 * math.Exp(-(hour-7.5)*(hour-7.5)/2)
	evening := 600.0 * math.Exp(-(hour-19.0)*(hour-19.0)/4.5)
	weekendish := 1.0 + 0.1*float64(meter%3)
	return int64((base + overnight + morning + evening) * weekendish)
}

// DayQueries returns the standing query mix of the smart-metering day:
// four kinds on staggered schedules — per-interval totals, hourly
// averages and variances, and a three-hour peak watch. epochsPerHour
// scales the windows to the configured interval (4 for 15-minute reads).
func DayQueries(epochsPerHour int) []Query {
	if epochsPerHour < 1 {
		epochsPerHour = 1
	}
	h := epochsPerHour
	return []Query{
		{Name: "interval-total", Kind: aggregate.Sum, Window: 1, Period: 1, Phase: 0},
		{Name: "hourly-average", Kind: aggregate.Average, Window: h, Period: h, Phase: 1},
		{Name: "hourly-variance", Kind: aggregate.Variance, Window: h, Period: h, Phase: 2},
		// Peak watch over a 3-hour window. Normal bounds the per-meter
		// window maximum: DiurnalLoad tops out well under 4096 W.
		{Name: "peak-3h", Kind: aggregate.Max, Window: 3 * h, Period: 3 * h, Phase: 3, Power: 8, Normal: 4096},
	}
}
