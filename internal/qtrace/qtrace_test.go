package qtrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestNilTracerIsSafe pins the disabled-datapath contract: every method
// must be a no-op through a nil receiver.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ref := tr.Start(1, None, 3, "x", 0)
	if ref != None {
		t.Fatalf("nil Start returned %d", ref)
	}
	tr.End(ref, 1)
	tr.SetParent(ref, 2)
	tr.SetPeer(ref, 4)
	tr.SetValue(ref, 5)
	tr.AddAir(ref, 0.1, 32)
	tr.AddRetry(ref)
	tr.AddBackoff(ref)
	tr.AddDrop(ref)
	tr.AddJoules(ref, 1e-6)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer leaked state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: %v, %q", err, buf.String())
	}
}

func TestAttribution(t *testing.T) {
	tr := New(0)
	root := tr.Start(1, None, -1, "round", 0)
	tx := tr.Start(1, root, 7, "slice", 0.5)
	tr.SetPeer(tx, 9)
	tr.AddAir(tx, 0.01, 40)
	tr.AddAir(tx, 0.01, 40)
	tr.AddRetry(tx)
	tr.AddBackoff(tx)
	tr.AddJoules(tx, 8e-5)
	tr.End(tx, 0.9)
	tr.End(tx, 0.7) // End never shrinks
	s := tr.Spans()[1]
	if s.Parent != uint32(root) || s.Peer != 9 || s.Frames != 2 || s.Bytes != 80 ||
		s.Retries != 1 || s.Backoffs != 1 || s.Airtime != 0.02 || s.End != 0.9 {
		t.Fatalf("attribution wrong: %+v", s)
	}
	// Attribution against None and out-of-range refs is ignored.
	tr.AddAir(None, 1, 1)
	tr.AddAir(Ref(99), 1, 1)
	if tr.Spans()[0].Frames != 0 {
		t.Fatal("misdirected attribution")
	}
}

func TestLimitAndDropped(t *testing.T) {
	tr := New(2)
	tr.Start(1, None, 0, "a", 0)
	tr.Start(1, None, 0, "b", 0)
	if ref := tr.Start(1, None, 0, "c", 0); ref != None {
		t.Fatalf("over-limit Start returned %d", ref)
	}
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	st := NewStore(4)
	tr := st.Trial("fig7", 1, 2).Tracer("l1")
	r := tr.Start(3, None, -1, "round", 0)
	tr.Start(3, r, 5, "slice", 0.25)
	for i := 0; i < 4; i++ {
		tr.Start(3, r, 0, "x", 0) // overflow the limit
	}
	var buf bytes.Buffer
	if err := st.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines, dropped, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 || dropped != 2 {
		t.Fatalf("lines=%d dropped=%d", len(lines), dropped)
	}
	if lines[0].Sweep != "fig7" || lines[0].Point != 1 || lines[0].Trial != 2 || lines[0].Slot != "l1" {
		t.Fatalf("coordinates lost: %+v", lines[0])
	}
	if lines[1].Name != "slice" || lines[1].Parent != uint32(r) || lines[1].Node != 5 {
		t.Fatalf("span lost: %+v", lines[1])
	}
}

func TestStoreExportDeterministic(t *testing.T) {
	build := func(order []int) string {
		st := NewStore(0)
		for _, p := range order {
			tr := st.Trial("s", p, 0).Tracer("a")
			tr.Start(uint32(p), None, int32(p), "round", float64(p))
		}
		var buf bytes.Buffer
		if err := st.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build([]int{0, 1, 2}) != build([]int{2, 0, 1}) {
		t.Fatal("export depends on creation order")
	}
}

func TestTextAndHealth(t *testing.T) {
	tr := New(0)
	round := tr.Start(1, None, -1, "round", 0)
	dead := tr.Instant(1, round, -1, "tree:dead", 0)
	tr.SetValue(dead, 3)
	verify := tr.Start(1, round, 0, "verify:accepted", 9)
	a1 := tr.Start(1, verify, 4, "aggregate:red", 7)
	tr.AddAir(a1, 0.01, 24)
	tr.AddRetry(a1)
	tr.End(a1, 8)
	a2 := tr.Start(1, a1, 11, "aggregate:red", 5)
	tr.AddAir(a2, 0.01, 24)
	tr.End(a2, 6)

	var txt bytes.Buffer
	if err := WriteText(&txt, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "round") || !strings.Contains(txt.String(), "  verify:accepted") {
		t.Fatalf("text tree:\n%s", txt.String())
	}

	hs := Analyze(tr.Spans())
	if len(hs) != 1 {
		t.Fatalf("rounds=%d", len(hs))
	}
	h := hs[0]
	if h.Verdict != "accepted" || h.Dead != 3 {
		t.Fatalf("health: %+v", h)
	}
	if len(h.Subtrees) != 1 {
		t.Fatalf("subtrees: %+v", h.Subtrees)
	}
	st := h.Subtrees[0]
	if st.Root != 4 || st.Tree != "red" || st.Nodes != 2 || st.Frames != 2 || st.Retries != 1 {
		t.Fatalf("subtree rollup: %+v", st)
	}
	// Critical path: verify -> a1 (End 8) -> a2 (End 6).
	if len(h.CriticalPath) != 3 || h.CriticalPath[1].Node != 4 || h.CriticalPath[2].Node != 11 {
		t.Fatalf("critical path: %+v", h.CriticalPath)
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Fatalf("chrome trace:\n%s", chrome.String())
	}
}
