// Package qtrace is the causal per-query tracing layer: where obs (the
// metrics layer) answers "how much", qtrace answers "why" — every query
// round yields a causally linked span tree covering dissemination down
// the aggregation trees, slice exchange, per-node aggregation, MAC
// retries and backoffs, and verification at the base station, with
// per-span attribution of simulated latency, airtime, retransmissions,
// and joules.
//
// Causality is carried in-band: packets hold a compact trace context
// (query ID plus the sender-side span reference, see packet.Header), so
// a receiver can parent its own spans to the exact transmission that
// caused them, hop by hop, without any side channel.
//
// The layer obeys the same contracts as obs:
//
//   - Every method is safe on a nil *Tracer and compiles to a single
//     pointer check on the disabled datapath (0 allocs/op).
//   - Tracing only reads protocol state. It never schedules events,
//     draws randomness, or alters a packet's modeled size, so a traced
//     run is byte-identical to an untraced one, and equal seeds produce
//     byte-identical traces at any worker or shard count.
//   - Span extents are recorded from statically known schedule bounds
//     (and extended by observed completions), mirroring obs/span.go.
package qtrace

// DefaultLimit bounds a tracer's span storage. A paper-scale round
// (N=400, l=2) emits a few thousand spans, so this covers many rounds
// per trial; past it, spans are counted in Dropped rather than stored.
const DefaultLimit = 1 << 15

// Ref identifies a span within one Tracer. Refs are 1-based so the zero
// value None means "no span": attribution against None is a no-op, and a
// packet whose trace context is all zeroes is simply untraced.
type Ref uint32

// None is the null span reference.
const None Ref = 0

// Span is one node of a query's causal tree. Times are simulated
// seconds. Attribution fields accumulate over the span's lifetime:
// a transmission span collects the airtime, frame count, retries,
// backoffs, and transmit/receive energy of every attempt made for it.
type Span struct {
	// ID is the span's 1-based index in its tracer (== its Ref).
	ID uint32 `json:"id"`
	// Parent is the causally preceding span's ID, 0 for roots.
	Parent uint32 `json:"parent,omitempty"`
	// Query is the query (aggregation round) this span belongs to.
	Query uint32 `json:"query,omitempty"`
	// Node is the node the span executes on (-1 for network-wide spans).
	Node int32 `json:"node"`
	// Peer is the destination node for link spans (slice sends), 0
	// otherwise.
	Peer int32 `json:"peer,omitempty"`
	// Name classifies the span ("round", "slice", "aggregate:red", ...).
	// Only statically known strings are recorded.
	Name string `json:"name"`
	// Begin and End bound the span; End == Begin marks an instant.
	Begin float64 `json:"begin"`
	End   float64 `json:"end"`
	// Airtime is the summed on-air duration of the span's frames.
	Airtime float64 `json:"airtime,omitempty"`
	// Bytes and Frames count the span's transmissions (all attempts).
	Bytes  uint64 `json:"bytes,omitempty"`
	Frames uint32 `json:"frames,omitempty"`
	// Retries, Backoffs and Drops attribute MAC behavior to the span.
	Retries  uint32 `json:"retries,omitempty"`
	Backoffs uint32 `json:"backoffs,omitempty"`
	Drops    uint32 `json:"drops,omitempty"`
	// Joules is the energy attributed to the span (tx plus rx).
	Joules float64 `json:"joules,omitempty"`
	// Value carries a span-specific quantity (aggregate value, count of
	// dead nodes, ...) where one is meaningful.
	Value float64 `json:"value,omitempty"`
}

// Tracer accumulates the spans of one protocol instance (one trial
// slot). Not safe for concurrent use: like an obs.Sink it belongs to
// one simulation. The nil *Tracer is the disabled tracer — every method
// is a no-op behind a single pointer check.
type Tracer struct {
	limit   int
	dropped int
	spans   []Span
}

// New returns a tracer keeping at most limit spans (limit <= 0 means
// DefaultLimit).
func New(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{limit: limit}
}

// Start opens a span and returns its reference. Spans past the limit
// are dropped and yield None, which downstream attribution ignores.
func (t *Tracer) Start(query uint32, parent Ref, node int32, name string, begin float64) Ref {
	if t == nil {
		return None
	}
	if len(t.spans) >= t.limit {
		t.dropped++
		return None
	}
	id := uint32(len(t.spans)) + 1
	t.spans = append(t.spans, Span{
		ID: id, Parent: uint32(parent), Query: query,
		Node: node, Name: name, Begin: begin, End: begin,
	})
	return Ref(id)
}

// Instant records a point event (End == Begin).
func (t *Tracer) Instant(query uint32, parent Ref, node int32, name string, at float64) Ref {
	return t.Start(query, parent, node, name, at)
}

// span resolves a reference, nil for None, out-of-range, or a nil
// tracer — the single guard every attribution method goes through.
func (t *Tracer) span(ref Ref) *Span {
	if t == nil || ref == None || int(ref) > len(t.spans) {
		return nil
	}
	return &t.spans[ref-1]
}

// End extends the span's end to at (never shrinks it): a transmission
// span ends when its last MAC attempt resolves, whenever that is.
func (t *Tracer) End(ref Ref, at float64) {
	if s := t.span(ref); s != nil && at > s.End {
		s.End = at
	}
}

// SetParent re-parents a span — how an aggregate arrival gets attached
// to the upward transmission it feeds once that transmission exists.
func (t *Tracer) SetParent(ref, parent Ref) {
	if s := t.span(ref); s != nil {
		s.Parent = uint32(parent)
	}
}

// SetPeer records the link destination of a transmission span.
func (t *Tracer) SetPeer(ref Ref, peer int32) {
	if s := t.span(ref); s != nil {
		s.Peer = peer
	}
}

// SetValue records the span's quantity.
func (t *Tracer) SetValue(ref Ref, v float64) {
	if s := t.span(ref); s != nil {
		s.Value = v
	}
}

// AddAir attributes one on-air frame (any attempt) to the span.
func (t *Tracer) AddAir(ref Ref, seconds float64, bytes int) {
	if s := t.span(ref); s != nil {
		s.Airtime += seconds
		s.Bytes += uint64(bytes)
		s.Frames++
	}
}

// AddRetry attributes one MAC retransmission to the span.
func (t *Tracer) AddRetry(ref Ref) {
	if s := t.span(ref); s != nil {
		s.Retries++
	}
}

// AddBackoff attributes one carrier-sense backoff to the span.
func (t *Tracer) AddBackoff(ref Ref) {
	if s := t.span(ref); s != nil {
		s.Backoffs++
	}
}

// AddDrop attributes one MAC drop (sense or retry budget exhausted).
func (t *Tracer) AddDrop(ref Ref) {
	if s := t.span(ref); s != nil {
		s.Drops++
	}
}

// AddJoules attributes consumed energy to the span.
func (t *Tracer) AddJoules(ref Ref, j float64) {
	if s := t.span(ref); s != nil {
		s.Joules += j
	}
}

// Len returns the number of stored spans (0 for a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Dropped returns how many spans arrived after the limit.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Spans returns the stored spans in creation order (ID order). The
// slice is the tracer's own storage; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}
