package qtrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Health is the rolled-up diagnosis of one traced query round: verdict,
// per-subtree contribution and cost, structural losses, and the
// critical path behind the round's completion time.
type Health struct {
	Query      uint32
	Verdict    string // "accepted", "rejected", or "" when untraced
	Begin, End float64
	Spans      int
	// Dead, Skipped and Repaired echo the round's tree maintenance
	// instants (PR 4 accounting), when present.
	Dead, Skipped, Repaired int
	// Subtrees aggregates the upward traffic per base-station child —
	// the unit pollution localization and loss attribution work at.
	Subtrees []Subtree
	// CriticalPath walks, from the verification point downward, the
	// causal chain with the latest completion at every level: where the
	// round's tail latency came from.
	CriticalPath []Hop
}

// Subtree is the rollup of one base-station child's aggregation
// subtree: every aggregate transmission causally beneath it.
type Subtree struct {
	Root        int32  // the hop-1 aggregator
	Tree        string // "red", "blue", or "" when unknown
	Nodes       int    // distinct aggregating nodes in the subtree
	Frames      uint32
	Bytes       uint64
	Retries     uint32
	Backoffs    uint32
	Drops       uint32
	Airtime     float64
	Joules      float64
	LastArrival float64 // latest End among the subtree's spans
}

// Hop is one step of a critical path.
type Hop struct {
	Node       int32
	Name       string
	Begin, End float64
}

// Analyze rolls one trial slot's spans up into per-round health
// reports, sorted by query. Spans must come from a single tracer (IDs
// are tracer-local).
func Analyze(spans []Span) []Health {
	byID := make(map[uint32]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	children := make(map[uint32][]int, len(spans))
	for i := range spans {
		p := spans[i].Parent
		if p != 0 && p != spans[i].ID {
			if _, ok := byID[p]; ok {
				children[p] = append(children[p], i)
			}
		}
	}

	var out []Health
	for i := range spans {
		if spans[i].Name != "round" {
			continue
		}
		round := &spans[i]
		h := Health{Query: round.Query, Begin: round.Begin, End: round.End}
		// Count the round's spans: everything sharing its query.
		for j := range spans {
			if spans[j].Query == round.Query {
				h.Spans++
			}
		}
		var verify *Span
		for _, ci := range children[round.ID] {
			c := &spans[ci]
			switch {
			case strings.HasPrefix(c.Name, "verify:"):
				verify = c
				h.Verdict = strings.TrimPrefix(c.Name, "verify:")
			case c.Name == "tree:dead":
				h.Dead = int(c.Value)
			case c.Name == "tree:skipped":
				h.Skipped = int(c.Value)
			case c.Name == "tree:repaired":
				h.Repaired = int(c.Value)
			}
		}
		if verify != nil {
			for _, ci := range children[verify.ID] {
				c := &spans[ci]
				if !strings.HasPrefix(c.Name, "aggregate") {
					continue
				}
				st := Subtree{Root: c.Node}
				if k := strings.IndexByte(c.Name, ':'); k >= 0 {
					st.Tree = c.Name[k+1:]
				}
				rollup(spans, children, ci, &st, map[int32]bool{})
				h.Subtrees = append(h.Subtrees, st)
			}
			sort.Slice(h.Subtrees, func(a, b int) bool {
				if h.Subtrees[a].Tree != h.Subtrees[b].Tree {
					return h.Subtrees[a].Tree < h.Subtrees[b].Tree
				}
				return h.Subtrees[a].Root < h.Subtrees[b].Root
			})
			h.CriticalPath = criticalPath(spans, children, verify)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Query < out[b].Query })
	return out
}

// rollup accumulates the aggregate spans of one subtree depth-first.
func rollup(spans []Span, children map[uint32][]int, i int, st *Subtree, nodes map[int32]bool) {
	s := &spans[i]
	if strings.HasPrefix(s.Name, "aggregate") && !strings.HasSuffix(s.Name, ":rx") {
		if !nodes[s.Node] {
			nodes[s.Node] = true
			st.Nodes++
		}
	}
	st.Frames += s.Frames
	st.Bytes += s.Bytes
	st.Retries += s.Retries
	st.Backoffs += s.Backoffs
	st.Drops += s.Drops
	st.Airtime += s.Airtime
	st.Joules += s.Joules
	if s.End > st.LastArrival {
		st.LastArrival = s.End
	}
	for _, ci := range children[uint32(s.ID)] {
		rollup(spans, children, ci, st, nodes)
	}
}

// criticalPath follows, from start, the child with the latest End at
// every level (ties to the lower ID — children lists are in ID order).
func criticalPath(spans []Span, children map[uint32][]int, start *Span) []Hop {
	path := []Hop{{Node: start.Node, Name: start.Name, Begin: start.Begin, End: start.End}}
	cur := start
	for len(path) < len(spans)+1 {
		kids := children[cur.ID]
		if len(kids) == 0 {
			break
		}
		best := -1
		for _, ci := range kids {
			if best < 0 || spans[ci].End > spans[best].End {
				best = ci
			}
		}
		cur = &spans[best]
		path = append(path, Hop{Node: cur.Node, Name: cur.Name, Begin: cur.Begin, End: cur.End})
	}
	return path
}

// WriteHealth renders per-round health reports as deterministic text.
func WriteHealth(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	for _, h := range Analyze(spans) {
		verdict := h.Verdict
		if verdict == "" {
			verdict = "unknown"
		}
		fmt.Fprintf(bw, "query %d: %s [%.4f %.4f] spans=%d dead=%d skipped=%d repaired=%d\n",
			h.Query, verdict, h.Begin, h.End, h.Spans, h.Dead, h.Skipped, h.Repaired)
		for _, st := range h.Subtrees {
			fmt.Fprintf(bw,
				"  subtree root=%d tree=%s nodes=%d frames=%d bytes=%d retries=%d backoffs=%d drops=%d air=%.6f joules=%.9f last=%.4f\n",
				st.Root, st.Tree, st.Nodes, st.Frames, st.Bytes,
				st.Retries, st.Backoffs, st.Drops, st.Airtime, st.Joules, st.LastArrival)
		}
		if len(h.CriticalPath) > 0 {
			fmt.Fprintf(bw, "  critical path (%d hops):\n", len(h.CriticalPath))
			for _, hop := range h.CriticalPath {
				fmt.Fprintf(bw, "    %s node=%d [%.4f %.4f]\n", hop.Name, hop.Node, hop.Begin, hop.End)
			}
		}
	}
	return bw.Flush()
}
