package qtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/ipda-sim/ipda/internal/obs"
)

// Line is one JSONL trace record: a span plus the coordinates locating
// it in a sweep. Single-run exports (ipda-sim) leave the coordinates at
// their zero values; sweep exports (ipda-bench) fill them in. Queries
// over a trace file (cmd/ipda-trace) group on them.
type Line struct {
	Sweep string `json:"sweep,omitempty"`
	Point int    `json:"point,omitempty"`
	Trial int    `json:"trial,omitempty"`
	Slot  string `json:"slot,omitempty"`
	Span
}

// WriteJSONL emits the tracer's spans as JSON lines in ID order,
// followed by a trailer recording the drop count when spans were lost.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeSpans(bw, Line{}, t); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL emits every collected tracer as JSON lines: trials sorted
// by (sweep, point, trial), slots sorted by name, spans in ID order.
// The ordering is a pure function of the keys, so a sweep's export is
// byte-identical however its workers and shards interleaved.
func (s *Store) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]trialKey, 0, len(s.trials))
	for k := range s.trials {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Sweep != keys[b].Sweep {
			return keys[a].Sweep < keys[b].Sweep
		}
		if keys[a].Point != keys[b].Point {
			return keys[a].Point < keys[b].Point
		}
		return keys[a].Trial < keys[b].Trial
	})
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		tt := s.Trial(k.Sweep, k.Point, k.Trial)
		tt.mu.Lock()
		slots := make([]string, 0, len(tt.slots))
		for slot := range tt.slots {
			slots = append(slots, slot)
		}
		tt.mu.Unlock()
		sort.Strings(slots)
		for _, slot := range slots {
			head := Line{Sweep: k.Sweep, Point: k.Point, Trial: k.Trial, Slot: slot}
			if err := writeSpans(bw, head, tt.Tracer(slot)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeSpans emits one tracer's spans under the given coordinates.
func writeSpans(w io.Writer, head Line, t *Tracer) error {
	enc := json.NewEncoder(w)
	for i := range t.Spans() {
		head.Span = t.Spans()[i]
		if err := enc.Encode(head); err != nil {
			return err
		}
	}
	if t.Dropped() > 0 {
		trailer := struct {
			Sweep   string `json:"sweep,omitempty"`
			Point   int    `json:"point,omitempty"`
			Trial   int    `json:"trial,omitempty"`
			Slot    string `json:"slot,omitempty"`
			Dropped int    `json:"dropped"`
		}{head.Sweep, head.Point, head.Trial, head.Slot, t.Dropped()}
		if err := enc.Encode(trailer); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a trace file produced by either WriteJSONL. Trailer
// lines (drop counts) are skipped; Dropped returns their sum.
func ReadJSONL(r io.Reader) (lines []Line, dropped int, err error) {
	dec := json.NewDecoder(r)
	for {
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return lines, dropped, nil
			}
			return nil, 0, err
		}
		if d, ok := raw["dropped"]; ok {
			var n int
			if json.Unmarshal(d, &n) == nil {
				dropped += n
			}
			continue
		}
		var ln Line
		blob, _ := json.Marshal(raw)
		if err := json.Unmarshal(blob, &ln); err != nil {
			return nil, 0, err
		}
		lines = append(lines, ln)
	}
}

// Key returns the line's trial coordinates as a printable group key.
func (l *Line) Key() string {
	if l.Sweep == "" && l.Slot == "" {
		return "run"
	}
	return fmt.Sprintf("%s/p%d/t%d/%s", l.Sweep, l.Point, l.Trial, l.Slot)
}

// GroupByTrial splits lines into per-(sweep, point, trial, slot) groups
// and returns the group keys in file order (first appearance).
func GroupByTrial(lines []Line) (map[string][]Span, []string) {
	groups := make(map[string][]Span)
	var order []string
	for i := range lines {
		k := lines[i].Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], lines[i].Span)
	}
	return groups, order
}

// WriteChromeTrace renders one trial's spans as Chrome trace-event JSON
// by replaying them into an obs.SpanRecorder (track = node, network
// spans on the global track) — the same Perfetto-loadable format the
// obs layer exports, so both kinds of trace open in the same UI.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	rec := obs.NewSpanRecorder(len(spans) + 1)
	for i := range spans {
		s := &spans[i]
		track := s.Node
		if track < 0 {
			track = obs.TrackGlobal
		}
		rec.Span(track, s.Name, s.Begin, s.End, s.Query)
	}
	return rec.WriteChromeTrace(w)
}

// WriteText renders spans as a deterministic indented tree, children
// sorted by (Begin, ID) under each parent, roots first. Orphans (spans
// whose parent was dropped) print as roots.
func WriteText(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	byID := make(map[uint32]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	children := make(map[uint32][]int)
	var roots []int
	for i := range spans {
		p := spans[i].Parent
		if p == 0 || byID[p] == i {
			roots = append(roots, i)
			continue
		}
		if _, ok := byID[p]; !ok {
			roots = append(roots, i)
			continue
		}
		children[p] = append(children[p], i)
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := &spans[idx[a]], &spans[idx[b]]
			if sa.Begin != sb.Begin {
				return sa.Begin < sb.Begin
			}
			return sa.ID < sb.ID
		})
	}
	order(roots)
	// visited guards against parent cycles in hand-edited input files.
	visited := make([]bool, len(spans))
	var walk func(i, depth int)
	walk = func(i, depth int) {
		if visited[i] {
			return
		}
		visited[i] = true
		s := &spans[i]
		for d := 0; d < depth; d++ {
			bw.WriteString("  ")
		}
		fmt.Fprintf(bw, "%s q%d node=%d [%.4f %.4f]", s.Name, s.Query, s.Node, s.Begin, s.End)
		if s.Peer != 0 {
			fmt.Fprintf(bw, " peer=%d", s.Peer)
		}
		if s.Frames > 0 {
			fmt.Fprintf(bw, " frames=%d bytes=%d air=%.6f", s.Frames, s.Bytes, s.Airtime)
		}
		if s.Retries > 0 {
			fmt.Fprintf(bw, " retries=%d", s.Retries)
		}
		if s.Backoffs > 0 {
			fmt.Fprintf(bw, " backoffs=%d", s.Backoffs)
		}
		if s.Drops > 0 {
			fmt.Fprintf(bw, " drops=%d", s.Drops)
		}
		if s.Joules > 0 {
			fmt.Fprintf(bw, " joules=%.9f", s.Joules)
		}
		if s.Value != 0 {
			fmt.Fprintf(bw, " value=%g", s.Value)
		}
		bw.WriteByte('\n')
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return bw.Flush()
}
