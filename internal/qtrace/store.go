package qtrace

import "sync"

// Store collects the tracers of a whole sweep, keyed by (sweep, point,
// trial) and, within a trial, by a caller-chosen slot name ("l1", "l2",
// "tag", "region/3", ...). It is the only concurrency-aware type in the
// package: harness workers and shard workers mint tracers through the
// store's mutex, then each tracer is owned by exactly one goroutine.
// The nil *Store disables collection — Trial returns nil, and the nil
// *TrialTraces hands out nil tracers.
type Store struct {
	// Limit is the per-tracer span limit (0 means DefaultLimit).
	Limit int

	mu     sync.Mutex
	trials map[trialKey]*TrialTraces
}

type trialKey struct {
	Sweep string
	Point int
	Trial int
}

// NewStore returns an empty store with the given per-tracer limit.
func NewStore(limit int) *Store {
	return &Store{Limit: limit}
}

// Trial returns the trace bundle for one (sweep, point, trial), creating
// it on first use. Safe for concurrent use; nil store returns nil.
func (s *Store) Trial(sweep string, point, trial int) *TrialTraces {
	if s == nil {
		return nil
	}
	key := trialKey{Sweep: sweep, Point: point, Trial: trial}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trials == nil {
		s.trials = make(map[trialKey]*TrialTraces)
	}
	tt := s.trials[key]
	if tt == nil {
		tt = &TrialTraces{limit: s.Limit}
		s.trials[key] = tt
	}
	return tt
}

// TrialTraces is one trial's set of tracers, keyed by slot. Tracer is
// safe for concurrent use (shard workers of one trial mint per-region
// tracers in parallel); each returned *Tracer then belongs to a single
// goroutine, exactly like a protocol instance.
type TrialTraces struct {
	limit int

	mu    sync.Mutex
	slots map[string]*Tracer
}

// Tracer returns slot's tracer, creating it on first use. A nil bundle
// returns the nil (disabled) tracer, so callers wire unconditionally:
//
//	cfg.QTrace = tr.QTrace.Tracer("l1")
func (tt *TrialTraces) Tracer(slot string) *Tracer {
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tt.slots == nil {
		tt.slots = make(map[string]*Tracer)
	}
	t := tt.slots[slot]
	if t == nil {
		t = New(tt.limit)
		tt.slots[slot] = t
	}
	return t
}
