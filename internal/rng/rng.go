// Package rng provides deterministic, splittable pseudo-random number
// streams for reproducible simulation.
//
// Every run of the simulator is driven by a single root seed; independent
// subsystems (deployment, MAC backoff, slicing, attacker coin flips, ...)
// each derive their own stream with Split, so adding randomness consumption
// to one subsystem never perturbs another. The generator is SplitMix64 for
// stream derivation and xoshiro256** for the streams themselves — both are
// small, fast, and well understood; no external dependencies.
package rng

import "math"

// Stream is a deterministic pseudo-random number stream. It is NOT safe for
// concurrent use; derive one stream per goroutine with Split.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to seed xoshiro state and to derive child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Streams with distinct seeds are
// statistically independent.
func New(seed uint64) *Stream {
	st := seed
	var r Stream
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives an independent child stream identified by label. Splitting
// does not advance the parent, so the set of children is stable regardless
// of how much randomness the parent itself consumes.
func (r *Stream) Split(label uint64) *Stream {
	// Mix the current state with the label through SplitMix64 so that
	// (stream, label) pairs map to well-separated seeds.
	seed := r.s[0] ^ rotl(r.s[2], 17) ^ (label * 0xd1342543de82ef95)
	return New(splitmix64(&seed))
}

// SplitPath derives a child stream by splitting along each label in turn:
// r.SplitPath(a, b, c) == r.Split(a).Split(b).Split(c). Hierarchical paths
// (experiment → point → trial) give every leaf an independent stream with
// no cross-path collisions, unlike flat seed arithmetic. With no labels it
// returns r itself.
func (r *Stream) SplitPath(labels ...uint64) *Stream {
	child := r
	for _, label := range labels {
		child = child.Split(label)
	}
	return child
}

// SplitString derives a child stream labeled by a string (FNV-1a hash of
// name). It lets path roots be named ("fig6", "deployment") rather than
// numbered, so adding an experiment never renumbers another's streams.
func (r *Stream) SplitString(name string) *Stream {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return r.Split(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Stream) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Stream) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	return int64(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless rejection method.
func (r *Stream) boundedUint64(bound uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher–Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Stream) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	return r.SampleAppend(make([]int, 0, k), n, k)
}

// SampleAppend appends k distinct values drawn uniformly from [0, n) to dst
// and returns the extended slice. It consumes exactly the same random draws
// as Sample with the same (n, k), so the two are interchangeable without
// perturbing downstream streams. It panics if k > n or k < 0.
func (r *Stream) SampleAppend(dst []int, n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Partial Fisher–Yates over an index remap: O(k) space for small k. The
	// remap holds at most 2k entries; for the small k the protocol uses
	// (slice counts l ≤ a handful) a linear scan over a stack array beats a
	// map and allocates nothing.
	if k <= 16 {
		var keys, vals [32]int
		nk := 0
		lookup := func(x int) int {
			for i := 0; i < nk; i++ {
				if keys[i] == x {
					return vals[i]
				}
			}
			return x
		}
		store := func(x, v int) {
			for i := 0; i < nk; i++ {
				if keys[i] == x {
					vals[i] = v
					return
				}
			}
			keys[nk], vals[nk] = x, v
			nk++
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			vj := lookup(j)
			vi := lookup(i)
			store(j, vi)
			dst = append(dst, vj)
		}
		return dst
	}
	remap := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := remap[j]
		if !ok {
			vj = j
		}
		vi, ok := remap[i]
		if !ok {
			vi = i
		}
		remap[j] = vi
		dst = append(dst, vj)
	}
	return dst
}
