package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependentOfParentConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume from b but not a: children must still agree because Split
	// does not depend on how much the parent consumed... it does depend on
	// current state, so split FIRST, then consume.
	ca := a.Split(3)
	cb := b.Split(3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children with same lineage diverged at %d", i)
		}
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	r := New(7)
	a := r.Split(1)
	b := r.Split(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("children with different labels look identical")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		expect := float64(n) / buckets
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, expect)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestInt64n(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Int64n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(37)
	if err := quick.Check(func(a, b uint8) bool {
		n := int(a%50) + 1
		k := int(b) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullRange(t *testing.T) {
	r := New(41)
	s := r.Sample(5, 5)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Sample(5,5) not a permutation: %v", s)
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each element of [0,10) should appear in a Sample(10,3) with
	// probability 3/10.
	r := New(43)
	const trials = 30000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		expect := trials * 3 / 10
		if math.Abs(float64(c-expect)) > 6*math.Sqrt(float64(expect)) {
			t.Fatalf("element %d drawn %d times, expected about %d", v, c, expect)
		}
	}
}

func TestSplitPathChainsSplit(t *testing.T) {
	root := New(7)
	want := root.Split(3).Split(1).Split(4).Uint64()
	if got := root.SplitPath(3, 1, 4).Uint64(); got != want {
		t.Fatalf("SplitPath(3,1,4) = %d, want chained Split %d", got, want)
	}
	if root.SplitPath() != root {
		t.Fatal("SplitPath() did not return the receiver")
	}
}

func TestSplitPathOrderMatters(t *testing.T) {
	// Hierarchical paths must not collide across levels the way flat
	// seed arithmetic does: (1,2) and (2,1) are distinct leaves.
	root := New(7)
	a := root.SplitPath(1, 2).Uint64()
	b := root.SplitPath(2, 1).Uint64()
	if a == b {
		t.Fatal("paths (1,2) and (2,1) collided")
	}
}

func TestSplitStringDistinctAndStable(t *testing.T) {
	root := New(7)
	fig6a := root.SplitString("fig6").Uint64()
	fig6b := root.SplitString("fig6").Uint64()
	fig7 := root.SplitString("fig7").Uint64()
	if fig6a != fig6b {
		t.Fatal("SplitString not deterministic")
	}
	if fig6a == fig7 {
		t.Fatal("distinct labels gave the same stream")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
