// Package eventsim is a deterministic discrete-event simulation kernel —
// the substitute for the ns-2 scheduler the paper's evaluation runs on.
//
// Events are callbacks ordered by (time, sequence number); ties in time are
// broken by scheduling order, so a run is a pure function of the initial
// schedule and the random streams the callbacks consume. The kernel is
// single-threaded by design: reproducibility matters more than parallelism
// inside one simulated network, and the experiment harness parallelizes
// across independent trials instead.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Handle allows a scheduled event to be cancelled before it fires.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// Cancelled reports whether Cancel was called on the handle.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.dead }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is the simulation kernel. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// New returns a fresh simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled (including
// cancelled-but-unreaped ones).
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a protocol bug, never a recoverable condition.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(float64(t)) {
		panic("eventsim: scheduling at NaN time")
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev}
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d Time, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Halt stops the run: Run returns after the current event completes.
func (s *Sim) Halt() { s.halted = true }

// Run executes events in order until the queue drains, Halt is called, or
// the simulated time would exceed deadline (events beyond the deadline stay
// unexecuted). It returns the number of events fired by this call.
func (s *Sim) Run(deadline Time) uint64 {
	start := s.fired
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		if ev.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		s.fired++
		ev.fn()
	}
	if s.now < deadline && len(s.queue) == 0 && !math.IsInf(float64(deadline), 1) {
		// Advance the clock to the deadline so successive Run calls see
		// monotonic time even over idle periods.
		s.now = deadline
	}
	return s.fired - start
}

// RunAll executes events until the queue drains or Halt is called, with no
// time limit. It returns the number of events fired by this call.
func (s *Sim) RunAll() uint64 {
	return s.Run(Time(math.Inf(1)))
}
