// Package eventsim is a deterministic discrete-event simulation kernel —
// the substitute for the ns-2 scheduler the paper's evaluation runs on.
//
// Events are callbacks ordered by (time, sequence number); ties in time are
// broken by scheduling order, so a run is a pure function of the initial
// schedule and the random streams the callbacks consume. The kernel is
// single-threaded by design: reproducibility matters more than parallelism
// inside one simulated network, and the experiment harness parallelizes
// across independent trials instead.
//
// The kernel is allocation-free in steady state: event structs are recycled
// through a free list as soon as they fire or are cancelled, and Cancel
// removes its event from the heap eagerly instead of leaving a dead entry
// to be skipped at pop time. Handles carry a generation counter so a handle
// to a recycled event can never touch its successor.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Event is a scheduled callback. The struct is recycled through the Sim's
// free list after it fires or is cancelled; gen distinguishes lifecycles so
// stale Handles become no-ops rather than acting on the next occupant.
type event struct {
	at  Time
	seq uint64
	fn  func()
	idx int    // position in the heap, -1 once removed
	gen uint64 // bumped when the event completes (fires or is cancelled)
}

// Handle allows a scheduled event to be cancelled before it fires. Methods
// have pointer receivers: Cancel records its outcome in the handle itself,
// so Cancelled reports what happened through this handle (a copy made
// before Cancel does not observe it).
type Handle struct {
	s         *Sim
	ev        *event
	gen       uint64
	cancelled bool
}

// Cancel prevents the event from firing, removing it from the schedule
// immediately. Cancelling an already-fired or already-cancelled event is a
// no-op: an event that has run cannot be un-run.
func (h *Handle) Cancel() {
	if h.cancelled || h.ev == nil {
		return
	}
	ev := h.ev
	h.ev = nil
	if ev.gen != h.gen {
		return // already fired or cancelled (possibly recycled since)
	}
	if ev.idx >= 0 {
		heap.Remove(&h.s.queue, ev.idx)
	}
	h.s.recycle(ev)
	h.cancelled = true
}

// Cancelled reports whether this handle's Cancel call actually cancelled
// the event. It stays false when the event had already fired by the time
// Cancel was called.
func (h *Handle) Cancelled() bool { return h.cancelled }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1 // a popped event is no longer addressable in the heap
	*h = old[:n-1]
	return ev
}

// Sim is the simulation kernel. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventHeap
	free   []*event // recycled event structs
	fired  uint64
	halted bool
}

// New returns a fresh simulation at time zero.
func New() *Sim { return &Sim{} }

// NewWithCap returns a fresh simulation with capacity for n simultaneously
// scheduled events preallocated (heap slots and pooled event structs), so
// a run that never exceeds n pending events performs no event allocation
// at all.
func NewWithCap(n int) *Sim {
	if n < 0 {
		n = 0
	}
	s := &Sim{
		queue: make(eventHeap, 0, n),
		free:  make([]*event, 0, n),
	}
	evs := make([]event, n)
	for i := range evs {
		s.free = append(s.free, &evs[i])
	}
	return s
}

// Reset rewinds the kernel to time zero for a fresh run while keeping its
// backing storage: any still-scheduled events are recycled into the free
// list (their handles are invalidated by the gen bump) and the heap keeps
// its capacity. A Reset sim is indistinguishable from a New one — the clock,
// sequence counter, and fired count all restart — so a run on a reused
// kernel is byte-identical to a run on a fresh one.
func (s *Sim) Reset() {
	for _, ev := range s.queue {
		ev.idx = -1
		s.recycle(ev)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.halted = false
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled. Cancelled events
// leave the schedule immediately and are not counted.
func (s *Sim) Pending() int { return len(s.queue) }

// recycle returns a completed event to the free list. Bumping gen here
// invalidates every outstanding handle to this lifecycle.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.fn = nil // release the closure for the collector
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a protocol bug, never a recoverable condition.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(float64(t)) {
		panic("eventsim: scheduling at NaN time")
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d Time, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Halt stops the run: Run returns after the current event completes.
func (s *Sim) Halt() { s.halted = true }

// Run executes events in order until the queue drains, Halt is called, or
// the simulated time would exceed deadline (events beyond the deadline stay
// unexecuted). It returns the number of events fired by this call.
func (s *Sim) Run(deadline Time) uint64 {
	start := s.fired
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		if s.queue[0].at > deadline {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.fired++
		fn := ev.fn
		// Recycle before running: the callback may schedule new events
		// (reusing this very struct), and any handle to this lifecycle is
		// invalidated by the gen bump first, so a self-Cancel inside fn is
		// a safe no-op.
		s.recycle(ev)
		fn()
	}
	if s.now < deadline && len(s.queue) == 0 && !math.IsInf(float64(deadline), 1) {
		// Advance the clock to the deadline so successive Run calls see
		// monotonic time even over idle periods.
		s.now = deadline
	}
	return s.fired - start
}

// RunAll executes events until the queue drains or Halt is called, with no
// time limit. It returns the number of events fired by this call.
func (s *Sim) RunAll() uint64 {
	return s.Run(Time(math.Inf(1)))
}

// NextAt returns the time of the earliest scheduled event, or false when
// the queue is empty. It is the peek a conservative parallel coordinator
// needs to derive a safe horizon from neighboring kernels' schedules.
func (s *Sim) NextAt() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// RunUntil executes events strictly before limit and returns the number
// fired. Unlike Run, it does NOT advance the clock to limit when the queue
// drains early: the clock stays at the last fired event, so events merged
// in from outside afterwards (cross-shard frames with timestamps in
// (now, limit)) can still be scheduled without violating monotonic time.
// This is the bounded-horizon drain the sharded engine runs between
// synchronization barriers.
func (s *Sim) RunUntil(limit Time) uint64 {
	start := s.fired
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		if s.queue[0].at >= limit {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.fired++
		fn := ev.fn
		s.recycle(ev)
		fn()
	}
	return s.fired - start
}

// RunAt executes every event scheduled exactly at time t, including events
// those callbacks newly schedule at t, and returns the number fired. It is
// the serialized tie-breaking step of the sharded engine: when several
// shards share the same next-event instant, the coordinator drains that
// one instant shard by shard in deterministic order. Calling RunAt with t
// already in the past panics — it would reorder history.
func (s *Sim) RunAt(t Time) uint64 {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: RunAt(%v) before now %v", t, s.now))
	}
	start := s.fired
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		if s.queue[0].at != t {
			if s.queue[0].at < t {
				panic(fmt.Sprintf("eventsim: RunAt(%v) found earlier event at %v", t, s.queue[0].at))
			}
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.fired++
		fn := ev.fn
		s.recycle(ev)
		fn()
	}
	return s.fired - start
}
