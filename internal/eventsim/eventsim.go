// Package eventsim is a deterministic discrete-event simulation kernel —
// the substitute for the ns-2 scheduler the paper's evaluation runs on.
//
// Events are callbacks ordered by (time, sequence number); ties in time are
// broken by scheduling order, so a run is a pure function of the initial
// schedule and the random streams the callbacks consume. The kernel is
// single-threaded by design: reproducibility matters more than parallelism
// inside one simulated network, and the experiment harness parallelizes
// across independent trials instead.
//
// The kernel is allocation-free in steady state: event slots are recycled
// through a free list as soon as they fire or are cancelled. Cancellation
// is lazy — the O(log n) heap surgery of eager removal would require every
// sift to write the entry's position back into its event slot, and those
// scattered writes dominate the sift's cost — so Cancel just bumps the
// slot's generation (reclaiming the slot immediately) and the dead heap
// entry is skipped when it reaches the front. Handles carry the same
// generation so a handle to a recycled event can never touch its
// successor.
package eventsim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Event is a scheduled callback. Events live in the Sim's slab and are
// addressed by index everywhere — heap entries, handles, the free list —
// so the scheduler's data structures carry no pointers: the slab may
// grow without invalidating references, sift writes need no GC write
// barriers, and the queue never needs scanning. gen distinguishes
// lifecycles: a heap entry or Handle whose gen no longer matches the
// slot's is dead, so stale Handles become no-ops and cancelled entries
// are skipped at pop time rather than acting on the next occupant of a
// recycled slot. The ordering key (time, sequence) lives in the heap
// entry, not here.
type event struct {
	fn  func()
	gen uint32 // bumped when the event completes (fires or is cancelled)
}

// Handle allows a scheduled event to be cancelled before it fires. Methods
// have pointer receivers: Cancel records its outcome in the handle itself,
// so Cancelled reports what happened through this handle (a copy made
// before Cancel does not observe it).
type Handle struct {
	s         *Sim
	ei        int32
	gen       uint32
	done      bool // Cancel already ran through this handle
	cancelled bool
}

// Cancel prevents the event from firing. The event's slot is reclaimed
// immediately; its heap entry stays behind as a tombstone and is dropped
// when it surfaces. Cancelling an already-fired or already-cancelled
// event is a no-op: an event that has run cannot be un-run.
func (h *Handle) Cancel() {
	if h.done || h.s == nil {
		return
	}
	h.done = true
	if h.s.events[h.ei].gen != h.gen {
		return // already fired or cancelled (possibly recycled since)
	}
	h.s.recycle(h.ei)
	h.s.live--
	h.cancelled = true
}

// Cancelled reports whether this handle's Cancel call actually cancelled
// the event. It stays false when the event had already fired by the time
// Cancel was called.
func (h *Handle) Cancelled() bool { return h.cancelled }

// The event queue is a 4-ary min-heap over (at, seq) implemented
// concretely rather than through container/heap: the comparator is a
// strict total order, so pop order — the only thing determinism depends
// on — is independent of heap layout. Entries carry the ordering key by
// value, so comparisons and sift moves never leave the heap's backing
// array, and the 4-ary shape halves the depth a pop sifts through —
// together these cut the scheduler's share of a simulation's CPU profile
// by more than half versus the interface-dispatched pointer heap. Sifts
// move a hole instead of swapping, so each level costs one entry copy.

// heapEntry is one scheduled slot: the ordering key, the slab index of
// the event it belongs to, and the lifecycle it was scheduled in. An
// entry whose gen trails the slot's current gen is a tombstone left by
// Cancel.
type heapEntry struct {
	at  Time
	seq uint64
	gen uint32
	ei  int32
}

type eventHeap []heapEntry

// before reports whether a fires before b: earlier time first,
// scheduling order breaking ties.
func before(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e and restores the heap property.
func (s *Sim) push(e heapEntry) {
	s.queue = append(s.queue, heapEntry{})
	s.siftUp(e, int32(len(s.queue))-1)
}

// pop removes and returns the earliest entry, which may be a tombstone.
// The queue must be non-empty.
func (s *Sim) pop() heapEntry {
	q := s.queue
	min := q[0]
	n := len(q) - 1
	last := q[n]
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(last, 0)
	}
	return min
}

// prune drops tombstones off the front of the queue so queue[0], when it
// exists, is always a live entry. Every front-of-queue read funnels
// through here; the amortized cost is one extra pop per Cancel.
func (s *Sim) prune() {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if s.events[e.ei].gen == e.gen {
			return
		}
		s.pop()
	}
}

// siftUp places e into the hole at position i, shifting later-firing
// parents down until the heap property holds.
func (s *Sim) siftUp(e heapEntry, i int32) {
	q := s.queue
	for i > 0 {
		p := (i - 1) / 4
		if !before(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
}

// siftDown places e into the hole at position i, shifting the
// earliest-firing child up until the heap property holds.
func (s *Sim) siftDown(e heapEntry, i int32) {
	q := s.queue
	n := int32(len(q))
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if before(q[j], q[m]) {
				m = j
			}
		}
		if !before(q[m], e) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = e
}

// Sim is the simulation kernel. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventHeap
	events []event // slab of event slots, addressed by index
	free   []int32 // recycled slab indices
	live   int     // scheduled events that are not tombstones
	fired  uint64
	halted bool
}

// New returns a fresh simulation at time zero.
func New() *Sim { return &Sim{} }

// NewWithCap returns a fresh simulation with capacity for n simultaneously
// scheduled events preallocated (heap slots and pooled event structs), so
// a run that never exceeds n pending events performs no event allocation
// at all.
func NewWithCap(n int) *Sim {
	if n < 0 {
		n = 0
	}
	s := &Sim{
		queue:  make(eventHeap, 0, n),
		events: make([]event, 0, n),
		free:   make([]int32, 0, n),
	}
	return s
}

// Reset rewinds the kernel to time zero for a fresh run while keeping its
// backing storage: any still-scheduled events are recycled into the free
// list (their handles are invalidated by the gen bump), tombstones are
// dropped, and the heap keeps its capacity. A Reset sim is
// indistinguishable from a New one — the clock, sequence counter, and
// fired count all restart — so a run on a reused kernel is byte-identical
// to a run on a fresh one.
func (s *Sim) Reset() {
	for _, e := range s.queue {
		if s.events[e.ei].gen == e.gen {
			s.recycle(e.ei)
		}
	}
	s.queue = s.queue[:0]
	s.live = 0
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.halted = false
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled. Cancelled events
// leave the count immediately even while their tombstones remain queued.
func (s *Sim) Pending() int { return s.live }

// recycle returns a completed event slot to the free list. Bumping gen
// here invalidates every outstanding handle to this lifecycle and turns
// any queued heap entry for it into a tombstone.
func (s *Sim) recycle(ei int32) {
	ev := &s.events[ei]
	ev.gen++
	ev.fn = nil // release the closure for the collector
	s.free = append(s.free, ei)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a protocol bug, never a recoverable condition.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(float64(t)) {
		panic("eventsim: scheduling at NaN time")
	}
	var ei int32
	if n := len(s.free); n > 0 {
		ei = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		ei = int32(len(s.events))
		s.events = append(s.events, event{})
	}
	ev := &s.events[ei]
	ev.fn = fn
	s.push(heapEntry{at: t, seq: s.seq, gen: ev.gen, ei: ei})
	s.seq++
	s.live++
	return Handle{s: s, ei: ei, gen: ev.gen}
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d Time, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Halt stops the run: Run returns after the current event completes.
func (s *Sim) Halt() { s.halted = true }

// Run executes events in order until the queue drains, Halt is called, or
// the simulated time would exceed deadline (events beyond the deadline stay
// unexecuted). It returns the number of events fired by this call.
func (s *Sim) Run(deadline Time) uint64 {
	start := s.fired
	s.halted = false
	for !s.halted {
		s.prune()
		if len(s.queue) == 0 || s.queue[0].at > deadline {
			break
		}
		e := s.pop()
		s.now = e.at
		s.fired++
		s.live--
		fn := s.events[e.ei].fn
		// Recycle before running: the callback may schedule new events
		// (reusing this very slot), and any handle to this lifecycle is
		// invalidated by the gen bump first, so a self-Cancel inside fn is
		// a safe no-op.
		s.recycle(e.ei)
		fn()
	}
	if s.now < deadline && s.live == 0 && !math.IsInf(float64(deadline), 1) {
		// Advance the clock to the deadline so successive Run calls see
		// monotonic time even over idle periods.
		s.now = deadline
	}
	return s.fired - start
}

// RunAll executes events until the queue drains or Halt is called, with no
// time limit. It returns the number of events fired by this call.
func (s *Sim) RunAll() uint64 {
	return s.Run(Time(math.Inf(1)))
}

// NextAt returns the time of the earliest scheduled event, or false when
// the queue is empty. It is the peek a conservative parallel coordinator
// needs to derive a safe horizon from neighboring kernels' schedules.
func (s *Sim) NextAt() (Time, bool) {
	s.prune()
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// RunUntil executes events strictly before limit and returns the number
// fired. Unlike Run, it does NOT advance the clock to limit when the queue
// drains early: the clock stays at the last fired event, so events merged
// in from outside afterwards (cross-shard frames with timestamps in
// (now, limit)) can still be scheduled without violating monotonic time.
// This is the bounded-horizon drain the sharded engine runs between
// synchronization barriers.
func (s *Sim) RunUntil(limit Time) uint64 {
	start := s.fired
	s.halted = false
	for !s.halted {
		s.prune()
		if len(s.queue) == 0 || s.queue[0].at >= limit {
			break
		}
		e := s.pop()
		s.now = e.at
		s.fired++
		s.live--
		fn := s.events[e.ei].fn
		s.recycle(e.ei)
		fn()
	}
	return s.fired - start
}

// RunAt executes every event scheduled exactly at time t, including events
// those callbacks newly schedule at t, and returns the number fired. It is
// the serialized tie-breaking step of the sharded engine: when several
// shards share the same next-event instant, the coordinator drains that
// one instant shard by shard in deterministic order. Calling RunAt with t
// already in the past panics — it would reorder history.
func (s *Sim) RunAt(t Time) uint64 {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: RunAt(%v) before now %v", t, s.now))
	}
	start := s.fired
	s.halted = false
	for !s.halted {
		s.prune()
		if len(s.queue) == 0 || s.queue[0].at != t {
			if len(s.queue) > 0 && s.queue[0].at < t {
				panic(fmt.Sprintf("eventsim: RunAt(%v) found earlier event at %v", t, s.queue[0].at))
			}
			break
		}
		e := s.pop()
		s.now = e.at
		s.fired++
		s.live--
		fn := s.events[e.ei].fn
		s.recycle(e.ei)
		fn()
	}
	return s.fired - start
}
