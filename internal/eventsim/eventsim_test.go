package eventsim

import (
	"testing"
)

func TestOrderByTime(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is a no-op.
	h.Cancel()
}

func TestDeadline(t *testing.T) {
	s := New()
	var got []Time
	for _, tt := range []Time{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	n := s.Run(3)
	if n != 3 || len(got) != 3 {
		t.Fatalf("Run(3) fired %d events: %v", n, got)
	}
	// Remaining events still fire on a later Run.
	s.Run(10)
	if len(got) != 5 {
		t.Fatalf("second Run left events: %v", got)
	}
}

func TestIdleClockAdvancesToDeadline(t *testing.T) {
	s := New()
	s.Run(7)
	if s.Now() != 7 {
		t.Fatalf("idle Run left Now at %v", s.Now())
	}
	// Scheduling after an idle Run must not go backwards.
	fired := false
	s.After(1, func() { fired = true })
	s.Run(10)
	if !fired || s.Now() != 10 {
		t.Fatalf("post-idle event handling broken: fired=%v now=%v", fired, s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Halt() })
	s.At(2, func() { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("Halt did not stop run, count = %d", count)
	}
	// A subsequent Run resumes.
	s.RunAll()
	if count != 2 {
		t.Fatalf("resume after Halt failed, count = %d", count)
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	s := New()
	var got []Time
	s.At(1, func() {
		got = append(got, s.Now())
		s.At(1.5, func() { got = append(got, s.Now()) })
		s.After(0, func() { got = append(got, s.Now()) }) // same-time event
	})
	s.At(2, func() { got = append(got, s.Now()) })
	s.RunAll()
	want := []Time{1, 1, 1.5, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.RunAll()
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

func TestManyEventsStress(t *testing.T) {
	s := New()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		s.At(Time(i%997), func() { count++ })
	}
	s.RunAll()
	if count != n {
		t.Fatalf("fired %d of %d", count, n)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.After(Time(i%100)*0.001, func() {})
		if i%1024 == 0 {
			s.RunAll()
		}
	}
	s.RunAll()
}
