package eventsim

import (
	"testing"
)

func TestOrderByTime(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is a no-op.
	h.Cancel()
}

func TestDeadline(t *testing.T) {
	s := New()
	var got []Time
	for _, tt := range []Time{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	n := s.Run(3)
	if n != 3 || len(got) != 3 {
		t.Fatalf("Run(3) fired %d events: %v", n, got)
	}
	// Remaining events still fire on a later Run.
	s.Run(10)
	if len(got) != 5 {
		t.Fatalf("second Run left events: %v", got)
	}
}

func TestIdleClockAdvancesToDeadline(t *testing.T) {
	s := New()
	s.Run(7)
	if s.Now() != 7 {
		t.Fatalf("idle Run left Now at %v", s.Now())
	}
	// Scheduling after an idle Run must not go backwards.
	fired := false
	s.After(1, func() { fired = true })
	s.Run(10)
	if !fired || s.Now() != 10 {
		t.Fatalf("post-idle event handling broken: fired=%v now=%v", fired, s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Halt() })
	s.At(2, func() { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("Halt did not stop run, count = %d", count)
	}
	// A subsequent Run resumes.
	s.RunAll()
	if count != 2 {
		t.Fatalf("resume after Halt failed, count = %d", count)
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	s := New()
	var got []Time
	s.At(1, func() {
		got = append(got, s.Now())
		s.At(1.5, func() { got = append(got, s.Now()) })
		s.After(0, func() { got = append(got, s.Now()) }) // same-time event
	})
	s.At(2, func() { got = append(got, s.Now()) })
	s.RunAll()
	want := []Time{1, 1, 1.5, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.RunAll()
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

func TestManyEventsStress(t *testing.T) {
	s := New()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		s.At(Time(i%997), func() { count++ })
	}
	s.RunAll()
	if count != n {
		t.Fatalf("fired %d of %d", count, n)
	}
}

func TestCancelAfterFireReportsFalse(t *testing.T) {
	// Regression: cancelling an event that already ran used to mark it
	// dead and report Cancelled()==true even though it fired.
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	s.RunAll()
	h.Cancel()
	if !fired {
		t.Fatal("event did not fire")
	}
	if h.Cancelled() {
		t.Fatal("Cancelled() true for an event that ran")
	}
}

func TestCancelReapsEagerly(t *testing.T) {
	s := New()
	h := s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	h.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after Cancel, want 1 (eager reap)", s.Pending())
	}
	if n := s.RunAll(); n != 1 {
		t.Fatalf("fired %d events, want 1", n)
	}
}

func TestDoubleCancelSafe(t *testing.T) {
	s := New()
	fired := 0
	h := s.At(1, func() { fired++ })
	h.Cancel()
	h.Cancel() // second cancel must not touch the (recycled) event
	// The recycled struct is reused by the next At; the stale handle must
	// not be able to cancel the new occupant.
	s.At(1, func() { fired++ })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("first Cancel not recorded")
	}
	s.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (only the second event)", fired)
	}
}

func TestStaleHandleAfterReuse(t *testing.T) {
	s := New()
	var order []int
	h1 := s.At(1, func() { order = append(order, 1) })
	s.RunAll()
	// h1's event struct is back on the free list; the next At reuses it.
	s.At(2, func() { order = append(order, 2) })
	h1.Cancel() // stale: must not cancel the reused event
	if h1.Cancelled() {
		t.Fatal("stale handle reported Cancelled")
	}
	s.RunAll()
	if len(order) != 2 {
		t.Fatalf("order = %v, want both events to fire", order)
	}
}

func TestSelfCancelInsideCallback(t *testing.T) {
	s := New()
	ran := false
	var h Handle
	h = s.At(1, func() {
		h.Cancel() // cancelling the running event is a no-op
		ran = true
	})
	s.At(2, func() {})
	s.RunAll()
	if !ran {
		t.Fatal("callback did not run")
	}
	if h.Cancelled() {
		t.Fatal("self-cancel of a running event reported Cancelled")
	}
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
}

func TestCancelDuringRunOfLaterEvent(t *testing.T) {
	s := New()
	fired := 0
	var h Handle
	s.At(1, func() { h.Cancel() })
	h = s.At(2, func() { fired++ })
	s.At(3, func() { fired++ })
	s.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (t=2 cancelled from t=1)", fired)
	}
	if !h.Cancelled() {
		t.Fatal("cancel during run not recorded")
	}
}

func TestNewWithCap(t *testing.T) {
	s := NewWithCap(8)
	count := 0
	for i := 0; i < 32; i++ { // exceed the prealloc to exercise growth
		s.At(Time(i), func() { count++ })
	}
	s.RunAll()
	if count != 32 {
		t.Fatalf("fired %d of 32", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestScheduleAllocFree(t *testing.T) {
	// Steady-state schedule+run must not allocate: event structs recycle
	// through the free list.
	s := NewWithCap(4)
	nop := func() {}
	s.After(1, nop)
	s.RunAll() // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		h := s.After(0.5, nop)
		s.After(1, nop)
		h.Cancel()
		s.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel/run allocated %v per run, want 0", allocs)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.After(Time(i%100)*0.001, func() {})
		if i%1024 == 0 {
			s.RunAll()
		}
	}
	s.RunAll()
}

// BenchmarkEventChurn measures the schedule/cancel/drain cycle the CSMA
// layer produces: per op, two timers armed, one cancelled, with periodic
// drains. Pre-PR baseline (heap-allocated events, lazy dead-entry reaping):
// 809 ns/op, 96 B/op, 2 allocs/op.
func BenchmarkEventChurn(b *testing.B) {
	s := New()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1 := s.After(0.001, nop)
		h2 := s.After(0.002, nop)
		h2.Cancel()
		_ = h1
		if i%1024 == 1023 {
			s.RunAll()
		}
	}
	s.RunAll()
}

func TestNextAt(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty sim reported an event")
	}
	s.At(3, func() {})
	s.At(1, func() {})
	s.At(2, func() {})
	if at, ok := s.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v, %v; want 1, true", at, ok)
	}
	s.RunAll()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}

func TestRunUntilStrictBound(t *testing.T) {
	// RunUntil fires strictly before the limit and leaves the clock at the
	// last fired event, NOT at the limit — so events injected afterwards
	// with timestamps inside (now, limit) remain schedulable.
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	n := s.RunUntil(3)
	if n != 2 || len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("RunUntil(3) fired %v (n=%d), want [1 2]", fired, n)
	}
	if s.Now() != 2 {
		t.Fatalf("Now = %v after RunUntil(3); want 2 (clock must not advance to the limit)", s.Now())
	}
	// An event at 2.5 — between the clock and the unexecuted horizon — must
	// be schedulable and must run before the event already queued at 3.
	s.At(2.5, func() { fired = append(fired, 2.5) })
	s.RunUntil(3.5)
	if len(fired) != 4 || fired[2] != 2.5 || fired[3] != 3 {
		t.Fatalf("after injection fired %v, want [... 2.5 3]", fired)
	}
}

func TestRunUntilEventAtLimitStays(t *testing.T) {
	s := New()
	ran := false
	s.At(5, func() { ran = true })
	if n := s.RunUntil(5); n != 0 || ran {
		t.Fatalf("RunUntil(5) fired the event AT the limit")
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0 (nothing fired)", s.Now())
	}
}

func TestRunAtDrainsInstant(t *testing.T) {
	// RunAt(t) fires every event at exactly t, including events scheduled
	// at t by the callbacks themselves, and stops before later events.
	s := New()
	var order []string
	s.At(1, func() {
		order = append(order, "a")
		s.At(1, func() { order = append(order, "a2") }) // same instant, mid-drain
	})
	s.At(1, func() { order = append(order, "b") })
	s.At(2, func() { order = append(order, "later") })
	n := s.RunAt(1)
	if n != 3 {
		t.Fatalf("RunAt(1) fired %d, want 3", n)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want 1", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the t=2 event)", s.Pending())
	}
}

func TestRunAtPastPanics(t *testing.T) {
	s := New()
	s.At(2, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("RunAt in the past did not panic")
		}
	}()
	s.RunAt(1)
}
