// Package trace records a structured timeline of protocol events — the
// debugging facility a protocol implementation ships with. A Log is a
// bounded in-memory event buffer; AttachRadio taps the shared medium and
// turns every audible frame into a decoded, human-readable event. The
// JSON-lines writer feeds external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Event is one timeline entry.
type Event struct {
	// Time is simulated seconds since the start of the run.
	Time float64 `json:"t"`
	// Node is the observing node.
	Node int32 `json:"node"`
	// Kind classifies the event ("rx", "collision", custom kinds).
	Kind string `json:"kind"`
	// Detail is a short human-readable description.
	Detail string `json:"detail"`
}

// Log is a bounded event buffer. The zero value is unusable; use New or
// NewRing. The two constructors pick what a full buffer discards: a head
// log keeps the first limit events and drops the tail, a ring log keeps
// the last limit events and drops the head.
type Log struct {
	limit   int
	ring    bool
	events  []Event
	start   int // ring mode: index of the oldest stored event
	dropped int
}

// New creates a head-mode log that keeps at most limit events; further
// events are counted but not stored.
func New(limit int) *Log {
	if limit <= 0 {
		panic("trace: limit must be positive")
	}
	return &Log{limit: limit}
}

// NewRing creates a ring-mode log that keeps the most recent limit
// events; once full, every new event evicts the oldest one. Long runs use
// this to capture the end of the timeline instead of the beginning.
func NewRing(limit int) *Log {
	if limit <= 0 {
		panic("trace: limit must be positive")
	}
	return &Log{limit: limit, ring: true}
}

// Mode reports how the log bounds itself: "head" or "ring".
func (l *Log) Mode() string {
	if l.ring {
		return "ring"
	}
	return "head"
}

// Add records one event.
func (l *Log) Add(ev Event) {
	if len(l.events) >= l.limit {
		l.dropped++
		if !l.ring {
			return
		}
		l.events[l.start] = ev
		l.start++
		if l.start == l.limit {
			l.start = 0
		}
		return
	}
	l.events = append(l.events, ev)
}

// Events returns the recorded events in time order. In ring mode after a
// wrap the slice is freshly assembled; callers must not retain it across
// further Adds.
func (l *Log) Events() []Event {
	if l.start == 0 {
		return l.events
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Dropped returns how many events arrived after the buffer filled.
func (l *Log) Dropped() int { return l.dropped }

// WriteJSON emits the log as JSON lines (one event per line), followed by
// a trailer line recording the capture mode and the dropped count when
// either carries information (ring mode, or dropped > 0).
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if l.ring || l.dropped > 0 {
		trailer := map[string]any{"dropped": l.dropped}
		if l.ring {
			trailer["mode"] = "ring"
		}
		if err := enc.Encode(trailer); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a timeline for quick inspection.
type Summary struct {
	Events     int
	Dropped    int
	Collisions int
	// ByDetailKind counts events by the leading word of Detail (HELLO,
	// SLICE, AGG, QUERY, ACK, ...).
	ByDetailKind map[string]int
	// BusiestNode is the node that observed the most events.
	BusiestNode int32
	// Span is the [first, last] event time.
	First, Last float64
}

// Summarize builds a Summary from a log.
func Summarize(l *Log) Summary {
	s := Summary{Dropped: l.Dropped(), ByDetailKind: map[string]int{}}
	perNode := map[int32]int{}
	for i, ev := range l.Events() {
		s.Events++
		if ev.Kind == "collision" {
			s.Collisions++
		}
		word := ev.Detail
		for j := 0; j < len(word); j++ {
			if word[j] == ' ' {
				word = word[:j]
				break
			}
		}
		s.ByDetailKind[word]++
		perNode[ev.Node]++
		if i == 0 || ev.Time < s.First {
			s.First = ev.Time
		}
		if ev.Time > s.Last {
			s.Last = ev.Time
		}
	}
	// Visit nodes in ID order so ties deterministically go to the lowest
	// node ID regardless of map iteration order.
	nodes := make([]int32, 0, len(perNode))
	for node := range perNode {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	best := -1
	for _, node := range nodes {
		if perNode[node] > best {
			best = perNode[node]
			s.BusiestNode = node
		}
	}
	return s
}

// ReadJSON parses a JSON-lines timeline produced by WriteJSON back into a
// log. The trailer line, if present, restores the dropped count and the
// capture mode (Mode reports "ring" for a ring-captured file).
func ReadJSON(r io.Reader, limit int) (*Log, error) {
	l := New(limit)
	dec := json.NewDecoder(r)
	for {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return l, nil
			}
			return nil, err
		}
		_, hasDropped := raw["dropped"]
		_, hasKind := raw["kind"]
		if hasDropped && !hasKind {
			if n, ok := raw["dropped"].(float64); ok {
				l.dropped += int(n)
			}
			if m, ok := raw["mode"].(string); ok && m == "ring" {
				l.ring = true
			}
			continue
		}
		ev := Event{}
		if t, ok := raw["t"].(float64); ok {
			ev.Time = t
		}
		if n, ok := raw["node"].(float64); ok {
			ev.Node = int32(n)
		}
		if k, ok := raw["kind"].(string); ok {
			ev.Kind = k
		}
		if d, ok := raw["detail"].(string); ok {
			ev.Detail = d
		}
		l.Add(ev)
	}
}

// AttachRadio taps the medium: every frame audible at any node becomes an
// "rx" event (or "collision" when corrupted there), with the decoded
// packet summarized in Detail. Call before running the protocol.
func AttachRadio(l *Log, sim *eventsim.Sim, medium *radio.Medium) {
	medium.AddTap(func(observer topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool) {
		kind := "rx"
		if collided {
			kind = "collision"
		}
		l.Add(Event{
			Time:   float64(sim.Now()),
			Node:   int32(observer),
			Kind:   kind,
			Detail: describe(src, dst, frame),
		})
	})
}

// describe renders a frame compactly.
func describe(src, dst topology.NodeID, frame []byte) string {
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return fmt.Sprintf("%d->%d undecodable (%d bytes)", src, dst, len(frame))
	}
	to := fmt.Sprintf("%d", dst)
	if int32(dst) == packet.Broadcast {
		to = "*"
	}
	switch p.Kind {
	case packet.KindHello:
		return fmt.Sprintf("HELLO %d->%s color=%v hop=%d", src, to, p.Color, p.Hop)
	case packet.KindSlice:
		return fmt.Sprintf("SLICE %d->%s tree=%v round=%d", src, to, p.Color, p.Round)
	case packet.KindAggregate:
		return fmt.Sprintf("AGG %d->%s tree=%v round=%d value=%d count=%d", src, to, p.Color, p.Round, p.Value, p.Count)
	case packet.KindQuery:
		return fmt.Sprintf("QUERY %d->%s round=%d", src, to, p.Round)
	case packet.KindAck:
		return fmt.Sprintf("ACK %d->%s seq=%d", src, to, p.Seq)
	default:
		return fmt.Sprintf("%v %d->%s", p.Kind, src, to)
	}
}
