// Package trace records a structured timeline of protocol events — the
// debugging facility a protocol implementation ships with. A Log is a
// bounded in-memory event buffer; AttachRadio taps the shared medium and
// turns every audible frame into a decoded, human-readable event. The
// JSON-lines writer feeds external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Event is one timeline entry.
type Event struct {
	// Time is simulated seconds since the start of the run.
	Time float64 `json:"t"`
	// Node is the observing node.
	Node int32 `json:"node"`
	// Kind classifies the event ("rx", "collision", custom kinds).
	Kind string `json:"kind"`
	// Detail is a short human-readable description.
	Detail string `json:"detail"`
}

// Log is a bounded event buffer. The zero value is unusable; use New.
type Log struct {
	limit   int
	events  []Event
	dropped int
}

// New creates a log that keeps at most limit events; further events are
// counted but not stored.
func New(limit int) *Log {
	if limit <= 0 {
		panic("trace: limit must be positive")
	}
	return &Log{limit: limit}
}

// Add records one event.
func (l *Log) Add(ev Event) {
	if len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event { return l.events }

// Dropped returns how many events arrived after the buffer filled.
func (l *Log) Dropped() int { return l.dropped }

// WriteJSON emits the log as JSON lines (one event per line).
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		if err := enc.Encode(map[string]int{"dropped": l.dropped}); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a timeline for quick inspection.
type Summary struct {
	Events     int
	Dropped    int
	Collisions int
	// ByDetailKind counts events by the leading word of Detail (HELLO,
	// SLICE, AGG, QUERY, ACK, ...).
	ByDetailKind map[string]int
	// BusiestNode is the node that observed the most events.
	BusiestNode int32
	// Span is the [first, last] event time.
	First, Last float64
}

// Summarize builds a Summary from a log.
func Summarize(l *Log) Summary {
	s := Summary{Dropped: l.Dropped(), ByDetailKind: map[string]int{}}
	perNode := map[int32]int{}
	for i, ev := range l.Events() {
		s.Events++
		if ev.Kind == "collision" {
			s.Collisions++
		}
		word := ev.Detail
		for j := 0; j < len(word); j++ {
			if word[j] == ' ' {
				word = word[:j]
				break
			}
		}
		s.ByDetailKind[word]++
		perNode[ev.Node]++
		if i == 0 || ev.Time < s.First {
			s.First = ev.Time
		}
		if ev.Time > s.Last {
			s.Last = ev.Time
		}
	}
	best := -1
	for node, count := range perNode {
		if count > best || (count == best && node < s.BusiestNode) {
			best = count
			s.BusiestNode = node
		}
	}
	return s
}

// ReadJSON parses a JSON-lines timeline produced by WriteJSON back into a
// log (the dropped-marker line, if present, restores the dropped count).
func ReadJSON(r io.Reader, limit int) (*Log, error) {
	l := New(limit)
	dec := json.NewDecoder(r)
	for {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return l, nil
			}
			return nil, err
		}
		if d, ok := raw["dropped"]; ok && len(raw) == 1 {
			if n, ok := d.(float64); ok {
				l.dropped += int(n)
			}
			continue
		}
		ev := Event{}
		if t, ok := raw["t"].(float64); ok {
			ev.Time = t
		}
		if n, ok := raw["node"].(float64); ok {
			ev.Node = int32(n)
		}
		if k, ok := raw["kind"].(string); ok {
			ev.Kind = k
		}
		if d, ok := raw["detail"].(string); ok {
			ev.Detail = d
		}
		l.Add(ev)
	}
}

// AttachRadio taps the medium: every frame audible at any node becomes an
// "rx" event (or "collision" when corrupted there), with the decoded
// packet summarized in Detail. Call before running the protocol.
func AttachRadio(l *Log, sim *eventsim.Sim, medium *radio.Medium) {
	medium.AddTap(func(observer topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool) {
		kind := "rx"
		if collided {
			kind = "collision"
		}
		l.Add(Event{
			Time:   float64(sim.Now()),
			Node:   int32(observer),
			Kind:   kind,
			Detail: describe(src, dst, frame),
		})
	})
}

// describe renders a frame compactly.
func describe(src, dst topology.NodeID, frame []byte) string {
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return fmt.Sprintf("%d->%d undecodable (%d bytes)", src, dst, len(frame))
	}
	to := fmt.Sprintf("%d", dst)
	if int32(dst) == packet.Broadcast {
		to = "*"
	}
	switch p.Kind {
	case packet.KindHello:
		return fmt.Sprintf("HELLO %d->%s color=%v hop=%d", src, to, p.Color, p.Hop)
	case packet.KindSlice:
		return fmt.Sprintf("SLICE %d->%s tree=%v round=%d", src, to, p.Color, p.Round)
	case packet.KindAggregate:
		return fmt.Sprintf("AGG %d->%s tree=%v round=%d value=%d count=%d", src, to, p.Color, p.Round, p.Value, p.Count)
	case packet.KindQuery:
		return fmt.Sprintf("QUERY %d->%s round=%d", src, to, p.Round)
	case packet.KindAck:
		return fmt.Sprintf("ACK %d->%s seq=%d", src, to, p.Seq)
	default:
		return fmt.Sprintf("%v %d->%s", p.Kind, src, to)
	}
}
