package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/topology"
)

func TestLogBoundsAndOrder(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(Event{Time: float64(i), Kind: "x"})
	}
	if len(l.Events()) != 3 {
		t.Fatalf("kept %d events", len(l.Events()))
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped %d", l.Dropped())
	}
	for i, ev := range l.Events() {
		if ev.Time != float64(i) {
			t.Fatalf("order broken: %v", l.Events())
		}
	}
}

func TestWriteJSON(t *testing.T) {
	l := New(2)
	l.Add(Event{Time: 1.5, Node: 3, Kind: "rx", Detail: "HELLO 0->*"})
	l.Add(Event{Time: 2, Node: 4, Kind: "collision", Detail: "x"})
	l.Add(Event{Time: 3, Node: 5, Kind: "rx", Detail: "y"}) // dropped
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // 2 events + dropped marker
		t.Fatalf("lines: %v", lines)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Time != 1.5 || ev.Node != 3 || ev.Kind != "rx" {
		t.Fatalf("decoded %+v", ev)
	}
}

func TestNewPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestRingKeepsLastEvents(t *testing.T) {
	l := NewRing(3)
	if l.Mode() != "ring" {
		t.Fatalf("mode %q", l.Mode())
	}
	for i := 0; i < 7; i++ {
		l.Add(Event{Time: float64(i), Kind: "x"})
	}
	events := l.Events()
	if len(events) != 3 || l.Dropped() != 4 {
		t.Fatalf("kept %d events, dropped %d", len(events), l.Dropped())
	}
	for i, ev := range events {
		if ev.Time != float64(4+i) { // last three: 4, 5, 6, oldest first
			t.Fatalf("ring order broken: %v", events)
		}
	}
	// Head mode over the same stream keeps the first three instead.
	h := New(3)
	for i := 0; i < 7; i++ {
		h.Add(Event{Time: float64(i), Kind: "x"})
	}
	if h.Mode() != "head" || h.Events()[2].Time != 2 {
		t.Fatalf("head mode kept %v", h.Events())
	}
}

func TestRingModeSurvivesJSONRoundTrip(t *testing.T) {
	l := NewRing(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Time: float64(i), Node: int32(i), Kind: "rx", Detail: "x"})
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode() != "ring" {
		t.Fatalf("mode %q after round trip", back.Mode())
	}
	if back.Dropped() != 3 {
		t.Fatalf("dropped %d after round trip", back.Dropped())
	}
	events := back.Events()
	if len(events) != 2 || events[0].Time != 3 || events[1].Time != 4 {
		t.Fatalf("round-tripped events %v", events)
	}
	// An unwrapped ring emits a mode trailer even with nothing dropped.
	fresh := NewRing(8)
	fresh.Add(Event{Time: 1, Kind: "rx"})
	buf.Reset()
	if err := fresh.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err = ReadJSON(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode() != "ring" || back.Dropped() != 0 || len(back.Events()) != 1 {
		t.Fatalf("unwrapped ring round trip: mode %q dropped %d events %d",
			back.Mode(), back.Dropped(), len(back.Events()))
	}
}

func TestSummarizeBusiestTieBreaksLowestID(t *testing.T) {
	// Two insertion orders of the same tied counts must agree: with many
	// tied nodes, a map-iteration-order dependence would flake.
	build := func(nodes []int32) *Log {
		l := New(100)
		for _, n := range nodes {
			l.Add(Event{Time: 1, Node: n, Kind: "rx", Detail: "x"})
		}
		return l
	}
	var forward, backward []int32
	for n := int32(1); n <= 40; n++ {
		forward = append(forward, n)
		backward = append(backward, 41-n)
	}
	for i := 0; i < 20; i++ {
		if got := Summarize(build(forward)).BusiestNode; got != 1 {
			t.Fatalf("forward tie broke to node %d, want 1", got)
		}
		if got := Summarize(build(backward)).BusiestNode; got != 1 {
			t.Fatalf("backward tie broke to node %d, want 1", got)
		}
	}
	// A strict winner beats the tie-break regardless of ID.
	l := build(forward)
	l.Add(Event{Time: 2, Node: 33, Kind: "rx", Detail: "x"})
	if got := Summarize(l).BusiestNode; got != 33 {
		t.Fatalf("busiest %d, want 33", got)
	}
}

func TestAttachRadioRecordsFrames(t *testing.T) {
	net, err := topology.Grid(2, 30, 50)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	l := New(100)
	AttachRadio(l, sim, medium)
	hello := &packet.Packet{
		Header: packet.Header{Kind: packet.KindHello, Src: 0, Dst: packet.Broadcast},
		Color:  packet.Red,
		Hop:    2,
	}
	sim.At(0.001, func() { medium.Transmit(0, packet.Broadcast, hello.Marshal(), hello.Size()) })
	sim.RunAll()
	events := l.Events()
	if len(events) != net.Degree(0) {
		t.Fatalf("recorded %d events, want %d", len(events), net.Degree(0))
	}
	for _, ev := range events {
		if ev.Kind != "rx" {
			t.Fatalf("kind %q", ev.Kind)
		}
		if !strings.Contains(ev.Detail, "HELLO 0->*") || !strings.Contains(ev.Detail, "hop=2") {
			t.Fatalf("detail %q", ev.Detail)
		}
		if ev.Time <= 0.001 {
			t.Fatalf("event time %v not after transmission", ev.Time)
		}
	}
}

func TestSummarizeAndReadJSON(t *testing.T) {
	l := New(10)
	l.Add(Event{Time: 1, Node: 3, Kind: "rx", Detail: "HELLO 0->* color=red hop=0"})
	l.Add(Event{Time: 2, Node: 3, Kind: "rx", Detail: "SLICE 1->3 tree=red round=1"})
	l.Add(Event{Time: 3, Node: 4, Kind: "collision", Detail: "SLICE 2->4 tree=blue round=1"})
	s := Summarize(l)
	if s.Events != 3 || s.Collisions != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByDetailKind["HELLO"] != 1 || s.ByDetailKind["SLICE"] != 2 {
		t.Fatalf("by kind %v", s.ByDetailKind)
	}
	if s.BusiestNode != 3 {
		t.Fatalf("busiest %d", s.BusiestNode)
	}
	if s.First != 1 || s.Last != 3 {
		t.Fatalf("span %v..%v", s.First, s.Last)
	}

	// Round-trip through JSON lines.
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events()) != 3 {
		t.Fatalf("read back %d events", len(back.Events()))
	}
	if back.Events()[1].Detail != l.Events()[1].Detail {
		t.Fatal("detail lost in round trip")
	}
}

func TestReadJSONDroppedMarker(t *testing.T) {
	in := strings.NewReader(`{"t":1,"node":2,"kind":"rx","detail":"x"}` + "\n" + `{"dropped":7}` + "\n")
	l, err := ReadJSON(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Events()) != 1 || l.Dropped() != 7 {
		t.Fatalf("events %d dropped %d", len(l.Events()), l.Dropped())
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json"), 10); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDescribeKinds(t *testing.T) {
	cases := []struct {
		pkt  *packet.Packet
		want string
	}{
		{&packet.Packet{Header: packet.Header{Kind: packet.KindSlice, Src: 1, Dst: 2, Round: 7}, Color: packet.Blue}, "SLICE 1->2 tree=blue round=7"},
		{&packet.Packet{Header: packet.Header{Kind: packet.KindAggregate, Src: 3, Dst: 4, Round: 1}, Value: 42, Count: 2, Color: packet.Red}, "AGG 3->4 tree=red round=1 value=42 count=2"},
		{&packet.Packet{Header: packet.Header{Kind: packet.KindQuery, Src: 0, Dst: packet.Broadcast, Round: 9}}, "QUERY 0->* round=9"},
		{&packet.Packet{Header: packet.Header{Kind: packet.KindAck, Src: 5, Dst: 6, Seq: 11}}, "ACK 5->6 seq=11"},
	}
	for _, c := range cases {
		got := describe(topology.NodeID(c.pkt.Src), topology.NodeID(c.pkt.Dst), c.pkt.Marshal())
		if got != c.want {
			t.Fatalf("describe = %q, want %q", got, c.want)
		}
	}
	if got := describe(1, 2, []byte{1, 2}); !strings.Contains(got, "undecodable") {
		t.Fatalf("bad frame described as %q", got)
	}
}
