// Package slicing implements the data slicing and assembling technique of
// Phase II (Section III-C of the paper).
//
// A node hides its private reading d(i) by splitting it into l additive
// shares, independently for each tree: l shares go to red aggregators and l
// to blue aggregators in its one-hop neighborhood (including itself when it
// is an aggregator — that share never touches the air). Shares are uniform
// over the full 64-bit ring, so any strict subset of a reading's shares is
// statistically independent of the reading; only the complete per-tree set
// sums back to d(i) (mod 2^64), which is exact in two's-complement
// arithmetic.
package slicing

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Split returns l additive shares of value: uniform random int64s whose
// wrapping sum equals value. l must be at least 1.
func Split(value int64, l int, r *rng.Stream) []int64 {
	if l < 1 {
		panic(fmt.Sprintf("slicing: Split with l = %d", l))
	}
	return SplitAppend(make([]int64, 0, l), value, l, r)
}

// SplitAppend appends l additive shares of value to dst and returns the
// extended slice. It consumes the same draws and yields the same shares as
// Split, without the per-call allocation.
func SplitAppend(dst []int64, value int64, l int, r *rng.Stream) []int64 {
	if l < 1 {
		panic(fmt.Sprintf("slicing: Split with l = %d", l))
	}
	var acc int64
	for i := 0; i < l-1; i++ {
		s := int64(r.Uint64()) // uniform over the whole ring
		dst = append(dst, s)
		acc += s // wrapping
	}
	return append(dst, value-acc) // wrapping
}

// SplitBounded returns l additive shares of value whose first l-1 entries
// are uniform in [-B, B] with B = spread·max(1, |value|); the last share
// is value minus the rest. Bounded shares trade perfect secrecy (a share
// leaks the magnitude scale of the reading) for graceful degradation: a
// lost share perturbs the aggregate by O(spread·|value|) instead of
// randomizing it across the whole 64-bit ring — the behaviour the paper's
// Figure 6 exhibits, where tree totals stay within a small threshold of
// each other despite channel losses. Use Split for full-ring shares when
// the transport is loss-free.
func SplitBounded(value int64, l int, spread int64, r *rng.Stream) []int64 {
	if l < 1 {
		panic(fmt.Sprintf("slicing: SplitBounded with l = %d", l))
	}
	if spread < 1 {
		panic(fmt.Sprintf("slicing: SplitBounded with spread = %d", spread))
	}
	mag := value
	if mag < 0 {
		mag = -mag
	}
	if mag < 1 {
		mag = 1
	}
	bound := spread * mag
	shares := make([]int64, l)
	var acc int64
	for i := 0; i < l-1; i++ {
		s := r.Int64n(2*bound+1) - bound
		shares[i] = s
		acc += s
	}
	shares[l-1] = value - acc
	return shares
}

// SplitBoundedAppend appends l bounded shares of value to dst and returns
// the extended slice — SplitBounded's into-buffer form, with identical
// draws and shares.
func SplitBoundedAppend(dst []int64, value int64, l int, spread int64, r *rng.Stream) []int64 {
	if l < 1 {
		panic(fmt.Sprintf("slicing: SplitBounded with l = %d", l))
	}
	if spread < 1 {
		panic(fmt.Sprintf("slicing: SplitBounded with spread = %d", spread))
	}
	mag := value
	if mag < 0 {
		mag = -mag
	}
	if mag < 1 {
		mag = 1
	}
	bound := spread * mag
	var acc int64
	for i := 0; i < l-1; i++ {
		s := r.Int64n(2*bound+1) - bound
		dst = append(dst, s)
		acc += s
	}
	return append(dst, value-acc)
}

// Combine returns the wrapping sum of shares — the inverse of Split.
func Combine(shares []int64) int64 {
	var acc int64
	for _, s := range shares {
		acc += s
	}
	return acc
}

// Targets is the outcome of slice-target selection for one node: the
// aggregators that will receive its shares, per tree. KeptLocal reports
// whether the first entry of the node's own color is the node itself (that
// share is kept locally and never transmitted).
type Targets struct {
	Red       []topology.NodeID
	Blue      []topology.NodeID
	KeptLocal bool
}

// Transmissions returns the number of radio sends the node performs in the
// slicing step: 2l normally, 2l-1 when one share stays local — the paper's
// "each node takes 2l-1 transmissions" counts the local share as saved.
func (t Targets) Transmissions() int {
	n := len(t.Red) + len(t.Blue)
	if t.KeptLocal {
		n--
	}
	return n
}

// ChooseTargets selects l red and l blue slice targets for node id from the
// aggregator neighborhoods discovered in Phase I, per Section III-C.1: an
// aggregator always selects itself plus l-1 others of its own color. ok is
// false when the neighborhoods cannot support l slices per tree; such a
// node does not participate (loss factor (b) of Section IV-B.3).
//
// selfColorRed/selfColorBlue report the node's own role; at most one may be
// true. The candidate lists must not contain id itself.
func ChooseTargets(id topology.NodeID, selfRed, selfBlue bool, redNbrs, blueNbrs []topology.NodeID, l int, r *rng.Stream) (Targets, bool) {
	var t Targets
	if !t.Choose(id, selfRed, selfBlue, redNbrs, blueNbrs, l, r) {
		return Targets{}, false
	}
	return t, true
}

// Choose is ChooseTargets writing into t's existing backing arrays: Red and
// Blue are truncated and refilled, so a node's Targets can be re-selected
// every round with no allocation once the slices have grown to l entries.
// It consumes exactly the same random draws as ChooseTargets (none at all
// when the neighborhoods are too small) and fills t with the same targets
// in the same order, so the two are interchangeable mid-protocol.
func (t *Targets) Choose(id topology.NodeID, selfRed, selfBlue bool, redNbrs, blueNbrs []topology.NodeID, l int, r *rng.Stream) bool {
	if l < 1 {
		panic(fmt.Sprintf("slicing: ChooseTargets with l = %d", l))
	}
	if selfRed && selfBlue {
		panic("slicing: node cannot be on both trees")
	}
	t.Red = t.Red[:0]
	t.Blue = t.Blue[:0]
	t.KeptLocal = false
	switch {
	case selfRed:
		if len(redNbrs) < l-1 || len(blueNbrs) < l {
			return false
		}
		t.Red = append(t.Red, id)
		t.Red = pickAppend(t.Red, redNbrs, l-1, r)
		t.Blue = pickAppend(t.Blue, blueNbrs, l, r)
		t.KeptLocal = true
	case selfBlue:
		if len(blueNbrs) < l-1 || len(redNbrs) < l {
			return false
		}
		t.Blue = append(t.Blue, id)
		t.Blue = pickAppend(t.Blue, blueNbrs, l-1, r)
		t.Red = pickAppend(t.Red, redNbrs, l, r)
		t.KeptLocal = true
	default:
		if len(redNbrs) < l || len(blueNbrs) < l {
			return false
		}
		t.Red = pickAppend(t.Red, redNbrs, l, r)
		t.Blue = pickAppend(t.Blue, blueNbrs, l, r)
	}
	return true
}

// pickAppend appends k distinct elements of xs, drawn uniformly at random,
// to dst. Index sampling runs through rng.SampleAppend over a stack buffer
// for the small k the protocol uses, so the common case allocates nothing
// beyond dst's own growth.
func pickAppend(dst []topology.NodeID, xs []topology.NodeID, k int, r *rng.Stream) []topology.NodeID {
	if k == 0 {
		return dst
	}
	var stack [16]int
	var idx []int
	if k <= len(stack) {
		idx = r.SampleAppend(stack[:0], len(xs), k)
	} else {
		idx = r.Sample(len(xs), k)
	}
	for _, j := range idx {
		dst = append(dst, xs[j])
	}
	return dst
}

// Assembler accumulates the slices received by one aggregator during Phase
// II. After the slicing step the assembled total r(j) = Σ_i d_ij is the
// value the aggregator treats as its own reading (Section III-C.2).
type Assembler struct {
	total    int64
	received int
	senders  map[topology.NodeID]int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{senders: make(map[topology.NodeID]int)}
}

// Reset clears the assembler in place so it can be reused for another
// round without reallocating its sender map.
func (a *Assembler) Reset() {
	a.total = 0
	a.received = 0
	clear(a.senders)
}

// Add folds in one received (already decrypted) slice.
func (a *Assembler) Add(from topology.NodeID, share int64) {
	a.total += share // wrapping
	a.received++
	a.senders[from]++
}

// Total returns the assembled value r(j).
func (a *Assembler) Total() int64 { return a.total }

// Received returns the number of slices folded in.
func (a *Assembler) Received() int { return a.received }

// Contributors returns the number of distinct senders seen.
func (a *Assembler) Contributors() int { return len(a.senders) }
