package slicing

import (
	"testing"
	"testing/quick"

	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func TestSplitCombineProperty(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(value int64, lRaw uint8) bool {
		l := int(lRaw%5) + 1
		shares := Split(value, l, r)
		return len(shares) == l && Combine(shares) == value
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSingleShare(t *testing.T) {
	shares := Split(42, 1, rng.New(2))
	if len(shares) != 1 || shares[0] != 42 {
		t.Fatalf("Split(42,1) = %v", shares)
	}
}

func TestSplitExtremes(t *testing.T) {
	r := rng.New(3)
	for _, v := range []int64{0, 1, -1, 1<<63 - 1, -1 << 63} {
		for _, l := range []int{1, 2, 3, 7} {
			if got := Combine(Split(v, l, r)); got != v {
				t.Fatalf("Split/Combine(%d, %d) = %d", v, l, got)
			}
		}
	}
}

func TestSplitSharesLookUniform(t *testing.T) {
	// A single share from a 2-way split of a constant must not leak the
	// constant: mean of first shares over many splits should be near the
	// ring average (i.e. huge spread, sign split ~50/50).
	r := rng.New(5)
	pos := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		s := Split(1000, 2, r)
		if s[0] >= 0 {
			pos++
		}
	}
	frac := float64(pos) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("first-share sign fraction %v; shares not uniform", frac)
	}
}

func TestSplitBoundedSumsExactly(t *testing.T) {
	r := rng.New(31)
	if err := quick.Check(func(raw int32, lRaw, sRaw uint8) bool {
		value := int64(raw)
		l := int(lRaw%5) + 1
		spread := int64(sRaw%8) + 1
		shares := SplitBounded(value, l, spread, r)
		return len(shares) == l && Combine(shares) == value
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBoundedSharesBounded(t *testing.T) {
	r := rng.New(37)
	const value, spread = 100, 4
	for trial := 0; trial < 1000; trial++ {
		shares := SplitBounded(value, 3, spread, r)
		for i, s := range shares[:2] { // all but the last are bounded
			if s < -spread*value || s > spread*value {
				t.Fatalf("share %d = %d outside ±%d", i, s, spread*value)
			}
		}
		// The last share is bounded by |value| + (l-1)·spread·|value|.
		last := shares[2]
		if last < -(1+2*spread)*value || last > (1+2*spread)*value {
			t.Fatalf("last share %d out of range", last)
		}
	}
}

func TestSplitBoundedZeroValue(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 100; trial++ {
		shares := SplitBounded(0, 2, 4, r)
		if Combine(shares) != 0 {
			t.Fatal("zero value not preserved")
		}
		// Bound for value 0 uses magnitude 1.
		if shares[0] < -4 || shares[0] > 4 {
			t.Fatalf("zero-value share %d outside ±4", shares[0])
		}
	}
}

func TestSplitBoundedHidesValueSign(t *testing.T) {
	// With spread 4, the first share of +1 and of -1 should look alike
	// enough that sign recovery from one share is barely better than a
	// coin flip.
	r := rng.New(43)
	correct := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		value := int64(1)
		if i%2 == 0 {
			value = -1
		}
		s := SplitBounded(value, 2, 4, r)[0]
		guess := int64(1)
		if s < 0 {
			guess = -1
		}
		if guess == value {
			correct++
		}
	}
	acc := float64(correct) / trials
	if acc > 0.58 {
		t.Fatalf("single bounded share reveals sign with accuracy %v", acc)
	}
}

func TestSplitBoundedPanics(t *testing.T) {
	for _, c := range []struct {
		l      int
		spread int64
	}{{0, 4}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SplitBounded(l=%d, spread=%d) did not panic", c.l, c.spread)
				}
			}()
			SplitBounded(1, c.l, c.spread, rng.New(1))
		}()
	}
}

func TestSplitPanicsOnBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(1, 0, rng.New(1))
}

func ids(xs ...int) []topology.NodeID {
	out := make([]topology.NodeID, len(xs))
	for i, x := range xs {
		out[i] = topology.NodeID(x)
	}
	return out
}

func TestChooseTargetsLeaf(t *testing.T) {
	r := rng.New(7)
	tg, ok := ChooseTargets(5, false, false, ids(1, 2, 3), ids(4, 6, 7), 2, r)
	if !ok {
		t.Fatal("leaf with enough neighbors rejected")
	}
	if len(tg.Red) != 2 || len(tg.Blue) != 2 {
		t.Fatalf("targets %+v", tg)
	}
	if tg.KeptLocal {
		t.Fatal("leaf kept a share local")
	}
	if tg.Transmissions() != 4 {
		t.Fatalf("leaf transmissions = %d, want 2l = 4", tg.Transmissions())
	}
}

func TestChooseTargetsRedAggregator(t *testing.T) {
	r := rng.New(9)
	tg, ok := ChooseTargets(5, true, false, ids(1, 2), ids(4, 6), 2, r)
	if !ok {
		t.Fatal("red aggregator rejected")
	}
	if tg.Red[0] != 5 {
		t.Fatalf("aggregator must select itself first: %v", tg.Red)
	}
	if !tg.KeptLocal {
		t.Fatal("KeptLocal false for aggregator")
	}
	// Paper: 2l-1 transmissions for l=2 -> 3.
	if tg.Transmissions() != 3 {
		t.Fatalf("transmissions = %d, want 3", tg.Transmissions())
	}
}

func TestChooseTargetsBlueAggregator(t *testing.T) {
	r := rng.New(11)
	tg, ok := ChooseTargets(9, false, true, ids(1, 2, 3), ids(4), 2, r)
	if !ok {
		t.Fatal("blue aggregator rejected")
	}
	if tg.Blue[0] != 9 || len(tg.Blue) != 2 || len(tg.Red) != 2 {
		t.Fatalf("targets %+v", tg)
	}
}

func TestChooseTargetsInsufficientNeighbors(t *testing.T) {
	r := rng.New(13)
	if _, ok := ChooseTargets(5, false, false, ids(1), ids(2, 3), 2, r); ok {
		t.Fatal("leaf with 1 red neighbor accepted for l=2")
	}
	if _, ok := ChooseTargets(5, true, false, ids(1), ids(2), 3, r); ok {
		t.Fatal("red aggregator without l-1=2 red neighbors accepted")
	}
	// Aggregator with zero same-color neighbors but l=1 is fine: it keeps
	// its whole same-color share and sends one to the other tree.
	if _, ok := ChooseTargets(5, true, false, nil, ids(2), 1, r); !ok {
		t.Fatal("l=1 aggregator with one opposite neighbor rejected")
	}
}

func TestChooseTargetsDistinct(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 200; trial++ {
		tg, ok := ChooseTargets(5, true, false, ids(1, 2, 3, 4), ids(6, 7, 8), 3, r)
		if !ok {
			t.Fatal("rejected")
		}
		seen := map[topology.NodeID]bool{}
		for _, x := range append(append([]topology.NodeID{}, tg.Red...), tg.Blue...) {
			if seen[x] {
				t.Fatalf("duplicate target %d in %+v", x, tg)
			}
			seen[x] = true
		}
	}
}

func TestChooseTargetsBothColorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChooseTargets(1, true, true, nil, nil, 1, rng.New(1))
}

func TestAssembler(t *testing.T) {
	a := NewAssembler()
	a.Add(1, 10)
	a.Add(2, -3)
	a.Add(1, 5)
	if a.Total() != 12 {
		t.Fatalf("Total = %d", a.Total())
	}
	if a.Received() != 3 || a.Contributors() != 2 {
		t.Fatalf("Received=%d Contributors=%d", a.Received(), a.Contributors())
	}
}

func TestAssemblerWrapping(t *testing.T) {
	a := NewAssembler()
	a.Add(1, 1<<62)
	a.Add(2, 1<<62)
	a.Add(3, 1<<62)
	a.Add(4, 1<<62)
	if a.Total() != 0 {
		t.Fatalf("wrapping sum = %d, want 0", a.Total())
	}
}

// TestSlicedAggregationInvariant checks Equation (4): splitting every
// node's reading and summing all shares per tree yields the true total on
// each tree independently.
func TestSlicedAggregationInvariant(t *testing.T) {
	r := rng.New(23)
	if err := quick.Check(func(readings []int64) bool {
		var trueSum, redSum, blueSum int64
		for _, d := range readings {
			trueSum += d
			for _, s := range Split(d, 2, r) {
				redSum += s
			}
			for _, s := range Split(d, 2, r) {
				blueSum += s
			}
		}
		return redSum == trueSum && blueSum == trueSum
	}, nil); err != nil {
		t.Fatal(err)
	}
}
