package tag

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

func deploy(t *testing.T, nodes int, seed uint64) *Instance {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(net, DefaultConfig(), seed+500)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCountNearNetworkSize(t *testing.T) {
	inst := deploy(t, 400, 1)
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outcomes[0].Sum
	want := int64(len(inst.Participants()))
	if got < want*9/10 || got > want {
		t.Fatalf("count %d, participants %d", got, want)
	}
}

func TestSumAccuracy(t *testing.T) {
	inst := deploy(t, 400, 2)
	readings := make([]int64, inst.Net.N())
	r := rng.New(9)
	for i := 1; i < len(readings); i++ {
		readings[i] = int64(r.Intn(50) + 1)
	}
	res, err := inst.RunSum(readings)
	if err != nil {
		t.Fatal(err)
	}
	var expect int64
	for _, id := range inst.Participants() {
		expect += readings[id]
	}
	got := float64(res.Outcomes[0].Sum)
	if math.Abs(got-float64(expect)) > 0.1*float64(expect) {
		t.Fatalf("sum %v vs participant sum %d", got, expect)
	}
}

func TestLossFreeGridIsExact(t *testing.T) {
	net, err := topology.Grid(5, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(net, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]int64, net.N())
	for i := range readings {
		readings[i] = int64(i)
	}
	res, err := inst.RunSum(readings)
	if err != nil {
		t.Fatal(err)
	}
	var expect int64
	for _, id := range inst.Participants() {
		expect += readings[id]
	}
	if inst.Medium.Stats().FramesCollided == 0 && res.Outcomes[0].Sum != expect {
		t.Fatalf("loss-free TAG sum %d, want %d", res.Outcomes[0].Sum, expect)
	}
}

func TestAverageQuery(t *testing.T) {
	inst := deploy(t, 300, 4)
	readings := make([]int64, inst.Net.N())
	for i := range readings {
		readings[i] = 20
	}
	res, err := inst.Run(aggregate.SpecFor(aggregate.Average), readings)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-20) > 0.5 {
		t.Fatalf("average %v, want 20", res.Value)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("average rounds = %d", len(res.Outcomes))
	}
}

func TestTwoMessagesPerNode(t *testing.T) {
	// Section IV-A.2: TAG costs one HELLO plus one aggregate per node per
	// query. Count protocol frames (excluding MAC ACKs and retries):
	// HELLO frames ≈ N (each reached node broadcasts once), aggregate
	// data frames ≈ participants (+ retransmissions).
	inst := deploy(t, 300, 5)
	helloFrames := inst.Tree.HelloFrames
	n := uint64(inst.Net.N())
	if helloFrames < n*9/10 || helloFrames > n*11/10 {
		t.Fatalf("HELLO frames %d for %d nodes", helloFrames, n)
	}
	res, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	// Frames counted during the round include data + ACKs + retries; data
	// sends are at least participants and the total stays within a small
	// multiple.
	p := uint64(res.Outcomes[0].Participants)
	if res.Outcomes[0].Frames < p {
		t.Fatalf("round frames %d below participants %d", res.Outcomes[0].Frames, p)
	}
	if res.Outcomes[0].Frames > p*4 {
		t.Fatalf("round frames %d too high for %d participants", res.Outcomes[0].Frames, p)
	}
}

func TestValidation(t *testing.T) {
	net, _ := topology.Grid(3, 20, 50)
	if _, err := New(net, Config{}, 1); err == nil {
		t.Fatal("zero config accepted")
	}
	inst, err := New(net, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.RunSum(make([]int64, 3)); err == nil {
		t.Fatal("wrong-length readings accepted")
	}
}

func TestRepeatedRounds(t *testing.T) {
	inst := deploy(t, 250, 6)
	a, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcomes[0].Participants != b.Outcomes[0].Participants {
		t.Fatal("participants changed across rounds")
	}
	da := math.Abs(float64(a.Outcomes[0].Sum - b.Outcomes[0].Sum))
	if da > float64(a.Outcomes[0].Participants)/10 {
		t.Fatalf("round totals unstable: %d vs %d", a.Outcomes[0].Sum, b.Outcomes[0].Sum)
	}
}
