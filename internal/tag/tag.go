// Package tag implements the TAG baseline (Madden et al., OSDI'02) the
// paper compares against: plain in-network additive aggregation over a
// single spanning tree, with no privacy and no integrity protection.
//
// Each node sends exactly two messages per query — the tree-construction
// HELLO and one partial-aggregate message to its parent — which is the
// denominator of the paper's (2l+1)/2 overhead ratio. Readings travel in
// the clear: any neighbor of a leaf learns the leaf's value, which is the
// privacy failure iPDA exists to fix.
package tag

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// Config parameterizes a TAG instance.
type Config struct {
	// MAC carries the full channel-access configuration, scheme included:
	// setting MAC.Scheme = mac.SchemeTDMA runs the TAG baseline on the
	// same contention-free slotted schedule as the iPDA stacks, keeping
	// cross-protocol comparisons apples-to-apples under either scheme.
	MAC mac.Config
	// TreeDeadline bounds spanning-tree construction.
	TreeDeadline eventsim.Time
	// AggSlot is the per-hop transmission slot of the aggregation epoch.
	AggSlot eventsim.Time
	// Obs is the optional instrumentation sink (see core.Config.Obs).
	Obs *obs.Sink
	// QTrace is the optional causal per-query tracer (see
	// core.Config.QTrace); nil disables tracing and never changes a run.
	QTrace *qtrace.Tracer
}

// DefaultConfig returns parameters matched to the iPDA defaults so byte
// comparisons are apples-to-apples.
func DefaultConfig() Config {
	return Config{MAC: mac.DefaultConfig(), TreeDeadline: 10, AggSlot: 0.25}
}

// Instance is one deployed TAG network.
type Instance struct {
	Net    *topology.Network
	Cfg    Config
	Sim    *eventsim.Sim
	Medium *radio.Medium
	MAC    *mac.MAC
	Tree   *tree.TAGResult

	rand *rng.Stream
	// round is the cumulative lifetime round counter; only its low 16
	// bits go on the air (TAG sends plaintext partials, so unlike core
	// there is no nonce to protect — the wide counter exists for
	// epoch-qualified round identity in long-running pipelines).
	round uint64
	dead  []bool

	childSum   []int64
	childCount []uint32
	sent       []bool

	// Steady-state reuse machinery (see Reset): the TAG tree builder, the
	// contribution scratch, the shared per-round handler, and the pooled
	// partial-aggregate send events.
	builder   tree.TAGBuilder
	contribs  []int64
	handlerFn mac.Handler
	sendFree  []*sendEvent

	// Query-tracing state (see core.Instance): the round root span, the
	// per-node child aggregate spans awaiting re-parenting, and the last
	// base-station arrival (tracked unconditionally for Outcome.Latency).
	qt            *qtrace.Tracer
	roundSpan     qtrace.Ref
	pendingAgg    [][]qtrace.Ref
	lastBSArrival eventsim.Time
}

// sendEvent is a pooled deferred partial-aggregate send; fire is built
// once per event and recycles it right after the MAC copies the packet.
type sendEvent struct {
	in      *Instance
	id      topology.NodeID
	contrib int64
	round   uint16
	fire    func()
}

// Kill fails node id at runtime: from the next epoch on it neither sends
// its partial aggregate nor folds receptions, so — as in TAG's epoch
// model — its whole subtree's contribution is lost until the tree would
// be rebuilt. It satisfies fault.Target, letting churn experiments drive
// iPDA and the TAG baseline with one schedule.
func (in *Instance) Kill(id topology.NodeID) {
	if in.dead == nil {
		in.dead = make([]bool, in.Net.N())
	}
	in.dead[id] = true
}

// Revive undoes Kill.
func (in *Instance) Revive(id topology.NodeID) {
	if in.dead != nil {
		in.dead[id] = false
	}
}

func (in *Instance) isDead(id topology.NodeID) bool {
	return in.dead != nil && in.dead[id]
}

// Rounds returns the cumulative aggregation rounds run since Reset.
func (in *Instance) Rounds() uint64 { return in.round }

var _ fault.Target = (*Instance)(nil)

// New deploys a TAG instance and builds its spanning tree.
func New(net *topology.Network, cfg Config, seed uint64) (*Instance, error) {
	in := &Instance{}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset re-deploys the instance over net exactly as New(net, cfg, seed)
// would, reusing the simulator, medium, MAC tables, tree arrays, and round
// buffers grown by the previous deployment. Results obtained before the
// Reset (Tree, Run outputs) are invalidated.
func (in *Instance) Reset(net *topology.Network, cfg Config, seed uint64) error {
	if cfg.TreeDeadline <= 0 || cfg.AggSlot <= 0 {
		return fmt.Errorf("tag: deadlines must be positive")
	}
	n := net.N()
	root := rng.New(seed)
	if in.Sim == nil {
		in.Sim = eventsim.New()
		in.Medium = radio.New(in.Sim, net, radio.PaperRate)
	} else {
		in.Sim.Reset()
		in.Medium.Reset(net)
	}
	if in.MAC == nil {
		in.MAC = mac.New(in.Sim, in.Medium, n, cfg.MAC, root.Split(1))
	} else {
		in.MAC.Reset(n, cfg.MAC, root.Split(1))
	}
	if cfg.Obs != nil {
		in.Medium.SetObs(cfg.Obs)
		in.MAC.SetObs(cfg.Obs)
	}
	in.qt = cfg.QTrace
	in.Medium.SetQTrace(cfg.QTrace, energy.DefaultModel())
	in.MAC.SetQTrace(cfg.QTrace)
	in.roundSpan = qtrace.None
	buildStart := float64(in.Sim.Now())
	tr := in.builder.Build(in.Sim, in.Medium, in.MAC, net, cfg.TreeDeadline)
	if cfg.Obs != nil {
		cfg.Obs.Span(obs.TrackGlobal, "tag:tree-construction", buildStart, float64(in.Sim.Now()), 0)
	}
	in.Net = net
	in.Cfg = cfg
	in.Tree = tr
	in.rand = root.Split(2)
	in.round = 0
	if in.dead != nil {
		if len(in.dead) == n {
			clear(in.dead)
		} else {
			in.dead = nil
		}
	}
	return nil
}

// Participants returns the nodes on the spanning tree (excluding the base
// station), i.e. the nodes whose readings a query reaches.
func (in *Instance) Participants() []topology.NodeID {
	var out []topology.NodeID
	for i := 1; i < in.Net.N(); i++ {
		if in.Tree.Reached[i] {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// Outcome reports one TAG aggregation round.
type Outcome struct {
	Sum          int64
	Count        uint32 // partial-aggregate messages folded at the BS side
	Participants int
	Bytes        uint64
	Frames       uint64
	// Latency is the round's completion latency: the last partial
	// aggregate folded at the base station, measured from the epoch's
	// start (0 if nothing arrived). Tracked unconditionally.
	Latency float64
}

// Result reports one full TAG query.
type Result struct {
	Spec     aggregate.Spec
	Outcomes []Outcome
	Value    float64
	Count    uint32
}

// Run answers one aggregation query; readings[0] is ignored.
func (in *Instance) Run(spec aggregate.Spec, readings []int64) (*Result, error) {
	if len(readings) != in.Net.N() {
		return nil, fmt.Errorf("tag: %d readings for %d nodes", len(readings), in.Net.N())
	}
	valueRounds := spec.Rounds()
	total := valueRounds
	needsCount := spec.Kind == aggregate.Average || spec.Kind == aggregate.Variance
	if needsCount {
		total++
	}
	res := &Result{Spec: spec}
	sums := make([]int64, valueRounds)
	var count uint32
	countSpec := aggregate.SpecFor(aggregate.Count)
	if cap(in.contribs) < in.Net.N() {
		in.contribs = make([]int64, in.Net.N())
	}
	in.contribs = in.contribs[:in.Net.N()]
	for round := 0; round < total; round++ {
		contribs := in.contribs
		clear(contribs)
		for i := 1; i < in.Net.N(); i++ {
			var c int64
			var err error
			if round < valueRounds {
				c, err = spec.Contribution(readings[i], round)
			} else {
				c, err = countSpec.Contribution(readings[i], 0)
			}
			if err != nil {
				return nil, fmt.Errorf("tag: node %d: %w", i, err)
			}
			contribs[i] = c
		}
		out := in.runRound(contribs)
		res.Outcomes = append(res.Outcomes, out)
		if round < valueRounds {
			sums[round] = out.Sum
		} else {
			count = uint32(out.Sum)
		}
	}
	if !needsCount && len(res.Outcomes) > 0 {
		count = uint32(res.Outcomes[0].Participants)
	}
	res.Count = count
	v, err := spec.Finalize(sums, count)
	if err != nil {
		return nil, fmt.Errorf("tag: finalize: %w", err)
	}
	res.Value = v
	return res, nil
}

// RunSum is shorthand for a plain SUM query.
func (in *Instance) RunSum(readings []int64) (*Result, error) {
	return in.Run(aggregate.SpecFor(aggregate.Sum), readings)
}

// RunCount is shorthand for a COUNT query.
func (in *Instance) RunCount() (*Result, error) {
	return in.Run(aggregate.SpecFor(aggregate.Count), make([]int64, in.Net.N()))
}

// runRound executes one TAG epoch: every tree node sends (own contribution
// + children's partials) to its parent, deepest hops first.
func (in *Instance) runRound(contribs []int64) Outcome {
	n := in.Net.N()
	in.round++
	round := uint16(in.round)
	startBytes := in.Medium.TotalBytes()
	startFrames := in.Medium.Stats().FramesSent

	in.childSum = resizeCleared(in.childSum, n)
	in.childCount = resizeCleared(in.childCount, n)
	in.sent = resizeCleared(in.sent, n)
	in.lastBSArrival = in.Sim.Now()
	if in.qt != nil {
		if cap(in.pendingAgg) < n {
			in.pendingAgg = append(in.pendingAgg[:cap(in.pendingAgg)], make([][]qtrace.Ref, n-cap(in.pendingAgg))...)
		}
		in.pendingAgg = in.pendingAgg[:n]
		for i := range in.pendingAgg {
			in.pendingAgg[i] = in.pendingAgg[i][:0]
		}
	}

	// One dispatch closure serves every node and every round: in.round is
	// constant while a round's events drain, so filtering on it matches the
	// former per-round captured-round closures exactly.
	if in.handlerFn == nil {
		in.handlerFn = func(self topology.NodeID, p *packet.Packet) {
			if p.Kind != packet.KindAggregate || p.Round != uint16(in.round) || in.isDead(self) {
				return
			}
			in.childSum[self] += p.Value
			in.childCount[self] += p.Count
			if self == 0 {
				in.lastBSArrival = in.Sim.Now()
			}
			if in.qt != nil {
				in.qt.Instant(uint32(p.Round), qtrace.Ref(p.TraceSpan), int32(self), "aggregate:rx", float64(in.Sim.Now()))
				if int(self) < len(in.pendingAgg) {
					in.pendingAgg[self] = append(in.pendingAgg[self], qtrace.Ref(p.TraceSpan))
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		in.MAC.SetHandler(topology.NodeID(i), in.handlerFn)
	}

	maxHop := uint16(0)
	participants := 0
	for i := 1; i < n; i++ {
		if in.Tree.Reached[i] && !in.isDead(topology.NodeID(i)) {
			participants++
		}
		if in.Tree.Reached[i] && in.Tree.Hop[i] > maxHop {
			maxHop = in.Tree.Hop[i]
		}
	}
	t0 := in.Sim.Now()
	in.roundSpan = qtrace.None
	if in.qt != nil {
		in.roundSpan = in.qt.Start(uint32(round), qtrace.None, -1, "round", float64(t0))
	}
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if !in.Tree.Reached[id] || in.isDead(id) {
			continue
		}
		slot := eventsim.Time(maxHop-in.Tree.Hop[id]) * in.Cfg.AggSlot
		jitter := eventsim.Time(in.rand.Float64()) * in.Cfg.AggSlot / 2
		ev := in.getSendEvent()
		ev.id, ev.contrib, ev.round = id, contribs[i], round
		in.Sim.At(t0+slot+jitter, ev.fire)
	}
	deadline := t0 + eventsim.Time(maxHop+2)*in.Cfg.AggSlot + 1.0
	if in.Cfg.Obs != nil {
		in.Cfg.Obs.Span(obs.TrackGlobal, "tag:epoch", float64(t0), float64(deadline), uint32(round))
	}
	if in.qt != nil {
		in.qt.End(in.roundSpan, float64(deadline))
	}
	in.Sim.Run(deadline)

	return Outcome{
		Sum:          in.childSum[0],
		Count:        in.childCount[0],
		Participants: participants,
		Bytes:        in.Medium.TotalBytes() - startBytes,
		Frames:       in.Medium.Stats().FramesSent - startFrames,
		Latency:      float64(in.lastBSArrival - t0),
	}
}

// getSendEvent pops a pooled partial-aggregate send event (building its
// fire closure on first use); fireSend returns it to the pool.
func (in *Instance) getSendEvent() *sendEvent {
	if k := len(in.sendFree); k > 0 {
		ev := in.sendFree[k-1]
		in.sendFree = in.sendFree[:k-1]
		return ev
	}
	ev := &sendEvent{in: in}
	ev.fire = func() { ev.in.fireSend(ev) }
	return ev
}

func (in *Instance) fireSend(ev *sendEvent) {
	id := ev.id
	pkt := packet.Packet{
		Header: packet.Header{Kind: packet.KindAggregate, Src: int32(id), Dst: int32(in.Tree.Parent[id]), Round: ev.round},
		Value:  ev.contrib + in.childSum[id],
		Count:  in.childCount[id] + 1,
	}
	if in.qt != nil {
		agg := in.qt.Start(uint32(ev.round), in.roundSpan, int32(id), "aggregate:tag", float64(in.Sim.Now()))
		in.qt.SetPeer(agg, int32(in.Tree.Parent[id]))
		if int(id) < len(in.pendingAgg) {
			for _, child := range in.pendingAgg[id] {
				in.qt.SetParent(child, agg)
			}
			in.pendingAgg[id] = in.pendingAgg[id][:0]
		}
		pkt.TraceQ = ev.round
		pkt.TraceSpan = uint32(agg)
	}
	in.MAC.Send(id, &pkt)
	in.sendFree = append(in.sendFree, ev)
}

// resizeCleared returns s resized to n elements, all zero, reusing its
// backing array when it suffices.
func resizeCleared[E int64 | uint32 | bool](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	s = s[:n]
	clear(s)
	return s
}
