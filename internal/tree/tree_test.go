package tree

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// build runs Phase I over a fresh random deployment.
func build(t *testing.T, nodes int, seed uint64, cfg Config) (*Result, *topology.Network) {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Random(topology.PaperConfig(nodes), r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	m := mac.New(sim, medium, net.N(), mac.DefaultConfig(), r.Split(1))
	res, err := BuildDisjoint(sim, medium, m, net, cfg, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	return res, net
}

func TestDisjointInvariant(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res, _ := build(t, 400, seed, DefaultConfig())
		if err := res.Disjoint(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBaseStationRole(t *testing.T) {
	res, _ := build(t, 300, 1, DefaultConfig())
	if res.Role[0] != RoleBase {
		t.Fatalf("base station role = %v", res.Role[0])
	}
	if res.Parent[0] != topology.None {
		t.Fatal("base station has a parent")
	}
}

func TestParentsAreHeardAggregators(t *testing.T) {
	res, net := build(t, 400, 5, DefaultConfig())
	for i, role := range res.Role {
		if role != RoleRed && role != RoleBlue {
			continue
		}
		p := res.Parent[i]
		if !net.InRange(topology.NodeID(i), p) {
			t.Fatalf("aggregator %d parent %d out of range", i, p)
		}
		// Parent must be among the heard aggregators of the same color (or
		// the base station heard on that color).
		var heard []topology.NodeID
		if role == RoleRed {
			heard = res.RedNeighbors[i]
		} else {
			heard = res.BlueNeighbors[i]
		}
		found := false
		for _, h := range heard {
			if h == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("aggregator %d parent %d not among heard %v aggregators", i, p, role)
		}
	}
}

func TestParentChainsReachBaseStation(t *testing.T) {
	res, _ := build(t, 400, 7, DefaultConfig())
	for i, role := range res.Role {
		if role != RoleRed && role != RoleBlue {
			continue
		}
		// Walk up; must terminate at node 0 without cycles.
		seen := map[topology.NodeID]bool{}
		cur := topology.NodeID(i)
		for cur != 0 {
			if seen[cur] {
				t.Fatalf("cycle at node %d walking up from %d", cur, i)
			}
			seen[cur] = true
			cur = res.Parent[cur]
			if cur == topology.None {
				t.Fatalf("chain from %d fell off the tree", i)
			}
		}
	}
}

func TestHopsIncreaseAlongTree(t *testing.T) {
	res, _ := build(t, 400, 9, DefaultConfig())
	for i, role := range res.Role {
		if role != RoleRed && role != RoleBlue {
			continue
		}
		p := res.Parent[i]
		if p == 0 {
			continue // base station hop is 0 by definition
		}
		if res.Hop[i] <= res.Hop[p] {
			t.Fatalf("hop not increasing: node %d hop %d, parent %d hop %d", i, res.Hop[i], p, res.Hop[p])
		}
	}
}

func TestDenseNetworkCoverage(t *testing.T) {
	// At N=500 (avg degree ~22) the paper expects nearly-full coverage; we
	// require 90%+ of nodes covered by both trees.
	res, net := build(t, 500, 11, DefaultConfig())
	covered := 0
	for i := 1; i < net.N(); i++ {
		if res.CoveredBoth(topology.NodeID(i)) {
			covered++
		}
	}
	if frac := float64(covered) / float64(net.N()-1); frac < 0.9 {
		t.Fatalf("coverage %.2f at N=500", frac)
	}
}

func TestSparseNetworkLowerCoverage(t *testing.T) {
	resSparse, netS := build(t, 150, 13, DefaultConfig())
	resDense, netD := build(t, 600, 13, DefaultConfig())
	frac := func(r *Result, n *topology.Network) float64 {
		c := 0
		for i := 1; i < n.N(); i++ {
			if r.CoveredBoth(topology.NodeID(i)) {
				c++
			}
		}
		return float64(c) / float64(n.N()-1)
	}
	fs, fd := frac(resSparse, netS), frac(resDense, netD)
	if fs >= fd {
		t.Fatalf("sparse coverage %.2f not below dense %.2f", fs, fd)
	}
}

func TestAdaptiveLimitsAggregatorFraction(t *testing.T) {
	// With k=4 and average degree ~22 (N=500), the adaptive rule should
	// make only a fraction of nodes aggregators, while the fixed rule
	// makes essentially all covered nodes aggregators.
	adaptive, netA := build(t, 500, 17, DefaultConfig())
	fixed, _ := build(t, 500, 17, Config{Adaptive: false, DecisionDelay: 0.05, Deadline: 10})
	countAgg := func(r *Result) int {
		return len(r.Aggregators(RoleRed)) + len(r.Aggregators(RoleBlue))
	}
	na, nf := countAgg(adaptive), countAgg(fixed)
	if na >= nf {
		t.Fatalf("adaptive aggregators %d not below fixed %d", na, nf)
	}
	if float64(na)/float64(netA.N()) > 0.7 {
		t.Fatalf("adaptive made %d/%d nodes aggregators", na, netA.N())
	}
}

func TestRedBlueBalanced(t *testing.T) {
	res, _ := build(t, 500, 19, DefaultConfig())
	nr, nb := len(res.Aggregators(RoleRed)), len(res.Aggregators(RoleBlue))
	if nr == 0 || nb == 0 {
		t.Fatalf("degenerate trees: %d red, %d blue", nr, nb)
	}
	ratio := float64(nr) / float64(nb)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("red/blue imbalance: %d vs %d", nr, nb)
	}
}

func TestCanSliceImpliesCovered(t *testing.T) {
	res, net := build(t, 400, 23, DefaultConfig())
	for i := 0; i < net.N(); i++ {
		id := topology.NodeID(i)
		if res.CanSlice(id, 2) && !res.CoveredBoth(id) {
			t.Fatalf("node %d can slice but is not covered", i)
		}
		if res.CoveredBoth(id) && !res.CanSlice(id, 1) {
			t.Fatalf("node %d covered but cannot slice l=1", i)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, _ := build(t, 300, 29, DefaultConfig())
	b, _ := build(t, 300, 29, DefaultConfig())
	for i := range a.Role {
		if a.Role[i] != b.Role[i] || a.Parent[i] != b.Parent[i] {
			t.Fatalf("run diverged at node %d", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 1, Adaptive: true, DecisionDelay: 1, Deadline: 1},
		{K: 4, Adaptive: true, DecisionDelay: 0, Deadline: 1},
		{K: 4, Adaptive: true, DecisionDelay: 1, Deadline: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoleStringsAndColors(t *testing.T) {
	if RoleRed.Color() != packet.Red || RoleBlue.Color() != packet.Blue || RoleLeaf.Color() != packet.NoColor {
		t.Fatal("Role.Color wrong")
	}
	for r, want := range map[Role]string{RoleUndecided: "undecided", RoleLeaf: "leaf", RoleRed: "red", RoleBlue: "blue", RoleBase: "base"} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
}

func TestBuildTAGSpansNetwork(t *testing.T) {
	r := rng.New(31)
	net, err := topology.Random(topology.PaperConfig(400), r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	m := mac.New(sim, medium, net.N(), mac.DefaultConfig(), r.Split(1))
	res := BuildTAG(sim, medium, m, net, 10)
	reached := 0
	for i := 0; i < net.N(); i++ {
		if res.Reached[i] {
			reached++
		}
	}
	// Dense network: nearly everyone joins the TAG tree.
	if float64(reached)/float64(net.N()) < 0.95 {
		t.Fatalf("TAG reached only %d/%d", reached, net.N())
	}
	// Parent pointers form a tree rooted at 0.
	for i := 1; i < net.N(); i++ {
		if !res.Reached[i] {
			continue
		}
		seen := map[topology.NodeID]bool{}
		cur := topology.NodeID(i)
		for cur != 0 {
			if seen[cur] || cur == topology.None {
				t.Fatalf("broken TAG chain from %d", i)
			}
			seen[cur] = true
			cur = res.Parent[cur]
		}
	}
}

func TestDisabledNodesStaySilent(t *testing.T) {
	r := rng.New(41)
	net, err := topology.Random(topology.PaperConfig(400), r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Disabled = make([]bool, net.N())
	for i := 1; i <= 120; i++ {
		cfg.Disabled[i] = true
	}
	sim := eventsim.New()
	medium := radio.New(sim, net, radio.PaperRate)
	m := mac.New(sim, medium, net.N(), mac.DefaultConfig(), r.Split(1))
	res, err := BuildDisjoint(sim, medium, m, net, cfg, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 120; i++ {
		if res.Role[i] != RoleUndecided {
			t.Fatalf("disabled node %d took role %v", i, res.Role[i])
		}
		if medium.NodeFramesSent(topology.NodeID(i)) != 0 {
			t.Fatalf("disabled node %d transmitted", i)
		}
	}
	// The rest of the network still forms disjoint trees.
	if err := res.Disjoint(); err != nil {
		t.Fatal(err)
	}
	live := 0
	for i := 121; i < net.N(); i++ {
		if res.CoveredBoth(topology.NodeID(i)) {
			live++
		}
	}
	if live == 0 {
		t.Fatal("no live node covered despite 279 live nodes")
	}
}

func TestPhaseAccountsTraffic(t *testing.T) {
	res, _ := build(t, 300, 37, DefaultConfig())
	if res.HelloBytes == 0 || res.HelloFrames == 0 {
		t.Fatal("no HELLO traffic recorded")
	}
	if res.HelloBytes < res.HelloFrames {
		t.Fatal("bytes < frames")
	}
}
