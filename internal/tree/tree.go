// Package tree implements Phase I of iPDA — disjoint aggregation tree
// construction (Section III-B of the paper) — and the TAG spanning-tree
// construction used by the baseline.
//
// The base station floods HELLO messages as both a red and a blue
// aggregator. A node that has heard HELLOs from aggregators of both colors
// waits a short decision window, estimates the red/blue balance in its
// neighborhood from the HELLOs it received, and then chooses a role: red
// aggregator, blue aggregator, or leaf. Aggregators join the tree of their
// color (parent = the lowest-hop heard aggregator of that color) and
// forward the HELLO; leaves stay silent. Nodes that never hear both colors
// cannot participate in aggregation — the coverage loss factor (a) of
// Section IV-B.3.
//
// Role probabilities follow the paper's adaptive rule (Equation 1):
//
//	p  = min(1, k/(Nred+Nblue))   — the aggregator budget, k ≈ 4
//	pr = p · Nblue/(Nred+Nblue)   — bias toward the under-represented color
//	pb = p · Nred/(Nred+Nblue)
//
// or the simplified fixed rule pr = pb = 0.5 (Equation 2).
package tree

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Role is a node's Phase I outcome.
type Role uint8

const (
	// RoleUndecided marks nodes that never heard both tree colors; they do
	// not participate in aggregation.
	RoleUndecided Role = iota
	// RoleLeaf nodes report data but never aggregate or forward.
	RoleLeaf
	// RoleRed nodes aggregate on the red tree.
	RoleRed
	// RoleBlue nodes aggregate on the blue tree.
	RoleBlue
	// RoleBase is the base station, root of both trees.
	RoleBase
)

func (r Role) String() string {
	switch r {
	case RoleUndecided:
		return "undecided"
	case RoleLeaf:
		return "leaf"
	case RoleRed:
		return "red"
	case RoleBlue:
		return "blue"
	case RoleBase:
		return "base"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Color returns the tree color of an aggregator role, or packet.NoColor.
func (r Role) Color() packet.Color {
	switch r {
	case RoleRed:
		return packet.Red
	case RoleBlue:
		return packet.Blue
	default:
		return packet.NoColor
	}
}

// Config are Phase I parameters.
type Config struct {
	// K is the aggregator budget parameter k of Section III-B (paper
	// recommends 4). Must be >= 2 when Adaptive.
	K int
	// Adaptive selects Equation (1) when true, Equation (2) (pr=pb=0.5)
	// when false.
	Adaptive bool
	// DecisionDelay is how long a node waits after hearing both colors
	// before fixing its role, to collect more HELLOs.
	DecisionDelay eventsim.Time
	// Deadline bounds the whole phase in simulated seconds.
	Deadline eventsim.Time
	// Disabled marks nodes excluded from the protocol entirely: they stay
	// silent and undecided. Used for failure injection and for the
	// O(log N) DoS-attacker localization of Section III-D. May be nil.
	Disabled []bool
	// ExtraRoots lists additional base stations beyond node 0 (Section
	// II-A: "iPDA is readily extensible to multiple base station cases").
	// Every root floods both colors at hop 0 and collects aggregation
	// results; nodes attach to whichever root's flood reaches them first.
	ExtraRoots []topology.NodeID
	// Obs is the optional instrumentation sink: role counters, a
	// tree-construction span with nested red/blue flood spans, and
	// per-node role-decision instants. Nil disables instrumentation;
	// observing never alters the constructed trees.
	Obs *obs.Sink
}

// DefaultConfig returns the paper's parameters: adaptive roles with k = 4.
func DefaultConfig() Config {
	return Config{K: 4, Adaptive: true, DecisionDelay: 0.05, Deadline: 10}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Adaptive && c.K < 2 {
		return fmt.Errorf("tree: adaptive config requires K >= 2, got %d", c.K)
	}
	if c.DecisionDelay <= 0 || c.Deadline <= 0 {
		return fmt.Errorf("tree: delays must be positive")
	}
	return nil
}

// Result is the outcome of Phase I.
type Result struct {
	// Role per node; node 0 is RoleBase.
	Role []Role
	// Parent per node: the aggregation-tree parent of each aggregator,
	// topology.None for the base station, leaves and undecided nodes.
	Parent []topology.NodeID
	// Hop per node: tree depth of each aggregator (0 for the base
	// station); 0 for non-aggregators.
	Hop []uint16
	// RedNeighbors and BlueNeighbors are, per node, the aggregators of
	// each color it actually heard a HELLO from — the candidate slice
	// targets of Phase II. The base station appears in both lists of its
	// neighbors.
	RedNeighbors  [][]topology.NodeID
	BlueNeighbors [][]topology.NodeID
	// HelloBytes is the total radio traffic of the phase.
	HelloBytes uint64
	// HelloFrames is the number of HELLO frames transmitted.
	HelloFrames uint64
}

// Aggregators returns the IDs of the aggregators with the given role.
func (r *Result) Aggregators(role Role) []topology.NodeID {
	var out []topology.NodeID
	for i, ro := range r.Role {
		if ro == role {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// CoveredBoth reports whether node id heard HELLOs from both trees — the
// participation precondition of the protocol (factor (a) of Sec. IV-B.3).
// An aggregator counts itself for its own color.
func (r *Result) CoveredBoth(id topology.NodeID) bool {
	red := len(r.RedNeighbors[id])
	blue := len(r.BlueNeighbors[id])
	switch r.Role[id] {
	case RoleRed:
		red++
	case RoleBlue:
		blue++
	case RoleBase:
		return true
	}
	return red > 0 && blue > 0
}

// CanSlice reports whether node id has enough aggregator neighbors to send
// l slices per tree (factor (b) of Sec. IV-B.3): l red and l blue targets,
// counting itself for its own color.
func (r *Result) CanSlice(id topology.NodeID, l int) bool {
	red := len(r.RedNeighbors[id])
	blue := len(r.BlueNeighbors[id])
	switch r.Role[id] {
	case RoleRed:
		red++
	case RoleBlue:
		blue++
	case RoleBase:
		return true
	}
	return red >= l && blue >= l
}

// Disjoint verifies the node-disjointness invariant: no node is an
// aggregator on both trees. With a single Role per node the invariant holds
// by construction; Disjoint re-checks the parent structure: every red
// aggregator's parent is red (or the base station), and likewise for blue.
func (r *Result) Disjoint() error {
	for i, role := range r.Role {
		p := r.Parent[i]
		if role != RoleRed && role != RoleBlue {
			if p != topology.None {
				return fmt.Errorf("tree: non-aggregator %d has parent %d", i, p)
			}
			continue
		}
		if p == topology.None {
			return fmt.Errorf("tree: aggregator %d has no parent", i)
		}
		pr := r.Role[p]
		if pr != role && pr != RoleBase {
			return fmt.Errorf("tree: %v aggregator %d has %v parent %d", role, i, pr, p)
		}
	}
	return nil
}

// RepairOutcome summarizes one RepairDead pass.
type RepairOutcome struct {
	// Reattached counts parent re-assignments applied.
	Reattached int
	// Skipped lists live aggregators left with no usable parent; they must
	// sit the round out (and are unavailable to their own children).
	Skipped []topology.NodeID
}

// RepairDead performs localized tree repair: every live aggregator whose
// parent is down is re-attached to an alternate live aggregator of its own
// color (or a base station) that it heard a HELLO from during Phase I and
// that sits strictly closer to the base. Choosing only strictly-shallower
// parents keeps the parent chains acyclic and preserves the Phase III
// deepest-first transmission order without recomputing hops; choosing only
// same-color parents preserves node-disjointness, which is re-verified
// before returning. Aggregators with no such candidate are reported in
// Skipped and treated as unavailable themselves, so their children repair
// around them too (the pass iterates to a fixpoint).
//
// Parents are modified in place; callers that repair per round should
// restore the pristine Phase I parents before the next pass.
func (r *Result) RepairDead(down func(topology.NodeID) bool) (RepairOutcome, error) {
	var out RepairOutcome
	n := len(r.Role)
	avail := make([]bool, n)
	for i := range avail {
		avail[i] = !down(topology.NodeID(i))
	}
	for {
		changed := false
		for i := 0; i < n; i++ {
			id := topology.NodeID(i)
			role := r.Role[i]
			if (role != RoleRed && role != RoleBlue) || !avail[i] {
				continue
			}
			p := r.Parent[i]
			if p != topology.None && avail[p] {
				continue
			}
			cands := r.RedNeighbors[i]
			if role == RoleBlue {
				cands = r.BlueNeighbors[i]
			}
			best := topology.None
			for _, c := range cands {
				if !avail[c] {
					continue
				}
				if cr := r.Role[c]; cr != role && cr != RoleBase {
					continue
				}
				if r.Hop[c] >= r.Hop[i] {
					continue
				}
				if best == topology.None || r.Hop[c] < r.Hop[best] ||
					(r.Hop[c] == r.Hop[best] && c < best) {
					best = c
				}
			}
			if best == topology.None {
				avail[i] = false
				out.Skipped = append(out.Skipped, id)
			} else {
				r.Parent[i] = best
				out.Reattached++
			}
			changed = true
		}
		if !changed {
			break
		}
	}
	if err := r.Disjoint(); err != nil {
		return out, fmt.Errorf("tree: repair violated disjointness: %w", err)
	}
	return out, nil
}

// nodeState is the per-node Phase I state machine.
type nodeState struct {
	role                  Role
	parent                topology.NodeID
	hop                   uint16
	redFrom               []topology.NodeID // senders of red HELLOs heard
	blueFrom              []topology.NodeID
	redMinHop, blueMinHop uint16
	redParent, blueParent topology.NodeID
	decisionArmed         bool
	decided               bool
}

// Builder runs Phase I repeatedly, reusing the per-node state machines,
// the neighbor-list backing arrays, the Result, and the per-node decision
// closures across builds. A Build on a used Builder is byte-identical to
// one on a fresh Builder — state is fully reinitialized, only capacity
// survives — but it invalidates the Result of the previous Build (the
// neighbor lists share backing storage). One Builder serves one protocol
// instance; it is not safe for concurrent use.
type Builder struct {
	states    []nodeState
	res       Result
	decideFns []func()
	handlerFn mac.Handler
	kickoffFn func()

	// Per-build context, set by Build and read by the event callbacks.
	sim               *eventsim.Sim
	m                 *mac.MAC
	cfg               Config
	roleRand          *rng.Stream
	lastRed, lastBlue float64
	roleCount         [RoleBase + 1]obs.Counter
}

// BuildDisjoint runs Phase I over the given network and returns the
// constructed trees. It drives sim until cfg.Deadline; the medium's
// receivers are owned by this function for the duration of the call.
func BuildDisjoint(sim *eventsim.Sim, medium *radio.Medium, m *mac.MAC, net *topology.Network, cfg Config, rand *rng.Stream) (*Result, error) {
	return new(Builder).Build(sim, medium, m, net, cfg, rand)
}

// Build is BuildDisjoint over the Builder's reusable storage.
func (b *Builder) Build(sim *eventsim.Sim, medium *radio.Medium, m *mac.MAC, net *topology.Network, cfg Config, rand *rng.Stream) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if cap(b.states) < n {
		b.states = append(b.states[:cap(b.states)], make([]nodeState, n-cap(b.states))...)
	}
	b.states = b.states[:n]
	for i := range b.states {
		st := &b.states[i]
		st.role = RoleUndecided
		st.parent = topology.None
		st.hop = 0
		st.redFrom = st.redFrom[:0]
		st.blueFrom = st.blueFrom[:0]
		st.redMinHop, st.blueMinHop = 0, 0
		st.redParent, st.blueParent = topology.None, topology.None
		st.decisionArmed = false
		st.decided = false
	}
	b.states[0].role = RoleBase
	b.states[0].decided = true
	for _, r := range cfg.ExtraRoots {
		if r <= 0 || int(r) >= n {
			return nil, fmt.Errorf("tree: extra root %d out of range", r)
		}
		b.states[r].role = RoleBase
		b.states[r].decided = true
	}

	startBytes := medium.TotalBytes()
	startFrames := medium.Stats().FramesSent
	b.sim = sim
	b.m = m
	b.cfg = cfg
	b.roleRand = rand.Split(1)

	phaseStart := float64(sim.Now())
	b.lastRed, b.lastBlue = phaseStart, phaseStart
	b.roleCount = [RoleBase + 1]obs.Counter{}
	if cfg.Obs != nil && cfg.Obs.Reg != nil {
		for _, role := range []Role{RoleUndecided, RoleLeaf, RoleRed, RoleBlue} {
			b.roleCount[role] = cfg.Obs.Reg.Counter("ipda_tree_roles_total",
				"Phase I role decisions", obs.Label{Name: "role", Value: role.String()})
		}
	}

	if cap(b.decideFns) < n {
		b.decideFns = append(b.decideFns[:cap(b.decideFns)], make([]func(), n-cap(b.decideFns))...)
	}
	b.decideFns = b.decideFns[:n]
	for i := range b.decideFns {
		if b.decideFns[i] == nil {
			id := topology.NodeID(i)
			b.decideFns[i] = func() { b.decide(id) }
		}
	}
	if b.handlerFn == nil {
		b.handlerFn = func(self topology.NodeID, p *packet.Packet) {
			if p.Kind == packet.KindHello {
				b.onHello(self, p)
			}
		}
		b.kickoffFn = func() { b.kickoff() }
	}
	for i := 0; i < n; i++ {
		m.SetHandler(topology.NodeID(i), b.handlerFn)
	}

	sim.After(0, b.kickoffFn)
	sim.Run(sim.Now() + cfg.Deadline)

	if cfg.Obs != nil {
		end := b.lastRed
		if b.lastBlue > end {
			end = b.lastBlue
		}
		cfg.Obs.Span(obs.TrackGlobal, "phase1:tree-construction", phaseStart, end, 0)
		cfg.Obs.Span(obs.TrackGlobal, "phase1:red-flood", phaseStart, b.lastRed, 0)
		cfg.Obs.Span(obs.TrackGlobal, "phase1:blue-flood", phaseStart, b.lastBlue, 0)
	}

	res := &b.res
	res.Role = resizeRoles(res.Role, n)
	res.Parent = resizeIDs(res.Parent, n)
	res.Hop = resizeHops(res.Hop, n)
	res.RedNeighbors = resizeNbrs(res.RedNeighbors, n)
	res.BlueNeighbors = resizeNbrs(res.BlueNeighbors, n)
	res.HelloBytes = medium.TotalBytes() - startBytes
	res.HelloFrames = medium.Stats().FramesSent - startFrames
	for i := range b.states {
		st := &b.states[i]
		res.Role[i] = st.role
		res.Parent[i] = st.parent
		res.Hop[i] = st.hop
		res.RedNeighbors[i] = st.redFrom
		res.BlueNeighbors[i] = st.blueFrom
	}
	// Drop non-aggregator parents (leaves decided no parent already).
	for i := range res.Parent {
		if res.Role[i] != RoleRed && res.Role[i] != RoleBlue {
			res.Parent[i] = topology.None
			res.Hop[i] = 0
		}
	}
	return res, nil
}

// kickoff starts the flood: every base station initiates as both a red and
// a blue aggregator at hop 0.
func (b *Builder) kickoff() {
	b.sendHello(0, packet.Red, 0)
	b.sendHello(0, packet.Blue, 0)
	for _, r := range b.cfg.ExtraRoots {
		b.sendHello(r, packet.Red, 0)
		b.sendHello(r, packet.Blue, 0)
	}
}

func (b *Builder) sendHello(src topology.NodeID, color packet.Color, hop uint16) {
	b.m.Send(src, &packet.Packet{
		Header: packet.Header{Kind: packet.KindHello, Src: int32(src), Dst: packet.Broadcast},
		Color:  color,
		Hop:    hop,
	})
	if b.cfg.Obs != nil {
		switch color {
		case packet.Red:
			b.lastRed = float64(b.sim.Now())
		case packet.Blue:
			b.lastBlue = float64(b.sim.Now())
		}
	}
}

func (b *Builder) decide(id topology.NodeID) {
	st := &b.states[id]
	if st.decided {
		return
	}
	st.decided = true
	nRed, nBlue := len(st.redFrom), len(st.blueFrom)
	if nRed == 0 || nBlue == 0 {
		// Should not happen (decision is armed only after both colors)
		// but lost frames cannot rescind; stay undecided.
		st.decided = false
		st.decisionArmed = false
		return
	}
	cfg := &b.cfg
	var p, pr float64
	if cfg.Adaptive {
		p = 1
		if nRed+nBlue > cfg.K {
			p = float64(cfg.K) / float64(nRed+nBlue)
		}
		pr = p * float64(nBlue) / float64(nRed+nBlue)
	} else {
		p = 1
		pr = 0.5
	}
	u := b.roleRand.Float64()
	switch {
	case u < pr:
		st.role = RoleRed
		st.parent = st.redParent
		st.hop = st.redMinHop + 1
		b.sendHello(id, packet.Red, st.hop)
	case u < p:
		st.role = RoleBlue
		st.parent = st.blueParent
		st.hop = st.blueMinHop + 1
		b.sendHello(id, packet.Blue, st.hop)
	default:
		st.role = RoleLeaf
	}
	if cfg.Obs != nil {
		b.roleCount[st.role].Inc()
		switch st.role {
		case RoleRed:
			cfg.Obs.Instant(int32(id), "role:red", float64(b.sim.Now()), 0)
		case RoleBlue:
			cfg.Obs.Instant(int32(id), "role:blue", float64(b.sim.Now()), 0)
		case RoleLeaf:
			cfg.Obs.Instant(int32(id), "role:leaf", float64(b.sim.Now()), 0)
		}
	}
}

func (b *Builder) onHello(self topology.NodeID, p *packet.Packet) {
	if len(b.cfg.Disabled) > int(self) && b.cfg.Disabled[self] {
		return
	}
	st := &b.states[self]
	src := topology.NodeID(p.Src)
	switch p.Color {
	case packet.Red:
		if !contains(st.redFrom, src) {
			st.redFrom = append(st.redFrom, src)
			if st.redParent == topology.None || p.Hop < st.redMinHop {
				st.redParent, st.redMinHop = src, p.Hop
			}
		}
	case packet.Blue:
		if !contains(st.blueFrom, src) {
			st.blueFrom = append(st.blueFrom, src)
			if st.blueParent == topology.None || p.Hop < st.blueMinHop {
				st.blueParent, st.blueMinHop = src, p.Hop
			}
		}
	default:
		return
	}
	if st.role == RoleBase || st.decided {
		return
	}
	if !st.decisionArmed && len(st.redFrom) > 0 && len(st.blueFrom) > 0 {
		st.decisionArmed = true
		b.sim.After(b.cfg.DecisionDelay, b.decideFns[self])
	}
}

func resizeRoles(s []Role, n int) []Role {
	if cap(s) < n {
		return make([]Role, n)
	}
	return s[:n]
}

func resizeIDs(s []topology.NodeID, n int) []topology.NodeID {
	if cap(s) < n {
		return make([]topology.NodeID, n)
	}
	return s[:n]
}

func resizeHops(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	return s[:n]
}

func resizeNbrs(s [][]topology.NodeID, n int) [][]topology.NodeID {
	if cap(s) < n {
		return make([][]topology.NodeID, n)
	}
	return s[:n]
}

func contains(xs []topology.NodeID, x topology.NodeID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TAGResult is the outcome of TAG spanning-tree construction: a single
// aggregation tree over all reachable nodes.
type TAGResult struct {
	Parent      []topology.NodeID // topology.None for the root and unreached nodes
	Hop         []uint16
	Reached     []bool
	HelloBytes  uint64
	HelloFrames uint64
}

// TAGBuilder runs TAG tree construction repeatedly, reusing the TAGResult
// arrays and the flood closures across builds. Like Builder, a Build on a
// used TAGBuilder matches a fresh one exactly but invalidates the previous
// Build's TAGResult. Not safe for concurrent use.
type TAGBuilder struct {
	res       TAGResult
	handlerFn mac.Handler
	kickoffFn func()
	m         *mac.MAC
}

// BuildTAG floods a single-tree HELLO from the base station (node 0): each
// node adopts the first heard sender as parent and rebroadcasts once. This
// is the tree TAG aggregates over.
func BuildTAG(sim *eventsim.Sim, medium *radio.Medium, m *mac.MAC, net *topology.Network, deadline eventsim.Time) *TAGResult {
	return new(TAGBuilder).Build(sim, medium, m, net, deadline)
}

// Build is BuildTAG over the TAGBuilder's reusable storage.
func (tb *TAGBuilder) Build(sim *eventsim.Sim, medium *radio.Medium, m *mac.MAC, net *topology.Network, deadline eventsim.Time) *TAGResult {
	n := net.N()
	res := &tb.res
	res.Parent = resizeIDs(res.Parent, n)
	res.Hop = resizeHops(res.Hop, n)
	if cap(res.Reached) < n {
		res.Reached = make([]bool, n)
	}
	res.Reached = res.Reached[:n]
	for i := range res.Parent {
		res.Parent[i] = topology.None
		res.Hop[i] = 0
		res.Reached[i] = false
	}
	res.Reached[0] = true
	startBytes := medium.TotalBytes()
	startFrames := medium.Stats().FramesSent

	tb.m = m
	if tb.handlerFn == nil {
		tb.handlerFn = func(self topology.NodeID, p *packet.Packet) {
			r := &tb.res
			if p.Kind != packet.KindHello || r.Reached[self] {
				return
			}
			r.Reached[self] = true
			r.Parent[self] = topology.NodeID(p.Src)
			r.Hop[self] = p.Hop + 1
			tb.sendHello(self, r.Hop[self])
		}
		tb.kickoffFn = func() { tb.sendHello(0, 0) }
	}
	for i := 0; i < n; i++ {
		m.SetHandler(topology.NodeID(i), tb.handlerFn)
	}
	sim.After(0, tb.kickoffFn)
	sim.Run(sim.Now() + deadline)
	res.HelloBytes = medium.TotalBytes() - startBytes
	res.HelloFrames = medium.Stats().FramesSent - startFrames
	return res
}

func (tb *TAGBuilder) sendHello(src topology.NodeID, hop uint16) {
	tb.m.Send(src, &packet.Packet{
		Header: packet.Header{Kind: packet.KindHello, Src: int32(src), Dst: packet.Broadcast},
		Hop:    hop,
	})
}
