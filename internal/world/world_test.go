package world

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// trialCycle is one steady-state pooled trial: deploy through the arena,
// reset the slot's core instance, run a COUNT round. It is the loop a
// sweep worker runs per trial.
func trialCycle(t *testing.T, a *Arena, cfg core.Config, seed uint64) int64 {
	t.Helper()
	r := rng.New(seed)
	net, err := a.Deploy(topology.PaperConfig(200), r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	in, err := a.Core("slot", net, cfg, r.Split(2).Uint64())
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	return int64(res.Value)
}

// TestArenaCoreReuseMatchesFreshAndReusesInstance pins the reuse contract
// at the world layer: re-requesting a slot hands back the same Instance
// (so its cipher cache, MAC tables, and buffers persist), and the pooled
// run's result equals a from-scratch build at every seed.
func TestArenaCoreReuseMatchesFreshAndReusesInstance(t *testing.T) {
	a := New()
	cfg := core.DefaultConfig()
	r := rng.New(3)
	net, err := a.Deploy(topology.PaperConfig(200), r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Core("slot", net, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	again, err := a.Core("slot", net, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("arena built a new core.Instance instead of resetting the slot's")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		pooled := trialCycle(t, a, cfg, seed)
		fresh := trialCycle(t, nil, cfg, seed) // nil arena = plain construction
		if pooled != fresh {
			t.Fatalf("seed %d: pooled COUNT = %d, fresh = %d", seed, pooled, fresh)
		}
	}
}

// TestArenaCoreReuseAllocation pins what trial-lifetime reuse buys after
// the AES datapath change: a steady-state pooled trial — deployment,
// instance reset (which retains the expanded AES key schedules through
// the cipher cache's generation bump), and a COUNT round — must allocate
// a small fraction of what the same trial costs built fresh. Both suites
// are pinned so a regression in either rekey path shows up.
func TestArenaCoreReuseAllocation(t *testing.T) {
	for _, suite := range []linksec.Suite{linksec.SuiteAESCTR, linksec.SuiteSHA256} {
		suite := suite
		t.Run(suite.String(), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Suite = suite
			a := New()
			// Warm the arena past its growth phase: the pools size to the
			// largest deployment they have seen.
			for seed := uint64(1); seed <= 3; seed++ {
				trialCycle(t, a, cfg, seed)
			}
			seed := uint64(0)
			pooled := testing.AllocsPerRun(3, func() {
				seed++
				trialCycle(t, a, cfg, seed)
			})
			seed = 0
			fresh := testing.AllocsPerRun(3, func() {
				seed++
				trialCycle(t, nil, cfg, seed)
			})
			if pooled > fresh/4 {
				t.Fatalf("pooled trial allocates %.0f objects vs %.0f fresh — reuse is not retaining state", pooled, fresh)
			}
		})
	}
}
