// Package world provides per-worker simulation arenas: long-lived bundles
// of the expensive protocol state (deployment scratch, event queues, MAC
// tables, cipher pools, round buffers) that successive trials reset and
// reuse instead of reallocating.
//
// An Arena is the harness.Sweep.WorkerState payload: each sweep worker
// owns one, so no locking is needed, and because every Reset path
// reinitializes all behavior-relevant state from (net, cfg, seed), a trial
// run in a used arena is byte-identical to one run fresh — which keeps the
// harness's Workers=1 ≡ Workers=N determinism guarantee intact. The nil
// *Arena is valid and means "no reuse": every method falls back to plain
// construction, giving experiments a single code path for both modes.
//
// Within one arena, instances are keyed by a caller-chosen slot name so a
// trial that deploys several coexisting worlds (e.g. iPDA at two l values
// plus a TAG baseline) reuses each of them independently; re-requesting a
// slot invalidates the instance previously returned for it.
package world

import (
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/harness"
	"github.com/ipda-sim/ipda/internal/mtree"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/tag"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Arena is one worker's reusable simulation state. The zero value is ready
// to use.
type Arena struct {
	pool   topology.Pool
	cores  map[string]*core.Instance
	tags   map[string]*tag.Instance
	mtrees map[string]*mtree.Instance
	subs   []*Arena // per-shard-worker nested arenas, created on demand
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// FromTrial extracts the worker's arena from a sweep trial, or nil when
// the sweep runs with fresh worlds (no WorkerState, or a different type).
func FromTrial(t *harness.T) *Arena {
	a, _ := t.State.(*Arena)
	return a
}

// Sub returns the arena's i-th nested arena, creating it on first use —
// the per-shard-worker state of a sharded trial. Each shard worker resets
// and reuses its own sub-arena's pools, so sharding composes with world
// reuse without sharing mutable state across goroutines. A nil arena
// returns nil (which is itself a valid "no reuse" arena), keeping the
// single code path for fresh and pooled modes.
func (a *Arena) Sub(i int) *Arena {
	if a == nil {
		return nil
	}
	for len(a.subs) <= i {
		a.subs = append(a.subs, New())
	}
	return a.subs[i]
}

// Induced slices the subnetwork of parent induced by members out of the
// arena's pool (see topology.Pool.Induced); the result is valid until the
// next Induced on this arena. A nil arena builds into a throwaway pool.
// Sharded trials call this on per-shard-worker sub-arenas — each worker
// goroutine needs its own induced-subnet storage — while the trial's own
// arena keeps holding the live global deployment (the pool backs the two
// roles with separate storage).
func (a *Arena) Induced(parent *topology.Network, members []topology.NodeID) *topology.Network {
	if a == nil {
		var pool topology.Pool
		return pool.Induced(parent, members)
	}
	return a.pool.Induced(parent, members)
}

// Deploy generates a random deployment, reusing the arena's topology pool.
// The returned network aliases pooled storage: it is valid until the next
// Deploy on this arena. A nil arena delegates to topology.Random.
func (a *Arena) Deploy(c topology.Config, r *rng.Stream) (*topology.Network, error) {
	if a == nil {
		return topology.Random(c, r)
	}
	return a.pool.Random(c, r)
}

// Core returns slot's iPDA instance re-deployed over (net, cfg, seed),
// exactly as core.New would build it. A nil arena constructs fresh.
// Reuse retains more than buffers: the instance's linksec cipher cache
// survives Reset generationally, so a trial rerun at the same scheme and
// suite keeps its cipher instances and cached keystream blocks instead
// of re-deriving them (see linksec.CipherCache.Reset).
func (a *Arena) Core(slot string, net *topology.Network, cfg core.Config, seed uint64) (*core.Instance, error) {
	if a == nil {
		return core.New(net, cfg, seed)
	}
	in := a.cores[slot]
	if in == nil {
		in = &core.Instance{}
		if a.cores == nil {
			a.cores = make(map[string]*core.Instance)
		}
		a.cores[slot] = in
	}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}

// Tag returns slot's TAG instance re-deployed over (net, cfg, seed).
func (a *Arena) Tag(slot string, net *topology.Network, cfg tag.Config, seed uint64) (*tag.Instance, error) {
	if a == nil {
		return tag.New(net, cfg, seed)
	}
	in := a.tags[slot]
	if in == nil {
		in = &tag.Instance{}
		if a.tags == nil {
			a.tags = make(map[string]*tag.Instance)
		}
		a.tags[slot] = in
	}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}

// MTree returns slot's m-tree instance re-deployed over (net, cfg, seed).
func (a *Arena) MTree(slot string, net *topology.Network, cfg mtree.Config, seed uint64) (*mtree.Instance, error) {
	if a == nil {
		return mtree.New(net, cfg, seed)
	}
	in := a.mtrees[slot]
	if in == nil {
		in = &mtree.Instance{}
		if a.mtrees == nil {
			a.mtrees = make(map[string]*mtree.Instance)
		}
		a.mtrees[slot] = in
	}
	if err := in.Reset(net, cfg, seed); err != nil {
		return nil, err
	}
	return in, nil
}
