package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal drives the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same frame.
func FuzzUnmarshal(f *testing.F) {
	seeds := []*Packet{
		{Header: Header{Kind: KindHello, Src: 1, Dst: Broadcast, Round: 2, Seq: 3}, Color: Red, Hop: 4},
		{Header: Header{Kind: KindQuery, Src: 0, Dst: Broadcast, Round: 1}, Func: 9},
		{Header: Header{Kind: KindSlice, Src: 5, Dst: 6, Round: 7, Seq: 8}, Cipher: [8]byte{1, 2, 3}, Nonce: 9, Tag: 10, Color: Blue},
		{Header: Header{Kind: KindAggregate, Src: 11, Dst: 12, Round: 13}, Value: -14, Count: 15, Color: Red},
		{Header: Header{Kind: KindAck, Src: 16, Dst: 17, Seq: 18}},
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := p.Marshal()
		// The decoder may have accepted trailing garbage; the canonical
		// re-encoding must itself round-trip exactly.
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-unmarshal of accepted frame failed: %v", err)
		}
		if q.Header != p.Header {
			t.Fatalf("header mutated: %+v vs %+v", q.Header, p.Header)
		}
		if !bytes.Equal(q.Marshal(), out) {
			t.Fatal("marshal not a fixed point")
		}
	})
}
