package packet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindHello:     "HELLO",
		KindQuery:     "QUERY",
		KindSlice:     "SLICE",
		KindAggregate: "AGGREGATE",
		KindAck:       "ACK",
		Kind(99):      "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestColorOther(t *testing.T) {
	if Red.Other() != Blue || Blue.Other() != Red || NoColor.Other() != NoColor {
		t.Fatal("Color.Other wrong")
	}
	if Red.String() != "red" || Blue.String() != "blue" || NoColor.String() != "none" {
		t.Fatal("Color.String wrong")
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	data := p.Marshal()
	if len(data) != p.Size()-PhysOverhead+traceCtxSize {
		t.Fatalf("%v: marshal length %d, Size-PhysOverhead+ctx %d", p.Kind, len(data), p.Size()-PhysOverhead+traceCtxSize)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("%v: unmarshal: %v", p.Kind, err)
	}
	return q
}

func TestHelloRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{Kind: KindHello, Src: 7, Dst: Broadcast, Round: 3},
		Color:  Red,
		Hop:    12,
	}
	q := roundTrip(t, p)
	if q.Kind != KindHello || q.Src != 7 || q.Dst != Broadcast || q.Round != 3 || q.Color != Red || q.Hop != 12 {
		t.Fatalf("round trip mismatch: %+v", q)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{Kind: KindSlice, Src: 100, Dst: 200, Round: 9},
		Cipher: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		Nonce:  0xdeadbeef,
		Tag:    0xcafe1234,
		Color:  Blue,
	}
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("slice round trip: got %+v, want %+v", q, p)
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{Kind: KindAggregate, Src: 5, Dst: 6, Round: 1},
		Value:  -123456789012345,
		Count:  4242,
		Color:  Red,
	}
	q := roundTrip(t, p)
	if q.Value != p.Value || q.Count != p.Count || q.Color != p.Color {
		t.Fatalf("aggregate round trip: %+v", q)
	}
}

func TestQueryAndAckRoundTrip(t *testing.T) {
	p := &Packet{Header: Header{Kind: KindQuery, Src: 0, Dst: Broadcast, Round: 2}, Func: 3}
	if q := roundTrip(t, p); q.Func != 3 {
		t.Fatalf("query Func = %d", q.Func)
	}
	a := &Packet{Header: Header{Kind: KindAck, Src: 1, Dst: 2, Round: 2}}
	if q := roundTrip(t, a); q.Kind != KindAck {
		t.Fatalf("ack kind = %v", q.Kind)
	}
}

func TestSizes(t *testing.T) {
	// Relative sizes matter for overhead measurements: every frame pays
	// the same fixed cost, bodies differ per kind.
	hello := (&Packet{Header: Header{Kind: KindHello}}).Size()
	slice := (&Packet{Header: Header{Kind: KindSlice}}).Size()
	agg := (&Packet{Header: Header{Kind: KindAggregate}}).Size()
	ack := (&Packet{Header: Header{Kind: KindAck}}).Size()
	if !(ack < hello && hello < agg && agg < slice) {
		t.Fatalf("size ordering wrong: ack=%d hello=%d agg=%d slice=%d", ack, hello, agg, slice)
	}
	if ack != PhysOverhead+13 {
		t.Fatalf("ack size = %d", ack)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Valid header, truncated body.
	p := &Packet{Header: Header{Kind: KindSlice, Src: 1, Dst: 2}}
	data := p.Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Fatal("truncated slice body accepted")
	}
	// Unknown kind.
	bad := append([]byte{}, data...)
	bad[0] = 200
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMarshalUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Packet{Header: Header{Kind: Kind(77)}}).Marshal()
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(src, dst int32, round uint16, cipher [8]byte, nonce, tag uint32, value int64, count uint32, colorRaw uint8) bool {
		color := Color(colorRaw % 3) // NoColor, Red, Blue
		for _, kind := range []Kind{KindHello, KindQuery, KindSlice, KindAggregate, KindAck} {
			p := &Packet{
				Header: Header{Kind: kind, Src: src, Dst: dst, Round: round, TraceQ: round, TraceSpan: nonce},
				Color:  color,
				Hop:    uint16(nonce),
				Func:   uint8(tag),
				Cipher: cipher,
				Nonce:  nonce,
				Tag:    tag,
				Value:  value,
				Count:  count,
			}
			q, err := Unmarshal(p.Marshal())
			if err != nil {
				return false
			}
			if q.Header != p.Header {
				return false
			}
			switch kind {
			case KindHello:
				if q.Color != p.Color || q.Hop != p.Hop {
					return false
				}
			case KindQuery:
				if q.Func != p.Func {
					return false
				}
			case KindSlice:
				if q.Cipher != p.Cipher || q.Nonce != p.Nonce || q.Tag != p.Tag || q.Color != p.Color {
					return false
				}
			case KindAggregate:
				if q.Value != p.Value || q.Count != p.Count || q.Color != p.Color {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEncodeMatchesMarshal(t *testing.T) {
	for _, kind := range []Kind{KindHello, KindQuery, KindSlice, KindAggregate, KindAck} {
		p := &Packet{
			Header: Header{Kind: kind, Src: 7, Dst: Broadcast, Round: 3, Seq: 12},
			Color:  Blue,
			Hop:    4,
			Func:   9,
			Cipher: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
			Nonce:  0xDEAD,
			Tag:    0xBEEF,
			Value:  -42,
			Count:  17,
		}
		want := p.Marshal()
		prefix := []byte{0xAA, 0xBB}
		got := p.AppendEncode(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:2], prefix) {
			t.Fatalf("%v: AppendEncode clobbered the prefix", kind)
		}
		if !bytes.Equal(got[2:], want) {
			t.Fatalf("%v: AppendEncode = %x, Marshal = %x", kind, got[2:], want)
		}
	}
}

func TestAppendEncodeAllocFree(t *testing.T) {
	p := &Packet{
		Header: Header{Kind: KindSlice, Src: 3, Dst: 9, Round: 2, Seq: 77},
		Nonce:  0x01020304,
		Tag:    0xA1B2C3D4,
		Color:  Red,
	}
	buf := p.AppendEncode(make([]byte, 0, 64)) // warm
	allocs := testing.AllocsPerRun(200, func() {
		buf = p.AppendEncode(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode into a sized buffer allocated %v per op, want 0", allocs)
	}
}

func TestDecodeFrameMatchesUnmarshal(t *testing.T) {
	p := &Packet{
		Header: Header{Kind: KindAggregate, Src: 5, Dst: 6, Round: 9, Seq: 2},
		Value:  123456789,
		Count:  44,
		Color:  Red,
	}
	frame := p.Marshal()
	want, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	got.Func = 99 // stale state must be cleared by DecodeFrame
	if err := DecodeFrame(&got, frame); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("DecodeFrame = %+v, want %+v", got, *want)
	}
	if err := DecodeFrame(&got, frame[:3]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

// TestTraceContext pins the in-band trace context: always encoded,
// recoverable by the FrameTraceSpan peek, and invisible to Size (the
// context rides in the PhysOverhead budget, so byte accounting cannot
// depend on whether a frame is traced).
func TestTraceContext(t *testing.T) {
	p := &Packet{Header: Header{Kind: KindAggregate, Src: 3, Dst: 4, Round: 2}}
	plain := p.Size()
	frame := p.Marshal()
	if FrameTraceSpan(frame) != 0 {
		t.Fatalf("untraced frame span = %d", FrameTraceSpan(frame))
	}
	p.TraceQ, p.TraceSpan = 2, 0xCAFED00D
	if p.Size() != plain {
		t.Fatalf("Size changed with trace context: %d vs %d", p.Size(), plain)
	}
	frame = p.Marshal()
	if got := FrameTraceSpan(frame); got != 0xCAFED00D {
		t.Fatalf("FrameTraceSpan = %#x", got)
	}
	if FrameTraceSpan(frame[:wireHeaderSize-1]) != 0 {
		t.Fatal("truncated frame yielded a span ref")
	}
	q, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.TraceQ != 2 || q.TraceSpan != 0xCAFED00D {
		t.Fatalf("context lost in round trip: %+v", q.Header)
	}
}

// BenchmarkPacketEncode measures encoding one slice frame into a reused
// buffer. Pre-PR baseline (Marshal, fresh slice per frame): 47.65 ns/op,
// 32 B/op, 1 allocs/op.
func BenchmarkPacketEncode(b *testing.B) {
	p := &Packet{
		Header: Header{Kind: KindSlice, Src: 3, Dst: 9, Round: 2, Seq: 77},
		Nonce:  0x01020304,
		Tag:    0xA1B2C3D4,
		Color:  Red,
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendEncode(buf[:0])
	}
}
