// Package packet defines the over-the-air message formats of iPDA and TAG
// and their binary encodings.
//
// Byte-accurate sizes matter: the paper's Figure 7 measures communication
// overhead in bytes, and the iPDA/TAG overhead ratio (2l+1)/2 is an
// argument about message counts of comparable size. Every message carries a
// common link-layer header (modelled on a TinyOS-style frame) followed by a
// kind-specific body; Size reports the on-air length used by the radio for
// transmission-duration and bandwidth accounting.
package packet

import (
	"encoding/binary"
	"fmt"
)

// Kind discriminates the message types of the protocols.
type Kind uint8

const (
	// KindHello is the tree-construction beacon of Phase I (and of TAG's
	// spanning-tree construction).
	KindHello Kind = iota + 1
	// KindQuery disseminates an aggregation query from the base station.
	KindQuery
	// KindSlice carries one encrypted data slice of Phase II.
	KindSlice
	// KindAggregate carries an intermediate aggregation result up a tree
	// (Phase III).
	KindAggregate
	// KindAck is the link-layer acknowledgement used by the MAC.
	KindAck
	// KindSliceBatch carries several coalesced Phase II slices in one
	// frame: a node with multiple same-round slices packs them — each
	// sealed for its own next-hop link — into one transmission with one
	// MAC exchange. The frame is addressed (and ACKed by) one anchor
	// destination; the other slice targets pick it up promiscuously.
	KindSliceBatch
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindQuery:
		return "QUERY"
	case KindSlice:
		return "SLICE"
	case KindAggregate:
		return "AGGREGATE"
	case KindAck:
		return "ACK"
	case KindSliceBatch:
		return "SLICE_BATCH"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Color identifies the disjoint aggregation tree a node or message belongs
// to. The paper calls the two trees "red" and "blue".
type Color uint8

const (
	// NoColor marks leaf nodes and color-agnostic messages.
	NoColor Color = iota
	// Red is the red aggregation tree.
	Red
	// Blue is the blue aggregation tree.
	Blue
)

func (c Color) String() string {
	switch c {
	case Red:
		return "red"
	case Blue:
		return "blue"
	case NoColor:
		return "none"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// Other returns the opposite tree color; NoColor maps to itself.
func (c Color) Other() Color {
	switch c {
	case Red:
		return Blue
	case Blue:
		return Red
	default:
		return NoColor
	}
}

// Broadcast is the destination address of link-local broadcast frames.
const Broadcast int32 = -1

// Header is the link-layer header shared by every message.
type Header struct {
	Kind  Kind
	Src   int32  // sending node
	Dst   int32  // receiving node, or Broadcast
	Round uint16 // protocol round
	Seq   uint16 // MAC sequence number (set by the MAC; ACKs echo it)

	// TraceQ and TraceSpan are the in-band trace context (see
	// internal/qtrace): the query ID and the sender-side span reference
	// this frame causally belongs to. Both are always encoded so frame
	// layouts never depend on whether tracing is enabled; an untraced
	// frame carries zeroes. The context rides inside the PhysOverhead
	// byte budget (real radios carry comparable metadata in the framing
	// already modeled there), so Size() — and therefore airtime,
	// collisions, and every byte-accounted table — is identical with
	// tracing on or off.
	TraceQ    uint16
	TraceSpan uint32
}

// Packet is one over-the-air frame. Only the fields relevant to Kind are
// meaningful; Marshal encodes exactly those.
type Packet struct {
	Header

	// Hello fields.
	Color Color  // sender's tree color
	Hop   uint16 // sender's hop distance from the base station

	// Query fields.
	Func uint8 // aggregate function identifier

	// Slice fields: the encrypted slice. Nonce and Tag implement the
	// link-level encryption of Section III-C.
	Cipher [8]byte // encrypted 64-bit additive share
	Nonce  uint32
	Tag    uint32 // truncated MAC over the ciphertext

	// Aggregate fields.
	Value int64  // partial aggregate
	Count uint32 // number of readings folded into Value

	// SliceBatch fields: the coalesced slices of a KindSliceBatch frame,
	// each sealed for its own entry destination. DecodeFrame reuses the
	// slice's backing array across decodes, so a scratch Packet stays
	// allocation-free; a holder that outlives the decode must deep-copy.
	Entries []SliceEntry
}

// SliceEntry is one coalesced slice inside a KindSliceBatch frame: the
// per-destination fields a standalone KindSlice frame would carry.
type SliceEntry struct {
	Dst    int32
	Cipher [8]byte
	Nonce  uint32
	Tag    uint32
	Color  Color
}

// Link-layer framing constants, bytes. PhysOverhead models preamble, sync,
// CRC, and addressing not otherwise counted — the fixed per-frame cost any
// real radio pays.
const (
	PhysOverhead = 11
	headerSize   = 1 + 4 + 4 + 2 + 2 // kind + src + dst + round + seq

	// traceCtxSize is the encoded trace context (TraceQ + TraceSpan). It
	// is accounted against PhysOverhead, not added to Size: the modeled
	// physical framing already budgets 11 bytes of non-protocol
	// metadata, 6 of which the simulator uses to carry the context.
	traceCtxSize   = 2 + 4
	wireHeaderSize = headerSize + traceCtxSize

	helloBody     = 1 + 2         // color + hop
	queryBody     = 1             // func
	sliceBody     = 8 + 4 + 4 + 1 // cipher + nonce + tag + color
	aggregateBody = 8 + 4 + 1     // value + count + color
	ackBody       = 0

	sliceEntrySize = 4 + sliceBody // dst + cipher + nonce + tag + color

	// MaxSliceEntries bounds a KindSliceBatch frame: the entry count is
	// carried in one byte, and no sensible coalescing window approaches it.
	MaxSliceEntries = 255
)

// SliceBatchSize returns the on-air length of a KindSliceBatch frame
// carrying n entries — what MAC slot sizing needs before any frame exists.
func SliceBatchSize(n int) int {
	return PhysOverhead + headerSize + 1 + n*sliceEntrySize
}

// Size returns the on-air length of the packet in bytes. The trace
// context does not contribute: it occupies part of the PhysOverhead
// budget (see traceCtxSize), keeping byte accounting independent of
// tracing.
func (p *Packet) Size() int {
	body := 0
	switch p.Kind {
	case KindHello:
		body = helloBody
	case KindQuery:
		body = queryBody
	case KindSlice:
		body = sliceBody
	case KindAggregate:
		body = aggregateBody
	case KindAck:
		body = ackBody
	case KindSliceBatch:
		body = 1 + len(p.Entries)*sliceEntrySize
	}
	return PhysOverhead + headerSize + body
}

// Marshal encodes p into a fresh byte slice of exactly
// Size()-PhysOverhead+traceCtxSize bytes (the trace context is carried
// in bytes already charged to the physical-layer overhead).
func (p *Packet) Marshal() []byte {
	return p.AppendEncode(make([]byte, 0, p.Size()-PhysOverhead+traceCtxSize))
}

// AppendEncode appends p's wire encoding to buf and returns the
// extended slice. Encoding into a reused buffer with enough capacity
// performs no allocation, which is how the MAC recycles one frame
// buffer per node across sends.
func (p *Packet) AppendEncode(buf []byte) []byte {
	buf = append(buf, byte(p.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Dst))
	buf = binary.BigEndian.AppendUint16(buf, p.Round)
	buf = binary.BigEndian.AppendUint16(buf, p.Seq)
	buf = binary.BigEndian.AppendUint16(buf, p.TraceQ)
	buf = binary.BigEndian.AppendUint32(buf, p.TraceSpan)
	switch p.Kind {
	case KindHello:
		buf = append(buf, byte(p.Color))
		buf = binary.BigEndian.AppendUint16(buf, p.Hop)
	case KindQuery:
		buf = append(buf, p.Func)
	case KindSlice:
		buf = append(buf, p.Cipher[:]...)
		buf = binary.BigEndian.AppendUint32(buf, p.Nonce)
		buf = binary.BigEndian.AppendUint32(buf, p.Tag)
		buf = append(buf, byte(p.Color))
	case KindAggregate:
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Value))
		buf = binary.BigEndian.AppendUint32(buf, p.Count)
		buf = append(buf, byte(p.Color))
	case KindAck:
	case KindSliceBatch:
		if len(p.Entries) > MaxSliceEntries {
			panic(fmt.Sprintf("packet: %d slice-batch entries exceed %d", len(p.Entries), MaxSliceEntries))
		}
		buf = append(buf, byte(len(p.Entries)))
		for i := range p.Entries {
			e := &p.Entries[i]
			buf = binary.BigEndian.AppendUint32(buf, uint32(e.Dst))
			buf = append(buf, e.Cipher[:]...)
			buf = binary.BigEndian.AppendUint32(buf, e.Nonce)
			buf = binary.BigEndian.AppendUint32(buf, e.Tag)
			buf = append(buf, byte(e.Color))
		}
	default:
		panic(fmt.Sprintf("packet: Marshal of unknown kind %d", p.Kind))
	}
	return buf
}

// FrameKind peeks at the kind byte of an encoded frame without decoding
// the rest, so byte-accounting instrumentation can classify traffic at
// zero cost. Returns 0 for an empty frame or an out-of-range kind.
func FrameKind(frame []byte) Kind {
	if len(frame) == 0 {
		return 0
	}
	k := Kind(frame[0])
	if k < KindHello || k > KindSliceBatch {
		return 0
	}
	return k
}

// FrameBatchCount peeks at the entry count of an encoded KindSliceBatch
// frame without decoding it; 0 for any other (or truncated) frame. The
// radio's coalescing instrumentation classifies transmissions with it.
func FrameBatchCount(frame []byte) int {
	if len(frame) <= wireHeaderSize || Kind(frame[0]) != KindSliceBatch {
		return 0
	}
	return int(frame[wireHeaderSize])
}

// FrameTraceSpan peeks at the sender-side span reference of an encoded
// frame without decoding the rest — the zero-cost classifier the radio
// uses to attribute airtime and energy to the causing span. Returns 0
// (the null reference) for untraced or truncated frames.
func FrameTraceSpan(frame []byte) uint32 {
	if len(frame) < wireHeaderSize {
		return 0
	}
	return binary.BigEndian.Uint32(frame[15:19])
}

// Unmarshal decodes a frame produced by Marshal.
func Unmarshal(data []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeFrame(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeFrame decodes a frame produced by Marshal into an existing Packet,
// overwriting it entirely. It allocates only when building an error, so
// hot receive paths can decode into a scratch Packet.
func DecodeFrame(p *Packet, data []byte) error {
	entries := p.Entries[:0] // keep the backing array across decodes
	*p = Packet{}
	p.Entries = entries
	if len(data) < wireHeaderSize {
		return fmt.Errorf("packet: frame too short (%d bytes)", len(data))
	}
	p.Kind = Kind(data[0])
	p.Src = int32(binary.BigEndian.Uint32(data[1:5]))
	p.Dst = int32(binary.BigEndian.Uint32(data[5:9]))
	p.Round = binary.BigEndian.Uint16(data[9:11])
	p.Seq = binary.BigEndian.Uint16(data[11:13])
	p.TraceQ = binary.BigEndian.Uint16(data[13:15])
	p.TraceSpan = binary.BigEndian.Uint32(data[15:19])
	body := data[wireHeaderSize:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("packet: %v body truncated: %d < %d", p.Kind, len(body), n)
		}
		return nil
	}
	switch p.Kind {
	case KindHello:
		if err := need(helloBody); err != nil {
			return err
		}
		p.Color = Color(body[0])
		p.Hop = binary.BigEndian.Uint16(body[1:3])
	case KindQuery:
		if err := need(queryBody); err != nil {
			return err
		}
		p.Func = body[0]
	case KindSlice:
		if err := need(sliceBody); err != nil {
			return err
		}
		copy(p.Cipher[:], body[:8])
		p.Nonce = binary.BigEndian.Uint32(body[8:12])
		p.Tag = binary.BigEndian.Uint32(body[12:16])
		p.Color = Color(body[16])
	case KindAggregate:
		if err := need(aggregateBody); err != nil {
			return err
		}
		p.Value = int64(binary.BigEndian.Uint64(body[:8]))
		p.Count = binary.BigEndian.Uint32(body[8:12])
		p.Color = Color(body[12])
	case KindAck:
	case KindSliceBatch:
		if err := need(1); err != nil {
			return err
		}
		count := int(body[0])
		if err := need(1 + count*sliceEntrySize); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			b := body[1+i*sliceEntrySize:]
			var e SliceEntry
			e.Dst = int32(binary.BigEndian.Uint32(b[:4]))
			copy(e.Cipher[:], b[4:12])
			e.Nonce = binary.BigEndian.Uint32(b[12:16])
			e.Tag = binary.BigEndian.Uint32(b[16:20])
			e.Color = Color(b[20])
			p.Entries = append(p.Entries, e)
		}
	default:
		return fmt.Errorf("packet: unknown kind %d", data[0])
	}
	return nil
}
