package topology

import (
	"fmt"
	"math"

	"github.com/ipda-sim/ipda/internal/geom"
)

// Region is one rectangular cell of a spatial partition: the nodes whose
// positions fall inside its bounds, in ascending ID order.
type Region struct {
	Index  int
	Bounds geom.Rect
	Owned  []NodeID
}

// Partition is a grid decomposition of a deployment into rectangular
// regions, the spatial substrate of the sharded simulation engine. It is
// a pure function of (net, want): same inputs, same partition — region
// membership, neighbor sets, and export lists never depend on how many
// workers later execute the regions.
//
// Beyond ownership, the partition precomputes the radio coupling between
// regions: two regions are neighbors when their rectangles are within one
// transmission range of each other, and each node carries an export list —
// the foreign regions whose rectangle is within range of the node. A
// transmission can only be heard inside a region if its sender is within
// range of some node there, and every such node lies inside the region's
// rectangle, so mirroring each frame into exactly the sender's export
// regions reproduces all cross-region physics.
type Partition struct {
	Net     *Network
	Cols    int
	Rows    int
	Regions []Region
	Owner   []int32 // node -> owning region index

	neighbors [][]int32 // region -> regions within Range of its rect (excl. itself)
	expOff    []int32   // CSR offsets into expRegions, per node
	expRegs   []int32   // export region lists, back to back
}

// R returns the number of regions.
func (p *Partition) R() int { return len(p.Regions) }

// Neighbors returns the regions whose rectangle lies within one
// transmission range of region r's rectangle, excluding r itself. The
// returned slice is shared; callers must not modify it.
func (p *Partition) Neighbors(r int) []int32 { return p.neighbors[r] }

// Exports returns the foreign regions a transmission from node id must be
// mirrored into: every region other than the owner whose rectangle is
// within transmission range of the node. Interior nodes return an empty
// slice. The returned slice is shared; callers must not modify it.
func (p *Partition) Exports(id NodeID) []int32 {
	return p.expRegs[p.expOff[id]:p.expOff[id+1]]
}

// rectDist2 returns the squared distance from point (x, y) to rectangle r
// (zero when the point is inside).
func rectDist2(x, y float64, r geom.Rect) float64 {
	dx := math.Max(math.Max(r.MinX-x, 0), x-r.MaxX)
	dy := math.Max(math.Max(r.MinY-y, 0), y-r.MaxY)
	return dx*dx + dy*dy
}

// rectGap2 returns the squared distance between two rectangles (zero when
// they touch or overlap).
func rectGap2(a, b geom.Rect) float64 {
	dx := math.Max(math.Max(a.MinX-b.MaxX, 0), b.MinX-a.MaxX)
	dy := math.Max(math.Max(a.MinY-b.MaxY, 0), b.MinY-a.MaxY)
	return dx*dx + dy*dy
}

// PartitionGrid splits net's bounding rectangle into a near-square grid of
// at least 1 and approximately want regions and assigns every node to the
// region containing its position. want is a request, not a contract: the
// actual region count is Cols×Rows for the chosen grid shape (query R()).
func PartitionGrid(net *Network, want int) *Partition {
	if want < 1 {
		want = 1
	}
	w, h := net.Bounds.Width(), net.Bounds.Height()
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: PartitionGrid over degenerate bounds %+v", net.Bounds))
	}
	// Shape the grid to the field's aspect ratio so regions stay near-square
	// (compact regions minimize border area, hence cross-region traffic).
	rows := int(math.Round(math.Sqrt(float64(want) * h / w)))
	if rows < 1 {
		rows = 1
	}
	cols := (want + rows - 1) / rows
	if cols < 1 {
		cols = 1
	}

	p := &Partition{
		Net:     net,
		Cols:    cols,
		Rows:    rows,
		Regions: make([]Region, cols*rows),
		Owner:   make([]int32, net.N()),
	}
	cellW, cellH := w/float64(cols), h/float64(rows)
	for ry := 0; ry < rows; ry++ {
		for rx := 0; rx < cols; rx++ {
			i := ry*cols + rx
			p.Regions[i] = Region{
				Index: i,
				Bounds: geom.Rect{
					MinX: net.Bounds.MinX + float64(rx)*cellW,
					MinY: net.Bounds.MinY + float64(ry)*cellH,
					MaxX: net.Bounds.MinX + float64(rx+1)*cellW,
					MaxY: net.Bounds.MinY + float64(ry+1)*cellH,
				},
			}
		}
	}
	cellIdx := func(pt geom.Point) int {
		cx := int((pt.X - net.Bounds.MinX) / cellW)
		cy := int((pt.Y - net.Bounds.MinY) / cellH)
		if cx < 0 {
			cx = 0
		} else if cx >= cols {
			cx = cols - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= rows {
			cy = rows - 1
		}
		return cy*cols + cx
	}
	for id, pt := range net.Positions {
		r := cellIdx(pt)
		p.Owner[id] = int32(r)
		p.Regions[r].Owned = append(p.Regions[r].Owned, NodeID(id))
	}

	// Region neighbor sets: rectangles within one transmission range. Region
	// counts are small (hundreds), so the quadratic sweep is negligible next
	// to node assignment.
	r2 := net.Range * net.Range
	p.neighbors = make([][]int32, len(p.Regions))
	for a := range p.Regions {
		for b := range p.Regions {
			if a != b && rectGap2(p.Regions[a].Bounds, p.Regions[b].Bounds) <= r2 {
				p.neighbors[a] = append(p.neighbors[a], int32(b))
			}
		}
	}

	// Per-node export lists (CSR): foreign regions within range of the node.
	// Candidate regions are bounded to the grid ring the range can reach so
	// the pass stays O(N · ring), not O(N · R).
	ringX := int(math.Ceil(net.Range/cellW)) + 1
	ringY := int(math.Ceil(net.Range/cellH)) + 1
	p.expOff = make([]int32, net.N()+1)
	for id, pt := range net.Positions {
		p.expOff[id] = int32(len(p.expRegs))
		home := cellIdx(pt)
		hx, hy := home%cols, home/cols
		for cy := hy - ringY; cy <= hy+ringY; cy++ {
			if cy < 0 || cy >= rows {
				continue
			}
			for cx := hx - ringX; cx <= hx+ringX; cx++ {
				if cx < 0 || cx >= cols {
					continue
				}
				r := cy*cols + cx
				if r == int(p.Owner[id]) {
					continue
				}
				if rectDist2(pt.X, pt.Y, p.Regions[r].Bounds) <= r2 {
					p.expRegs = append(p.expRegs, int32(r))
				}
			}
		}
	}
	p.expOff[net.N()] = int32(len(p.expRegs))
	return p
}
