// Package topology models sensor network deployments as geometric graphs.
//
// A network is the connected graph G(V, E) of Section II-A of the paper: a
// vertex per sensor node, an edge per wireless link, where a link exists
// whenever two nodes are within transmission range of each other. The
// package provides the deployments the evaluation uses (uniform random over
// a square field, as in Section IV-B), plus grid and d-regular topologies
// used by the theoretical analysis, along with degree and connectivity
// queries.
package topology

import (
	"fmt"
	"math"

	"github.com/ipda-sim/ipda/internal/geom"
	"github.com/ipda-sim/ipda/internal/rng"
)

// NodeID identifies a node within one Network. The base station, when
// present, is always node 0.
type NodeID int32

// None is the sentinel "no node" value (e.g. the parent of a root).
const None NodeID = -1

// Network is an immutable deployment: node positions and the symmetric
// adjacency induced by the transmission range.
type Network struct {
	Positions []geom.Point
	Range     float64
	Bounds    geom.Rect
	adj       [][]NodeID
}

// N returns the number of nodes (including the base station).
func (n *Network) N() int { return len(n.Positions) }

// Neighbors returns the IDs of nodes adjacent to id. The returned slice is
// shared; callers must not modify it.
func (n *Network) Neighbors(id NodeID) []NodeID { return n.adj[id] }

// Degree returns the number of neighbors of id.
func (n *Network) Degree(id NodeID) int { return len(n.adj[id]) }

// AvgDegree returns the mean node degree over all nodes.
func (n *Network) AvgDegree() float64 {
	if n.N() == 0 {
		return 0
	}
	total := 0
	for _, a := range n.adj {
		total += len(a)
	}
	return float64(total) / float64(n.N())
}

// InRange reports whether a and b share a wireless link.
func (n *Network) InRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return n.Positions[a].Dist2(n.Positions[b]) <= n.Range*n.Range
}

// Connected reports whether every node is reachable from node 0.
func (n *Network) Connected() bool {
	return len(n.ReachableFrom(0)) == n.N()
}

// ReachableFrom returns the set of nodes reachable from start by BFS,
// including start itself. The visit order doubles as the BFS queue (a head
// index walks it while newly discovered nodes append to the tail), so the
// whole traversal costs exactly two allocations — the visited bitmap and
// the returned slice — instead of re-slicing a separate queue per pop.
func (n *Network) ReachableFrom(start NodeID) []NodeID {
	if n.N() == 0 {
		return nil
	}
	visited := make([]bool, n.N())
	order := make([]NodeID, 0, n.N())
	order = append(order, start)
	visited[start] = true
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range n.adj[v] {
			if !visited[w] {
				visited[w] = true
				order = append(order, w)
			}
		}
	}
	return order
}

// HopDistances returns the BFS hop count from start to every node;
// unreachable nodes get -1. Like ReachableFrom, the queue is walked by head
// index over one full-capacity backing array (two allocations total).
func (n *Network) HopDistances(start NodeID) []int {
	dist, _ := n.HopDistancesInto(start, nil, nil)
	return dist
}

// HopDistancesInto is HopDistances over caller-provided scratch: dist and
// queue are reused when they have capacity and returned (possibly regrown)
// so a caller that resets per run amortizes both allocations to zero.
func (n *Network) HopDistancesInto(start NodeID, dist []int, queue []NodeID) ([]int, []NodeID) {
	if cap(dist) < n.N() {
		dist = make([]int, n.N())
	}
	dist = dist[:n.N()]
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	if cap(queue) < n.N() {
		queue = make([]NodeID, 0, n.N())
	}
	queue = append(queue[:0], start)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range n.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, queue
}

// buildAdjacency fills adj from positions using a spatial grid index.
func buildAdjacency(positions []geom.Point, bounds geom.Rect, radius float64) [][]NodeID {
	idx := geom.NewGridIndex(bounds, positions, radius)
	adj := make([][]NodeID, len(positions))
	buf := make([]int, 0, 64)
	for i := range positions {
		buf = idx.Neighbors(i, radius, buf[:0])
		row := make([]NodeID, len(buf))
		for k, j := range buf {
			row[k] = NodeID(j)
		}
		adj[i] = row
	}
	return adj
}

// Config describes a uniform random deployment, the scenario of Section
// IV-B: N sensor nodes placed uniformly at random on a square field with a
// fixed transmission range; the base station is placed at the field center.
type Config struct {
	Nodes     int     // number of sensor nodes, excluding the base station
	FieldSide float64 // side of the square deployment area, meters
	Range     float64 // transmission range, meters
}

// PaperConfig returns the simulation setup of Section IV-B: a 400 m x 400 m
// field and 50 m transmission range.
func PaperConfig(nodes int) Config {
	return Config{Nodes: nodes, FieldSide: 400, Range: 50}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("topology: Nodes must be positive, got %d", c.Nodes)
	}
	if c.FieldSide <= 0 {
		return fmt.Errorf("topology: FieldSide must be positive, got %v", c.FieldSide)
	}
	if c.Range <= 0 {
		return fmt.Errorf("topology: Range must be positive, got %v", c.Range)
	}
	return nil
}

// Random deploys a network per c using randomness from r. Node 0 is the
// base station at the field center; nodes 1..Nodes are uniform random.
func Random(c Config, r *rng.Stream) (*Network, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	bounds := geom.Square(c.FieldSide)
	positions := make([]geom.Point, c.Nodes+1)
	positions[0] = bounds.Center()
	for i := 1; i <= c.Nodes; i++ {
		positions[i] = geom.Point{
			X: r.Float64() * c.FieldSide,
			Y: r.Float64() * c.FieldSide,
		}
	}
	return &Network{
		Positions: positions,
		Range:     c.Range,
		Bounds:    bounds,
		adj:       buildAdjacency(positions, bounds, c.Range),
	}, nil
}

// Grid deploys (side x side) nodes on a regular lattice with the given
// spacing, plus the base station at the center. Useful for deterministic
// tests: every interior node has the same degree.
func Grid(side int, spacing, radius float64) (*Network, error) {
	if side <= 0 || spacing <= 0 || radius <= 0 {
		return nil, fmt.Errorf("topology: invalid grid parameters side=%d spacing=%v radius=%v", side, spacing, radius)
	}
	extent := spacing * float64(side-1)
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: extent + 1, MaxY: extent + 1}
	positions := make([]geom.Point, 0, side*side+1)
	positions = append(positions, geom.Point{X: extent / 2, Y: extent / 2})
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			positions = append(positions, geom.Point{X: float64(x) * spacing, Y: float64(y) * spacing})
		}
	}
	return &Network{
		Positions: positions,
		Range:     radius,
		Bounds:    bounds,
		adj:       buildAdjacency(positions, bounds, radius),
	}, nil
}

// Regular builds an abstract d-regular graph on n nodes (a circulant graph:
// node i adjacent to i±1, ..., i±d/2 modulo n). Positions are laid out on a
// circle purely for visualization; Range is set so that InRange is NOT
// meaningful for circulants — use Neighbors. The analysis of Section IV-A
// uses d-regular graphs for its closed-form examples.
func Regular(n, d int) (*Network, error) {
	if n <= 0 || d <= 0 || d%2 != 0 || d >= n {
		return nil, fmt.Errorf("topology: Regular requires even 0 < d < n, got n=%d d=%d", n, d)
	}
	positions := make([]geom.Point, n)
	radius := float64(n)
	for i := range positions {
		angle := 2 * math.Pi * float64(i) / float64(n)
		positions[i] = geom.Point{X: radius * (1 + math.Cos(angle)), Y: radius * (1 + math.Sin(angle))}
	}
	adj := make([][]NodeID, n)
	half := d / 2
	for i := 0; i < n; i++ {
		row := make([]NodeID, 0, d)
		for k := 1; k <= half; k++ {
			row = append(row, NodeID((i+k)%n), NodeID((i-k+n)%n))
		}
		adj[i] = row
	}
	return &Network{
		Positions: positions,
		Range:     0,
		Bounds:    geom.Square(2 * radius),
		adj:       adj,
	}, nil
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (n *Network) DegreeHistogram() []int {
	maxDeg := 0
	for _, a := range n.adj {
		if len(a) > maxDeg {
			maxDeg = len(a)
		}
	}
	counts := make([]int, maxDeg+1)
	for _, a := range n.adj {
		counts[len(a)]++
	}
	return counts
}

// ExpectedAvgDegree returns the analytic mean degree of a uniform random
// deployment with the given parameters: (N)·π·r²/A, ignoring boundary
// effects, where N counts the OTHER nodes a given node might link to.
func ExpectedAvgDegree(c Config) float64 {
	area := c.FieldSide * c.FieldSide
	return float64(c.Nodes) * math.Pi * c.Range * c.Range / area
}
