package topology

import (
	"github.com/ipda-sim/ipda/internal/geom"
	"github.com/ipda-sim/ipda/internal/rng"
)

// Pool generates random deployments into reused backing storage — the
// into-buffer counterpart of Random for trial campaigns that deploy
// thousands of networks of similar size. Positions are written into one
// persistent slice and the adjacency is laid out CSR-style: all neighbor
// lists live back to back in a single flat array, with per-node rows sliced
// out of it once the flat array has reached its final length (rows are
// never taken while the array can still grow, so no row is left pointing at
// an abandoned backing array). After the first few deployments at a given
// size the pool allocates nothing.
//
// A Pool is not safe for concurrent use, and each Random call invalidates
// the Network returned by the previous one (the same backing storage is
// rewritten). Both properties match the per-worker arena model: one pool
// per worker, one live deployment per trial.
//
// Determinism: Pool.Random consumes exactly the same draws from r as
// topology.Random and produces an identical deployment — positions,
// neighbor sets, and neighbor order — so a trial cannot tell which
// constructor built its network.
type Pool struct {
	net  Network
	flat []NodeID // CSR adjacency backing: all rows, back to back
	offs []int32  // row offsets into flat; len n+1
	buf  []int    // grid-query scratch
	grid geom.GridIndex

	// Induced-subnet storage, separate from Random's so one pool can hold
	// a live global deployment while slicing region subnets out of it.
	inet   Network
	iflat  []NodeID
	ioffs  []int32
	g2l    []int32  // global->local ID map, -1 when absent
	g2lSet []NodeID // which g2l entries are set, for O(|members|) clearing
}

// Random deploys a network per c using randomness from r, reusing the
// pool's backing storage. The returned Network is valid until the next
// Random call on this pool.
func (p *Pool) Random(c Config, r *rng.Stream) (*Network, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.Nodes + 1
	bounds := geom.Square(c.FieldSide)
	if cap(p.net.Positions) < n {
		p.net.Positions = make([]geom.Point, n)
	}
	p.net.Positions = p.net.Positions[:n]
	p.net.Positions[0] = bounds.Center()
	for i := 1; i < n; i++ {
		p.net.Positions[i] = geom.Point{
			X: r.Float64() * c.FieldSide,
			Y: r.Float64() * c.FieldSide,
		}
	}
	p.net.Range = c.Range
	p.net.Bounds = bounds

	// Pass 1: append every neighbor list to the flat backing, recording row
	// offsets. The flat slice may be reallocated by growth during this pass,
	// which is why no *Network-visible row is sliced from it yet.
	p.grid.Rebuild(bounds, p.net.Positions, c.Range)
	if cap(p.offs) < n+1 {
		p.offs = make([]int32, n+1)
	}
	p.offs = p.offs[:n+1]
	p.flat = p.flat[:0]
	for i := 0; i < n; i++ {
		p.offs[i] = int32(len(p.flat))
		p.buf = p.grid.Neighbors(i, c.Range, p.buf[:0])
		for _, j := range p.buf {
			p.flat = append(p.flat, NodeID(j))
		}
	}
	p.offs[n] = int32(len(p.flat))

	// Pass 2: the flat array is final; slice the rows out of it. Full slice
	// expressions pin each row's capacity so an append on a row (callers
	// must not, but defensively) cannot bleed into its neighbor.
	if cap(p.net.adj) < n {
		p.net.adj = make([][]NodeID, n)
	}
	p.net.adj = p.net.adj[:n]
	for i := 0; i < n; i++ {
		lo, hi := p.offs[i], p.offs[i+1]
		p.net.adj[i] = p.flat[lo:hi:hi]
	}
	return &p.net, nil
}

// Induced builds the subnetwork of parent induced by members, with nodes
// renumbered to local IDs 0..len(members)-1 in members order — so the
// caller picks the local base station by putting it first. Edges are
// exactly parent's edges between members, neighbor lists in parent order,
// positions/Range/Bounds copied from parent. Storage is pooled separately
// from Random's, so a pool may hold a live global deployment and slice
// region subnets out of it; each Induced call invalidates the network the
// previous one returned. The cost is O(Σ degree(members)), independent of
// parent.N() apart from a one-time ID-map allocation at the largest parent
// size seen.
func (p *Pool) Induced(parent *Network, members []NodeID) *Network {
	n := len(members)
	if n == 0 {
		panic("topology: Induced over empty member set")
	}
	// Reset only the entries the previous call set: the map stays as large
	// as the largest parent ever seen, but clearing is O(|previous members|).
	for _, g := range p.g2lSet {
		p.g2l[g] = -1
	}
	p.g2lSet = p.g2lSet[:0]
	old := len(p.g2l)
	if cap(p.g2l) < parent.N() {
		c := 2 * cap(p.g2l)
		if c < parent.N() {
			c = parent.N()
		}
		g := make([]int32, parent.N(), c)
		copy(g, p.g2l)
		p.g2l = g
	} else {
		p.g2l = p.g2l[:parent.N()]
	}
	// Entries below old are -1 (cleared above); newly exposed ones must be
	// marked absent too, whether fresh storage or regrowth after a shrink.
	for i := old; i < len(p.g2l); i++ {
		p.g2l[i] = -1
	}
	for l, g := range members {
		if p.g2l[g] != -1 {
			panic("topology: Induced member listed twice")
		}
		p.g2l[g] = int32(l)
		p.g2lSet = append(p.g2lSet, g)
	}

	if cap(p.inet.Positions) < n {
		p.inet.Positions = make([]geom.Point, n)
	}
	p.inet.Positions = p.inet.Positions[:n]
	for l, g := range members {
		p.inet.Positions[l] = parent.Positions[g]
	}
	p.inet.Range = parent.Range
	p.inet.Bounds = parent.Bounds

	// Same two-pass CSR layout as Random: append all rows to the flat
	// backing first, slice rows out only once it has stopped growing.
	if cap(p.ioffs) < n+1 {
		p.ioffs = make([]int32, n+1)
	}
	p.ioffs = p.ioffs[:n+1]
	p.iflat = p.iflat[:0]
	for l, g := range members {
		p.ioffs[l] = int32(len(p.iflat))
		for _, nb := range parent.Neighbors(g) {
			if lnb := p.g2l[nb]; lnb >= 0 {
				p.iflat = append(p.iflat, NodeID(lnb))
			}
		}
	}
	p.ioffs[n] = int32(len(p.iflat))
	if cap(p.inet.adj) < n {
		p.inet.adj = make([][]NodeID, n)
	}
	p.inet.adj = p.inet.adj[:n]
	for l := 0; l < n; l++ {
		lo, hi := p.ioffs[l], p.ioffs[l+1]
		p.inet.adj[l] = p.iflat[lo:hi:hi]
	}
	return &p.inet
}
