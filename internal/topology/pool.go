package topology

import (
	"github.com/ipda-sim/ipda/internal/geom"
	"github.com/ipda-sim/ipda/internal/rng"
)

// Pool generates random deployments into reused backing storage — the
// into-buffer counterpart of Random for trial campaigns that deploy
// thousands of networks of similar size. Positions are written into one
// persistent slice and the adjacency is laid out CSR-style: all neighbor
// lists live back to back in a single flat array, with per-node rows sliced
// out of it once the flat array has reached its final length (rows are
// never taken while the array can still grow, so no row is left pointing at
// an abandoned backing array). After the first few deployments at a given
// size the pool allocates nothing.
//
// A Pool is not safe for concurrent use, and each Random call invalidates
// the Network returned by the previous one (the same backing storage is
// rewritten). Both properties match the per-worker arena model: one pool
// per worker, one live deployment per trial.
//
// Determinism: Pool.Random consumes exactly the same draws from r as
// topology.Random and produces an identical deployment — positions,
// neighbor sets, and neighbor order — so a trial cannot tell which
// constructor built its network.
type Pool struct {
	net  Network
	flat []NodeID // CSR adjacency backing: all rows, back to back
	offs []int32  // row offsets into flat; len n+1
	buf  []int    // grid-query scratch
	grid geom.GridIndex
}

// Random deploys a network per c using randomness from r, reusing the
// pool's backing storage. The returned Network is valid until the next
// Random call on this pool.
func (p *Pool) Random(c Config, r *rng.Stream) (*Network, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.Nodes + 1
	bounds := geom.Square(c.FieldSide)
	if cap(p.net.Positions) < n {
		p.net.Positions = make([]geom.Point, n)
	}
	p.net.Positions = p.net.Positions[:n]
	p.net.Positions[0] = bounds.Center()
	for i := 1; i < n; i++ {
		p.net.Positions[i] = geom.Point{
			X: r.Float64() * c.FieldSide,
			Y: r.Float64() * c.FieldSide,
		}
	}
	p.net.Range = c.Range
	p.net.Bounds = bounds

	// Pass 1: append every neighbor list to the flat backing, recording row
	// offsets. The flat slice may be reallocated by growth during this pass,
	// which is why no *Network-visible row is sliced from it yet.
	p.grid.Rebuild(bounds, p.net.Positions, c.Range)
	if cap(p.offs) < n+1 {
		p.offs = make([]int32, n+1)
	}
	p.offs = p.offs[:n+1]
	p.flat = p.flat[:0]
	for i := 0; i < n; i++ {
		p.offs[i] = int32(len(p.flat))
		p.buf = p.grid.Neighbors(i, c.Range, p.buf[:0])
		for _, j := range p.buf {
			p.flat = append(p.flat, NodeID(j))
		}
	}
	p.offs[n] = int32(len(p.flat))

	// Pass 2: the flat array is final; slice the rows out of it. Full slice
	// expressions pin each row's capacity so an append on a row (callers
	// must not, but defensively) cannot bleed into its neighbor.
	if cap(p.net.adj) < n {
		p.net.adj = make([][]NodeID, n)
	}
	p.net.adj = p.net.adj[:n]
	for i := 0; i < n; i++ {
		lo, hi := p.offs[i], p.offs[i+1]
		p.net.adj[i] = p.flat[lo:hi:hi]
	}
	return &p.net, nil
}
