package topology

import (
	"testing"

	"github.com/ipda-sim/ipda/internal/rng"
)

func TestPartitionGridCoversAllNodes(t *testing.T) {
	net, err := Random(PaperConfig(400), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionGrid(net, 4)
	if p.R() < 4 {
		t.Fatalf("R() = %d, want >= 4", p.R())
	}
	seen := make([]bool, net.N())
	total := 0
	for _, reg := range p.Regions {
		for _, id := range reg.Owned {
			if seen[id] {
				t.Fatalf("node %d owned by two regions", id)
			}
			seen[id] = true
			total++
			if int(p.Owner[id]) != reg.Index {
				t.Fatalf("Owner[%d] = %d, region says %d", id, p.Owner[id], reg.Index)
			}
			if !reg.Bounds.Contains(net.Positions[id]) {
				t.Fatalf("node %d at %v outside its region bounds %+v", id, net.Positions[id], reg.Bounds)
			}
		}
	}
	if total != net.N() {
		t.Fatalf("regions own %d of %d nodes", total, net.N())
	}
}

func TestPartitionExportsCoverCrossRegionEdges(t *testing.T) {
	// Soundness of border mirroring: for every radio edge (a, b) crossing a
	// region boundary, a's export list must contain b's region — otherwise
	// a frame from a would be invisible where b could hear it.
	net, err := Random(PaperConfig(400), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{2, 4, 8} {
		p := PartitionGrid(net, want)
		for a := 0; a < net.N(); a++ {
			for _, b := range net.Neighbors(NodeID(a)) {
				ra, rb := p.Owner[a], p.Owner[b]
				if ra == rb {
					continue
				}
				found := false
				for _, e := range p.Exports(NodeID(a)) {
					if e == rb {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("want=%d: edge %d(r%d)->%d(r%d) not covered by exports %v",
						want, a, ra, b, rb, p.Exports(NodeID(a)))
				}
				// And the regions must know they are coupled.
				inNbrs := false
				for _, q := range p.Neighbors(int(ra)) {
					if q == rb {
						inNbrs = true
						break
					}
				}
				if !inNbrs {
					t.Fatalf("want=%d: regions %d and %d share edge %d-%d but are not neighbors", want, ra, rb, a, b)
				}
			}
		}
	}
}

func TestPartitionSingleRegionHasNoExports(t *testing.T) {
	net, err := Random(PaperConfig(100), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionGrid(net, 1)
	if p.R() != 1 {
		t.Fatalf("R() = %d, want 1", p.R())
	}
	for id := 0; id < net.N(); id++ {
		if len(p.Exports(NodeID(id))) != 0 {
			t.Fatalf("node %d exports %v in a one-region partition", id, p.Exports(NodeID(id)))
		}
	}
	if len(p.Neighbors(0)) != 0 {
		t.Fatal("sole region has neighbors")
	}
}

func TestInducedMatchesParentEdges(t *testing.T) {
	net, err := Random(PaperConfig(300), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionGrid(net, 4)
	var pool Pool
	for _, reg := range p.Regions {
		if len(reg.Owned) == 0 {
			continue
		}
		sub := pool.Induced(net, reg.Owned)
		if sub.N() != len(reg.Owned) {
			t.Fatalf("region %d: induced N = %d, want %d", reg.Index, sub.N(), len(reg.Owned))
		}
		for l, g := range reg.Owned {
			if sub.Positions[l] != net.Positions[g] {
				t.Fatalf("region %d: local %d position mismatch", reg.Index, l)
			}
			// The induced neighbor list must be exactly the parent's list
			// filtered to members, in parent order.
			want := 0
			for _, nb := range net.Neighbors(g) {
				if p.Owner[nb] == int32(reg.Index) {
					want++
				}
			}
			if sub.Degree(NodeID(l)) != want {
				t.Fatalf("region %d: local %d degree %d, want %d", reg.Index, l, sub.Degree(NodeID(l)), want)
			}
			for _, lnb := range sub.Neighbors(NodeID(l)) {
				gnb := reg.Owned[lnb]
				if !net.InRange(g, gnb) {
					t.Fatalf("region %d: induced edge %d-%d not a parent edge", reg.Index, l, lnb)
				}
			}
		}
	}
}

func TestInducedReuseAcrossRegions(t *testing.T) {
	// A single pool slicing many differently-sized member sets (including
	// after the parent itself changes) must keep producing correct subnets.
	var pool Pool
	for _, seed := range []uint64{1, 2} {
		net, err := Random(PaperConfig(200), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []int{8, 2} {
			p := PartitionGrid(net, want)
			for _, reg := range p.Regions {
				if len(reg.Owned) == 0 {
					continue
				}
				sub := pool.Induced(net, reg.Owned)
				edges := 0
				for l := 0; l < sub.N(); l++ {
					edges += sub.Degree(NodeID(l))
				}
				wantEdges := 0
				for _, g := range reg.Owned {
					for _, nb := range net.Neighbors(g) {
						if p.Owner[nb] == int32(reg.Index) {
							wantEdges++
						}
					}
				}
				if edges != wantEdges {
					t.Fatalf("seed=%d want=%d region=%d: %d induced edge-ends, want %d",
						seed, want, reg.Index, edges, wantEdges)
				}
			}
		}
	}
}

func TestPoolRandomAllocFreeAcrossSizes(t *testing.T) {
	// Satellite pin: a pool that has deployed its largest field stops
	// allocating even when trial sizes alternate wildly (shrink/regrow),
	// which is what per-trial repartitioning at scale produces.
	if testing.Short() {
		t.Skip("large-N pin skipped in -short")
	}
	var pool Pool
	configs := []Config{
		{Nodes: 400, FieldSide: 400, Range: 50},
		{Nodes: 50000, FieldSide: 4200, Range: 50},
		{Nodes: 400, FieldSide: 400, Range: 50},
	}
	r := rng.New(77)
	for _, c := range configs { // warm to max footprint
		if _, err := pool.Random(c, r); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(4, func() {
		c := configs[i%len(configs)]
		i++
		if _, err := pool.Random(c, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Pool.Random allocated %v per run after warmup, want 0", allocs)
	}
}

func TestInducedAllocFreeSteadyState(t *testing.T) {
	net, err := Random(PaperConfig(400), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionGrid(net, 8)
	var pool Pool
	for _, reg := range p.Regions { // warm
		if len(reg.Owned) > 0 {
			pool.Induced(net, reg.Owned)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		reg := p.Regions[i%p.R()]
		i++
		if len(reg.Owned) > 0 {
			pool.Induced(net, reg.Owned)
		}
	})
	if allocs != 0 {
		t.Fatalf("Induced allocated %v per run after warmup, want 0", allocs)
	}
}
