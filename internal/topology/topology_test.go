package topology

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ipda-sim/ipda/internal/rng"
)

func TestRandomBasics(t *testing.T) {
	net, err := Random(PaperConfig(300), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 301 {
		t.Fatalf("N = %d, want 301", net.N())
	}
	for i := 0; i < net.N(); i++ {
		if !net.Bounds.Contains(net.Positions[i]) {
			t.Fatalf("node %d outside bounds", i)
		}
	}
	// Base station is at the center.
	if c := net.Bounds.Center(); net.Positions[0] != c {
		t.Fatalf("base station at %v, want %v", net.Positions[0], c)
	}
}

func TestRandomReproducible(t *testing.T) {
	a, _ := Random(PaperConfig(100), rng.New(42))
	b, _ := Random(PaperConfig(100), rng.New(42))
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same seed produced different deployments")
		}
	}
}

func TestAdjacencySymmetricAndIrreflexive(t *testing.T) {
	net, _ := Random(PaperConfig(200), rng.New(7))
	for i := 0; i < net.N(); i++ {
		id := NodeID(i)
		for _, j := range net.Neighbors(id) {
			if j == id {
				t.Fatalf("node %d adjacent to itself", i)
			}
			found := false
			for _, k := range net.Neighbors(j) {
				if k == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", i, j)
			}
			if !net.InRange(id, j) {
				t.Fatalf("neighbor %d-%d not in range", i, j)
			}
		}
	}
}

func TestInRangeMatchesAdjacency(t *testing.T) {
	net, _ := Random(PaperConfig(120), rng.New(3))
	for i := 0; i < net.N(); i++ {
		neigh := map[NodeID]bool{}
		for _, j := range net.Neighbors(NodeID(i)) {
			neigh[j] = true
		}
		for j := 0; j < net.N(); j++ {
			if i == j {
				continue
			}
			if net.InRange(NodeID(i), NodeID(j)) != neigh[NodeID(j)] {
				t.Fatalf("InRange(%d,%d) disagrees with adjacency", i, j)
			}
		}
	}
}

// TestPaperTableIDensity reproduces Table I of the paper: average degree for
// 200..600 nodes on the 400x400 field with 50 m range. The paper reports
// 8.8, 13.7, 18.6, 23.5, 28.4 — increments of exactly N·πr²/A per 100
// nodes, i.e. the analytic density with no boundary correction. Our
// simulated deployments lose edge-of-field coverage, so measured degrees
// run ~5-7% below the table; we check within ±2.5.
func TestPaperTableIDensity(t *testing.T) {
	paper := map[int]float64{200: 8.8, 300: 13.7, 400: 18.6, 500: 23.5, 600: 28.4}
	r := rng.New(2024)
	for n, want := range paper {
		var sum float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			net, err := Random(PaperConfig(n), r.Split(uint64(n*100+trial)))
			if err != nil {
				t.Fatal(err)
			}
			sum += net.AvgDegree()
		}
		got := sum / trials
		if math.Abs(got-want) > 2.5 {
			t.Errorf("N=%d: avg degree %.2f, paper reports %.2f", n, got, want)
		}
	}
}

func TestConnectivityDense(t *testing.T) {
	// 600 nodes at degree ~28 should be connected essentially always.
	net, _ := Random(PaperConfig(600), rng.New(5))
	if !net.Connected() {
		t.Fatal("dense network not connected")
	}
}

func TestReachableFromAndHops(t *testing.T) {
	net, _ := Grid(5, 10, 10.5) // 4-neighbor lattice plus center BS
	hops := net.HopDistances(0)
	for i, h := range hops {
		if h < 0 {
			t.Fatalf("node %d unreachable in grid", i)
		}
	}
	reach := net.ReachableFrom(0)
	if len(reach) != net.N() {
		t.Fatalf("ReachableFrom(0) = %d nodes, want %d", len(reach), net.N())
	}
}

// TestBFSAllocs pins the allocation count of the breadth-first helpers:
// the head-index queue walk allocates only the visited/result buffers (one
// each), never a reslice-churned queue. Both run on the protocol's repair
// hot path, so a regression here is a per-round cost.
func TestBFSAllocs(t *testing.T) {
	net, err := Random(PaperConfig(400), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(20, func() { net.ReachableFrom(0) }); got > 2 {
		t.Errorf("ReachableFrom allocates %.0f times per call, want <= 2", got)
	}
	if got := testing.AllocsPerRun(20, func() { net.HopDistances(0) }); got > 2 {
		t.Errorf("HopDistances allocates %.0f times per call, want <= 2", got)
	}
}

func TestGridDegrees(t *testing.T) {
	// Spacing 10, radius 10.5: lattice nodes link to 4-neighborhoods only.
	net, err := Grid(4, 10, 10.5)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 17 {
		t.Fatalf("N = %d", net.N())
	}
	// A corner lattice node (node 1 = (0,0)) has exactly 2 lattice
	// neighbors; the BS sits at (15,15), more than 10.5 away.
	if d := net.Degree(1); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
}

func TestRegular(t *testing.T) {
	net, err := Regular(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N(); i++ {
		if net.Degree(NodeID(i)) != 10 {
			t.Fatalf("node %d degree %d, want 10", i, net.Degree(NodeID(i)))
		}
	}
	if !net.Connected() {
		t.Fatal("circulant graph should be connected")
	}
}

func TestRegularValidation(t *testing.T) {
	for _, c := range []struct{ n, d int }{{10, 3}, {10, 0}, {4, 4}, {0, 2}} {
		if _, err := Regular(c.n, c.d); err == nil {
			t.Fatalf("Regular(%d,%d) should fail", c.n, c.d)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 0, FieldSide: 1, Range: 1}).Validate(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := (Config{Nodes: 1, FieldSide: 0, Range: 1}).Validate(); err == nil {
		t.Fatal("zero field accepted")
	}
	if err := (Config{Nodes: 1, FieldSide: 1, Range: 0}).Validate(); err == nil {
		t.Fatal("zero range accepted")
	}
	if _, err := Random(Config{}, rng.New(1)); err == nil {
		t.Fatal("Random accepted invalid config")
	}
}

func TestDegreeHistogramSums(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		net, err := Random(PaperConfig(150), rng.New(uint64(seed)))
		if err != nil {
			return false
		}
		total := 0
		for _, c := range net.DegreeHistogram() {
			total += c
		}
		return total == net.N()
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedAvgDegree(t *testing.T) {
	// 400 nodes in 400x400 with r=50: 400*pi*2500/160000 ~= 19.6 ignoring
	// boundary effects; simulated value (18.6 in the paper) is lower.
	got := ExpectedAvgDegree(PaperConfig(400))
	if math.Abs(got-19.63) > 0.05 {
		t.Fatalf("ExpectedAvgDegree = %v", got)
	}
}

func BenchmarkRandomDeploy600(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := Random(PaperConfig(600), r.Split(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
