// Package shard scales a single simulated trial across CPU cores by
// spatial decomposition, in two complementary modes.
//
// The coupled engine (this file) partitions the field into regions and
// runs one event kernel + radio medium (+ optional MAC) per region over a
// SHARED channel, synchronizing the kernels with a conservative,
// deadlock-free protocol. Physics stay exact: every cross-region frame is
// mirrored into the regions that could hear it, carrier sense and
// collisions included, and the merged outcome is event-for-event the one
// a single global world would produce. Because the radio model has zero
// propagation delay, the classic static lookahead (minimum link latency)
// is zero; the engine instead derives each region's safe horizon from its
// neighbors' earliest pending events — cross-region influence travels
// only on transmissions, and transmissions happen only AT events, so a
// region may safely execute everything strictly before the earliest thing
// any neighbor might still do. Reactive domains (MACs attached) can also
// emit transmissions their neighbors have not yet seen coming — an ACK or
// a handler-triggered send spawned by a frame still in flight — so there
// the horizon uses earliest-output times: a reaction needs its trigger
// frame fully received first, which takes at least one byte of airtime,
// and that positive bound propagates through the region graph by
// fixpoint relaxation (see Run).
//
// Two properties make the loop correct and deterministic (see DESIGN.md
// for the full argument):
//
//   - Neighboring regions are never runnable in the same parallel phase:
//     d runnable means next(d) < next(q) for every neighbor q, which
//     cannot hold symmetrically. Each parallel phase therefore advances
//     an independent set, and its exports cannot affect another running
//     region's past.
//   - When no region is runnable, every region whose next event lies at
//     the global minimum instant T executes exactly that instant
//     serially, in region-index order, with immediate cross-injection —
//     a fixed tie rule that makes results a function of region state
//     only, independent of worker count or goroutine schedule.
//
// The hierarchical mode (hier.go) trades the shared channel for
// frequency-planned cluster regions and is how trials reach 10^5-node
// fields; the coupled engine is the exact-physics substrate used when
// regions must share spectrum, and the oracle-equivalence tests pin it.
package shard

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Frame is one transmission exported across a region border, timestamped
// in simulated time. Data is a frame-private copy of the payload, shared
// read-only by every region the frame is injected into.
type Frame struct {
	At   eventsim.Time
	Src  topology.NodeID
	Dst  int32
	Size int
	Data []byte
}

// Domain is one region's simulation world: its own event kernel and
// medium (and MAC, when attached) over the FULL global network, with the
// nodes of other regions present only as passive mirrors — they occupy
// the channel when their home region transmits through them, but this
// domain never acts for them. Sharing the global node ID space means
// frames cross borders without header rewriting.
type Domain struct {
	Region int
	Sim    *eventsim.Sim
	Med    *radio.Medium
	MAC    *mac.MAC

	out []Frame // exports staged during the current phase, in emission order
	// pendingOut counts this domain's frames scheduled into neighbors but
	// not yet injected — a diagnostic for the engine's independence
	// property (a domain is never RUNNABLE while its exports are
	// pending; see advance). Atomic because different neighbors may
	// consume injections concurrently during a parallel phase.
	pendingOut atomic.Int64
}

// export stages a native transmission for cross-border distribution. The
// payload is copied into a frame-private buffer: the staged copy must
// survive until every target has injected it, and in the tie phase a
// same-instant cascade can legally re-enter this domain — and re-export —
// while a prior frame still awaits injection in a higher-index neighbor,
// so buffers cannot be recycled by staging slot.
func (d *Domain) export(src topology.NodeID, dst int32, frame []byte, size int) {
	n := len(d.out)
	if n < cap(d.out) {
		d.out = d.out[:n+1]
	} else {
		d.out = append(d.out, Frame{})
	}
	f := &d.out[n]
	f.At = d.Sim.Now()
	f.Src = src
	f.Dst = dst
	f.Size = size
	f.Data = append([]byte(nil), frame...)
}

// Coupled is the conservative parallel engine over one partition.
// Construction wires the domains; callers seed initial protocol events
// into domain kernels (or attach MACs and Send) and then call Run.
// The engine is driven from one goroutine; Run spawns and joins its own
// workers internally.
type Coupled struct {
	Part    *topology.Partition
	Domains []*Domain

	workers int
	rateBps float64
	// lookahead is the minimum delay between a frame injected into a
	// domain and any NEW native transmission that frame can cause there.
	// Pure radio domains never react (mirrors are passive, every native
	// transmission is pre-scheduled in its home domain), so the default is
	// +Inf and horizons come from neighbor queues alone. Attaching MACs
	// makes domains reactive — an ACK or a handler-triggered send follows
	// a reception — but a reaction needs the frame fully received first,
	// so it can start no earlier than one minimum frame airtime (one
	// byte on the air) after the inject: that airtime is the lookahead.
	lookahead eventsim.Time
	next      []eventsim.Time
	eot       []eventsim.Time
	horizon   []eventsim.Time
	runnable  []*Domain
	barriers  uint64
}

// NewCoupled builds one domain per region of part, each with a medium at
// rateBps over the shared global network. workers bounds the goroutines a
// parallel phase uses; values < 1 select 1. Results are independent of
// workers by construction.
func NewCoupled(part *topology.Partition, rateBps float64, workers int) *Coupled {
	if workers < 1 {
		workers = 1
	}
	c := &Coupled{
		Part:      part,
		Domains:   make([]*Domain, part.R()),
		workers:   workers,
		rateBps:   rateBps,
		lookahead: eventsim.Time(math.Inf(1)),
		next:      make([]eventsim.Time, part.R()),
		eot:       make([]eventsim.Time, part.R()),
		horizon:   make([]eventsim.Time, part.R()),
	}
	for i := range c.Domains {
		d := &Domain{Region: i, Sim: eventsim.New()}
		d.Med = radio.New(d.Sim, part.Net, rateBps)
		d.Med.SetTxHook(func(src topology.NodeID, dst int32, frame []byte, size int) {
			if len(part.Exports(src)) > 0 {
				d.export(src, dst, frame, size)
			}
		})
		c.Domains[i] = d
	}
	return c
}

// AttachMACs creates one MAC per domain and marks every non-owned node
// passive there: mirrors keep full radio physics but never ACK, deliver,
// or originate. stream supplies each region's private randomness (use
// deterministic per-region derivation, e.g. root.Split(region+1), so the
// draw sequence is a function of the region alone).
//
// Scheme-agnostic: under mac.SchemeTDMA every domain derives its slot
// table from its medium's network, and since each domain's medium holds
// the FULL global net (mirrors included), all domains compute identical
// tables independently — a mirrored sender transmits in the same slot in
// every region that hears it, no cross-domain slot exchange needed.
func (c *Coupled) AttachMACs(cfg mac.Config, stream func(region int) *rng.Stream) {
	c.lookahead = eventsim.Time(8 / c.rateBps) // one byte of airtime; see Coupled.lookahead
	n := c.Part.Net.N()
	for i, d := range c.Domains {
		d.MAC = mac.New(d.Sim, d.Med, n, cfg, stream(i))
		for id := 0; id < n; id++ {
			if int(c.Part.Owner[id]) != i {
				d.MAC.SetPassive(topology.NodeID(id), true)
			}
		}
	}
}

// distribute schedules d's staged exports into every region their sender
// is audible from. Called serially (never during a parallel phase), in
// region-index order across domains, so injection ordering — and with it
// every target kernel's event sequence — is a deterministic function of
// region states.
func (c *Coupled) distribute(d *Domain) {
	for i := range d.out {
		f := &d.out[i]
		for _, q := range c.Part.Exports(f.Src) {
			t := c.Domains[q]
			d.pendingOut.Add(1)
			src, dst, data, size := f.Src, f.Dst, f.Data, f.Size
			t.Sim.At(f.At, func() {
				t.Med.InjectForeign(src, dst, data, size)
				d.pendingOut.Add(-1)
			})
		}
	}
	d.out = d.out[:0]
}

// advance runs one domain up to its horizon, staging exports locally.
func (c *Coupled) advance(d *Domain, limit eventsim.Time) {
	if d.pendingOut.Load() != 0 {
		panic("shard: domain advanced while its exported frames were still pending")
	}
	d.Sim.RunUntil(limit)
}

// Barriers returns the number of synchronization rounds Run executed —
// a diagnostic for tests and tuning, never part of experiment output.
func (c *Coupled) Barriers() uint64 { return c.barriers }

// Run executes the coupled simulation until every domain's queue drains.
//
// Each round either advances, in parallel, every region whose next event
// lies strictly before all of its neighbors' next events (an independent
// set — see the package comment), or, when no region qualifies, executes
// the globally earliest instant serially in region-index order with
// immediate cross-injection. Exports are distributed between phases, in
// region order. Every injected frame's timestamp is provably >= its
// target's clock, so eventsim's monotonic-time guard doubles as the
// engine's soundness check.
func (c *Coupled) Run() {
	inf := eventsim.Time(math.Inf(1))
	for {
		c.barriers++
		// Earliest-output times: eot[i] bounds, from below, when region i
		// could next put a NEW frame on a border. Without reactions that is
		// its earliest known event; with reactions (finite lookahead L) a
		// neighbor's output at u can cascade into output here at u+L, so
		// eot is the fixpoint of eot[i] = min(next[i], min over neighbors q
		// of eot[q]+L) — a shortest-path relaxation over the region graph,
		// iterated in index order until stable (deterministic, and L > 0
		// guarantees convergence).
		earliest := inf
		for i, d := range c.Domains {
			if next, ok := d.Sim.NextAt(); ok {
				c.next[i] = next
				if next < earliest {
					earliest = next
				}
			} else {
				c.next[i] = inf
			}
		}
		if earliest == inf {
			return // all queues drained
		}
		copy(c.eot, c.next)
		if c.lookahead < inf {
			for changed := true; changed; {
				changed = false
				for i := range c.Domains {
					for _, q := range c.Part.Neighbors(i) {
						if v := c.eot[q] + c.lookahead; v < c.eot[i] {
							c.eot[i] = v
							changed = true
						}
					}
				}
			}
		}
		// A region may run everything strictly before anything a neighbor
		// could still emit; collect the runnable set.
		c.runnable = c.runnable[:0]
		for i, d := range c.Domains {
			if c.next[i] == inf {
				continue
			}
			h := inf
			for _, q := range c.Part.Neighbors(i) {
				if c.eot[q] < h {
					h = c.eot[q]
				}
			}
			if c.next[i] < h {
				c.horizon[i] = h
				c.runnable = append(c.runnable, d)
			}
		}
		if len(c.runnable) > 0 {
			run := c.runnable
			if c.workers == 1 || len(run) == 1 {
				for _, d := range run {
					c.advance(d, c.horizon[d.Region])
				}
			} else {
				w := c.workers
				if w > len(run) {
					w = len(run)
				}
				var wg sync.WaitGroup
				for g := 0; g < w; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for j := g; j < len(run); j += w {
							c.advance(run[j], c.horizon[run[j].Region])
						}
					}(g)
				}
				wg.Wait()
			}
			for _, d := range c.Domains {
				if len(d.out) > 0 {
					c.distribute(d)
				}
			}
			continue
		}
		// Tie phase: no region can prove progress, so the earliest instant
		// is executed serially in region-index order. Immediate distribution
		// lets a later region see an earlier region's same-instant frames
		// within this very phase; frames flowing "backwards" (to a region
		// already past its RunAt) land at timestamp T with the target clock
		// at exactly T and are consumed next round.
		for _, d := range c.Domains {
			if next, ok := d.Sim.NextAt(); ok && next == earliest {
				d.Sim.RunAt(earliest)
				if len(d.out) > 0 {
					c.distribute(d)
				}
			}
		}
	}
}
