package shard

import (
	"sort"
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// regionStreams derives each domain's private MAC randomness from one
// root, by region index only.
func regionStreams(seed uint64) func(region int) *rng.Stream {
	root := rng.New(seed)
	return func(region int) *rng.Stream { return root.Split(uint64(region) + 1) }
}

// TestMACCrossBorderARQ exercises the full stop-and-wait handshake across
// a region border: the data frame crosses src→dst as an injected mirror
// frame, the ACK crosses back the same way, and neither domain
// double-counts the exchange.
func TestMACCrossBorderARQ(t *testing.T) {
	net := borderNet(t)
	part := topology.PartitionGrid(net, 2)
	src, dst := lattice(2, 2), lattice(3, 2)
	if part.Owner[src] == part.Owner[dst] {
		t.Fatalf("src %d and dst %d landed in the same region %d", src, dst, part.Owner[src])
	}
	c := NewCoupled(part, radio.PaperRate, 2)
	c.AttachMACs(mac.DefaultConfig(), regionStreams(42))

	home := c.Domains[part.Owner[dst]]
	away := c.Domains[part.Owner[src]]
	delivered, spurious := 0, 0
	var got packet.Packet
	home.MAC.SetHandler(dst, func(_ topology.NodeID, p *packet.Packet) { got = *p; delivered++ })
	away.MAC.SetHandler(dst, func(_ topology.NodeID, p *packet.Packet) { spurious++ })

	pkt := &packet.Packet{
		Header: packet.Header{Kind: packet.KindAggregate, Src: int32(src), Dst: int32(dst), Round: 9},
		Value:  123,
	}
	away.Sim.At(0, func() { away.MAC.Send(src, pkt) })
	c.Run()

	if delivered != 1 {
		t.Fatalf("delivered %d times in dst's home domain, want 1", delivered)
	}
	if got.Round != 9 || got.Value != 123 {
		t.Fatalf("delivered packet corrupted: %+v", got)
	}
	if spurious != 0 {
		t.Fatalf("passive mirror of dst delivered %d frames in src's domain", spurious)
	}
	hs, as := home.MAC.Stats(), away.MAC.Stats()
	if hs.AcksSent != 1 {
		t.Fatalf("dst domain AcksSent = %d, want 1", hs.AcksSent)
	}
	if as.AcksSent != 0 {
		t.Fatalf("src domain AcksSent = %d, want 0 (dst is passive there)", as.AcksSent)
	}
	if as.Retries != 0 || as.Dropped != 0 {
		t.Fatalf("src domain saw retries/drops: %+v", as)
	}
}

type delivery struct {
	at    eventsim.Time
	self  topology.NodeID
	src   int32
	round uint16
}

// runMACTraffic drives scripted unicast traffic through a coupled engine
// with MACs attached and returns the merged, sorted delivery log plus the
// per-domain MAC stats.
func runMACTraffic(t *testing.T, net *topology.Network, regions, workers int, cfg mac.Config) ([]delivery, []mac.Stats) {
	t.Helper()
	part := topology.PartitionGrid(net, regions)
	c := NewCoupled(part, radio.PaperRate, workers)
	c.AttachMACs(cfg, regionStreams(7))
	logs := make([][]delivery, len(c.Domains))
	for i, d := range c.Domains {
		d, region := d, i
		for id := 0; id < net.N(); id++ {
			if int(part.Owner[id]) != region {
				continue
			}
			self := topology.NodeID(id)
			d.MAC.SetHandler(self, func(_ topology.NodeID, p *packet.Packet) {
				logs[region] = append(logs[region], delivery{d.Sim.Now(), self, p.Src, p.Round})
			})
		}
	}
	for id := 1; id < net.N(); id++ {
		src := topology.NodeID(id)
		nbs := net.Neighbors(src)
		if len(nbs) == 0 {
			continue
		}
		dst := nbs[id%len(nbs)]
		d := c.Domains[part.Owner[src]]
		at := eventsim.Time(id) * 0.0017
		round := uint16(id)
		d.Sim.At(at, func() {
			d.MAC.Send(src, &packet.Packet{
				Header: packet.Header{Kind: packet.KindAggregate, Src: int32(src), Dst: int32(dst), Round: round},
				Value:  int64(id),
			})
		})
	}
	c.Run()
	var all []delivery
	for _, l := range logs {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.self != b.self {
			return a.self < b.self
		}
		return a.round < b.round
	})
	stats := make([]mac.Stats, len(c.Domains))
	for i, d := range c.Domains {
		stats[i] = d.MAC.Stats()
	}
	return all, stats
}

// TestCoupledWorkerIndependence pins the engine's determinism guarantee at
// the MAC layer: identical delivery logs and per-domain MAC counters for 1
// and 8 workers. Run under -race this also exercises the parallel phase
// for data races.
func TestCoupledWorkerIndependence(t *testing.T) {
	net := borderNet(t)
	for _, regions := range []int{2, 4} {
		want, wantStats := runMACTraffic(t, net, regions, 1, mac.DefaultConfig())
		if len(want) == 0 {
			t.Fatalf("regions=%d: no deliveries at all", regions)
		}
		got, gotStats := runMACTraffic(t, net, regions, 8, mac.DefaultConfig())
		if len(got) != len(want) {
			t.Fatalf("regions=%d: %d deliveries with 8 workers, %d with 1", regions, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("regions=%d: delivery %d = %+v with 8 workers, %+v with 1", regions, i, got[i], want[i])
			}
		}
		for i := range wantStats {
			if gotStats[i] != wantStats[i] {
				t.Fatalf("regions=%d: domain %d stats %+v with 8 workers, %+v with 1",
					regions, i, gotStats[i], wantStats[i])
			}
		}
	}
}

// TestCoupledTDMA pins the slotted MAC on the coupled engine: every
// domain independently derives the same global slot table (each domain's
// medium holds the full net, mirrors included), the schedule stays
// contention-free across domains — zero retries, drops, or deferrals —
// and delivery logs remain worker-count independent.
func TestCoupledTDMA(t *testing.T) {
	cfg := mac.DefaultConfig()
	cfg.Scheme = mac.SchemeTDMA
	net := borderNet(t)
	for _, regions := range []int{2, 4} {
		want, wantStats := runMACTraffic(t, net, regions, 1, cfg)
		if len(want) == 0 {
			t.Fatalf("regions=%d: no deliveries at all", regions)
		}
		got, gotStats := runMACTraffic(t, net, regions, 8, cfg)
		if len(got) != len(want) {
			t.Fatalf("regions=%d: %d deliveries with 8 workers, %d with 1", regions, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("regions=%d: delivery %d = %+v with 8 workers, %+v with 1", regions, i, got[i], want[i])
			}
		}
		for i := range wantStats {
			if gotStats[i] != wantStats[i] {
				t.Fatalf("regions=%d: domain %d stats %+v with 8 workers, %+v with 1",
					regions, i, gotStats[i], wantStats[i])
			}
			if s := wantStats[i]; s.Retries != 0 || s.Dropped != 0 || s.Deferred != 0 {
				t.Fatalf("regions=%d: contention in domain %d under TDMA: %+v", regions, i, s)
			}
		}
	}
	// The per-domain slot tables must agree node for node: passive-mirror
	// awareness is exactly "a mirrored sender owns the same slot
	// everywhere it is audible".
	part := topology.PartitionGrid(net, 4)
	c := NewCoupled(part, radio.PaperRate, 1)
	c.AttachMACs(cfg, regionStreams(7))
	base := c.Domains[0].MAC
	for i, d := range c.Domains[1:] {
		for id := 0; id < net.N(); id++ {
			if d.MAC.Slot(topology.NodeID(id)) != base.Slot(topology.NodeID(id)) {
				t.Fatalf("domain %d slot table differs from domain 0 at node %d", i+1, id)
			}
		}
	}
}

func TestDefaultRegions(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {100, 1}, {250, 1}, {400, 2}, {2000, 8}, {10000, 40}, {100000, 400}, {1000000, 512},
	}
	for _, c := range cases {
		if got := DefaultRegions(c.n); got != c.want {
			t.Fatalf("DefaultRegions(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func hierNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(500), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestHierShardIndependence pins the scale path's determinism: the
// backbone outcome is byte-identical for every shard count, and for a
// pooled arena reused across runs versus fresh construction.
func TestHierShardIndependence(t *testing.T) {
	net := hierNet(t)
	plan := NewPlan(net, 4)
	if plan.Part.R() < 2 {
		t.Fatalf("plan has %d regions, want >= 2", plan.Part.R())
	}
	want, err := RunHier(plan, core.DefaultConfig(), rng.New(2024).Split(2), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		got, err := RunHier(plan, core.DefaultConfig(), rng.New(2024).Split(2), shards, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("shards=%d: outcome %+v, shards=1 gave %+v", shards, got, want)
		}
	}
	arena := world.New()
	for trial := 0; trial < 2; trial++ {
		got, err := RunHier(plan, core.DefaultConfig(), rng.New(2024).Split(2), 4, arena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pooled trial %d: outcome %+v, fresh gave %+v", trial, got, want)
		}
	}
}

// TestHierSanity checks the hierarchical outcome against the protocol's
// own invariants on a clean channel.
func TestHierSanity(t *testing.T) {
	net := hierNet(t)
	plan := NewPlan(net, 4)
	out, err := RunHier(plan, core.DefaultConfig(), rng.New(2024).Split(2), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, m := range plan.Members {
		if len(m) > 0 {
			nonEmpty++
		}
	}
	if out.Regions != nonEmpty {
		t.Fatalf("Regions = %d, want %d non-empty regions", out.Regions, nonEmpty)
	}
	if out.Participants <= 0 || out.Participants > net.N() {
		t.Fatalf("Participants = %d out of %d nodes", out.Participants, net.N())
	}
	if !out.AllAccepted || out.Accepted != out.Regions {
		t.Fatalf("backbone rejected: %+v", out)
	}
	cfg := core.DefaultConfig()
	if out.Diff() > cfg.Threshold*int64(out.Regions) {
		t.Fatalf("|S_b - S_r| = %d exceeds summed slack %d", out.Diff(), cfg.Threshold*int64(out.Regions))
	}
	if out.Red <= 0 || out.Bytes == 0 || out.Frames == 0 {
		t.Fatalf("degenerate outcome: %+v", out)
	}
}
