package shard

import (
	"sort"
	"testing"

	"github.com/ipda-sim/ipda/internal/eventsim"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/radio"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// tx is one scripted transmission for the oracle comparison: the same
// script drives the single-world oracle and every sharded configuration.
type tx struct {
	at   eventsim.Time
	src  topology.NodeID
	dst  int32
	size int
	tag  byte // payload marker so tap logs identify the frame
}

// airEvent is one tap observation, the comparison unit of the oracle
// tests. Equal multisets of airEvents mean the shared channel behaved
// identically: same frames audible at the same nodes at the same times
// with the same collision outcomes.
type airEvent struct {
	at       eventsim.Time
	observer topology.NodeID
	src      topology.NodeID
	dst      int32
	tag      byte
	collided bool
}

type probe struct {
	at   eventsim.Time
	node topology.NodeID
}

func sortAir(evs []airEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.observer != b.observer {
			return a.observer < b.observer
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.tag < b.tag
	})
}

// runOracle executes the script on one global world and returns the full
// tap log plus carrier-sense probe results.
func runOracle(script []tx, probes []probe, net *topology.Network) ([]airEvent, []bool) {
	sim := eventsim.New()
	med := radio.New(sim, net, radio.PaperRate)
	var log []airEvent
	med.AddTap(func(obs topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool) {
		log = append(log, airEvent{sim.Now(), obs, src, int32(dst), frame[0], collided})
	})
	for _, s := range script {
		s := s
		sim.At(s.at, func() { med.Transmit(s.src, s.dst, []byte{s.tag}, s.size) })
	}
	sense := make([]bool, len(probes))
	for i, p := range probes {
		i, p := i, p
		sim.At(p.at, func() { sense[i] = med.Busy(p.node) })
	}
	sim.RunAll()
	return log, sense
}

// runSharded executes the same script across a coupled partition:
// transmissions fire in their sender's home domain, taps record only at
// owned observers (a mirror's outcome belongs to its home region), and
// each probe asks the probed node's home domain.
func runSharded(script []tx, probes []probe, net *topology.Network, regions, workers int) ([]airEvent, []bool) {
	part := topology.PartitionGrid(net, regions)
	c := NewCoupled(part, radio.PaperRate, workers)
	// One log per domain: taps fire inside domain goroutines during
	// parallel phases, so a shared slice would race.
	logs := make([][]airEvent, len(c.Domains))
	for i, d := range c.Domains {
		d, region := d, i
		d.Med.AddTap(func(obs topology.NodeID, src, dst topology.NodeID, frame []byte, collided bool) {
			if int(part.Owner[obs]) == region {
				logs[region] = append(logs[region], airEvent{d.Sim.Now(), obs, src, int32(dst), frame[0], collided})
			}
		})
	}
	for _, s := range script {
		s := s
		d := c.Domains[part.Owner[s.src]]
		d.Sim.At(s.at, func() { d.Med.Transmit(s.src, s.dst, []byte{s.tag}, s.size) })
	}
	sense := make([]bool, len(probes))
	for i, p := range probes {
		i, p := i, p
		d := c.Domains[part.Owner[p.node]]
		d.Sim.At(p.at, func() { sense[i] = d.Med.Busy(p.node) })
	}
	c.Run()
	var log []airEvent
	for _, l := range logs {
		log = append(log, l...)
	}
	return log, sense
}

// assertOracleMatch runs the script through the oracle and through
// sharded configurations with 2, 4, and 8 requested regions (at 1 and 4
// workers each) and requires tap logs and carrier-sense probes to match
// event for event.
func assertOracleMatch(t *testing.T, name string, net *topology.Network, script []tx, probes []probe) {
	t.Helper()
	wantLog, wantSense := runOracle(script, probes, net)
	sortAir(wantLog)
	for _, regions := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			gotLog, gotSense := runSharded(script, probes, net, regions, workers)
			sortAir(gotLog)
			if len(gotLog) != len(wantLog) {
				t.Fatalf("%s regions=%d workers=%d: %d air events, oracle has %d",
					name, regions, workers, len(gotLog), len(wantLog))
			}
			for i := range wantLog {
				if gotLog[i] != wantLog[i] {
					t.Fatalf("%s regions=%d workers=%d: air event %d = %+v, oracle %+v",
						name, regions, workers, i, gotLog[i], wantLog[i])
				}
			}
			for i := range wantSense {
				if gotSense[i] != wantSense[i] {
					t.Fatalf("%s regions=%d workers=%d: probe %d (node %d at %v) = %v, oracle %v",
						name, regions, workers, i, probes[i].node, probes[i].at, gotSense[i], wantSense[i])
				}
			}
		}
	}
}

// borderNet is a 6x6 lattice (spacing 40 m, range 50 m) plus the base
// station: only rank-1 lattice neighbors are in range, and a vertical
// partition border runs through the middle with several nodes within one
// transmission range of it on both sides.
func borderNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.Grid(6, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// lattice returns the node ID of lattice position (x, y) in borderNet
// (IDs start at 1; 0 is the base station at the field center).
func lattice(x, y int) topology.NodeID { return topology.NodeID(1 + y*6 + x) }

func TestBoundaryPhysics(t *testing.T) {
	net := borderNet(t)
	dur := eventsim.Time(30 * 8 / radio.PaperRate) // 30-byte frame airtime
	cases := []struct {
		name   string
		script []tx
		probes []probe
	}{
		{
			// A unicast frame whose sender and receiver straddle the border.
			name: "cross-border delivery",
			script: []tx{
				{at: 0, src: lattice(2, 2), dst: int32(lattice(3, 2)), size: 30, tag: 1},
			},
		},
		{
			// Two senders on opposite sides of the border, in range of each
			// other, overlapping in time: every common hearer must see the
			// collision, on both sides.
			name: "cross-border collision",
			script: []tx{
				{at: 0, src: lattice(2, 2), dst: packet.Broadcast, size: 30, tag: 1},
				{at: dur / 3, src: lattice(3, 2), dst: packet.Broadcast, size: 30, tag: 2},
			},
		},
		{
			// Hidden terminals: senders 80 m apart (out of range of each
			// other) with the victim between them on the border. Neither
			// sender defers, the victim loses both frames.
			name: "hidden terminal across border",
			script: []tx{
				{at: 0, src: lattice(2, 3), dst: int32(lattice(3, 3)), size: 30, tag: 1},
				{at: dur / 2, src: lattice(4, 3), dst: int32(lattice(3, 3)), size: 30, tag: 2},
			},
		},
		{
			// Carrier sense: while a region-0 node transmits, its region-1
			// neighbors must sense busy; nodes out of range must not.
			name: "carrier sense across border",
			script: []tx{
				{at: 0, src: lattice(2, 1), dst: packet.Broadcast, size: 30, tag: 1},
			},
			probes: []probe{
				{at: dur / 2, node: lattice(3, 1)}, // in range, other region: busy
				{at: dur / 2, node: lattice(5, 1)}, // out of range: idle
				{at: 2 * dur, node: lattice(3, 1)}, // after end of air: idle
			},
		},
		{
			// Half-duplex: the addressed receiver is itself transmitting
			// when the cross-border frame arrives and must not decode it.
			name: "half-duplex at border",
			script: []tx{
				{at: 0, src: lattice(3, 4), dst: packet.Broadcast, size: 60, tag: 1},
				{at: dur / 4, src: lattice(2, 4), dst: int32(lattice(3, 4)), size: 30, tag: 2},
			},
		},
		{
			// Same-instant starts on both sides of the border — the tie
			// phase of the engine: both frames must corrupt each other at
			// common hearers exactly as the single world resolves it.
			name: "simultaneous cross-border starts",
			script: []tx{
				{at: 0.001, src: lattice(2, 2), dst: packet.Broadcast, size: 30, tag: 1},
				{at: 0.001, src: lattice(3, 2), dst: packet.Broadcast, size: 30, tag: 2},
			},
		},
		{
			// Far-apart transmitters in different regions at the same time:
			// no false coupling, both deliver cleanly.
			name: "out-of-range independence",
			script: []tx{
				{at: 0, src: lattice(0, 0), dst: int32(lattice(1, 0)), size: 30, tag: 1},
				{at: 0, src: lattice(5, 5), dst: int32(lattice(4, 5)), size: 30, tag: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertOracleMatch(t, tc.name, net, tc.script, tc.probes)
		})
	}
}

// TestBoundarySoak drives a deterministic random script — every node
// transmitting repeatedly with varied sizes, destinations, and overlap —
// and requires the sharded engine to match the oracle frame-for-frame.
// Per-node send times are spaced past each frame's airtime so the script
// never violates the radio's transmit-while-transmitting contract.
func TestBoundarySoak(t *testing.T) {
	net := borderNet(t)
	r := rng.New(0xB0A7)
	var script []tx
	nextFree := make([]eventsim.Time, net.N())
	for i := 0; i < 400; i++ {
		src := topology.NodeID(r.Intn(net.N()))
		size := 20 + r.Intn(60)
		at := eventsim.Time(r.Float64() * 0.25)
		if at < nextFree[src] {
			at = nextFree[src]
		}
		dst := packet.Broadcast
		if nbs := net.Neighbors(src); len(nbs) > 0 && r.Bool(0.5) {
			dst = int32(nbs[r.Intn(len(nbs))])
		}
		nextFree[src] = at + eventsim.Time(float64(size)*8/radio.PaperRate) + 1e-6
		script = append(script, tx{at: at, src: src, dst: dst, size: size, tag: byte(i)})
	}
	assertOracleMatch(t, "soak", net, script, nil)
}
