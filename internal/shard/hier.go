// Hierarchical sharded aggregation: the path to 10^5-node fields.
//
// Where the coupled engine (shard.go) keeps every region on one shared
// channel and pays for it with synchronization, the hierarchical mode
// gives each cluster region its own channel — the standard
// frequency-planning assumption of large-scale WSN deployments — so the
// regions' event kernels never interact and execute embarrassingly
// parallel across shard workers. Each region runs a full iPDA instance
// (Phase I disjoint trees, Phase II slicing, Phase III dual aggregation)
// over the subnetwork induced by its nodes, rooted at a cluster head, and
// the heads feed the red/blue backbone: the global red total is the sum
// of regional red totals, blue likewise, and the base station accepts
// only if every region passed its own |S_b − S_r| ≤ Th check and the
// backbone sums agree within the summed slack. Shards (worker count) is
// execution-only parallelism: region outcomes depend on (subnet, config,
// region seed) alone, so tables are byte-identical for any shard count.
package shard

import (
	"fmt"
	"sync"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/world"
)

// Plan is a cluster decomposition of one deployment: the spatial
// partition plus, per region, the member list in local-ID order (cluster
// head first, so the head becomes local node 0 — the base-station role —
// in the induced subnet). Regions that own no nodes have a nil member
// list and are skipped by RunHier.
type Plan struct {
	Part    *topology.Partition
	Heads   []topology.NodeID   // global ID of each region's cluster head, -1 when empty
	Members [][]topology.NodeID // per region: head first, then the rest ascending
}

// DefaultRegions returns the region count the scale experiments use for
// an n-node field: one cluster per ~250 nodes, the size band the
// single-world experiments validated, clamped to [1, 512].
func DefaultRegions(n int) int {
	r := (n + 125) / 250
	if r < 1 {
		r = 1
	}
	if r > 512 {
		r = 512
	}
	return r
}

// NewPlan partitions net into about the requested number of regions and
// elects cluster heads: the global base station (node 0) heads its own
// region; every other region is headed by its node closest to the region
// rectangle's center (ties to the lowest ID). Purely geometric, hence a
// deterministic function of (net, regions).
func NewPlan(net *topology.Network, regions int) *Plan {
	part := topology.PartitionGrid(net, regions)
	p := &Plan{
		Part:    part,
		Heads:   make([]topology.NodeID, part.R()),
		Members: make([][]topology.NodeID, part.R()),
	}
	for r := range part.Regions {
		reg := &part.Regions[r]
		if len(reg.Owned) == 0 {
			p.Heads[r] = topology.None
			continue
		}
		head := reg.Owned[0]
		if int(part.Owner[0]) == r {
			head = 0
		} else {
			center := reg.Bounds.Center()
			best := net.Positions[head].Dist2(center)
			for _, id := range reg.Owned[1:] {
				if d := net.Positions[id].Dist2(center); d < best {
					best = d
					head = id
				}
			}
		}
		members := make([]topology.NodeID, 0, len(reg.Owned))
		members = append(members, head)
		for _, id := range reg.Owned {
			if id != head {
				members = append(members, id)
			}
		}
		p.Heads[r] = head
		p.Members[r] = members
	}
	return p
}

// HierOutcome is the backbone's view of one hierarchical COUNT query.
// Every field is a deterministic function of (plan, cfg, seeds) — no
// wall-clock, no worker- or shard-dependent values — so experiment tables
// built from it stay byte-identical across shard counts.
type HierOutcome struct {
	Regions      int   // regions that ran (own at least one node)
	Participants int   // nodes that sliced, summed over regions
	Red, Blue    int64 // backbone totals: sums of regional S_r, S_b
	Accepted     int   // regions whose every round passed its Th check
	AllAccepted  bool  // every region accepted and backbone slack holds
	Bytes        uint64
	Frames       uint64
}

// Diff returns the backbone's |S_b − S_r|.
func (o HierOutcome) Diff() int64 {
	d := o.Blue - o.Red
	if d < 0 {
		d = -d
	}
	return d
}

// RunHier executes one hierarchical COUNT query over the plan: every
// non-empty region runs an independent iPDA instance on the subnetwork
// induced by its members (head as local base station), and the regional
// totals are combined on the backbone. shards is the number of worker
// goroutines (< 1 selects 1); regions are striped statically (worker w
// takes regions w, w+shards, ...) and each worker runs on its own
// sub-arena of arena, so sharding composes with world reuse without
// cross-goroutine state. root supplies the per-region seeds, derived by
// region index before any parallelism starts.
//
// traces, when non-nil, collects each region's query trace under the slot
// "region/<r>". Slots are keyed by region index — never by worker — and
// minted through the bundle's mutex, so the exported trace is
// byte-identical for every shards value.
func RunHier(plan *Plan, cfg core.Config, root *rng.Stream, shards int, arena *world.Arena, traces *qtrace.TrialTraces) (HierOutcome, error) {
	if shards < 1 {
		shards = 1
	}
	R := plan.Part.R()
	if shards > R {
		shards = R
	}
	seeds := make([]uint64, R)
	for r := 0; r < R; r++ {
		seeds[r] = root.Split(uint64(r) + 1).Uint64()
	}

	type regionOut struct {
		ran          bool
		participants int
		red, blue    int64
		accepted     bool
		bytes        uint64
		frames       uint64
		err          error
	}
	outs := make([]regionOut, R)

	// Sub-arenas must exist before the workers start: Sub grows the
	// parent's table and is not safe to call concurrently.
	subs := make([]*world.Arena, shards)
	for w := range subs {
		subs[w] = arena.Sub(w)
	}

	runRegion := func(w, r int) {
		o := &outs[r]
		members := plan.Members[r]
		if len(members) == 0 {
			return
		}
		o.ran = true
		sub := subs[w]
		net := sub.Induced(plan.Part.Net, members)
		rcfg := cfg
		if traces != nil {
			rcfg.QTrace = traces.Tracer(fmt.Sprintf("region/%d", r))
		}
		inst, err := sub.Core("shard/hier", net, rcfg, seeds[r])
		if err != nil {
			o.err = fmt.Errorf("shard: region %d: %w", r, err)
			return
		}
		res, err := inst.RunCount()
		if err != nil {
			o.err = fmt.Errorf("shard: region %d: %w", r, err)
			return
		}
		for _, round := range res.Outcomes {
			o.participants += round.Participants
			o.red += round.Red
			o.blue += round.Blue
		}
		o.accepted = res.Accepted
		o.bytes = inst.Medium.TotalBytes()
		o.frames = inst.Medium.Stats().FramesSent
	}

	if shards == 1 {
		for r := 0; r < R; r++ {
			runRegion(0, r)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := w; r < R; r += shards {
					runRegion(w, r)
				}
			}(w)
		}
		wg.Wait()
	}

	// Backbone combination, serial and in region order: sum the regional
	// red/blue totals and apply the paper's acceptance rule region by
	// region, with the global slack the sum of regional slacks.
	var out HierOutcome
	for r := 0; r < R; r++ {
		o := &outs[r]
		if o.err != nil {
			return HierOutcome{}, o.err
		}
		if !o.ran {
			continue
		}
		out.Regions++
		out.Participants += o.participants
		out.Red += o.red
		out.Blue += o.blue
		if o.accepted {
			out.Accepted++
		}
		out.Bytes += o.bytes
		out.Frames += o.frames
	}
	out.AllAccepted = out.Accepted == out.Regions &&
		out.Diff() <= cfg.Threshold*int64(out.Regions)
	return out, nil
}
