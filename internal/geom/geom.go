// Package geom provides the 2D geometry primitives the deployment and
// radio-range models are built on: points, rectangles, and a uniform-grid
// spatial index for fast fixed-radius neighbor queries.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the deployment plane, in meters.
type Point struct {
	X, Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Use this
// for range comparisons to avoid the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns the square [0,side] x [0,side].
func Square(side float64) Rect {
	return Rect{0, 0, side, side}
}

// Width returns the extent of r along X.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along Y.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// GridIndex is a uniform-grid spatial index over a fixed set of points,
// specialized for fixed-radius neighbor queries: cells are sized to the
// query radius so a query inspects at most 9 cells.
//
// Cell contents are stored CSR-style: one flat array of point indices
// grouped by cell, with an offsets table, rather than one slice per cell.
// That makes backing-storage growth explicit — Rebuild touches exactly
// three arrays, each grown geometrically and only when the deployment
// outgrows them — so rebuilding at wildly different sizes (a 100k-node
// field after a 400-node one, or repartitioning shard regions per trial)
// reaches a zero-allocation steady state instead of re-growing thousands
// of per-cell buckets.
type GridIndex struct {
	bounds    Rect
	cellSize  float64
	cols      int
	rows      int
	cellStart []int32 // CSR offsets into cellPts; len cols*rows+1
	cellPts   []int32 // point indices grouped by cell, point-index order within each
	cursor    []int32 // per-cell insertion cursors, Rebuild scratch
	points    []Point
}

// growI32 returns s resized to n, reallocating only when capacity is
// exceeded and then growing geometrically so a sequence of rebuilds at
// increasing sizes settles after O(log max) allocations.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		return make([]int32, n, c)
	}
	return s[:n]
}

// NewGridIndex builds an index over points with cells sized for queries of
// the given radius. The radius must be positive.
func NewGridIndex(bounds Rect, points []Point, radius float64) *GridIndex {
	g := &GridIndex{}
	g.Rebuild(bounds, points, radius)
	return g
}

// Rebuild reinitializes g over a new point set, reusing the per-cell
// backing arrays from previous builds: an index that is rebuilt repeatedly
// over similarly sized deployments stops allocating once the cell grid has
// grown to its steady-state shape. Cell contents are identical to a fresh
// NewGridIndex over the same inputs (insertion in point-index order), so
// query results do not depend on the index's history. The radius must be
// positive.
func (g *GridIndex) Rebuild(bounds Rect, points []Point, radius float64) {
	if radius <= 0 {
		panic("geom: NewGridIndex radius must be positive")
	}
	g.bounds = bounds
	g.cellSize = radius
	g.points = points
	g.cols = int(math.Ceil(bounds.Width()/radius)) + 1
	g.rows = int(math.Ceil(bounds.Height()/radius)) + 1
	if g.cols < 1 {
		g.cols = 1
	}
	if g.rows < 1 {
		g.rows = 1
	}
	// Counting sort into the flat CSR arrays: count per cell, prefix-sum
	// into offsets, then place indices at per-cell cursors. Placement scans
	// points in index order, so each cell's contents are in point-index
	// order — the same order per-cell append insertion produced.
	ncells := g.cols * g.rows
	g.cellStart = growI32(g.cellStart, ncells+1)
	clear(g.cellStart)
	for _, p := range points {
		g.cellStart[g.cellOf(p)+1]++
	}
	for c := 1; c <= ncells; c++ {
		g.cellStart[c] += g.cellStart[c-1]
	}
	g.cellPts = growI32(g.cellPts, len(points))
	g.cursor = growI32(g.cursor, ncells)
	copy(g.cursor, g.cellStart[:ncells])
	for i, p := range points {
		c := g.cellOf(p)
		g.cellPts[g.cursor[c]] = int32(i)
		g.cursor[c]++
	}
}

func (g *GridIndex) cellOf(p Point) int {
	cx := int((p.X - g.bounds.MinX) / g.cellSize)
	cy := int((p.Y - g.bounds.MinY) / g.cellSize)
	cx = clamp(cx, 0, g.cols-1)
	cy = clamp(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Neighbors appends to dst the indices of all points within radius of the
// point with index i (excluding i itself) and returns the extended slice.
// The radius must be at most the radius the index was built with.
func (g *GridIndex) Neighbors(i int, radius float64, dst []int) []int {
	p := g.points[i]
	r2 := radius * radius
	cx := clamp(int((p.X-g.bounds.MinX)/g.cellSize), 0, g.cols-1)
	cy := clamp(int((p.Y-g.bounds.MinY)/g.cellSize), 0, g.rows-1)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
				continue
			}
			c := y*g.cols + x
			for _, j := range g.cellPts[g.cellStart[c]:g.cellStart[c+1]] {
				if int(j) == i {
					continue
				}
				if p.Dist2(g.points[j]) <= r2 {
					dst = append(dst, int(j))
				}
			}
		}
	}
	return dst
}

// NeighborsOf appends indices of all points within radius of an arbitrary
// query point q and returns the extended slice.
func (g *GridIndex) NeighborsOf(q Point, radius float64, dst []int) []int {
	r2 := radius * radius
	cx := clamp(int((q.X-g.bounds.MinX)/g.cellSize), 0, g.cols-1)
	cy := clamp(int((q.Y-g.bounds.MinY)/g.cellSize), 0, g.rows-1)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
				continue
			}
			c := y*g.cols + x
			for _, j := range g.cellPts[g.cellStart[c]:g.cellStart[c+1]] {
				if q.Dist2(g.points[j]) <= r2 {
					dst = append(dst, int(j))
				}
			}
		}
	}
	return dst
}
