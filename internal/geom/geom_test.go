package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ipda-sim/ipda/internal/rng"
)

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(b); math.Abs(d2-25) > 1e-12 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
}

func TestDistSymmetric(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		return a.Dist(b) == b.Dist(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := Square(400)
	if r.Width() != 400 || r.Height() != 400 {
		t.Fatalf("Square(400) dims %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 160000 {
		t.Fatalf("area %v", r.Area())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{400, 400}) || !r.Contains(Point{200, 100}) {
		t.Fatal("Contains failed for interior/boundary points")
	}
	if r.Contains(Point{-1, 0}) || r.Contains(Point{0, 401}) {
		t.Fatal("Contains accepted exterior point")
	}
	if c := r.Center(); c != (Point{200, 200}) {
		t.Fatalf("Center %v", c)
	}
}

// bruteNeighbors is the reference implementation the grid index must match.
func bruteNeighbors(points []Point, i int, radius float64) []int {
	var out []int
	for j, q := range points {
		if j != i && points[i].Dist(q) <= radius {
			out = append(out, j)
		}
	}
	return out
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	bounds := Square(400)
	const n = 500
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{r.Float64() * 400, r.Float64() * 400}
	}
	const radius = 50
	g := NewGridIndex(bounds, points, radius)
	for i := 0; i < n; i++ {
		got := g.Neighbors(i, radius, nil)
		want := bruteNeighbors(points, i, radius)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d neighbors, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("node %d: neighbor mismatch %v vs %v", i, got, want)
			}
		}
	}
}

func TestGridIndexSmallerRadiusQuery(t *testing.T) {
	r := rng.New(7)
	bounds := Square(100)
	points := make([]Point, 200)
	for i := range points {
		points[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	g := NewGridIndex(bounds, points, 30)
	for i := 0; i < len(points); i += 17 {
		got := g.Neighbors(i, 12, nil)
		want := bruteNeighbors(points, i, 12)
		if len(got) != len(want) {
			t.Fatalf("radius-12 query mismatch at %d: %d vs %d", i, len(got), len(want))
		}
	}
}

func TestGridIndexNeighborsOf(t *testing.T) {
	points := []Point{{10, 10}, {20, 10}, {300, 300}}
	g := NewGridIndex(Square(400), points, 50)
	got := g.NeighborsOf(Point{12, 10}, 50, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("NeighborsOf = %v, want [0 1]", got)
	}
}

func TestGridIndexPointOnBoundary(t *testing.T) {
	// Points exactly on the max boundary must be indexed, not lost.
	points := []Point{{400, 400}, {399, 399}}
	g := NewGridIndex(Square(400), points, 50)
	got := g.Neighbors(0, 50, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("boundary point neighbors = %v", got)
	}
}

func TestGridIndexEmptyAndSingleton(t *testing.T) {
	g := NewGridIndex(Square(10), nil, 5)
	if got := g.NeighborsOf(Point{1, 1}, 5, nil); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	g = NewGridIndex(Square(10), []Point{{5, 5}}, 5)
	if got := g.Neighbors(0, 5, nil); len(got) != 0 {
		t.Fatalf("singleton index returned %v", got)
	}
}

func TestNewGridIndexPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero radius")
		}
	}()
	NewGridIndex(Square(10), nil, 0)
}

func BenchmarkGridNeighbors(b *testing.B) {
	r := rng.New(1)
	points := make([]Point, 600)
	for i := range points {
		points[i] = Point{r.Float64() * 400, r.Float64() * 400}
	}
	g := NewGridIndex(Square(400), points, 50)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Neighbors(i%600, 50, buf[:0])
	}
}

// syntheticField fills dst with n deterministic pseudo-random points inside
// a side×side square (no rng dependency: a fixed LCG keeps geom leaf-level).
func syntheticField(dst []Point, n int, side float64) []Point {
	dst = dst[:0]
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Point{X: next() * side, Y: next() * side})
	}
	return dst
}

func TestRebuildAllocFreeAcrossSizes(t *testing.T) {
	// Satellite pin: once the index has seen its largest deployment, rebuilds
	// at ANY size — including shrink-then-regrow cycles and changed bounds —
	// must not allocate. This is what keeps per-trial repartitioning at
	// N=100k from silently reallocating.
	g := &GridIndex{}
	var pts []Point
	sizes := []struct {
		n    int
		side float64
	}{{100000, 4000}, {400, 290}, {10000, 1300}, {400, 290}, {100000, 4000}}
	// Warm to the maximum footprint.
	for _, s := range sizes {
		pts = syntheticField(pts, s.n, s.side)
		g.Rebuild(Square(s.side), pts, 50)
	}
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		s := sizes[i%len(sizes)]
		i++
		pts = syntheticField(pts, s.n, s.side)
		g.Rebuild(Square(s.side), pts, 50)
	})
	if allocs != 0 {
		t.Fatalf("Rebuild allocated %v per run after warmup, want 0", allocs)
	}
}

func TestRebuildMatchesFreshAfterResize(t *testing.T) {
	// A reused index rebuilt small→large→small must answer queries exactly
	// like a fresh one (contents and order), proving leftover storage from
	// other shapes never leaks into results.
	var pts []Point
	reused := &GridIndex{}
	for _, n := range []int{500, 20000, 500, 3000} {
		side := 100 * math.Sqrt(float64(n)/500)
		pts = syntheticField(pts, n, side)
		reused.Rebuild(Square(side), pts, 50)
		fresh := NewGridIndex(Square(side), pts, 50)
		for _, probe := range []int{0, n / 3, n - 1} {
			a := reused.Neighbors(probe, 50, nil)
			b := fresh.Neighbors(probe, 50, nil)
			if len(a) != len(b) {
				t.Fatalf("n=%d probe=%d: reused %d neighbors, fresh %d", n, probe, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("n=%d probe=%d: neighbor[%d] = %d vs fresh %d", n, probe, k, a[k], b[k])
				}
			}
		}
	}
}
