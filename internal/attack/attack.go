// Package attack implements the adversaries of Section II-C and the
// experiments that measure iPDA's resistance to them.
//
// The eavesdropper is a global passive adversary who compromises each
// directed wireless link independently with probability p_x (the paper's
// abstraction for shared pool keys and compromised neighbors, Section
// IV-A.3). It hears every frame — the medium is broadcast — but learns a
// slice's plaintext only on compromised links. Intermediate aggregation
// results travel in the clear (iPDA encrypts only slices), so the
// assembled value r(j) of any aggregator is assumed overheard.
//
// A node's reading d(i) is disclosed when the adversary can complete one
// of its two additive share sets:
//
//   - every transmitted slice of a set was decrypted and the set has no
//     locally-kept share (a leaf's sets, or an aggregator's opposite-color
//     set), or
//   - the set keeps one share locally (an aggregator's own-color set) and
//     the adversary decrypted the set's other l−1 slices plus every slice
//     the node received, recovering the local share as
//     d_ii = r(i) − Σ incoming.
//
// This is exactly the disclosure event behind Equation (11).
//
// The pollution attacker and DoS localization build on the hooks the core
// protocol exposes (Instance.Pollute, Config.Disabled).
package attack

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/packet"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

// link is a directed wireless link.
type link struct {
	src, dst topology.NodeID
}

// Eavesdropper is the global passive adversary. Attach it to an instance
// before running a round, then query disclosure afterwards.
type Eavesdropper struct {
	px   float64
	rand *rng.Stream

	compromised map[link]bool

	// Ground truth per node, recorded via the instance hooks.
	sent      map[topology.NodeID][]obs // outgoing transmitted slices
	localKept map[topology.NodeID][]packet.Color
	incoming  map[topology.NodeID][]link // links delivering slices TO the node

	// What the adversary actually learned.
	decrypted map[link]int
}

type obs struct {
	l     link
	color packet.Color
}

// NewEavesdropper creates an adversary with per-link compromise
// probability px.
func NewEavesdropper(px float64, rand *rng.Stream) *Eavesdropper {
	return &Eavesdropper{
		px:          px,
		rand:        rand,
		compromised: make(map[link]bool),
		sent:        make(map[topology.NodeID][]obs),
		localKept:   make(map[topology.NodeID][]packet.Color),
		incoming:    make(map[topology.NodeID][]link),
		decrypted:   make(map[link]int),
	}
}

// Attach hooks the adversary into an instance. Call before Run.
func (e *Eavesdropper) Attach(in *core.Instance) {
	in.OnSlice = func(src, dst topology.NodeID, color packet.Color, share int64) {
		lk := link{src, dst}
		e.sent[src] = append(e.sent[src], obs{lk, color})
		e.incoming[dst] = append(e.incoming[dst], lk)
		if e.isCompromised(lk) {
			e.decrypted[lk]++
		}
	}
	in.OnLocalShare = func(id topology.NodeID, color packet.Color, share int64) {
		e.localKept[id] = append(e.localKept[id], color)
	}
}

// isCompromised flips the per-link coin once and caches it.
func (e *Eavesdropper) isCompromised(lk link) bool {
	if v, ok := e.compromised[lk]; ok {
		return v
	}
	v := e.rand.Bool(e.px)
	e.compromised[lk] = v
	return v
}

// Reset clears per-round observations but keeps the compromised-link set
// (compromise is a property of the key material, not of one round).
func (e *Eavesdropper) Reset() {
	e.sent = make(map[topology.NodeID][]obs)
	e.localKept = make(map[topology.NodeID][]packet.Color)
	e.incoming = make(map[topology.NodeID][]link)
	e.decrypted = make(map[link]int)
}

// Disclosed reports whether the adversary learned node id's reading in the
// observed round.
func (e *Eavesdropper) Disclosed(id topology.NodeID) bool {
	kept := map[packet.Color]bool{}
	for _, c := range e.localKept[id] {
		kept[c] = true
	}
	for _, color := range []packet.Color{packet.Red, packet.Blue} {
		sentAll := true
		any := false
		for _, o := range e.sent[id] {
			if o.color != color {
				continue
			}
			any = true
			if !e.compromised[o.l] {
				sentAll = false
				break
			}
		}
		if !any && !kept[color] {
			continue // node did not participate on this tree
		}
		if !sentAll {
			continue
		}
		if !kept[color] {
			// Complete transmitted set: reading recovered.
			return true
		}
		// One share stayed local: also need every incoming slice, to
		// subtract from the overheard assembled value r(id).
		inAll := true
		for _, lk := range e.incoming[id] {
			if !e.compromised[lk] {
				inAll = false
				break
			}
		}
		if inAll {
			return true
		}
	}
	return false
}

// DiscloseRate returns the fraction of the given nodes whose readings were
// disclosed.
func (e *Eavesdropper) DiscloseRate(nodes []topology.NodeID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	d := 0
	for _, id := range nodes {
		if e.Disclosed(id) {
			d++
		}
	}
	return float64(d) / float64(len(nodes))
}

// CompromisedLinks returns how many distinct links the adversary controls
// among those observed so far.
func (e *Eavesdropper) CompromisedLinks() int {
	n := 0
	for _, v := range e.compromised {
		if v {
			n++
		}
	}
	return n
}

// LocalizeResult reports a DoS-polluter localization run.
type LocalizeResult struct {
	Suspect topology.NodeID
	Rounds  int // aggregation rounds spent
}

// Factory builds a fresh protocol instance with the given node-disable
// mask. Localization rebuilds trees between probes, so it needs a
// constructor rather than a live instance.
type Factory func(disabled []bool, seed uint64) (*core.Instance, error)

// PolluterBehavior makes the attacker pollute every round in which it holds
// an aggregator role, which is the persistent-DoS behaviour of Section
// III-D.
func PolluterBehavior(in *core.Instance, attacker topology.NodeID, delta int64) {
	role := in.Trees.Role[attacker]
	if role == tree.RoleRed || role == tree.RoleBlue {
		in.Pollute(attacker, delta)
	}
}

// LocalizePolluter finds a persistent polluter by group testing: it
// bisects the candidate set, disabling one half per probe round, and
// recurses into the half whose activation causes rejection (Section
// III-D's O(log N) argument). Probes use non-adaptive trees (Equation 2),
// under which every covered node aggregates, so an enabled attacker
// pollutes with near certainty.
func LocalizePolluter(n int, factory Factory, attacker topology.NodeID, delta int64, seed uint64) (*LocalizeResult, error) {
	candidates := make([]topology.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		candidates = append(candidates, topology.NodeID(i))
	}
	rounds := 0
	probe := func(disabledSet map[topology.NodeID]bool) (rejected bool, err error) {
		disabled := make([]bool, n)
		for id := range disabledSet {
			disabled[id] = true
		}
		rounds++
		in, err := factory(disabled, seed+uint64(rounds)*7919)
		if err != nil {
			return false, err
		}
		PolluterBehavior(in, attacker, delta)
		res, err := in.RunCount()
		if err != nil {
			return false, err
		}
		return !res.Accepted, nil
	}
	for len(candidates) > 1 {
		half := candidates[:len(candidates)/2]
		rest := candidates[len(candidates)/2:]
		disabledSet := make(map[topology.NodeID]bool, len(half))
		for _, id := range half {
			disabledSet[id] = true
		}
		rejected, err := probe(disabledSet)
		if err != nil {
			return nil, err
		}
		if rejected {
			// Attacker was active, hence among the enabled candidates.
			candidates = rest
		} else {
			candidates = half
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("attack: localization eliminated every candidate")
	}
	return &LocalizeResult{Suspect: candidates[0], Rounds: rounds}, nil
}
