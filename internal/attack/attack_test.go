package attack

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/tree"
)

func instance(t *testing.T, nodes int, seed uint64, cfg core.Config) *core.Instance {
	t.Helper()
	net, err := topology.Random(topology.PaperConfig(nodes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.New(net, cfg, seed+99)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNoCompromiseNoDisclosure(t *testing.T) {
	in := instance(t, 300, 1, core.DefaultConfig())
	e := NewEavesdropper(0, rng.New(2))
	e.Attach(in)
	if _, err := in.RunCount(); err != nil {
		t.Fatal(err)
	}
	if rate := e.DiscloseRate(in.Participants()); rate != 0 {
		t.Fatalf("disclosure rate %v with p_x = 0", rate)
	}
}

func TestFullCompromiseFullDisclosure(t *testing.T) {
	in := instance(t, 300, 3, core.DefaultConfig())
	e := NewEavesdropper(1, rng.New(4))
	e.Attach(in)
	if _, err := in.RunCount(); err != nil {
		t.Fatal(err)
	}
	// With every link compromised, every participant that transmitted a
	// complete set is disclosed. Aggregators additionally need incoming
	// coverage, which p_x = 1 gives.
	if rate := e.DiscloseRate(in.Participants()); rate < 0.999 {
		t.Fatalf("disclosure rate %v with p_x = 1", rate)
	}
}

func TestDiscloseRateIncreasesWithPx(t *testing.T) {
	rate := func(px float64) float64 {
		in := instance(t, 400, 5, core.DefaultConfig())
		e := NewEavesdropper(px, rng.New(6))
		e.Attach(in)
		if _, err := in.RunCount(); err != nil {
			t.Fatal(err)
		}
		return e.DiscloseRate(in.Participants())
	}
	lo, hi := rate(0.05), rate(0.6)
	if lo >= hi {
		t.Fatalf("disclosure did not increase with p_x: %v vs %v", lo, hi)
	}
}

func TestMoreSlicesLowerDisclosure(t *testing.T) {
	rate := func(l int) float64 {
		cfg := core.DefaultConfig()
		cfg.Slices = l
		// Average across several topologies to tame variance.
		var sum float64
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			in := instance(t, 400, 7+uint64(trial), cfg)
			e := NewEavesdropper(0.3, rng.New(8+uint64(trial)))
			e.Attach(in)
			if _, err := in.RunCount(); err != nil {
				t.Fatal(err)
			}
			sum += e.DiscloseRate(in.Participants())
		}
		return sum / trials
	}
	r2, r3 := rate(2), rate(3)
	if r3 >= r2 {
		t.Fatalf("l=3 disclosure %v not below l=2 %v", r3, r2)
	}
}

func TestDisclosureMatchesAnalyticOrder(t *testing.T) {
	// At p_x = 0.1 and l = 2 the analysis (Fig. 5) predicts a disclosure
	// probability of a few percent. Check the empirical rate lands in a
	// loose band around it.
	var sum float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		in := instance(t, 400, 20+uint64(trial), core.DefaultConfig())
		e := NewEavesdropper(0.1, rng.New(30+uint64(trial)))
		e.Attach(in)
		if _, err := in.RunCount(); err != nil {
			t.Fatal(err)
		}
		sum += e.DiscloseRate(in.Participants())
	}
	got := sum / trials
	if got < 0.001 || got > 0.15 {
		t.Fatalf("empirical P_disclose(0.1) = %v, expected a few percent", got)
	}
}

func TestResetKeepsCompromise(t *testing.T) {
	in := instance(t, 200, 9, core.DefaultConfig())
	e := NewEavesdropper(0.5, rng.New(10))
	e.Attach(in)
	if _, err := in.RunCount(); err != nil {
		t.Fatal(err)
	}
	before := e.CompromisedLinks()
	if before == 0 {
		t.Fatal("no compromised links at p_x = 0.5")
	}
	e.Reset()
	if e.CompromisedLinks() != before {
		t.Fatal("Reset dropped the compromised-link set")
	}
	if rate := e.DiscloseRate(in.Participants()); rate != 0 {
		t.Fatal("Reset kept per-round observations")
	}
}

func TestLocalizePolluter(t *testing.T) {
	net, err := topology.Random(topology.PaperConfig(200), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	factory := func(disabled []bool, seed uint64) (*core.Instance, error) {
		cfg := core.DefaultConfig()
		cfg.Tree.Adaptive = false // every covered node aggregates
		cfg.Disabled = disabled
		return core.New(net, cfg, seed)
	}
	// Pick an attacker that is well-connected so it aggregates reliably.
	var attacker topology.NodeID
	for i := 1; i < net.N(); i++ {
		if net.Degree(topology.NodeID(i)) >= 8 {
			attacker = topology.NodeID(i)
			break
		}
	}
	res, err := LocalizePolluter(net.N(), factory, attacker, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspect != attacker {
		t.Fatalf("localized %d, attacker was %d", res.Suspect, attacker)
	}
	// O(log N): 200 nodes -> 8 bisection rounds.
	if res.Rounds > 10 {
		t.Fatalf("used %d rounds for N=200", res.Rounds)
	}
}

func TestPolluterBehaviorOnlyAggregators(t *testing.T) {
	in := instance(t, 300, 13, core.DefaultConfig())
	var leaf topology.NodeID = topology.None
	for i := 1; i < in.Net.N(); i++ {
		if in.Trees.Role[i] == tree.RoleLeaf {
			leaf = topology.NodeID(i)
			break
		}
	}
	if leaf == topology.None {
		t.Skip("no leaf")
	}
	PolluterBehavior(in, leaf, 9999)
	res, err := in.RunCount()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("leaf 'polluter' affected the result")
	}
}

func TestCompromiseRateMatchesPx(t *testing.T) {
	in := instance(t, 300, 15, core.DefaultConfig())
	e := NewEavesdropper(0.25, rng.New(16))
	e.Attach(in)
	if _, err := in.RunCount(); err != nil {
		t.Fatal(err)
	}
	total := len(e.compromised)
	if total < 100 {
		t.Skipf("too few observed links (%d)", total)
	}
	frac := float64(e.CompromisedLinks()) / float64(total)
	if math.Abs(frac-0.25) > 0.08 {
		t.Fatalf("compromise fraction %v, want ~0.25", frac)
	}
}
