// Package fault injects deterministic node failures into a running
// protocol instance. A schedule combines two mechanisms:
//
//   - churn: every round, each live node crashes with probability
//     CrashRate and each dead node recovers with probability RecoverRate,
//     drawn from a private splittable stream so the same Config always
//     produces the same failure trace regardless of protocol randomness;
//   - scripted events: one-shot Crash/Recover events pinned to specific
//     rounds, for reproducing a particular failure scenario exactly.
//
// The injector drives a Target's Kill/Revive between rounds; it never
// runs inside the simulated radio medium, matching the paper's fault
// model where nodes fail between aggregation epochs ("either data
// pollution attacks or node failures, or both", Section III-A).
package fault

import (
	"fmt"
	"sort"

	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Kind tags a scripted event.
type Kind uint8

const (
	// Crash kills the node at the event's round.
	Crash Kind = iota
	// Recover revives the node at the event's round.
	Recover
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scripted failure or recovery, applied immediately before
// the given protocol round (0-based: Round 0 fires before any data round
// runs).
type Event struct {
	Round int
	Kind  Kind
	Node  topology.NodeID
}

// Config is a deterministic fault schedule. The zero value disables
// injection entirely.
type Config struct {
	// CrashRate is the per-round probability that each live node crashes.
	CrashRate float64
	// RecoverRate is the per-round probability that each dead node
	// recovers (a reboot, battery swap, or route re-establishment).
	RecoverRate float64
	// Seed roots the schedule's private random streams; the same seed
	// always yields the same failure trace for a given node count.
	Seed uint64
	// Events are scripted one-shots, applied before that round's churn
	// draws in slice order.
	Events []Event
}

// Enabled reports whether the schedule can ever fault a node.
func (c Config) Enabled() bool {
	return c.CrashRate > 0 || c.RecoverRate > 0 || len(c.Events) > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CrashRate < 0 || c.CrashRate >= 1 {
		return fmt.Errorf("fault: CrashRate must be in [0, 1), got %v", c.CrashRate)
	}
	if c.RecoverRate < 0 || c.RecoverRate > 1 {
		return fmt.Errorf("fault: RecoverRate must be in [0, 1], got %v", c.RecoverRate)
	}
	for _, e := range c.Events {
		if e.Round < 0 {
			return fmt.Errorf("fault: event round %d negative", e.Round)
		}
		if e.Kind != Crash && e.Kind != Recover {
			return fmt.Errorf("fault: unknown event kind %d", e.Kind)
		}
	}
	return nil
}

// Target is the protocol surface the injector drives. Both core.Instance
// and tag.Instance satisfy it.
type Target interface {
	Kill(id topology.NodeID)
	Revive(id topology.NodeID)
}

// Injector replays one Config against a network of n nodes. It tracks its
// own view of which nodes are down, so the schedule is a pure function of
// (Config, n, protected set) and never depends on protocol state.
type Injector struct {
	cfg       Config
	root      *rng.Stream
	down      []bool
	protected []bool
	// touched[i] is 1 + the last round a scripted event changed node i;
	// churn skips such nodes for that round so a script always wins it.
	touched  []int
	events   []Event // sorted by round, stable
	next     int     // first event not yet applied
	round    int     // next round Advance expects
	crashes  uint64
	recovers uint64
	o        *injObs
	qt       *qtrace.Tracer
}

type injObs struct {
	sink     *obs.Sink
	crashes  obs.Counter
	recovers obs.Counter
	dead     obs.Gauge
}

// NewInjector builds an injector for n nodes. Nodes in protect (the base
// stations — they anchor both trees) are never crashed, by churn or by
// script.
func NewInjector(n int, cfg Config, protect []topology.NodeID) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, e := range cfg.Events {
		if int(e.Node) < 0 || int(e.Node) >= n {
			return nil, fmt.Errorf("fault: event node %d out of range [0, %d)", e.Node, n)
		}
	}
	inj := &Injector{
		cfg:       cfg,
		root:      rng.New(cfg.Seed).SplitString("fault"),
		down:      make([]bool, n),
		protected: make([]bool, n),
		touched:   make([]int, n),
		events:    append([]Event(nil), cfg.Events...),
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].Round < inj.events[j].Round })
	inj.protected[0] = true
	for _, id := range protect {
		if int(id) >= 0 && int(id) < n {
			inj.protected[id] = true
		}
	}
	return inj, nil
}

// SetObs attaches an instrumentation sink; instruments resolve once here.
func (inj *Injector) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Reg == nil {
		inj.o = nil
		return
	}
	inj.o = &injObs{
		sink:     sink,
		crashes:  sink.Reg.Counter("ipda_fault_crashes_total", "node crashes injected (churn and scripted)"),
		recovers: sink.Reg.Counter("ipda_fault_recoveries_total", "node recoveries injected (churn and scripted)"),
		dead:     sink.Reg.Gauge("ipda_fault_dead_nodes", "nodes currently down"),
	}
}

// SetQTrace attaches a causal tracer: every injected crash and recovery
// is recorded as a root-level instant, so round-health reports can line
// up acceptance loss with the fault trace that caused it. Nil detaches.
func (inj *Injector) SetQTrace(t *qtrace.Tracer) { inj.qt = t }

// Advance applies the schedule for one protocol round to tgt: scripted
// events for that round first, then the churn draws, nodes in ascending ID
// order. Rounds must be advanced consecutively from 0; at is the simulated
// time stamped on instrumentation instants.
func (inj *Injector) Advance(round int, at float64, tgt Target) {
	if round != inj.round {
		panic(fmt.Sprintf("fault: Advance(%d) out of order, want %d", round, inj.round))
	}
	inj.round++
	for inj.next < len(inj.events) && inj.events[inj.next].Round == round {
		e := inj.events[inj.next]
		inj.next++
		inj.touched[e.Node] = round + 1
		switch e.Kind {
		case Crash:
			inj.crash(e.Node, at, tgt)
		case Recover:
			inj.recover(e.Node, at, tgt)
		}
	}
	if inj.cfg.CrashRate == 0 && inj.cfg.RecoverRate == 0 {
		return
	}
	// One private stream per round: the trace for round r is independent
	// of how many draws earlier rounds consumed.
	r := inj.root.Split(uint64(round) + 1)
	for i := range inj.down {
		id := topology.NodeID(i)
		if inj.touched[i] == round+1 {
			continue
		}
		if inj.down[i] {
			if inj.cfg.RecoverRate > 0 && r.Bool(inj.cfg.RecoverRate) {
				inj.recover(id, at, tgt)
			}
		} else if inj.cfg.CrashRate > 0 && r.Bool(inj.cfg.CrashRate) {
			inj.crash(id, at, tgt)
		}
	}
}

func (inj *Injector) crash(id topology.NodeID, at float64, tgt Target) {
	if inj.down[id] || inj.protected[id] {
		return
	}
	inj.down[id] = true
	inj.crashes++
	tgt.Kill(id)
	if inj.o != nil {
		inj.o.crashes.Inc()
		inj.o.dead.Set(float64(inj.DeadCount()))
		inj.o.sink.Instant(int32(id), "fault:crash", at, uint32(inj.round))
	}
	if inj.qt != nil {
		inj.qt.Instant(uint32(inj.round), qtrace.None, int32(id), "fault:crash", at)
	}
}

func (inj *Injector) recover(id topology.NodeID, at float64, tgt Target) {
	if !inj.down[id] {
		return
	}
	inj.down[id] = false
	inj.recovers++
	tgt.Revive(id)
	if inj.o != nil {
		inj.o.recovers.Inc()
		inj.o.dead.Set(float64(inj.DeadCount()))
		inj.o.sink.Instant(int32(id), "fault:recover", at, uint32(inj.round))
	}
	if inj.qt != nil {
		inj.qt.Instant(uint32(inj.round), qtrace.None, int32(id), "fault:recover", at)
	}
}

// Down reports the injector's view of node id.
func (inj *Injector) Down(id topology.NodeID) bool { return inj.down[id] }

// DeadCount returns how many nodes are currently down.
func (inj *Injector) DeadCount() int {
	n := 0
	for _, d := range inj.down {
		if d {
			n++
		}
	}
	return n
}

// Crashes and Recoveries return cumulative injection counts.
func (inj *Injector) Crashes() uint64    { return inj.crashes }
func (inj *Injector) Recoveries() uint64 { return inj.recovers }
