package fault

import (
	"reflect"
	"testing"

	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/topology"
)

// recorder captures the Kill/Revive call sequence.
type recorder struct {
	log []string
}

func (r *recorder) Kill(id topology.NodeID)   { r.log = append(r.log, "kill:"+itoa(int(id))) }
func (r *recorder) Revive(id topology.NodeID) { r.log = append(r.log, "revive:"+itoa(int(id))) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestScriptedEvents(t *testing.T) {
	cfg := Config{Events: []Event{
		{Round: 0, Kind: Crash, Node: 3},
		{Round: 2, Kind: Recover, Node: 3},
		{Round: 2, Kind: Crash, Node: 5},
	}}
	inj, err := NewInjector(10, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	for r := 0; r < 4; r++ {
		inj.Advance(r, 0, rec)
	}
	want := []string{"kill:3", "revive:3", "kill:5"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("event log %v, want %v", rec.log, want)
	}
	if !inj.Down(5) || inj.Down(3) {
		t.Fatalf("down state wrong: down(5)=%v down(3)=%v", inj.Down(5), inj.Down(3))
	}
	if inj.DeadCount() != 1 {
		t.Fatalf("DeadCount = %d, want 1", inj.DeadCount())
	}
}

func TestChurnIsDeterministic(t *testing.T) {
	run := func() []string {
		inj, err := NewInjector(50, Config{CrashRate: 0.2, RecoverRate: 0.5, Seed: 42}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recorder{}
		for r := 0; r < 20; r++ {
			inj.Advance(r, 0, rec)
		}
		return rec.log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("20% churn over 20 rounds produced no faults")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same schedule produced different traces")
	}
}

func TestChurnRatesAreHonored(t *testing.T) {
	inj, err := NewInjector(1000, Config{CrashRate: 0.1, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	inj.Advance(0, 0, rec)
	// ~999 live unprotected nodes, 10% crash rate: expect near 100.
	if c := inj.Crashes(); c < 60 || c > 150 {
		t.Fatalf("first-round crashes = %d, want near 100", c)
	}
	// With no recovery, dead nodes stay dead and crashes accumulate.
	inj.Advance(1, 0, rec)
	if inj.Recoveries() != 0 {
		t.Fatal("recoveries without RecoverRate")
	}
	if inj.DeadCount() != int(inj.Crashes()) {
		t.Fatalf("DeadCount %d != Crashes %d with no recovery", inj.DeadCount(), inj.Crashes())
	}
}

func TestProtectedNodesNeverCrash(t *testing.T) {
	cfg := Config{CrashRate: 0.5, Seed: 3, Events: []Event{{Round: 0, Kind: Crash, Node: 0}}}
	inj, err := NewInjector(20, cfg, []topology.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	for r := 0; r < 30; r++ {
		inj.Advance(r, 0, rec)
	}
	if inj.Down(0) || inj.Down(7) {
		t.Fatalf("protected node crashed: down(0)=%v down(7)=%v", inj.Down(0), inj.Down(7))
	}
	for _, l := range rec.log {
		if l == "kill:0" || l == "kill:7" {
			t.Fatalf("protected node killed: %v", rec.log)
		}
	}
}

func TestRecoverRateRevives(t *testing.T) {
	cfg := Config{RecoverRate: 1, Seed: 9, Events: []Event{{Round: 0, Kind: Crash, Node: 4}}}
	inj, err := NewInjector(10, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	inj.Advance(0, 0, rec)
	if !inj.Down(4) {
		t.Fatal("scripted crash not applied")
	}
	inj.Advance(1, 0, rec)
	if inj.Down(4) {
		t.Fatal("RecoverRate=1 did not revive at the next round")
	}
}

func TestAdvanceOutOfOrderPanics(t *testing.T) {
	inj, err := NewInjector(5, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order Advance")
		}
	}()
	inj.Advance(2, 0, &recorder{})
}

func TestValidation(t *testing.T) {
	cases := []Config{
		{CrashRate: -0.1},
		{CrashRate: 1},
		{RecoverRate: -1},
		{RecoverRate: 1.5},
		{Events: []Event{{Round: -1, Kind: Crash, Node: 1}}},
		{Events: []Event{{Round: 0, Kind: Kind(9), Node: 1}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := NewInjector(4, Config{Events: []Event{{Round: 0, Kind: Crash, Node: 4}}}, nil); err == nil {
		t.Fatal("out-of-range event node accepted")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	if !(Config{CrashRate: 0.1}).Enabled() || !(Config{Events: []Event{{}}}).Enabled() {
		t.Fatal("non-trivial config reports disabled")
	}
}

func TestObsCountsFaults(t *testing.T) {
	sink := obs.NewSink()
	cfg := Config{Events: []Event{
		{Round: 0, Kind: Crash, Node: 1},
		{Round: 1, Kind: Recover, Node: 1},
	}}
	inj, err := NewInjector(4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetObs(sink)
	rec := &recorder{}
	inj.Advance(0, 0.5, rec)
	inj.Advance(1, 1.5, rec)
	got := map[string]float64{}
	for _, s := range sink.Reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["ipda_fault_crashes_total"] != 1 || got["ipda_fault_recoveries_total"] != 1 {
		t.Fatalf("fault counters wrong: %v", got)
	}
	if got["ipda_fault_dead_nodes"] != 0 {
		t.Fatalf("dead gauge = %v after recovery, want 0", got["ipda_fault_dead_nodes"])
	}
}
