package energy

import (
	"math"
	"testing"

	"github.com/ipda-sim/ipda/internal/topology"
)

func meter(t *testing.T, n int) *Meter {
	t.Helper()
	m, err := NewMeter(n, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChargesAccumulate(t *testing.T) {
	m := meter(t, 3)
	m.ChargeTx(1, 100)
	m.ChargeRx(1, 50)
	model := DefaultModel()
	want := 100*model.TxPerByte + 50*model.RxPerByte
	if got := m.Spent(1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Spent = %v, want %v", got, want)
	}
	if m.Spent(2) != 0 {
		t.Fatal("uncharged node spent energy")
	}
	if got := m.Remaining(1); math.Abs(got-(model.Battery-want)) > 1e-15 {
		t.Fatalf("Remaining = %v", got)
	}
}

func TestIdleChargesEveryone(t *testing.T) {
	m := meter(t, 4)
	m.ChargeIdle(10)
	want := 10 * DefaultModel().IdlePerSec
	for i := 0; i < 4; i++ {
		if got := m.Spent(topology.NodeID(i)); math.Abs(got-want) > 1e-15 {
			t.Fatalf("node %d idle charge %v, want %v", i, got, want)
		}
	}
}

func TestDepletion(t *testing.T) {
	model := DefaultModel()
	model.Battery = 1e-4
	m, err := NewMeter(3, model)
	if err != nil {
		t.Fatal(err)
	}
	if m.Depleted(1) {
		t.Fatal("fresh node depleted")
	}
	m.ChargeTx(1, 200) // 200 µJ > 100 µJ battery
	if !m.Depleted(1) {
		t.Fatal("drained node not depleted")
	}
	id, dead := m.FirstDepleted()
	if id != 1 || !dead {
		t.Fatalf("FirstDepleted = %d,%v", id, dead)
	}
}

func TestFirstDepletedSkipsBaseStation(t *testing.T) {
	m := meter(t, 3)
	m.ChargeTx(0, 1<<30) // the mains-powered sink burns a lot
	m.ChargeTx(2, 10)
	id, dead := m.FirstDepleted()
	if id != 2 {
		t.Fatalf("FirstDepleted picked %d, want 2", id)
	}
	if dead {
		t.Fatal("node 2 wrongly depleted")
	}
}

func TestAggregateStats(t *testing.T) {
	m := meter(t, 4)
	m.ChargeTx(1, 100)
	m.ChargeTx(2, 300)
	m.ChargeTx(0, 999) // excluded
	model := DefaultModel()
	if got, want := m.TotalSpent(), 400*model.TxPerByte; math.Abs(got-want) > 1e-15 {
		t.Fatalf("TotalSpent = %v, want %v", got, want)
	}
	if got, want := m.MaxSpent(), 300*model.TxPerByte; math.Abs(got-want) > 1e-15 {
		t.Fatalf("MaxSpent = %v, want %v", got, want)
	}
}

func TestModelValidation(t *testing.T) {
	bad := DefaultModel()
	bad.TxPerByte = 0
	if _, err := NewMeter(2, bad); err == nil {
		t.Fatal("zero TxPerByte accepted")
	}
	bad = DefaultModel()
	bad.Battery = 0
	if _, err := NewMeter(2, bad); err == nil {
		t.Fatal("zero battery accepted")
	}
	ok := DefaultModel()
	ok.IdlePerSec = 0
	if _, err := NewMeter(2, ok); err != nil {
		t.Fatalf("zero idle rejected: %v", err)
	}
}

func TestEmptyMeter(t *testing.T) {
	m := meter(t, 1) // base station only
	if id, dead := m.FirstDepleted(); id != topology.None || dead {
		t.Fatalf("FirstDepleted on BS-only network = %d,%v", id, dead)
	}
	if m.TotalSpent() != 0 || m.MaxSpent() != 0 {
		t.Fatal("empty meter reports consumption")
	}
}
