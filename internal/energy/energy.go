// Package energy models per-node energy consumption — the resource the
// paper's introduction says aggregation exists to save ("save resource
// consumptions and increase the [lifetime] of WSNs").
//
// The model is the standard first-order radio model (Heinzelman et al.):
// transmitting b bytes costs b·(Etx + Eamp·r²) and receiving costs b·Erx,
// with the amplifier term fixed here because the simulator uses a fixed
// transmission range. Listening costs are charged per second of simulated
// time at a duty-cycled idle rate. The absolute joule figures are
// conventional textbook constants; what the lifetime experiments compare
// is relative drain across protocols, which the model preserves.
package energy

import (
	"fmt"

	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/topology"
)

// Model are the per-node radio energy parameters, in joules.
type Model struct {
	TxPerByte  float64 // energy to transmit one byte (incl. amplifier)
	RxPerByte  float64 // energy to receive one byte
	IdlePerSec float64 // duty-cycled listening cost per simulated second
	Battery    float64 // initial charge per node
}

// DefaultModel returns textbook first-order-radio constants: 1 µJ/byte
// transmit at 50 m, 0.4 µJ/byte receive, 30 µW duty-cycled idle, and a
// 2 J battery — small enough that lifetime experiments finish in
// simulated hours.
func DefaultModel() Model {
	return Model{
		TxPerByte:  1.0e-6,
		RxPerByte:  0.4e-6,
		IdlePerSec: 30e-6,
		Battery:    2.0,
	}
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	if m.TxPerByte <= 0 || m.RxPerByte <= 0 || m.IdlePerSec < 0 || m.Battery <= 0 {
		return fmt.Errorf("energy: parameters must be positive (idle may be zero)")
	}
	return nil
}

// Meter tracks the charge of every node in one network.
type Meter struct {
	model Model
	spent []float64
	obs   *meterObs
}

// meterObs holds the meter's pre-resolved per-component joule counters;
// nil disables instrumentation for one pointer check per charge.
type meterObs struct {
	tx, rx, idle obs.Counter
}

// SetObs attaches an instrumentation sink: every charge also feeds a
// network-wide joules counter labeled by radio component.
func (m *Meter) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Reg == nil {
		m.obs = nil
		return
	}
	const name = "ipda_energy_joules_total"
	const help = "network-wide radio energy consumed, by component"
	m.obs = &meterObs{
		tx:   sink.Reg.Counter(name, help, obs.Label{Name: "component", Value: "tx"}),
		rx:   sink.Reg.Counter(name, help, obs.Label{Name: "component", Value: "rx"}),
		idle: sink.Reg.Counter(name, help, obs.Label{Name: "component", Value: "idle"}),
	}
}

// NewMeter creates a meter for n nodes.
func NewMeter(n int, model Model) (*Meter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: model, spent: make([]float64, n)}, nil
}

// ChargeTx charges node id for transmitting size bytes.
func (m *Meter) ChargeTx(id topology.NodeID, size int) {
	cost := float64(size) * m.model.TxPerByte
	m.spent[id] += cost
	if m.obs != nil {
		m.obs.tx.Add(cost)
	}
}

// ChargeRx charges node id for receiving size bytes.
func (m *Meter) ChargeRx(id topology.NodeID, size int) {
	cost := float64(size) * m.model.RxPerByte
	m.spent[id] += cost
	if m.obs != nil {
		m.obs.rx.Add(cost)
	}
}

// ChargeIdle charges every node for dt seconds of duty-cycled listening.
func (m *Meter) ChargeIdle(dt float64) {
	cost := dt * m.model.IdlePerSec
	for i := range m.spent {
		m.spent[i] += cost
	}
	if m.obs != nil {
		m.obs.idle.Add(cost * float64(len(m.spent)))
	}
}

// Spent returns the energy node id has consumed.
func (m *Meter) Spent(id topology.NodeID) float64 { return m.spent[id] }

// Remaining returns node id's remaining charge (possibly negative if the
// caller kept charging past depletion).
func (m *Meter) Remaining(id topology.NodeID) float64 {
	return m.model.Battery - m.spent[id]
}

// Depleted reports whether node id has exhausted its battery.
func (m *Meter) Depleted(id topology.NodeID) bool {
	return m.spent[id] >= m.model.Battery
}

// FirstDepleted returns the node with the least remaining charge and
// whether it is depleted. The base station (node 0) is mains-powered and
// skipped, as is conventional in WSN lifetime studies.
func (m *Meter) FirstDepleted() (topology.NodeID, bool) {
	worst := topology.NodeID(-1)
	worstSpent := -1.0
	for i := 1; i < len(m.spent); i++ {
		if m.spent[i] > worstSpent {
			worstSpent = m.spent[i]
			worst = topology.NodeID(i)
		}
	}
	if worst < 0 {
		return topology.None, false
	}
	return worst, m.spent[worst] >= m.model.Battery
}

// TotalSpent returns the network-wide energy consumed (excluding the base
// station).
func (m *Meter) TotalSpent() float64 {
	var s float64
	for i := 1; i < len(m.spent); i++ {
		s += m.spent[i]
	}
	return s
}

// MaxSpent returns the highest per-node consumption (excluding the base
// station) — the lifetime bottleneck.
func (m *Meter) MaxSpent() float64 {
	var worst float64
	for i := 1; i < len(m.spent); i++ {
		if m.spent[i] > worst {
			worst = m.spent[i]
		}
	}
	return worst
}
