// Package ipda is a simulation-backed implementation of iPDA, the
// integrity-protecting private data aggregation scheme for wireless sensor
// networks (He et al., MILCOM 2008), together with the TAG baseline it is
// evaluated against.
//
// A Network is a deployed sensor field with the protocol stack already
// running: a discrete-event radio simulation (1 Mbps shared medium, CSMA
// MAC with ARQ), link-level encryption, and the two node-disjoint
// aggregation trees of iPDA's Phase I. Queries execute Phases II and III —
// slicing, assembling, and dual-tree aggregation — and return the
// cross-checked result:
//
//	net, err := ipda.Deploy(ipda.DefaultConfig(400))
//	if err != nil { ... }
//	res, err := net.Count()
//	fmt.Println(res.Value, res.Accepted)
//
// The attack surface of the paper is first-class: InjectPollution turns an
// aggregator malicious (the base station then rejects the round), and
// AttachEavesdropper measures how much a passive adversary with a given
// per-link compromise probability actually learns.
package ipda

import (
	"fmt"
	"io"

	"github.com/ipda-sim/ipda/internal/aggregate"
	"github.com/ipda-sim/ipda/internal/analysis"
	"github.com/ipda-sim/ipda/internal/attack"
	"github.com/ipda-sim/ipda/internal/core"
	"github.com/ipda-sim/ipda/internal/energy"
	"github.com/ipda-sim/ipda/internal/fault"
	"github.com/ipda-sim/ipda/internal/linksec"
	"github.com/ipda-sim/ipda/internal/mac"
	"github.com/ipda-sim/ipda/internal/metrics"
	"github.com/ipda-sim/ipda/internal/mtree"
	"github.com/ipda-sim/ipda/internal/obs"
	"github.com/ipda-sim/ipda/internal/privacy"
	"github.com/ipda-sim/ipda/internal/qtrace"
	"github.com/ipda-sim/ipda/internal/rng"
	"github.com/ipda-sim/ipda/internal/stream"
	"github.com/ipda-sim/ipda/internal/tag"
	"github.com/ipda-sim/ipda/internal/topology"
	"github.com/ipda-sim/ipda/internal/trace"
	"github.com/ipda-sim/ipda/internal/tree"
)

// Config describes a deployment and its protocol parameters.
type Config struct {
	// Nodes is the number of sensor nodes (the base station is extra).
	Nodes int
	// FieldSide is the square deployment area's side in meters.
	FieldSide float64
	// Range is the radio range in meters.
	Range float64
	// Slices is l, the slices per tree (the paper recommends 2).
	Slices int
	// Threshold is Th, the integrity acceptance threshold.
	Threshold int64
	// AdaptiveRoles selects the adaptive role rule of Equation (1); when
	// false, pr = pb = 0.5 (Equation 2).
	AdaptiveRoles bool
	// K is the aggregator budget of the adaptive rule (paper: 4).
	K int
	// ShareSpread bounds slice magnitudes (see the slicing package); 0
	// selects full-ring shares.
	ShareSpread int64
	// ExtraBaseStations promotes the listed sensor IDs to additional
	// collection points (Section II-A's multi-base-station extension):
	// they root both trees alongside node 0 and their collections fuse
	// into the final totals. Promoted nodes hold no readings.
	ExtraBaseStations []int
	// Faults, when non-nil, injects deterministic node failures between
	// aggregation rounds: random churn at the configured rates plus any
	// scripted one-shot events. Base stations never fail.
	Faults *Faults
	// Repair enables localized tree repair: when an aggregator dies, its
	// orphaned children deterministically re-attach to alternate live
	// same-color neighbors (disjointness is re-verified every time), and
	// nodes with no alternate parent sit the round out instead of feeding
	// a dead subtree.
	Repair bool
	// Cipher selects the link-encryption keystream suite: "aes" (the
	// batched AES-CTR engine, the default when empty) or "sha256" (the
	// original hash-PRF compat mode). Query results are suite-independent;
	// the suite only changes ciphertext and tag bytes on the air.
	Cipher string
	// MAC selects the channel-access scheme: "csma" (the paper's
	// contention model, the default when empty) or "tdma" (contention-free
	// slotted access from a deterministic two-hop coloring). Unlike
	// Cipher, this is a modelling change — TDMA retimes every
	// transmission, so results legitimately differ from CSMA runs.
	MAC string
	// Coalesce packs each node's same-round slices into one multi-slice
	// frame with a single MAC exchange (anchored at the first target;
	// other targets pick the bundle up promiscuously). Like MAC this is a
	// modelling change — byte and frame counts legitimately differ from
	// the default per-slice framing — so it is off by default and every
	// recorded table stays untouched. See core.Config.Coalesce.
	Coalesce bool
	// Seed drives every random choice; equal configs reproduce runs
	// exactly.
	Seed uint64
	// Observe attaches the instrumentation layer (labeled metrics plus
	// simulated-clock phase spans) to the deployment. Observation never
	// alters protocol behavior or results; read what was recorded through
	// Network.Obs.
	Observe bool
	// TraceQueries attaches the causal per-query tracer: every query
	// yields a span tree linking dissemination, slice exchange, per-node
	// aggregation, MAC retries, and base-station verification, with
	// per-span latency/airtime/energy attribution. Like Observe it never
	// alters protocol behavior or results; read the trace through
	// Network.QueryTrace.
	TraceQueries bool
}

// DefaultConfig returns the paper's evaluation setup for the given number
// of nodes: a 400 m x 400 m field, 50 m range, l = 2, Th = 5, adaptive
// trees with k = 4.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		FieldSide:     400,
		Range:         50,
		Slices:        2,
		Threshold:     5,
		AdaptiveRoles: true,
		K:             4,
		ShareSpread:   4,
		Seed:          1,
	}
}

// suite parses Config.Cipher; empty selects the AES-CTR default.
func (c Config) suite() (linksec.Suite, error) {
	if c.Cipher == "" {
		return linksec.SuiteAESCTR, nil
	}
	return linksec.ParseSuite(c.Cipher)
}

// macScheme parses Config.MAC; empty selects CSMA.
func (c Config) macScheme() (mac.Scheme, error) {
	if c.MAC == "" {
		return mac.SchemeCSMA, nil
	}
	return mac.ParseScheme(c.MAC)
}

func (c Config) coreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	suite, err := c.suite()
	if err != nil {
		return cfg, err
	}
	cfg.Suite = suite
	scheme, err := c.macScheme()
	if err != nil {
		return cfg, err
	}
	cfg.MAC.Scheme = scheme
	cfg.Slices = c.Slices
	cfg.Threshold = c.Threshold
	cfg.Tree.Adaptive = c.AdaptiveRoles
	if c.K > 0 {
		cfg.Tree.K = c.K
	}
	cfg.ShareSpread = c.ShareSpread
	for _, r := range c.ExtraBaseStations {
		cfg.ExtraRoots = append(cfg.ExtraRoots, topology.NodeID(r))
	}
	cfg.Repair = c.Repair
	cfg.Coalesce = c.Coalesce
	if c.Faults != nil {
		fc := c.Faults.faultConfig()
		cfg.Faults = &fc
	}
	return cfg, nil
}

// FaultEvent is one scripted failure or recovery, applied immediately
// before the given aggregation round (0-based: round 0 fires before any
// data round runs). Recover false crashes the node; true revives it.
type FaultEvent struct {
	Round   int
	Node    int
	Recover bool
}

// Faults is a deterministic fault schedule: per-round churn probabilities
// plus scripted one-shot events. The same schedule (same Seed) always
// produces the same failure trace, independent of protocol randomness, so
// protocol variants can be compared under identical failures.
type Faults struct {
	// CrashRate is the per-round probability that each live node crashes.
	CrashRate float64
	// RecoverRate is the per-round probability that each dead node
	// recovers.
	RecoverRate float64
	// Seed roots the schedule's private random streams.
	Seed uint64
	// Events are scripted one-shots, applied before that round's churn.
	Events []FaultEvent
}

func (f Faults) faultConfig() fault.Config {
	fc := fault.Config{CrashRate: f.CrashRate, RecoverRate: f.RecoverRate, Seed: f.Seed}
	for _, e := range f.Events {
		kind := fault.Crash
		if e.Recover {
			kind = fault.Recover
		}
		fc.Events = append(fc.Events, fault.Event{Round: e.Round, Kind: kind, Node: topology.NodeID(e.Node)})
	}
	return fc
}

// Kind selects an aggregation function.
type Kind = aggregate.Kind

// The aggregation functions of Section II-B.
const (
	Sum      = aggregate.Sum
	Count    = aggregate.Count
	Average  = aggregate.Average
	Variance = aggregate.Variance
	Min      = aggregate.Min
	Max      = aggregate.Max
)

// Network is a deployed iPDA network ready to answer queries. It is not
// safe for concurrent use; deploy independent networks per goroutine.
type Network struct {
	cfg  Config
	topo *topology.Network
	inst *core.Instance
	eav  *attack.Eavesdropper
	sink *obs.Sink
	qt   *qtrace.Tracer
}

// Deploy places the nodes, builds the radio stack, and runs Phase I.
func Deploy(cfg Config) (*Network, error) {
	topoCfg := topology.Config{Nodes: cfg.Nodes, FieldSide: cfg.FieldSide, Range: cfg.Range}
	topo, err := topology.Random(topoCfg, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	ccfg, err := cfg.coreConfig()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	var sink *obs.Sink
	if cfg.Observe {
		sink = obs.NewSink()
		ccfg.Obs = sink
	}
	var qt *qtrace.Tracer
	if cfg.TraceQueries {
		qt = qtrace.New(0)
		ccfg.QTrace = qt
	}
	inst, err := core.New(topo, ccfg, cfg.Seed^0xa5a5a5a5)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return &Network{cfg: cfg, topo: topo, inst: inst, sink: sink, qt: qt}, nil
}

// Size returns the number of nodes including the base station.
func (n *Network) Size() int { return n.topo.N() }

// AvgDegree returns the network's mean node degree.
func (n *Network) AvgDegree() float64 { return n.topo.AvgDegree() }

// Participants returns the number of sensors that take part in queries.
func (n *Network) Participants() int { return len(n.inst.Participants()) }

// Coverage returns the fraction of sensors reached by both trees
// (Figure 8a).
func (n *Network) Coverage() float64 {
	return metrics.CoverageFraction(n.inst.Trees, n.topo.N())
}

// Participation returns the fraction of sensors able to slice (Figure 8b).
func (n *Network) Participation() float64 {
	return metrics.ParticipationFraction(n.inst.Trees, n.cfg.Slices, n.topo.N())
}

// QueryResult is one answered query.
type QueryResult struct {
	// Value is the finalized statistic; meaningful only when Accepted.
	Value float64
	// Accepted reports the integrity check |S_b − S_r| ≤ Th.
	Accepted bool
	// RedSum and BlueSum are the first-round totals of the two trees.
	RedSum, BlueSum int64
	// Participants is the number of sensors that contributed.
	Participants int
	// RedContributors and BlueContributors count the participants whose
	// planned slices all arrived on that tree in the first round — the
	// graceful-degradation view of how complete each total is.
	RedContributors, BlueContributors int
	// Dead counts nodes down when the first round ran; Skipped counts
	// live nodes that sat it out because repair found no alternate
	// parent; Repaired counts parent re-assignments applied.
	Dead, Skipped, Repaired int
	// Bytes is the radio traffic the query cost.
	Bytes uint64
}

func fromResult(res *core.Result) *QueryResult {
	out := &QueryResult{
		Value:    res.Value,
		Accepted: res.Accepted,
	}
	if len(res.Outcomes) > 0 {
		first := res.Outcomes[0]
		out.RedSum, out.BlueSum = first.Red, first.Blue
		out.Participants = first.Participants
		out.RedContributors, out.BlueContributors = first.RedContributed, first.BlueContributed
		out.Dead, out.Skipped, out.Repaired = first.Dead, first.Skipped, first.Repaired
		for _, o := range res.Outcomes {
			out.Bytes += o.Bytes
		}
	}
	return out
}

// Query answers an aggregation query over per-node readings. readings
// must have Size() entries; index 0 (the base station) is ignored.
func (n *Network) Query(kind Kind, readings []int64) (*QueryResult, error) {
	res, err := n.inst.Run(aggregate.SpecFor(kind), readings)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return fromResult(res), nil
}

// Count runs a COUNT query.
func (n *Network) Count() (*QueryResult, error) {
	return n.Query(Count, make([]int64, n.topo.N()))
}

// QueryExtremum runs a tuned MIN or MAX query. The power-mean
// approximation (Section II-B) estimates the extremum within a factor
// n^(1/power); higher powers are tighter but narrow the usable reading
// range: MAX accepts readings in [0, normal], MIN in
// [normal/2^(52/power), normal]. kind must be Min or Max.
func (n *Network) QueryExtremum(kind Kind, readings []int64, power int, normal int64) (*QueryResult, error) {
	if kind != Min && kind != Max {
		return nil, fmt.Errorf("ipda: QueryExtremum requires Min or Max, got %v", kind)
	}
	spec := aggregate.Spec{Kind: kind, Power: power, Normal: normal}
	res, err := n.inst.Run(spec, readings)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return fromResult(res), nil
}

// Sum runs a SUM query over readings.
func (n *Network) Sum(readings []int64) (*QueryResult, error) {
	return n.Query(Sum, readings)
}

// Coalescing reports the cumulative frame-coalescing tally since
// deployment: how many multi-slice frames went on the air and how many
// slices rode in them. Both are 0 unless Config.Coalesce.
func (n *Network) Coalescing() (frames, slices uint64) {
	st := n.inst.Medium.Stats()
	return st.FramesCoalesced, st.SlicesCoalesced
}

// Aggregators returns the node IDs holding an aggregator role on either
// tree (the base station, on both trees, is not listed).
func (n *Network) Aggregators() []int {
	return append(n.RedAggregators(), n.BlueAggregators()...)
}

// RedAggregators returns the nodes aggregating on the red tree.
func (n *Network) RedAggregators() []int {
	var out []int
	for _, id := range n.inst.Trees.Aggregators(tree.RoleRed) {
		out = append(out, int(id))
	}
	return out
}

// BlueAggregators returns the nodes aggregating on the blue tree.
func (n *Network) BlueAggregators() []int {
	var out []int
	for _, id := range n.inst.Trees.Aggregators(tree.RoleBlue) {
		out = append(out, int(id))
	}
	return out
}

// InjectPollution makes node id a data-pollution attacker adding delta to
// every intermediate result it forwards; delta 0 restores it.
func (n *Network) InjectPollution(id int, delta int64) {
	n.inst.Pollute(topology.NodeID(id), delta)
}

// Kill fails node id at runtime: it stops slicing, assembling, and
// aggregating until revived. With Config.Repair set, orphaned children of
// a dead aggregator re-attach before the next round; without it, the dead
// node's subtree contribution is lost (and the round typically rejected
// if the loss is asymmetric across the trees).
func (n *Network) Kill(id int) { n.inst.Kill(topology.NodeID(id)) }

// Revive undoes Kill from the next round on.
func (n *Network) Revive(id int) { n.inst.Revive(topology.NodeID(id)) }

// StreamQuery is one standing sliding-window query of a streaming run:
// each firing folds every meter's last Window readings (summed for the
// additive kinds, min/max for the extrema) and answers one protocol query
// over the folds.
type StreamQuery struct {
	Name string
	Kind Kind
	// Window is the sliding-window length in epochs; the query waits for
	// a full window before its first firing.
	Window int
	// Period and Phase schedule firings: the query fires at every epoch
	// e ≥ Phase with (e − Phase) divisible by Period.
	Period int
	Phase  int
	// Power and Normal tune Min/Max queries (see QueryExtremum); zero
	// selects the defaults.
	Power  int
	Normal int64
}

// StreamConfig drives Network.RunStream: a continuous run where one
// deployment serves Epochs metering intervals of Interval simulated
// seconds each, with readings refreshed every epoch.
type StreamConfig struct {
	Epochs   int
	Interval float64
	Queries  []StreamQuery
	// Readings yields node id's reading for an epoch; it must be
	// deterministic in (id, epoch) for runs to reproduce.
	Readings func(id, epoch int) int64
	// Metered enables the per-node energy model (radio tx/rx plus idle
	// listening over the whole span); the result then reports Joules.
	Metered bool
	// Precompute enables epoch-amortized keystream warming between
	// firings (see the stream package). Behavior-neutral: results are
	// byte-identical on or off; only StreamResult.WarmedBlocks and the
	// placement of the AES work change.
	Precompute bool
}

// StreamFiring is one answered firing of a standing query.
type StreamFiring struct {
	Epoch    int
	Query    string // StreamQuery.Name
	Accepted bool
	// NoData marks a degraded firing whose integrity check passed on an
	// empty collection; it counts as rejected and carries no Value.
	NoData                  bool
	Value                   float64
	Dead, Skipped, Repaired int
}

// StreamResult summarizes a streaming run.
type StreamResult struct {
	Epochs   int
	Readings int64 // meter samples produced: (Size()−1) × Epochs
	Accepted int
	Rejected int
	Firings  []StreamFiring
	// Bytes covers all radio traffic during the run; SimSeconds is the
	// simulated span; Joules is 0 unless StreamConfig.Metered.
	Bytes             uint64
	SimSeconds        float64
	Joules            float64
	ReadingsPerSecond float64
	JoulesPerReading  float64
	// Rounds is the cumulative aggregation-round count after the run and
	// KeyEra the link-key era it ended in (the era rotates every 65,536
	// rounds so slice nonces never repeat under one key).
	Rounds uint64
	KeyEra uint64
	// WarmedBlocks counts the AES keystream blocks precomputed between
	// firings (0 unless StreamConfig.Precompute).
	WarmedBlocks int
}

// RunStream runs a continuous multi-epoch collection over the deployed
// network: Phase I trees are built once and amortized across every epoch,
// mid-run failures are repaired in place (with Config.Repair), and the
// configured standing queries fire on their staggered schedules. The
// network's round counter keeps advancing across calls.
func (n *Network) RunStream(cfg StreamConfig) (*StreamResult, error) {
	scfg := stream.Config{
		Epochs:     cfg.Epochs,
		Interval:   cfg.Interval,
		Readings:   cfg.Readings,
		Precompute: cfg.Precompute,
	}
	for _, q := range cfg.Queries {
		scfg.Queries = append(scfg.Queries, stream.Query{
			Name: q.Name, Kind: q.Kind, Window: q.Window, Period: q.Period,
			Phase: q.Phase, Power: q.Power, Normal: q.Normal,
		})
	}
	if cfg.Metered {
		meter, err := energy.NewMeter(n.topo.N(), energy.DefaultModel())
		if err != nil {
			return nil, fmt.Errorf("ipda: %w", err)
		}
		scfg.Meter = meter
	}
	p, err := stream.New(n.inst, scfg)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	res, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	out := &StreamResult{
		Epochs:            res.Epochs,
		Readings:          res.Readings,
		Accepted:          res.Accepted,
		Rejected:          res.Rejected,
		Bytes:             res.Bytes,
		SimSeconds:        res.SimSeconds,
		Joules:            res.Joules,
		ReadingsPerSecond: res.ReadingsPerSecond(),
		JoulesPerReading:  res.JoulesPerReading(),
		Rounds:            res.Rounds,
		KeyEra:            res.Era,
		WarmedBlocks:      res.WarmedBlocks,
	}
	for _, q := range res.Queries {
		out.Firings = append(out.Firings, StreamFiring{
			Epoch:    q.Epoch,
			Query:    scfg.Queries[q.Query].Name,
			Accepted: q.Accepted,
			NoData:   q.NoData,
			Value:    q.Value,
			Dead:     q.Dead, Skipped: q.Skipped, Repaired: q.Repaired,
		})
	}
	return out, nil
}

// DayQueries returns the standing query mix of a smart-metering day —
// per-interval totals, hourly averages and variances, and a three-hour
// peak watch — for the given number of epochs per hour (4 when epochs are
// 15-minute metering intervals).
func DayQueries(epochsPerHour int) []StreamQuery {
	var out []StreamQuery
	for _, q := range stream.DayQueries(epochsPerHour) {
		out = append(out, StreamQuery{
			Name: q.Name, Kind: q.Kind, Window: q.Window, Period: q.Period,
			Phase: q.Phase, Power: q.Power, Normal: q.Normal,
		})
	}
	return out
}

// DiurnalLoad returns a synthetic household demand in watts at the given
// hour of day, individualized per meter — a ready-made reading profile
// for streaming runs.
func DiurnalLoad(meter int, hour float64) int64 {
	return stream.DiurnalLoad(meter, hour)
}

// Eavesdropper reports what a passive adversary learned from observed
// rounds.
type Eavesdropper struct {
	net *Network
	eav *attack.Eavesdropper
}

// AttachEavesdropper installs a global passive adversary compromising
// each link with probability px. Attach before running queries.
func (n *Network) AttachEavesdropper(px float64) *Eavesdropper {
	e := attack.NewEavesdropper(px, rng.New(n.cfg.Seed^0x5eed))
	e.Attach(n.inst)
	n.eav = e
	return &Eavesdropper{net: n, eav: e}
}

// DisclosureRate returns the fraction of participants whose readings the
// adversary recovered in the rounds observed so far.
func (e *Eavesdropper) DisclosureRate() float64 {
	return e.eav.DiscloseRate(e.net.inst.Participants())
}

// TAGNetwork is the unprotected TAG baseline over the same kind of
// deployment, for side-by-side comparisons.
type TAGNetwork struct {
	topo *topology.Network
	inst *tag.Instance
}

// DeployTAG deploys a TAG network with cfg's topology parameters (the
// privacy/integrity fields are ignored — TAG has neither).
func DeployTAG(cfg Config) (*TAGNetwork, error) {
	topoCfg := topology.Config{Nodes: cfg.Nodes, FieldSide: cfg.FieldSide, Range: cfg.Range}
	topo, err := topology.Random(topoCfg, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	tcfg := tag.DefaultConfig()
	scheme, err := cfg.macScheme()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	tcfg.MAC.Scheme = scheme
	inst, err := tag.New(topo, tcfg, cfg.Seed^0x7a6)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return &TAGNetwork{topo: topo, inst: inst}, nil
}

// Size returns the number of nodes including the base station.
func (n *TAGNetwork) Size() int { return n.topo.N() }

// Query answers an aggregation query over the TAG tree.
func (n *TAGNetwork) Query(kind Kind, readings []int64) (*QueryResult, error) {
	res, err := n.inst.Run(aggregate.SpecFor(kind), readings)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	out := &QueryResult{Value: res.Value, Accepted: true}
	if len(res.Outcomes) > 0 {
		out.RedSum = res.Outcomes[0].Sum
		out.BlueSum = res.Outcomes[0].Sum
		out.Participants = res.Outcomes[0].Participants
		for _, o := range res.Outcomes {
			out.Bytes += o.Bytes
		}
	}
	return out, nil
}

// Count runs a COUNT query.
func (n *TAGNetwork) Count() (*QueryResult, error) {
	return n.Query(Count, make([]int64, n.topo.N()))
}

// Kill fails node id: per TAG's epoch model the node neither sends nor
// folds, so its whole subtree is lost until Revive.
func (n *TAGNetwork) Kill(id int) { n.inst.Kill(topology.NodeID(id)) }

// Revive undoes Kill from the next epoch on.
func (n *TAGNetwork) Revive(id int) { n.inst.Revive(topology.NodeID(id)) }

// LocalizePolluter runs the Section III-D countermeasure against a
// persistent DoS polluter: group-testing probe rounds over the deployment
// described by cfg until the attacker is isolated. It returns the suspect
// node and the number of probe rounds used (O(log Nodes)).
func LocalizePolluter(cfg Config, attacker int, delta int64) (suspect, rounds int, err error) {
	topoCfg := topology.Config{Nodes: cfg.Nodes, FieldSide: cfg.FieldSide, Range: cfg.Range}
	topo, err := topology.Random(topoCfg, rng.New(cfg.Seed))
	if err != nil {
		return 0, 0, fmt.Errorf("ipda: %w", err)
	}
	factory := func(disabled []bool, seed uint64) (*core.Instance, error) {
		c, err := cfg.coreConfig()
		if err != nil {
			return nil, err
		}
		c.Tree.Adaptive = false // probes want every covered node aggregating
		c.Disabled = disabled
		return core.New(topo, c, seed)
	}
	res, err := attack.LocalizePolluter(topo.N(), factory, topology.NodeID(attacker), delta, cfg.Seed^0xd05)
	if err != nil {
		return 0, 0, fmt.Errorf("ipda: %w", err)
	}
	return int(res.Suspect), res.Rounds, nil
}

// GameResult reports one indistinguishability experiment (see the privacy
// package): the adversary's empirical advantage in telling two candidate
// readings apart from its view of the slicing phase.
type GameResult struct {
	Advantage           float64
	FullReconstructions int
	Trials              int
}

// RunIndistinguishabilityGame plays the two-world privacy game: a target
// node slices one of two candidate readings v0/v1 into l shares per tree
// (bounded by spread, or full-ring when spread is 0); an adversary
// compromising each link with probability px guesses which. The returned
// advantage is 2·Pr[correct] − 1.
func RunIndistinguishabilityGame(l int, spread int64, px float64, v0, v1 int64, trials int, seed uint64) (GameResult, error) {
	res, err := privacy.RunGame(privacy.Config{
		L: l, Spread: spread, Px: px, V0: v0, V1: v1, Trials: trials,
	}, rng.New(seed))
	if err != nil {
		return GameResult{}, fmt.Errorf("ipda: %w", err)
	}
	return GameResult{
		Advantage:           res.Advantage,
		FullReconstructions: res.FullReconstructions,
		Trials:              res.Trials,
	}, nil
}

// TheoreticalLeafAdvantage returns the analytic optimum of the game under
// full-ring shares: 1 − (1 − px^l)².
func TheoreticalLeafAdvantage(px float64, l int) float64 {
	return privacy.TheoreticalLeafAdvantage(px, l)
}

// Observer exposes the instrumentation a deployment recorded. Obtain one
// from Network.Obs after deploying with Config.Observe set.
type Observer struct {
	sink *obs.Sink
}

// Obs returns the network's instrumentation, or nil when the deployment
// was not observed (Config.Observe false).
func (n *Network) Obs() *Observer {
	if n.sink == nil {
		return nil
	}
	return &Observer{sink: n.sink}
}

// WritePrometheus emits every recorded metric in the Prometheus text
// exposition format. Output is deterministic: families and series are
// sorted, so equal runs produce byte-identical exports.
func (o *Observer) WritePrometheus(w io.Writer) error {
	return o.sink.Reg.WriteProm(w)
}

// WriteChromeTrace emits the recorded phase spans as a Chrome trace-event
// JSON document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Simulated seconds map to trace microseconds, so a
// 1-second protocol phase renders as a 1 ms slice.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	return o.sink.Spans.WriteChromeTrace(w)
}

// Spans returns the number of recorded phase spans and instants.
func (o *Observer) Spans() int { return o.sink.Spans.Len() }

// DroppedSpans returns how many spans overflowed the recorder's limit.
func (o *Observer) DroppedSpans() uint64 { return o.sink.Spans.Dropped() }

// QueryTrace exposes the causal per-query trace a deployment recorded.
// Obtain one from Network.QueryTrace after deploying with
// Config.TraceQueries set.
type QueryTrace struct {
	t *qtrace.Tracer
}

// QueryTrace returns the network's query trace, or nil when the
// deployment was not traced (Config.TraceQueries false).
func (n *Network) QueryTrace() *QueryTrace {
	if n.qt == nil {
		return nil
	}
	return &QueryTrace{t: n.qt}
}

// Len returns the number of recorded spans.
func (q *QueryTrace) Len() int { return q.t.Len() }

// Dropped returns how many spans overflowed the tracer's limit.
func (q *QueryTrace) Dropped() int { return q.t.Dropped() }

// WriteJSONL emits the trace as JSON lines, one span per line, in a
// deterministic order (see cmd/ipda-trace for querying the output).
func (q *QueryTrace) WriteJSONL(w io.Writer) error { return q.t.WriteJSONL(w) }

// WriteChromeTrace emits the trace as Chrome trace-event JSON loadable
// in Perfetto (ui.perfetto.dev), one track per node.
func (q *QueryTrace) WriteChromeTrace(w io.Writer) error {
	return qtrace.WriteChromeTrace(w, q.t.Spans())
}

// WriteText renders the causal span tree as deterministic indented text.
func (q *QueryTrace) WriteText(w io.Writer) error {
	return qtrace.WriteText(w, q.t.Spans())
}

// WriteHealth renders the round-health analysis: per-round verdicts,
// per-subtree contribution/loss attribution, and the per-hop critical
// path to the base station.
func (q *QueryTrace) WriteHealth(w io.Writer) error {
	return qtrace.WriteHealth(w, q.t.Spans())
}

// Trace is a recorded protocol timeline (see EnableTrace).
type Trace struct {
	log *trace.Log
}

// EnableTrace starts recording every audible frame as a timeline event,
// keeping at most limit events (the first limit — the tail is dropped).
// Enable before running queries; write the result with WriteJSON.
func (n *Network) EnableTrace(limit int) *Trace {
	l := trace.New(limit)
	trace.AttachRadio(l, n.inst.Sim, n.inst.Medium)
	return &Trace{log: l}
}

// EnableRingTrace is EnableTrace with ring-buffer retention: once full,
// each new event evicts the oldest, so long runs keep the *last* limit
// events instead of the first.
func (n *Network) EnableRingTrace(limit int) *Trace {
	l := trace.NewRing(limit)
	trace.AttachRadio(l, n.inst.Sim, n.inst.Medium)
	return &Trace{log: l}
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.log.Events()) }

// Dropped returns how many events overflowed the buffer (in ring mode,
// how many old events were evicted).
func (t *Trace) Dropped() int { return t.log.Dropped() }

// Mode reports the capture mode: "head" or "ring".
func (t *Trace) Mode() string { return t.log.Mode() }

// WriteJSON emits the timeline as JSON lines.
func (t *Trace) WriteJSON(w io.Writer) error { return t.log.WriteJSON(w) }

// MultiTreeNetwork is the m > 2 generalization of iPDA (the extension
// Section III-B sketches): m node-disjoint aggregation trees with
// majority-vote verification at the base station. With m ≥ 2f+1 trees the
// base station survives f colluding same-delta polluters — the scenario
// the paper's Section VI leaves as future work.
type MultiTreeNetwork struct {
	topo *topology.Network
	inst *mtree.Instance
}

// DeployMultiTree deploys m disjoint trees over cfg's topology. The
// denser the network, the larger the m it can support.
func DeployMultiTree(cfg Config, m int) (*MultiTreeNetwork, error) {
	topoCfg := topology.Config{Nodes: cfg.Nodes, FieldSide: cfg.FieldSide, Range: cfg.Range}
	topo, err := topology.Random(topoCfg, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	mcfg := mtree.DefaultConfig(m)
	suite, err := cfg.suite()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	mcfg.Suite = suite
	scheme, err := cfg.macScheme()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	mcfg.MAC = mac.DefaultConfig()
	mcfg.MAC.Scheme = scheme
	mcfg.Slices = cfg.Slices
	mcfg.Threshold = cfg.Threshold
	mcfg.ShareSpread = cfg.ShareSpread
	if cfg.K > mcfg.K {
		mcfg.K = cfg.K
	}
	if m > mcfg.K {
		mcfg.K = m
	}
	inst, err := mtree.New(topo, mcfg, cfg.Seed^0x3b9)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return &MultiTreeNetwork{topo: topo, inst: inst}, nil
}

// Size returns the number of nodes including the base station.
func (n *MultiTreeNetwork) Size() int { return n.topo.N() }

// Coverage returns the fraction of sensors reached by all m trees.
func (n *MultiTreeNetwork) Coverage() float64 { return n.inst.CoverageFraction() }

// TreeOf returns the tree index node id aggregates on, or -1 for leaves.
func (n *MultiTreeNetwork) TreeOf(id int) int { return n.inst.TreeOf[id] }

// InjectPollution makes node id a pollution attacker; delta 0 removes it.
func (n *MultiTreeNetwork) InjectPollution(id int, delta int64) {
	n.inst.Pollute(topology.NodeID(id), delta)
}

// MultiTreeResult is one majority-verified query.
type MultiTreeResult struct {
	// Totals holds each tree's independent total.
	Totals []int64
	// Accepted reports whether a strict majority of trees agreed.
	Accepted bool
	// Value is the majority total.
	Value int64
	// Outliers lists the dissenting tree indices (polluted or lossy).
	Outliers []int
}

// Count runs a majority-verified COUNT over all trees.
func (n *MultiTreeNetwork) Count() (*MultiTreeResult, error) {
	v, err := n.inst.RunCount()
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return &MultiTreeResult{Totals: v.Totals, Accepted: v.Accepted, Value: v.Value, Outliers: v.Outliers}, nil
}

// Sum runs a majority-verified SUM over all trees.
func (n *MultiTreeNetwork) Sum(readings []int64) (*MultiTreeResult, error) {
	v, err := n.inst.RunSum(readings)
	if err != nil {
		return nil, fmt.Errorf("ipda: %w", err)
	}
	return &MultiTreeResult{Totals: v.Totals, Accepted: v.Accepted, Value: v.Value, Outliers: v.Outliers}, nil
}

// TheoreticalDisclosure returns Equation (11) for a d-regular network:
// the probability an eavesdropper with per-link compromise probability px
// recovers a reading sliced l ways.
func TheoreticalDisclosure(px float64, l int) float64 {
	return analysis.PDiscloseRegular(px, l)
}

// OverheadRatio returns the analytic iPDA/TAG message ratio (2l+1)/2.
func OverheadRatio(l int) float64 {
	return analysis.OverheadRatio(l)
}
