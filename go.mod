module github.com/ipda-sim/ipda

go 1.22
